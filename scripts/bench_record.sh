#!/usr/bin/env sh
# Records a perf snapshot: runs bench binaries with Google Benchmark's
# JSON reporter and merges the per-binary reports into one
# BENCH_<date>[_label].json at the repo root, tagged with the current
# git revision. The committed BENCH_*.json files are the repo's
# performance trajectory; hot-path PRs record one before and one after
# (use a label to tell them apart) and paste the relevant rows into
# the PR description.
#
#   scripts/bench_record.sh [label] [bench ...]
#
#   label   optional suffix, e.g. "baseline" -> BENCH_2026-07-26_baseline.json
#   bench   bench binaries to run (default: bench_delta bench_endtoend
#           bench_persistence bench_coldpath bench_incremental
#           bench_concurrent_serving bench_slo bench_overload, i.e.
#           E1, E10, E12, E13, E14, E15, E16, E17)
#
# Environment:
#   BENCH_BUILD_DIR   build tree to use (default: build-release, built
#                     with the "release" CMake preset if missing)
#   BENCH_ARGS        extra flags for every binary, e.g.
#                     "--benchmark_min_time=0.05s" for a quick smoke run

set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
label=${1:-}
[ $# -gt 0 ] && shift
benches=${*:-"bench_delta bench_endtoend bench_persistence bench_coldpath \
bench_incremental bench_concurrent_serving bench_slo bench_overload"}
build_dir=${BENCH_BUILD_DIR:-"${repo_root}/build-release"}

if [ ! -f "${build_dir}/CMakeCache.txt" ]; then
  # Mirrors the "release" CMake preset, but honours BENCH_BUILD_DIR.
  cmake -B "${build_dir}" -S "${repo_root}" \
    -DCMAKE_BUILD_TYPE=Release -DEVOREC_BUILD_TESTS=OFF
fi
# shellcheck disable=SC2086  # word-splitting of the target list is intended
cmake --build "${build_dir}" -j \
  "$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)" \
  --target ${benches}

date_tag=$(date +%Y-%m-%d)
out="${repo_root}/BENCH_${date_tag}${label:+_${label}}.json"
tmp_dir=$(mktemp -d)
trap 'rm -rf "${tmp_dir}"' EXIT

for bench in ${benches}; do
  echo "== ${bench} =="
  # Figure tables go to the terminal; timing JSON goes to the file.
  # shellcheck disable=SC2086
  "${build_dir}/${bench}" \
    --benchmark_out="${tmp_dir}/${bench}.json" \
    --benchmark_out_format=json ${BENCH_ARGS:-}
done

git_rev=$(git -C "${repo_root}" rev-parse --short HEAD 2>/dev/null || echo unknown)
python3 - "${out}" "${date_tag}" "${label}" "${git_rev}" "${tmp_dir}" <<'EOF'
import json, os, pathlib, sys

out, date_tag, label, git_rev, tmp_dir = sys.argv[1:6]
merged = {"date": date_tag, "label": label or None, "git": git_rev,
          "benchmarks": {}}
build_types = set()
for report in sorted(pathlib.Path(tmp_dir).glob("*.json")):
    data = json.loads(report.read_text())
    build_types.add(
        data.get("context", {}).get("library_build_type", "unknown"))
    merged["benchmarks"][report.stem] = data

# Debug guard: numbers from a debug Google-Benchmark build are not
# comparable across snapshots (the original BENCH_2026-07-26.json
# baseline was recorded that way and had to be written off). A report
# with no verifiable build type is just as uncomparable, so anything
# other than a uniform "release" refuses by default;
# BENCH_ALLOW_DEBUG=1 records anyway but labels the file so a later
# reader cannot mistake it for a comparable release snapshot.
label_type = ("release" if build_types == {"release"}
              else "debug" if "debug" in build_types else "unknown")
merged["library_build_type"] = label_type
if label_type != "release":
    if os.environ.get("BENCH_ALLOW_DEBUG") != "1":
        sys.stderr.write(
            "bench_record: REFUSING to record - Google Benchmark reports "
            "library_build_type=%s.\n"
            "Non-release-build timings are not comparable with the "
            "committed BENCH_*.json trajectory.\n"
            "Rebuild the benchmark library in release mode, or set "
            "BENCH_ALLOW_DEBUG=1 to record anyway\n"
            "(the snapshot will carry \"library_build_type\": \"%s\" "
            "so it stays clearly labelled).\n" % (label_type, label_type))
        sys.exit(1)
    sys.stderr.write(
        "bench_record: WARNING - recording with a %s benchmark "
        "library build; snapshot labelled library_build_type=%s.\n"
        % (label_type.upper(), label_type))
pathlib.Path(out).write_text(json.dumps(merged, indent=1) + "\n")
EOF
echo "wrote ${out}"
