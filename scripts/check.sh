#!/usr/bin/env sh
# Tier-1 verify: configure, build everything (library, tests, bench,
# examples), run the full ctest suite. This is the exact sequence CI
# runs and the gate every PR must keep green.
#
#   scripts/check.sh [--torture|--scenarios|--overload] [build-dir]
#
#   --torture    run only the fault-injection and crash-recovery
#                suites (the crash-point matrix) instead of the full
#                suite — the quick loop while working on the storage
#                layer.
#   --scenarios  run only the stream-workload suites (stressed replay
#                vs sequential oracle, generator seed stability,
#                degraded fan-out) — the quick loop while working on
#                the workload generators or the serving path.
#   --overload   run only the overload-control suites (deadlines,
#                admission/shedding, circuit breaker, brownout, the
#                shed-vs-serve stress race) — the quick loop while
#                working on the admission layer.
#
# Extra CMake arguments can be passed via CMAKE_ARGS, e.g.
#   CMAKE_ARGS="-DEVOREC_BUILD_BENCHMARKS=OFF" scripts/check.sh
#
# Also enforces the Env-layer boundary: raw POSIX/stdio file I/O
# (fopen/fwrite/fsync/...) is allowed only inside src/common/env.cc
# (PosixEnv). Everything else must go through evorec::Env, or fault
# injection and the crash-point torture harness silently lose
# coverage of those bytes.

set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)

torture=0
scenarios=0
overload=0
build_dir=""
for arg in "$@"; do
  case "${arg}" in
    --torture) torture=1 ;;
    --scenarios) scenarios=1 ;;
    --overload) overload=1 ;;
    *) build_dir="${arg}" ;;
  esac
done
build_dir=${build_dir:-"${repo_root}/build"}

# --- Env-layer guard (cheap; runs before the build) ---
raw_io=$(grep -rnE '[^_[:alnum:]](fopen|fwrite|fread|fsync|fdatasync|fclose|ftruncate|unlink)[[:space:]]*\(' \
           "${repo_root}/src" --include='*.cc' \
         | grep -v 'src/common/env\.cc' \
         | grep -vE '^[^:]*:[0-9]+:[[:space:]]*(//|\*)' || true)
if [ -n "${raw_io}" ]; then
  echo "error: raw file I/O outside src/common/env.cc — route it through evorec::Env:" >&2
  echo "${raw_io}" >&2
  exit 1
fi

jobs=$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)
cmake -B "${build_dir}" -S "${repo_root}" ${CMAKE_ARGS:-}
cmake --build "${build_dir}" -j "${jobs}"
cd "${build_dir}"
if [ "${torture}" -eq 1 ]; then
  ctest --output-on-failure -j "${jobs}" -R 'Fault|Torture|Degraded|RetryBackoff'
elif [ "${scenarios}" -eq 1 ]; then
  ctest --output-on-failure -j "${jobs}" \
    -R 'ScenarioReplay|StreamGenerator|GeneratorSeedStability|Degraded'
elif [ "${overload}" -eq 1 ]; then
  ctest --output-on-failure -j "${jobs}" \
    -R 'Admission|Breaker|Overload|Deadline|Brownout'
else
  ctest --output-on-failure -j "${jobs}"
fi
