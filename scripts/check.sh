#!/usr/bin/env sh
# Tier-1 verify: configure, build everything (library, tests, bench,
# examples), run the full ctest suite. This is the exact sequence CI
# runs and the gate every PR must keep green.
#
#   scripts/check.sh [build-dir]
#
# Extra CMake arguments can be passed via CMAKE_ARGS, e.g.
#   CMAKE_ARGS="-DEVOREC_BUILD_BENCHMARKS=OFF" scripts/check.sh

set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build_dir=${1:-"${repo_root}/build"}

cmake -B "${build_dir}" -S "${repo_root}" ${CMAKE_ARGS:-}
cmake --build "${build_dir}" -j "$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"
cd "${build_dir}" && ctest --output-on-failure -j "$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"
