#include "provenance/store.h"

#include <algorithm>
#include <deque>
#include <unordered_set>

namespace evorec::provenance {

std::string SourceKindName(SourceKind kind) {
  switch (kind) {
    case SourceKind::kObservation:
      return "observation";
    case SourceKind::kInference:
      return "inference";
    case SourceKind::kBeliefAdoption:
      return "belief_adoption";
  }
  return "unknown";
}

Result<RecordId> ProvenanceStore::Append(ProvRecord record) {
  for (RecordId input : record.inputs) {
    if (input >= records_.size()) {
      return InvalidArgumentError(
          "derivation input " + std::to_string(input) +
          " does not reference an existing record");
    }
  }
  const RecordId id = records_.size();
  record.id = id;
  by_entity_[record.entity].push_back(id);
  by_agent_[record.agent].push_back(id);
  records_.push_back(std::move(record));
  return id;
}

Result<ProvRecord> ProvenanceStore::Get(RecordId id) const {
  if (id >= records_.size()) {
    return NotFoundError("no provenance record " + std::to_string(id));
  }
  return records_[id];
}

std::vector<ProvRecord> ProvenanceStore::ForEntity(
    std::string_view entity) const {
  auto it = by_entity_.find(std::string(entity));
  if (it == by_entity_.end()) return {};
  std::vector<ProvRecord> out;
  out.reserve(it->second.size());
  for (RecordId id : it->second) out.push_back(records_[id]);
  return out;
}

std::vector<ProvRecord> ProvenanceStore::ByAgent(
    std::string_view agent) const {
  auto it = by_agent_.find(std::string(agent));
  if (it == by_agent_.end()) return {};
  std::vector<ProvRecord> out;
  out.reserve(it->second.size());
  for (RecordId id : it->second) out.push_back(records_[id]);
  return out;
}

std::vector<ProvRecord> ProvenanceStore::InTimeRange(uint64_t from,
                                                     uint64_t to) const {
  std::vector<ProvRecord> out;
  for (const ProvRecord& r : records_) {
    if (r.timestamp >= from && r.timestamp <= to) out.push_back(r);
  }
  return out;
}

Result<std::vector<ProvRecord>> ProvenanceStore::DerivationChain(
    RecordId id) const {
  if (id >= records_.size()) {
    return NotFoundError("no provenance record " + std::to_string(id));
  }
  std::vector<ProvRecord> chain;
  std::unordered_set<RecordId> seen;
  std::deque<RecordId> queue(records_[id].inputs.begin(),
                             records_[id].inputs.end());
  while (!queue.empty()) {
    const RecordId current = queue.front();
    queue.pop_front();
    if (!seen.insert(current).second) continue;
    chain.push_back(records_[current]);
    for (RecordId input : records_[current].inputs) {
      queue.push_back(input);
    }
  }
  return chain;
}

Result<size_t> ProvenanceStore::DerivationDepth(RecordId id) const {
  if (id >= records_.size()) {
    return NotFoundError("no provenance record " + std::to_string(id));
  }
  // ids are topologically ordered (inputs < id), so one forward pass
  // over the chain suffices; memoise depth per record.
  std::unordered_map<RecordId, size_t> depth;
  // Collect the subgraph below `id` and process in ascending id order.
  std::vector<RecordId> nodes{id};
  std::unordered_set<RecordId> seen{id};
  for (size_t i = 0; i < nodes.size(); ++i) {
    for (RecordId input : records_[nodes[i]].inputs) {
      if (seen.insert(input).second) nodes.push_back(input);
    }
  }
  std::sort(nodes.begin(), nodes.end());
  for (RecordId node : nodes) {
    size_t d = 0;
    for (RecordId input : records_[node].inputs) {
      d = std::max(d, depth[input] + 1);
    }
    depth[node] = d;
  }
  return depth[id];
}

}  // namespace evorec::provenance
