#ifndef EVOREC_PROVENANCE_WORKFLOW_H_
#define EVOREC_PROVENANCE_WORKFLOW_H_

#include <functional>
#include <string>
#include <vector>

#include "common/result.h"
#include "provenance/store.h"

namespace evorec::provenance {

/// A named multi-stage process that records one provenance record per
/// stage — the "workflow system" of §III.b that systematically captures
/// provenance for derived items. The recommender pipeline runs inside
/// a Workflow so every recommendation can answer who/when/how.
class Workflow {
 public:
  /// `agent` is recorded as the actor of every stage; timestamps are a
  /// logical clock starting at `start_time`.
  Workflow(std::string name, std::string agent, ProvenanceStore& store,
           uint64_t start_time = 0);

  Workflow(const Workflow&) = delete;
  Workflow& operator=(const Workflow&) = delete;

  /// Runs `stage_fn` as stage `stage`, producing `output_entity`
  /// derived from `inputs`. The callable returns a human-readable note
  /// stored on the record. Returns the stage's record id.
  Result<RecordId> RunStage(const std::string& stage,
                            const std::string& output_entity,
                            SourceKind source,
                            const std::vector<RecordId>& inputs,
                            const std::function<std::string()>& stage_fn);

  /// Records an externally produced input artefact (observation) so
  /// later stages can derive from it.
  Result<RecordId> RecordInput(const std::string& entity,
                               const std::string& note);

  /// Record ids of all stages run so far, in order.
  const std::vector<RecordId>& stage_records() const {
    return stage_records_;
  }

  const std::string& name() const { return name_; }

 private:
  std::string name_;
  std::string agent_;
  ProvenanceStore& store_;
  uint64_t clock_;
  std::vector<RecordId> stage_records_;
};

}  // namespace evorec::provenance

#endif  // EVOREC_PROVENANCE_WORKFLOW_H_
