#include "provenance/workflow.h"

namespace evorec::provenance {

Workflow::Workflow(std::string name, std::string agent,
                   ProvenanceStore& store, uint64_t start_time)
    : name_(std::move(name)),
      agent_(std::move(agent)),
      store_(store),
      clock_(start_time) {}

Result<RecordId> Workflow::RunStage(
    const std::string& stage, const std::string& output_entity,
    SourceKind source, const std::vector<RecordId>& inputs,
    const std::function<std::string()>& stage_fn) {
  const std::string note = stage_fn();
  ProvRecord record;
  record.entity = output_entity;
  record.activity = name_ + "/" + stage;
  record.agent = agent_;
  record.timestamp = clock_++;
  record.source = source;
  record.inputs = inputs;
  record.note = note;
  auto id = store_.Append(std::move(record));
  if (id.ok()) {
    stage_records_.push_back(*id);
  }
  return id;
}

Result<RecordId> Workflow::RecordInput(const std::string& entity,
                                       const std::string& note) {
  ProvRecord record;
  record.entity = entity;
  record.activity = name_ + "/input";
  record.agent = agent_;
  record.timestamp = clock_++;
  record.source = SourceKind::kObservation;
  record.note = note;
  auto id = store_.Append(std::move(record));
  if (id.ok()) {
    stage_records_.push_back(*id);
  }
  return id;
}

}  // namespace evorec::provenance
