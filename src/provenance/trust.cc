#include "provenance/trust.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace evorec::provenance {

Result<double> TrustOf(const ProvenanceStore& store, RecordId id,
                       const TrustModel& model) {
  if (id >= store.size()) {
    return NotFoundError("no provenance record " + std::to_string(id));
  }
  // ids are topologically ordered (inputs < id): evaluate the subgraph
  // below `id` in ascending order.
  std::vector<RecordId> nodes{id};
  std::unordered_set<RecordId> seen{id};
  const auto& records = store.records();
  for (size_t i = 0; i < nodes.size(); ++i) {
    for (RecordId input : records[nodes[i]].inputs) {
      if (seen.insert(input).second) nodes.push_back(input);
    }
  }
  std::sort(nodes.begin(), nodes.end());
  std::unordered_map<RecordId, double> trust;
  for (RecordId node : nodes) {
    const ProvRecord& r = records[node];
    double value = model.BaseTrust(r.source);
    if (!r.inputs.empty()) {
      double weakest = 1.0;
      for (RecordId input : r.inputs) {
        weakest = std::min(weakest, trust[input]);
      }
      value *= model.chain_decay * weakest;
    }
    trust[node] = value;
  }
  return trust[id];
}

}  // namespace evorec::provenance
