#ifndef EVOREC_PROVENANCE_STORE_H_
#define EVOREC_PROVENANCE_STORE_H_

#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "provenance/record.h"

namespace evorec::provenance {

/// Append-only provenance store. Records reference earlier records as
/// derivation inputs, so the derivation graph is acyclic by
/// construction. Answers the transparency questions of §III.b:
/// who created an item and when, who modified it, and through which
/// process it was derived.
class ProvenanceStore {
 public:
  ProvenanceStore() = default;

  /// Appends a record. `record.id` is assigned by the store; inputs
  /// must reference existing records.
  Result<RecordId> Append(ProvRecord record);

  /// Record by id.
  Result<ProvRecord> Get(RecordId id) const;

  /// All records producing or touching `entity`, in append order —
  /// "who created/modified this item and when".
  std::vector<ProvRecord> ForEntity(std::string_view entity) const;

  /// All records by `agent`, in append order.
  std::vector<ProvRecord> ByAgent(std::string_view agent) const;

  /// Records with timestamp in [from, to], in append order.
  std::vector<ProvRecord> InTimeRange(uint64_t from, uint64_t to) const;

  /// Transitive derivation inputs of `id` (the full "how"), in
  /// topological order from the queried record backwards; excludes
  /// `id` itself.
  Result<std::vector<ProvRecord>> DerivationChain(RecordId id) const;

  /// Length of the longest derivation path below `id` (0 for source
  /// records).
  Result<size_t> DerivationDepth(RecordId id) const;

  size_t size() const { return records_.size(); }
  bool empty() const { return records_.empty(); }

  /// All records (append order).
  const std::vector<ProvRecord>& records() const { return records_; }

 private:
  std::vector<ProvRecord> records_;
  std::unordered_map<std::string, std::vector<RecordId>> by_entity_;
  std::unordered_map<std::string, std::vector<RecordId>> by_agent_;
};

}  // namespace evorec::provenance

#endif  // EVOREC_PROVENANCE_STORE_H_
