#ifndef EVOREC_PROVENANCE_RECORD_H_
#define EVOREC_PROVENANCE_RECORD_H_

#include <cstdint>
#include <string>
#include <vector>

namespace evorec::provenance {

/// Identifier of a provenance record within one store.
using RecordId = uint64_t;

/// How a data item came to be (paper §III.b): the three sources used
/// to assess correctness and reliability of provenance data.
enum class SourceKind {
  kObservation,     ///< directly observed / measured
  kInference,       ///< derived by a computation from inputs
  kBeliefAdoption,  ///< adopted from another agent's assertion
};

/// Stable display name ("observation" / "inference" /
/// "belief_adoption").
std::string SourceKindName(SourceKind kind);

/// One provenance assertion: `agent` performed `activity` producing
/// `entity` at `timestamp`, deriving it from `inputs` (earlier
/// records). The who/when/how triple of the paper's transparency
/// questions maps to agent/timestamp/(activity, inputs).
struct ProvRecord {
  RecordId id = 0;
  std::string entity;    ///< what was produced (stable entity key)
  std::string activity;  ///< the process used
  std::string agent;     ///< who ran it
  uint64_t timestamp = 0;
  SourceKind source = SourceKind::kObservation;
  std::vector<RecordId> inputs;  ///< derivation inputs (must pre-exist)
  std::string note;              ///< free-form detail
};

}  // namespace evorec::provenance

#endif  // EVOREC_PROVENANCE_RECORD_H_
