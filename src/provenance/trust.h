#ifndef EVOREC_PROVENANCE_TRUST_H_
#define EVOREC_PROVENANCE_TRUST_H_

#include "common/result.h"
#include "provenance/store.h"

namespace evorec::provenance {

/// Base trust per source kind plus decay along derivation chains
/// (§III.b: "we care about the truth of the provenance data").
/// Observations are trusted most, inferences inherit the weakest
/// input's trust discounted by `chain_decay`, belief adoption is
/// trusted least.
struct TrustModel {
  double observation_trust = 0.9;
  double inference_trust = 0.8;
  double belief_adoption_trust = 0.5;
  /// Multiplicative discount applied once per derivation step.
  double chain_decay = 0.95;

  double BaseTrust(SourceKind kind) const {
    switch (kind) {
      case SourceKind::kObservation:
        return observation_trust;
      case SourceKind::kInference:
        return inference_trust;
      case SourceKind::kBeliefAdoption:
        return belief_adoption_trust;
    }
    return 0.0;
  }
};

/// Trust score of record `id` in [0,1]:
///   trust(r) = base(r)                              if r has no inputs
///   trust(r) = base(r) · decay · min_i trust(input_i) otherwise.
/// The min aggregation makes a chain only as trustworthy as its
/// weakest link.
Result<double> TrustOf(const ProvenanceStore& store, RecordId id,
                       const TrustModel& model = {});

}  // namespace evorec::provenance

#endif  // EVOREC_PROVENANCE_TRUST_H_
