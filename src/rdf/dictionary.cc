#include "rdf/dictionary.h"

namespace evorec::rdf {

TermId Dictionary::Intern(const Term& term) {
  const std::string key = term.ToNTriples();
  auto it = index_.find(key);
  if (it != index_.end()) {
    return it->second;
  }
  const TermId id = static_cast<TermId>(terms_.size());
  terms_.push_back(term);
  index_.emplace(key, id);
  return id;
}

TermId Dictionary::InternIri(std::string_view iri) {
  return Intern(Term::Iri(iri));
}

TermId Dictionary::InternLiteral(std::string_view value,
                                 std::string_view datatype,
                                 std::string_view language) {
  return Intern(Term::Literal(value, datatype, language));
}

TermId Dictionary::Find(const Term& term) const {
  auto it = index_.find(term.ToNTriples());
  if (it == index_.end()) return kAnyTerm;
  return it->second;
}

Result<Term> Dictionary::Lookup(TermId id) const {
  if (id >= terms_.size()) {
    return NotFoundError("term id " + std::to_string(id) +
                         " not present in dictionary");
  }
  return terms_[id];
}

}  // namespace evorec::rdf
