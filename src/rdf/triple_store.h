#ifndef EVOREC_RDF_TRIPLE_STORE_H_
#define EVOREC_RDF_TRIPLE_STORE_H_

#include <functional>
#include <unordered_set>
#include <vector>

#include "rdf/triple.h"

namespace evorec::rdf {

/// An in-memory triple store with three sorted permutation indexes
/// (SPO, POS, OSP) supporting all eight triple-pattern shapes with
/// binary-searched range scans.
///
/// Mutations are buffered; indexes are rebuilt lazily on first read
/// after a write (amortised O(n log n)). This favours the library's
/// workload: bulk version construction followed by read-heavy measure
/// computation. Buffered operations obey last-wins semantics per
/// triple: Add(t) after Remove(t) leaves t present, and vice versa —
/// exactly the sequential semantics delta-chain replay depends on.
class TripleStore {
 public:
  TripleStore() = default;

  TripleStore(const TripleStore&) = default;
  TripleStore& operator=(const TripleStore&) = default;
  TripleStore(TripleStore&&) = default;
  TripleStore& operator=(TripleStore&&) = default;

  /// Inserts `t`; duplicates are absorbed. Returns true if the triple
  /// was not already present (exact check deferred to next Compact).
  void Add(const Triple& t);

  /// Removes `t` if present.
  void Remove(const Triple& t);

  /// Bulk-inserts a batch.
  void AddAll(const std::vector<Triple>& triples);

  /// True iff the store contains `t`.
  bool Contains(const Triple& t) const;

  /// Returns all triples matching `pattern`, in SPO order.
  std::vector<Triple> Match(const TriplePattern& pattern) const;

  /// Invokes `fn` for every triple matching `pattern`; stops early if
  /// `fn` returns false.
  void Scan(const TriplePattern& pattern,
            const std::function<bool(const Triple&)>& fn) const;

  /// Number of distinct triples.
  size_t size() const;

  bool empty() const { return size() == 0; }

  /// All triples in canonical SPO order.
  const std::vector<Triple>& triples() const;

  /// Set difference: triples of `a` not in `b` (both need not be
  /// compacted; result is SPO-sorted). This is the primitive behind
  /// low-level deltas (δ+ = After − Before, δ− = Before − After).
  static std::vector<Triple> Difference(const TripleStore& a,
                                        const TripleStore& b);

  /// Applies buffered mutations and rebuilds the permutation indexes.
  /// Called automatically by every const accessor; exposed for
  /// benchmarks that want to measure indexing cost explicitly.
  void Compact() const;

 private:
  void ScanSpo(const TriplePattern& pattern,
               const std::function<bool(const Triple&)>& fn) const;

  // Canonical storage: SPO-sorted unique triples (valid when !dirty_).
  mutable std::vector<Triple> spo_;
  // Permutations stored as reordered copies for cache-friendly scans.
  mutable std::vector<Triple> pos_;  // sorted by (p, o, s)
  mutable std::vector<Triple> osp_;  // sorted by (o, s, p)
  // Buffered mutations since the last Compact(); a triple lives in at
  // most one of the two sets (the most recent operation wins).
  mutable std::unordered_set<Triple, TripleHash> pending_adds_;
  mutable std::unordered_set<Triple, TripleHash> pending_removes_;
  mutable bool dirty_ = false;
};

}  // namespace evorec::rdf

#endif  // EVOREC_RDF_TRIPLE_STORE_H_
