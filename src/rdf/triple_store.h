#ifndef EVOREC_RDF_TRIPLE_STORE_H_
#define EVOREC_RDF_TRIPLE_STORE_H_

#include <algorithm>
#include <cstdint>
#include <functional>
#include <unordered_set>
#include <vector>

#include "rdf/triple.h"

namespace evorec::rdf {

/// Counters describing the indexing work a store has performed, so
/// benches and tests can verify that SPO-only consumers (Contains,
/// triples, Difference — i.e. the E1 delta path) never pay for the
/// secondary POS/OSP permutation indexes. Copies start from zero.
struct TripleStoreStats {
  uint64_t compactions = 0;      ///< pending-buffer merges into SPO
  uint64_t pos_full_builds = 0;  ///< POS rebuilt by full copy + sort
  uint64_t pos_catchups = 0;     ///< POS caught up by backlog merge
  uint64_t osp_full_builds = 0;
  uint64_t osp_catchups = 0;

  uint64_t secondary_builds() const {
    return pos_full_builds + pos_catchups + osp_full_builds + osp_catchups;
  }
};

/// An in-memory triple store with three sorted permutation indexes
/// (SPO, POS, OSP) supporting all eight triple-pattern shapes with
/// binary-searched range scans.
///
/// Mutations are buffered with last-wins semantics per triple (Add(t)
/// after Remove(t) leaves t present, and vice versa — exactly the
/// sequential semantics delta-chain replay depends on). Compact()
/// merges the sorted buffer into the canonical SPO index in one linear
/// pass (O(n + d log d) for a delta of d ops) instead of re-sorting.
///
/// The secondary POS/OSP indexes are fully lazy and independent:
/// each carries its own freshness state and is only (re)built when a
/// (*,p,*)/(*,p,o) or (*,*,o) scan actually needs it. A stale
/// secondary index catches up by merging the accumulated SPO backlog
/// (O(n + b log b)) rather than re-sorting, as long as the backlog
/// stays small relative to the store.
class TripleStore {
 public:
  TripleStore() = default;

  /// Bulk sorted-load: adopts `sorted_spo` (strictly ascending SPO
  /// order, no duplicates — the caller's contract) as the canonical
  /// index directly, bypassing the pending buffer and Compact()
  /// entirely. This is the snapshot-loading fast path of the storage
  /// layer: decoding a saved snapshot yields the SPO run already in
  /// canonical order, so "load" is a move instead of an O(n log n)
  /// re-sort. Secondary indexes start unbuilt and materialise lazily
  /// like on any other store.
  static TripleStore FromSorted(std::vector<Triple> sorted_spo);

  // Copies keep the canonical SPO data and any *fresh* secondary
  // index; stale secondaries are dropped and rebuilt lazily in the
  // copy if ever needed (copying stale data plus its catch-up backlog
  // would cost more than a rebuild). This makes snapshot copies on
  // the version-replay path ~3x cheaper.
  TripleStore(const TripleStore& other);
  TripleStore& operator=(const TripleStore& other);
  TripleStore(TripleStore&&) = default;
  TripleStore& operator=(TripleStore&&) = default;

  /// Inserts `t`; duplicates are absorbed.
  void Add(const Triple& t);

  /// Removes `t` if present.
  void Remove(const Triple& t);

  /// Bulk-inserts a batch.
  void AddAll(const std::vector<Triple>& triples);

  /// Bulk-removes a batch.
  void RemoveAll(const std::vector<Triple>& triples);

  /// True iff the store contains `t`.
  bool Contains(const Triple& t) const;

  /// Returns all triples matching `pattern`, in SPO order.
  std::vector<Triple> Match(const TriplePattern& pattern) const;

  /// Invokes `fn` for every triple matching `pattern`; stops early if
  /// `fn` returns false. Statically-typed hot path: the callable is
  /// inlined into the index scan loop. Emission order is the scanning
  /// index's order: SPO for (s,·,·), (*,*,o), (*,p,o) and full scans;
  /// (o,s) within the fixed predicate for (*,p,*).
  template <class Fn>
  void ScanT(const TriplePattern& pattern, Fn&& fn) const {
    const bool has_s = pattern.subject != kAnyTerm;
    const bool has_p = pattern.predicate != kAnyTerm;
    const bool has_o = pattern.object != kAnyTerm;

    if (has_s) {
      // (s,*,*), (s,p,*), (s,p,o), (s,*,o): SPO prefix on s (and p).
      Compact();
      Triple lo{pattern.subject, has_p ? pattern.predicate : 0,
                (has_p && has_o) ? pattern.object : 0};
      auto it = std::lower_bound(spo_.begin(), spo_.end(), lo);
      for (; it != spo_.end(); ++it) {
        if (it->subject != pattern.subject) break;
        if (has_p) {
          if (it->predicate > pattern.predicate) break;
          if (it->predicate != pattern.predicate) continue;
        }
        if (has_o && it->object != pattern.object) continue;
        if (!fn(*it)) return;
      }
      return;
    }
    if (has_p) {
      // (*,p,*), (*,p,o): POS prefix on p (and o).
      EnsurePos();
      Triple lo{0, pattern.predicate, has_o ? pattern.object : 0};
      auto it = std::lower_bound(pos_.begin(), pos_.end(), lo, PosLess);
      for (; it != pos_.end(); ++it) {
        if (it->predicate != pattern.predicate) break;
        if (has_o && it->object != pattern.object) break;
        if (!fn(*it)) return;
      }
      return;
    }
    if (has_o) {
      // (*,*,o): OSP prefix.
      EnsureOsp();
      Triple lo{0, 0, pattern.object};
      auto it = std::lower_bound(osp_.begin(), osp_.end(), lo, OspLess);
      for (; it != osp_.end(); ++it) {
        if (it->object != pattern.object) break;
        if (!fn(*it)) return;
      }
      return;
    }
    // (*,*,*): full scan.
    Compact();
    for (const Triple& t : spo_) {
      if (!fn(t)) return;
    }
  }

  /// Type-erased convenience wrapper over ScanT.
  void Scan(const TriplePattern& pattern,
            const std::function<bool(const Triple&)>& fn) const;

  /// Number of distinct triples.
  size_t size() const;

  bool empty() const { return size() == 0; }

  /// All triples in canonical SPO order.
  const std::vector<Triple>& triples() const;

  /// Set difference: triples of `a` not in `b` (both need not be
  /// compacted; result is SPO-sorted). This is the primitive behind
  /// low-level deltas (δ+ = After − Before, δ− = Before − After).
  /// Touches only the SPO index.
  static std::vector<Triple> Difference(const TripleStore& a,
                                        const TripleStore& b);

  /// Merges buffered mutations into the canonical SPO index
  /// (incremental, O(n + d log d)). Secondary indexes are NOT rebuilt
  /// here — they catch up lazily on the first POS/OSP scan. Called
  /// automatically by every const accessor; exposed for benchmarks
  /// that want to measure indexing cost explicitly.
  void Compact() const;

  /// Compact() plus eager build of both secondary indexes — for
  /// callers that know a scan-heavy phase follows.
  void PrepareIndexes() const;

  /// Approximate resident bytes of this store's current state
  /// (indexes actually materialised, pending buffers, catch-up
  /// backlog). Never triggers a compact or an index build.
  size_t MemoryBytes() const;

  /// Indexing-work counters for this instance.
  const TripleStoreStats& stats() const { return stats_; }

 private:
  /// Freshness of a secondary index relative to the SPO index.
  enum class IndexState : uint8_t {
    kFresh,    // matches spo_
    kStale,    // catches up by applying the backlog
    kRebuild,  // must be rebuilt from spo_ (never built, dropped on
               // copy, or the backlog outgrew the catch-up threshold)
  };

  static bool PosLess(const Triple& a, const Triple& b) {
    if (a.predicate != b.predicate) return a.predicate < b.predicate;
    if (a.object != b.object) return a.object < b.object;
    return a.subject < b.subject;
  }
  static bool OspLess(const Triple& a, const Triple& b) {
    if (a.object != b.object) return a.object < b.object;
    if (a.subject != b.subject) return a.subject < b.subject;
    return a.predicate < b.predicate;
  }

  void EnsurePos() const;
  void EnsureOsp() const;
  /// Folds a freshly-applied SPO delta into the secondary-index
  /// backlog (last-wins), demoting stale indexes to kRebuild if the
  /// backlog outgrows the catch-up threshold.
  void AccumulateBacklog(const std::vector<Triple>& adds,
                         const std::vector<Triple>& removes) const;
  /// Frees the backlog once no index depends on it.
  void MaybeReleaseBacklog() const;

  // Canonical storage: SPO-sorted unique triples (valid after
  // Compact()).
  mutable std::vector<Triple> spo_;
  // Permutations stored as reordered copies for cache-friendly scans.
  mutable std::vector<Triple> pos_;  // sorted by (p, o, s)
  mutable std::vector<Triple> osp_;  // sorted by (o, s, p)
  mutable IndexState pos_state_ = IndexState::kFresh;
  mutable IndexState osp_state_ = IndexState::kFresh;
  // Buffered mutations since the last Compact(); a triple lives in at
  // most one of the two sets (the most recent operation wins).
  mutable std::unordered_set<Triple, TripleHash> pending_adds_;
  mutable std::unordered_set<Triple, TripleHash> pending_removes_;
  mutable bool dirty_ = false;
  // SPO-sorted, disjoint, last-wins accumulation of every delta
  // applied to spo_ since the oldest stale secondary index was fresh.
  // Because it is last-wins, applying it is idempotent: it yields the
  // current state from *any* intermediate index generation.
  mutable std::vector<Triple> backlog_adds_;
  mutable std::vector<Triple> backlog_removes_;
  mutable TripleStoreStats stats_;
};

}  // namespace evorec::rdf

#endif  // EVOREC_RDF_TRIPLE_STORE_H_
