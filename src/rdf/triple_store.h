#ifndef EVOREC_RDF_TRIPLE_STORE_H_
#define EVOREC_RDF_TRIPLE_STORE_H_

#include <algorithm>
#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_set>
#include <vector>

#include "rdf/segment.h"
#include "rdf/triple.h"

namespace evorec::rdf {

/// Counters describing the indexing work a store has performed, so
/// benches and tests can verify that SPO-only consumers (Contains,
/// scans, Difference — i.e. the E1 delta path) never pay for the
/// secondary POS/OSP permutation indexes, and that the serving path
/// never materialises a whole-store flat copy. Copies start from zero.
struct TripleStoreStats {
  uint64_t compactions = 0;      ///< pending-buffer freezes
  uint64_t pos_full_builds = 0;  ///< POS rebuilt by full walk + sort
  uint64_t pos_catchups = 0;     ///< POS caught up by backlog merge
  uint64_t osp_full_builds = 0;
  uint64_t osp_catchups = 0;
  uint64_t segments_frozen = 0;  ///< freezes that produced a segment
  uint64_t segment_merges = 0;   ///< size-tiered pairwise segment merges
  /// Whole-store flat SPO copies: triples() flattening a multi-segment
  /// stack. The concurrent-serving contract asserts this stays zero on
  /// the read-serving path — snapshots are segment lists, never copies.
  uint64_t materializations = 0;

  uint64_t secondary_builds() const {
    return pos_full_builds + pos_catchups + osp_full_builds + osp_catchups;
  }
};

/// A segmented (terichdb-style) in-memory triple store.
///
/// Canonical storage is a stack of immutable, shared frozen segments
/// plus a small writable head (the pending buffers). Mutations are
/// buffered with last-wins semantics per triple (Add(t) after
/// Remove(t) leaves t present, and vice versa — exactly the sequential
/// semantics delta-chain replay depends on). Compact() *freezes* the
/// head into a new immutable segment in O(d log d) for a delta of d
/// ops — it never rewrites the frozen stack — and then applies a
/// size-tiered merge policy that keeps the stack depth logarithmic
/// and amortises total merge work to O(n log n).
///
/// Because segments are immutable and held by shared_ptr, copying a
/// store copies the segment *list* (O(#segments) pointer copies), not
/// the triples. That is what makes versioned snapshots cheap: every
/// version pins the segment list it was born with and the writer's
/// later freezes/merges never touch it.
///
/// Reads resolve last-wins across the stack: for each triple the
/// newest segment mentioning it decides (live run → present,
/// tombstone run → absent). Scans k-way-merge the per-segment sorted
/// runs, preserving the exact SPO emission order of the flat store
/// this replaces.
///
/// The secondary POS/OSP indexes are fully lazy and independent: each
/// carries its own freshness state and is only (re)built when a
/// (*,p,*)/(*,p,o) or (*,*,o) scan actually needs it. A stale
/// secondary index catches up by merging the accumulated backlog
/// (O(n + b log b)) rather than re-sorting, as long as the backlog
/// stays small relative to the store. They are stored as immutable
/// shared runs, so copies share a fresh index instead of copying it.
///
/// Thread-compatibility: a *frozen* store (no buffered mutations, as
/// left by Compact()) supports concurrent Contains / s-bound / full /
/// (s,p,o) pattern reads from any number of threads, because those
/// paths only binary-search the immutable stack. First-use POS/OSP
/// builds and triples() mutate memo state and need external
/// serialisation, as does any mutation.
class TripleStore {
 public:
  TripleStore() = default;

  /// Bulk sorted-load: adopts `sorted_spo` (strictly ascending SPO
  /// order, no duplicates — the caller's contract) as a single frozen
  /// base segment, bypassing the pending buffer entirely. This is the
  /// snapshot-loading fast path of the storage layer: decoding a saved
  /// snapshot yields the SPO run already in canonical order, so "load"
  /// is a move instead of an O(n log n) re-sort. Secondary indexes
  /// start unbuilt and materialise lazily like on any other store.
  static TripleStore FromSorted(std::vector<Triple> sorted_spo);

  /// Adopts an existing frozen segment stack whose effective triple
  /// count is `effective_size`. This is the zero-copy union view the
  /// sharded KB uses: concatenating the segment lists of stores over
  /// *disjoint* triple sets (shards partition by subject) yields a
  /// valid stack, because no triple of one sublist can shadow a triple
  /// of another. The segments stay shared with their owning stores.
  static TripleStore FromSegments(
      std::vector<std::shared_ptr<const Segment>> segments,
      size_t effective_size);

  // Copies share the frozen segment stack (pointer copies) and any
  // *fresh* secondary index; stale secondaries are dropped and rebuilt
  // lazily in the copy if ever needed (copying stale data plus its
  // catch-up backlog would cost more than a rebuild). A snapshot copy
  // is therefore O(#segments), independent of the triple count.
  TripleStore(const TripleStore& other);
  TripleStore& operator=(const TripleStore& other);
  TripleStore(TripleStore&&) = default;
  TripleStore& operator=(TripleStore&&) = default;

  /// Inserts `t`; duplicates are absorbed.
  void Add(const Triple& t);

  /// Removes `t` if present.
  void Remove(const Triple& t);

  /// Bulk-inserts a batch.
  void AddAll(const std::vector<Triple>& triples);

  /// Bulk-removes a batch.
  void RemoveAll(const std::vector<Triple>& triples);

  /// True iff the store contains `t`.
  bool Contains(const Triple& t) const;

  /// Returns all triples matching `pattern`, in SPO order.
  std::vector<Triple> Match(const TriplePattern& pattern) const;

  /// Invokes `fn` for every triple matching `pattern`; stops early if
  /// `fn` returns false. Statically-typed hot path: the callable is
  /// inlined into the index scan loop. Emission order is the scanning
  /// index's order: SPO for (s,·,·), (*,*,o), (*,p,o) and full scans;
  /// (o,s) within the fixed predicate for (*,p,*).
  template <class Fn>
  void ScanT(const TriplePattern& pattern, Fn&& fn) const {
    const bool has_s = pattern.subject != kAnyTerm;
    const bool has_p = pattern.predicate != kAnyTerm;
    const bool has_o = pattern.object != kAnyTerm;

    if (has_s) {
      // (s,*,*), (s,p,*), (s,p,o), (s,*,o): SPO prefix on s (and p),
      // k-way merged across the segment stack.
      Compact();
      Triple lo{pattern.subject, has_p ? pattern.predicate : 0,
                (has_p && has_o) ? pattern.object : 0};
      detail::WalkSegments(segments_, lo, [&](const Triple& t) {
        if (t.subject != pattern.subject) return false;
        if (has_p) {
          if (t.predicate > pattern.predicate) return false;
          if (t.predicate != pattern.predicate) return true;
        }
        if (has_o && t.object != pattern.object) return true;
        return static_cast<bool>(fn(t));
      });
      return;
    }
    if (has_p) {
      // (*,p,*), (*,p,o): POS prefix on p (and o).
      EnsurePos();
      const std::vector<Triple>& pos = *pos_;
      Triple lo{0, pattern.predicate, has_o ? pattern.object : 0};
      auto it = std::lower_bound(pos.begin(), pos.end(), lo, PosLess);
      for (; it != pos.end(); ++it) {
        if (it->predicate != pattern.predicate) break;
        if (has_o && it->object != pattern.object) break;
        if (!fn(*it)) return;
      }
      return;
    }
    if (has_o) {
      // (*,*,o): OSP prefix.
      EnsureOsp();
      const std::vector<Triple>& osp = *osp_;
      Triple lo{0, 0, pattern.object};
      auto it = std::lower_bound(osp.begin(), osp.end(), lo, OspLess);
      for (; it != osp.end(); ++it) {
        if (it->object != pattern.object) break;
        if (!fn(*it)) return;
      }
      return;
    }
    // (*,*,*): full merged scan.
    Compact();
    detail::WalkSegments(segments_, Triple{0, 0, 0}, [&](const Triple& t) {
      return static_cast<bool>(fn(t));
    });
  }

  /// Type-erased convenience wrapper over ScanT.
  void Scan(const TriplePattern& pattern,
            const std::function<bool(const Triple&)>& fn) const;

  /// Number of distinct triples. O(1) on a frozen store: freezes
  /// maintain the effective count incrementally.
  size_t size() const;

  bool empty() const { return size() == 0; }

  /// All triples in canonical SPO order. On a single-segment store
  /// this aliases the base segment (zero copy); on a multi-segment
  /// stack it materialises (and memoises) a flat copy, counted in
  /// stats().materializations — serving-path code must prefer
  /// ScanT/Contains, which never flatten.
  const std::vector<Triple>& triples() const;

  /// Set difference: triples of `a` not in `b` (both need not be
  /// compacted; result is SPO-sorted). This is the primitive behind
  /// low-level deltas (δ+ = After − Before, δ− = Before − After).
  /// Streams both segment stacks — no flattening, no secondary
  /// indexes.
  static std::vector<Triple> Difference(const TripleStore& a,
                                        const TripleStore& b);

  /// Freezes buffered mutations into a new immutable segment
  /// (O(d log d + d·log n·depth) for a delta of d ops — independent of
  /// the store size n except for binary-search probes), then runs the
  /// size-tiered merge policy. Secondary indexes are NOT rebuilt here
  /// — they catch up lazily on the first POS/OSP scan. Called
  /// automatically by every const accessor; exposed for benchmarks
  /// that want to measure indexing cost explicitly.
  void Compact() const;

  /// Compact() plus eager build of both secondary indexes — for
  /// callers that know a scan-heavy phase follows.
  void PrepareIndexes() const;

  /// The frozen segment stack, oldest → newest (freezes pending
  /// mutations first). Segments are immutable and shared; holding the
  /// returned pointers pins this store's current state for free.
  const std::vector<std::shared_ptr<const Segment>>& segments() const;

  /// Approximate resident bytes of this store's current state
  /// (segments, indexes actually materialised, pending buffers,
  /// catch-up backlog). Never triggers a compact or an index build.
  /// Shared segments are counted in full by every holder; use
  /// MemoryBytesDedup for fleet-wide accounting.
  size_t MemoryBytes() const;

  /// Like MemoryBytes, but counts each shared immutable component
  /// (segment, index run) only once across every store probed with the
  /// same `seen` set — the honest footprint of a version chain whose
  /// snapshots share segments.
  size_t MemoryBytesDedup(std::unordered_set<const void*>& seen) const;

  /// Indexing-work counters for this instance.
  const TripleStoreStats& stats() const { return stats_; }

 private:
  /// Freshness of a secondary index relative to the canonical stack.
  enum class IndexState : uint8_t {
    kFresh,    // matches the segment stack
    kStale,    // catches up by applying the backlog
    kRebuild,  // must be rebuilt from the stack (never built, dropped
               // on copy, or the backlog outgrew the threshold)
  };

  static bool PosLess(const Triple& a, const Triple& b) {
    if (a.predicate != b.predicate) return a.predicate < b.predicate;
    if (a.object != b.object) return a.object < b.object;
    return a.subject < b.subject;
  }
  static bool OspLess(const Triple& a, const Triple& b) {
    if (a.object != b.object) return a.object < b.object;
    if (a.subject != b.subject) return a.subject < b.subject;
    return a.predicate < b.predicate;
  }

  /// Last-wins probe of the frozen stack only (ignores pending).
  bool ContainsFrozen(const Triple& t) const;
  /// Size-tiered merge: collapses the newest segments while one is at
  /// least half its older neighbour, dropping tombstones when a merge
  /// reaches the bottom of the stack.
  void MaybeMergeSegments() const;
  void EnsurePos() const;
  void EnsureOsp() const;
  /// Folds a freshly-frozen delta into the secondary-index backlog
  /// (last-wins), demoting stale indexes to kRebuild if the backlog
  /// outgrows the catch-up threshold.
  void AccumulateBacklog(const std::vector<Triple>& adds,
                         const std::vector<Triple>& removes) const;
  /// Frees the backlog once no index depends on it.
  void MaybeReleaseBacklog() const;

  // Canonical storage: immutable frozen segments, oldest → newest
  // (valid after Compact()). The vector itself is per-store; the
  // segments are shared across stores.
  mutable std::vector<std::shared_ptr<const Segment>> segments_;
  // Effective triple count of the stack (maintained at freeze time).
  mutable size_t size_ = 0;
  // Memoised flat SPO materialisation (null until triples() needs it;
  // aliases the base segment when the stack is a single segment).
  mutable std::shared_ptr<const std::vector<Triple>> flat_;
  // Permutations stored as reordered flat runs for cache-friendly
  // scans; immutable and shared between copies while fresh.
  mutable std::shared_ptr<const std::vector<Triple>> pos_;  // (p, o, s)
  mutable std::shared_ptr<const std::vector<Triple>> osp_;  // (o, s, p)
  mutable IndexState pos_state_ = IndexState::kFresh;
  mutable IndexState osp_state_ = IndexState::kFresh;
  // The writable head: mutations buffered since the last freeze. A
  // triple lives in at most one of the two sets (the most recent
  // operation wins).
  mutable std::unordered_set<Triple, TripleHash> pending_adds_;
  mutable std::unordered_set<Triple, TripleHash> pending_removes_;
  mutable bool dirty_ = false;
  // SPO-sorted, disjoint, last-wins accumulation of every delta frozen
  // since the oldest stale secondary index was fresh. Because it is
  // last-wins, applying it is idempotent: it yields the current state
  // from *any* intermediate index generation.
  mutable std::vector<Triple> backlog_adds_;
  mutable std::vector<Triple> backlog_removes_;
  mutable TripleStoreStats stats_;
};

}  // namespace evorec::rdf

#endif  // EVOREC_RDF_TRIPLE_STORE_H_
