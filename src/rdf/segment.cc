#include "rdf/segment.h"

namespace evorec::rdf {

std::shared_ptr<const Segment> Segment::Merge(const Segment& older,
                                              const Segment& newer,
                                              bool drop_tombstones) {
  std::vector<Triple> live;
  std::vector<Triple> tombstones;
  live.reserve(older.live().size() + newer.live().size());

  detail::SegmentCursor a(older, Triple{0, 0, 0});
  detail::SegmentCursor b(newer, Triple{0, 0, 0});
  auto take = [&](const detail::SegmentCursor& c) {
    if (c.tomb_is_current()) {
      if (!drop_tombstones) tombstones.push_back(c.current());
    } else {
      live.push_back(c.current());
    }
  };
  while (!a.done() && !b.done()) {
    const Triple& ta = a.current();
    const Triple& tb = b.current();
    if (ta < tb) {
      take(a);
      a.advance();
    } else if (tb < ta) {
      take(b);
      b.advance();
    } else {  // both segments mention the triple: the newer one decides
      take(b);
      a.advance();
      b.advance();
    }
  }
  while (!a.done()) {
    take(a);
    a.advance();
  }
  while (!b.done()) {
    take(b);
    b.advance();
  }
  return std::make_shared<const Segment>(std::move(live),
                                         std::move(tombstones));
}

}  // namespace evorec::rdf
