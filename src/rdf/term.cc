#include "rdf/term.h"

#include "common/strings.h"

namespace evorec::rdf {

Term Term::Iri(std::string_view iri) {
  Term t;
  t.kind = TermKind::kIri;
  t.lexical = std::string(iri);
  return t;
}

Term Term::Literal(std::string_view value, std::string_view datatype,
                   std::string_view language) {
  Term t;
  t.kind = TermKind::kLiteral;
  t.lexical = std::string(value);
  t.datatype = std::string(datatype);
  t.language = std::string(language);
  return t;
}

Term Term::Blank(std::string_view label) {
  Term t;
  t.kind = TermKind::kBlank;
  t.lexical = std::string(label);
  return t;
}

std::string Term::ToNTriples() const {
  switch (kind) {
    case TermKind::kIri:
      return "<" + lexical + ">";
    case TermKind::kBlank:
      return "_:" + lexical;
    case TermKind::kLiteral: {
      std::string out = "\"" + EscapeNTriples(lexical) + "\"";
      if (!language.empty()) {
        out += "@" + language;
      } else if (!datatype.empty()) {
        out += "^^<" + datatype + ">";
      }
      return out;
    }
  }
  return "";
}

}  // namespace evorec::rdf
