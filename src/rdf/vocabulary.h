#ifndef EVOREC_RDF_VOCABULARY_H_
#define EVOREC_RDF_VOCABULARY_H_

#include "rdf/dictionary.h"
#include "rdf/term.h"

namespace evorec::rdf {

/// Well-known IRI strings used by the schema extractor and the
/// high-level change detector.
namespace iri {
inline constexpr const char* kRdfType =
    "http://www.w3.org/1999/02/22-rdf-syntax-ns#type";
inline constexpr const char* kRdfProperty =
    "http://www.w3.org/1999/02/22-rdf-syntax-ns#Property";
inline constexpr const char* kRdfsSubClassOf =
    "http://www.w3.org/2000/01/rdf-schema#subClassOf";
inline constexpr const char* kRdfsSubPropertyOf =
    "http://www.w3.org/2000/01/rdf-schema#subPropertyOf";
inline constexpr const char* kRdfsDomain =
    "http://www.w3.org/2000/01/rdf-schema#domain";
inline constexpr const char* kRdfsRange =
    "http://www.w3.org/2000/01/rdf-schema#range";
inline constexpr const char* kRdfsClass =
    "http://www.w3.org/2000/01/rdf-schema#Class";
inline constexpr const char* kRdfsLabel =
    "http://www.w3.org/2000/01/rdf-schema#label";
inline constexpr const char* kOwlClass =
    "http://www.w3.org/2002/07/owl#Class";
inline constexpr const char* kXsdString =
    "http://www.w3.org/2001/XMLSchema#string";
inline constexpr const char* kXsdInteger =
    "http://www.w3.org/2001/XMLSchema#integer";
}  // namespace iri

/// The RDF/RDFS/OWL vocabulary interned into a specific Dictionary.
/// Each versioned knowledge base interns one Vocabulary up front so all
/// modules compare TermIds instead of strings.
struct Vocabulary {
  TermId rdf_type = kAnyTerm;
  TermId rdf_property = kAnyTerm;
  TermId rdfs_subclass_of = kAnyTerm;
  TermId rdfs_subproperty_of = kAnyTerm;
  TermId rdfs_domain = kAnyTerm;
  TermId rdfs_range = kAnyTerm;
  TermId rdfs_class = kAnyTerm;
  TermId rdfs_label = kAnyTerm;
  TermId owl_class = kAnyTerm;

  /// Interns all vocabulary terms into `dictionary`.
  static Vocabulary Intern(Dictionary& dictionary);

  /// True iff `predicate` is one of the schema-level predicates
  /// (type / subclass / subproperty / domain / range / label).
  bool IsSchemaPredicate(TermId predicate) const;
};

}  // namespace evorec::rdf

#endif  // EVOREC_RDF_VOCABULARY_H_
