#include "rdf/ntriples.h"

#include <string>
#include <vector>

#include "common/strings.h"
#include "rdf/term.h"

namespace evorec::rdf {

namespace {

// Parses a single term starting at `pos` in `line`; advances `pos` past
// the term. Returns false (and fills `error`) on malformed input.
bool ParseTerm(std::string_view line, size_t& pos, Term& out,
               std::string& error) {
  while (pos < line.size() &&
         (line[pos] == ' ' || line[pos] == '\t')) {
    ++pos;
  }
  if (pos >= line.size()) {
    error = "unexpected end of line";
    return false;
  }
  const char c = line[pos];
  if (c == '<') {
    const size_t end = line.find('>', pos + 1);
    if (end == std::string_view::npos) {
      error = "unterminated IRI";
      return false;
    }
    out = Term::Iri(line.substr(pos + 1, end - pos - 1));
    pos = end + 1;
    return true;
  }
  if (c == '_') {
    if (pos + 1 >= line.size() || line[pos + 1] != ':') {
      error = "malformed blank node";
      return false;
    }
    size_t end = pos + 2;
    while (end < line.size() && line[end] != ' ' && line[end] != '\t' &&
           line[end] != '.') {
      ++end;
    }
    out = Term::Blank(line.substr(pos + 2, end - pos - 2));
    pos = end;
    return true;
  }
  if (c == '"') {
    // Find the closing unescaped quote.
    size_t end = pos + 1;
    bool escaped = false;
    while (end < line.size()) {
      if (escaped) {
        escaped = false;
      } else if (line[end] == '\\') {
        escaped = true;
      } else if (line[end] == '"') {
        break;
      }
      ++end;
    }
    if (end >= line.size()) {
      error = "unterminated literal";
      return false;
    }
    const std::string value =
        UnescapeNTriples(line.substr(pos + 1, end - pos - 1));
    pos = end + 1;
    std::string datatype;
    std::string language;
    if (pos + 1 < line.size() && line[pos] == '^' && line[pos + 1] == '^') {
      pos += 2;
      if (pos >= line.size() || line[pos] != '<') {
        error = "malformed datatype IRI";
        return false;
      }
      const size_t dt_end = line.find('>', pos + 1);
      if (dt_end == std::string_view::npos) {
        error = "unterminated datatype IRI";
        return false;
      }
      datatype = std::string(line.substr(pos + 1, dt_end - pos - 1));
      pos = dt_end + 1;
    } else if (pos < line.size() && line[pos] == '@') {
      size_t lang_end = pos + 1;
      while (lang_end < line.size() && line[lang_end] != ' ' &&
             line[lang_end] != '\t' && line[lang_end] != '.') {
        ++lang_end;
      }
      language = std::string(line.substr(pos + 1, lang_end - pos - 1));
      pos = lang_end;
    }
    out = Term::Literal(value, datatype, language);
    return true;
  }
  error = "unexpected character '" + std::string(1, c) + "'";
  return false;
}

}  // namespace

Status ParseNTriples(std::string_view text, Dictionary& dictionary,
                     TripleStore& store) {
  size_t line_number = 0;
  size_t start = 0;
  while (start <= text.size()) {
    size_t nl = text.find('\n', start);
    std::string_view line = (nl == std::string_view::npos)
                                ? text.substr(start)
                                : text.substr(start, nl - start);
    ++line_number;
    start = (nl == std::string_view::npos) ? text.size() + 1 : nl + 1;

    line = StripWhitespace(line);
    if (line.empty() || line[0] == '#') continue;

    size_t pos = 0;
    Term s, p, o;
    std::string error;
    if (!ParseTerm(line, pos, s, error) ||
        !ParseTerm(line, pos, p, error) ||
        !ParseTerm(line, pos, o, error)) {
      return InvalidArgumentError("N-Triples line " +
                                  std::to_string(line_number) + ": " + error);
    }
    // Expect terminating '.'.
    while (pos < line.size() && (line[pos] == ' ' || line[pos] == '\t')) {
      ++pos;
    }
    if (pos >= line.size() || line[pos] != '.') {
      return InvalidArgumentError("N-Triples line " +
                                  std::to_string(line_number) +
                                  ": missing terminating '.'");
    }
    if (s.is_literal()) {
      return InvalidArgumentError("N-Triples line " +
                                  std::to_string(line_number) +
                                  ": literal subject");
    }
    if (!p.is_iri()) {
      return InvalidArgumentError("N-Triples line " +
                                  std::to_string(line_number) +
                                  ": predicate must be an IRI");
    }
    store.Add(Triple(dictionary.Intern(s), dictionary.Intern(p),
                     dictionary.Intern(o)));
  }
  return OkStatus();
}

std::string WriteNTriples(const TripleStore& store,
                          const Dictionary& dictionary) {
  std::string out;
  for (const Triple& t : store.triples()) {
    out += dictionary.term(t.subject).ToNTriples();
    out += " ";
    out += dictionary.term(t.predicate).ToNTriples();
    out += " ";
    out += dictionary.term(t.object).ToNTriples();
    out += " .\n";
  }
  return out;
}

}  // namespace evorec::rdf
