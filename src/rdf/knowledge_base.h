#ifndef EVOREC_RDF_KNOWLEDGE_BASE_H_
#define EVOREC_RDF_KNOWLEDGE_BASE_H_

#include <memory>
#include <string_view>

#include "rdf/dictionary.h"
#include "rdf/triple_store.h"
#include "rdf/vocabulary.h"

namespace evorec::rdf {

/// One snapshot of a knowledge base: a triple store plus the shared
/// dictionary it is encoded against. Versions of the same KB share one
/// Dictionary (and therefore stable TermIds); copying a KnowledgeBase
/// copies the triples but aliases the dictionary.
class KnowledgeBase {
 public:
  /// Creates an empty KB with a fresh dictionary.
  KnowledgeBase();

  /// Creates an empty KB encoded against an existing dictionary.
  explicit KnowledgeBase(std::shared_ptr<Dictionary> dictionary);

  /// Creates a KB adopting an already-populated store (typically built
  /// with TripleStore::FromSorted by the storage layer's snapshot
  /// loader). The store's ids must have been issued by `dictionary`.
  KnowledgeBase(std::shared_ptr<Dictionary> dictionary, TripleStore store);

  KnowledgeBase(const KnowledgeBase&) = default;
  KnowledgeBase& operator=(const KnowledgeBase&) = default;
  KnowledgeBase(KnowledgeBase&&) = default;
  KnowledgeBase& operator=(KnowledgeBase&&) = default;

  Dictionary& dictionary() { return *dictionary_; }
  const Dictionary& dictionary() const { return *dictionary_; }
  const std::shared_ptr<Dictionary>& shared_dictionary() const {
    return dictionary_;
  }

  TripleStore& store() { return store_; }
  const TripleStore& store() const { return store_; }

  const Vocabulary& vocabulary() const { return vocabulary_; }

  /// Convenience: interns three IRIs and adds the triple.
  void AddIriTriple(std::string_view s, std::string_view p,
                    std::string_view o);

  /// Convenience: interns subject/predicate IRIs and a literal object.
  void AddLiteralTriple(std::string_view s, std::string_view p,
                        std::string_view value,
                        std::string_view datatype = "");

  /// Convenience: declares `cls` as a class (rdf:type rdfs:Class) and
  /// returns its id.
  TermId DeclareClass(std::string_view cls);

  /// Convenience: declares `property` with optional domain/range and
  /// returns its id.
  TermId DeclareProperty(std::string_view property,
                         std::string_view domain = "",
                         std::string_view range = "");

  /// Number of triples.
  size_t size() const { return store_.size(); }

 private:
  std::shared_ptr<Dictionary> dictionary_;
  Vocabulary vocabulary_;
  TripleStore store_;
};

}  // namespace evorec::rdf

#endif  // EVOREC_RDF_KNOWLEDGE_BASE_H_
