#ifndef EVOREC_RDF_SEGMENT_H_
#define EVOREC_RDF_SEGMENT_H_

#include <algorithm>
#include <memory>
#include <vector>

#include "rdf/triple.h"

namespace evorec::rdf {

/// One immutable, frozen run of a segmented TripleStore (the terichdb
/// idiom: a store is a stack of read-only segments plus one small
/// writable head). A segment carries the triples a freeze made live
/// and the tombstones it planted over older segments; both runs are
/// SPO-sorted, unique, and disjoint from each other. Segments are
/// shared between stores by shared_ptr — a snapshot copy of a
/// segmented store is a copy of the segment *list*, never of the
/// triples — and are never mutated after construction, so concurrent
/// readers of any number of stores may walk one segment freely.
class Segment {
 public:
  /// Adopts `live` and `tombstones`; both must be SPO-sorted, unique,
  /// and mutually disjoint (the freeze path guarantees this).
  Segment(std::vector<Triple> live, std::vector<Triple> tombstones)
      : live_(std::move(live)), tombstones_(std::move(tombstones)) {}

  Segment(const Segment&) = delete;
  Segment& operator=(const Segment&) = delete;

  const std::vector<Triple>& live() const { return live_; }
  const std::vector<Triple>& tombstones() const { return tombstones_; }

  bool ContainsLive(const Triple& t) const {
    return std::binary_search(live_.begin(), live_.end(), t);
  }
  bool ContainsTombstone(const Triple& t) const {
    return std::binary_search(tombstones_.begin(), tombstones_.end(), t);
  }

  /// Total entries (live + tombstones) — the size the tiering policy
  /// compares.
  size_t entry_count() const { return live_.size() + tombstones_.size(); }

  size_t MemoryBytes() const {
    return (live_.capacity() + tombstones_.capacity()) * sizeof(Triple);
  }

  /// Merges `newer` onto `older` (last-wins): a triple decided by
  /// `newer` keeps `newer`'s verdict, everything else keeps `older`'s.
  /// `drop_tombstones` is the bottom-of-the-stack GC: when the merged
  /// segment has no older segment left to shadow, its tombstones kill
  /// nothing and are dropped.
  static std::shared_ptr<const Segment> Merge(const Segment& older,
                                             const Segment& newer,
                                             bool drop_tombstones);

 private:
  std::vector<Triple> live_;        // sorted unique SPO
  std::vector<Triple> tombstones_;  // sorted unique SPO, disjoint from live_
};

namespace detail {

/// Positioned read head over one segment's combined live+tombstone
/// stream in SPO order (the two runs are disjoint, so the merge of the
/// pair never ties).
struct SegmentCursor {
  const Triple* live;
  const Triple* live_end;
  const Triple* tomb;
  const Triple* tomb_end;

  SegmentCursor(const Segment& s, const Triple& lo) {
    const auto& lv = s.live();
    const auto& tv = s.tombstones();
    live = std::lower_bound(lv.data(), lv.data() + lv.size(), lo);
    live_end = lv.data() + lv.size();
    tomb = std::lower_bound(tv.data(), tv.data() + tv.size(), lo);
    tomb_end = tv.data() + tv.size();
  }

  bool done() const { return live == live_end && tomb == tomb_end; }
  bool tomb_is_current() const {
    if (tomb == tomb_end) return false;
    if (live == live_end) return true;
    return *tomb < *live;
  }
  const Triple& current() const { return tomb_is_current() ? *tomb : *live; }
  void advance() {
    if (tomb_is_current()) {
      ++tomb;
    } else {
      ++live;
    }
  }
};

/// Pull-style k-way merge over a segment stack (oldest → newest):
/// yields the *effective* triples in SPO order. For each distinct
/// triple the newest segment mentioning it decides — live is emitted,
/// tombstoned is skipped — which is exactly the last-wins freeze
/// semantics.
class EffectiveCursor {
 public:
  EffectiveCursor(const std::vector<std::shared_ptr<const Segment>>& segments,
                  const Triple& lo) {
    cursors_.reserve(segments.size());
    for (const auto& seg : segments) cursors_.emplace_back(*seg, lo);
  }

  bool Next(Triple* out) {
    const size_t n = cursors_.size();
    for (;;) {
      // Newest-to-oldest min scan: on ties the first (newest) cursor
      // found keeps the win, so it decides the triple's fate.
      int winner = -1;
      for (size_t i = n; i-- > 0;) {
        if (cursors_[i].done()) continue;
        if (winner < 0 ||
            cursors_[i].current() <
                cursors_[static_cast<size_t>(winner)].current()) {
          winner = static_cast<int>(i);
        }
      }
      if (winner < 0) return false;
      const auto w = static_cast<size_t>(winner);
      const Triple t = cursors_[w].current();
      const bool tombstoned = cursors_[w].tomb_is_current();
      for (auto& c : cursors_) {
        if (!c.done() && !(t < c.current())) c.advance();
      }
      if (!tombstoned) {
        *out = t;
        return true;
      }
    }
  }

 private:
  std::vector<SegmentCursor> cursors_;
};

/// Walks the effective triples of `segments` in SPO order starting at
/// `lo` (pass Triple{0,0,0} for the whole stream); stops early when
/// `fn` returns false. Single-segment stacks skip the merge entirely —
/// a lone segment's tombstones shadow nothing, so its live run is the
/// answer.
template <class Fn>
void WalkSegments(const std::vector<std::shared_ptr<const Segment>>& segments,
                  const Triple& lo, Fn&& fn) {
  if (segments.empty()) return;
  if (segments.size() == 1) {
    const auto& live = segments[0]->live();
    for (auto it = std::lower_bound(live.begin(), live.end(), lo);
         it != live.end(); ++it) {
      if (!fn(*it)) return;
    }
    return;
  }
  EffectiveCursor cursor(segments, lo);
  Triple t;
  while (cursor.Next(&t)) {
    if (!fn(t)) return;
  }
}

}  // namespace detail

}  // namespace evorec::rdf

#endif  // EVOREC_RDF_SEGMENT_H_
