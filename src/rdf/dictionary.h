#ifndef EVOREC_RDF_DICTIONARY_H_
#define EVOREC_RDF_DICTIONARY_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "rdf/term.h"

namespace evorec::rdf {

/// Bidirectional term ↔ id interning table. All snapshots of one
/// versioned knowledge base share a Dictionary so that TermIds are
/// stable across versions — the property every evolution measure relies
/// on when comparing V1 and V2.
///
/// Not thread-safe for concurrent interning.
class Dictionary {
 public:
  Dictionary() = default;

  // Dictionaries are shared by pointer between versions; copying one
  // accidentally would silently fork the id space.
  Dictionary(const Dictionary&) = delete;
  Dictionary& operator=(const Dictionary&) = delete;
  Dictionary(Dictionary&&) = default;
  Dictionary& operator=(Dictionary&&) = default;

  /// Interns `term`, returning its stable id (existing id if already
  /// present).
  TermId Intern(const Term& term);

  /// Shorthand for Intern(Term::Iri(iri)).
  TermId InternIri(std::string_view iri);

  /// Shorthand for Intern(Term::Literal(...)).
  TermId InternLiteral(std::string_view value, std::string_view datatype = "",
                       std::string_view language = "");

  /// Looks up an already-interned term without inserting. Returns
  /// kAnyTerm when absent.
  TermId Find(const Term& term) const;

  /// Returns the term for `id`; error if the id was never issued.
  Result<Term> Lookup(TermId id) const;

  /// Unchecked lookup; `id` must have been issued by this dictionary.
  const Term& term(TermId id) const { return terms_[id]; }

  /// Number of interned terms (ids are dense in [0, size())).
  size_t size() const { return terms_.size(); }

 private:
  std::vector<Term> terms_;
  std::unordered_map<std::string, TermId> index_;  // keyed on ToNTriples()
};

}  // namespace evorec::rdf

#endif  // EVOREC_RDF_DICTIONARY_H_
