#ifndef EVOREC_RDF_TRIPLE_H_
#define EVOREC_RDF_TRIPLE_H_

#include <compare>
#include <cstddef>

#include "common/hash.h"
#include "rdf/term.h"

namespace evorec::rdf {

/// A dictionary-encoded RDF triple. Ordering is lexicographic on
/// (subject, predicate, object), which is the canonical SPO index
/// order.
struct Triple {
  TermId subject = kAnyTerm;
  TermId predicate = kAnyTerm;
  TermId object = kAnyTerm;

  Triple() = default;
  Triple(TermId s, TermId p, TermId o)
      : subject(s), predicate(p), object(o) {}

  friend auto operator<=>(const Triple&, const Triple&) = default;
};

/// A triple pattern; kAnyTerm components act as wildcards.
struct TriplePattern {
  TermId subject = kAnyTerm;
  TermId predicate = kAnyTerm;
  TermId object = kAnyTerm;

  TriplePattern() = default;
  TriplePattern(TermId s, TermId p, TermId o)
      : subject(s), predicate(p), object(o) {}

  /// True iff `t` unifies with this pattern.
  bool Matches(const Triple& t) const {
    return (subject == kAnyTerm || subject == t.subject) &&
           (predicate == kAnyTerm || predicate == t.predicate) &&
           (object == kAnyTerm || object == t.object);
  }
};

struct TripleHash {
  size_t operator()(const Triple& t) const {
    size_t seed = 0;
    HashCombine(seed, t.subject);
    HashCombine(seed, t.predicate);
    HashCombine(seed, t.object);
    return seed;
  }
};

}  // namespace evorec::rdf

#endif  // EVOREC_RDF_TRIPLE_H_
