#ifndef EVOREC_RDF_TERM_H_
#define EVOREC_RDF_TERM_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>

namespace evorec::rdf {

/// Dense identifier assigned by a Dictionary to an interned Term.
using TermId = uint32_t;

/// Sentinel meaning "no term" / "any term" (pattern wildcard).
inline constexpr TermId kAnyTerm = UINT32_MAX;

/// Sentinel returned by SortedIndexOf for ids outside the universe.
inline constexpr size_t kNotInUniverse = SIZE_MAX;

/// Position of `id` in the sorted id list `universe`, or
/// kNotInUniverse. The dense-id primitive of the flat measure kernels:
/// sorted term universes (union classes/properties, a view's classes)
/// double as contiguous index spaces, so per-term scores live in plain
/// vectors instead of hash maps.
inline size_t SortedIndexOf(std::span<const TermId> universe, TermId id) {
  const auto it = std::lower_bound(universe.begin(), universe.end(), id);
  if (it == universe.end() || *it != id) return kNotInUniverse;
  return static_cast<size_t>(it - universe.begin());
}

/// RDF term kinds. Blank nodes are carried with a local label; literal
/// language tags and datatypes are kept verbatim.
enum class TermKind : uint8_t {
  kIri = 0,
  kLiteral = 1,
  kBlank = 2,
};

/// An RDF term value. Terms are immutable once interned into a
/// Dictionary; the struct itself is a plain value type.
struct Term {
  TermKind kind = TermKind::kIri;
  /// IRI string, literal lexical form, or blank node label.
  std::string lexical;
  /// Datatype IRI for typed literals; empty otherwise.
  std::string datatype;
  /// Language tag for language-tagged literals; empty otherwise.
  std::string language;

  /// Factory for an IRI term.
  static Term Iri(std::string_view iri);
  /// Factory for a plain / typed / language-tagged literal.
  static Term Literal(std::string_view value, std::string_view datatype = "",
                      std::string_view language = "");
  /// Factory for a blank node with a local label.
  static Term Blank(std::string_view label);

  bool is_iri() const { return kind == TermKind::kIri; }
  bool is_literal() const { return kind == TermKind::kLiteral; }
  bool is_blank() const { return kind == TermKind::kBlank; }

  /// Canonical N-Triples serialisation; also the dictionary
  /// deduplication key.
  std::string ToNTriples() const;

  friend bool operator==(const Term& a, const Term& b) {
    return a.kind == b.kind && a.lexical == b.lexical &&
           a.datatype == b.datatype && a.language == b.language;
  }
};

}  // namespace evorec::rdf

#endif  // EVOREC_RDF_TERM_H_
