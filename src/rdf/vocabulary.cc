#include "rdf/vocabulary.h"

namespace evorec::rdf {

Vocabulary Vocabulary::Intern(Dictionary& dictionary) {
  Vocabulary v;
  v.rdf_type = dictionary.InternIri(iri::kRdfType);
  v.rdf_property = dictionary.InternIri(iri::kRdfProperty);
  v.rdfs_subclass_of = dictionary.InternIri(iri::kRdfsSubClassOf);
  v.rdfs_subproperty_of = dictionary.InternIri(iri::kRdfsSubPropertyOf);
  v.rdfs_domain = dictionary.InternIri(iri::kRdfsDomain);
  v.rdfs_range = dictionary.InternIri(iri::kRdfsRange);
  v.rdfs_class = dictionary.InternIri(iri::kRdfsClass);
  v.rdfs_label = dictionary.InternIri(iri::kRdfsLabel);
  v.owl_class = dictionary.InternIri(iri::kOwlClass);
  return v;
}

bool Vocabulary::IsSchemaPredicate(TermId predicate) const {
  return predicate == rdf_type || predicate == rdfs_subclass_of ||
         predicate == rdfs_subproperty_of || predicate == rdfs_domain ||
         predicate == rdfs_range || predicate == rdfs_label;
}

}  // namespace evorec::rdf
