#include "rdf/triple_store.h"

#include <algorithm>
#include <utility>

namespace evorec::rdf {

namespace {

// Rewrites `base` (sorted-unique under `less`) to (base ∪ adds) −
// removes in one linear pass. `adds` and `removes` must each be
// sorted-unique under `less` and disjoint from each other; elements of
// `adds` already in `base` and elements of `removes` absent from
// `base` are tolerated, which is what makes re-applying a last-wins
// backlog idempotent.
template <class Less>
void MergeApply(std::vector<Triple>& base, const std::vector<Triple>& adds,
                const std::vector<Triple>& removes, Less less) {
  if (adds.empty() && removes.empty()) return;
  std::vector<Triple> out;
  out.reserve(base.size() + adds.size());
  auto r = removes.begin();
  const auto re = removes.end();
  // Consumes `removes` monotonically: emitted candidates arrive in
  // `less` order.
  auto removed = [&](const Triple& t) {
    while (r != re && less(*r, t)) ++r;
    return r != re && !less(t, *r);
  };
  auto b = base.begin();
  const auto be = base.end();
  auto a = adds.begin();
  const auto ae = adds.end();
  while (b != be && a != ae) {
    if (less(*b, *a)) {
      if (!removed(*b)) out.push_back(*b);
      ++b;
    } else if (less(*a, *b)) {
      if (!removed(*a)) out.push_back(*a);
      ++a;
    } else {  // duplicate add: emit once
      if (!removed(*b)) out.push_back(*b);
      ++b;
      ++a;
    }
  }
  for (; b != be; ++b) {
    if (!removed(*b)) out.push_back(*b);
  }
  for (; a != ae; ++a) {
    if (!removed(*a)) out.push_back(*a);
  }
  base.swap(out);
}

// out = (lhs − minus) ∪ plus, all sorted-unique in SPO order.
std::vector<Triple> RebaseSet(const std::vector<Triple>& lhs,
                              const std::vector<Triple>& minus,
                              const std::vector<Triple>& plus) {
  std::vector<Triple> kept;
  kept.reserve(lhs.size());
  std::set_difference(lhs.begin(), lhs.end(), minus.begin(), minus.end(),
                      std::back_inserter(kept));
  std::vector<Triple> out;
  out.reserve(kept.size() + plus.size());
  std::set_union(kept.begin(), kept.end(), plus.begin(), plus.end(),
                 std::back_inserter(out));
  return out;
}

void FreeVector(std::vector<Triple>& v) {
  v.clear();
  v.shrink_to_fit();
}

}  // namespace

TripleStore TripleStore::FromSorted(std::vector<Triple> sorted_spo) {
  TripleStore store;
  store.size_ = sorted_spo.size();
  if (!sorted_spo.empty()) {
    store.segments_.push_back(std::make_shared<const Segment>(
        std::move(sorted_spo), std::vector<Triple>{}));
  }
  // The empty secondary indexes no longer mirror the stack; they
  // rebuild from it on first use.
  store.pos_state_ = IndexState::kRebuild;
  store.osp_state_ = IndexState::kRebuild;
  return store;
}

TripleStore TripleStore::FromSegments(
    std::vector<std::shared_ptr<const Segment>> segments,
    size_t effective_size) {
  TripleStore store;
  store.segments_ = std::move(segments);
  store.size_ = effective_size;
  store.pos_state_ = IndexState::kRebuild;
  store.osp_state_ = IndexState::kRebuild;
  return store;
}

TripleStore::TripleStore(const TripleStore& other)
    : segments_(other.segments_),
      size_(other.size_),
      flat_(other.flat_),
      pending_adds_(other.pending_adds_),
      pending_removes_(other.pending_removes_),
      dirty_(other.dirty_) {
  if (other.pos_state_ == IndexState::kFresh) {
    pos_ = other.pos_;  // shared immutable run — pointer copy
  } else {
    pos_state_ = IndexState::kRebuild;
  }
  if (other.osp_state_ == IndexState::kFresh) {
    osp_ = other.osp_;
  } else {
    osp_state_ = IndexState::kRebuild;
  }
  // The backlog only serves stale indexes, and those were dropped.
}

TripleStore& TripleStore::operator=(const TripleStore& other) {
  if (this != &other) {
    TripleStore tmp(other);
    *this = std::move(tmp);
  }
  return *this;
}

void TripleStore::Add(const Triple& t) {
  pending_removes_.erase(t);
  pending_adds_.insert(t);
  dirty_ = true;
}

void TripleStore::Remove(const Triple& t) {
  pending_adds_.erase(t);
  pending_removes_.insert(t);
  dirty_ = true;
}

void TripleStore::AddAll(const std::vector<Triple>& triples) {
  if (triples.empty()) return;
  pending_adds_.reserve(pending_adds_.size() + triples.size());
  for (const Triple& t : triples) {
    pending_removes_.erase(t);
    pending_adds_.insert(t);
  }
  dirty_ = true;
}

void TripleStore::RemoveAll(const std::vector<Triple>& triples) {
  if (triples.empty()) return;
  pending_removes_.reserve(pending_removes_.size() + triples.size());
  for (const Triple& t : triples) {
    pending_adds_.erase(t);
    pending_removes_.insert(t);
  }
  dirty_ = true;
}

bool TripleStore::ContainsFrozen(const Triple& t) const {
  // Newest segment mentioning the triple decides (last-wins).
  for (size_t i = segments_.size(); i-- > 0;) {
    const Segment& seg = *segments_[i];
    if (seg.ContainsLive(t)) return true;
    if (seg.ContainsTombstone(t)) return false;
  }
  return false;
}

void TripleStore::Compact() const {
  if (!dirty_) return;
  dirty_ = false;
  if (pending_adds_.empty() && pending_removes_.empty()) return;

  // The buffers are disjoint (Add/Remove keep a triple in the set of
  // its most recent operation), so adds and removes can be applied in
  // either order.
  std::vector<Triple> adds(pending_adds_.begin(), pending_adds_.end());
  std::vector<Triple> removes(pending_removes_.begin(),
                              pending_removes_.end());
  pending_adds_.clear();
  pending_removes_.clear();
  std::sort(adds.begin(), adds.end());
  std::sort(removes.begin(), removes.end());

  // Freeze the head: filter the delta down to the *effective* state
  // transition against the frozen stack (an add of a visible triple or
  // a remove of an absent one changes nothing), so segments carry
  // exactly the net change — which also keeps size() O(1).
  std::vector<Triple> live;
  live.reserve(adds.size());
  for (const Triple& t : adds) {
    if (!ContainsFrozen(t)) live.push_back(t);
  }
  std::vector<Triple> tombstones;
  tombstones.reserve(removes.size());
  for (const Triple& t : removes) {
    if (ContainsFrozen(t)) tombstones.push_back(t);
  }

  if (!live.empty() || !tombstones.empty()) {
    size_ += live.size();
    size_ -= tombstones.size();
    if (segments_.empty()) tombstones.clear();  // nothing older to shadow
    segments_.push_back(std::make_shared<const Segment>(
        std::move(live), std::move(tombstones)));
    ++stats_.segments_frozen;
    flat_.reset();
    MaybeMergeSegments();
  }

  if (pos_state_ == IndexState::kFresh) pos_state_ = IndexState::kStale;
  if (osp_state_ == IndexState::kFresh) osp_state_ = IndexState::kStale;
  AccumulateBacklog(adds, removes);
  ++stats_.compactions;
}

void TripleStore::MaybeMergeSegments() const {
  // Size-tiered policy: keep entry counts geometrically decreasing
  // newest-to-oldest. Whenever a freeze (or a previous merge) leaves
  // the newest segment at least half its older neighbour, merge the
  // pair; tombstones are garbage-collected when a merge reaches the
  // bottom of the stack. Bounds the stack depth at O(log n) and
  // amortises total merge work to O(n log n) over any op sequence.
  while (segments_.size() >= 2) {
    const size_t k = segments_.size() - 1;
    if (segments_[k - 1]->entry_count() > 2 * segments_[k]->entry_count()) {
      break;
    }
    auto merged = Segment::Merge(*segments_[k - 1], *segments_[k],
                                 /*drop_tombstones=*/k - 1 == 0);
    segments_.pop_back();
    segments_.back() = std::move(merged);
    ++stats_.segment_merges;
    if (segments_.back()->entry_count() == 0) {
      segments_.pop_back();  // adds and removes annihilated completely
    }
  }
}

void TripleStore::AccumulateBacklog(const std::vector<Triple>& adds,
                                    const std::vector<Triple>& removes) const {
  if (pos_state_ != IndexState::kStale && osp_state_ != IndexState::kStale) {
    return;  // nothing can use the backlog
  }
  // Last-wins composition keeps adds/removes disjoint: a newer remove
  // cancels an older backlog add and vice versa.
  backlog_adds_ = RebaseSet(backlog_adds_, removes, adds);
  backlog_removes_ = RebaseSet(backlog_removes_, adds, removes);

  // Once the backlog rivals the store itself, catching up costs as
  // much as rebuilding — stop carrying it.
  const size_t backlog = backlog_adds_.size() + backlog_removes_.size();
  if (backlog > size_ / 2 + 64) {
    if (pos_state_ == IndexState::kStale) {
      pos_state_ = IndexState::kRebuild;
      pos_.reset();
    }
    if (osp_state_ == IndexState::kStale) {
      osp_state_ = IndexState::kRebuild;
      osp_.reset();
    }
    MaybeReleaseBacklog();
  }
}

void TripleStore::MaybeReleaseBacklog() const {
  if (pos_state_ != IndexState::kStale && osp_state_ != IndexState::kStale) {
    FreeVector(backlog_adds_);
    FreeVector(backlog_removes_);
  }
}

void TripleStore::EnsurePos() const {
  Compact();
  if (pos_state_ == IndexState::kFresh) {
    // kFresh with no run yet only happens on a store that has never
    // frozen anything — i.e. an empty store.
    if (!pos_) pos_ = std::make_shared<const std::vector<Triple>>();
    return;
  }
  std::vector<Triple> next;
  if (pos_state_ == IndexState::kStale) {
    if (pos_) next = *pos_;
    std::vector<Triple> adds = backlog_adds_;
    std::vector<Triple> removes = backlog_removes_;
    std::sort(adds.begin(), adds.end(), PosLess);
    std::sort(removes.begin(), removes.end(), PosLess);
    MergeApply(next, adds, removes, PosLess);
    ++stats_.pos_catchups;
  } else {
    next.reserve(size_);
    detail::WalkSegments(segments_, Triple{0, 0, 0}, [&](const Triple& t) {
      next.push_back(t);
      return true;
    });
    std::sort(next.begin(), next.end(), PosLess);
    ++stats_.pos_full_builds;
  }
  pos_ = std::make_shared<const std::vector<Triple>>(std::move(next));
  pos_state_ = IndexState::kFresh;
  MaybeReleaseBacklog();
}

void TripleStore::EnsureOsp() const {
  Compact();
  if (osp_state_ == IndexState::kFresh) {
    if (!osp_) osp_ = std::make_shared<const std::vector<Triple>>();
    return;
  }
  std::vector<Triple> next;
  if (osp_state_ == IndexState::kStale) {
    if (osp_) next = *osp_;
    std::vector<Triple> adds = backlog_adds_;
    std::vector<Triple> removes = backlog_removes_;
    std::sort(adds.begin(), adds.end(), OspLess);
    std::sort(removes.begin(), removes.end(), OspLess);
    MergeApply(next, adds, removes, OspLess);
    ++stats_.osp_catchups;
  } else {
    next.reserve(size_);
    detail::WalkSegments(segments_, Triple{0, 0, 0}, [&](const Triple& t) {
      next.push_back(t);
      return true;
    });
    std::sort(next.begin(), next.end(), OspLess);
    ++stats_.osp_full_builds;
  }
  osp_ = std::make_shared<const std::vector<Triple>>(std::move(next));
  osp_state_ = IndexState::kFresh;
  MaybeReleaseBacklog();
}

void TripleStore::PrepareIndexes() const {
  Compact();
  EnsurePos();
  EnsureOsp();
}

const std::vector<std::shared_ptr<const Segment>>& TripleStore::segments()
    const {
  Compact();
  return segments_;
}

size_t TripleStore::MemoryBytes() const {
  size_t bytes = 0;
  for (const auto& seg : segments_) bytes += seg->MemoryBytes();
  if (pos_) bytes += pos_->capacity() * sizeof(Triple);
  if (osp_) bytes += osp_->capacity() * sizeof(Triple);
  // A flat memo that merely aliases the base segment holds no storage
  // of its own.
  if (flat_ &&
      (segments_.empty() || flat_.get() != &segments_.front()->live())) {
    bytes += flat_->capacity() * sizeof(Triple);
  }
  bytes += (backlog_adds_.capacity() + backlog_removes_.capacity()) *
           sizeof(Triple);
  bytes += (pending_adds_.size() + pending_removes_.size()) * sizeof(Triple);
  return bytes;
}

size_t TripleStore::MemoryBytesDedup(
    std::unordered_set<const void*>& seen) const {
  size_t bytes = 0;
  for (const auto& seg : segments_) {
    if (seen.insert(seg.get()).second) bytes += seg->MemoryBytes();
  }
  if (pos_ && seen.insert(pos_.get()).second) {
    bytes += pos_->capacity() * sizeof(Triple);
  }
  if (osp_ && seen.insert(osp_.get()).second) {
    bytes += osp_->capacity() * sizeof(Triple);
  }
  if (flat_ &&
      (segments_.empty() || flat_.get() != &segments_.front()->live()) &&
      seen.insert(flat_.get()).second) {
    bytes += flat_->capacity() * sizeof(Triple);
  }
  bytes += (backlog_adds_.capacity() + backlog_removes_.capacity()) *
           sizeof(Triple);
  bytes += (pending_adds_.size() + pending_removes_.size()) * sizeof(Triple);
  return bytes;
}

bool TripleStore::Contains(const Triple& t) const {
  Compact();
  return ContainsFrozen(t);
}

size_t TripleStore::size() const {
  Compact();
  return size_;
}

const std::vector<Triple>& TripleStore::triples() const {
  Compact();
  if (flat_) return *flat_;
  if (segments_.empty()) {
    flat_ = std::make_shared<const std::vector<Triple>>();
    return *flat_;
  }
  if (segments_.size() == 1) {
    // Zero-copy alias: the lone base segment *is* the flat SPO run
    // (its tombstones, if any, shadow nothing).
    flat_ = std::shared_ptr<const std::vector<Triple>>(segments_.front(),
                                                       &segments_.front()->live());
    return *flat_;
  }
  auto flat = std::make_shared<std::vector<Triple>>();
  flat->reserve(size_);
  detail::WalkSegments(segments_, Triple{0, 0, 0}, [&](const Triple& t) {
    flat->push_back(t);
    return true;
  });
  ++stats_.materializations;
  flat_ = std::move(flat);
  return *flat_;
}

void TripleStore::Scan(const TriplePattern& pattern,
                       const std::function<bool(const Triple&)>& fn) const {
  ScanT(pattern, fn);
}

std::vector<Triple> TripleStore::Match(const TriplePattern& pattern) const {
  std::vector<Triple> out;
  // Every scan branch already emits in SPO order except (*,p,*), whose
  // POS range can interleave subjects across objects. Track order
  // violations during collection so the O(n log n) repair sort only
  // runs when the range really is out of order (single-object
  // predicates — rdfs:subClassOf-style ranges — come out sorted).
  const bool pos_range_scan = pattern.subject == kAnyTerm &&
                              pattern.predicate != kAnyTerm &&
                              pattern.object == kAnyTerm;
  bool sorted = true;
  ScanT(pattern, [&](const Triple& t) {
    if (pos_range_scan && !out.empty() && t < out.back()) sorted = false;
    out.push_back(t);
    return true;
  });
  if (!sorted) std::sort(out.begin(), out.end());
  return out;
}

std::vector<Triple> TripleStore::Difference(const TripleStore& a,
                                            const TripleStore& b) {
  a.Compact();
  b.Compact();
  std::vector<Triple> out;
  detail::EffectiveCursor ca(a.segments_, Triple{0, 0, 0});
  detail::EffectiveCursor cb(b.segments_, Triple{0, 0, 0});
  Triple ta, tb;
  bool ha = ca.Next(&ta);
  bool hb = cb.Next(&tb);
  while (ha) {
    if (!hb || ta < tb) {
      out.push_back(ta);
      ha = ca.Next(&ta);
    } else if (tb < ta) {
      hb = cb.Next(&tb);
    } else {
      ha = ca.Next(&ta);
      hb = cb.Next(&tb);
    }
  }
  return out;
}

}  // namespace evorec::rdf
