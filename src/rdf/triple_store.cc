#include "rdf/triple_store.h"

#include <algorithm>

namespace evorec::rdf {

namespace {

bool PosLess(const Triple& a, const Triple& b) {
  if (a.predicate != b.predicate) return a.predicate < b.predicate;
  if (a.object != b.object) return a.object < b.object;
  return a.subject < b.subject;
}

bool OspLess(const Triple& a, const Triple& b) {
  if (a.object != b.object) return a.object < b.object;
  if (a.subject != b.subject) return a.subject < b.subject;
  return a.predicate < b.predicate;
}

void SortUnique(std::vector<Triple>& triples) {
  std::sort(triples.begin(), triples.end());
  triples.erase(std::unique(triples.begin(), triples.end()), triples.end());
}

}  // namespace

void TripleStore::Add(const Triple& t) {
  pending_removes_.erase(t);
  pending_adds_.insert(t);
  dirty_ = true;
}

void TripleStore::Remove(const Triple& t) {
  pending_adds_.erase(t);
  pending_removes_.insert(t);
  dirty_ = true;
}

void TripleStore::AddAll(const std::vector<Triple>& triples) {
  for (const Triple& t : triples) {
    pending_removes_.erase(t);
    pending_adds_.insert(t);
  }
  dirty_ = true;
}

void TripleStore::Compact() const {
  if (!dirty_) return;
  if (!pending_adds_.empty() || !pending_removes_.empty()) {
    // The buffers are disjoint (Add/Remove keep a triple in the set of
    // its most recent operation), so adds and removes can be applied
    // in either order here.
    std::vector<Triple> adds(pending_adds_.begin(), pending_adds_.end());
    std::vector<Triple> removes(pending_removes_.begin(),
                                pending_removes_.end());
    SortUnique(adds);
    SortUnique(removes);
    std::vector<Triple> merged;
    merged.reserve(spo_.size() + adds.size());
    std::set_union(spo_.begin(), spo_.end(), adds.begin(), adds.end(),
                   std::back_inserter(merged));
    if (!removes.empty()) {
      std::vector<Triple> remaining;
      remaining.reserve(merged.size());
      std::set_difference(merged.begin(), merged.end(), removes.begin(),
                          removes.end(), std::back_inserter(remaining));
      merged.swap(remaining);
    }
    spo_.swap(merged);
    pending_adds_.clear();
    pending_removes_.clear();
  }
  pos_ = spo_;
  std::sort(pos_.begin(), pos_.end(), PosLess);
  osp_ = spo_;
  std::sort(osp_.begin(), osp_.end(), OspLess);
  dirty_ = false;
}

bool TripleStore::Contains(const Triple& t) const {
  Compact();
  return std::binary_search(spo_.begin(), spo_.end(), t);
}

size_t TripleStore::size() const {
  Compact();
  return spo_.size();
}

const std::vector<Triple>& TripleStore::triples() const {
  Compact();
  return spo_;
}

void TripleStore::Scan(const TriplePattern& pattern,
                       const std::function<bool(const Triple&)>& fn) const {
  Compact();
  const bool has_s = pattern.subject != kAnyTerm;
  const bool has_p = pattern.predicate != kAnyTerm;
  const bool has_o = pattern.object != kAnyTerm;

  if (has_s) {
    // (s,*,*), (s,p,*), (s,p,o), (s,*,o): SPO prefix on s (and p).
    ScanSpo(pattern, fn);
    return;
  }
  if (has_p) {
    // (*,p,*), (*,p,o): POS prefix.
    Triple lo{0, pattern.predicate, has_o ? pattern.object : 0};
    auto begin = std::lower_bound(pos_.begin(), pos_.end(), lo, PosLess);
    for (auto it = begin; it != pos_.end(); ++it) {
      if (it->predicate != pattern.predicate) break;
      if (has_o && it->object != pattern.object) {
        if (it->object > pattern.object) break;
        continue;
      }
      if (!fn(*it)) return;
    }
    return;
  }
  if (has_o) {
    // (*,*,o): OSP prefix.
    Triple lo{0, 0, pattern.object};
    auto begin = std::lower_bound(osp_.begin(), osp_.end(), lo, OspLess);
    for (auto it = begin; it != osp_.end(); ++it) {
      if (it->object != pattern.object) break;
      if (!fn(*it)) return;
    }
    return;
  }
  // (*,*,*): full scan.
  for (const Triple& t : spo_) {
    if (!fn(t)) return;
  }
}

void TripleStore::ScanSpo(const TriplePattern& pattern,
                          const std::function<bool(const Triple&)>& fn) const {
  const bool has_p = pattern.predicate != kAnyTerm;
  const bool has_o = pattern.object != kAnyTerm;
  Triple lo{pattern.subject, has_p ? pattern.predicate : 0,
            (has_p && has_o) ? pattern.object : 0};
  auto begin = std::lower_bound(spo_.begin(), spo_.end(), lo);
  for (auto it = begin; it != spo_.end(); ++it) {
    if (it->subject != pattern.subject) break;
    if (has_p) {
      if (it->predicate > pattern.predicate) break;
      if (it->predicate != pattern.predicate) continue;
    }
    if (has_o && it->object != pattern.object) continue;
    if (!fn(*it)) return;
  }
}

std::vector<Triple> TripleStore::Match(const TriplePattern& pattern) const {
  std::vector<Triple> out;
  Scan(pattern, [&](const Triple& t) {
    out.push_back(t);
    return true;
  });
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<Triple> TripleStore::Difference(const TripleStore& a,
                                            const TripleStore& b) {
  a.Compact();
  b.Compact();
  std::vector<Triple> out;
  std::set_difference(a.spo_.begin(), a.spo_.end(), b.spo_.begin(),
                      b.spo_.end(), std::back_inserter(out));
  return out;
}

}  // namespace evorec::rdf
