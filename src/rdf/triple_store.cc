#include "rdf/triple_store.h"

#include <algorithm>
#include <utility>

namespace evorec::rdf {

namespace {

// Rewrites `base` (sorted-unique under `less`) to (base ∪ adds) −
// removes in one linear pass. `adds` and `removes` must each be
// sorted-unique under `less` and disjoint from each other; elements of
// `adds` already in `base` and elements of `removes` absent from
// `base` are tolerated, which is what makes re-applying a last-wins
// backlog idempotent.
template <class Less>
void MergeApply(std::vector<Triple>& base, const std::vector<Triple>& adds,
                const std::vector<Triple>& removes, Less less) {
  if (adds.empty() && removes.empty()) return;
  std::vector<Triple> out;
  out.reserve(base.size() + adds.size());
  auto r = removes.begin();
  const auto re = removes.end();
  // Consumes `removes` monotonically: emitted candidates arrive in
  // `less` order.
  auto removed = [&](const Triple& t) {
    while (r != re && less(*r, t)) ++r;
    return r != re && !less(t, *r);
  };
  auto b = base.begin();
  const auto be = base.end();
  auto a = adds.begin();
  const auto ae = adds.end();
  while (b != be && a != ae) {
    if (less(*b, *a)) {
      if (!removed(*b)) out.push_back(*b);
      ++b;
    } else if (less(*a, *b)) {
      if (!removed(*a)) out.push_back(*a);
      ++a;
    } else {  // duplicate add: emit once
      if (!removed(*b)) out.push_back(*b);
      ++b;
      ++a;
    }
  }
  for (; b != be; ++b) {
    if (!removed(*b)) out.push_back(*b);
  }
  for (; a != ae; ++a) {
    if (!removed(*a)) out.push_back(*a);
  }
  base.swap(out);
}

// out = (lhs − minus) ∪ plus, all sorted-unique in SPO order.
std::vector<Triple> RebaseSet(const std::vector<Triple>& lhs,
                              const std::vector<Triple>& minus,
                              const std::vector<Triple>& plus) {
  std::vector<Triple> kept;
  kept.reserve(lhs.size());
  std::set_difference(lhs.begin(), lhs.end(), minus.begin(), minus.end(),
                      std::back_inserter(kept));
  std::vector<Triple> out;
  out.reserve(kept.size() + plus.size());
  std::set_union(kept.begin(), kept.end(), plus.begin(), plus.end(),
                 std::back_inserter(out));
  return out;
}

void FreeVector(std::vector<Triple>& v) {
  v.clear();
  v.shrink_to_fit();
}

}  // namespace

TripleStore TripleStore::FromSorted(std::vector<Triple> sorted_spo) {
  TripleStore store;
  store.spo_ = std::move(sorted_spo);
  // The empty secondary indexes no longer mirror spo_; they rebuild
  // from it on first use.
  store.pos_state_ = IndexState::kRebuild;
  store.osp_state_ = IndexState::kRebuild;
  return store;
}

TripleStore::TripleStore(const TripleStore& other)
    : spo_(other.spo_),
      pending_adds_(other.pending_adds_),
      pending_removes_(other.pending_removes_),
      dirty_(other.dirty_) {
  if (other.pos_state_ == IndexState::kFresh) {
    pos_ = other.pos_;
  } else {
    pos_state_ = IndexState::kRebuild;
  }
  if (other.osp_state_ == IndexState::kFresh) {
    osp_ = other.osp_;
  } else {
    osp_state_ = IndexState::kRebuild;
  }
  // The backlog only serves stale indexes, and those were dropped.
}

TripleStore& TripleStore::operator=(const TripleStore& other) {
  if (this != &other) {
    TripleStore tmp(other);
    *this = std::move(tmp);
  }
  return *this;
}

void TripleStore::Add(const Triple& t) {
  pending_removes_.erase(t);
  pending_adds_.insert(t);
  dirty_ = true;
}

void TripleStore::Remove(const Triple& t) {
  pending_adds_.erase(t);
  pending_removes_.insert(t);
  dirty_ = true;
}

void TripleStore::AddAll(const std::vector<Triple>& triples) {
  if (triples.empty()) return;
  pending_adds_.reserve(pending_adds_.size() + triples.size());
  for (const Triple& t : triples) {
    pending_removes_.erase(t);
    pending_adds_.insert(t);
  }
  dirty_ = true;
}

void TripleStore::RemoveAll(const std::vector<Triple>& triples) {
  if (triples.empty()) return;
  pending_removes_.reserve(pending_removes_.size() + triples.size());
  for (const Triple& t : triples) {
    pending_adds_.erase(t);
    pending_removes_.insert(t);
  }
  dirty_ = true;
}

void TripleStore::Compact() const {
  if (!dirty_) return;
  dirty_ = false;
  if (pending_adds_.empty() && pending_removes_.empty()) return;

  // The buffers are disjoint (Add/Remove keep a triple in the set of
  // its most recent operation), so adds and removes can be applied in
  // either order.
  std::vector<Triple> adds(pending_adds_.begin(), pending_adds_.end());
  std::vector<Triple> removes(pending_removes_.begin(),
                              pending_removes_.end());
  pending_adds_.clear();
  pending_removes_.clear();
  std::sort(adds.begin(), adds.end());
  std::sort(removes.begin(), removes.end());

  MergeApply(spo_, adds, removes, std::less<Triple>());

  if (pos_state_ == IndexState::kFresh) pos_state_ = IndexState::kStale;
  if (osp_state_ == IndexState::kFresh) osp_state_ = IndexState::kStale;
  AccumulateBacklog(adds, removes);
  ++stats_.compactions;
}

void TripleStore::AccumulateBacklog(const std::vector<Triple>& adds,
                                    const std::vector<Triple>& removes) const {
  if (pos_state_ != IndexState::kStale && osp_state_ != IndexState::kStale) {
    return;  // nothing can use the backlog
  }
  // Last-wins composition keeps adds/removes disjoint: a newer remove
  // cancels an older backlog add and vice versa.
  backlog_adds_ = RebaseSet(backlog_adds_, removes, adds);
  backlog_removes_ = RebaseSet(backlog_removes_, adds, removes);

  // Once the backlog rivals the store itself, catching up costs as
  // much as rebuilding — stop carrying it.
  const size_t backlog = backlog_adds_.size() + backlog_removes_.size();
  if (backlog > spo_.size() / 2 + 64) {
    if (pos_state_ == IndexState::kStale) {
      pos_state_ = IndexState::kRebuild;
      FreeVector(pos_);
    }
    if (osp_state_ == IndexState::kStale) {
      osp_state_ = IndexState::kRebuild;
      FreeVector(osp_);
    }
    MaybeReleaseBacklog();
  }
}

void TripleStore::MaybeReleaseBacklog() const {
  if (pos_state_ != IndexState::kStale && osp_state_ != IndexState::kStale) {
    FreeVector(backlog_adds_);
    FreeVector(backlog_removes_);
  }
}

void TripleStore::EnsurePos() const {
  Compact();
  if (pos_state_ == IndexState::kFresh) return;
  if (pos_state_ == IndexState::kStale) {
    std::vector<Triple> adds = backlog_adds_;
    std::vector<Triple> removes = backlog_removes_;
    std::sort(adds.begin(), adds.end(), PosLess);
    std::sort(removes.begin(), removes.end(), PosLess);
    MergeApply(pos_, adds, removes, PosLess);
    ++stats_.pos_catchups;
  } else {
    pos_ = spo_;
    std::sort(pos_.begin(), pos_.end(), PosLess);
    ++stats_.pos_full_builds;
  }
  pos_state_ = IndexState::kFresh;
  MaybeReleaseBacklog();
}

void TripleStore::EnsureOsp() const {
  Compact();
  if (osp_state_ == IndexState::kFresh) return;
  if (osp_state_ == IndexState::kStale) {
    std::vector<Triple> adds = backlog_adds_;
    std::vector<Triple> removes = backlog_removes_;
    std::sort(adds.begin(), adds.end(), OspLess);
    std::sort(removes.begin(), removes.end(), OspLess);
    MergeApply(osp_, adds, removes, OspLess);
    ++stats_.osp_catchups;
  } else {
    osp_ = spo_;
    std::sort(osp_.begin(), osp_.end(), OspLess);
    ++stats_.osp_full_builds;
  }
  osp_state_ = IndexState::kFresh;
  MaybeReleaseBacklog();
}

void TripleStore::PrepareIndexes() const {
  Compact();
  EnsurePos();
  EnsureOsp();
}

size_t TripleStore::MemoryBytes() const {
  size_t bytes = (spo_.capacity() + pos_.capacity() + osp_.capacity() +
                  backlog_adds_.capacity() + backlog_removes_.capacity()) *
                 sizeof(Triple);
  bytes += (pending_adds_.size() + pending_removes_.size()) * sizeof(Triple);
  return bytes;
}

bool TripleStore::Contains(const Triple& t) const {
  Compact();
  return std::binary_search(spo_.begin(), spo_.end(), t);
}

size_t TripleStore::size() const {
  Compact();
  return spo_.size();
}

const std::vector<Triple>& TripleStore::triples() const {
  Compact();
  return spo_;
}

void TripleStore::Scan(const TriplePattern& pattern,
                       const std::function<bool(const Triple&)>& fn) const {
  ScanT(pattern, fn);
}

std::vector<Triple> TripleStore::Match(const TriplePattern& pattern) const {
  std::vector<Triple> out;
  // Every scan branch already emits in SPO order except (*,p,*), whose
  // POS range can interleave subjects across objects. Track order
  // violations during collection so the O(n log n) repair sort only
  // runs when the range really is out of order (single-object
  // predicates — rdfs:subClassOf-style ranges — come out sorted).
  const bool pos_range_scan = pattern.subject == kAnyTerm &&
                              pattern.predicate != kAnyTerm &&
                              pattern.object == kAnyTerm;
  bool sorted = true;
  ScanT(pattern, [&](const Triple& t) {
    if (pos_range_scan && !out.empty() && t < out.back()) sorted = false;
    out.push_back(t);
    return true;
  });
  if (!sorted) std::sort(out.begin(), out.end());
  return out;
}

std::vector<Triple> TripleStore::Difference(const TripleStore& a,
                                            const TripleStore& b) {
  a.Compact();
  b.Compact();
  std::vector<Triple> out;
  std::set_difference(a.spo_.begin(), a.spo_.end(), b.spo_.begin(),
                      b.spo_.end(), std::back_inserter(out));
  return out;
}

}  // namespace evorec::rdf
