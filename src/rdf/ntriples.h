#ifndef EVOREC_RDF_NTRIPLES_H_
#define EVOREC_RDF_NTRIPLES_H_

#include <string>
#include <string_view>

#include "common/status.h"
#include "rdf/dictionary.h"
#include "rdf/triple_store.h"

namespace evorec::rdf {

/// Parses N-Triples text into `store`, interning terms into
/// `dictionary`. Supports IRIs, blank nodes, plain / typed /
/// language-tagged literals, comments (# ...) and blank lines.
/// Fails on the first malformed line with its line number.
Status ParseNTriples(std::string_view text, Dictionary& dictionary,
                     TripleStore& store);

/// Serialises `store` to canonical N-Triples (SPO order, one statement
/// per line). `dictionary` must be the one the store's ids refer to.
std::string WriteNTriples(const TripleStore& store,
                          const Dictionary& dictionary);

}  // namespace evorec::rdf

#endif  // EVOREC_RDF_NTRIPLES_H_
