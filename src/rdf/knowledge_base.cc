#include "rdf/knowledge_base.h"

namespace evorec::rdf {

KnowledgeBase::KnowledgeBase()
    : dictionary_(std::make_shared<Dictionary>()),
      vocabulary_(Vocabulary::Intern(*dictionary_)) {}

KnowledgeBase::KnowledgeBase(std::shared_ptr<Dictionary> dictionary)
    : dictionary_(std::move(dictionary)),
      vocabulary_(Vocabulary::Intern(*dictionary_)) {}

KnowledgeBase::KnowledgeBase(std::shared_ptr<Dictionary> dictionary,
                             TripleStore store)
    : dictionary_(std::move(dictionary)),
      vocabulary_(Vocabulary::Intern(*dictionary_)),
      store_(std::move(store)) {}

void KnowledgeBase::AddIriTriple(std::string_view s, std::string_view p,
                                 std::string_view o) {
  store_.Add(Triple(dictionary_->InternIri(s), dictionary_->InternIri(p),
                    dictionary_->InternIri(o)));
}

void KnowledgeBase::AddLiteralTriple(std::string_view s, std::string_view p,
                                     std::string_view value,
                                     std::string_view datatype) {
  store_.Add(Triple(dictionary_->InternIri(s), dictionary_->InternIri(p),
                    dictionary_->InternLiteral(value, datatype)));
}

TermId KnowledgeBase::DeclareClass(std::string_view cls) {
  const TermId id = dictionary_->InternIri(cls);
  store_.Add(Triple(id, vocabulary_.rdf_type, vocabulary_.rdfs_class));
  return id;
}

TermId KnowledgeBase::DeclareProperty(std::string_view property,
                                      std::string_view domain,
                                      std::string_view range) {
  const TermId id = dictionary_->InternIri(property);
  store_.Add(Triple(id, vocabulary_.rdf_type, vocabulary_.rdf_property));
  if (!domain.empty()) {
    store_.Add(
        Triple(id, vocabulary_.rdfs_domain, dictionary_->InternIri(domain)));
  }
  if (!range.empty()) {
    store_.Add(
        Triple(id, vocabulary_.rdfs_range, dictionary_->InternIri(range)));
  }
  return id;
}

}  // namespace evorec::rdf
