#ifndef EVOREC_VERSION_VERSION_H_
#define EVOREC_VERSION_VERSION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "rdf/triple.h"

namespace evorec::version {

/// Dense version identifier; version 0 is the base snapshot.
using VersionId = uint32_t;

/// Commit metadata attached to each version — the raw material for
/// provenance/transparency (paper §III.b: who changed what and when).
struct VersionInfo {
  VersionId id = 0;
  std::string author;
  std::string message;
  /// Logical commit time (caller-supplied monotonic tick or epoch
  /// seconds; the library never reads wall-clock itself).
  uint64_t timestamp = 0;
  size_t additions = 0;
  size_t removals = 0;
};

/// A set of triple-level changes to apply on top of a version.
/// Removals are applied after additions; adding and removing the same
/// triple in one ChangeSet nets to "absent".
struct ChangeSet {
  std::vector<rdf::Triple> additions;
  std::vector<rdf::Triple> removals;

  bool empty() const { return additions.empty() && removals.empty(); }
  size_t size() const { return additions.size() + removals.size(); }
};

/// How historical versions are stored (cf. archiving policies for
/// evolving RDF datasets, Stefanidis et al. [13]).
enum class ArchivePolicy {
  /// Every version keeps a fully materialised triple store
  /// (independent copies; fast snapshots, high memory).
  kFullMaterialization,
  /// Only the base snapshot is materialised; later versions store
  /// change sets and are reconstructed on demand (change-based; low
  /// memory, snapshot cost linear in chain length).
  kDeltaChain,
  /// Change sets plus a full checkpoint every
  /// `checkpoint_interval` versions: reconstruction replays at most
  /// `checkpoint_interval − 1` deltas (the hybrid/IC+CB policy).
  kHybridCheckpoint,
};

}  // namespace evorec::version

#endif  // EVOREC_VERSION_VERSION_H_
