#ifndef EVOREC_VERSION_RECOVERY_H_
#define EVOREC_VERSION_RECOVERY_H_

#include <memory>
#include <string>

#include "common/result.h"
#include "storage/commit_log.h"
#include "storage/snapshot.h"
#include "version/versioned_kb.h"

namespace evorec::version {

/// Durable startup for a versioned KB: load the latest snapshot,
/// replay the commit-log tail, and come back with the exact
/// fingerprint chain the pre-restart process had — so a warm-started
/// engine (engine::RecommendationService::WarmStart) resumes serving
/// with its cache keys intact. The inverse direction is
/// SaveVersionSnapshot + VersionedKnowledgeBase::AttachCommitLog.

struct RecoveryOptions {
  /// Archive policy of the restored KB (independent of the original's;
  /// policies are observationally equivalent).
  ArchivePolicy policy = ArchivePolicy::kDeltaChain;
  size_t checkpoint_interval = 4;
  /// Stop cleanly before a torn final log record (WAL semantics)
  /// instead of failing recovery.
  bool allow_torn_tail = true;
  /// Check every replayed commit's chained fingerprint against the
  /// one its record stored; a mismatch means the snapshot and log do
  /// not belong to the same history. Cheap — leave it on.
  bool verify_fingerprints = true;
};

/// A recovered KB. Version ids restart at 0: the restored version 0
/// is the snapshot's content (original id `base_version`), and the
/// log tail's commits follow as 1, 2, …. Fingerprints — the identity
/// the engine layer keys on — are the original ones.
struct RecoveredKb {
  std::unique_ptr<VersionedKnowledgeBase> vkb;
  /// Original version id of the restored version 0.
  VersionId base_version = 0;
  /// Log records replayed on top of the snapshot.
  size_t replayed_commits = 0;
  /// Log records at or below base_version (already in the snapshot).
  size_t skipped_records = 0;
};

/// Saves version `v` of `vkb` as a binary snapshot at `path`,
/// stamping it with v's id and chained content fingerprint.
Status SaveVersionSnapshot(const VersionedKnowledgeBase& vkb, VersionId v,
                           const std::string& path,
                           const storage::SnapshotOptions& options = {});

/// Loads the snapshot at `snapshot_path` and replays the records of
/// `log_path` (pass "" for snapshot-only recovery) whose version id
/// exceeds the snapshot's. Errors cleanly on mismatched pairs: a
/// version-id gap between snapshot and log tail, a dictionary-tail
/// misalignment, or (with verify_fingerprints) a fingerprint chain
/// divergence.
Result<RecoveredKb> RecoverFromDisk(const std::string& snapshot_path,
                                    const std::string& log_path,
                                    const RecoveryOptions& options = {});

}  // namespace evorec::version

#endif  // EVOREC_VERSION_RECOVERY_H_
