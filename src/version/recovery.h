#ifndef EVOREC_VERSION_RECOVERY_H_
#define EVOREC_VERSION_RECOVERY_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "storage/commit_log.h"
#include "storage/snapshot.h"
#include "version/versioned_kb.h"

namespace evorec::version {

/// Durable startup for a versioned KB: load the latest snapshot,
/// replay the commit-log tail, and come back with the exact
/// fingerprint chain the pre-restart process had — so a warm-started
/// engine (engine::RecommendationService::WarmStart) resumes serving
/// with its cache keys intact. The inverse direction is
/// SaveVersionSnapshot + VersionedKnowledgeBase::AttachCommitLog.
///
/// The checkpoint-directory API makes startup *self-healing*: keep
/// the last K snapshots (SaveCheckpoint), and RecoverFromCheckpoints
/// tries them newest-first, quarantining any that fail to load or
/// disagree with the log (renamed to `<name>.corrupt` for post-mortem)
/// and paying a longer log replay from the next-older one instead. A
/// corrupt *log* record below the readable tail is the one
/// unrecoverable case — no snapshot choice can cross it — and is
/// reported as such rather than blamed on a healthy snapshot.

struct RecoveryOptions {
  /// Archive policy of the restored KB (independent of the original's;
  /// policies are observationally equivalent).
  ArchivePolicy policy = ArchivePolicy::kDeltaChain;
  size_t checkpoint_interval = 4;
  /// Stop cleanly before a torn final log record (WAL semantics)
  /// instead of failing recovery.
  bool allow_torn_tail = true;
  /// Check every replayed commit's chained fingerprint against the
  /// one its record stored; a mismatch means the snapshot and log do
  /// not belong to the same history. Cheap — leave it on.
  bool verify_fingerprints = true;
  /// Environment all recovery I/O runs through; nullptr means
  /// Env::Default().
  Env* env = nullptr;
};

/// What recovery did to come back up — surfaced so operators (and the
/// degraded-mode health report) can see which checkpoint served, what
/// was quarantined, and how much log was replayed.
struct RecoveryReport {
  /// Path of the checkpoint the KB was restored from; empty when
  /// recovery replayed the log from an empty base (log-only).
  std::string checkpoint_used;
  /// Checkpoints that failed to load or contradicted the log, renamed
  /// to `<path>.corrupt` and skipped.
  std::vector<std::string> quarantined;
  /// Checkpoints present when recovery started.
  size_t checkpoints_found = 0;
  size_t replayed_commits = 0;
  size_t skipped_records = 0;
  bool log_only = false;

  std::string ToString() const;
};

/// A recovered KB. Version ids restart at 0: the restored version 0
/// is the snapshot's content (original id `base_version`), and the
/// log tail's commits follow as 1, 2, …. Fingerprints — the identity
/// the engine layer keys on — are the original ones.
struct RecoveredKb {
  std::unique_ptr<VersionedKnowledgeBase> vkb;
  /// Original version id of the restored version 0.
  VersionId base_version = 0;
  /// Log records replayed on top of the snapshot.
  size_t replayed_commits = 0;
  /// Log records at or below base_version (already in the snapshot).
  size_t skipped_records = 0;
  /// Filled by RecoverFromCheckpoints; RecoverFromDisk only sets the
  /// replay counters.
  RecoveryReport report;
};

/// Saves version `v` of `vkb` as a binary snapshot at `path`,
/// stamping it with v's id and chained content fingerprint.
Status SaveVersionSnapshot(const VersionedKnowledgeBase& vkb, VersionId v,
                           const std::string& path,
                           const storage::SnapshotOptions& options = {});

/// Loads the snapshot at `snapshot_path` and replays the records of
/// `log_path` (pass "" for snapshot-only recovery) whose version id
/// exceeds the snapshot's. Errors cleanly on mismatched pairs: a
/// version-id gap between snapshot and log tail, a dictionary-tail
/// misalignment, or (with verify_fingerprints) a fingerprint chain
/// divergence.
Result<RecoveredKb> RecoverFromDisk(const std::string& snapshot_path,
                                    const std::string& log_path,
                                    const RecoveryOptions& options = {});

// ---- Checkpoint directories ----

/// `dir`/checkpoint-<v, zero-padded to 10 digits>.snap — the padding
/// makes lexicographic directory order equal version order.
std::string CheckpointPath(const std::string& dir, VersionId v);

/// Snapshots version `v` into `dir` (created if missing) and prunes
/// the directory down to the newest `keep` checkpoints. Quarantined
/// `.corrupt` files are never pruned — they are evidence.
Status SaveCheckpoint(const VersionedKnowledgeBase& vkb, VersionId v,
                      const std::string& dir, size_t keep = 3,
                      const storage::SnapshotOptions& options = {});

/// Full paths of the checkpoints in `dir`, oldest first. A missing
/// directory is an empty list, not an error.
Result<std::vector<std::string>> ListCheckpoints(const std::string& dir,
                                                 Env* env = nullptr);

/// Self-healing recovery (see file comment): newest checkpoint first,
/// quarantine-and-fall-back on snapshot failures, log-only replay
/// from an empty base when no checkpoint is usable. The returned
/// RecoveredKb::report says exactly what happened. Fails only when the
/// log itself is corrupt or every path (including log-only) disagrees.
Result<RecoveredKb> RecoverFromCheckpoints(const std::string& dir,
                                           const std::string& log_path,
                                           const RecoveryOptions& options = {});

}  // namespace evorec::version

#endif  // EVOREC_VERSION_RECOVERY_H_
