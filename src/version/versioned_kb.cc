#include "version/versioned_kb.h"

#include <algorithm>
#include <unordered_set>

#include "common/hash.h"

namespace evorec::version {

uint64_t VersionedKnowledgeBase::TermContentHash(rdf::TermId id) {
  if (id >= dictionary_->size()) {
    // Raw id never interned (id-level callers build triples without a
    // dictionary); the id itself is the only identity available.
    return (0x9E3779B97F4A7C15ULL ^ id) | 1;
  }
  if (term_hashes_.size() <= id) {
    term_hashes_.resize(dictionary_->size(), 0);
  }
  uint64_t& hash = term_hashes_[id];
  if (hash == 0) {
    // Hash the canonical serialisation, not just the dense id: two
    // KBs whose histories assign the same ids to *different* labels
    // must not collide (a wrong cache hit would serve evaluations
    // about the wrong data). |1 keeps 0 as the "unset" sentinel.
    hash = Fnv1a64(dictionary_->term(id).ToNTriples()) | 1;
  }
  return hash;
}

uint64_t VersionedKnowledgeBase::HashTriples(
    uint64_t seed, const std::vector<rdf::Triple>& triples) {
  for (const rdf::Triple& t : triples) {
    size_t h = static_cast<size_t>(seed);
    HashCombine(h, TermContentHash(t.subject));
    HashCombine(h, TermContentHash(t.predicate));
    HashCombine(h, TermContentHash(t.object));
    seed = static_cast<uint64_t>(h);
  }
  return seed;
}

// Content hash of one change set, chained onto the parent fingerprint.
// Additions and removals are salted differently so that moving a
// triple between the two lists changes the hash.
uint64_t VersionedKnowledgeBase::ChainFingerprint(uint64_t parent,
                                                  const ChangeSet& changes) {
  uint64_t fp = HashTriples(parent ^ 0x9E3779B97F4A7C15ULL,
                            changes.additions);
  return HashTriples(fp ^ 0xC2B2AE3D27D4EB4FULL, changes.removals);
}

VersionedKnowledgeBase::VersionedKnowledgeBase(ArchivePolicy policy,
                                               size_t checkpoint_interval)
    : VersionedKnowledgeBase(policy, rdf::KnowledgeBase(),
                             checkpoint_interval) {}

VersionedKnowledgeBase::VersionedKnowledgeBase(ArchivePolicy policy,
                                               rdf::KnowledgeBase initial,
                                               size_t checkpoint_interval)
    : VersionedKnowledgeBase(policy, std::move(initial), checkpoint_interval,
                             std::nullopt) {}

VersionedKnowledgeBase VersionedKnowledgeBase::WithBaseFingerprint(
    ArchivePolicy policy, rdf::KnowledgeBase base, uint64_t base_fingerprint,
    size_t checkpoint_interval) {
  return VersionedKnowledgeBase(policy, std::move(base), checkpoint_interval,
                                base_fingerprint);
}

VersionedKnowledgeBase::VersionedKnowledgeBase(
    ArchivePolicy policy, rdf::KnowledgeBase initial,
    size_t checkpoint_interval, std::optional<uint64_t> base_fingerprint)
    : policy_(policy),
      checkpoint_interval_(std::max<size_t>(1, checkpoint_interval)),
      dictionary_(initial.shared_dictionary()),
      vocabulary_(rdf::Vocabulary::Intern(*dictionary_)) {
  VersionInfo base;
  base.id = 0;
  base.author = "system";
  base.message = "base version";
  infos_.push_back(base);
  stores_.push_back(std::move(initial));
  change_sets_.emplace_back();
  // Base fingerprint: content hash of the canonical (SPO-sorted)
  // triples, so equal base snapshots fingerprint equally — unless the
  // caller (recovery) supplies the chained value a snapshot recorded.
  fingerprints_.push_back(base_fingerprint.has_value()
                              ? *base_fingerprint
                              : HashTriples(0xCBF29CE484222325ULL,
                                            stores_[0].store().triples()));
}

void VersionedKnowledgeBase::AttachCommitLog(storage::CommitLog* log) {
  log_ = log;
  logged_terms_ = static_cast<rdf::TermId>(dictionary_->size());
}

void VersionedKnowledgeBase::DetachCommitLog() { log_ = nullptr; }

namespace {

rdf::KnowledgeBase ApplyChanges(rdf::KnowledgeBase base,
                                const ChangeSet& changes) {
  base.store().AddAll(changes.additions);
  base.store().RemoveAll(changes.removals);
  base.store().Compact();
  return base;
}

}  // namespace

Result<VersionId> VersionedKnowledgeBase::Commit(const ChangeSet& changes,
                                                 std::string author,
                                                 std::string message,
                                                 uint64_t timestamp) {
  return Commit(ChangeSet(changes), std::move(author), std::move(message),
                timestamp);
}

Result<VersionId> VersionedKnowledgeBase::Commit(ChangeSet&& changes,
                                                 std::string author,
                                                 std::string message,
                                                 uint64_t timestamp) {
  const VersionId new_id = static_cast<VersionId>(infos_.size());
  const size_t additions = changes.additions.size();
  const size_t removals = changes.removals.size();
  const uint64_t fingerprint =
      ChainFingerprint(fingerprints_.back(), changes);

  if (log_ != nullptr) {
    // Write-ahead: the record must be on the log before any in-memory
    // state changes, so a failed append fails the whole commit and a
    // recovered replica can never be *ahead* of the log.
    storage::DeltaRecord record;
    record.version_id = new_id;
    record.timestamp = timestamp;
    record.author = author;
    record.message = message;
    record.fingerprint = fingerprint;
    record.first_term_id = logged_terms_;
    const rdf::TermId dict_size =
        static_cast<rdf::TermId>(dictionary_->size());
    record.new_terms.reserve(dict_size - logged_terms_);
    for (rdf::TermId id = logged_terms_; id < dict_size; ++id) {
      record.new_terms.push_back(dictionary_->term(id));
    }
    record.additions = changes.additions;
    record.removals = changes.removals;
    EVOREC_RETURN_IF_ERROR(log_->Append(record));
    logged_terms_ = dict_size;
  }

  switch (policy_) {
    case ArchivePolicy::kFullMaterialization:
      stores_.push_back(ApplyChanges(stores_.back(), changes));
      break;
    case ArchivePolicy::kDeltaChain:
      change_sets_.push_back(std::move(changes));
      break;
    case ArchivePolicy::kHybridCheckpoint: {
      if (new_id % checkpoint_interval_ == 0) {
        // Materialise this version once and keep it as a checkpoint;
        // reuse the previous checkpoint (or base) as the replay start.
        auto materialized = MaterializeUncached(new_id - 1);
        if (!materialized.ok()) return materialized.status();
        checkpoints_.emplace(
            new_id, ApplyChanges(std::move(materialized).value(), changes));
      }
      change_sets_.push_back(std::move(changes));
      break;
    }
  }

  VersionInfo info;
  info.id = new_id;
  info.author = std::move(author);
  info.message = std::move(message);
  info.timestamp = timestamp;
  info.additions = additions;
  info.removals = removals;
  infos_.push_back(std::move(info));
  fingerprints_.push_back(fingerprint);
  return new_id;
}

Result<SnapshotHandle> VersionedKnowledgeBase::Handle(VersionId v) const {
  if (v >= infos_.size()) {
    return NotFoundError("unknown version " + std::to_string(v));
  }
  SnapshotHandle handle;
  handle.id = v;
  handle.fingerprint = fingerprints_[v];
  return handle;
}

Result<VersionInfo> VersionedKnowledgeBase::Info(VersionId v) const {
  if (v >= infos_.size()) {
    return NotFoundError("unknown version " + std::to_string(v));
  }
  return infos_[v];
}

Result<ChangeSet> VersionedKnowledgeBase::Changes(VersionId v) const {
  if (v >= infos_.size()) {
    return NotFoundError("unknown version " + std::to_string(v));
  }
  if (v == 0) {
    return FailedPreconditionError("version 0 has no change set");
  }
  if (policy_ != ArchivePolicy::kFullMaterialization) {
    return change_sets_[v];
  }
  // Full materialisation: derive the change set from adjacent
  // snapshots.
  ChangeSet cs;
  cs.additions =
      rdf::TripleStore::Difference(stores_[v].store(), stores_[v - 1].store());
  cs.removals =
      rdf::TripleStore::Difference(stores_[v - 1].store(), stores_[v].store());
  return cs;
}

Result<rdf::KnowledgeBase> VersionedKnowledgeBase::MaterializeUncached(
    VersionId v) const {
  if (v >= infos_.size()) {
    return NotFoundError("unknown version " + std::to_string(v));
  }
  if (policy_ == ArchivePolicy::kFullMaterialization) {
    return stores_[v];
  }
  // Find the nearest materialised ancestor: a hybrid checkpoint or the
  // base snapshot.
  VersionId start = 0;
  const rdf::KnowledgeBase* base = &stores_[0];
  if (policy_ == ArchivePolicy::kHybridCheckpoint && !checkpoints_.empty()) {
    const VersionId candidate =
        (v / static_cast<VersionId>(checkpoint_interval_)) *
        static_cast<VersionId>(checkpoint_interval_);
    auto it = checkpoints_.find(candidate);
    if (it != checkpoints_.end()) {
      start = candidate;
      base = &it->second;
    }
  }
  // Batched replay: the copy drops the base's stale secondary
  // indexes; the whole chain's additions and removals accumulate in
  // the store's last-wins pending buffer and are applied by a single
  // incremental merge at the end instead of one re-index per version.
  rdf::KnowledgeBase kb = *base;
  for (VersionId i = start + 1; i <= v; ++i) {
    kb.store().AddAll(change_sets_[i].additions);
    kb.store().RemoveAll(change_sets_[i].removals);
  }
  kb.store().Compact();
  return kb;
}

Result<const rdf::KnowledgeBase*> VersionedKnowledgeBase::Snapshot(
    VersionId v) const {
  if (v >= infos_.size()) {
    return NotFoundError("unknown version " + std::to_string(v));
  }
  if (policy_ == ArchivePolicy::kFullMaterialization) {
    return &stores_[v];
  }
  if (v == 0) {
    return &stores_[0];
  }
  if (policy_ == ArchivePolicy::kHybridCheckpoint) {
    auto checkpoint = checkpoints_.find(v);
    if (checkpoint != checkpoints_.end()) {
      return &checkpoint->second;
    }
  }
  auto it = cache_.find(v);
  if (it == cache_.end()) {
    auto materialized = MaterializeUncached(v);
    if (!materialized.ok()) return materialized.status();
    it = cache_.emplace(v, std::move(materialized).value()).first;
  }
  return &it->second;
}

void VersionedKnowledgeBase::EvictSnapshotCache() const { cache_.clear(); }

size_t VersionedKnowledgeBase::StorageBytes() const {
  // Asks each store for its actual footprint (only the permutation
  // indexes it has really materialised, plus pending buffers) and
  // includes the lazily-filled snapshot cache. Gross accounting: a
  // frozen segment shared by several versions is billed by each
  // holder, which is how the archive-policy comparison has always
  // been scored (full materialization pays per version even though
  // the segmented store shares the bytes underneath).
  size_t bytes = 0;
  for (const rdf::KnowledgeBase& kb : stores_) {
    bytes += kb.store().MemoryBytes();
  }
  for (const auto& [v, kb] : checkpoints_) {
    (void)v;
    bytes += kb.store().MemoryBytes();
  }
  for (const auto& [v, kb] : cache_) {
    (void)v;
    bytes += kb.store().MemoryBytes();
  }
  for (const ChangeSet& cs : change_sets_) {
    bytes += cs.size() * sizeof(rdf::Triple);
  }
  return bytes;
}

size_t VersionedKnowledgeBase::StorageBytes(
    std::unordered_set<const void*>& seen) const {
  // Dedup accounting for ensembles: versions of a segmented store
  // share frozen segments, and the shards of a ShardedKnowledgeBase
  // share them with the pinned union snapshots — each immutable run
  // is billed once across every store probed with the same `seen`.
  size_t bytes = 0;
  for (const rdf::KnowledgeBase& kb : stores_) {
    bytes += kb.store().MemoryBytesDedup(seen);
  }
  for (const auto& [v, kb] : checkpoints_) {
    (void)v;
    bytes += kb.store().MemoryBytesDedup(seen);
  }
  for (const auto& [v, kb] : cache_) {
    (void)v;
    bytes += kb.store().MemoryBytesDedup(seen);
  }
  for (const ChangeSet& cs : change_sets_) {
    bytes += cs.size() * sizeof(rdf::Triple);
  }
  return bytes;
}

}  // namespace evorec::version
