#ifndef EVOREC_VERSION_SHARDED_KB_H_
#define EVOREC_VERSION_SHARDED_KB_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/thread_pool.h"
#include "rdf/knowledge_base.h"
#include "version/kb_view.h"
#include "version/version.h"
#include "version/versioned_kb.h"

namespace evorec::version {

/// A versioned knowledge base partitioned by subject hash into N
/// independent VersionedKnowledgeBase shards that share one term
/// dictionary. Commits split the change set by shard and land the
/// per-shard pieces independently (in parallel when a ThreadPool is
/// supplied); because subjects partition the triple space, the shards
/// never contend on data.
///
/// Reads are served from pinned *union snapshots*: at commit time the
/// shards' frozen segment lists are concatenated into one
/// TripleStore::FromSegments store — an O(#segments) pointer splice,
/// never a triple copy — and published under a brief mutex. A reader
/// that pins a snapshot keeps reading that exact version while any
/// number of later commits land: readers never block on the writer and
/// the writer never blocks on readers. The k-way segment merge
/// restores global SPO order, so scans over a union snapshot are
/// byte-identical to the same scans over an unsharded store.
///
/// Concurrency contract: all public methods are internally
/// synchronised (InternallySynchronized() == true) with the
/// restriction that commits are serialised by the caller — one
/// committer at a time, any number of concurrent readers. The shared
/// dictionary must only be interned into by the committer thread
/// (intern terms before Commit; readers resolve ids against the
/// dictionary snapshot-free because interning is append-only).
///
/// Not supported: commit logs (attach them to an unsharded KB; the
/// shard split is an in-memory serving arrangement, not a durability
/// format).
class ShardedKnowledgeBase final : public KbView {
 public:
  struct Options {
    /// Number of subject-hash shards (>= 1).
    size_t shards = 4;
    /// Archive policy applied per shard.
    ArchivePolicy policy = ArchivePolicy::kFullMaterialization;
    /// Optional pool for committing shards in parallel. Not owned;
    /// must outlive the KB. nullptr commits shards sequentially.
    ThreadPool* pool = nullptr;
  };

  /// Creates a sharded KB whose version 0 is empty, with a fresh
  /// shared dictionary and default options.
  ShardedKnowledgeBase();

  /// Creates a sharded KB whose version 0 is empty, with a fresh
  /// shared dictionary.
  explicit ShardedKnowledgeBase(Options options);

  /// Creates a sharded KB whose version 0 is `initial`, splitting its
  /// triples across shards (the shards adopt `initial`'s dictionary).
  ShardedKnowledgeBase(Options options, rdf::KnowledgeBase initial);

  ShardedKnowledgeBase(const ShardedKnowledgeBase&) = delete;
  ShardedKnowledgeBase& operator=(const ShardedKnowledgeBase&) = delete;

  // KbView interface. version_count/head/Handle/Changes/SharedSnapshot
  // take the brief entries mutex; Commit does its heavy work outside
  // it and only appends under it.
  size_t version_count() const override;
  VersionId head() const override;
  Result<SnapshotHandle> Handle(VersionId v) const override;
  Result<std::shared_ptr<const rdf::KnowledgeBase>> SharedSnapshot(
      VersionId v) const override;
  Result<ChangeSet> Changes(VersionId v) const override;
  Result<VersionId> Commit(ChangeSet changes, std::string author,
                           std::string message, uint64_t timestamp) override;
  bool InternallySynchronized() const override { return true; }

  /// Commit metadata for `v`.
  Result<VersionInfo> Info(VersionId v) const;

  size_t shard_count() const { return shards_.size(); }

  /// The shard a subject hashes to — exposed for tests and benches.
  size_t ShardOf(rdf::TermId subject) const;

  /// Direct access to one shard (tests/benches; do not commit through
  /// it — per-shard histories must only advance via Commit above).
  const VersionedKnowledgeBase& shard(size_t i) const { return shards_[i]; }

  /// Resident bytes across shards, pinned union snapshots and archived
  /// change sets, counting each shared frozen segment once.
  size_t StorageBytes() const;

  const std::shared_ptr<rdf::Dictionary>& shared_dictionary() const {
    return dictionary_;
  }
  rdf::Dictionary& dictionary() { return *dictionary_; }

 private:
  /// One published version: its chained fingerprint, the unsplit
  /// change set that produced it, and the pinned immutable union
  /// snapshot readers share.
  struct VersionEntry {
    uint64_t fingerprint = 0;
    ChangeSet changes;
    std::shared_ptr<const rdf::KnowledgeBase> snapshot;
    VersionInfo info;
  };

  /// Folds the shards' fingerprints for version `v` (must exist on
  /// every shard) into one chain-stable union fingerprint.
  uint64_t FoldFingerprints(VersionId v) const;

  /// Concatenates the shards' head-store segment lists into a pinned
  /// union snapshot (O(total segment count), zero triple copies).
  std::shared_ptr<const rdf::KnowledgeBase> BuildUnionSnapshot() const;

  Options options_;
  std::shared_ptr<rdf::Dictionary> dictionary_;
  // Mutated only by the (externally serialised) committer; shard
  // *reads* never happen concurrently with shard commits because
  // readers go through pinned union snapshots instead.
  std::vector<VersionedKnowledgeBase> shards_;
  // Guards entries_ only — the publish point between the committer
  // and readers. Held for O(1) appends and lookups, never while
  // splitting, committing shards, or building the union snapshot.
  mutable std::mutex mu_;
  std::vector<VersionEntry> entries_;
};

}  // namespace evorec::version

#endif  // EVOREC_VERSION_SHARDED_KB_H_
