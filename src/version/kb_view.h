#ifndef EVOREC_VERSION_KB_VIEW_H_
#define EVOREC_VERSION_KB_VIEW_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>

#include "common/result.h"
#include "rdf/knowledge_base.h"
#include "version/version.h"
#include "version/versioned_kb.h"

namespace evorec::version {

/// The engine-facing surface of a versioned knowledge base: everything
/// EvaluationEngine / RecommendationService need to serve and commit —
/// cheap fingerprint handles for cache keys, pinned immutable
/// snapshots, archived change sets, and the head pointer. Implemented
/// by SingleKbView (one VersionedKnowledgeBase behind the engine's
/// lock) and ShardedKnowledgeBase (N segmented shards, internally
/// synchronised, so readers never block on the writer).
class KbView {
 public:
  virtual ~KbView() = default;

  /// Number of versions (head id + 1).
  virtual size_t version_count() const = 0;

  /// Id of the latest version.
  virtual VersionId head() const = 0;

  /// Cheap content-fingerprint handle to version `v` for cache keys.
  virtual Result<SnapshotHandle> Handle(VersionId v) const = 0;

  /// An immutable shared snapshot of version `v`, pinned for the
  /// caller: the returned KB stays valid and readable while later
  /// commits land. On a segmented store this is a segment-list share,
  /// never a triple copy.
  virtual Result<std::shared_ptr<const rdf::KnowledgeBase>> SharedSnapshot(
      VersionId v) const = 0;

  /// The change set that produced `v` from `v-1` (version 0 has none).
  virtual Result<ChangeSet> Changes(VersionId v) const = 0;

  /// Applies `changes` on top of the head, creating a new version.
  virtual Result<VersionId> Commit(ChangeSet changes, std::string author,
                                   std::string message,
                                   uint64_t timestamp) = 0;

  /// True when the implementation serialises its own internal state.
  /// The engine then calls this view concurrently from readers and the
  /// committer *without* wrapping calls in its vkb lock — the
  /// concurrency contract "readers never block on the writer" depends
  /// on the implementation pinning immutable snapshots instead of
  /// handing out references into mutable state.
  virtual bool InternallySynchronized() const = 0;
};

/// Adapter exposing one VersionedKnowledgeBase as a KbView. Not
/// internally synchronised: the engine serialises every call under its
/// vkb lock, exactly as it always did for a bare
/// VersionedKnowledgeBase. Stack-constructed per call; the wrapped KB
/// must outlive the adapter.
class SingleKbView final : public KbView {
 public:
  /// Read-write adapter (Commit allowed).
  explicit SingleKbView(VersionedKnowledgeBase& vkb)
      : vkb_(&vkb), mutable_vkb_(&vkb) {}
  /// Read-only adapter (Commit fails with FAILED_PRECONDITION).
  explicit SingleKbView(const VersionedKnowledgeBase& vkb) : vkb_(&vkb) {}

  size_t version_count() const override { return vkb_->version_count(); }
  VersionId head() const override { return vkb_->head(); }

  Result<SnapshotHandle> Handle(VersionId v) const override {
    return vkb_->Handle(v);
  }

  Result<std::shared_ptr<const rdf::KnowledgeBase>> SharedSnapshot(
      VersionId v) const override {
    auto kb = vkb_->Snapshot(v);
    if (!kb.ok()) return kb.status();
    // A segmented store copy shares frozen segments — O(#segments),
    // not O(triples) — and the copy detaches the snapshot from the
    // vkb's lazy cache so the caller may hold it across eviction.
    return std::make_shared<const rdf::KnowledgeBase>(**kb);
  }

  Result<ChangeSet> Changes(VersionId v) const override {
    return vkb_->Changes(v);
  }

  Result<VersionId> Commit(ChangeSet changes, std::string author,
                           std::string message, uint64_t timestamp) override {
    if (mutable_vkb_ == nullptr) {
      return FailedPreconditionError(
          "KbView wraps a const VersionedKnowledgeBase; commits need the "
          "mutable adapter");
    }
    return mutable_vkb_->Commit(std::move(changes), std::move(author),
                                std::move(message), timestamp);
  }

  bool InternallySynchronized() const override { return false; }

 private:
  const VersionedKnowledgeBase* vkb_;
  VersionedKnowledgeBase* mutable_vkb_ = nullptr;
};

}  // namespace evorec::version

#endif  // EVOREC_VERSION_KB_VIEW_H_
