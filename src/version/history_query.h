#ifndef EVOREC_VERSION_HISTORY_QUERY_H_
#define EVOREC_VERSION_HISTORY_QUERY_H_

#include <optional>
#include <vector>

#include "common/result.h"
#include "version/versioned_kb.h"

namespace evorec::version {

/// Cross-snapshot queries over a versioned KB — the historical access
/// patterns the paper's substrate must serve (cf. archiving policies
/// for evolving RDF datasets, Stefanidis et al. [13]): when did a fact
/// appear, how long did it live, what matched a pattern as of a given
/// version, how did a resource's footprint develop.
///
/// Queries materialise snapshots through the store's cache; under the
/// delta-chain policy the first query per version pays reconstruction.
class HistoryQuery {
 public:
  /// `vkb` must outlive the query object.
  explicit HistoryQuery(const VersionedKnowledgeBase& vkb) : vkb_(vkb) {}

  /// A maximal contiguous run of versions in which a triple is
  /// present; `last` is inclusive.
  struct LiveRange {
    VersionId first = 0;
    VersionId last = 0;
    friend bool operator==(const LiveRange&, const LiveRange&) = default;
  };

  /// Earliest version containing `t`, or nullopt if never present.
  Result<std::optional<VersionId>> FirstAdded(const rdf::Triple& t) const;

  /// Earliest version (after the triple first existed) where `t` is
  /// absent again, or nullopt if never removed (or never present).
  Result<std::optional<VersionId>> FirstRemoved(const rdf::Triple& t) const;

  /// All maximal presence runs of `t` across the history (a fact can
  /// be retracted and re-asserted).
  Result<std::vector<LiveRange>> LiveRanges(const rdf::Triple& t) const;

  /// Triples matching `pattern` as of version `v`.
  Result<std::vector<rdf::Triple>> AsOf(VersionId v,
                                        const rdf::TriplePattern& pattern)
      const;

  /// Versions in which `pattern` has at least one match.
  Result<std::vector<VersionId>> VersionsMatching(
      const rdf::TriplePattern& pattern) const;

  /// Per-version count of triples with subject `s` — a resource's
  /// footprint over time.
  Result<std::vector<size_t>> SubjectFootprintHistory(rdf::TermId s) const;

 private:
  const VersionedKnowledgeBase& vkb_;
};

}  // namespace evorec::version

#endif  // EVOREC_VERSION_HISTORY_QUERY_H_
