#include "version/recovery.h"

#include <utility>

#include "common/binary_io.h"

namespace evorec::version {

Status SaveVersionSnapshot(const VersionedKnowledgeBase& vkb, VersionId v,
                           const std::string& path,
                           const storage::SnapshotOptions& options) {
  auto snapshot = vkb.Snapshot(v);
  if (!snapshot.ok()) return snapshot.status();
  auto handle = vkb.Handle(v);
  if (!handle.ok()) return handle.status();
  return storage::SaveSnapshot(path, (*snapshot)->store(),
                               (*snapshot)->dictionary(), v,
                               handle->fingerprint, options);
}

namespace {

// Appends a record's dictionary tail, verifying id alignment. Terms
// the dictionary already holds (a snapshot saved after this record's
// commit) must match byte-for-byte; new ones must intern to exactly
// the ids the record claims.
Status ApplyDictionaryTail(const storage::DeltaRecord& record,
                           rdf::Dictionary& dictionary) {
  if (record.first_term_id > dictionary.size()) {
    return FailedPreconditionError(
        "recovery: log record " + std::to_string(record.version_id) +
        " starts its dictionary tail at term " +
        std::to_string(record.first_term_id) + " but the dictionary has " +
        std::to_string(dictionary.size()) +
        " terms (snapshot/log mismatch)");
  }
  for (size_t i = 0; i < record.new_terms.size(); ++i) {
    const rdf::TermId expected =
        record.first_term_id + static_cast<rdf::TermId>(i);
    if (expected < dictionary.size()) {
      if (!(dictionary.term(expected) == record.new_terms[i])) {
        return FailedPreconditionError(
            "recovery: term " + std::to_string(expected) +
            " differs between the snapshot dictionary and log record " +
            std::to_string(record.version_id));
      }
      continue;
    }
    if (dictionary.Intern(record.new_terms[i]) != expected) {
      return FailedPreconditionError(
          "recovery: term " + std::to_string(expected) + " of log record " +
          std::to_string(record.version_id) +
          " interned to an unexpected id (duplicate in tail)");
    }
  }
  return OkStatus();
}

}  // namespace

Result<RecoveredKb> RecoverFromDisk(const std::string& snapshot_path,
                                    const std::string& log_path,
                                    const RecoveryOptions& options) {
  auto decoded = storage::LoadSnapshot(snapshot_path);
  if (!decoded.ok()) return decoded.status();

  RecoveredKb recovered;
  recovered.base_version = decoded->info.version_id;
  // The bulk sorted-load path: the decoded SPO run becomes the base
  // store directly, and the stored fingerprint seeds the chain.
  rdf::KnowledgeBase base(decoded->dictionary, std::move(decoded->store));
  recovered.vkb = std::make_unique<VersionedKnowledgeBase>(
      VersionedKnowledgeBase::WithBaseFingerprint(
          options.policy, std::move(base), decoded->info.fingerprint,
          options.checkpoint_interval));

  if (log_path.empty()) return recovered;

  auto log_bytes = ReadFileToString(log_path);
  if (!log_bytes.ok()) return log_bytes.status();

  VersionedKnowledgeBase& vkb = *recovered.vkb;
  rdf::Dictionary& dictionary = vkb.dictionary();
  VersionId next_expected = recovered.base_version + 1;
  storage::ReplayOptions replay;
  replay.allow_torn_tail = options.allow_torn_tail;
  const Status replayed = storage::ReplayLog(
      *log_bytes,
      [&](storage::DeltaRecord&& record) -> Status {
        if (record.version_id <= recovered.base_version) {
          // Already folded into the snapshot; its dictionary tail must
          // be a prefix of the snapshot's table.
          if (record.first_term_id + record.new_terms.size() >
              dictionary.size()) {
            return FailedPreconditionError(
                "recovery: pre-snapshot log record " +
                std::to_string(record.version_id) +
                " references terms beyond the snapshot dictionary "
                "(snapshot/log mismatch)");
          }
          ++recovered.skipped_records;
          return OkStatus();
        }
        if (record.version_id != next_expected) {
          return FailedPreconditionError(
              "recovery: log jumps from version " +
              std::to_string(next_expected - 1) + " to " +
              std::to_string(record.version_id) +
              " (snapshot/log mismatch or gap)");
        }
        EVOREC_RETURN_IF_ERROR(ApplyDictionaryTail(record, dictionary));
        ChangeSet changes;
        changes.additions = std::move(record.additions);
        changes.removals = std::move(record.removals);
        auto committed = vkb.Commit(std::move(changes),
                                    std::move(record.author),
                                    std::move(record.message),
                                    record.timestamp);
        if (!committed.ok()) return committed.status();
        if (options.verify_fingerprints) {
          const uint64_t replayed_fp =
              vkb.Handle(*committed).value().fingerprint;
          if (replayed_fp != record.fingerprint) {
            return FailedPreconditionError(
                "recovery: fingerprint chain diverges at version " +
                std::to_string(record.version_id) +
                " (snapshot and log are from different histories)");
          }
        }
        ++next_expected;
        ++recovered.replayed_commits;
        return OkStatus();
      },
      replay);
  if (!replayed.ok()) return replayed;
  return recovered;
}

}  // namespace evorec::version
