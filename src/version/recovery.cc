#include "version/recovery.h"

#include <algorithm>
#include <utility>

#include "common/binary_io.h"
#include "common/env.h"

namespace evorec::version {

Status SaveVersionSnapshot(const VersionedKnowledgeBase& vkb, VersionId v,
                           const std::string& path,
                           const storage::SnapshotOptions& options) {
  auto snapshot = vkb.Snapshot(v);
  if (!snapshot.ok()) return snapshot.status();
  auto handle = vkb.Handle(v);
  if (!handle.ok()) return handle.status();
  return storage::SaveSnapshot(path, (*snapshot)->store(),
                               (*snapshot)->dictionary(), v,
                               handle->fingerprint, options);
}

namespace {

// Appends a record's dictionary tail, verifying id alignment. Terms
// the dictionary already holds (a snapshot saved after this record's
// commit) must match byte-for-byte; new ones must intern to exactly
// the ids the record claims.
Status ApplyDictionaryTail(const storage::DeltaRecord& record,
                           rdf::Dictionary& dictionary) {
  if (record.first_term_id > dictionary.size()) {
    return FailedPreconditionError(
        "recovery: log record " + std::to_string(record.version_id) +
        " starts its dictionary tail at term " +
        std::to_string(record.first_term_id) + " but the dictionary has " +
        std::to_string(dictionary.size()) +
        " terms (snapshot/log mismatch)");
  }
  for (size_t i = 0; i < record.new_terms.size(); ++i) {
    const rdf::TermId expected =
        record.first_term_id + static_cast<rdf::TermId>(i);
    if (expected < dictionary.size()) {
      if (!(dictionary.term(expected) == record.new_terms[i])) {
        return FailedPreconditionError(
            "recovery: term " + std::to_string(expected) +
            " differs between the snapshot dictionary and log record " +
            std::to_string(record.version_id));
      }
      continue;
    }
    if (dictionary.Intern(record.new_terms[i]) != expected) {
      return FailedPreconditionError(
          "recovery: term " + std::to_string(expected) + " of log record " +
          std::to_string(record.version_id) +
          " interned to an unexpected id (duplicate in tail)");
    }
  }
  return OkStatus();
}

/// Replays the log image on top of `recovered` (whose vkb holds the
/// restored base). Failure codes carry the diagnosis:
/// kInvalidArgument = the log itself is corrupt (fatal for any base),
/// kFailedPrecondition = this base and the log disagree (try another).
Status ReplayLogInto(RecoveredKb& recovered, std::string_view log_bytes,
                     const RecoveryOptions& options) {
  VersionedKnowledgeBase& vkb = *recovered.vkb;
  rdf::Dictionary& dictionary = vkb.dictionary();
  VersionId next_expected = recovered.base_version + 1;
  storage::ReplayOptions replay;
  replay.allow_torn_tail = options.allow_torn_tail;
  return storage::ReplayLog(
      log_bytes,
      [&](storage::DeltaRecord&& record) -> Status {
        if (record.version_id <= recovered.base_version) {
          // Already folded into the snapshot; its dictionary tail must
          // be a prefix of the snapshot's table.
          if (record.first_term_id + record.new_terms.size() >
              dictionary.size()) {
            return FailedPreconditionError(
                "recovery: pre-snapshot log record " +
                std::to_string(record.version_id) +
                " references terms beyond the snapshot dictionary "
                "(snapshot/log mismatch)");
          }
          ++recovered.skipped_records;
          return OkStatus();
        }
        if (record.version_id != next_expected) {
          return FailedPreconditionError(
              "recovery: log jumps from version " +
              std::to_string(next_expected - 1) + " to " +
              std::to_string(record.version_id) +
              " (snapshot/log mismatch or gap)");
        }
        EVOREC_RETURN_IF_ERROR(ApplyDictionaryTail(record, dictionary));
        ChangeSet changes;
        changes.additions = std::move(record.additions);
        changes.removals = std::move(record.removals);
        auto committed = vkb.Commit(std::move(changes),
                                    std::move(record.author),
                                    std::move(record.message),
                                    record.timestamp);
        if (!committed.ok()) return committed.status();
        if (options.verify_fingerprints) {
          const uint64_t replayed_fp =
              vkb.Handle(*committed).value().fingerprint;
          if (replayed_fp != record.fingerprint) {
            return FailedPreconditionError(
                "recovery: fingerprint chain diverges at version " +
                std::to_string(record.version_id) +
                " (snapshot and log are from different histories)");
          }
        }
        ++next_expected;
        ++recovered.replayed_commits;
        return OkStatus();
      },
      replay);
}

/// Turns a decoded snapshot into the base of a RecoveredKb.
RecoveredKb BuildBase(storage::DecodedSnapshot&& decoded,
                      const RecoveryOptions& options) {
  RecoveredKb recovered;
  recovered.base_version = decoded.info.version_id;
  // The bulk sorted-load path: the decoded SPO run becomes the base
  // store directly, and the stored fingerprint seeds the chain.
  rdf::KnowledgeBase base(decoded.dictionary, std::move(decoded.store));
  recovered.vkb = std::make_unique<VersionedKnowledgeBase>(
      VersionedKnowledgeBase::WithBaseFingerprint(
          options.policy, std::move(base), decoded.info.fingerprint,
          options.checkpoint_interval));
  return recovered;
}

bool EndsWith(const std::string& s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

bool StartsWith(const std::string& s, std::string_view prefix) {
  return s.size() >= prefix.size() &&
         s.compare(0, prefix.size(), prefix) == 0;
}

constexpr std::string_view kCheckpointPrefix = "checkpoint-";
constexpr std::string_view kCheckpointSuffix = ".snap";

}  // namespace

Result<RecoveredKb> RecoverFromDisk(const std::string& snapshot_path,
                                    const std::string& log_path,
                                    const RecoveryOptions& options) {
  auto decoded = storage::LoadSnapshot(snapshot_path, options.env);
  if (!decoded.ok()) return decoded.status();
  RecoveredKb recovered = BuildBase(std::move(*decoded), options);
  if (log_path.empty()) return recovered;

  auto log_bytes = ReadFileToString(log_path, options.env);
  if (!log_bytes.ok()) return log_bytes.status();
  EVOREC_RETURN_IF_ERROR(ReplayLogInto(recovered, *log_bytes, options));
  return recovered;
}

std::string CheckpointPath(const std::string& dir, VersionId v) {
  std::string digits = std::to_string(v);
  digits.insert(0, digits.size() < 10 ? 10 - digits.size() : 0, '0');
  return dir + "/" + std::string(kCheckpointPrefix) + digits +
         std::string(kCheckpointSuffix);
}

Result<std::vector<std::string>> ListCheckpoints(const std::string& dir,
                                                 Env* env) {
  if (env == nullptr) env = Env::Default();
  auto names = env->ListDir(dir);
  if (!names.ok()) {
    if (names.status().code() == StatusCode::kNotFound) {
      return std::vector<std::string>{};
    }
    return names.status();
  }
  std::vector<std::string> paths;
  for (const std::string& name : *names) {
    if (StartsWith(name, kCheckpointPrefix) &&
        EndsWith(name, kCheckpointSuffix)) {
      paths.push_back(dir + "/" + name);
    }
  }
  std::sort(paths.begin(), paths.end());  // zero-padded: version order
  return paths;
}

Status SaveCheckpoint(const VersionedKnowledgeBase& vkb, VersionId v,
                      const std::string& dir, size_t keep,
                      const storage::SnapshotOptions& options) {
  Env* env = options.env != nullptr ? options.env : Env::Default();
  EVOREC_RETURN_IF_ERROR(env->CreateDir(dir));
  EVOREC_RETURN_IF_ERROR(
      SaveVersionSnapshot(vkb, v, CheckpointPath(dir, v), options));
  if (keep == 0) keep = 1;  // the checkpoint just written always stays
  auto checkpoints = ListCheckpoints(dir, env);
  if (!checkpoints.ok()) return checkpoints.status();
  const size_t count = checkpoints->size();
  for (size_t i = 0; count - i > keep; ++i) {
    // Pruning is best-effort: a checkpoint that will not delete is a
    // disk-space nuisance, not a durability problem.
    (void)env->RemoveFile((*checkpoints)[i]);
  }
  return OkStatus();
}

Result<RecoveredKb> RecoverFromCheckpoints(const std::string& dir,
                                           const std::string& log_path,
                                           const RecoveryOptions& options) {
  Env* env = options.env != nullptr ? options.env : Env::Default();
  auto checkpoints = ListCheckpoints(dir, env);
  if (!checkpoints.ok()) return checkpoints.status();

  RecoveryReport report;
  report.checkpoints_found = checkpoints->size();

  const bool have_log = !log_path.empty() && env->FileExists(log_path);
  std::string log_bytes;
  if (have_log) {
    auto bytes = ReadFileToString(log_path, env);
    if (!bytes.ok()) return bytes.status();
    log_bytes = std::move(*bytes);
  }

  Status last_failure = OkStatus();
  for (auto it = checkpoints->rbegin(); it != checkpoints->rend(); ++it) {
    const std::string& path = *it;
    auto decoded = storage::LoadSnapshot(path, env);
    if (decoded.ok()) {
      RecoveredKb recovered = BuildBase(std::move(*decoded), options);
      Status replayed = have_log
                            ? ReplayLogInto(recovered, log_bytes, options)
                            : OkStatus();
      if (replayed.ok()) {
        report.checkpoint_used = path;
        report.replayed_commits = recovered.replayed_commits;
        report.skipped_records = recovered.skipped_records;
        recovered.report = std::move(report);
        return recovered;
      }
      if (replayed.code() == StatusCode::kInvalidArgument) {
        // The log itself is corrupt. No older checkpoint can cross the
        // bad record, and the snapshot that exposed it is healthy —
        // surface the log problem instead of quarantining evidence.
        return replayed;
      }
      last_failure = replayed;  // snapshot/log mismatch: blame the snapshot
    } else {
      last_failure = decoded.status();
    }
    // Quarantine: keep the bytes for post-mortem, but make sure no
    // future recovery trips over this checkpoint again.
    (void)env->RenameFile(path, path + ".corrupt");
    report.quarantined.push_back(path);
  }

  // No usable checkpoint. If the log is complete from version 1 (the
  // KB started empty and was never checkpointed, or every checkpoint
  // just failed), replay the whole history from an empty base.
  if (have_log) {
    RecoveredKb recovered;
    recovered.base_version = 0;
    recovered.vkb = std::make_unique<VersionedKnowledgeBase>(
        options.policy, rdf::KnowledgeBase{}, options.checkpoint_interval);
    Status replayed = ReplayLogInto(recovered, log_bytes, options);
    if (replayed.ok()) {
      report.log_only = true;
      report.replayed_commits = recovered.replayed_commits;
      report.skipped_records = recovered.skipped_records;
      recovered.report = std::move(report);
      return recovered;
    }
    if (!last_failure.ok()) return last_failure;
    return replayed;
  }
  if (!last_failure.ok()) return last_failure;
  return NotFoundError("recovery: no checkpoints in '" + dir +
                       "' and no commit log at '" + log_path + "'");
}

std::string RecoveryReport::ToString() const {
  std::string out = "recovery: ";
  if (log_only) {
    out += "log-only replay from empty base";
  } else if (!checkpoint_used.empty()) {
    out += "restored from " + checkpoint_used;
  } else {
    out += "nothing restored";
  }
  out += "; " + std::to_string(checkpoints_found) + " checkpoint(s) found";
  out += ", " + std::to_string(quarantined.size()) + " quarantined";
  for (const std::string& path : quarantined) {
    out += "\n  quarantined: " + path + " -> " + path + ".corrupt";
  }
  out += "\n  replayed " + std::to_string(replayed_commits) +
         " commit(s), skipped " + std::to_string(skipped_records) +
         " pre-snapshot record(s)";
  return out;
}

}  // namespace evorec::version
