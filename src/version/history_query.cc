#include "version/history_query.h"

namespace evorec::version {

Result<std::optional<VersionId>> HistoryQuery::FirstAdded(
    const rdf::Triple& t) const {
  for (VersionId v = 0; v < vkb_.version_count(); ++v) {
    auto snapshot = vkb_.Snapshot(v);
    if (!snapshot.ok()) return snapshot.status();
    if ((*snapshot)->store().Contains(t)) {
      return std::optional<VersionId>(v);
    }
  }
  return std::optional<VersionId>();
}

Result<std::optional<VersionId>> HistoryQuery::FirstRemoved(
    const rdf::Triple& t) const {
  bool seen = false;
  for (VersionId v = 0; v < vkb_.version_count(); ++v) {
    auto snapshot = vkb_.Snapshot(v);
    if (!snapshot.ok()) return snapshot.status();
    const bool present = (*snapshot)->store().Contains(t);
    if (seen && !present) {
      return std::optional<VersionId>(v);
    }
    seen = seen || present;
  }
  return std::optional<VersionId>();
}

Result<std::vector<HistoryQuery::LiveRange>> HistoryQuery::LiveRanges(
    const rdf::Triple& t) const {
  std::vector<LiveRange> ranges;
  bool open = false;
  LiveRange current;
  for (VersionId v = 0; v < vkb_.version_count(); ++v) {
    auto snapshot = vkb_.Snapshot(v);
    if (!snapshot.ok()) return snapshot.status();
    const bool present = (*snapshot)->store().Contains(t);
    if (present && !open) {
      current.first = v;
      open = true;
    }
    if (present) {
      current.last = v;
    }
    if (!present && open) {
      ranges.push_back(current);
      open = false;
    }
  }
  if (open) ranges.push_back(current);
  return ranges;
}

Result<std::vector<rdf::Triple>> HistoryQuery::AsOf(
    VersionId v, const rdf::TriplePattern& pattern) const {
  auto snapshot = vkb_.Snapshot(v);
  if (!snapshot.ok()) return snapshot.status();
  return (*snapshot)->store().Match(pattern);
}

Result<std::vector<VersionId>> HistoryQuery::VersionsMatching(
    const rdf::TriplePattern& pattern) const {
  std::vector<VersionId> versions;
  for (VersionId v = 0; v < vkb_.version_count(); ++v) {
    auto snapshot = vkb_.Snapshot(v);
    if (!snapshot.ok()) return snapshot.status();
    bool any = false;
    // ScanT: statically-typed probe, no std::function dispatch in the
    // per-version existence loop.
    (*snapshot)->store().ScanT(pattern, [&](const rdf::Triple&) {
      any = true;
      return false;  // stop at first match
    });
    if (any) versions.push_back(v);
  }
  return versions;
}

Result<std::vector<size_t>> HistoryQuery::SubjectFootprintHistory(
    rdf::TermId s) const {
  std::vector<size_t> footprint;
  footprint.reserve(vkb_.version_count());
  for (VersionId v = 0; v < vkb_.version_count(); ++v) {
    auto snapshot = vkb_.Snapshot(v);
    if (!snapshot.ok()) return snapshot.status();
    footprint.push_back(
        (*snapshot)
            ->store()
            .Match({s, rdf::kAnyTerm, rdf::kAnyTerm})
            .size());
  }
  return footprint;
}

}  // namespace evorec::version
