#ifndef EVOREC_VERSION_VERSIONED_KB_H_
#define EVOREC_VERSION_VERSIONED_KB_H_

#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/result.h"
#include "rdf/knowledge_base.h"
#include "storage/commit_log.h"
#include "version/version.h"

namespace evorec::version {

/// A cheap, copyable reference to one version of a
/// VersionedKnowledgeBase — the cache-key currency of the engine
/// layer. The fingerprint is a hash chained over the base snapshot
/// and every committed change set, folding the *serialised term
/// content* of each triple in TermId order. Equal fingerprints
/// therefore denote snapshots with identical content AND an identical
/// TermId mapping — exactly the equivalence cached evaluations need,
/// since their consumers (profiles, reports) speak TermIds. Distinct
/// VersionedKnowledgeBase instances share fingerprints when their
/// histories are identical (same operations, same intern order, e.g.
/// regenerated from one seed); content-equal KBs interned in a
/// different order fingerprint differently, which is a safe cache
/// miss, never a wrong hit.
struct SnapshotHandle {
  VersionId id = 0;
  uint64_t fingerprint = 0;

  friend bool operator==(const SnapshotHandle& a, const SnapshotHandle& b) {
    return a.fingerprint == b.fingerprint;
  }
};

/// A linear-history versioned knowledge base. All versions share one
/// term dictionary so TermIds are stable across versions — the
/// invariant every evolution measure depends on.
///
/// Storage follows the configured ArchivePolicy; snapshots are
/// materialised lazily and cached. Not thread-safe.
class VersionedKnowledgeBase {
 public:
  /// Creates a KB whose version 0 is empty. `checkpoint_interval`
  /// applies to kHybridCheckpoint only (a full snapshot every that
  /// many versions; must be >= 1).
  explicit VersionedKnowledgeBase(
      ArchivePolicy policy = ArchivePolicy::kFullMaterialization,
      size_t checkpoint_interval = 4);

  /// Creates a KB whose version 0 is `initial`.
  VersionedKnowledgeBase(ArchivePolicy policy, rdf::KnowledgeBase initial,
                         size_t checkpoint_interval = 4);

  /// Creates a KB whose version 0 is `base` with a caller-supplied
  /// content fingerprint instead of a freshly computed one. This is
  /// the recovery path: a snapshot of version N stores N's *chained*
  /// fingerprint (which recomputation from content alone cannot
  /// reproduce), and seeding the chain with it keeps every handle —
  /// and therefore every engine cache key — identical across a
  /// restart. See version/recovery.h.
  static VersionedKnowledgeBase WithBaseFingerprint(
      ArchivePolicy policy, rdf::KnowledgeBase base,
      uint64_t base_fingerprint, size_t checkpoint_interval = 4);

  VersionedKnowledgeBase(const VersionedKnowledgeBase&) = delete;
  VersionedKnowledgeBase& operator=(const VersionedKnowledgeBase&) = delete;
  VersionedKnowledgeBase(VersionedKnowledgeBase&&) = default;
  VersionedKnowledgeBase& operator=(VersionedKnowledgeBase&&) = default;

  /// Applies `changes` on top of the head version, creating a new
  /// version. Returns the new version id. Empty change sets are legal
  /// (they record a no-op commit).
  Result<VersionId> Commit(const ChangeSet& changes, std::string author,
                           std::string message, uint64_t timestamp = 0);

  /// Move overload: archives `changes` without copying the triple
  /// vectors (the common case for generated or streamed change sets).
  Result<VersionId> Commit(ChangeSet&& changes, std::string author,
                           std::string message, uint64_t timestamp = 0);

  /// Attaches an append-only commit log: every subsequent Commit
  /// first appends a storage::DeltaRecord — write-ahead, so a failed
  /// append fails the commit without mutating memory — carrying the
  /// change set (original order, preserving the fingerprint chain),
  /// the commit metadata, the post-commit fingerprint, and the
  /// dictionary tail interned since the previous record. `log` must
  /// outlive the attachment. Attach immediately after saving a
  /// snapshot so the pair stays a consistent recovery unit
  /// (version/recovery.h); whether a commit is durable the moment it
  /// returns is the log's LogOptions::sync_on_append.
  void AttachCommitLog(storage::CommitLog* log);

  /// Stops logging (the log itself stays open).
  void DetachCommitLog();

  storage::CommitLog* commit_log() const { return log_; }

  /// Number of versions (head id + 1).
  size_t version_count() const { return infos_.size(); }

  /// Id of the latest version.
  VersionId head() const {
    return static_cast<VersionId>(infos_.size() - 1);
  }

  /// Commit metadata for `v`.
  Result<VersionInfo> Info(VersionId v) const;

  /// The change set that produced `v` from `v-1`. Version 0 has no
  /// change set.
  Result<ChangeSet> Changes(VersionId v) const;

  /// Materialised snapshot of version `v` (cached; the reference stays
  /// valid until EvictSnapshotCache or destruction).
  Result<const rdf::KnowledgeBase*> Snapshot(VersionId v) const;

  /// Cheap handle to version `v` for cache keys — O(1), never
  /// materialises the snapshot (fingerprints are maintained
  /// incrementally at commit time).
  Result<SnapshotHandle> Handle(VersionId v) const;

  /// Reconstructs `v` without touching the cache — used by benches to
  /// measure reconstruction cost under kDeltaChain.
  Result<rdf::KnowledgeBase> MaterializeUncached(VersionId v) const;

  /// Drops cached snapshots (keeps version 0 and, under full
  /// materialisation, all stored versions).
  void EvictSnapshotCache() const;

  /// Approximate resident bytes of version storage: base/materialised
  /// stores and checkpoints (counting only the permutation indexes
  /// each store has actually built), the snapshot cache, and archived
  /// change sets.
  size_t StorageBytes() const;

  /// Same accounting with a caller-owned dedup set, so callers holding
  /// several stores that share frozen segments (the shards of a
  /// ShardedKnowledgeBase plus its pinned union snapshots) bill each
  /// immutable run once across the whole ensemble.
  size_t StorageBytes(std::unordered_set<const void*>& seen) const;

  ArchivePolicy policy() const { return policy_; }

  const std::shared_ptr<rdf::Dictionary>& shared_dictionary() const {
    return dictionary_;
  }
  rdf::Dictionary& dictionary() { return *dictionary_; }
  const rdf::Vocabulary& vocabulary() const { return vocabulary_; }

 private:
  /// Shared delegate of the public constructors and the recovery
  /// factory: seeds the fingerprint chain with `base_fingerprint`
  /// when provided, otherwise hashes the base content.
  VersionedKnowledgeBase(ArchivePolicy policy, rdf::KnowledgeBase initial,
                         size_t checkpoint_interval,
                         std::optional<uint64_t> base_fingerprint);

  /// Content hash of one term (memoized per TermId; terms are
  /// immutable once interned).
  uint64_t TermContentHash(rdf::TermId id);
  /// Folds `triples` into `seed`, hashing term content.
  uint64_t HashTriples(uint64_t seed, const std::vector<rdf::Triple>& triples);
  /// Content hash of one change set chained onto `parent`.
  uint64_t ChainFingerprint(uint64_t parent, const ChangeSet& changes);

  ArchivePolicy policy_;
  size_t checkpoint_interval_;
  std::shared_ptr<rdf::Dictionary> dictionary_;
  rdf::Vocabulary vocabulary_;
  std::vector<VersionInfo> infos_;
  // fingerprints_[v] chains the base-content hash with every change
  // set up to v (see SnapshotHandle).
  std::vector<uint64_t> fingerprints_;
  // Memoized per-term content hashes (0 = not yet computed).
  std::vector<uint64_t> term_hashes_;
  // kFullMaterialization: stores_[v] is version v.
  // kDeltaChain / kHybridCheckpoint: stores_[0] is the base; later
  // versions live in change_sets_ (and, for hybrid, checkpoints_).
  std::vector<rdf::KnowledgeBase> stores_;
  std::vector<ChangeSet> change_sets_;  // change_sets_[v] produced v; [0] empty
  // kHybridCheckpoint: full snapshots at versions that are multiples
  // of checkpoint_interval_.
  std::unordered_map<VersionId, rdf::KnowledgeBase> checkpoints_;
  mutable std::unordered_map<VersionId, rdf::KnowledgeBase> cache_;
  // Durability (both unused until AttachCommitLog): the attached log
  // and the dictionary watermark of the last appended record — terms
  // with ids >= logged_terms_ still need shipping.
  storage::CommitLog* log_ = nullptr;
  rdf::TermId logged_terms_ = 0;
};

}  // namespace evorec::version

#endif  // EVOREC_VERSION_VERSIONED_KB_H_
