#ifndef EVOREC_VERSION_VERSIONED_KB_H_
#define EVOREC_VERSION_VERSIONED_KB_H_

#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "rdf/knowledge_base.h"
#include "version/version.h"

namespace evorec::version {

/// A linear-history versioned knowledge base. All versions share one
/// term dictionary so TermIds are stable across versions — the
/// invariant every evolution measure depends on.
///
/// Storage follows the configured ArchivePolicy; snapshots are
/// materialised lazily and cached. Not thread-safe.
class VersionedKnowledgeBase {
 public:
  /// Creates a KB whose version 0 is empty. `checkpoint_interval`
  /// applies to kHybridCheckpoint only (a full snapshot every that
  /// many versions; must be >= 1).
  explicit VersionedKnowledgeBase(
      ArchivePolicy policy = ArchivePolicy::kFullMaterialization,
      size_t checkpoint_interval = 4);

  /// Creates a KB whose version 0 is `initial`.
  VersionedKnowledgeBase(ArchivePolicy policy, rdf::KnowledgeBase initial,
                         size_t checkpoint_interval = 4);

  VersionedKnowledgeBase(const VersionedKnowledgeBase&) = delete;
  VersionedKnowledgeBase& operator=(const VersionedKnowledgeBase&) = delete;
  VersionedKnowledgeBase(VersionedKnowledgeBase&&) = default;
  VersionedKnowledgeBase& operator=(VersionedKnowledgeBase&&) = default;

  /// Applies `changes` on top of the head version, creating a new
  /// version. Returns the new version id. Empty change sets are legal
  /// (they record a no-op commit).
  Result<VersionId> Commit(const ChangeSet& changes, std::string author,
                           std::string message, uint64_t timestamp = 0);

  /// Move overload: archives `changes` without copying the triple
  /// vectors (the common case for generated or streamed change sets).
  Result<VersionId> Commit(ChangeSet&& changes, std::string author,
                           std::string message, uint64_t timestamp = 0);

  /// Number of versions (head id + 1).
  size_t version_count() const { return infos_.size(); }

  /// Id of the latest version.
  VersionId head() const {
    return static_cast<VersionId>(infos_.size() - 1);
  }

  /// Commit metadata for `v`.
  Result<VersionInfo> Info(VersionId v) const;

  /// The change set that produced `v` from `v-1`. Version 0 has no
  /// change set.
  Result<ChangeSet> Changes(VersionId v) const;

  /// Materialised snapshot of version `v` (cached; the reference stays
  /// valid until EvictSnapshotCache or destruction).
  Result<const rdf::KnowledgeBase*> Snapshot(VersionId v) const;

  /// Reconstructs `v` without touching the cache — used by benches to
  /// measure reconstruction cost under kDeltaChain.
  Result<rdf::KnowledgeBase> MaterializeUncached(VersionId v) const;

  /// Drops cached snapshots (keeps version 0 and, under full
  /// materialisation, all stored versions).
  void EvictSnapshotCache() const;

  /// Approximate resident bytes of version storage: base/materialised
  /// stores and checkpoints (counting only the permutation indexes
  /// each store has actually built), the snapshot cache, and archived
  /// change sets.
  size_t StorageBytes() const;

  ArchivePolicy policy() const { return policy_; }

  const std::shared_ptr<rdf::Dictionary>& shared_dictionary() const {
    return dictionary_;
  }
  rdf::Dictionary& dictionary() { return *dictionary_; }
  const rdf::Vocabulary& vocabulary() const { return vocabulary_; }

 private:
  ArchivePolicy policy_;
  size_t checkpoint_interval_;
  std::shared_ptr<rdf::Dictionary> dictionary_;
  rdf::Vocabulary vocabulary_;
  std::vector<VersionInfo> infos_;
  // kFullMaterialization: stores_[v] is version v.
  // kDeltaChain / kHybridCheckpoint: stores_[0] is the base; later
  // versions live in change_sets_ (and, for hybrid, checkpoints_).
  std::vector<rdf::KnowledgeBase> stores_;
  std::vector<ChangeSet> change_sets_;  // change_sets_[v] produced v; [0] empty
  // kHybridCheckpoint: full snapshots at versions that are multiples
  // of checkpoint_interval_.
  std::unordered_map<VersionId, rdf::KnowledgeBase> checkpoints_;
  mutable std::unordered_map<VersionId, rdf::KnowledgeBase> cache_;
};

}  // namespace evorec::version

#endif  // EVOREC_VERSION_VERSIONED_KB_H_
