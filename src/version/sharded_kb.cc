#include "version/sharded_kb.h"

#include <algorithm>

#include "common/hash.h"
#include "rdf/segment.h"

namespace evorec::version {

namespace {

// splitmix64 finaliser: TermIds are dense (0, 1, 2, ...), so taking
// them mod N directly would stripe related subjects across shards in
// intern order; the mixer decorrelates shard choice from id
// assignment while staying deterministic across runs.
uint64_t Mix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

}  // namespace

ShardedKnowledgeBase::ShardedKnowledgeBase()
    : ShardedKnowledgeBase(Options()) {}

ShardedKnowledgeBase::ShardedKnowledgeBase(Options options)
    : ShardedKnowledgeBase(options, rdf::KnowledgeBase()) {}

ShardedKnowledgeBase::ShardedKnowledgeBase(Options options,
                                           rdf::KnowledgeBase initial)
    : options_(options), dictionary_(initial.shared_dictionary()) {
  options_.shards = std::max<size_t>(1, options_.shards);

  // Split the base snapshot by subject shard. The full scan emits in
  // SPO order and the split preserves relative order, so each shard's
  // slice is already sorted-unique — FromSorted adopts it as one
  // frozen segment without re-sorting.
  std::vector<std::vector<rdf::Triple>> split(options_.shards);
  initial.store().ScanT(rdf::TriplePattern{}, [&](const rdf::Triple& t) {
    split[ShardOf(t.subject)].push_back(t);
    return true;
  });
  shards_.reserve(options_.shards);
  for (size_t i = 0; i < options_.shards; ++i) {
    shards_.emplace_back(
        options_.policy,
        rdf::KnowledgeBase(dictionary_,
                           rdf::TripleStore::FromSorted(std::move(split[i]))));
  }

  VersionEntry base;
  base.fingerprint = FoldFingerprints(0);
  base.snapshot = BuildUnionSnapshot();
  base.info.id = 0;
  base.info.author = "system";
  base.info.message = "base version";
  entries_.push_back(std::move(base));
}

size_t ShardedKnowledgeBase::ShardOf(rdf::TermId subject) const {
  return static_cast<size_t>(Mix64(subject) % options_.shards);
}

size_t ShardedKnowledgeBase::version_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

VersionId ShardedKnowledgeBase::head() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<VersionId>(entries_.size() - 1);
}

Result<SnapshotHandle> ShardedKnowledgeBase::Handle(VersionId v) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (v >= entries_.size()) {
    return NotFoundError("unknown version " + std::to_string(v));
  }
  SnapshotHandle handle;
  handle.id = v;
  handle.fingerprint = entries_[v].fingerprint;
  return handle;
}

Result<std::shared_ptr<const rdf::KnowledgeBase>>
ShardedKnowledgeBase::SharedSnapshot(VersionId v) const {
  std::shared_ptr<const rdf::KnowledgeBase> pinned;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (v >= entries_.size()) {
      return NotFoundError("unknown version " + std::to_string(v));
    }
    pinned = entries_[v].snapshot;
  }
  // Hand each caller its own segment-sharing copy rather than the
  // pinned store itself: a TripleStore is thread-compatible, not
  // thread-safe — concurrent first-use POS/OSP builds on one shared
  // store would race. The copy is O(#segments) pointer sharing, zero
  // triple copies, and gives the caller private lazy indexes.
  return std::make_shared<const rdf::KnowledgeBase>(*pinned);
}

Result<ChangeSet> ShardedKnowledgeBase::Changes(VersionId v) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (v >= entries_.size()) {
    return NotFoundError("unknown version " + std::to_string(v));
  }
  if (v == 0) {
    return FailedPreconditionError("version 0 has no change set");
  }
  return entries_[v].changes;
}

Result<VersionInfo> ShardedKnowledgeBase::Info(VersionId v) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (v >= entries_.size()) {
    return NotFoundError("unknown version " + std::to_string(v));
  }
  return entries_[v].info;
}

Result<VersionId> ShardedKnowledgeBase::Commit(ChangeSet changes,
                                               std::string author,
                                               std::string message,
                                               uint64_t timestamp) {
  // Stable split by subject shard: relative order within each shard's
  // slice matches the input, so per-shard last-wins replay composes to
  // exactly the unsharded replay semantics.
  const size_t n = shards_.size();
  std::vector<ChangeSet> split(n);
  for (const rdf::Triple& t : changes.additions) {
    split[ShardOf(t.subject)].additions.push_back(t);
  }
  for (const rdf::Triple& t : changes.removals) {
    split[ShardOf(t.subject)].removals.push_back(t);
  }

  // Land the per-shard commits — in parallel when a pool is attached.
  // Safe: shards are disjoint, and the per-shard fingerprint fold only
  // *reads* the shared dictionary (the caller interned all terms
  // before Commit, per the class contract).
  std::vector<Status> statuses(n, OkStatus());
  auto commit_shard = [&](size_t i) {
    auto result = shards_[i].Commit(std::move(split[i]), author, message,
                                    timestamp);
    statuses[i] = result.status();
  };
  if (options_.pool != nullptr && n > 1) {
    options_.pool->ParallelFor(n, commit_shard);
  } else {
    for (size_t i = 0; i < n; ++i) commit_shard(i);
  }
  for (const Status& s : statuses) {
    // Shards have no commit logs attached, so per-shard commits cannot
    // fail in practice; surface the first error defensively anyway.
    if (!s.ok()) return s;
  }

  VersionEntry entry;
  entry.fingerprint = FoldFingerprints(shards_[0].head());
  entry.snapshot = BuildUnionSnapshot();
  entry.changes = std::move(changes);
  entry.info.author = std::move(author);
  entry.info.message = std::move(message);
  entry.info.timestamp = timestamp;
  entry.info.additions = entry.changes.additions.size();
  entry.info.removals = entry.changes.removals.size();

  // Publish: the only point the committer touches reader-visible
  // state, held just long enough for one vector append.
  std::lock_guard<std::mutex> lock(mu_);
  const VersionId new_id = static_cast<VersionId>(entries_.size());
  entry.info.id = new_id;
  entries_.push_back(std::move(entry));
  return new_id;
}

uint64_t ShardedKnowledgeBase::FoldFingerprints(VersionId v) const {
  // Seed + shard count + per-shard chained fingerprints: equal folds
  // denote identical content, identical TermId mapping AND identical
  // sharding layout, so handles stay valid engine cache keys.
  size_t h = static_cast<size_t>(Fnv1a64("evorec-sharded-kb"));
  HashCombine(h, shards_.size());
  for (const VersionedKnowledgeBase& shard : shards_) {
    auto handle = shard.Handle(v);
    HashCombine(h, handle.value().fingerprint);
  }
  return static_cast<uint64_t>(h);
}

std::shared_ptr<const rdf::KnowledgeBase>
ShardedKnowledgeBase::BuildUnionSnapshot() const {
  // Concatenate the shards' frozen segment lists. Subject partitions
  // are disjoint, so no triple appears in two shards and the k-way
  // merged scans of the union store cannot mis-resolve a last-wins
  // tie across sub-lists; the merge restores global SPO order.
  std::vector<std::shared_ptr<const rdf::Segment>> segments;
  size_t total = 0;
  for (const VersionedKnowledgeBase& shard : shards_) {
    auto kb = shard.Snapshot(shard.head());
    const rdf::TripleStore& store = kb.value()->store();
    const auto& segs = store.segments();
    segments.insert(segments.end(), segs.begin(), segs.end());
    total += store.size();
  }
  return std::make_shared<const rdf::KnowledgeBase>(
      dictionary_, rdf::TripleStore::FromSegments(std::move(segments), total));
}

size_t ShardedKnowledgeBase::StorageBytes() const {
  // Accounting only — call from the committer thread or when
  // quiescent (it walks shard internals commits mutate).
  std::unordered_set<const void*> seen;
  size_t bytes = 0;
  for (const VersionedKnowledgeBase& shard : shards_) {
    bytes += shard.StorageBytes(seen);
  }
  std::lock_guard<std::mutex> lock(mu_);
  for (const VersionEntry& entry : entries_) {
    bytes += entry.snapshot->store().MemoryBytesDedup(seen);
    bytes += entry.changes.size() * sizeof(rdf::Triple);
  }
  return bytes;
}

}  // namespace evorec::version
