#ifndef EVOREC_EVOREC_H_
#define EVOREC_EVOREC_H_

/// \file
/// Umbrella header for the evorec library — a human-aware recommender
/// for knowledge-base evolution measures (reproduction of Stefanidis,
/// Kondylakis & Troullinou, "On Recommending Evolution Measures: A
/// Human-aware Approach", ICDE 2017).
///
/// Layering (each layer only depends on the ones above it):
///   common     — error model, RNG, statistics, binary I/O, tables
///   rdf        — terms, dictionary, triple store, N-Triples I/O
///   storage    — durable binary snapshots + append-only commit log
///   schema     — schema views, subsumption hierarchy
///                (storage and schema are sibling layers over rdf)
///   version    — versioned KB with archive policies, recovery
///   delta      — low-level deltas, high-level change patterns
///   graph      — CSR graphs, betweenness, bridging centrality
///   measures   — the paper's evolution measures (§II)
///   profile    — humans and groups
///   provenance — transparency substrate (§III.b)
///   anonymity  — k-anonymity and access policies (§III.e)
///   recommend  — the human-aware recommender (§III)
///   engine     — shared evaluation engine and batched serving
///   workload   — synthetic generators and scenario presets
///                (engine and workload are sibling top layers over
///                recommend)

#include "anonymity/access_policy.h"
#include "anonymity/aggregate.h"
#include "anonymity/anonymizer.h"
#include "anonymity/generalization.h"
#include "anonymity/kanonymity.h"
#include "common/binary_io.h"
#include "common/deadline.h"
#include "common/env.h"
#include "common/percentile.h"
#include "common/random.h"
#include "common/result.h"
#include "common/statistics.h"
#include "common/status.h"
#include "common/stopwatch.h"
#include "common/strings.h"
#include "common/table_printer.h"
#include "common/thread_pool.h"
#include "delta/delta_index.h"
#include "delta/delta_io.h"
#include "delta/high_level_delta.h"
#include "delta/low_level_delta.h"
#include "engine/admission.h"
#include "engine/artefact_cache.h"
#include "engine/evaluation_engine.h"
#include "engine/recommendation_service.h"
#include "graph/betweenness.h"
#include "graph/bridging.h"
#include "graph/graph.h"
#include "graph/graph_metrics.h"
#include "graph/schema_graph.h"
#include "measures/centrality.h"
#include "measures/change_count.h"
#include "measures/evaluation.h"
#include "measures/measure.h"
#include "measures/measure_context.h"
#include "measures/neighborhood_change.h"
#include "measures/property_measures.h"
#include "measures/registry.h"
#include "measures/relevance.h"
#include "measures/report.h"
#include "measures/structural_shift.h"
#include "measures/timeline.h"
#include "profile/group.h"
#include "profile/profile.h"
#include "provenance/record.h"
#include "provenance/store.h"
#include "provenance/trust.h"
#include "provenance/workflow.h"
#include "rdf/dictionary.h"
#include "rdf/knowledge_base.h"
#include "rdf/ntriples.h"
#include "rdf/segment.h"
#include "rdf/term.h"
#include "rdf/triple.h"
#include "rdf/triple_store.h"
#include "rdf/vocabulary.h"
#include "recommend/anonymity_gate.h"
#include "recommend/candidate.h"
#include "recommend/diversity.h"
#include "recommend/explanation.h"
#include "recommend/fairness.h"
#include "recommend/group_recommender.h"
#include "recommend/recommender.h"
#include "recommend/relatedness.h"
#include "schema/hierarchy.h"
#include "schema/schema_view.h"
#include "storage/commit_log.h"
#include "storage/fault_env.h"
#include "storage/format.h"
#include "storage/segment_io.h"
#include "storage/snapshot.h"
#include "version/history_query.h"
#include "version/kb_view.h"
#include "version/recovery.h"
#include "version/sharded_kb.h"
#include "version/version.h"
#include "version/versioned_kb.h"
#include "workload/evolution_generator.h"
#include "workload/instance_generator.h"
#include "workload/profile_generator.h"
#include "workload/scenarios.h"
#include "workload/schema_generator.h"
#include "workload/stream_generator.h"

#endif  // EVOREC_EVOREC_H_
