#ifndef EVOREC_DELTA_LOW_LEVEL_DELTA_H_
#define EVOREC_DELTA_LOW_LEVEL_DELTA_H_

#include <unordered_map>
#include <vector>

#include "rdf/knowledge_base.h"
#include "rdf/triple.h"
#include "version/version.h"

namespace evorec::delta {

/// The low-level delta between two versions V1 → V2 (paper §II.a):
/// δ+ = triples added, δ− = triples deleted, |δ| = |δ+| + |δ−|.
struct LowLevelDelta {
  std::vector<rdf::Triple> added;    ///< δ+: in V2 but not V1, SPO order.
  std::vector<rdf::Triple> removed;  ///< δ−: in V1 but not V2, SPO order.

  /// |δ| = |δ+| + |δ−|.
  size_t size() const { return added.size() + removed.size(); }
  bool empty() const { return added.empty() && removed.empty(); }
};

/// Computes the low-level delta between two snapshots (which must share
/// a dictionary; the function compares TermIds).
LowLevelDelta ComputeLowLevelDelta(const rdf::KnowledgeBase& before,
                                   const rdf::KnowledgeBase& after);

/// The low-level delta of applying `changes` on top of `before` —
/// equal to ComputeLowLevelDelta(before, before + changes) but
/// O(|changes| · log T) membership probes instead of an O(T) store
/// diff: the incremental-refresh path, where the commit's ChangeSet is
/// already in hand. Follows ChangeSet semantics (removals win over
/// additions of the same triple): δ+ = additions that are neither
/// removed in the same set nor already present, δ− = removals that
/// were present. Both sides come out SPO-sorted and deduplicated, like
/// the store-diff path.
LowLevelDelta DeltaFromCandidates(const rdf::KnowledgeBase& before,
                                  const version::ChangeSet& changes);

/// Per-term change counts: δ(n) = number of changed triples in which
/// term n appears (in any position; each changed triple contributes at
/// most 1 to a given term). This is the direct reading of the paper's
/// δ_{V1,V2}(n).
std::unordered_map<rdf::TermId, size_t> PerTermChangeCounts(
    const LowLevelDelta& delta);

/// δ(n) for a single term without materialising the full map.
size_t ChangesInvolving(const LowLevelDelta& delta, rdf::TermId term);

}  // namespace evorec::delta

#endif  // EVOREC_DELTA_LOW_LEVEL_DELTA_H_
