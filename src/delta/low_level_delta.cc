#include "delta/low_level_delta.h"

namespace evorec::delta {

LowLevelDelta ComputeLowLevelDelta(const rdf::KnowledgeBase& before,
                                   const rdf::KnowledgeBase& after) {
  LowLevelDelta delta;
  delta.added = rdf::TripleStore::Difference(after.store(), before.store());
  delta.removed = rdf::TripleStore::Difference(before.store(), after.store());
  return delta;
}

namespace {

void AccumulateTriple(const rdf::Triple& t,
                      std::unordered_map<rdf::TermId, size_t>& counts) {
  ++counts[t.subject];
  if (t.predicate != t.subject) ++counts[t.predicate];
  if (t.object != t.subject && t.object != t.predicate) ++counts[t.object];
}

}  // namespace

std::unordered_map<rdf::TermId, size_t> PerTermChangeCounts(
    const LowLevelDelta& delta) {
  std::unordered_map<rdf::TermId, size_t> counts;
  for (const rdf::Triple& t : delta.added) AccumulateTriple(t, counts);
  for (const rdf::Triple& t : delta.removed) AccumulateTriple(t, counts);
  return counts;
}

size_t ChangesInvolving(const LowLevelDelta& delta, rdf::TermId term) {
  size_t count = 0;
  auto involves = [term](const rdf::Triple& t) {
    return t.subject == term || t.predicate == term || t.object == term;
  };
  for (const rdf::Triple& t : delta.added) {
    if (involves(t)) ++count;
  }
  for (const rdf::Triple& t : delta.removed) {
    if (involves(t)) ++count;
  }
  return count;
}

}  // namespace evorec::delta
