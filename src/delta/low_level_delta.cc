#include "delta/low_level_delta.h"

#include <algorithm>

namespace evorec::delta {

LowLevelDelta ComputeLowLevelDelta(const rdf::KnowledgeBase& before,
                                   const rdf::KnowledgeBase& after) {
  LowLevelDelta delta;
  delta.added = rdf::TripleStore::Difference(after.store(), before.store());
  delta.removed = rdf::TripleStore::Difference(before.store(), after.store());
  return delta;
}

namespace {

std::vector<rdf::Triple> SortedUnique(std::vector<rdf::Triple> triples) {
  std::sort(triples.begin(), triples.end());
  triples.erase(std::unique(triples.begin(), triples.end()), triples.end());
  return triples;
}

}  // namespace

LowLevelDelta DeltaFromCandidates(const rdf::KnowledgeBase& before,
                                  const version::ChangeSet& changes) {
  const std::vector<rdf::Triple> additions = SortedUnique(changes.additions);
  const std::vector<rdf::Triple> removals = SortedUnique(changes.removals);
  LowLevelDelta delta;
  // Removals are applied after additions, so a triple in both lists
  // nets to absent: it is never an addition, and it is a removal
  // exactly when `before` held it.
  for (const rdf::Triple& t : additions) {
    if (std::binary_search(removals.begin(), removals.end(), t)) continue;
    if (!before.store().Contains(t)) delta.added.push_back(t);
  }
  for (const rdf::Triple& t : removals) {
    if (before.store().Contains(t)) delta.removed.push_back(t);
  }
  return delta;
}

namespace {

void AccumulateTriple(const rdf::Triple& t,
                      std::unordered_map<rdf::TermId, size_t>& counts) {
  ++counts[t.subject];
  if (t.predicate != t.subject) ++counts[t.predicate];
  if (t.object != t.subject && t.object != t.predicate) ++counts[t.object];
}

}  // namespace

std::unordered_map<rdf::TermId, size_t> PerTermChangeCounts(
    const LowLevelDelta& delta) {
  std::unordered_map<rdf::TermId, size_t> counts;
  for (const rdf::Triple& t : delta.added) AccumulateTriple(t, counts);
  for (const rdf::Triple& t : delta.removed) AccumulateTriple(t, counts);
  return counts;
}

size_t ChangesInvolving(const LowLevelDelta& delta, rdf::TermId term) {
  size_t count = 0;
  auto involves = [term](const rdf::Triple& t) {
    return t.subject == term || t.predicate == term || t.object == term;
  };
  for (const rdf::Triple& t : delta.added) {
    if (involves(t)) ++count;
  }
  for (const rdf::Triple& t : delta.removed) {
    if (involves(t)) ++count;
  }
  return count;
}

}  // namespace evorec::delta
