#include "delta/delta_io.h"

#include <algorithm>

#include "common/strings.h"
#include "rdf/ntriples.h"
#include "rdf/triple_store.h"

namespace evorec::delta {

std::string WriteChangeSet(const version::ChangeSet& changes,
                           const rdf::Dictionary& dictionary) {
  std::string out;
  auto emit = [&](char op, const rdf::Triple& t) {
    out += op;
    out += ' ';
    out += dictionary.term(t.subject).ToNTriples();
    out += ' ';
    out += dictionary.term(t.predicate).ToNTriples();
    out += ' ';
    out += dictionary.term(t.object).ToNTriples();
    out += " .\n";
  };
  for (const rdf::Triple& t : changes.additions) emit('A', t);
  for (const rdf::Triple& t : changes.removals) emit('D', t);
  return out;
}

Result<version::ChangeSet> ParseChangeSet(std::string_view text,
                                          rdf::Dictionary& dictionary) {
  version::ChangeSet changes;
  size_t line_number = 0;
  size_t start = 0;
  while (start <= text.size()) {
    size_t nl = text.find('\n', start);
    std::string_view line = (nl == std::string_view::npos)
                                ? text.substr(start)
                                : text.substr(start, nl - start);
    ++line_number;
    start = (nl == std::string_view::npos) ? text.size() + 1 : nl + 1;

    line = StripWhitespace(line);
    if (line.empty() || line[0] == '#') continue;
    if (line.size() < 2 || (line[0] != 'A' && line[0] != 'D') ||
        (line[1] != ' ' && line[1] != '\t')) {
      return InvalidArgumentError(
          "change-set line " + std::to_string(line_number) +
          ": expected 'A ' or 'D ' prefix");
    }
    const char op = line[0];
    // Reuse the N-Triples parser on the statement remainder.
    rdf::TripleStore scratch;
    Status parsed =
        rdf::ParseNTriples(line.substr(2), dictionary, scratch);
    if (!parsed.ok()) {
      return InvalidArgumentError("change-set line " +
                                  std::to_string(line_number) + ": " +
                                  parsed.message());
    }
    if (scratch.size() != 1) {
      return InvalidArgumentError(
          "change-set line " + std::to_string(line_number) +
          ": expected exactly one statement");
    }
    const rdf::Triple t = scratch.triples()[0];
    if (op == 'A') {
      changes.additions.push_back(t);
    } else {
      changes.removals.push_back(t);
    }
  }
  std::sort(changes.additions.begin(), changes.additions.end());
  std::sort(changes.removals.begin(), changes.removals.end());
  return changes;
}

}  // namespace evorec::delta
