#ifndef EVOREC_DELTA_HIGH_LEVEL_DELTA_H_
#define EVOREC_DELTA_HIGH_LEVEL_DELTA_H_

#include <map>
#include <string>
#include <vector>

#include "delta/low_level_delta.h"
#include "schema/schema_view.h"

namespace evorec::delta {

/// The change-pattern language of the high-level delta detector,
/// following the taxonomy of Roussakis et al. [11]: complex updates
/// explain groups of low-level additions/deletions.
enum class HighLevelChangeKind {
  kAddClass,
  kDeleteClass,
  kAddProperty,
  kDeleteProperty,
  kAttachSubclass,    ///< new rdfs:subClassOf edge
  kDetachSubclass,    ///< removed rdfs:subClassOf edge
  kMoveClass,         ///< detach + attach of the same child (reparent)
  kChangeDomain,      ///< property domain replaced
  kChangeRange,       ///< property range replaced
  kAddDomain,         ///< new domain declaration
  kDeleteDomain,      ///< removed domain declaration
  kAddRange,          ///< new range declaration
  kDeleteRange,       ///< removed range declaration
  kAddInstance,       ///< new rdf:type assertion
  kDeleteInstance,    ///< removed rdf:type assertion
  kRetypeInstance,    ///< instance moved between classes
  kAddInstanceEdge,   ///< new instance-level property edge
  kDeleteInstanceEdge,
  kChangeLabel,
  kAddLabel,
  kDeleteLabel,
  /// A label moved verbatim from one (deleted) resource to another
  /// (added) one — the classic rename pattern: focus is the new
  /// resource, before_value the old one, after_value the label.
  kRenameResource,
};

/// Stable display name of a change kind (e.g. "MoveClass").
std::string HighLevelChangeKindName(HighLevelChangeKind kind);

/// One detected high-level change. `focus` is the primary affected
/// term (class, property or instance); `before_value`/`after_value`
/// carry the replaced component where applicable (old/new parent, old/
/// new domain, ...). `consumed` is the number of low-level triples this
/// change explains.
struct HighLevelChange {
  HighLevelChangeKind kind = HighLevelChangeKind::kAddInstanceEdge;
  rdf::TermId focus = rdf::kAnyTerm;
  rdf::TermId before_value = rdf::kAnyTerm;
  rdf::TermId after_value = rdf::kAnyTerm;
  size_t consumed = 0;
};

/// The result of high-level change detection.
struct HighLevelDelta {
  std::vector<HighLevelChange> changes;

  /// Count of changes per kind.
  std::map<HighLevelChangeKind, size_t> CountsByKind() const;

  /// Fraction of low-level triples explained by detected patterns
  /// (1.0 means every added/removed triple belongs to some high-level
  /// change).
  double coverage = 0.0;
};

/// Detects high-level change patterns that explain `delta`, given the
/// schema views of both snapshots. Pairing rules (executed in order):
///  1. class/property declarations → Add/Delete Class/Property;
///  2. subclass edge removed + added for the same child → MoveClass;
///     unpaired edges → Attach/Detach;
///  3. domain (range) removed + added for the same property →
///     ChangeDomain (ChangeRange);
///  4. rdf:type removed + added for the same instance →
///     RetypeInstance; unpaired → Add/DeleteInstance;
///  5. rdfs:label removed + added for the same subject → ChangeLabel;
///     the same label value removed from one subject and added to
///     another → RenameResource;
///  6. all other predicates → Add/DeleteInstanceEdge.
HighLevelDelta DetectHighLevelChanges(const LowLevelDelta& delta,
                                      const schema::SchemaView& before,
                                      const schema::SchemaView& after,
                                      const rdf::Vocabulary& vocabulary);

}  // namespace evorec::delta

#endif  // EVOREC_DELTA_HIGH_LEVEL_DELTA_H_
