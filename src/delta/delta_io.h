#ifndef EVOREC_DELTA_DELTA_IO_H_
#define EVOREC_DELTA_DELTA_IO_H_

#include <string>
#include <string_view>

#include "common/result.h"
#include "rdf/dictionary.h"
#include "version/version.h"

namespace evorec::delta {

/// Text exchange format for change sets, after the "transmitting RDF
/// graph deltas" use case the paper cites ([2]): one statement per
/// line, prefixed with `A` (added) or `D` (deleted), followed by the
/// triple in N-Triples syntax:
///
///   A <http://x/alice> <.../type> <http://x/Person> .
///   D <http://x/bob> <.../type> <http://x/Person> .
///
/// Comments (`#`) and blank lines are permitted. The format makes a
/// delta self-contained: a consumer sharing no state with the producer
/// can synchronise its replica by applying the lines in order.

/// Serialises `changes` (ids resolved against `dictionary`).
std::string WriteChangeSet(const version::ChangeSet& changes,
                           const rdf::Dictionary& dictionary);

/// Parses a change-set document, interning terms into `dictionary`.
/// Fails on the first malformed line with its line number.
Result<version::ChangeSet> ParseChangeSet(std::string_view text,
                                          rdf::Dictionary& dictionary);

}  // namespace evorec::delta

#endif  // EVOREC_DELTA_DELTA_IO_H_
