#include "delta/high_level_delta.h"

#include <algorithm>
#include <unordered_map>

namespace evorec::delta {

std::string HighLevelChangeKindName(HighLevelChangeKind kind) {
  switch (kind) {
    case HighLevelChangeKind::kAddClass:
      return "AddClass";
    case HighLevelChangeKind::kDeleteClass:
      return "DeleteClass";
    case HighLevelChangeKind::kAddProperty:
      return "AddProperty";
    case HighLevelChangeKind::kDeleteProperty:
      return "DeleteProperty";
    case HighLevelChangeKind::kAttachSubclass:
      return "AttachSubclass";
    case HighLevelChangeKind::kDetachSubclass:
      return "DetachSubclass";
    case HighLevelChangeKind::kMoveClass:
      return "MoveClass";
    case HighLevelChangeKind::kChangeDomain:
      return "ChangeDomain";
    case HighLevelChangeKind::kChangeRange:
      return "ChangeRange";
    case HighLevelChangeKind::kAddDomain:
      return "AddDomain";
    case HighLevelChangeKind::kDeleteDomain:
      return "DeleteDomain";
    case HighLevelChangeKind::kAddRange:
      return "AddRange";
    case HighLevelChangeKind::kDeleteRange:
      return "DeleteRange";
    case HighLevelChangeKind::kAddInstance:
      return "AddInstance";
    case HighLevelChangeKind::kDeleteInstance:
      return "DeleteInstance";
    case HighLevelChangeKind::kRetypeInstance:
      return "RetypeInstance";
    case HighLevelChangeKind::kAddInstanceEdge:
      return "AddInstanceEdge";
    case HighLevelChangeKind::kDeleteInstanceEdge:
      return "DeleteInstanceEdge";
    case HighLevelChangeKind::kChangeLabel:
      return "ChangeLabel";
    case HighLevelChangeKind::kAddLabel:
      return "AddLabel";
    case HighLevelChangeKind::kDeleteLabel:
      return "DeleteLabel";
    case HighLevelChangeKind::kRenameResource:
      return "RenameResource";
  }
  return "Unknown";
}

std::map<HighLevelChangeKind, size_t> HighLevelDelta::CountsByKind() const {
  std::map<HighLevelChangeKind, size_t> counts;
  for (const HighLevelChange& c : changes) {
    ++counts[c.kind];
  }
  return counts;
}

namespace {

// One unmatched edit left after same-subject pairing.
struct LeftoverEdit {
  rdf::TermId subject;
  rdf::TermId object;
};

// Pairs removed (subject → old object) with added (subject → new
// object) triples of one predicate into "change" events; leftovers
// become standalone add/delete events (or feed cross-subject pairing,
// see the label handling in DetectHighLevelChanges).
struct PairedEdits {
  // subject → (old objects, new objects)
  std::unordered_map<rdf::TermId, std::pair<std::vector<rdf::TermId>,
                                            std::vector<rdf::TermId>>>
      by_subject;

  void AddRemoved(rdf::TermId subject, rdf::TermId object) {
    by_subject[subject].first.push_back(object);
  }
  void AddAdded(rdf::TermId subject, rdf::TermId object) {
    by_subject[subject].second.push_back(object);
  }

  // Emits change events for same-subject pairs and collects unmatched
  // edits.
  void EmitChanges(std::vector<HighLevelChange>& out,
                   HighLevelChangeKind change,
                   std::vector<LeftoverEdit>& removed_leftovers,
                   std::vector<LeftoverEdit>& added_leftovers) {
    for (auto& [subject, edits] : by_subject) {
      auto& removed = edits.first;
      auto& added = edits.second;
      const size_t paired = std::min(removed.size(), added.size());
      for (size_t i = 0; i < paired; ++i) {
        HighLevelChange c;
        c.kind = change;
        c.focus = subject;
        c.before_value = removed[i];
        c.after_value = added[i];
        c.consumed = 2;
        out.push_back(c);
      }
      for (size_t i = paired; i < removed.size(); ++i) {
        removed_leftovers.push_back({subject, removed[i]});
      }
      for (size_t i = paired; i < added.size(); ++i) {
        added_leftovers.push_back({subject, added[i]});
      }
    }
  }

  // Emits change / add / delete events.
  void Emit(std::vector<HighLevelChange>& out, HighLevelChangeKind change,
            HighLevelChangeKind add, HighLevelChangeKind del) {
    std::vector<LeftoverEdit> removed_leftovers;
    std::vector<LeftoverEdit> added_leftovers;
    EmitChanges(out, change, removed_leftovers, added_leftovers);
    for (const LeftoverEdit& edit : removed_leftovers) {
      HighLevelChange c;
      c.kind = del;
      c.focus = edit.subject;
      c.before_value = edit.object;
      c.consumed = 1;
      out.push_back(c);
    }
    for (const LeftoverEdit& edit : added_leftovers) {
      HighLevelChange c;
      c.kind = add;
      c.focus = edit.subject;
      c.after_value = edit.object;
      c.consumed = 1;
      out.push_back(c);
    }
  }
};

}  // namespace

HighLevelDelta DetectHighLevelChanges(const LowLevelDelta& delta,
                                      const schema::SchemaView& before,
                                      const schema::SchemaView& after,
                                      const rdf::Vocabulary& voc) {
  HighLevelDelta result;
  PairedEdits subclass_edits;
  PairedEdits domain_edits;
  PairedEdits range_edits;
  PairedEdits type_edits;
  PairedEdits label_edits;

  auto classify = [&](const rdf::Triple& t, bool is_add) {
    if (t.predicate == voc.rdf_type) {
      if (t.object == voc.rdfs_class || t.object == voc.owl_class) {
        HighLevelChange c;
        c.kind = is_add ? HighLevelChangeKind::kAddClass
                        : HighLevelChangeKind::kDeleteClass;
        c.focus = t.subject;
        c.consumed = 1;
        result.changes.push_back(c);
        return;
      }
      if (t.object == voc.rdf_property) {
        HighLevelChange c;
        c.kind = is_add ? HighLevelChangeKind::kAddProperty
                        : HighLevelChangeKind::kDeleteProperty;
        c.focus = t.subject;
        c.consumed = 1;
        result.changes.push_back(c);
        return;
      }
      // Instance typing.
      if (is_add) {
        type_edits.AddAdded(t.subject, t.object);
      } else {
        type_edits.AddRemoved(t.subject, t.object);
      }
      return;
    }
    if (t.predicate == voc.rdfs_subclass_of) {
      if (is_add) {
        subclass_edits.AddAdded(t.subject, t.object);
      } else {
        subclass_edits.AddRemoved(t.subject, t.object);
      }
      return;
    }
    if (t.predicate == voc.rdfs_domain) {
      if (is_add) {
        domain_edits.AddAdded(t.subject, t.object);
      } else {
        domain_edits.AddRemoved(t.subject, t.object);
      }
      return;
    }
    if (t.predicate == voc.rdfs_range) {
      if (is_add) {
        range_edits.AddAdded(t.subject, t.object);
      } else {
        range_edits.AddRemoved(t.subject, t.object);
      }
      return;
    }
    if (t.predicate == voc.rdfs_label) {
      if (is_add) {
        label_edits.AddAdded(t.subject, t.object);
      } else {
        label_edits.AddRemoved(t.subject, t.object);
      }
      return;
    }
    // Instance-level edge. A deleted instance (type removed) drags its
    // edges with it; we still report the edge events — they are the
    // low-level facts a curator drills into.
    HighLevelChange c;
    c.kind = is_add ? HighLevelChangeKind::kAddInstanceEdge
                    : HighLevelChangeKind::kDeleteInstanceEdge;
    c.focus = t.subject;
    c.after_value = is_add ? t.object : rdf::kAnyTerm;
    c.before_value = is_add ? rdf::kAnyTerm : t.object;
    c.consumed = 1;
    result.changes.push_back(c);
  };

  for (const rdf::Triple& t : delta.removed) classify(t, /*is_add=*/false);
  for (const rdf::Triple& t : delta.added) classify(t, /*is_add=*/true);

  subclass_edits.Emit(result.changes, HighLevelChangeKind::kMoveClass,
                      HighLevelChangeKind::kAttachSubclass,
                      HighLevelChangeKind::kDetachSubclass);
  domain_edits.Emit(result.changes, HighLevelChangeKind::kChangeDomain,
                    HighLevelChangeKind::kAddDomain,
                    HighLevelChangeKind::kDeleteDomain);
  range_edits.Emit(result.changes, HighLevelChangeKind::kChangeRange,
                   HighLevelChangeKind::kAddRange,
                   HighLevelChangeKind::kDeleteRange);
  type_edits.Emit(result.changes, HighLevelChangeKind::kRetypeInstance,
                  HighLevelChangeKind::kAddInstance,
                  HighLevelChangeKind::kDeleteInstance);
  // Labels: same-subject pairs are ChangeLabel; a label value moving
  // verbatim between two different subjects is a rename.
  {
    std::vector<LeftoverEdit> removed_labels;
    std::vector<LeftoverEdit> added_labels;
    label_edits.EmitChanges(result.changes,
                            HighLevelChangeKind::kChangeLabel,
                            removed_labels, added_labels);
    // Cross-subject pairing by label value (literal TermIds are
    // interned, so equal labels share one id).
    std::unordered_map<rdf::TermId, std::vector<size_t>> added_by_value;
    for (size_t i = 0; i < added_labels.size(); ++i) {
      added_by_value[added_labels[i].object].push_back(i);
    }
    std::vector<bool> added_used(added_labels.size(), false);
    for (const LeftoverEdit& removed : removed_labels) {
      bool renamed = false;
      auto it = added_by_value.find(removed.object);
      if (it != added_by_value.end()) {
        for (size_t index : it->second) {
          if (added_used[index] ||
              added_labels[index].subject == removed.subject) {
            continue;
          }
          HighLevelChange c;
          c.kind = HighLevelChangeKind::kRenameResource;
          c.focus = added_labels[index].subject;
          c.before_value = removed.subject;
          c.after_value = removed.object;  // the label value
          c.consumed = 2;
          result.changes.push_back(c);
          added_used[index] = true;
          renamed = true;
          break;
        }
      }
      if (!renamed) {
        HighLevelChange c;
        c.kind = HighLevelChangeKind::kDeleteLabel;
        c.focus = removed.subject;
        c.before_value = removed.object;
        c.consumed = 1;
        result.changes.push_back(c);
      }
    }
    for (size_t i = 0; i < added_labels.size(); ++i) {
      if (added_used[i]) continue;
      HighLevelChange c;
      c.kind = HighLevelChangeKind::kAddLabel;
      c.focus = added_labels[i].subject;
      c.after_value = added_labels[i].object;
      c.consumed = 1;
      result.changes.push_back(c);
    }
  }

  (void)before;
  (void)after;

  size_t consumed = 0;
  for (const HighLevelChange& c : result.changes) consumed += c.consumed;
  result.coverage = delta.size() == 0
                        ? 1.0
                        : static_cast<double>(consumed) /
                              static_cast<double>(delta.size());
  return result;
}

}  // namespace evorec::delta
