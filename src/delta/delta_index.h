#ifndef EVOREC_DELTA_DELTA_INDEX_H_
#define EVOREC_DELTA_DELTA_INDEX_H_

#include <unordered_map>
#include <vector>

#include "delta/low_level_delta.h"
#include "schema/schema_view.h"

namespace evorec::delta {

/// Class- and property-attributed change statistics for one version
/// pair. Two attribution modes are provided:
///
///  - *direct*: δ(n) counts changed triples mentioning n itself —
///    the literal reading of the paper's δ_{V1,V2}(n);
///  - *extended*: additionally attributes instance-level changes
///    (type assertions, instance property edges) to the instance's
///    class in either version, so that "the Person part of the KB
///    churned" is visible at the class level.
///
/// The neighborhood aggregate implements §II.b:
///   |δN(n)| = Σ_{c ∈ N_{V1,V2}(n)} δ(c),
/// with N taken as the union of the per-version neighborhoods.
class DeltaIndex {
 public:
  /// Builds the index from a computed delta and the schema views of the
  /// two snapshots it connects.
  static DeltaIndex Build(const LowLevelDelta& delta,
                          const schema::SchemaView& before,
                          const schema::SchemaView& after,
                          const rdf::Vocabulary& vocabulary);

  /// δ(n), direct attribution.
  size_t DirectChanges(rdf::TermId term) const;

  /// δ(n), extended attribution (classes only; falls back to direct
  /// for other terms).
  size_t ExtendedChanges(rdf::TermId term) const;

  /// |δN(n)| over the union neighborhood, using extended attribution.
  size_t NeighborhoodChanges(rdf::TermId cls) const;

  /// Union neighborhood N_{V1,V2}(n).
  std::vector<rdf::TermId> UnionNeighborhood(rdf::TermId cls) const;

  /// All classes present in either version, sorted.
  const std::vector<rdf::TermId>& union_classes() const {
    return union_classes_;
  }

  /// All properties present in either version, sorted.
  const std::vector<rdf::TermId>& union_properties() const {
    return union_properties_;
  }

  /// Total |δ|.
  size_t total_changes() const { return total_changes_; }

 private:
  std::unordered_map<rdf::TermId, size_t> direct_;
  std::unordered_map<rdf::TermId, size_t> extended_;
  std::unordered_map<rdf::TermId, std::vector<rdf::TermId>> neighborhoods_;
  std::vector<rdf::TermId> union_classes_;
  std::vector<rdf::TermId> union_properties_;
  size_t total_changes_ = 0;
};

}  // namespace evorec::delta

#endif  // EVOREC_DELTA_DELTA_INDEX_H_
