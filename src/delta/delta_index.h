#ifndef EVOREC_DELTA_DELTA_INDEX_H_
#define EVOREC_DELTA_DELTA_INDEX_H_

#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "delta/low_level_delta.h"
#include "schema/schema_view.h"

namespace evorec::delta {

/// Class- and property-attributed change statistics for one version
/// pair. Two attribution modes are provided:
///
///  - *direct*: δ(n) counts changed triples mentioning n itself —
///    the literal reading of the paper's δ_{V1,V2}(n);
///  - *extended*: additionally attributes instance-level changes
///    (type assertions, instance property edges) to the instance's
///    class in either version, so that "the Person part of the KB
///    churned" is visible at the class level.
///
/// The neighborhood aggregate implements §II.b:
///   |δN(n)| = Σ_{c ∈ N_{V1,V2}(n)} δ(c),
/// with N taken as the union of the per-version neighborhoods.
///
/// Class-level statistics are stored flat, indexed by position in
/// union_classes() (sorted TermIds double as a dense id space); the
/// *_At accessors are the zero-hash fast path the measure kernels
/// iterate with.
///
/// Neighborhoods are expensive (a sorted per-class union over both
/// views) and many cold paths never ask for them, so they are
/// computed lazily on first access — thread-safe, shared between
/// copies of the index. The shared_ptr Build overload defers them; the
/// reference overload (safe for temporaries) computes them eagerly.
class DeltaIndex {
 public:
  /// Builds the index from a computed delta and the schema views of
  /// the two snapshots it connects. Neighborhoods are materialised
  /// eagerly (the views need not outlive the call).
  static DeltaIndex Build(const LowLevelDelta& delta,
                          const schema::SchemaView& before,
                          const schema::SchemaView& after,
                          const rdf::Vocabulary& vocabulary);

  /// As above, but retains the views and defers the neighborhood
  /// materialisation until first use — the cold-path form
  /// EvolutionContext builds with (a betweenness-only walk never pays
  /// for neighborhoods).
  static DeltaIndex Build(const LowLevelDelta& delta,
                          std::shared_ptr<const schema::SchemaView> before,
                          std::shared_ptr<const schema::SchemaView> after,
                          const rdf::Vocabulary& vocabulary);

  /// The chain-walk form: the index for a pair (V2, V3) given the
  /// index of the preceding pair (V1, V2) and the V2→V3 delta.
  /// Observationally identical to Build(delta, before, after,
  /// vocabulary) — `previous` only enables reuse: when the class and
  /// property universes did not churn across the two pairs (the
  /// common small-commit case), the new index shares the previous
  /// one's union buffers instead of re-merging, and the flat stats are
  /// refilled in O(|union| + |δ|). Neighborhoods stay lazy either way
  /// and draw from the views' shared memos.
  static DeltaIndex Advance(const DeltaIndex& previous,
                            const LowLevelDelta& delta,
                            std::shared_ptr<const schema::SchemaView> before,
                            std::shared_ptr<const schema::SchemaView> after,
                            const rdf::Vocabulary& vocabulary);

  /// Position of `cls` in union_classes(), or rdf::kNotInUniverse.
  size_t UnionClassIndexOf(rdf::TermId cls) const {
    return rdf::SortedIndexOf(*union_classes_, cls);
  }

  /// δ(n), direct attribution.
  size_t DirectChanges(rdf::TermId term) const;

  /// δ(n), extended attribution (classes only; falls back to direct
  /// for other terms).
  size_t ExtendedChanges(rdf::TermId term) const;

  /// Extended δ of union_classes()[i].
  size_t ExtendedChangesAt(size_t i) const { return extended_class_[i]; }

  /// |δN(n)| over the union neighborhood, using extended attribution.
  size_t NeighborhoodChanges(rdf::TermId cls) const;

  /// |δN| of union_classes()[i].
  size_t NeighborhoodChangesAt(size_t i) const;

  /// Union neighborhood N_{V1,V2}(n).
  std::vector<rdf::TermId> UnionNeighborhood(rdf::TermId cls) const;

  /// All classes present in either version, sorted.
  const std::vector<rdf::TermId>& union_classes() const {
    return *union_classes_;
  }

  /// All properties present in either version, sorted.
  const std::vector<rdf::TermId>& union_properties() const {
    return *union_properties_;
  }

  /// Total |δ|.
  size_t total_changes() const { return total_changes_; }

 private:
  /// Lazily materialised per-class neighborhoods and their §II.b
  /// aggregates, shared between copies of the index. The views are
  /// retained only until the first materialisation.
  struct Neighborhoods {
    std::once_flag once;
    std::shared_ptr<const schema::SchemaView> before;
    std::shared_ptr<const schema::SchemaView> after;
    std::vector<std::vector<rdf::TermId>> lists;  // by union-class index
    std::vector<size_t> changes;                  // by union-class index
  };

  /// The materialised neighborhood data (computing it on first call).
  const Neighborhoods& EnsureNeighborhoods() const;

  using UniverseRef = std::shared_ptr<const std::vector<rdf::TermId>>;

  /// Build and Advance share one body; `previous` (may be null) is the
  /// reuse donor.
  static DeltaIndex BuildInternal(
      const LowLevelDelta& delta,
      std::shared_ptr<const schema::SchemaView> before,
      std::shared_ptr<const schema::SchemaView> after,
      const rdf::Vocabulary& vocabulary, const DeltaIndex* previous);

  // Per-term direct counts for arbitrary terms (classes, properties,
  // instances, literals) — the only remaining hash map.
  std::unordered_map<rdf::TermId, size_t> direct_;
  // Union universes are held by shared_ptr so that a chain of advanced
  // indexes with a stable universe shares one buffer (never null).
  UniverseRef union_classes_ = std::make_shared<std::vector<rdf::TermId>>();
  UniverseRef union_properties_ =
      std::make_shared<std::vector<rdf::TermId>>();
  // Flat per-class statistics, aligned to union_classes_.
  std::vector<size_t> extended_class_;
  std::shared_ptr<Neighborhoods> neighborhoods_;
  size_t total_changes_ = 0;
};

}  // namespace evorec::delta

#endif  // EVOREC_DELTA_DELTA_INDEX_H_
