#include "delta/delta_index.h"

#include <algorithm>
#include <utility>

namespace evorec::delta {

namespace {

std::vector<rdf::TermId> SortedUnion(const std::vector<rdf::TermId>& a,
                                     const std::vector<rdf::TermId>& b) {
  std::vector<rdf::TermId> out;
  out.reserve(a.size() + b.size());
  std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                 std::back_inserter(out));
  return out;
}

}  // namespace

DeltaIndex DeltaIndex::Build(const LowLevelDelta& delta,
                             const schema::SchemaView& before,
                             const schema::SchemaView& after,
                             const rdf::Vocabulary& vocabulary) {
  // The reference overload may receive temporaries, so materialise the
  // neighborhoods before the views go away.
  DeltaIndex index =
      Build(delta, std::shared_ptr<const schema::SchemaView>(
                       &before, [](const schema::SchemaView*) {}),
            std::shared_ptr<const schema::SchemaView>(
                &after, [](const schema::SchemaView*) {}),
            vocabulary);
  (void)index.EnsureNeighborhoods();  // also drops the view aliases
  return index;
}

DeltaIndex DeltaIndex::Build(
    const LowLevelDelta& delta,
    std::shared_ptr<const schema::SchemaView> before,
    std::shared_ptr<const schema::SchemaView> after,
    const rdf::Vocabulary& vocabulary) {
  return BuildInternal(delta, std::move(before), std::move(after), vocabulary,
                       /*previous=*/nullptr);
}

DeltaIndex DeltaIndex::Advance(
    const DeltaIndex& previous, const LowLevelDelta& delta,
    std::shared_ptr<const schema::SchemaView> before,
    std::shared_ptr<const schema::SchemaView> after,
    const rdf::Vocabulary& vocabulary) {
  return BuildInternal(delta, std::move(before), std::move(after), vocabulary,
                       &previous);
}

DeltaIndex DeltaIndex::BuildInternal(
    const LowLevelDelta& delta,
    std::shared_ptr<const schema::SchemaView> before,
    std::shared_ptr<const schema::SchemaView> after,
    const rdf::Vocabulary& vocabulary, const DeltaIndex* previous) {
  DeltaIndex index;
  index.total_changes_ = delta.size();
  index.direct_ = PerTermChangeCounts(delta);
  // Adopt the previous pair's universe buffer when the merge comes out
  // identical (stable universes across a chain of small commits) —
  // every advanced index then shares one allocation.
  const auto adopt = [&](std::vector<rdf::TermId> fresh,
                         const UniverseRef& donor) -> UniverseRef {
    if (previous != nullptr && *donor == fresh) return donor;
    return std::make_shared<const std::vector<rdf::TermId>>(std::move(fresh));
  };
  index.union_classes_ =
      adopt(SortedUnion(before->classes(), after->classes()),
            previous != nullptr ? previous->union_classes_ : index.union_classes_);
  index.union_properties_ =
      adopt(SortedUnion(before->properties(), after->properties()),
            previous != nullptr ? previous->union_properties_
                                : index.union_properties_);
  const std::vector<rdf::TermId>& union_classes = *index.union_classes_;
  const size_t n = union_classes.size();

  // Extended attribution starts from direct counts, laid out flat over
  // the union class universe.
  index.extended_class_.assign(n, 0);
  for (size_t i = 0; i < n; ++i) {
    auto it = index.direct_.find(union_classes[i]);
    if (it != index.direct_.end()) index.extended_class_[i] = it->second;
  }

  auto class_index_of_instance = [&](rdf::TermId instance) -> size_t {
    rdf::TermId cls = after->TypeOf(instance);
    if (cls == rdf::kAnyTerm) cls = before->TypeOf(instance);
    if (cls == rdf::kAnyTerm) return rdf::kNotInUniverse;
    return index.UnionClassIndexOf(cls);
  };

  auto attribute = [&](const rdf::Triple& t) {
    if (t.predicate == vocabulary.rdf_type) {
      // (x type C): direct counting already credited C; also credit the
      // previous/other class of x on retyping via class_of_instance of
      // the subject if it differs.
      return;
    }
    if (vocabulary.IsSchemaPredicate(t.predicate)) return;
    // Instance edge (x p y): credit the classes of x and y.
    const size_t cs = class_index_of_instance(t.subject);
    const size_t co = class_index_of_instance(t.object);
    if (cs != rdf::kNotInUniverse) ++index.extended_class_[cs];
    if (co != rdf::kNotInUniverse && co != cs) ++index.extended_class_[co];
  };
  for (const rdf::Triple& t : delta.added) attribute(t);
  for (const rdf::Triple& t : delta.removed) attribute(t);

  index.neighborhoods_ = std::make_shared<Neighborhoods>();
  index.neighborhoods_->before = std::move(before);
  index.neighborhoods_->after = std::move(after);
  return index;
}

const DeltaIndex::Neighborhoods& DeltaIndex::EnsureNeighborhoods() const {
  Neighborhoods& cell = *neighborhoods_;
  std::call_once(cell.once, [&] {
    const size_t n = union_classes_->size();
    cell.lists.resize(n);
    cell.changes.assign(n, 0);
    // Per-view neighborhoods come from the views' shared memos, so a
    // view reused across pairs (chain walks, incremental refreshes)
    // pays its neighborhood scan once. Classes absent from a view fall
    // back to the live call — identical output, just unmemoized.
    const auto list_of = [](const schema::SchemaView& view,
                            rdf::TermId cls) -> std::vector<rdf::TermId> {
      const size_t i = rdf::SortedIndexOf(view.classes(), cls);
      if (i != rdf::kNotInUniverse) return view.NeighborhoodLists()[i];
      return view.Neighborhood(cls);
    };
    for (size_t i = 0; i < n; ++i) {
      const rdf::TermId cls = (*union_classes_)[i];
      cell.lists[i] = SortedUnion(list_of(*cell.before, cls),
                                  list_of(*cell.after, cls));
      size_t total = 0;
      for (rdf::TermId neighbor : cell.lists[i]) {
        const size_t j = UnionClassIndexOf(neighbor);
        total += j != rdf::kNotInUniverse ? extended_class_[j]
                                          : DirectChanges(neighbor);
      }
      cell.changes[i] = total;
    }
    // The views were only needed for this materialisation — don't pin
    // two snapshots' worth of schema state for the index's lifetime.
    cell.before.reset();
    cell.after.reset();
  });
  return cell;
}

size_t DeltaIndex::DirectChanges(rdf::TermId term) const {
  auto it = direct_.find(term);
  return it == direct_.end() ? 0 : it->second;
}

size_t DeltaIndex::ExtendedChanges(rdf::TermId term) const {
  const size_t i = UnionClassIndexOf(term);
  return i != rdf::kNotInUniverse ? extended_class_[i] : DirectChanges(term);
}

size_t DeltaIndex::NeighborhoodChanges(rdf::TermId cls) const {
  const size_t i = UnionClassIndexOf(cls);
  return i != rdf::kNotInUniverse ? NeighborhoodChangesAt(i) : 0;
}

size_t DeltaIndex::NeighborhoodChangesAt(size_t i) const {
  return EnsureNeighborhoods().changes[i];
}

std::vector<rdf::TermId> DeltaIndex::UnionNeighborhood(rdf::TermId cls) const {
  const size_t i = UnionClassIndexOf(cls);
  if (i == rdf::kNotInUniverse) return {};
  return EnsureNeighborhoods().lists[i];
}

}  // namespace evorec::delta
