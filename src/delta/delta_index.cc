#include "delta/delta_index.h"

#include <algorithm>

namespace evorec::delta {

namespace {

std::vector<rdf::TermId> SortedUnion(const std::vector<rdf::TermId>& a,
                                     const std::vector<rdf::TermId>& b) {
  std::vector<rdf::TermId> out;
  out.reserve(a.size() + b.size());
  std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                 std::back_inserter(out));
  return out;
}

}  // namespace

DeltaIndex DeltaIndex::Build(const LowLevelDelta& delta,
                             const schema::SchemaView& before,
                             const schema::SchemaView& after,
                             const rdf::Vocabulary& vocabulary) {
  DeltaIndex index;
  index.total_changes_ = delta.size();
  index.direct_ = PerTermChangeCounts(delta);
  index.union_classes_ = SortedUnion(before.classes(), after.classes());
  index.union_properties_ =
      SortedUnion(before.properties(), after.properties());

  // Extended attribution starts from direct counts.
  index.extended_ = index.direct_;

  auto class_of_instance = [&](rdf::TermId instance) -> rdf::TermId {
    rdf::TermId cls = after.TypeOf(instance);
    if (cls == rdf::kAnyTerm) cls = before.TypeOf(instance);
    return cls;
  };

  auto attribute = [&](const rdf::Triple& t) {
    if (t.predicate == vocabulary.rdf_type) {
      // (x type C): direct counting already credited C; also credit the
      // previous/other class of x on retyping via class_of_instance of
      // the subject if it differs.
      return;
    }
    if (vocabulary.IsSchemaPredicate(t.predicate)) return;
    // Instance edge (x p y): credit the classes of x and y.
    const rdf::TermId cs = class_of_instance(t.subject);
    const rdf::TermId co = class_of_instance(t.object);
    if (cs != rdf::kAnyTerm) ++index.extended_[cs];
    if (co != rdf::kAnyTerm && co != cs) ++index.extended_[co];
  };
  for (const rdf::Triple& t : delta.added) attribute(t);
  for (const rdf::Triple& t : delta.removed) attribute(t);

  // Union neighborhoods for all classes of either version.
  for (rdf::TermId cls : index.union_classes_) {
    index.neighborhoods_[cls] =
        SortedUnion(before.Neighborhood(cls), after.Neighborhood(cls));
  }
  return index;
}

size_t DeltaIndex::DirectChanges(rdf::TermId term) const {
  auto it = direct_.find(term);
  return it == direct_.end() ? 0 : it->second;
}

size_t DeltaIndex::ExtendedChanges(rdf::TermId term) const {
  auto it = extended_.find(term);
  return it == extended_.end() ? 0 : it->second;
}

size_t DeltaIndex::NeighborhoodChanges(rdf::TermId cls) const {
  auto it = neighborhoods_.find(cls);
  if (it == neighborhoods_.end()) return 0;
  size_t total = 0;
  for (rdf::TermId neighbor : it->second) {
    total += ExtendedChanges(neighbor);
  }
  return total;
}

std::vector<rdf::TermId> DeltaIndex::UnionNeighborhood(rdf::TermId cls) const {
  auto it = neighborhoods_.find(cls);
  if (it == neighborhoods_.end()) return {};
  return it->second;
}

}  // namespace evorec::delta
