#include "common/random.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

namespace evorec {

namespace {

uint64_t SplitMix64(uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) {
    s = SplitMix64(sm);
  }
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  if (lo >= hi) return lo;
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  // Rejection sampling to avoid modulo bias.
  const uint64_t limit = UINT64_MAX - UINT64_MAX % span;
  uint64_t draw = Next();
  while (draw >= limit) {
    draw = Next();
  }
  return lo + static_cast<int64_t>(draw % span);
}

double Rng::UniformDouble() {
  // 53 random mantissa bits.
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::UniformDouble(double lo, double hi) {
  return lo + (hi - lo) * UniformDouble();
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return UniformDouble() < p;
}

double Rng::Gaussian() {
  // Box–Muller; avoids log(0) by nudging u1.
  double u1 = UniformDouble();
  if (u1 < 1e-300) u1 = 1e-300;
  const double u2 = UniformDouble();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
}

size_t Rng::Zipf(size_t n, double s) {
  if (n == 0) return 0;
  if (n != zipf_n_ || s != zipf_s_) {
    zipf_n_ = n;
    zipf_s_ = s;
    zipf_cdf_.resize(n);
    double acc = 0.0;
    for (size_t i = 0; i < n; ++i) {
      acc += 1.0 / std::pow(static_cast<double>(i + 1), s);
      zipf_cdf_[i] = acc;
    }
    for (size_t i = 0; i < n; ++i) {
      zipf_cdf_[i] /= acc;
    }
  }
  const double u = UniformDouble();
  auto it = std::lower_bound(zipf_cdf_.begin(), zipf_cdf_.end(), u);
  if (it == zipf_cdf_.end()) return n - 1;
  return static_cast<size_t>(it - zipf_cdf_.begin());
}

std::vector<size_t> Rng::SampleWithoutReplacement(size_t n, size_t k) {
  if (k > n) k = n;
  std::vector<size_t> out;
  out.reserve(k);
  if (k * 3 >= n) {
    // Dense case: shuffle a full index vector and take a prefix.
    std::vector<size_t> all(n);
    for (size_t i = 0; i < n; ++i) all[i] = i;
    Shuffle(all);
    out.assign(all.begin(), all.begin() + static_cast<ptrdiff_t>(k));
    return out;
  }
  // Sparse case: rejection with a hash set.
  std::unordered_set<size_t> seen;
  while (out.size() < k) {
    size_t candidate =
        static_cast<size_t>(UniformInt(0, static_cast<int64_t>(n) - 1));
    if (seen.insert(candidate).second) {
      out.push_back(candidate);
    }
  }
  return out;
}

size_t Rng::WeightedIndex(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) {
    if (w > 0.0) total += w;
  }
  if (total <= 0.0) return weights.size();
  double target = UniformDouble() * total;
  for (size_t i = 0; i < weights.size(); ++i) {
    if (weights[i] <= 0.0) continue;
    target -= weights[i];
    if (target <= 0.0) return i;
  }
  return weights.size() - 1;
}

}  // namespace evorec
