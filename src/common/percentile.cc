#include "common/percentile.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>
#include <sstream>

#include "common/table_printer.h"

namespace evorec {
namespace {

constexpr size_t kSubBuckets = size_t{1} << LatencyRecorder::kSubBits;
// Octaves kSubBits..63 each contribute kSubBuckets buckets on top of
// the kSubBuckets exact unit buckets, covering the full uint64 range.
constexpr size_t kBucketCount =
    kSubBuckets + (64 - LatencyRecorder::kSubBits) * kSubBuckets;

}  // namespace

LatencyRecorder::LatencyRecorder()
    : counts_(kBucketCount),
      min_us_(std::numeric_limits<uint64_t>::max()) {}

size_t LatencyRecorder::BucketOf(uint64_t micros) {
  if (micros < kSubBuckets) return static_cast<size_t>(micros);
  const size_t octave = std::bit_width(micros) - 1;  // >= kSubBits
  const size_t sub =
      static_cast<size_t>(micros >> (octave - kSubBits)) - kSubBuckets;
  return kSubBuckets + (octave - kSubBits) * kSubBuckets + sub;
}

uint64_t LatencyRecorder::BucketUpperBound(size_t bucket) {
  if (bucket < kSubBuckets) return bucket;
  const size_t octave = (bucket - kSubBuckets) / kSubBuckets + kSubBits;
  const size_t sub = (bucket - kSubBuckets) % kSubBuckets;
  const uint64_t width = uint64_t{1} << (octave - kSubBits);
  const uint64_t lower = (kSubBuckets + sub) * width;
  return lower + width - 1;
}

void LatencyRecorder::Record(double micros) { RecordN(micros, 1); }

void LatencyRecorder::RecordN(double micros, uint64_t n) {
  if (n == 0) return;
  if (!(micros > 0.0)) micros = 0.0;
  const uint64_t v = static_cast<uint64_t>(std::llround(micros));
  counts_[BucketOf(v)].fetch_add(n, std::memory_order_relaxed);
  total_.fetch_add(n, std::memory_order_relaxed);
  sum_us_.fetch_add(v * n, std::memory_order_relaxed);
  uint64_t seen = min_us_.load(std::memory_order_relaxed);
  while (v < seen &&
         !min_us_.compare_exchange_weak(seen, v, std::memory_order_relaxed)) {
  }
  seen = max_us_.load(std::memory_order_relaxed);
  while (v > seen &&
         !max_us_.compare_exchange_weak(seen, v, std::memory_order_relaxed)) {
  }
}

void LatencyRecorder::Merge(const LatencyRecorder& other) {
  for (size_t b = 0; b < counts_.size(); ++b) {
    const uint64_t n = other.counts_[b].load(std::memory_order_relaxed);
    if (n != 0) counts_[b].fetch_add(n, std::memory_order_relaxed);
  }
  total_.fetch_add(other.total_.load(std::memory_order_relaxed),
                   std::memory_order_relaxed);
  sum_us_.fetch_add(other.sum_us_.load(std::memory_order_relaxed),
                    std::memory_order_relaxed);
  const uint64_t other_min = other.min_us_.load(std::memory_order_relaxed);
  uint64_t seen = min_us_.load(std::memory_order_relaxed);
  while (other_min < seen && !min_us_.compare_exchange_weak(
                                 seen, other_min, std::memory_order_relaxed)) {
  }
  const uint64_t other_max = other.max_us_.load(std::memory_order_relaxed);
  seen = max_us_.load(std::memory_order_relaxed);
  while (other_max > seen && !max_us_.compare_exchange_weak(
                                 seen, other_max, std::memory_order_relaxed)) {
  }
}

void LatencyRecorder::Reset() {
  for (auto& c : counts_) c.store(0, std::memory_order_relaxed);
  total_.store(0, std::memory_order_relaxed);
  sum_us_.store(0, std::memory_order_relaxed);
  min_us_.store(std::numeric_limits<uint64_t>::max(),
                std::memory_order_relaxed);
  max_us_.store(0, std::memory_order_relaxed);
}

uint64_t LatencyRecorder::count() const {
  return total_.load(std::memory_order_relaxed);
}

double LatencyRecorder::ValueAtPercentile(double p) const {
  const uint64_t total = total_.load(std::memory_order_relaxed);
  if (total == 0) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  const uint64_t rank = std::max<uint64_t>(
      1, static_cast<uint64_t>(std::ceil(p / 100.0 * total)));
  uint64_t seen = 0;
  double value = 0.0;
  for (size_t b = 0; b < counts_.size(); ++b) {
    seen += counts_[b].load(std::memory_order_relaxed);
    if (seen >= rank) {
      value = static_cast<double>(BucketUpperBound(b));
      break;
    }
  }
  const double lo = static_cast<double>(min_us_.load(std::memory_order_relaxed));
  const double hi = static_cast<double>(max_us_.load(std::memory_order_relaxed));
  return std::clamp(value, lo, hi);
}

PercentileSummary LatencyRecorder::Summary() const {
  PercentileSummary s;
  s.count = total_.load(std::memory_order_relaxed);
  if (s.count == 0) return s;
  s.mean_us = static_cast<double>(sum_us_.load(std::memory_order_relaxed)) /
              static_cast<double>(s.count);
  s.min_us = static_cast<double>(min_us_.load(std::memory_order_relaxed));
  s.max_us = static_cast<double>(max_us_.load(std::memory_order_relaxed));
  s.p50_us = ValueAtPercentile(50.0);
  s.p90_us = ValueAtPercentile(90.0);
  s.p95_us = ValueAtPercentile(95.0);
  s.p99_us = ValueAtPercentile(99.0);
  s.p999_us = ValueAtPercentile(99.9);
  return s;
}

void SloReport::Add(const std::string& scenario,
                    const PercentileSummary& observed,
                    const SloThreshold& slo) {
  Row row;
  row.scenario = scenario;
  row.observed = observed;
  row.slo = slo;
  const struct {
    const char* name;
    double observed_us;
    double limit_us;
  } checks[] = {
      {"p50", observed.p50_us, slo.p50_us},
      {"p95", observed.p95_us, slo.p95_us},
      {"p99", observed.p99_us, slo.p99_us},
      {"p999", observed.p999_us, slo.p999_us},
      {"max", observed.max_us, slo.max_us},
  };
  for (const auto& check : checks) {
    if (check.limit_us > 0.0 && check.observed_us > check.limit_us) {
      std::ostringstream msg;
      msg << check.name << " " << check.observed_us << "us > "
          << check.limit_us << "us";
      row.violations.push_back(msg.str());
      row.passed = false;
    }
  }
  rows_.push_back(std::move(row));
}

bool SloReport::AllMet() const {
  return std::all_of(rows_.begin(), rows_.end(),
                     [](const Row& r) { return r.passed; });
}

std::string SloReport::ToTable() const {
  TablePrinter table({"scenario", "count", "p50_ms", "p95_ms", "p99_ms",
                      "p999_ms", "max_ms", "slo_p99_ms", "verdict"});
  for (const Row& row : rows_) {
    table.AddRow({row.scenario, TablePrinter::Cell(row.observed.count),
                  TablePrinter::Cell(row.observed.p50_us / 1000.0, 3),
                  TablePrinter::Cell(row.observed.p95_us / 1000.0, 3),
                  TablePrinter::Cell(row.observed.p99_us / 1000.0, 3),
                  TablePrinter::Cell(row.observed.p999_us / 1000.0, 3),
                  TablePrinter::Cell(row.observed.max_us / 1000.0, 3),
                  row.slo.p99_us > 0.0
                      ? TablePrinter::Cell(row.slo.p99_us / 1000.0, 3)
                      : std::string("-"),
                  row.passed ? "PASS" : "FAIL"});
  }
  return table.ToString();
}

}  // namespace evorec
