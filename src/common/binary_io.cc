#include "common/binary_io.h"

#include <array>

#include "common/env.h"

namespace evorec {

void PutVarint(std::string& out, uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<char>((v & 0x7F) | 0x80));
    v >>= 7;
  }
  out.push_back(static_cast<char>(v));
}

void PutZigZag(std::string& out, int64_t v) {
  PutVarint(out, ZigZagEncode(v));
}

void PutFixed32(std::string& out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

void PutFixed64(std::string& out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

void PutLengthPrefixed(std::string& out, std::string_view bytes) {
  PutVarint(out, bytes.size());
  out.append(bytes);
}

namespace {

std::array<uint32_t, 256> MakeCrcTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc >> 1) ^ ((crc & 1) ? 0xEDB88320U : 0U);
    }
    table[i] = crc;
  }
  return table;
}

}  // namespace

uint32_t Crc32(std::string_view data, uint32_t seed) {
  static const std::array<uint32_t, 256> table = MakeCrcTable();
  uint32_t crc = seed ^ 0xFFFFFFFFU;
  for (char c : data) {
    crc = table[(crc ^ static_cast<unsigned char>(c)) & 0xFF] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFU;
}

bool ByteReader::ReadVarint(uint64_t* v) {
  uint64_t value = 0;
  int shift = 0;
  size_t pos = offset_;
  while (pos < data_.size() && shift < 64) {
    const uint8_t byte = static_cast<uint8_t>(data_[pos]);
    ++pos;
    value |= static_cast<uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) {
      // Reject non-canonical overlong encodings that would overflow
      // past 64 bits (the 10th byte may only contribute one bit).
      if (shift == 63 && byte > 1) return false;
      offset_ = pos;
      *v = value;
      return true;
    }
    shift += 7;
  }
  return false;  // ran off the end or >10 continuation bytes
}

bool ByteReader::ReadZigZag(int64_t* v) {
  uint64_t raw = 0;
  if (!ReadVarint(&raw)) return false;
  *v = ZigZagDecode(raw);
  return true;
}

bool ByteReader::ReadFixed32(uint32_t* v) {
  if (remaining() < 4) return false;
  uint32_t value = 0;
  for (int i = 0; i < 4; ++i) {
    value |= static_cast<uint32_t>(
                 static_cast<unsigned char>(data_[offset_ + i]))
             << (8 * i);
  }
  offset_ += 4;
  *v = value;
  return true;
}

bool ByteReader::ReadFixed64(uint64_t* v) {
  if (remaining() < 8) return false;
  uint64_t value = 0;
  for (int i = 0; i < 8; ++i) {
    value |= static_cast<uint64_t>(
                 static_cast<unsigned char>(data_[offset_ + i]))
             << (8 * i);
  }
  offset_ += 8;
  *v = value;
  return true;
}

bool ByteReader::ReadBytes(size_t n, std::string_view* out) {
  if (remaining() < n) return false;
  *out = data_.substr(offset_, n);
  offset_ += n;
  return true;
}

bool ByteReader::ReadLengthPrefixed(std::string_view* out) {
  uint64_t len = 0;
  if (!ReadVarint(&len)) return false;
  if (len > remaining()) return false;
  return ReadBytes(static_cast<size_t>(len), out);
}

bool ByteReader::Skip(size_t n) {
  if (remaining() < n) return false;
  offset_ += n;
  return true;
}

Result<std::string> ReadFileToString(const std::string& path, Env* env) {
  if (env == nullptr) env = Env::Default();
  return env->ReadFileToString(path);
}

Status WriteFileAtomic(const std::string& path, std::string_view data,
                       bool sync, Env* env) {
  if (env == nullptr) env = Env::Default();
  const std::string tmp = path + ".tmp";
  auto file = env->NewWritableFile(tmp);
  if (!file.ok()) return file.status();
  Status written = (*file)->Append(data);
  if (written.ok() && sync) written = (*file)->Sync();
  Status closed = (*file)->Close();
  if (written.ok()) written = closed;
  if (!written.ok()) {
    // A half-written temp file is useless and would accumulate across
    // failed saves; remove it so the directory stays exactly as it
    // was (the target keeps its previous content untouched).
    (void)env->RemoveFile(tmp);
    return written;
  }
  Status renamed = env->RenameFile(tmp, path);
  if (!renamed.ok()) {
    (void)env->RemoveFile(tmp);
    return renamed;
  }
  if (sync) {
    // The rename itself is only durable once the containing
    // directory's entry is; without this a crash can leave the
    // directory pointing at neither the old nor the new file.
    EVOREC_RETURN_IF_ERROR(env->SyncDir(ParentDirOf(path)));
  }
  return OkStatus();
}

}  // namespace evorec
