#ifndef EVOREC_COMMON_HASH_H_
#define EVOREC_COMMON_HASH_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string_view>

namespace evorec {

/// 64-bit FNV-1a over an arbitrary byte string.
inline uint64_t Fnv1a64(std::string_view data) {
  uint64_t hash = 0xCBF29CE484222325ULL;
  for (char c : data) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001B3ULL;
  }
  return hash;
}

/// Combines `value`'s hash into `seed` (boost-style mixing).
template <typename T>
void HashCombine(size_t& seed, const T& value) {
  seed ^= std::hash<T>{}(value) + 0x9E3779B97F4A7C15ULL + (seed << 6) +
          (seed >> 2);
}

}  // namespace evorec

#endif  // EVOREC_COMMON_HASH_H_
