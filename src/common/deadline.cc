#include "common/deadline.h"

#include <string>

namespace evorec {

Status Deadline::Check(std::string_view stage) const {
  if (env_ == nullptr) return OkStatus();
  const uint64_t now = env_->NowMicros();
  if (now < deadline_us_) return OkStatus();
  std::string message("deadline exceeded at stage '");
  message += stage;
  message += "' (";
  message += std::to_string(now - deadline_us_);
  message += "us past deadline)";
  return DeadlineExceededError(std::move(message));
}

}  // namespace evorec
