#include "common/env.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>
#include <utility>

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

namespace evorec {

namespace {

/// Maps an errno to the library's error space. Device-level conditions
/// the caller may reasonably retry map to kUnavailable; everything
/// else is permanent.
Status ErrnoStatus(const std::string& context, int err) {
  const std::string message = context + ": " + std::strerror(err);
  switch (err) {
    case EIO:
    case ENOSPC:
    case EAGAIN:
    case EINTR:
    case EBUSY:
#ifdef EDQUOT
    case EDQUOT:
#endif
      return UnavailableError(message);
    case ENOENT:
      return NotFoundError(message);
    default:
      return InternalError(message);
  }
}

class PosixWritableFile : public WritableFile {
 public:
  PosixWritableFile(std::string path, int fd)
      : path_(std::move(path)), fd_(fd) {}
  ~PosixWritableFile() override { (void)Close(); }

  Status Append(std::string_view data) override {
    if (fd_ < 0) {
      return FailedPreconditionError("append to closed file '" + path_ + "'");
    }
    const char* p = data.data();
    size_t left = data.size();
    while (left > 0) {
      const ssize_t n = ::write(fd_, p, left);
      if (n < 0) {
        if (errno == EINTR) continue;
        return ErrnoStatus("write error on '" + path_ + "'", errno);
      }
      p += n;
      left -= static_cast<size_t>(n);
    }
    return OkStatus();
  }

  Status Sync() override {
    if (fd_ < 0) {
      return FailedPreconditionError("sync of closed file '" + path_ + "'");
    }
    if (::fsync(fd_) != 0) {
      return ErrnoStatus("fsync error on '" + path_ + "'", errno);
    }
    return OkStatus();
  }

  Status Close() override {
    if (fd_ < 0) return OkStatus();
    const int fd = fd_;
    fd_ = -1;
    if (::close(fd) != 0) {
      return ErrnoStatus("close error on '" + path_ + "'", errno);
    }
    return OkStatus();
  }

 private:
  std::string path_;
  int fd_ = -1;
};

class PosixReadableFile : public ReadableFile {
 public:
  PosixReadableFile(std::string path, int fd)
      : path_(std::move(path)), fd_(fd) {}
  ~PosixReadableFile() override {
    if (fd_ >= 0) ::close(fd_);
  }

  Result<size_t> Read(size_t n, char* scratch) override {
    while (true) {
      const ssize_t got = ::read(fd_, scratch, n);
      if (got < 0) {
        if (errno == EINTR) continue;
        return ErrnoStatus("read error on '" + path_ + "'", errno);
      }
      return static_cast<size_t>(got);
    }
  }

 private:
  std::string path_;
  int fd_ = -1;
};

class PosixEnv : public Env {
 public:
  Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path, bool append) override {
    const int flags = O_WRONLY | O_CREAT | (append ? O_APPEND : O_TRUNC);
    const int fd = ::open(path.c_str(), flags, 0644);
    if (fd < 0) {
      return ErrnoStatus("cannot open '" + path + "' for writing", errno);
    }
    return std::unique_ptr<WritableFile>(
        std::make_unique<PosixWritableFile>(path, fd));
  }

  Result<std::unique_ptr<ReadableFile>> NewReadableFile(
      const std::string& path) override {
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) {
      return ErrnoStatus("cannot open '" + path + "'", errno);
    }
    return std::unique_ptr<ReadableFile>(
        std::make_unique<PosixReadableFile>(path, fd));
  }

  bool FileExists(const std::string& path) override {
    return ::access(path.c_str(), F_OK) == 0;
  }

  Result<uint64_t> FileSize(const std::string& path) override {
    struct stat st {};
    if (::stat(path.c_str(), &st) != 0) {
      return ErrnoStatus("cannot stat '" + path + "'", errno);
    }
    return static_cast<uint64_t>(st.st_size);
  }

  Status RenameFile(const std::string& from, const std::string& to) override {
    if (::rename(from.c_str(), to.c_str()) != 0) {
      return ErrnoStatus("cannot rename '" + from + "' to '" + to + "'",
                         errno);
    }
    return OkStatus();
  }

  Status RemoveFile(const std::string& path) override {
    if (::unlink(path.c_str()) != 0) {
      return ErrnoStatus("cannot remove '" + path + "'", errno);
    }
    return OkStatus();
  }

  Status TruncateFile(const std::string& path, uint64_t size) override {
    if (::truncate(path.c_str(), static_cast<off_t>(size)) != 0) {
      return ErrnoStatus("cannot truncate '" + path + "'", errno);
    }
    return OkStatus();
  }

  Status CreateDir(const std::string& path) override {
    if (::mkdir(path.c_str(), 0755) != 0 && errno != EEXIST) {
      return ErrnoStatus("cannot create directory '" + path + "'", errno);
    }
    return OkStatus();
  }

  Result<std::vector<std::string>> ListDir(const std::string& path) override {
    DIR* dir = ::opendir(path.c_str());
    if (dir == nullptr) {
      return ErrnoStatus("cannot open directory '" + path + "'", errno);
    }
    std::vector<std::string> names;
    while (struct dirent* entry = ::readdir(dir)) {
      const std::string name = entry->d_name;
      if (name == "." || name == "..") continue;
      names.push_back(name);
    }
    ::closedir(dir);
    std::sort(names.begin(), names.end());
    return names;
  }

  Status SyncDir(const std::string& path) override {
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) {
      return ErrnoStatus("cannot open directory '" + path + "' for fsync",
                         errno);
    }
    const bool synced = ::fsync(fd) == 0;
    const int err = errno;
    ::close(fd);
    if (!synced) {
      return ErrnoStatus("fsync of directory '" + path + "' failed", err);
    }
    return OkStatus();
  }

  void SleepForMicroseconds(uint64_t micros) override {
    std::this_thread::sleep_for(std::chrono::microseconds(micros));
  }

  uint64_t NowMicros() override {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
  }
};

}  // namespace

Env* Env::Default() {
  static PosixEnv* env = new PosixEnv;  // never destroyed (used at exit)
  return env;
}

Result<std::string> Env::ReadFileToString(const std::string& path) {
  auto file = NewReadableFile(path);
  if (!file.ok()) return file.status();
  std::string data;
  char buffer[1 << 16];
  while (true) {
    auto n = (*file)->Read(sizeof(buffer), buffer);
    if (!n.ok()) return n.status();
    if (*n == 0) break;
    data.append(buffer, *n);
  }
  return data;
}

std::string ParentDirOf(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? std::string(".")
                                    : path.substr(0, slash);
}

}  // namespace evorec
