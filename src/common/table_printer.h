#ifndef EVOREC_COMMON_TABLE_PRINTER_H_
#define EVOREC_COMMON_TABLE_PRINTER_H_

#include <ostream>
#include <string>
#include <vector>

namespace evorec {

/// Fixed-width console table used by the benchmark harness to print the
/// rows each experiment reports (the "figure data" of EXPERIMENTS.md).
/// Columns auto-size to their widest cell; numeric cells are
/// right-aligned.
class TablePrinter {
 public:
  /// Creates a table with the given column headers.
  explicit TablePrinter(std::vector<std::string> headers);

  /// Appends one row; missing cells render empty, extra cells are kept
  /// and widen the table.
  void AddRow(std::vector<std::string> cells);

  /// Convenience: formats doubles with `precision` digits.
  static std::string Cell(double value, int precision = 3);
  static std::string Cell(size_t value);
  static std::string Cell(int64_t value);

  /// Renders the table (with a rule under the header) to `os`.
  void Print(std::ostream& os) const;

  /// Renders to a string.
  std::string ToString() const;

  size_t row_count() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace evorec

#endif  // EVOREC_COMMON_TABLE_PRINTER_H_
