#include "common/strings.h"

#include <cctype>
#include <cstdio>

namespace evorec {

std::vector<std::string> StrSplit(std::string_view input, char delimiter) {
  std::vector<std::string> pieces;
  size_t start = 0;
  while (true) {
    size_t pos = input.find(delimiter, start);
    if (pos == std::string_view::npos) {
      pieces.emplace_back(input.substr(start));
      break;
    }
    pieces.emplace_back(input.substr(start, pos - start));
    start = pos + 1;
  }
  return pieces;
}

std::string StrJoin(const std::vector<std::string>& pieces,
                    std::string_view separator) {
  std::string out;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) out += separator;
    out += pieces[i];
  }
  return out;
}

std::string_view StripWhitespace(std::string_view input) {
  size_t begin = 0;
  size_t end = input.size();
  while (begin < end &&
         std::isspace(static_cast<unsigned char>(input[begin]))) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(input[end - 1]))) {
    --end;
  }
  return input.substr(begin, end - begin);
}

bool StartsWith(std::string_view input, std::string_view prefix) {
  return input.size() >= prefix.size() &&
         input.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view input, std::string_view suffix) {
  return input.size() >= suffix.size() &&
         input.substr(input.size() - suffix.size()) == suffix;
}

std::string FormatDouble(double value, int precision) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", precision, value);
  return buffer;
}

std::string HumanBytes(size_t bytes) {
  static constexpr const char* kUnits[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  double value = static_cast<double>(bytes);
  size_t unit = 0;
  while (value >= 1024.0 && unit + 1 < sizeof(kUnits) / sizeof(kUnits[0])) {
    value /= 1024.0;
    ++unit;
  }
  char buffer[64];
  if (unit == 0) {
    std::snprintf(buffer, sizeof(buffer), "%zu B", bytes);
  } else {
    std::snprintf(buffer, sizeof(buffer), "%.1f %s", value, kUnits[unit]);
  }
  return buffer;
}

std::string EscapeNTriples(std::string_view input) {
  std::string out;
  out.reserve(input.size());
  for (char c : input) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::string UnescapeNTriples(std::string_view input) {
  std::string out;
  out.reserve(input.size());
  for (size_t i = 0; i < input.size(); ++i) {
    if (input[i] != '\\' || i + 1 >= input.size()) {
      out += input[i];
      continue;
    }
    ++i;
    switch (input[i]) {
      case '\\':
        out += '\\';
        break;
      case '"':
        out += '"';
        break;
      case 'n':
        out += '\n';
        break;
      case 'r':
        out += '\r';
        break;
      case 't':
        out += '\t';
        break;
      default:
        out += '\\';
        out += input[i];
    }
  }
  return out;
}

}  // namespace evorec
