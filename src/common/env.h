#ifndef EVOREC_COMMON_ENV_H_
#define EVOREC_COMMON_ENV_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace evorec {

/// Pluggable environment boundary for all file I/O in the storage and
/// version layers (the LevelDB Env idiom). Every byte the library
/// persists — snapshots, checkpoints, the commit log — flows through
/// one of these interfaces, so a test environment can script failures
/// (storage::FaultInjectionEnv injects EIO/ENOSPC, short writes, lying
/// fsyncs, rename failures and power-loss crash points) while
/// production runs on the default PosixEnv. scripts/check.sh enforces
/// the boundary: no raw fopen/fwrite/fsync may appear outside
/// common/env.cc.
///
/// Error contract: transient device failures surface as kUnavailable
/// (retryable — see Status IsTransient); everything else is permanent.

/// Sequential append handle to one file. Not thread-safe.
class WritableFile {
 public:
  virtual ~WritableFile() = default;

  /// Appends `data` at the end of the file (to the OS, not necessarily
  /// to stable storage). A failed append may leave a prefix of `data`
  /// in the file — callers that frame records must repair the tail
  /// before appending again (storage::CommitLog does).
  virtual Status Append(std::string_view data) = 0;

  /// Forces everything appended so far to stable storage. An OK return
  /// is the durability acknowledgement the WAL layer builds on.
  virtual Status Sync() = 0;

  /// Closes the handle. Idempotent; the destructor closes too.
  virtual Status Close() = 0;
};

/// Sequential read handle to one file. Not thread-safe.
class ReadableFile {
 public:
  virtual ~ReadableFile() = default;

  /// Reads up to `n` bytes into `scratch`, returning the count read; 0
  /// means end of file.
  virtual Result<size_t> Read(size_t n, char* scratch) = 0;
};

/// The environment: file creation, metadata operations, directory
/// handling, and the clock the retry/backoff policies sleep on. All
/// methods are thread-safe.
class Env {
 public:
  virtual ~Env() = default;

  /// The process-wide default environment (PosixEnv). Never null; not
  /// owned by the caller.
  static Env* Default();

  /// Opens `path` for writing: truncated to empty, or positioned at
  /// the end with `append`. Creates the file if missing.
  virtual Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path, bool append = false) = 0;

  /// Opens `path` for sequential reading.
  virtual Result<std::unique_ptr<ReadableFile>> NewReadableFile(
      const std::string& path) = 0;

  virtual bool FileExists(const std::string& path) = 0;
  virtual Result<uint64_t> FileSize(const std::string& path) = 0;

  /// Atomically replaces `to` with `from` (POSIX rename semantics).
  virtual Status RenameFile(const std::string& from,
                            const std::string& to) = 0;
  virtual Status RemoveFile(const std::string& path) = 0;

  /// Truncates (or extends with zeros) `path` to exactly `size` bytes.
  virtual Status TruncateFile(const std::string& path, uint64_t size) = 0;

  /// Creates `path` as a directory; OK if it already exists.
  virtual Status CreateDir(const std::string& path) = 0;

  /// Names (not paths) of the entries of directory `path`, sorted.
  virtual Result<std::vector<std::string>> ListDir(
      const std::string& path) = 0;

  /// fsyncs the directory entry metadata of `path` — the second half
  /// of POSIX rename durability (see WriteFileAtomic).
  virtual Status SyncDir(const std::string& path) = 0;

  /// The clock behind retry backoff. Test environments record the
  /// request instead of sleeping, which keeps backoff tests
  /// deterministic and instant.
  virtual void SleepForMicroseconds(uint64_t micros) = 0;

  /// A monotonic microsecond clock — the time source for deadlines,
  /// admission-control token buckets, circuit-breaker cool-downs and
  /// the service's latency recorders. Only differences are meaningful
  /// (the epoch is arbitrary). Test environments script it
  /// (storage::FaultInjectionEnv advances it on SleepForMicroseconds
  /// and via AdvanceClockMicros), so deadline and breaker tests run
  /// instantly with no real sleeps.
  virtual uint64_t NowMicros() = 0;

  /// Reads the entire file at `path` into a string (convenience over
  /// NewReadableFile).
  Result<std::string> ReadFileToString(const std::string& path);
};

/// Directory part of `path` ("." when there is no slash), used for
/// directory fsyncs.
std::string ParentDirOf(const std::string& path);

}  // namespace evorec

#endif  // EVOREC_COMMON_ENV_H_
