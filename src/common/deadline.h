#ifndef EVOREC_COMMON_DEADLINE_H_
#define EVOREC_COMMON_DEADLINE_H_

#include <cstdint>
#include <string_view>

#include "common/env.h"
#include "common/status.h"

namespace evorec {

/// A point on an Env's monotonic clock by which a request must be
/// answered. The serving pipeline checks it at its expensive stage
/// boundaries (admission, context build, per-user scoring) and fails
/// the request with kDeadlineExceeded early instead of finishing work
/// nobody is waiting for — a late recommendation is effectively a
/// wrong one.
///
/// A default-constructed Deadline is infinite (never expires) and
/// carries no clock, so existing call sites pay nothing. Deadlines are
/// value types: copy them freely into worker lambdas. The Env behind a
/// finite deadline must outlive every copy.
class Deadline {
 public:
  /// Infinite: never expires.
  Deadline() = default;

  /// The deadline `budget_us` from now on `env`'s clock.
  static Deadline After(Env* env, uint64_t budget_us) {
    return Deadline(env, env->NowMicros() + budget_us);
  }

  /// The deadline at absolute instant `deadline_us` of `env`'s clock.
  static Deadline AtMicros(Env* env, uint64_t deadline_us) {
    return Deadline(env, deadline_us);
  }

  static Deadline Infinite() { return Deadline(); }

  bool is_infinite() const { return env_ == nullptr; }

  /// The absolute expiry instant (meaningless when infinite).
  uint64_t deadline_us() const { return deadline_us_; }

  bool expired() const {
    return env_ != nullptr && env_->NowMicros() >= deadline_us_;
  }

  /// Microseconds left before expiry; 0 when expired, UINT64_MAX when
  /// infinite.
  uint64_t remaining_us() const {
    if (env_ == nullptr) return ~uint64_t{0};
    const uint64_t now = env_->NowMicros();
    return now >= deadline_us_ ? 0 : deadline_us_ - now;
  }

  /// OK while time remains; kDeadlineExceeded naming `stage` once the
  /// deadline has passed — the per-boundary guard of the serving
  /// pipeline.
  Status Check(std::string_view stage) const;

 private:
  Deadline(Env* env, uint64_t deadline_us)
      : env_(env), deadline_us_(deadline_us) {}

  Env* env_ = nullptr;
  uint64_t deadline_us_ = ~uint64_t{0};
};

/// Everything a request carries about its own cost envelope, threaded
/// through the serving entry points. Default-constructed, it is the
/// pre-overload-control contract: infinite patience, no queue history.
struct RequestBudget {
  /// "Enqueue time unknown" — the admission queue-time cap does not
  /// apply.
  static constexpr uint64_t kNoEnqueueTime = ~uint64_t{0};

  Deadline deadline;
  /// When the request entered the process-level queue, on the same
  /// Env clock the deadline runs on. The admission controller sheds
  /// requests that already rotted in queue longer than its cap —
  /// serving them would only make the requests behind them late too.
  uint64_t enqueue_us = kNoEnqueueTime;
};

}  // namespace evorec

#endif  // EVOREC_COMMON_DEADLINE_H_
