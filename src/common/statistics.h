#ifndef EVOREC_COMMON_STATISTICS_H_
#define EVOREC_COMMON_STATISTICS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace evorec {

/// Arithmetic mean; 0 for empty input.
double Mean(const std::vector<double>& values);

/// Sample standard deviation (n-1 denominator); 0 for fewer than two
/// values.
double StdDev(const std::vector<double>& values);

/// Minimum; 0 for empty input.
double Min(const std::vector<double>& values);

/// Maximum; 0 for empty input.
double Max(const std::vector<double>& values);

/// Linear-interpolated percentile, p in [0,100]; 0 for empty input.
double Percentile(std::vector<double> values, double p);

/// Gini coefficient of a non-negative distribution, in [0,1]; 0 denotes
/// perfect equality. Used as the inequality diagnostic for group
/// fairness experiments (E7).
double Gini(std::vector<double> values);

/// Jaccard similarity |a ∩ b| / |a ∪ b| of two id sets (unsorted input
/// allowed); 1 when both are empty.
double JaccardSimilarity(std::vector<uint32_t> a, std::vector<uint32_t> b);

/// Kendall tau-a rank correlation between two equally-sized score
/// vectors indexed by the same items, in [-1,1]. Used to compare
/// rankings produced by different evolution measures (E4).
double KendallTau(const std::vector<double>& a, const std::vector<double>& b);

/// Spearman rank correlation (average ranks for ties), in [-1,1].
double SpearmanRho(const std::vector<double>& a, const std::vector<double>& b);

/// Normalised discounted cumulative gain at cutoff k. `relevance[i]` is
/// the graded relevance of the item ranked at position i (0-based).
/// `ideal` is the relevance vector sorted descending.
double NdcgAtK(const std::vector<double>& relevance, size_t k);

}  // namespace evorec

#endif  // EVOREC_COMMON_STATISTICS_H_
