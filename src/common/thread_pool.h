#ifndef EVOREC_COMMON_THREAD_POOL_H_
#define EVOREC_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace evorec {

/// A fixed-size worker pool driving the engine layer: parallel measure
/// evaluation inside one evolution context and parallel per-user runs
/// of a batched serving request. Tasks are plain void() callables;
/// ordering between tasks is unspecified.
///
/// The pool is usable from multiple client threads concurrently.
/// ParallelFor is re-entrant: the calling thread participates in the
/// loop, so nested calls (or calls from a saturated pool) degrade to
/// inline execution instead of deadlocking.
class ThreadPool {
 public:
  /// Spawns `threads` workers; 0 means DefaultThreadCount().
  explicit ThreadPool(size_t threads = 0);

  /// Drains outstanding tasks, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads.
  size_t size() const { return workers_.size(); }

  /// Enqueues `task` for asynchronous execution.
  void Submit(std::function<void()> task);

  /// Runs body(0) … body(n-1), distributing indexes over the workers
  /// and the calling thread, and returns when all n calls finished.
  /// `body` must be safe to invoke concurrently for distinct indexes.
  void ParallelFor(size_t n, const std::function<void(size_t)>& body);

  /// max(1, std::thread::hardware_concurrency()).
  static size_t DefaultThreadCount();

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable work_available_;
  std::deque<std::function<void()>> queue_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace evorec

#endif  // EVOREC_COMMON_THREAD_POOL_H_
