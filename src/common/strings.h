#ifndef EVOREC_COMMON_STRINGS_H_
#define EVOREC_COMMON_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

namespace evorec {

/// Splits `input` on `delimiter`, keeping empty pieces.
std::vector<std::string> StrSplit(std::string_view input, char delimiter);

/// Joins `pieces` with `separator`.
std::string StrJoin(const std::vector<std::string>& pieces,
                    std::string_view separator);

/// Strips ASCII whitespace from both ends.
std::string_view StripWhitespace(std::string_view input);

/// True iff `input` begins with `prefix`.
bool StartsWith(std::string_view input, std::string_view prefix);

/// True iff `input` ends with `suffix`.
bool EndsWith(std::string_view input, std::string_view suffix);

/// Formats a double with `precision` fractional digits (fixed notation).
std::string FormatDouble(double value, int precision = 3);

/// Renders a byte count as a human-readable string ("1.5 MiB").
std::string HumanBytes(size_t bytes);

/// Escapes a string for embedding in an N-Triples literal: backslash,
/// quote, newline, carriage return and tab are escaped.
std::string EscapeNTriples(std::string_view input);

/// Reverses EscapeNTriples. Unknown escapes are passed through verbatim.
std::string UnescapeNTriples(std::string_view input);

}  // namespace evorec

#endif  // EVOREC_COMMON_STRINGS_H_
