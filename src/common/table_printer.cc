#include "common/table_printer.h"

#include <algorithm>
#include <cctype>
#include <sstream>

#include "common/strings.h"

namespace evorec {

namespace {

bool LooksNumeric(const std::string& cell) {
  if (cell.empty()) return false;
  size_t digits = 0;
  for (char c : cell) {
    if (std::isdigit(static_cast<unsigned char>(c))) {
      ++digits;
    } else if (c != '.' && c != '-' && c != '+' && c != 'e' && c != '%' &&
               c != 'x') {
      return false;
    }
  }
  return digits > 0;
}

}  // namespace

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::Cell(double value, int precision) {
  return FormatDouble(value, precision);
}

std::string TablePrinter::Cell(size_t value) { return std::to_string(value); }

std::string TablePrinter::Cell(int64_t value) { return std::to_string(value); }

void TablePrinter::Print(std::ostream& os) const {
  size_t columns = headers_.size();
  for (const auto& row : rows_) {
    columns = std::max(columns, row.size());
  }
  std::vector<size_t> widths(columns, 0);
  for (size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < columns; ++c) {
      const std::string cell = c < row.size() ? row[c] : "";
      os << "  ";
      if (LooksNumeric(cell)) {
        os << std::string(widths[c] - cell.size(), ' ') << cell;
      } else {
        os << cell << std::string(widths[c] - cell.size(), ' ');
      }
    }
    os << "\n";
  };

  print_row(headers_);
  size_t total = 0;
  for (size_t w : widths) total += w + 2;
  os << std::string(total, '-') << "\n";
  for (const auto& row : rows_) {
    print_row(row);
  }
}

std::string TablePrinter::ToString() const {
  std::ostringstream os;
  Print(os);
  return os.str();
}

}  // namespace evorec
