#ifndef EVOREC_COMMON_BINARY_IO_H_
#define EVOREC_COMMON_BINARY_IO_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/result.h"
#include "common/status.h"

namespace evorec {

/// Shared primitives of the storage layer's on-disk formats (see
/// docs/STORAGE.md): LEB128 varints, zig-zag signed mapping, CRC-32
/// checksums, a bounds-checked byte reader, and whole-file I/O with
/// optional durability. All fixed-width integers are little-endian.

// ---- Encoding (append to a std::string buffer) ----

/// Appends `v` as an unsigned LEB128 varint (1-10 bytes).
void PutVarint(std::string& out, uint64_t v);

/// Maps a signed value onto the unsigned varint space so that small
/// magnitudes of either sign stay short: 0→0, -1→1, 1→2, -2→3, …
inline uint64_t ZigZagEncode(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^
         static_cast<uint64_t>(v >> 63);
}
inline int64_t ZigZagDecode(uint64_t v) {
  return static_cast<int64_t>(v >> 1) ^ -static_cast<int64_t>(v & 1);
}

/// Appends `v` zig-zag-mapped as a varint.
void PutZigZag(std::string& out, int64_t v);

/// Appends `v` as 4/8 little-endian bytes.
void PutFixed32(std::string& out, uint32_t v);
void PutFixed64(std::string& out, uint64_t v);

/// Appends varint(size) followed by the raw bytes.
void PutLengthPrefixed(std::string& out, std::string_view bytes);

// ---- Checksums ----

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320, init and
/// final-xor 0xFFFFFFFF — the zlib convention; Crc32("123456789") ==
/// 0xCBF43926). `seed` chains incremental updates: pass a previous
/// return value to extend the checksum over concatenated buffers.
uint32_t Crc32(std::string_view data, uint32_t seed = 0);

// ---- Decoding ----

/// Bounds-checked sequential reader over a byte buffer. Every Read*
/// returns false instead of reading past the end (or on a malformed
/// varint), so decoders degrade to clean Status errors — never UB —
/// on truncated or corrupt input. The buffer must outlive the reader
/// and any string_views it hands out.
class ByteReader {
 public:
  explicit ByteReader(std::string_view data) : data_(data) {}

  bool ReadVarint(uint64_t* v);
  bool ReadZigZag(int64_t* v);
  bool ReadFixed32(uint32_t* v);
  bool ReadFixed64(uint64_t* v);
  /// Points `out` at the next `n` bytes without copying.
  bool ReadBytes(size_t n, std::string_view* out);
  /// varint length + that many raw bytes.
  bool ReadLengthPrefixed(std::string_view* out);
  bool Skip(size_t n);

  size_t offset() const { return offset_; }
  size_t remaining() const { return data_.size() - offset_; }
  bool empty() const { return offset_ == data_.size(); }

 private:
  std::string_view data_;
  size_t offset_ = 0;
};

// ---- Whole-file I/O ----
//
// Both helpers run on a pluggable Env (common/env.h); pass nullptr
// for the process default. Storage-layer callers thread their
// configured environment through so fault injection covers every
// byte they persist.

class Env;

/// Reads the entire file at `path` into a string.
Result<std::string> ReadFileToString(const std::string& path,
                                     Env* env = nullptr);

/// Writes `data` to `path` atomically (temp file + rename), so
/// readers never observe a half-written file. With `sync`, the data
/// is fsync'd before the rename and the containing directory after
/// it (POSIX rename durability needs both) — the path either keeps
/// its old content or holds the new bytes completely, even across a
/// crash. On any failure the orphaned `path + ".tmp"` is removed, so
/// a failed write never leaves stray temp files next to the target.
Status WriteFileAtomic(const std::string& path, std::string_view data,
                       bool sync = false, Env* env = nullptr);

}  // namespace evorec

#endif  // EVOREC_COMMON_BINARY_IO_H_
