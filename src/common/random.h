#ifndef EVOREC_COMMON_RANDOM_H_
#define EVOREC_COMMON_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace evorec {

/// Deterministic, fast PRNG (xoshiro256**) seeded via SplitMix64.
/// All stochastic components of the library (workload generators,
/// sampled betweenness, tie-breaking) draw from this class so that
/// every experiment is reproducible from a single seed.
class Rng {
 public:
  /// Seeds the generator; identical seeds yield identical streams.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Returns the next raw 64-bit draw.
  uint64_t Next();

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double UniformDouble();

  /// Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi);

  /// Bernoulli draw with success probability p (clamped to [0,1]).
  bool Bernoulli(double p);

  /// Standard normal draw (Box–Muller).
  double Gaussian();

  /// Zipf-distributed rank in [0, n) with exponent `s` (>0). Rank 0 is
  /// the most probable. Uses a cached CDF when called repeatedly with
  /// the same (n, s); cost is O(log n) per draw after O(n) setup.
  size_t Zipf(size_t n, double s);

  /// Samples k distinct indices from [0, n) (k <= n), in random order.
  std::vector<size_t> SampleWithoutReplacement(size_t n, size_t k);

  /// Fisher–Yates shuffle of `values`.
  template <typename T>
  void Shuffle(std::vector<T>& values) {
    if (values.empty()) return;
    for (size_t i = values.size() - 1; i > 0; --i) {
      size_t j = static_cast<size_t>(UniformInt(0, static_cast<int64_t>(i)));
      using std::swap;
      swap(values[i], values[j]);
    }
  }

  /// Draws an index from an unnormalised non-negative weight vector.
  /// Returns weights.size() if all weights are zero.
  size_t WeightedIndex(const std::vector<double>& weights);

 private:
  uint64_t state_[4];
  // Cached Zipf CDF for the last (n, s) pair.
  size_t zipf_n_ = 0;
  double zipf_s_ = 0.0;
  std::vector<double> zipf_cdf_;
};

}  // namespace evorec

#endif  // EVOREC_COMMON_RANDOM_H_
