#ifndef EVOREC_COMMON_STATUS_H_
#define EVOREC_COMMON_STATUS_H_

#include <string>
#include <string_view>
#include <utility>

namespace evorec {

/// Canonical error space for the library. evorec is built without C++
/// exceptions; every fallible operation reports through Status or
/// Result<T>.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kFailedPrecondition,
  kPermissionDenied,
  kUnimplemented,
  kInternal,
  /// A transient, retryable failure (e.g. an I/O error the device may
  /// recover from). The storage layer's retry policies only ever retry
  /// this code; corruption-class errors (kInvalidArgument,
  /// kFailedPrecondition, kInternal) surface immediately.
  kUnavailable,
  /// The request's Deadline expired before the work completed. The
  /// serving pipeline checks at its expensive stage boundaries and
  /// returns this early instead of burning a shard's worth of work on
  /// an answer nobody is waiting for (common/deadline.h).
  kDeadlineExceeded,
  /// Load was shed: the admission controller refused the request
  /// (in-flight limit, rate limit, or queue-time cap) to protect the
  /// latency of the requests it did admit (engine/admission.h). The
  /// caller may retry after backing off.
  kResourceExhausted,
};

/// Returns a stable human-readable name for `code` (e.g. "NOT_FOUND").
std::string_view StatusCodeName(StatusCode code);

/// Value type carrying success or an error code plus message. Cheap to
/// copy in the OK case (empty message).
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with `code` and a diagnostic `message`.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  /// True iff the status represents success.
  bool ok() const { return code_ == StatusCode::kOk; }

  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Renders "CODE: message" (or "OK").
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// Factory helpers mirroring absl::*Error.
Status OkStatus();
Status InvalidArgumentError(std::string message);
Status NotFoundError(std::string message);
Status AlreadyExistsError(std::string message);
Status OutOfRangeError(std::string message);
Status FailedPreconditionError(std::string message);
Status PermissionDeniedError(std::string message);
Status UnimplementedError(std::string message);
Status InternalError(std::string message);
Status UnavailableError(std::string message);
Status DeadlineExceededError(std::string message);
Status ResourceExhaustedError(std::string message);

/// True iff `status` is a transient failure worth retrying
/// (kUnavailable). Corruption- and logic-class errors are permanent.
inline bool IsTransient(const Status& status) {
  return status.code() == StatusCode::kUnavailable;
}

}  // namespace evorec

/// Propagates a non-OK Status to the caller.
#define EVOREC_RETURN_IF_ERROR(expr)                \
  do {                                              \
    ::evorec::Status evorec_status_tmp_ = (expr);   \
    if (!evorec_status_tmp_.ok()) {                 \
      return evorec_status_tmp_;                    \
    }                                               \
  } while (false)

#endif  // EVOREC_COMMON_STATUS_H_
