#ifndef EVOREC_COMMON_PERCENTILE_H_
#define EVOREC_COMMON_PERCENTILE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace evorec {

/// Point-in-time percentile snapshot of a LatencyRecorder. All values
/// are microseconds. Percentile values carry the recorder's bounded
/// relative error (kMaxRelativeError); min/max/count/mean are exact.
struct PercentileSummary {
  uint64_t count = 0;
  double mean_us = 0.0;
  double min_us = 0.0;
  double p50_us = 0.0;
  double p90_us = 0.0;
  double p95_us = 0.0;
  double p99_us = 0.0;
  double p999_us = 0.0;
  double max_us = 0.0;
};

/// Streaming latency recorder with HDR-histogram-style log-linear
/// buckets: values below 2^kSubBits land in exact unit buckets, larger
/// values in per-octave sub-buckets of width 2^(octave-kSubBits), so
/// every reported percentile is within kMaxRelativeError of the true
/// sample. Recording is one relaxed atomic increment (plus two CAS
/// loops for exact min/max), safe to call concurrently from every
/// serving thread; it never allocates after construction.
///
/// Readers (Summary, ValueAtPercentile) may run concurrently with
/// writers and observe some torn-but-monotone state; for reporting,
/// call them after the recorded section completes. Non-copyable
/// because of the atomic bins — use Merge() to combine per-thread
/// recorders.
class LatencyRecorder {
 public:
  static constexpr size_t kSubBits = 5;  // 32 sub-buckets per octave
  static constexpr double kMaxRelativeError = 1.0 / (1u << kSubBits);

  LatencyRecorder();
  LatencyRecorder(const LatencyRecorder&) = delete;
  LatencyRecorder& operator=(const LatencyRecorder&) = delete;

  /// Records one sample, in microseconds. Negative values clamp to 0.
  void Record(double micros);

  /// Records `n` samples of the same value (e.g. a batch of n requests
  /// that all completed after the batch's wall time).
  void RecordN(double micros, uint64_t n);

  /// Adds every sample recorded by `other` into this recorder.
  void Merge(const LatencyRecorder& other);

  /// Forgets all recorded samples.
  void Reset();

  uint64_t count() const;

  /// Value at percentile p in [0,100], in microseconds; 0 when empty.
  /// Reported values are clamped into [min, max] of the true samples.
  double ValueAtPercentile(double p) const;

  PercentileSummary Summary() const;

 private:
  static size_t BucketOf(uint64_t micros);
  static uint64_t BucketUpperBound(size_t bucket);

  std::vector<std::atomic<uint64_t>> counts_;
  std::atomic<uint64_t> total_{0};
  std::atomic<uint64_t> sum_us_{0};
  std::atomic<uint64_t> min_us_;
  std::atomic<uint64_t> max_us_{0};
};

/// Per-scenario latency SLO declaration, in microseconds. A threshold
/// of 0 means "not checked" for that statistic.
struct SloThreshold {
  double p50_us = 0.0;
  double p95_us = 0.0;
  double p99_us = 0.0;
  double p999_us = 0.0;
  double max_us = 0.0;
};

/// Collects (scenario, observed percentiles, declared SLO) rows and
/// renders the verdict table used by bench_slo (E16). A row passes
/// when every non-zero threshold is >= the observed value.
class SloReport {
 public:
  struct Row {
    std::string scenario;
    PercentileSummary observed;
    SloThreshold slo;
    bool passed = true;
    std::vector<std::string> violations;  // e.g. "p99 1234us > 1000us"
  };

  void Add(const std::string& scenario, const PercentileSummary& observed,
           const SloThreshold& slo);

  bool AllMet() const;
  const std::vector<Row>& rows() const { return rows_; }

  /// Renders scenario | count | p50 | p95 | p99 | p999 | max | SLO p99 |
  /// verdict as an aligned table (microsecond columns in milliseconds).
  std::string ToTable() const;

 private:
  std::vector<Row> rows_;
};

}  // namespace evorec

#endif  // EVOREC_COMMON_PERCENTILE_H_
