#ifndef EVOREC_COMMON_STOPWATCH_H_
#define EVOREC_COMMON_STOPWATCH_H_

#include <chrono>

namespace evorec {

/// Wall-clock stopwatch used by benches and examples to report stage
/// latencies.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Resets the start point to now.
  void Restart() { start_ = Clock::now(); }

  /// Elapsed time in seconds since construction or the last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed time in milliseconds.
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

  /// Elapsed time in microseconds.
  double ElapsedMicros() const { return ElapsedSeconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace evorec

#endif  // EVOREC_COMMON_STOPWATCH_H_
