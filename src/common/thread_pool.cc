#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <memory>
#include <utility>

namespace evorec {

size_t ThreadPool::DefaultThreadCount() {
  return std::max<size_t>(1, std::thread::hardware_concurrency());
}

ThreadPool::ThreadPool(size_t threads) {
  const size_t count = threads == 0 ? DefaultThreadCount() : threads;
  workers_.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  work_available_.notify_all();
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  work_available_.notify_one();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_available_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

namespace {

// Shared between the caller and the helper tasks it enqueues, so a
// task that is dequeued after the loop already finished (all indexes
// claimed by other threads) still touches only live memory.
struct ParallelForControl {
  explicit ParallelForControl(size_t total, std::function<void(size_t)> fn)
      : n(total), body(std::move(fn)) {}

  const size_t n;
  const std::function<void(size_t)> body;
  std::atomic<size_t> next{0};
  std::mutex mu;
  std::condition_variable all_done;
  size_t done = 0;

  void RunIndexes() {
    size_t completed = 0;
    for (;;) {
      const size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) break;
      body(i);
      ++completed;
    }
    if (completed == 0) return;
    std::lock_guard<std::mutex> lock(mu);
    done += completed;
    if (done == n) all_done.notify_all();
  }
};

}  // namespace

void ThreadPool::ParallelFor(size_t n,
                             const std::function<void(size_t)>& body) {
  if (n == 0) return;
  if (n == 1 || workers_.empty()) {
    for (size_t i = 0; i < n; ++i) body(i);
    return;
  }
  auto control = std::make_shared<ParallelForControl>(n, body);
  const size_t helpers = std::min(workers_.size(), n - 1);
  for (size_t i = 0; i < helpers; ++i) {
    Submit([control] { control->RunIndexes(); });
  }
  control->RunIndexes();
  std::unique_lock<std::mutex> lock(control->mu);
  control->all_done.wait(lock, [&] { return control->done == control->n; });
}

}  // namespace evorec
