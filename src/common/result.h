#ifndef EVOREC_COMMON_RESULT_H_
#define EVOREC_COMMON_RESULT_H_

#include <cstdlib>
#include <optional>
#include <utility>

#include "common/status.h"

namespace evorec {

/// Result<T> carries either a value of type T or a non-OK Status,
/// mirroring absl::StatusOr<T>. Accessing the value of an error Result
/// aborts the process (the library is exception-free).
template <typename T>
class Result {
 public:
  /// Constructs an error result. `status` must not be OK.
  Result(Status status)  // NOLINT(google-explicit-constructor)
      : status_(std::move(status)) {
    if (status_.ok()) {
      status_ = InternalError("Result constructed from OK status");
    }
  }

  /// Constructs a success result holding `value`.
  Result(T value)  // NOLINT(google-explicit-constructor)
      : status_(OkStatus()), value_(std::move(value)) {}

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) = default;
  Result& operator=(Result&&) = default;

  /// True iff a value is present.
  bool ok() const { return status_.ok(); }

  const Status& status() const { return status_; }

  /// Returns the contained value; aborts if !ok().
  const T& value() const& {
    AbortIfError();
    return *value_;
  }
  T& value() & {
    AbortIfError();
    return *value_;
  }
  T&& value() && {
    AbortIfError();
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value if present, otherwise `fallback`.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  void AbortIfError() const {
    if (!status_.ok()) {
      std::abort();
    }
  }

  Status status_;
  std::optional<T> value_;
};

}  // namespace evorec

/// Assigns the value of a Result expression to `lhs`, or propagates its
/// error Status to the caller.
#define EVOREC_ASSIGN_OR_RETURN(lhs, expr)            \
  EVOREC_ASSIGN_OR_RETURN_IMPL_(                      \
      EVOREC_RESULT_CONCAT_(evorec_result_, __LINE__), lhs, expr)

#define EVOREC_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                                  \
  if (!tmp.ok()) {                                    \
    return tmp.status();                              \
  }                                                   \
  lhs = std::move(tmp).value()

#define EVOREC_RESULT_CONCAT_(a, b) EVOREC_RESULT_CONCAT_IMPL_(a, b)
#define EVOREC_RESULT_CONCAT_IMPL_(a, b) a##b

#endif  // EVOREC_COMMON_RESULT_H_
