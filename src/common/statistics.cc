#include "common/statistics.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace evorec {

double Mean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  return std::accumulate(values.begin(), values.end(), 0.0) /
         static_cast<double>(values.size());
}

double StdDev(const std::vector<double>& values) {
  if (values.size() < 2) return 0.0;
  const double mean = Mean(values);
  double acc = 0.0;
  for (double v : values) {
    acc += (v - mean) * (v - mean);
  }
  return std::sqrt(acc / static_cast<double>(values.size() - 1));
}

double Min(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  return *std::min_element(values.begin(), values.end());
}

double Max(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  return *std::max_element(values.begin(), values.end());
}

double Percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  if (p <= 0.0) return values.front();
  if (p >= 100.0) return values.back();
  const double rank = p / 100.0 * static_cast<double>(values.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= values.size()) return values.back();
  return values[lo] * (1.0 - frac) + values[lo + 1] * frac;
}

double Gini(std::vector<double> values) {
  if (values.size() < 2) return 0.0;
  std::sort(values.begin(), values.end());
  const double n = static_cast<double>(values.size());
  double weighted = 0.0;
  double total = 0.0;
  for (size_t i = 0; i < values.size(); ++i) {
    weighted += (static_cast<double>(i) + 1.0) * values[i];
    total += values[i];
  }
  if (total <= 0.0) return 0.0;
  return (2.0 * weighted) / (n * total) - (n + 1.0) / n;
}

double JaccardSimilarity(std::vector<uint32_t> a, std::vector<uint32_t> b) {
  std::sort(a.begin(), a.end());
  a.erase(std::unique(a.begin(), a.end()), a.end());
  std::sort(b.begin(), b.end());
  b.erase(std::unique(b.begin(), b.end()), b.end());
  if (a.empty() && b.empty()) return 1.0;
  std::vector<uint32_t> inter;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(inter));
  const double union_size =
      static_cast<double>(a.size() + b.size() - inter.size());
  if (union_size <= 0.0) return 1.0;
  return static_cast<double>(inter.size()) / union_size;
}

double KendallTau(const std::vector<double>& a, const std::vector<double>& b) {
  const size_t n = std::min(a.size(), b.size());
  if (n < 2) return 0.0;
  // O(n^2) tau-a: fine for the ranking sizes evorec compares (<= a few
  // thousand classes).
  int64_t concordant = 0;
  int64_t discordant = 0;
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      const double da = a[i] - a[j];
      const double db = b[i] - b[j];
      const double prod = da * db;
      if (prod > 0.0) {
        ++concordant;
      } else if (prod < 0.0) {
        ++discordant;
      }
    }
  }
  const double pairs = static_cast<double>(n) * (n - 1) / 2.0;
  return static_cast<double>(concordant - discordant) / pairs;
}

namespace {

// Average ranks (1-based) with ties sharing the mean rank.
std::vector<double> AverageRanks(const std::vector<double>& values) {
  const size_t n = values.size();
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](size_t x, size_t y) { return values[x] < values[y]; });
  std::vector<double> ranks(n, 0.0);
  size_t i = 0;
  while (i < n) {
    size_t j = i;
    while (j + 1 < n && values[order[j + 1]] == values[order[i]]) {
      ++j;
    }
    const double avg = (static_cast<double>(i) + static_cast<double>(j)) / 2.0 + 1.0;
    for (size_t k = i; k <= j; ++k) {
      ranks[order[k]] = avg;
    }
    i = j + 1;
  }
  return ranks;
}

}  // namespace

double SpearmanRho(const std::vector<double>& a, const std::vector<double>& b) {
  const size_t n = std::min(a.size(), b.size());
  if (n < 2) return 0.0;
  std::vector<double> ra =
      AverageRanks(std::vector<double>(a.begin(), a.begin() + n));
  std::vector<double> rb =
      AverageRanks(std::vector<double>(b.begin(), b.begin() + n));
  const double mean_a = Mean(ra);
  const double mean_b = Mean(rb);
  double cov = 0.0;
  double var_a = 0.0;
  double var_b = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double da = ra[i] - mean_a;
    const double db = rb[i] - mean_b;
    cov += da * db;
    var_a += da * da;
    var_b += db * db;
  }
  if (var_a <= 0.0 || var_b <= 0.0) return 0.0;
  return cov / std::sqrt(var_a * var_b);
}

double NdcgAtK(const std::vector<double>& relevance, size_t k) {
  if (relevance.empty() || k == 0) return 0.0;
  const size_t cutoff = std::min(k, relevance.size());
  double dcg = 0.0;
  for (size_t i = 0; i < cutoff; ++i) {
    dcg += relevance[i] / std::log2(static_cast<double>(i) + 2.0);
  }
  std::vector<double> ideal = relevance;
  std::sort(ideal.begin(), ideal.end(), std::greater<double>());
  double idcg = 0.0;
  for (size_t i = 0; i < cutoff; ++i) {
    idcg += ideal[i] / std::log2(static_cast<double>(i) + 2.0);
  }
  if (idcg <= 0.0) return 0.0;
  return dcg / idcg;
}

}  // namespace evorec
