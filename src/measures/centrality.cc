#include "measures/centrality.h"

#include <cmath>

namespace evorec::measures {

double RelativeCardinality(const schema::SchemaView& view,
                           rdf::TermId property, rdf::TermId from,
                           rdf::TermId to) {
  const size_t conn = view.ConnectionCount(property, from, to);
  if (conn == 0) return 0.0;
  const size_t denom =
      view.TotalConnectionsOf(from) +
      (from == to ? 0 : view.TotalConnectionsOf(to));
  if (denom == 0) return 0.0;
  return static_cast<double>(conn) / static_cast<double>(denom);
}

std::unordered_map<rdf::TermId, double> ComputeCentrality(
    const schema::SchemaView& view, CentralityDirection direction) {
  std::unordered_map<rdf::TermId, double> centrality;
  for (rdf::TermId cls : view.classes()) {
    centrality[cls] = 0.0;
  }
  // Per-property edge totals, used as connection weights: a connection
  // that carries most of a property's instances matters more to the
  // classes it links.
  std::unordered_map<rdf::TermId, size_t> property_totals;
  for (const schema::PropertyConnection& conn : view.connections()) {
    property_totals[conn.property] += conn.instance_count;
  }
  for (const schema::PropertyConnection& conn : view.connections()) {
    const double rc = RelativeCardinality(view, conn.property,
                                          conn.classes.from, conn.classes.to);
    if (rc <= 0.0) continue;
    const size_t prop_total = property_totals[conn.property];
    const double weight =
        prop_total == 0 ? 0.0
                        : static_cast<double>(conn.instance_count) /
                              static_cast<double>(prop_total);
    const double contribution = rc * weight;
    // Outgoing for the subject class, incoming for the object class.
    if (direction == CentralityDirection::kOut ||
        direction == CentralityDirection::kTotal) {
      centrality[conn.classes.from] += contribution;
    }
    if (direction == CentralityDirection::kIn ||
        direction == CentralityDirection::kTotal) {
      centrality[conn.classes.to] += contribution;
    }
  }
  return centrality;
}

namespace {

const char* DirectionName(CentralityDirection direction) {
  switch (direction) {
    case CentralityDirection::kIn:
      return "in";
    case CentralityDirection::kOut:
      return "out";
    case CentralityDirection::kTotal:
      return "total";
  }
  return "unknown";
}

}  // namespace

CentralityShiftMeasure::CentralityShiftMeasure(CentralityDirection direction)
    : direction_(direction) {
  info_.name = std::string(DirectionName(direction)) + "_centrality_shift";
  info_.description =
      std::string("absolute change of ") + DirectionName(direction) +
      "-centrality (weighted relative cardinalities of instance "
      "connections) between the two versions";
  info_.category = MeasureCategory::kSemantic;
  info_.scope = MeasureScope::kClass;
}

Result<MeasureReport> CentralityShiftMeasure::Compute(
    const EvolutionContext& ctx) const {
  const auto before = ComputeCentrality(ctx.view_before(), direction_);
  const auto after = ComputeCentrality(ctx.view_after(), direction_);
  MeasureReport report;
  for (rdf::TermId cls : ctx.union_classes()) {
    auto b = before.find(cls);
    auto a = after.find(cls);
    const double vb = b == before.end() ? 0.0 : b->second;
    const double va = a == after.end() ? 0.0 : a->second;
    report.Add(cls, std::abs(va - vb));
  }
  return report;
}

}  // namespace evorec::measures
