#include "measures/centrality.h"

#include <cmath>

namespace evorec::measures {

double RelativeCardinality(const schema::SchemaView& view,
                           rdf::TermId property, rdf::TermId from,
                           rdf::TermId to) {
  const size_t conn = view.ConnectionCount(property, from, to);
  if (conn == 0) return 0.0;
  const size_t denom =
      view.TotalConnectionsOf(from) +
      (from == to ? 0 : view.TotalConnectionsOf(to));
  if (denom == 0) return 0.0;
  return static_cast<double>(conn) / static_cast<double>(denom);
}

std::vector<size_t> PropertyInstanceTotals(const schema::SchemaView& view) {
  // Per-property edge totals, used as connection weights: a connection
  // that carries most of a property's instances matters more to the
  // entities it links. Dense over the view's sorted property list.
  const std::vector<rdf::TermId>& properties = view.properties();
  std::vector<size_t> totals(properties.size(), 0);
  for (const schema::PropertyConnection& conn : view.connections()) {
    const size_t p = rdf::SortedIndexOf(properties, conn.property);
    if (p != rdf::kNotInUniverse) totals[p] += conn.instance_count;
  }
  return totals;
}

double ConnectionContribution(const schema::SchemaView& view,
                              const schema::PropertyConnection& conn,
                              size_t property_total) {
  // conn.instance_count IS ConnectionCount(property, from, to) —
  // connections() holds one deduplicated entry per key.
  const size_t denom =
      view.TotalConnectionsOf(conn.classes.from) +
      (conn.classes.from == conn.classes.to
           ? 0
           : view.TotalConnectionsOf(conn.classes.to));
  if (conn.instance_count == 0 || denom == 0 || property_total == 0) {
    return 0.0;
  }
  const double rc = static_cast<double>(conn.instance_count) /
                    static_cast<double>(denom);
  const double weight = static_cast<double>(conn.instance_count) /
                        static_cast<double>(property_total);
  return rc * weight;
}

std::vector<double> ComputeCentralityDense(
    const schema::SchemaView& view, CentralityDirection direction,
    const std::vector<rdf::TermId>& universe) {
  std::vector<double> centrality(universe.size(), 0.0);
  const std::vector<rdf::TermId>& properties = view.properties();
  const std::vector<size_t> property_totals = PropertyInstanceTotals(view);
  for (const schema::PropertyConnection& conn : view.connections()) {
    const size_t p = rdf::SortedIndexOf(properties, conn.property);
    const double contribution = ConnectionContribution(
        view, conn, p == rdf::kNotInUniverse ? 0 : property_totals[p]);
    if (contribution <= 0.0) continue;
    // Outgoing for the subject class, incoming for the object class.
    if (direction == CentralityDirection::kOut ||
        direction == CentralityDirection::kTotal) {
      const size_t i = rdf::SortedIndexOf(universe, conn.classes.from);
      if (i != rdf::kNotInUniverse) centrality[i] += contribution;
    }
    if (direction == CentralityDirection::kIn ||
        direction == CentralityDirection::kTotal) {
      const size_t i = rdf::SortedIndexOf(universe, conn.classes.to);
      if (i != rdf::kNotInUniverse) centrality[i] += contribution;
    }
  }
  return centrality;
}

std::unordered_map<rdf::TermId, double> ComputeCentrality(
    const schema::SchemaView& view, CentralityDirection direction) {
  const std::vector<rdf::TermId>& classes = view.classes();
  const std::vector<double> dense =
      ComputeCentralityDense(view, direction, classes);
  std::unordered_map<rdf::TermId, double> centrality;
  centrality.reserve(classes.size());
  for (size_t i = 0; i < classes.size(); ++i) {
    centrality[classes[i]] = dense[i];
  }
  return centrality;
}

namespace {

const char* DirectionName(CentralityDirection direction) {
  switch (direction) {
    case CentralityDirection::kIn:
      return "in";
    case CentralityDirection::kOut:
      return "out";
    case CentralityDirection::kTotal:
      return "total";
  }
  return "unknown";
}

}  // namespace

CentralityShiftMeasure::CentralityShiftMeasure(CentralityDirection direction)
    : direction_(direction) {
  info_.name = std::string(DirectionName(direction)) + "_centrality_shift";
  info_.description =
      std::string("absolute change of ") + DirectionName(direction) +
      "-centrality (weighted relative cardinalities of instance "
      "connections) between the two versions";
  info_.category = MeasureCategory::kSemantic;
  info_.scope = MeasureScope::kClass;
}

Result<MeasureReport> CentralityShiftMeasure::Compute(
    const EvolutionContext& ctx) const {
  const std::vector<rdf::TermId>& classes = ctx.union_classes();
  const std::vector<double> before =
      ComputeCentralityDense(ctx.view_before(), direction_, classes);
  const std::vector<double> after =
      ComputeCentralityDense(ctx.view_after(), direction_, classes);
  std::vector<ScoredTerm> scores(classes.size());
  for (size_t i = 0; i < classes.size(); ++i) {
    scores[i] = {classes[i], std::abs(after[i] - before[i])};
  }
  return MeasureReport(std::move(scores));
}

}  // namespace evorec::measures
