#include "measures/report.h"

#include <algorithm>

#include "common/statistics.h"

namespace evorec::measures {

MeasureReport::MeasureReport(std::vector<ScoredTerm> scores)
    : scores_(std::move(scores)) {}

void MeasureReport::Add(rdf::TermId term, double score) {
  scores_.push_back({term, score});
}

double MeasureReport::ScoreOf(rdf::TermId term) const {
  for (const ScoredTerm& s : scores_) {
    if (s.term == term) return s.score;
  }
  return 0.0;
}

namespace {

bool ScoreDesc(const ScoredTerm& a, const ScoredTerm& b) {
  if (a.score != b.score) return a.score > b.score;
  return a.term < b.term;
}

}  // namespace

MeasureReport MeasureReport::Sorted() const {
  std::vector<ScoredTerm> sorted = scores_;
  std::sort(sorted.begin(), sorted.end(), ScoreDesc);
  return MeasureReport(std::move(sorted));
}

std::vector<ScoredTerm> MeasureReport::TopK(size_t k) const {
  std::vector<ScoredTerm> sorted = scores_;
  const size_t take = std::min(k, sorted.size());
  std::partial_sort(sorted.begin(), sorted.begin() + take, sorted.end(),
                    ScoreDesc);
  sorted.resize(take);
  return sorted;
}

std::vector<rdf::TermId> MeasureReport::TopKTerms(size_t k) const {
  std::vector<rdf::TermId> terms;
  for (const ScoredTerm& s : TopK(k)) {
    terms.push_back(s.term);
  }
  return terms;
}

MeasureReport MeasureReport::Normalized() const {
  if (scores_.empty()) return {};
  double lo = scores_[0].score;
  double hi = scores_[0].score;
  for (const ScoredTerm& s : scores_) {
    lo = std::min(lo, s.score);
    hi = std::max(hi, s.score);
  }
  std::vector<ScoredTerm> out = scores_;
  const double span = hi - lo;
  for (ScoredTerm& s : out) {
    s.score = span > 0.0 ? (s.score - lo) / span : 0.0;
  }
  return MeasureReport(std::move(out));
}

std::vector<double> MeasureReport::AlignedScores(
    const std::vector<rdf::TermId>& universe) const {
  std::vector<double> out(universe.size(), 0.0);
  for (const ScoredTerm& s : scores_) {
    auto it = std::lower_bound(universe.begin(), universe.end(), s.term);
    if (it != universe.end() && *it == s.term) {
      out[static_cast<size_t>(it - universe.begin())] = s.score;
    }
  }
  return out;
}

double MeasureReport::TotalScore() const {
  double total = 0.0;
  for (const ScoredTerm& s : scores_) total += s.score;
  return total;
}

double TopKOverlap(const MeasureReport& a, const MeasureReport& b, size_t k) {
  return JaccardSimilarity(a.TopKTerms(k), b.TopKTerms(k));
}

}  // namespace evorec::measures
