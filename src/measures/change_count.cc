#include "measures/change_count.h"

namespace evorec::measures {

ClassChangeCountMeasure::ClassChangeCountMeasure(bool extended)
    : extended_(extended) {
  info_.name = extended ? "class_change_count" : "class_change_count_direct";
  info_.description =
      extended ? "number of changed triples attributed to each class, "
                 "including instance-level churn of its instances"
               : "number of changed triples mentioning each class directly";
  info_.category = MeasureCategory::kCount;
  info_.scope = MeasureScope::kClass;
}

Result<MeasureReport> ClassChangeCountMeasure::Compute(
    const EvolutionContext& ctx) const {
  MeasureReport report;
  const delta::DeltaIndex& index = ctx.delta_index();
  for (rdf::TermId cls : ctx.union_classes()) {
    const size_t count =
        extended_ ? index.ExtendedChanges(cls) : index.DirectChanges(cls);
    report.Add(cls, static_cast<double>(count));
  }
  return report;
}

PropertyChangeCountMeasure::PropertyChangeCountMeasure() {
  info_.name = "property_change_count";
  info_.description =
      "number of changed triples using or mentioning each property";
  info_.category = MeasureCategory::kCount;
  info_.scope = MeasureScope::kProperty;
}

Result<MeasureReport> PropertyChangeCountMeasure::Compute(
    const EvolutionContext& ctx) const {
  MeasureReport report;
  const delta::DeltaIndex& index = ctx.delta_index();
  for (rdf::TermId property : ctx.union_properties()) {
    report.Add(property,
               static_cast<double>(index.DirectChanges(property)));
  }
  return report;
}

}  // namespace evorec::measures
