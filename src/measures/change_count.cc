#include "measures/change_count.h"

namespace evorec::measures {

ClassChangeCountMeasure::ClassChangeCountMeasure(bool extended)
    : extended_(extended) {
  info_.name = extended ? "class_change_count" : "class_change_count_direct";
  info_.description =
      extended ? "number of changed triples attributed to each class, "
                 "including instance-level churn of its instances"
               : "number of changed triples mentioning each class directly";
  info_.category = MeasureCategory::kCount;
  info_.scope = MeasureScope::kClass;
}

Result<MeasureReport> ClassChangeCountMeasure::Compute(
    const EvolutionContext& ctx) const {
  const delta::DeltaIndex& index = ctx.delta_index();
  const std::vector<rdf::TermId>& classes = ctx.union_classes();
  std::vector<ScoredTerm> scores(classes.size());
  for (size_t i = 0; i < classes.size(); ++i) {
    const size_t count = extended_ ? index.ExtendedChangesAt(i)
                                   : index.DirectChanges(classes[i]);
    scores[i] = {classes[i], static_cast<double>(count)};
  }
  return MeasureReport(std::move(scores));
}

PropertyChangeCountMeasure::PropertyChangeCountMeasure() {
  info_.name = "property_change_count";
  info_.description =
      "number of changed triples using or mentioning each property";
  info_.category = MeasureCategory::kCount;
  info_.scope = MeasureScope::kProperty;
}

Result<MeasureReport> PropertyChangeCountMeasure::Compute(
    const EvolutionContext& ctx) const {
  MeasureReport report;
  const delta::DeltaIndex& index = ctx.delta_index();
  for (rdf::TermId property : ctx.union_properties()) {
    report.Add(property,
               static_cast<double>(index.DirectChanges(property)));
  }
  return report;
}

}  // namespace evorec::measures
