#ifndef EVOREC_MEASURES_EVALUATION_H_
#define EVOREC_MEASURES_EVALUATION_H_

#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/thread_pool.h"
#include "measures/measure.h"
#include "measures/measure_context.h"
#include "measures/registry.h"

namespace evorec::measures {

/// Counters describing the work a ReportCache performed, so tests and
/// benches can verify that serving N users over one context computes
/// every measure exactly once.
struct ReportCacheStats {
  uint64_t hits = 0;          ///< served from the memo
  uint64_t computations = 0;  ///< Compute() actually ran
  uint64_t coalesced = 0;     ///< joined an in-flight computation
};

/// A thread-safe, single-flight memo of MeasureReports keyed by
/// measure name, scoped to one EvolutionContext. Concurrent requests
/// for the same measure trigger exactly one Compute(); the losers wait
/// on the winner's result. Reports are immutable once cached and are
/// shared out as shared_ptr<const>, so they outlive cache eviction.
class ReportCache {
 public:
  ReportCache() = default;
  ReportCache(const ReportCache&) = delete;
  ReportCache& operator=(const ReportCache&) = delete;

  /// The memoized report of `measure` over `ctx`, computing it on the
  /// first request. Failed computations are not cached (a later
  /// request retries).
  Result<std::shared_ptr<const MeasureReport>> GetOrCompute(
      const EvolutionMeasure& measure, const EvolutionContext& ctx);

  /// The cached report of `name`, or nullptr when never computed.
  std::shared_ptr<const MeasureReport> Lookup(std::string_view name) const;

  /// Number of successfully cached reports.
  size_t size() const;

  ReportCacheStats stats() const;

 private:
  using SharedReport = std::shared_ptr<const MeasureReport>;

  mutable std::mutex mu_;
  std::unordered_map<std::string, std::shared_future<Result<SharedReport>>>
      entries_;
  ReportCacheStats stats_;
};

/// Registry-driven batch evaluation: the report of every registered
/// measure over `ctx`, in registration order, filling `cache` as it
/// goes. Measures already cached are not recomputed. When `pool` is
/// non-null the uncached measures evaluate in parallel. Fails if any
/// measure computation fails.
Result<std::vector<std::shared_ptr<const MeasureReport>>> EvaluateAll(
    const MeasureRegistry& registry, const EvolutionContext& ctx,
    ReportCache& cache, ThreadPool* pool = nullptr);

}  // namespace evorec::measures

#endif  // EVOREC_MEASURES_EVALUATION_H_
