#ifndef EVOREC_MEASURES_RELEVANCE_H_
#define EVOREC_MEASURES_RELEVANCE_H_

#include <unordered_map>

#include "measures/measure.h"
#include "schema/schema_view.h"

namespace evorec::measures {

/// §II.d — Relevance of a class (after Troullinou et al. [15]):
/// extends centrality over neighborhoods and instance volume.
///
///   Rel(n) = ( C(n) + Σ_{m ∈ N(n)} C(m) / (1 + |N(m)|) )
///            · log2(2 + |instances(n)|)
///
/// where C is total (in+out) semantic centrality and N the per-version
/// class neighborhood. The first factor says a class matters more when
/// it and its neighbors are central (each neighbor's contribution is
/// split among that neighbor's own neighbors); the second factor says
/// classes with more actual data instances matter more.
std::unordered_map<rdf::TermId, double> ComputeRelevance(
    const schema::SchemaView& view);

/// Importance-shift measure on Relevance: |Rel_{V2}(n) − Rel_{V1}(n)|.
class RelevanceShiftMeasure final : public EvolutionMeasure {
 public:
  RelevanceShiftMeasure();

  const MeasureInfo& info() const override { return info_; }
  Result<MeasureReport> Compute(const EvolutionContext& ctx) const override;

 private:
  MeasureInfo info_;
};

}  // namespace evorec::measures

#endif  // EVOREC_MEASURES_RELEVANCE_H_
