#ifndef EVOREC_MEASURES_STRUCTURAL_SHIFT_H_
#define EVOREC_MEASURES_STRUCTURAL_SHIFT_H_

#include "measures/measure.h"

namespace evorec::measures {

/// §II.c — shift in Betweenness: |B_{V2}(n) − B_{V1}(n)| per class,
/// computed on index-aligned schema graphs over the union class
/// universe. Captures how the evolution rewired shortest-path
/// structure around each class.
class BetweennessShiftMeasure final : public EvolutionMeasure {
 public:
  BetweennessShiftMeasure();

  const MeasureInfo& info() const override { return info_; }
  Result<MeasureReport> Compute(const EvolutionContext& ctx) const override;

 private:
  MeasureInfo info_;
};

/// §II.c — shift in Bridging Centrality (betweenness × bridging
/// coefficient): marks classes that started or stopped connecting
/// densely connected regions of the schema.
class BridgingShiftMeasure final : public EvolutionMeasure {
 public:
  BridgingShiftMeasure();

  const MeasureInfo& info() const override { return info_; }
  Result<MeasureReport> Compute(const EvolutionContext& ctx) const override;

 private:
  MeasureInfo info_;
};

}  // namespace evorec::measures

#endif  // EVOREC_MEASURES_STRUCTURAL_SHIFT_H_
