#ifndef EVOREC_MEASURES_CHANGE_COUNT_H_
#define EVOREC_MEASURES_CHANGE_COUNT_H_

#include "measures/measure.h"

namespace evorec::measures {

/// §II.a — number of class changes δ(n). Scores every class of either
/// version by the number of changed triples attributed to it.
/// `extended` additionally attributes instance-edge churn to the
/// instances' classes (see delta::DeltaIndex); the paper's literal
/// δ(n) is the direct variant.
class ClassChangeCountMeasure final : public EvolutionMeasure {
 public:
  explicit ClassChangeCountMeasure(bool extended = true);

  const MeasureInfo& info() const override { return info_; }
  Result<MeasureReport> Compute(const EvolutionContext& ctx) const override;

 private:
  MeasureInfo info_;
  bool extended_;
};

/// §II.a — number of property changes δ(p): changed triples using `p`
/// as predicate or mentioning it (domain/range/type declarations).
class PropertyChangeCountMeasure final : public EvolutionMeasure {
 public:
  PropertyChangeCountMeasure();

  const MeasureInfo& info() const override { return info_; }
  Result<MeasureReport> Compute(const EvolutionContext& ctx) const override;

 private:
  MeasureInfo info_;
};

}  // namespace evorec::measures

#endif  // EVOREC_MEASURES_CHANGE_COUNT_H_
