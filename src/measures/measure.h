#ifndef EVOREC_MEASURES_MEASURE_H_
#define EVOREC_MEASURES_MEASURE_H_

#include <string>

#include "common/result.h"
#include "measures/measure_context.h"
#include "measures/report.h"

namespace evorec::measures {

/// The paper's three measure families (§II): plain change counting,
/// structural (topology-based) importance shifts, and semantic
/// (instance-distribution-based) importance shifts. The recommender's
/// semantic-diversity distance treats measures of different categories
/// as maximally complementary.
enum class MeasureCategory {
  kCount,
  kStructural,
  kSemantic,
};

/// What a measure scores: classes or properties.
enum class MeasureScope {
  kClass,
  kProperty,
};

/// Stable display name of a category ("count" / "structural" /
/// "semantic").
std::string MeasureCategoryName(MeasureCategory category);

/// Static metadata describing a measure to humans and to the
/// recommender.
struct MeasureInfo {
  /// Unique registry key, e.g. "class_change_count".
  std::string name;
  /// One-sentence human-readable description (surfaced in
  /// explanations).
  std::string description;
  MeasureCategory category = MeasureCategory::kCount;
  MeasureScope scope = MeasureScope::kClass;
};

/// Interface of an evolution measure: given the context of a version
/// pair, produce a score per class (or property) quantifying how
/// intensely the evolution affected it.
class EvolutionMeasure {
 public:
  virtual ~EvolutionMeasure() = default;

  /// Metadata (name, description, category, scope).
  virtual const MeasureInfo& info() const = 0;

  /// Computes the report for `ctx`. Implementations must be pure
  /// (no state mutation) so one instance can serve many contexts.
  virtual Result<MeasureReport> Compute(const EvolutionContext& ctx) const = 0;
};

}  // namespace evorec::measures

#endif  // EVOREC_MEASURES_MEASURE_H_
