#include "measures/measure.h"

namespace evorec::measures {

std::string MeasureCategoryName(MeasureCategory category) {
  switch (category) {
    case MeasureCategory::kCount:
      return "count";
    case MeasureCategory::kStructural:
      return "structural";
    case MeasureCategory::kSemantic:
      return "semantic";
  }
  return "unknown";
}

}  // namespace evorec::measures
