#ifndef EVOREC_MEASURES_CENTRALITY_H_
#define EVOREC_MEASURES_CENTRALITY_H_

#include <unordered_map>
#include <vector>

#include "measures/measure.h"
#include "schema/schema_view.h"

namespace evorec::measures {

/// Which direction of instance connections a centrality sums.
enum class CentralityDirection {
  kIn,     ///< incoming properties only
  kOut,    ///< outgoing properties only
  kTotal,  ///< both
};

/// §II.d — relative cardinality of a property e connecting classes
/// (n, ni):
///   RC(e(n, ni)) = conn(e, n → ni) /
///                  (totalConn(n) + totalConn(ni)),
/// where conn counts instance-level edges of e between the two classes
/// and totalConn(c) counts all instance connections (in + out, any
/// property) that instances of c participate in. Returns 0 when the
/// denominator is 0.
double RelativeCardinality(const schema::SchemaView& view,
                           rdf::TermId property, rdf::TermId from,
                           rdf::TermId to);

/// §II.d — in/out-centrality of every class in `view`: the sum of the
/// relative cardinalities of its incoming/outgoing property
/// connections, each weighted by the fraction of the property's
/// instance edges that the connection carries. Classes without
/// connections score 0.
std::unordered_map<rdf::TermId, double> ComputeCentrality(
    const schema::SchemaView& view, CentralityDirection direction);

/// Per-property instance-edge totals, aligned to view.properties() —
/// the weight denominators of the flat centrality/importance kernels.
std::vector<size_t> PropertyInstanceTotals(const schema::SchemaView& view);

/// The weighted relative-cardinality contribution of one connection:
/// RC(e(n, ni)) × the fraction of the property's instance edges the
/// connection carries (`property_total` from PropertyInstanceTotals).
/// 0 for degenerate connections. The shared per-connection kernel of
/// class centrality and property importance — keep the two measures
/// consistent by construction.
double ConnectionContribution(const schema::SchemaView& view,
                              const schema::PropertyConnection& conn,
                              size_t property_total);

/// Flat-kernel form of ComputeCentrality: scores aligned to the sorted
/// class list `universe` (0 for classes without connections or absent
/// from the view). One linear pass over the view's connections into a
/// dense vector — no per-class hashing. The map form above is a thin
/// wrapper over this kernel.
std::vector<double> ComputeCentralityDense(
    const schema::SchemaView& view, CentralityDirection direction,
    const std::vector<rdf::TermId>& universe);

/// §II.d — importance-shift measure on semantic centrality:
/// |C_{V2}(n) − C_{V1}(n)| per class, for the configured direction.
/// Captures how the evolution redistributed instance-level data around
/// each class — the paper's "cumulative effect" of changes.
class CentralityShiftMeasure final : public EvolutionMeasure {
 public:
  explicit CentralityShiftMeasure(
      CentralityDirection direction = CentralityDirection::kTotal);

  const MeasureInfo& info() const override { return info_; }
  Result<MeasureReport> Compute(const EvolutionContext& ctx) const override;

 private:
  MeasureInfo info_;
  CentralityDirection direction_;
};

}  // namespace evorec::measures

#endif  // EVOREC_MEASURES_CENTRALITY_H_
