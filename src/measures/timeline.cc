#include "measures/timeline.h"

#include <algorithm>

namespace evorec::measures {

Result<EvolutionTimeline> EvolutionTimeline::Compute(
    const version::VersionedKnowledgeBase& vkb,
    const EvolutionMeasure& measure, version::VersionId first,
    version::VersionId last, ContextOptions options) {
  if (vkb.version_count() < 2) {
    return FailedPreconditionError(
        "timeline needs at least two versions");
  }
  const version::VersionId end =
      std::min<version::VersionId>(last, vkb.head());
  if (first >= end) {
    return InvalidArgumentError("empty version range for timeline");
  }
  std::vector<MeasureReport> reports;
  reports.reserve(end - first);
  for (version::VersionId v = first; v < end; ++v) {
    auto ctx = EvolutionContext::FromVersions(vkb, v, v + 1, options);
    if (!ctx.ok()) return ctx.status();
    auto report = measure.Compute(*ctx);
    if (!report.ok()) return report.status();
    reports.push_back(std::move(report).value());
  }
  return FromReports(std::move(reports));
}

Result<EvolutionTimeline> EvolutionTimeline::FromReports(
    std::vector<MeasureReport> reports) {
  if (reports.empty()) {
    return InvalidArgumentError("timeline needs at least one transition");
  }
  EvolutionTimeline timeline;
  std::vector<rdf::TermId> all_terms;
  for (const MeasureReport& report : reports) {
    for (const ScoredTerm& s : report.scores()) {
      all_terms.push_back(s.term);
    }
  }
  timeline.reports_ = std::move(reports);
  std::sort(all_terms.begin(), all_terms.end());
  all_terms.erase(std::unique(all_terms.begin(), all_terms.end()),
                  all_terms.end());
  timeline.terms_ = std::move(all_terms);
  return timeline;
}

std::vector<double> EvolutionTimeline::SeriesOf(rdf::TermId term) const {
  std::vector<double> series;
  series.reserve(reports_.size());
  for (const MeasureReport& report : reports_) {
    series.push_back(report.ScoreOf(term));
  }
  return series;
}

EvolutionTimeline::TrendStats EvolutionTimeline::TrendOf(
    rdf::TermId term) const {
  TrendStats stats;
  stats.term = term;
  const std::vector<double> series = SeriesOf(term);
  const size_t n = series.size();
  if (n == 0) return stats;

  double sum = 0.0;
  double max_value = series[0];
  size_t peak = 0;
  for (size_t i = 0; i < n; ++i) {
    sum += series[i];
    if (series[i] > max_value) {
      max_value = series[i];
      peak = i;
    }
  }
  stats.mean = sum / static_cast<double>(n);
  stats.peak_transition = peak;
  stats.burstiness = stats.mean > 0.0 ? max_value / stats.mean : 0.0;

  if (n >= 2) {
    // Least squares on (i, series[i]).
    const double mean_x = static_cast<double>(n - 1) / 2.0;
    double cov = 0.0;
    double var_x = 0.0;
    for (size_t i = 0; i < n; ++i) {
      const double dx = static_cast<double>(i) - mean_x;
      cov += dx * (series[i] - stats.mean);
      var_x += dx * dx;
    }
    stats.slope = var_x > 0.0 ? cov / var_x : 0.0;
  }
  return stats;
}

namespace {

std::vector<EvolutionTimeline::TrendStats> TakeTop(
    std::vector<EvolutionTimeline::TrendStats> stats, size_t k,
    bool (*less)(const EvolutionTimeline::TrendStats&,
                 const EvolutionTimeline::TrendStats&)) {
  std::sort(stats.begin(), stats.end(), less);
  if (stats.size() > k) stats.resize(k);
  return stats;
}

}  // namespace

std::vector<EvolutionTimeline::TrendStats> EvolutionTimeline::TopTrending(
    size_t k) const {
  std::vector<TrendStats> stats;
  for (rdf::TermId term : terms_) {
    TrendStats t = TrendOf(term);
    if (t.mean > 0.0) stats.push_back(t);
  }
  return TakeTop(std::move(stats), k,
                 [](const TrendStats& a, const TrendStats& b) {
                   if (a.slope != b.slope) return a.slope > b.slope;
                   return a.term < b.term;
                 });
}

std::vector<EvolutionTimeline::TrendStats> EvolutionTimeline::TopBursty(
    size_t k) const {
  std::vector<TrendStats> stats;
  for (rdf::TermId term : terms_) {
    TrendStats t = TrendOf(term);
    if (t.mean > 0.0) stats.push_back(t);
  }
  return TakeTop(std::move(stats), k,
                 [](const TrendStats& a, const TrendStats& b) {
                   if (a.burstiness != b.burstiness) {
                     return a.burstiness > b.burstiness;
                   }
                   return a.term < b.term;
                 });
}

std::vector<rdf::TermId> EvolutionTimeline::ActiveTerms() const {
  std::vector<rdf::TermId> active;
  for (rdf::TermId term : terms_) {
    for (const MeasureReport& report : reports_) {
      if (report.ScoreOf(term) > 0.0) {
        active.push_back(term);
        break;
      }
    }
  }
  return active;
}

}  // namespace evorec::measures
