#ifndef EVOREC_MEASURES_NEIGHBORHOOD_CHANGE_H_
#define EVOREC_MEASURES_NEIGHBORHOOD_CHANGE_H_

#include "measures/measure.h"

namespace evorec::measures {

/// §II.b — number of changes in a class's neighborhood:
///   |δN_{V1,V2}(n)| = Σ_{c ∈ N_{V1,V2}(n)} |δ_{V1,V2}(c)|,
/// where N(n) is the set of classes related to n via subsumption or a
/// property's domain/range in either version. High scores mark classes
/// whose *surroundings* changed, exposing topology-level churn that
/// per-class counting misses (experiment E2).
class NeighborhoodChangeCountMeasure final : public EvolutionMeasure {
 public:
  NeighborhoodChangeCountMeasure();

  const MeasureInfo& info() const override { return info_; }
  Result<MeasureReport> Compute(const EvolutionContext& ctx) const override;

 private:
  MeasureInfo info_;
};

}  // namespace evorec::measures

#endif  // EVOREC_MEASURES_NEIGHBORHOOD_CHANGE_H_
