#ifndef EVOREC_MEASURES_MEASURE_CONTEXT_H_
#define EVOREC_MEASURES_MEASURE_CONTEXT_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "common/random.h"
#include "common/result.h"
#include "common/thread_pool.h"
#include "delta/delta_index.h"
#include "delta/low_level_delta.h"
#include "graph/betweenness.h"
#include "graph/schema_graph.h"
#include "rdf/knowledge_base.h"
#include "schema/schema_view.h"
#include "version/versioned_kb.h"

namespace evorec::measures {

/// How structural centrality is computed inside a context.
enum class BetweennessMode {
  kExact,    ///< Brandes over all sources.
  kSampled,  ///< Pivot-sampled approximation (see pivots).
};

/// Options for EvolutionContext construction.
struct ContextOptions {
  BetweennessMode betweenness_mode = BetweennessMode::kExact;
  /// Number of pivots when betweenness_mode == kSampled.
  size_t betweenness_pivots = 64;
  /// Seed for the sampling RNG (determinism).
  uint64_t seed = 1;

  /// Equivalent options produce equivalent contexts — the equality the
  /// engine's context cache keys on. Sampling parameters only matter
  /// in kSampled mode.
  friend bool operator==(const ContextOptions& a, const ContextOptions& b) {
    if (a.betweenness_mode != b.betweenness_mode) return false;
    if (a.betweenness_mode == BetweennessMode::kExact) return true;
    return a.betweenness_pivots == b.betweenness_pivots && a.seed == b.seed;
  }
};

/// Stable 64-bit fingerprint of `options` consistent with operator==.
uint64_t ContextOptionsFingerprint(const ContextOptions& options);

/// Effective sampling seed for a context bound to one version:
/// options.seed mixed with `salt` (the engine passes the version's
/// content fingerprint, so pivot selection is a stable property of
/// the version's *content* — identical across engine instances,
/// across cold builds vs incremental refreshes, and across runs —
/// rather than one shared ad-hoc default). Salt 0 is the identity:
/// the non-engine path keeps the raw options.seed and its historical
/// outputs.
uint64_t SampledSeedFor(const ContextOptions& options, uint64_t salt);

/// Betweenness of `g` per the configured mode. `pool` (optional)
/// parallelises the Brandes passes; results are bit-identical with and
/// without it.
std::vector<double> ComputeBetweenness(const graph::Graph& g,
                                       const ContextOptions& options,
                                       ThreadPool* pool = nullptr);

/// Scatters per-class scores aligned to the sorted class list
/// `own_classes` into positions of the sorted superset
/// `union_classes` (0 for classes absent from `own_classes`). The
/// union-alignment primitive of the per-version artefact design; a
/// two-pointer merge, no hashing.
std::vector<double> ScatterToUnion(
    const std::vector<rdf::TermId>& own_classes,
    const std::vector<double>& own_scores,
    const std::vector<rdf::TermId>& union_classes);

/// A thread-safe, single-flight lazy cell for one version's raw
/// betweenness vector (indexed like its schema graph). Cells are
/// shared between every EvolutionContext that touches the version —
/// and with the engine's ArtefactCache — so a version's Brandes run
/// happens at most once no matter how many pairs include it.
class LazyBetweenness {
 public:
  /// `on_compute`, when set, fires exactly once, right before the
  /// computation actually runs (cache-stats hook). `sampling_salt`
  /// feeds SampledSeedFor in kSampled mode (0 = raw options.seed).
  LazyBetweenness(std::shared_ptr<const graph::SchemaGraph> graph,
                  ContextOptions options, ThreadPool* pool = nullptr,
                  std::function<void()> on_compute = nullptr,
                  uint64_t sampling_salt = 0);

  /// Adopts an already-advanced result (the incremental-refresh path):
  /// Get() serves `partials.scores` immediately and no pass ever runs,
  /// so `on_compute`-style counters stay untouched. kExact only —
  /// sampled cells are never advanced.
  LazyBetweenness(std::shared_ptr<const graph::SchemaGraph> graph,
                  ContextOptions options, graph::BetweennessPartials partials);

  /// The betweenness vector, computed on first call.
  const std::vector<double>& Get() const;

  /// The resumable per-chunk Brandes state, or nullptr when nothing
  /// has been computed yet or the mode is sampled (no advance path).
  /// Never forces the computation — a cell that stayed lazy stays
  /// lazy, and its successor simply starts cold too.
  const graph::BetweennessPartials* Partials() const;

  const graph::SchemaGraph& graph() const { return *graph_; }

 private:
  std::shared_ptr<const graph::SchemaGraph> graph_;
  ContextOptions options_;
  ThreadPool* pool_ = nullptr;
  std::function<void()> on_compute_;
  uint64_t sampling_salt_ = 0;
  mutable std::once_flag once_;
  mutable graph::BetweennessPartials partials_;
  mutable std::atomic<bool> ready_{false};
};

/// One version's reusable cold-path artefacts: the snapshot, its
/// schema view, the schema graph over the *version's own* class set
/// (node i is view->classes()[i]), and the lazy betweenness cell of
/// that graph. A version pair context is assembled from two of these,
/// so a version shared by several pairs — e.g. the middle versions of
/// a timeline chain walk — pays for its artefacts exactly once (see
/// engine::ArtefactCache).
struct VersionArtefacts {
  std::shared_ptr<const rdf::KnowledgeBase> snapshot;
  std::shared_ptr<const schema::SchemaView> view;
  std::shared_ptr<const graph::SchemaGraph> graph;
  std::shared_ptr<const LazyBetweenness> betweenness;
};

/// Builds the full artefact bundle for one snapshot (betweenness stays
/// lazy). `snapshot` must be non-null. `sampling_salt` is forwarded to
/// the betweenness cell (the engine passes the version fingerprint; 0
/// keeps the legacy unsalted sampling of the non-engine path).
VersionArtefacts MakeVersionArtefacts(
    std::shared_ptr<const rdf::KnowledgeBase> snapshot,
    const ContextOptions& options, ThreadPool* pool = nullptr,
    uint64_t sampling_salt = 0);

/// Everything an evolution measure needs about one version pair
/// (V1 → V2), computed once and shared by all measures:
/// both snapshots, their schema views, the low-level delta and its
/// index, per-version schema graphs, and cached betweenness for both
/// versions.
///
/// Each version's schema graph covers that version's *own* class set
/// (so it is reusable across pairs); union-universe alignment is
/// provided by the scattered accessors: betweenness_before()/_after()
/// are indexed by union_classes(), with 0 for classes absent from the
/// respective version. In kExact mode the scatter is value-identical
/// to computing over a union-universe graph (absent classes are
/// isolated nodes with betweenness 0). In kSampled mode pivots are
/// drawn from the version's own graph — a per-version sample that is
/// stable across every pair including the version, rather than the
/// pair-dependent union-universe sample of earlier revisions.
///
/// Contexts are immutable after Build and cheap to pass by const
/// reference; expensive artefacts (betweenness) are computed lazily on
/// first access. The lazy computation is thread-safe (std::call_once),
/// so one context can be shared by measures evaluating in parallel;
/// copies of a context share the same lazy cache.
class EvolutionContext {
 public:
  /// Builds a context from two snapshots that share a dictionary.
  static Result<EvolutionContext> Build(const rdf::KnowledgeBase& before,
                                        const rdf::KnowledgeBase& after,
                                        ContextOptions options = {},
                                        ThreadPool* pool = nullptr);

  /// Adopts already-owned snapshots without copying them — the engine
  /// path, which snapshots under its own lock and hands the copies
  /// over. Both pointers must be non-null and share a dictionary; the
  /// snapshots must not be mutated afterwards.
  static Result<EvolutionContext> Build(
      std::shared_ptr<const rdf::KnowledgeBase> before,
      std::shared_ptr<const rdf::KnowledgeBase> after,
      ContextOptions options = {}, ThreadPool* pool = nullptr);

  /// Assembles a context from prebuilt per-version artefact bundles
  /// (the ArtefactCache fast path): only the pair-level delta work
  /// runs; views, graphs and betweenness cells are adopted as-is.
  /// Both bundles must be fully populated, share a dictionary, and
  /// have been built with equivalent ContextOptions.
  static Result<EvolutionContext> Build(VersionArtefacts before,
                                        VersionArtefacts after,
                                        ContextOptions options = {});

  /// The incremental-refresh form: as above, but adopts an
  /// already-derived low-level delta (O(|δ|) from the commit's
  /// ChangeSet instead of an O(T) store diff) and, when `advance_from`
  /// is non-null, advances the delta index from the preceding pair's
  /// index instead of building it cold. Observationally identical to
  /// the plain bundle overload — `advance_from` must be the index of a
  /// pair whose after-version is this pair's before-version.
  static Result<EvolutionContext> Build(VersionArtefacts before,
                                        VersionArtefacts after,
                                        delta::LowLevelDelta delta,
                                        const delta::DeltaIndex* advance_from,
                                        ContextOptions options = {});

  /// Builds a context for versions (v1, v2) of `vkb`.
  static Result<EvolutionContext> FromVersions(
      const version::VersionedKnowledgeBase& vkb, version::VersionId v1,
      version::VersionId v2, ContextOptions options = {},
      ThreadPool* pool = nullptr);

  const rdf::KnowledgeBase& before() const { return *before_; }
  const rdf::KnowledgeBase& after() const { return *after_; }
  const rdf::Vocabulary& vocabulary() const { return before_->vocabulary(); }

  const schema::SchemaView& view_before() const { return *view_before_; }
  const schema::SchemaView& view_after() const { return *view_after_; }

  const delta::LowLevelDelta& low_level_delta() const { return delta_; }
  const delta::DeltaIndex& delta_index() const { return delta_index_; }

  /// Union class universe (sorted); betweenness_before()/_after()
  /// index by it.
  const std::vector<rdf::TermId>& union_classes() const {
    return delta_index_.union_classes();
  }
  const std::vector<rdf::TermId>& union_properties() const {
    return delta_index_.union_properties();
  }

  /// Schema graph of each version over that version's own class set
  /// (node i ↔ view_*().classes()[i]).
  const graph::SchemaGraph& graph_before() const { return *graph_before_; }
  const graph::SchemaGraph& graph_after() const { return *graph_after_; }

  /// Betweenness aligned to union_classes() (0 for classes absent from
  /// the version). Computed on first call, then cached.
  const std::vector<double>& betweenness_before() const;
  const std::vector<double>& betweenness_after() const;

  /// Raw betweenness indexed like graph_before()/graph_after() — the
  /// form to pair with the graphs (bridging, endpoint lookups).
  const std::vector<double>& raw_betweenness_before() const;
  const std::vector<double>& raw_betweenness_after() const;

  const ContextOptions& options() const { return options_; }

 private:
  EvolutionContext() = default;

  /// Lazily-computed union-aligned scatters, shared between copies.
  struct LazyArtefacts {
    std::once_flag before_once;
    std::once_flag after_once;
    std::vector<double> betweenness_before;
    std::vector<double> betweenness_after;
  };

  ContextOptions options_;
  // Snapshots are held by shared_ptr so that contexts remain cheap to
  // copy and valid independent of the VersionedKnowledgeBase cache.
  std::shared_ptr<const rdf::KnowledgeBase> before_;
  std::shared_ptr<const rdf::KnowledgeBase> after_;
  std::shared_ptr<const schema::SchemaView> view_before_;
  std::shared_ptr<const schema::SchemaView> view_after_;
  delta::LowLevelDelta delta_;
  delta::DeltaIndex delta_index_;
  std::shared_ptr<const graph::SchemaGraph> graph_before_;
  std::shared_ptr<const graph::SchemaGraph> graph_after_;
  std::shared_ptr<const LazyBetweenness> raw_before_;
  std::shared_ptr<const LazyBetweenness> raw_after_;
  std::shared_ptr<LazyArtefacts> lazy_;
};

}  // namespace evorec::measures

#endif  // EVOREC_MEASURES_MEASURE_CONTEXT_H_
