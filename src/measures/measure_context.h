#ifndef EVOREC_MEASURES_MEASURE_CONTEXT_H_
#define EVOREC_MEASURES_MEASURE_CONTEXT_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "common/random.h"
#include "common/result.h"
#include "delta/delta_index.h"
#include "delta/low_level_delta.h"
#include "graph/schema_graph.h"
#include "rdf/knowledge_base.h"
#include "schema/schema_view.h"
#include "version/versioned_kb.h"

namespace evorec::measures {

/// How structural centrality is computed inside a context.
enum class BetweennessMode {
  kExact,    ///< Brandes over all sources.
  kSampled,  ///< Pivot-sampled approximation (see pivots).
};

/// Options for EvolutionContext construction.
struct ContextOptions {
  BetweennessMode betweenness_mode = BetweennessMode::kExact;
  /// Number of pivots when betweenness_mode == kSampled.
  size_t betweenness_pivots = 64;
  /// Seed for the sampling RNG (determinism).
  uint64_t seed = 1;

  /// Equivalent options produce equivalent contexts — the equality the
  /// engine's context cache keys on. Sampling parameters only matter
  /// in kSampled mode.
  friend bool operator==(const ContextOptions& a, const ContextOptions& b) {
    if (a.betweenness_mode != b.betweenness_mode) return false;
    if (a.betweenness_mode == BetweennessMode::kExact) return true;
    return a.betweenness_pivots == b.betweenness_pivots && a.seed == b.seed;
  }
};

/// Stable 64-bit fingerprint of `options` consistent with operator==.
uint64_t ContextOptionsFingerprint(const ContextOptions& options);

/// Everything an evolution measure needs about one version pair
/// (V1 → V2), computed once and shared by all measures:
/// both snapshots, their schema views, the low-level delta and its
/// index, index-aligned schema graphs over the union class universe,
/// and cached betweenness vectors for both versions.
///
/// Contexts are immutable after Build and cheap to pass by const
/// reference; expensive artefacts (betweenness) are computed lazily on
/// first access. The lazy computation is thread-safe (std::call_once),
/// so one context can be shared by measures evaluating in parallel;
/// copies of a context share the same lazy cache.
class EvolutionContext {
 public:
  /// Builds a context from two snapshots that share a dictionary.
  static Result<EvolutionContext> Build(const rdf::KnowledgeBase& before,
                                        const rdf::KnowledgeBase& after,
                                        ContextOptions options = {});

  /// Adopts already-owned snapshots without copying them — the engine
  /// path, which snapshots under its own lock and hands the copies
  /// over. Both pointers must be non-null and share a dictionary; the
  /// snapshots must not be mutated afterwards.
  static Result<EvolutionContext> Build(
      std::shared_ptr<const rdf::KnowledgeBase> before,
      std::shared_ptr<const rdf::KnowledgeBase> after,
      ContextOptions options = {});

  /// Builds a context for versions (v1, v2) of `vkb`.
  static Result<EvolutionContext> FromVersions(
      const version::VersionedKnowledgeBase& vkb, version::VersionId v1,
      version::VersionId v2, ContextOptions options = {});

  const rdf::KnowledgeBase& before() const { return *before_; }
  const rdf::KnowledgeBase& after() const { return *after_; }
  const rdf::Vocabulary& vocabulary() const { return before_->vocabulary(); }

  const schema::SchemaView& view_before() const { return view_before_; }
  const schema::SchemaView& view_after() const { return view_after_; }

  const delta::LowLevelDelta& low_level_delta() const { return delta_; }
  const delta::DeltaIndex& delta_index() const { return delta_index_; }

  /// Union class universe (sorted); node i of both schema graphs is
  /// classes()[i].
  const std::vector<rdf::TermId>& union_classes() const {
    return delta_index_.union_classes();
  }
  const std::vector<rdf::TermId>& union_properties() const {
    return delta_index_.union_properties();
  }

  const graph::SchemaGraph& graph_before() const { return graph_before_; }
  const graph::SchemaGraph& graph_after() const { return graph_after_; }

  /// Betweenness per node of graph_before()/graph_after(), per the
  /// configured mode. Computed on first call, then cached.
  const std::vector<double>& betweenness_before() const;
  const std::vector<double>& betweenness_after() const;

  const ContextOptions& options() const { return options_; }

 private:
  EvolutionContext() = default;

  /// Lazily-computed per-context artefacts, shared between copies.
  struct LazyArtefacts {
    std::once_flag before_once;
    std::once_flag after_once;
    std::vector<double> betweenness_before;
    std::vector<double> betweenness_after;
  };

  ContextOptions options_;
  // Snapshots are held by shared_ptr so that contexts remain cheap to
  // copy and valid independent of the VersionedKnowledgeBase cache.
  std::shared_ptr<const rdf::KnowledgeBase> before_;
  std::shared_ptr<const rdf::KnowledgeBase> after_;
  schema::SchemaView view_before_;
  schema::SchemaView view_after_;
  delta::LowLevelDelta delta_;
  delta::DeltaIndex delta_index_;
  graph::SchemaGraph graph_before_;
  graph::SchemaGraph graph_after_;
  std::shared_ptr<LazyArtefacts> lazy_;
};

}  // namespace evorec::measures

#endif  // EVOREC_MEASURES_MEASURE_CONTEXT_H_
