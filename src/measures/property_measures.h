#ifndef EVOREC_MEASURES_PROPERTY_MEASURES_H_
#define EVOREC_MEASURES_PROPERTY_MEASURES_H_

#include <unordered_map>
#include <vector>

#include "measures/measure.h"
#include "measures/registry.h"
#include "schema/schema_view.h"

namespace evorec::measures {

// The paper (§II.d) notes: "Extensions on the above definitions can be
// given, so as to define the corresponding structural or semantic
// importance measures for properties as well." This header provides
// those extensions.

/// Semantic importance of a property in one snapshot: the sum of the
/// relative cardinalities of its class-pair connections, each weighted
/// by the fraction of the property's instance edges the connection
/// carries — the property-side analogue of class centrality.
std::unordered_map<rdf::TermId, double> ComputePropertyImportance(
    const schema::SchemaView& view);

/// Flat-kernel form of ComputePropertyImportance: scores aligned to
/// the sorted property list `universe` (0 for properties without
/// connections or absent from the view). One linear pass over the
/// view's connections into a dense vector; the map form wraps this.
std::vector<double> ComputePropertyImportanceDense(
    const schema::SchemaView& view, const std::vector<rdf::TermId>& universe);

/// Importance-shift measure on property semantic importance:
/// |PI_{V2}(p) − PI_{V1}(p)| per property. Captures how the evolution
/// redistributed data across properties (e.g. a property that used to
/// carry most connections between two hub classes losing its role).
class PropertyCardinalityShiftMeasure final : public EvolutionMeasure {
 public:
  PropertyCardinalityShiftMeasure();

  const MeasureInfo& info() const override { return info_; }
  Result<MeasureReport> Compute(const EvolutionContext& ctx) const override;

 private:
  MeasureInfo info_;
};

/// Structural importance of a property: how central the classes it
/// connects are. Defined as the sum of the betweenness of its declared
/// domain and range classes (aligned to the context's union schema
/// graph); the shift of this value marks properties whose *endpoints*
/// moved in the topology even when the property's own triples did not
/// change.
class PropertyEndpointShiftMeasure final : public EvolutionMeasure {
 public:
  PropertyEndpointShiftMeasure();

  const MeasureInfo& info() const override { return info_; }
  Result<MeasureReport> Compute(const EvolutionContext& ctx) const override;

 private:
  MeasureInfo info_;
};

/// A registry containing the default eight measures plus the property
/// extensions (property_cardinality_shift, property_endpoint_shift)
/// and the direct class-count variant — the "additional evolution
/// measures" pool the paper's processing model is meant to draw from.
MeasureRegistry ExtendedRegistry();

}  // namespace evorec::measures

#endif  // EVOREC_MEASURES_PROPERTY_MEASURES_H_
