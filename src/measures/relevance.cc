#include "measures/relevance.h"

#include <cmath>

#include "measures/centrality.h"

namespace evorec::measures {

std::unordered_map<rdf::TermId, double> ComputeRelevance(
    const schema::SchemaView& view) {
  const std::unordered_map<rdf::TermId, double> centrality =
      ComputeCentrality(view, CentralityDirection::kTotal);

  auto centrality_of = [&](rdf::TermId cls) {
    auto it = centrality.find(cls);
    return it == centrality.end() ? 0.0 : it->second;
  };

  std::unordered_map<rdf::TermId, double> relevance;
  for (rdf::TermId cls : view.classes()) {
    double acc = centrality_of(cls);
    for (rdf::TermId neighbor : view.Neighborhood(cls)) {
      const size_t neighbor_degree = view.Neighborhood(neighbor).size();
      acc += centrality_of(neighbor) /
             (1.0 + static_cast<double>(neighbor_degree));
    }
    const double data_factor =
        std::log2(2.0 + static_cast<double>(view.InstanceCount(cls)));
    relevance[cls] = acc * data_factor;
  }
  return relevance;
}

RelevanceShiftMeasure::RelevanceShiftMeasure() {
  info_.name = "relevance_shift";
  info_.description =
      "absolute change of neighborhood-extended semantic relevance "
      "between the two versions";
  info_.category = MeasureCategory::kSemantic;
  info_.scope = MeasureScope::kClass;
}

Result<MeasureReport> RelevanceShiftMeasure::Compute(
    const EvolutionContext& ctx) const {
  const auto before = ComputeRelevance(ctx.view_before());
  const auto after = ComputeRelevance(ctx.view_after());
  MeasureReport report;
  for (rdf::TermId cls : ctx.union_classes()) {
    auto b = before.find(cls);
    auto a = after.find(cls);
    const double vb = b == before.end() ? 0.0 : b->second;
    const double va = a == after.end() ? 0.0 : a->second;
    report.Add(cls, std::abs(va - vb));
  }
  return report;
}

}  // namespace evorec::measures
