#ifndef EVOREC_MEASURES_REGISTRY_H_
#define EVOREC_MEASURES_REGISTRY_H_

#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "measures/measure.h"

namespace evorec::measures {

/// A registry of evolution-measure factories. The recommender draws
/// its candidate pool from a registry; applications can register
/// custom measures next to the built-in ones.
class MeasureRegistry {
 public:
  using Factory = std::function<std::unique_ptr<EvolutionMeasure>()>;

  MeasureRegistry() = default;

  /// Registers `factory` under the name its product reports. Fails on
  /// duplicate names.
  Status Register(Factory factory);

  /// Instantiates the measure registered as `name`.
  Result<std::unique_ptr<EvolutionMeasure>> Create(
      std::string_view name) const;

  /// Instantiates every registered measure (registration order).
  std::vector<std::unique_ptr<EvolutionMeasure>> CreateAll() const;

  /// Metadata of every registered measure (registration order).
  std::vector<MeasureInfo> List() const;

  size_t size() const { return entries_.size(); }

 private:
  struct Entry {
    MeasureInfo info;
    Factory factory;
  };
  std::vector<Entry> entries_;
};

/// A registry pre-loaded with the paper's eight exemplar measures:
///   count      — class_change_count, property_change_count,
///                neighborhood_change_count          (§II.a, §II.b)
///   structural — betweenness_shift, bridging_shift   (§II.c)
///   semantic   — in_centrality_shift, out_centrality_shift,
///                relevance_shift                     (§II.d)
MeasureRegistry DefaultRegistry();

}  // namespace evorec::measures

#endif  // EVOREC_MEASURES_REGISTRY_H_
