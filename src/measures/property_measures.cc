#include "measures/property_measures.h"

#include <cmath>

#include "measures/centrality.h"
#include "measures/change_count.h"
#include "measures/registry.h"

namespace evorec::measures {

std::unordered_map<rdf::TermId, double> ComputePropertyImportance(
    const schema::SchemaView& view) {
  std::unordered_map<rdf::TermId, double> importance;
  for (rdf::TermId property : view.properties()) {
    importance[property] = 0.0;
  }
  std::unordered_map<rdf::TermId, size_t> property_totals;
  for (const schema::PropertyConnection& conn : view.connections()) {
    property_totals[conn.property] += conn.instance_count;
  }
  for (const schema::PropertyConnection& conn : view.connections()) {
    const double rc = RelativeCardinality(view, conn.property,
                                          conn.classes.from, conn.classes.to);
    if (rc <= 0.0) continue;
    const size_t total = property_totals[conn.property];
    const double weight =
        total == 0 ? 0.0
                   : static_cast<double>(conn.instance_count) /
                         static_cast<double>(total);
    importance[conn.property] += rc * weight;
  }
  return importance;
}

PropertyCardinalityShiftMeasure::PropertyCardinalityShiftMeasure() {
  info_.name = "property_cardinality_shift";
  info_.description =
      "absolute change of a property's summed weighted relative "
      "cardinalities between the two versions";
  info_.category = MeasureCategory::kSemantic;
  info_.scope = MeasureScope::kProperty;
}

Result<MeasureReport> PropertyCardinalityShiftMeasure::Compute(
    const EvolutionContext& ctx) const {
  const auto before = ComputePropertyImportance(ctx.view_before());
  const auto after = ComputePropertyImportance(ctx.view_after());
  MeasureReport report;
  for (rdf::TermId property : ctx.union_properties()) {
    auto b = before.find(property);
    auto a = after.find(property);
    const double vb = b == before.end() ? 0.0 : b->second;
    const double va = a == after.end() ? 0.0 : a->second;
    report.Add(property, std::abs(va - vb));
  }
  return report;
}

PropertyEndpointShiftMeasure::PropertyEndpointShiftMeasure() {
  info_.name = "property_endpoint_shift";
  info_.description =
      "absolute change of the betweenness of a property's domain/range "
      "classes between the two versions";
  info_.category = MeasureCategory::kStructural;
  info_.scope = MeasureScope::kProperty;
}

namespace {

double EndpointBetweenness(const schema::SchemaView& view,
                           const graph::SchemaGraph& sg,
                           const std::vector<double>& betweenness,
                           rdf::TermId property) {
  double total = 0.0;
  for (rdf::TermId domain : view.DomainsOf(property)) {
    const graph::NodeId node = sg.NodeOf(domain);
    if (node != UINT32_MAX) total += betweenness[node];
  }
  for (rdf::TermId range : view.RangesOf(property)) {
    const graph::NodeId node = sg.NodeOf(range);
    if (node != UINT32_MAX) total += betweenness[node];
  }
  return total;
}

}  // namespace

Result<MeasureReport> PropertyEndpointShiftMeasure::Compute(
    const EvolutionContext& ctx) const {
  MeasureReport report;
  for (rdf::TermId property : ctx.union_properties()) {
    const double before =
        EndpointBetweenness(ctx.view_before(), ctx.graph_before(),
                            ctx.betweenness_before(), property);
    const double after =
        EndpointBetweenness(ctx.view_after(), ctx.graph_after(),
                            ctx.betweenness_after(), property);
    report.Add(property, std::abs(after - before));
  }
  return report;
}

MeasureRegistry ExtendedRegistry() {
  MeasureRegistry registry = DefaultRegistry();
  (void)registry.Register(
      [] { return std::make_unique<PropertyCardinalityShiftMeasure>(); });
  (void)registry.Register(
      [] { return std::make_unique<PropertyEndpointShiftMeasure>(); });
  (void)registry.Register([] {
    return std::make_unique<ClassChangeCountMeasure>(/*extended=*/false);
  });
  return registry;
}

}  // namespace evorec::measures
