#include "measures/property_measures.h"

#include <cmath>

#include "measures/centrality.h"
#include "measures/change_count.h"
#include "measures/registry.h"

namespace evorec::measures {

std::vector<double> ComputePropertyImportanceDense(
    const schema::SchemaView& view,
    const std::vector<rdf::TermId>& universe) {
  std::vector<double> importance(universe.size(), 0.0);
  const std::vector<rdf::TermId>& properties = view.properties();
  const std::vector<size_t> property_totals = PropertyInstanceTotals(view);
  for (const schema::PropertyConnection& conn : view.connections()) {
    const size_t p = rdf::SortedIndexOf(properties, conn.property);
    const double contribution = ConnectionContribution(
        view, conn, p == rdf::kNotInUniverse ? 0 : property_totals[p]);
    if (contribution <= 0.0) continue;
    const size_t i = rdf::SortedIndexOf(universe, conn.property);
    if (i != rdf::kNotInUniverse) importance[i] += contribution;
  }
  return importance;
}

std::unordered_map<rdf::TermId, double> ComputePropertyImportance(
    const schema::SchemaView& view) {
  const std::vector<rdf::TermId>& properties = view.properties();
  const std::vector<double> dense =
      ComputePropertyImportanceDense(view, properties);
  std::unordered_map<rdf::TermId, double> importance;
  importance.reserve(properties.size());
  for (size_t i = 0; i < properties.size(); ++i) {
    importance[properties[i]] = dense[i];
  }
  return importance;
}

PropertyCardinalityShiftMeasure::PropertyCardinalityShiftMeasure() {
  info_.name = "property_cardinality_shift";
  info_.description =
      "absolute change of a property's summed weighted relative "
      "cardinalities between the two versions";
  info_.category = MeasureCategory::kSemantic;
  info_.scope = MeasureScope::kProperty;
}

Result<MeasureReport> PropertyCardinalityShiftMeasure::Compute(
    const EvolutionContext& ctx) const {
  const std::vector<rdf::TermId>& properties = ctx.union_properties();
  const std::vector<double> before =
      ComputePropertyImportanceDense(ctx.view_before(), properties);
  const std::vector<double> after =
      ComputePropertyImportanceDense(ctx.view_after(), properties);
  std::vector<ScoredTerm> scores(properties.size());
  for (size_t i = 0; i < properties.size(); ++i) {
    scores[i] = {properties[i], std::abs(after[i] - before[i])};
  }
  return MeasureReport(std::move(scores));
}

PropertyEndpointShiftMeasure::PropertyEndpointShiftMeasure() {
  info_.name = "property_endpoint_shift";
  info_.description =
      "absolute change of the betweenness of a property's domain/range "
      "classes between the two versions";
  info_.category = MeasureCategory::kStructural;
  info_.scope = MeasureScope::kProperty;
}

namespace {

double EndpointBetweenness(const schema::SchemaView& view,
                           const graph::SchemaGraph& sg,
                           const std::vector<double>& betweenness,
                           rdf::TermId property) {
  double total = 0.0;
  for (rdf::TermId domain : view.DomainsOf(property)) {
    const graph::NodeId node = sg.NodeOf(domain);
    if (node != UINT32_MAX) total += betweenness[node];
  }
  for (rdf::TermId range : view.RangesOf(property)) {
    const graph::NodeId node = sg.NodeOf(range);
    if (node != UINT32_MAX) total += betweenness[node];
  }
  return total;
}

}  // namespace

Result<MeasureReport> PropertyEndpointShiftMeasure::Compute(
    const EvolutionContext& ctx) const {
  MeasureReport report;
  for (rdf::TermId property : ctx.union_properties()) {
    const double before =
        EndpointBetweenness(ctx.view_before(), ctx.graph_before(),
                            ctx.raw_betweenness_before(), property);
    const double after =
        EndpointBetweenness(ctx.view_after(), ctx.graph_after(),
                            ctx.raw_betweenness_after(), property);
    report.Add(property, std::abs(after - before));
  }
  return report;
}

MeasureRegistry ExtendedRegistry() {
  MeasureRegistry registry = DefaultRegistry();
  (void)registry.Register(
      [] { return std::make_unique<PropertyCardinalityShiftMeasure>(); });
  (void)registry.Register(
      [] { return std::make_unique<PropertyEndpointShiftMeasure>(); });
  (void)registry.Register([] {
    return std::make_unique<ClassChangeCountMeasure>(/*extended=*/false);
  });
  return registry;
}

}  // namespace evorec::measures
