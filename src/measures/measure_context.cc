#include "measures/measure_context.h"

#include "common/hash.h"
#include "graph/betweenness.h"

namespace evorec::measures {

uint64_t ContextOptionsFingerprint(const ContextOptions& options) {
  size_t seed = 0;
  HashCombine(seed, static_cast<int>(options.betweenness_mode));
  if (options.betweenness_mode == BetweennessMode::kSampled) {
    HashCombine(seed, options.betweenness_pivots);
    HashCombine(seed, options.seed);
  }
  return static_cast<uint64_t>(seed);
}

Result<EvolutionContext> EvolutionContext::Build(
    const rdf::KnowledgeBase& before, const rdf::KnowledgeBase& after,
    ContextOptions options) {
  return Build(std::make_shared<const rdf::KnowledgeBase>(before),
               std::make_shared<const rdf::KnowledgeBase>(after), options);
}

Result<EvolutionContext> EvolutionContext::Build(
    std::shared_ptr<const rdf::KnowledgeBase> before,
    std::shared_ptr<const rdf::KnowledgeBase> after, ContextOptions options) {
  if (before == nullptr || after == nullptr) {
    return InvalidArgumentError("EvolutionContext requires two snapshots");
  }
  if (before->shared_dictionary() != after->shared_dictionary()) {
    return InvalidArgumentError(
        "EvolutionContext requires snapshots sharing one dictionary");
  }
  EvolutionContext ctx;
  ctx.options_ = options;
  ctx.before_ = std::move(before);
  ctx.after_ = std::move(after);
  ctx.view_before_ = schema::SchemaView::Build(*ctx.before_);
  ctx.view_after_ = schema::SchemaView::Build(*ctx.after_);
  ctx.delta_ = delta::ComputeLowLevelDelta(*ctx.before_, *ctx.after_);
  ctx.delta_index_ = delta::DeltaIndex::Build(
      ctx.delta_, ctx.view_before_, ctx.view_after_,
      ctx.before_->vocabulary());
  ctx.graph_before_ = graph::SchemaGraph::Build(
      ctx.view_before_, ctx.delta_index_.union_classes());
  ctx.graph_after_ = graph::SchemaGraph::Build(
      ctx.view_after_, ctx.delta_index_.union_classes());
  ctx.lazy_ = std::make_shared<LazyArtefacts>();
  return ctx;
}

Result<EvolutionContext> EvolutionContext::FromVersions(
    const version::VersionedKnowledgeBase& vkb, version::VersionId v1,
    version::VersionId v2, ContextOptions options) {
  auto before = vkb.Snapshot(v1);
  if (!before.ok()) return before.status();
  auto after = vkb.Snapshot(v2);
  if (!after.ok()) return after.status();
  return Build(**before, **after, options);
}

namespace {

std::vector<double> ComputeBetweenness(const graph::Graph& g,
                                       const ContextOptions& options) {
  if (options.betweenness_mode == BetweennessMode::kExact) {
    return graph::BetweennessExact(g);
  }
  Rng rng(options.seed);
  return graph::BetweennessSampled(g, options.betweenness_pivots, rng);
}

}  // namespace

const std::vector<double>& EvolutionContext::betweenness_before() const {
  std::call_once(lazy_->before_once, [&] {
    lazy_->betweenness_before =
        ComputeBetweenness(graph_before_.graph(), options_);
  });
  return lazy_->betweenness_before;
}

const std::vector<double>& EvolutionContext::betweenness_after() const {
  std::call_once(lazy_->after_once, [&] {
    lazy_->betweenness_after =
        ComputeBetweenness(graph_after_.graph(), options_);
  });
  return lazy_->betweenness_after;
}

}  // namespace evorec::measures
