#include "measures/measure_context.h"

#include "graph/betweenness.h"

namespace evorec::measures {

Result<EvolutionContext> EvolutionContext::Build(
    const rdf::KnowledgeBase& before, const rdf::KnowledgeBase& after,
    ContextOptions options) {
  if (before.shared_dictionary() != after.shared_dictionary()) {
    return InvalidArgumentError(
        "EvolutionContext requires snapshots sharing one dictionary");
  }
  EvolutionContext ctx;
  ctx.options_ = options;
  ctx.before_ = std::make_shared<rdf::KnowledgeBase>(before);
  ctx.after_ = std::make_shared<rdf::KnowledgeBase>(after);
  ctx.view_before_ = schema::SchemaView::Build(*ctx.before_);
  ctx.view_after_ = schema::SchemaView::Build(*ctx.after_);
  ctx.delta_ = delta::ComputeLowLevelDelta(*ctx.before_, *ctx.after_);
  ctx.delta_index_ = delta::DeltaIndex::Build(
      ctx.delta_, ctx.view_before_, ctx.view_after_, before.vocabulary());
  ctx.graph_before_ = graph::SchemaGraph::Build(
      ctx.view_before_, ctx.delta_index_.union_classes());
  ctx.graph_after_ = graph::SchemaGraph::Build(
      ctx.view_after_, ctx.delta_index_.union_classes());
  return ctx;
}

Result<EvolutionContext> EvolutionContext::FromVersions(
    const version::VersionedKnowledgeBase& vkb, version::VersionId v1,
    version::VersionId v2, ContextOptions options) {
  auto before = vkb.Snapshot(v1);
  if (!before.ok()) return before.status();
  auto after = vkb.Snapshot(v2);
  if (!after.ok()) return after.status();
  return Build(**before, **after, options);
}

namespace {

std::vector<double> ComputeBetweenness(const graph::Graph& g,
                                       const ContextOptions& options) {
  if (options.betweenness_mode == BetweennessMode::kExact) {
    return graph::BetweennessExact(g);
  }
  Rng rng(options.seed);
  return graph::BetweennessSampled(g, options.betweenness_pivots, rng);
}

}  // namespace

const std::vector<double>& EvolutionContext::betweenness_before() const {
  if (!betweenness_before_.has_value()) {
    betweenness_before_ = ComputeBetweenness(graph_before_.graph(), options_);
  }
  return *betweenness_before_;
}

const std::vector<double>& EvolutionContext::betweenness_after() const {
  if (!betweenness_after_.has_value()) {
    betweenness_after_ = ComputeBetweenness(graph_after_.graph(), options_);
  }
  return *betweenness_after_;
}

}  // namespace evorec::measures
