#include "measures/measure_context.h"

#include <utility>

#include "common/hash.h"
#include "graph/betweenness.h"

namespace evorec::measures {

uint64_t ContextOptionsFingerprint(const ContextOptions& options) {
  size_t seed = 0;
  HashCombine(seed, static_cast<int>(options.betweenness_mode));
  if (options.betweenness_mode == BetweennessMode::kSampled) {
    HashCombine(seed, options.betweenness_pivots);
    HashCombine(seed, options.seed);
  }
  return static_cast<uint64_t>(seed);
}

uint64_t SampledSeedFor(const ContextOptions& options, uint64_t salt) {
  if (salt == 0) return options.seed;
  size_t seed = 0;
  HashCombine(seed, options.seed);
  HashCombine(seed, salt);
  return static_cast<uint64_t>(seed);
}

std::vector<double> ComputeBetweenness(const graph::Graph& g,
                                       const ContextOptions& options,
                                       ThreadPool* pool) {
  if (options.betweenness_mode == BetweennessMode::kExact) {
    return graph::BetweennessExact(g, pool);
  }
  Rng rng(options.seed);
  return graph::BetweennessSampled(g, options.betweenness_pivots, rng, pool);
}

LazyBetweenness::LazyBetweenness(
    std::shared_ptr<const graph::SchemaGraph> graph, ContextOptions options,
    ThreadPool* pool, std::function<void()> on_compute, uint64_t sampling_salt)
    : graph_(std::move(graph)),
      options_(options),
      pool_(pool),
      on_compute_(std::move(on_compute)),
      sampling_salt_(sampling_salt) {}

LazyBetweenness::LazyBetweenness(
    std::shared_ptr<const graph::SchemaGraph> graph, ContextOptions options,
    graph::BetweennessPartials partials)
    : graph_(std::move(graph)), options_(options) {
  partials_ = std::move(partials);
  ready_.store(true, std::memory_order_release);
}

const std::vector<double>& LazyBetweenness::Get() const {
  std::call_once(once_, [&] {
    // Pre-seeded by the advance path — nothing to compute.
    if (ready_.load(std::memory_order_acquire)) return;
    if (on_compute_) on_compute_();
    if (options_.betweenness_mode == BetweennessMode::kExact) {
      // Capture the per-chunk partials so a later commit can advance
      // this cell instead of starting over.
      partials_ = graph::BetweennessExactWithPartials(graph_->graph(), pool_);
    } else {
      ContextOptions salted = options_;
      salted.seed = SampledSeedFor(options_, sampling_salt_);
      partials_.scores = ComputeBetweenness(graph_->graph(), salted, pool_);
    }
    ready_.store(true, std::memory_order_release);
  });
  return partials_.scores;
}

const graph::BetweennessPartials* LazyBetweenness::Partials() const {
  if (options_.betweenness_mode != BetweennessMode::kExact) return nullptr;
  if (!ready_.load(std::memory_order_acquire)) return nullptr;
  return &partials_;
}

VersionArtefacts MakeVersionArtefacts(
    std::shared_ptr<const rdf::KnowledgeBase> snapshot,
    const ContextOptions& options, ThreadPool* pool, uint64_t sampling_salt) {
  VersionArtefacts artefacts;
  artefacts.snapshot = std::move(snapshot);
  artefacts.view = std::make_shared<const schema::SchemaView>(
      schema::SchemaView::Build(*artefacts.snapshot));
  artefacts.graph = std::make_shared<const graph::SchemaGraph>(
      graph::SchemaGraph::Build(*artefacts.view,
                                artefacts.view->classes()));
  artefacts.betweenness = std::make_shared<const LazyBetweenness>(
      artefacts.graph, options, pool, nullptr, sampling_salt);
  return artefacts;
}

Result<EvolutionContext> EvolutionContext::Build(
    const rdf::KnowledgeBase& before, const rdf::KnowledgeBase& after,
    ContextOptions options, ThreadPool* pool) {
  return Build(std::make_shared<const rdf::KnowledgeBase>(before),
               std::make_shared<const rdf::KnowledgeBase>(after), options,
               pool);
}

Result<EvolutionContext> EvolutionContext::Build(
    std::shared_ptr<const rdf::KnowledgeBase> before,
    std::shared_ptr<const rdf::KnowledgeBase> after, ContextOptions options,
    ThreadPool* pool) {
  if (before == nullptr || after == nullptr) {
    return InvalidArgumentError("EvolutionContext requires two snapshots");
  }
  return Build(MakeVersionArtefacts(std::move(before), options, pool),
               MakeVersionArtefacts(std::move(after), options, pool),
               options);
}

Result<EvolutionContext> EvolutionContext::Build(VersionArtefacts before,
                                                 VersionArtefacts after,
                                                 ContextOptions options) {
  if (before.snapshot == nullptr || after.snapshot == nullptr) {
    return InvalidArgumentError(
        "EvolutionContext requires fully populated artefact bundles");
  }
  delta::LowLevelDelta delta =
      delta::ComputeLowLevelDelta(*before.snapshot, *after.snapshot);
  return Build(std::move(before), std::move(after), std::move(delta),
               /*advance_from=*/nullptr, options);
}

Result<EvolutionContext> EvolutionContext::Build(
    VersionArtefacts before, VersionArtefacts after,
    delta::LowLevelDelta delta, const delta::DeltaIndex* advance_from,
    ContextOptions options) {
  if (before.snapshot == nullptr || before.view == nullptr ||
      before.graph == nullptr || before.betweenness == nullptr ||
      after.snapshot == nullptr || after.view == nullptr ||
      after.graph == nullptr || after.betweenness == nullptr) {
    return InvalidArgumentError(
        "EvolutionContext requires fully populated artefact bundles");
  }
  if (before.snapshot->shared_dictionary() !=
      after.snapshot->shared_dictionary()) {
    return InvalidArgumentError(
        "EvolutionContext requires snapshots sharing one dictionary");
  }
  EvolutionContext ctx;
  ctx.options_ = options;
  ctx.before_ = std::move(before.snapshot);
  ctx.after_ = std::move(after.snapshot);
  ctx.view_before_ = std::move(before.view);
  ctx.view_after_ = std::move(after.view);
  ctx.graph_before_ = std::move(before.graph);
  ctx.graph_after_ = std::move(after.graph);
  ctx.raw_before_ = std::move(before.betweenness);
  ctx.raw_after_ = std::move(after.betweenness);
  ctx.delta_ = std::move(delta);
  // Deferred-neighborhood build: a context whose measures never touch
  // neighborhoods (e.g. a betweenness-only chain walk) skips the
  // per-class neighborhood unions entirely.
  ctx.delta_index_ =
      advance_from != nullptr
          ? delta::DeltaIndex::Advance(*advance_from, ctx.delta_,
                                       ctx.view_before_, ctx.view_after_,
                                       ctx.before_->vocabulary())
          : delta::DeltaIndex::Build(ctx.delta_, ctx.view_before_,
                                     ctx.view_after_,
                                     ctx.before_->vocabulary());
  ctx.lazy_ = std::make_shared<LazyArtefacts>();
  return ctx;
}

Result<EvolutionContext> EvolutionContext::FromVersions(
    const version::VersionedKnowledgeBase& vkb, version::VersionId v1,
    version::VersionId v2, ContextOptions options, ThreadPool* pool) {
  auto before = vkb.Snapshot(v1);
  if (!before.ok()) return before.status();
  auto after = vkb.Snapshot(v2);
  if (!after.ok()) return after.status();
  return Build(**before, **after, options, pool);
}

std::vector<double> ScatterToUnion(
    const std::vector<rdf::TermId>& own_classes,
    const std::vector<double>& own_scores,
    const std::vector<rdf::TermId>& union_classes) {
  std::vector<double> out(union_classes.size(), 0.0);
  size_t j = 0;
  for (size_t i = 0; i < union_classes.size(); ++i) {
    while (j < own_classes.size() && own_classes[j] < union_classes[i]) ++j;
    if (j < own_classes.size() && own_classes[j] == union_classes[i]) {
      out[i] = own_scores[j];
    }
  }
  return out;
}

const std::vector<double>& EvolutionContext::betweenness_before() const {
  std::call_once(lazy_->before_once, [&] {
    lazy_->betweenness_before = ScatterToUnion(
        graph_before_->classes(), raw_before_->Get(), union_classes());
  });
  return lazy_->betweenness_before;
}

const std::vector<double>& EvolutionContext::betweenness_after() const {
  std::call_once(lazy_->after_once, [&] {
    lazy_->betweenness_after = ScatterToUnion(
        graph_after_->classes(), raw_after_->Get(), union_classes());
  });
  return lazy_->betweenness_after;
}

const std::vector<double>& EvolutionContext::raw_betweenness_before() const {
  return raw_before_->Get();
}

const std::vector<double>& EvolutionContext::raw_betweenness_after() const {
  return raw_after_->Get();
}

}  // namespace evorec::measures
