#include "measures/neighborhood_change.h"

namespace evorec::measures {

NeighborhoodChangeCountMeasure::NeighborhoodChangeCountMeasure() {
  info_.name = "neighborhood_change_count";
  info_.description =
      "sum of change counts over each class's subsumption- and "
      "property-neighborhood";
  info_.category = MeasureCategory::kCount;
  info_.scope = MeasureScope::kClass;
}

Result<MeasureReport> NeighborhoodChangeCountMeasure::Compute(
    const EvolutionContext& ctx) const {
  const delta::DeltaIndex& index = ctx.delta_index();
  const std::vector<rdf::TermId>& classes = ctx.union_classes();
  std::vector<ScoredTerm> scores(classes.size());
  for (size_t i = 0; i < classes.size(); ++i) {
    scores[i] = {classes[i],
                 static_cast<double>(index.NeighborhoodChangesAt(i))};
  }
  return MeasureReport(std::move(scores));
}

}  // namespace evorec::measures
