#include "measures/neighborhood_change.h"

namespace evorec::measures {

NeighborhoodChangeCountMeasure::NeighborhoodChangeCountMeasure() {
  info_.name = "neighborhood_change_count";
  info_.description =
      "sum of change counts over each class's subsumption- and "
      "property-neighborhood";
  info_.category = MeasureCategory::kCount;
  info_.scope = MeasureScope::kClass;
}

Result<MeasureReport> NeighborhoodChangeCountMeasure::Compute(
    const EvolutionContext& ctx) const {
  MeasureReport report;
  const delta::DeltaIndex& index = ctx.delta_index();
  for (rdf::TermId cls : ctx.union_classes()) {
    report.Add(cls, static_cast<double>(index.NeighborhoodChanges(cls)));
  }
  return report;
}

}  // namespace evorec::measures
