#include "measures/structural_shift.h"

#include <cmath>

#include "graph/bridging.h"

namespace evorec::measures {

BetweennessShiftMeasure::BetweennessShiftMeasure() {
  info_.name = "betweenness_shift";
  info_.description =
      "absolute change of shortest-path betweenness centrality between "
      "the two versions";
  info_.category = MeasureCategory::kStructural;
  info_.scope = MeasureScope::kClass;
}

Result<MeasureReport> BetweennessShiftMeasure::Compute(
    const EvolutionContext& ctx) const {
  const std::vector<double>& before = ctx.betweenness_before();
  const std::vector<double>& after = ctx.betweenness_after();
  const std::vector<rdf::TermId>& classes = ctx.union_classes();
  MeasureReport report;
  for (size_t i = 0; i < classes.size(); ++i) {
    report.Add(classes[i], std::abs(after[i] - before[i]));
  }
  return report;
}

BridgingShiftMeasure::BridgingShiftMeasure() {
  info_.name = "bridging_shift";
  info_.description =
      "absolute change of bridging centrality (betweenness x bridging "
      "coefficient) between the two versions";
  info_.category = MeasureCategory::kStructural;
  info_.scope = MeasureScope::kClass;
}

Result<MeasureReport> BridgingShiftMeasure::Compute(
    const EvolutionContext& ctx) const {
  const std::vector<double> before = graph::BridgingCentrality(
      ctx.graph_before().graph(), ctx.betweenness_before());
  const std::vector<double> after = graph::BridgingCentrality(
      ctx.graph_after().graph(), ctx.betweenness_after());
  const std::vector<rdf::TermId>& classes = ctx.union_classes();
  MeasureReport report;
  for (size_t i = 0; i < classes.size(); ++i) {
    report.Add(classes[i], std::abs(after[i] - before[i]));
  }
  return report;
}

}  // namespace evorec::measures
