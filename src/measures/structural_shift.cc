#include "measures/structural_shift.h"

#include <cmath>

#include "graph/bridging.h"

namespace evorec::measures {

BetweennessShiftMeasure::BetweennessShiftMeasure() {
  info_.name = "betweenness_shift";
  info_.description =
      "absolute change of shortest-path betweenness centrality between "
      "the two versions";
  info_.category = MeasureCategory::kStructural;
  info_.scope = MeasureScope::kClass;
}

Result<MeasureReport> BetweennessShiftMeasure::Compute(
    const EvolutionContext& ctx) const {
  const std::vector<double>& before = ctx.betweenness_before();
  const std::vector<double>& after = ctx.betweenness_after();
  const std::vector<rdf::TermId>& classes = ctx.union_classes();
  std::vector<ScoredTerm> scores(classes.size());
  for (size_t i = 0; i < classes.size(); ++i) {
    scores[i] = {classes[i], std::abs(after[i] - before[i])};
  }
  return MeasureReport(std::move(scores));
}

BridgingShiftMeasure::BridgingShiftMeasure() {
  info_.name = "bridging_shift";
  info_.description =
      "absolute change of bridging centrality (betweenness x bridging "
      "coefficient) between the two versions";
  info_.category = MeasureCategory::kStructural;
  info_.scope = MeasureScope::kClass;
}

namespace {

// Bridging centrality of one version, scattered to the union universe
// (0 for classes absent from the version — they would be isolated
// nodes, which bridge nothing).
std::vector<double> UnionBridging(const graph::SchemaGraph& sg,
                                  const std::vector<double>& raw_betweenness,
                                  const std::vector<rdf::TermId>& universe) {
  return ScatterToUnion(
      sg.classes(), graph::BridgingCentrality(sg.graph(), raw_betweenness),
      universe);
}

}  // namespace

Result<MeasureReport> BridgingShiftMeasure::Compute(
    const EvolutionContext& ctx) const {
  const std::vector<rdf::TermId>& classes = ctx.union_classes();
  const std::vector<double> before = UnionBridging(
      ctx.graph_before(), ctx.raw_betweenness_before(), classes);
  const std::vector<double> after = UnionBridging(
      ctx.graph_after(), ctx.raw_betweenness_after(), classes);
  std::vector<ScoredTerm> scores(classes.size());
  for (size_t i = 0; i < classes.size(); ++i) {
    scores[i] = {classes[i], std::abs(after[i] - before[i])};
  }
  return MeasureReport(std::move(scores));
}

}  // namespace evorec::measures
