#ifndef EVOREC_MEASURES_TIMELINE_H_
#define EVOREC_MEASURES_TIMELINE_H_

#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "measures/measure.h"
#include "version/versioned_kb.h"

namespace evorec::measures {

/// Per-term time series of one measure across consecutive version
/// transitions — the substrate for "observing change trends" (paper
/// §I): instead of one delta, the human sees how the intensity of
/// change around a class develops over the KB's history.
class EvolutionTimeline {
 public:
  /// One point of a term's series.
  struct TrendStats {
    rdf::TermId term = rdf::kAnyTerm;
    /// Least-squares slope of the series (per transition).
    double slope = 0.0;
    /// Mean score across transitions.
    double mean = 0.0;
    /// Burstiness: max / mean (1 for flat series, large for spikes);
    /// 0 when the series is all-zero.
    double burstiness = 0.0;
    /// Index of the transition with the highest score.
    size_t peak_transition = 0;
  };

  /// Computes `measure` over every consecutive pair (v, v+1) of `vkb`
  /// from version `first` to `last` (defaults: full history). Each
  /// transition builds its own EvolutionContext with `options` — the
  /// pair-keyed cold path, which rebuilds every middle version's
  /// artefacts twice. Prefer EvaluationEngine::Timeline, whose
  /// artefact cache builds each version's artefacts exactly once.
  static Result<EvolutionTimeline> Compute(
      const version::VersionedKnowledgeBase& vkb,
      const EvolutionMeasure& measure, version::VersionId first = 0,
      version::VersionId last = UINT32_MAX, ContextOptions options = {});

  /// Assembles a timeline from per-transition reports computed
  /// elsewhere (reports[i] covers transition first+i → first+i+1) —
  /// the engine's chain-walk entry point. Fails on an empty sequence.
  static Result<EvolutionTimeline> FromReports(
      std::vector<MeasureReport> reports);

  /// Number of transitions covered.
  size_t transition_count() const { return reports_.size(); }

  /// The report of transition `i` (0 = first covered pair).
  const MeasureReport& report(size_t i) const { return reports_[i]; }

  /// The score series of `term` across transitions (0 where absent).
  std::vector<double> SeriesOf(rdf::TermId term) const;

  /// Trend statistics of `term`.
  TrendStats TrendOf(rdf::TermId term) const;

  /// Terms ranked by slope (strongest upward trend first).
  std::vector<TrendStats> TopTrending(size_t k) const;

  /// Terms ranked by burstiness (most spiky first; flat-zero series
  /// excluded).
  std::vector<TrendStats> TopBursty(size_t k) const;

  /// All terms that ever scored > 0.
  std::vector<rdf::TermId> ActiveTerms() const;

 private:
  std::vector<MeasureReport> reports_;
  // Union of terms over all reports, sorted.
  std::vector<rdf::TermId> terms_;
};

}  // namespace evorec::measures

#endif  // EVOREC_MEASURES_TIMELINE_H_
