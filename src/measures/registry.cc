#include "measures/registry.h"

#include "measures/centrality.h"
#include "measures/change_count.h"
#include "measures/neighborhood_change.h"
#include "measures/relevance.h"
#include "measures/structural_shift.h"

namespace evorec::measures {

Status MeasureRegistry::Register(Factory factory) {
  std::unique_ptr<EvolutionMeasure> probe = factory();
  if (probe == nullptr) {
    return InvalidArgumentError("measure factory produced nullptr");
  }
  const MeasureInfo info = probe->info();
  for (const Entry& e : entries_) {
    if (e.info.name == info.name) {
      return AlreadyExistsError("measure '" + info.name +
                                "' already registered");
    }
  }
  entries_.push_back({info, std::move(factory)});
  return OkStatus();
}

Result<std::unique_ptr<EvolutionMeasure>> MeasureRegistry::Create(
    std::string_view name) const {
  for (const Entry& e : entries_) {
    if (e.info.name == name) {
      return e.factory();
    }
  }
  return NotFoundError("no measure registered as '" + std::string(name) +
                       "'");
}

std::vector<std::unique_ptr<EvolutionMeasure>> MeasureRegistry::CreateAll()
    const {
  std::vector<std::unique_ptr<EvolutionMeasure>> out;
  out.reserve(entries_.size());
  for (const Entry& e : entries_) {
    out.push_back(e.factory());
  }
  return out;
}

std::vector<MeasureInfo> MeasureRegistry::List() const {
  std::vector<MeasureInfo> out;
  out.reserve(entries_.size());
  for (const Entry& e : entries_) {
    out.push_back(e.info);
  }
  return out;
}

MeasureRegistry DefaultRegistry() {
  MeasureRegistry registry;
  // Registration cannot fail here (names are distinct by
  // construction); statuses are asserted in tests.
  (void)registry.Register(
      [] { return std::make_unique<ClassChangeCountMeasure>(); });
  (void)registry.Register(
      [] { return std::make_unique<PropertyChangeCountMeasure>(); });
  (void)registry.Register(
      [] { return std::make_unique<NeighborhoodChangeCountMeasure>(); });
  (void)registry.Register(
      [] { return std::make_unique<BetweennessShiftMeasure>(); });
  (void)registry.Register(
      [] { return std::make_unique<BridgingShiftMeasure>(); });
  (void)registry.Register([] {
    return std::make_unique<CentralityShiftMeasure>(CentralityDirection::kIn);
  });
  (void)registry.Register([] {
    return std::make_unique<CentralityShiftMeasure>(
        CentralityDirection::kOut);
  });
  (void)registry.Register(
      [] { return std::make_unique<RelevanceShiftMeasure>(); });
  return registry;
}

}  // namespace evorec::measures
