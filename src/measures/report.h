#ifndef EVOREC_MEASURES_REPORT_H_
#define EVOREC_MEASURES_REPORT_H_

#include <cstddef>
#include <vector>

#include "rdf/term.h"

namespace evorec::measures {

/// One scored term within a measure report.
struct ScoredTerm {
  rdf::TermId term = rdf::kAnyTerm;
  double score = 0.0;
};

/// The output of an evolution measure: a score per class/property,
/// where higher means "more intensely affected by the evolution".
/// Reports are the currency of the recommender: relatedness compares
/// them against profiles, diversity compares them against each other.
class MeasureReport {
 public:
  MeasureReport() = default;
  explicit MeasureReport(std::vector<ScoredTerm> scores);

  const std::vector<ScoredTerm>& scores() const { return scores_; }
  bool empty() const { return scores_.empty(); }
  size_t size() const { return scores_.size(); }

  /// Appends one entry (no dedup; callers build reports term-by-term).
  void Add(rdf::TermId term, double score);

  /// Score of `term`; 0 when absent.
  double ScoreOf(rdf::TermId term) const;

  /// Entries sorted by descending score (ties broken by TermId for
  /// determinism).
  MeasureReport Sorted() const;

  /// The k highest-scored entries (sorted descending).
  std::vector<ScoredTerm> TopK(size_t k) const;

  /// The TermIds of the k highest-scored entries.
  std::vector<rdf::TermId> TopKTerms(size_t k) const;

  /// Min-max normalises scores into [0,1]; constant reports normalise
  /// to all-zeros.
  MeasureReport Normalized() const;

  /// Scores aligned to `universe` (0 for absent terms) — the dense
  /// vector form used by rank-correlation utilities.
  std::vector<double> AlignedScores(
      const std::vector<rdf::TermId>& universe) const;

  /// Sum of all scores.
  double TotalScore() const;

 private:
  std::vector<ScoredTerm> scores_;
};

/// Jaccard similarity of the top-k term sets of two reports — the
/// content-based distance core used by the diversity selector
/// (distance = 1 - overlap).
double TopKOverlap(const MeasureReport& a, const MeasureReport& b, size_t k);

}  // namespace evorec::measures

#endif  // EVOREC_MEASURES_REPORT_H_
