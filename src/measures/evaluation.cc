#include "measures/evaluation.h"

#include <chrono>
#include <utility>

namespace evorec::measures {

Result<std::shared_ptr<const MeasureReport>> ReportCache::GetOrCompute(
    const EvolutionMeasure& measure, const EvolutionContext& ctx) {
  const std::string& name = measure.info().name;
  std::promise<Result<SharedReport>> promise;
  std::shared_future<Result<SharedReport>> future;
  {
    std::unique_lock<std::mutex> lock(mu_);
    auto it = entries_.find(name);
    if (it != entries_.end()) {
      std::shared_future<Result<SharedReport>> existing = it->second;
      const bool ready =
          existing.wait_for(std::chrono::seconds(0)) ==
          std::future_status::ready;
      if (ready) {
        ++stats_.hits;
      } else {
        ++stats_.coalesced;
      }
      lock.unlock();
      return existing.get();
    }
    ++stats_.computations;
    future = promise.get_future().share();
    entries_.emplace(name, future);
  }

  // Compute outside the lock: other measures memoize concurrently and
  // same-name requests wait on `future` instead of blocking the map.
  Result<MeasureReport> computed = measure.Compute(ctx);
  if (!computed.ok()) {
    promise.set_value(computed.status());
    std::lock_guard<std::mutex> lock(mu_);
    entries_.erase(name);  // do not cache failures
    return computed.status();
  }
  SharedReport shared =
      std::make_shared<const MeasureReport>(std::move(computed).value());
  promise.set_value(shared);
  return shared;
}

std::shared_ptr<const MeasureReport> ReportCache::Lookup(
    std::string_view name) const {
  std::shared_future<Result<SharedReport>> future;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(std::string(name));
    if (it == entries_.end()) return nullptr;
    future = it->second;
  }
  const Result<SharedReport>& result = future.get();
  return result.ok() ? *result : nullptr;
}

size_t ReportCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t count = 0;
  for (const auto& [name, future] : entries_) {
    (void)name;
    if (future.wait_for(std::chrono::seconds(0)) ==
        std::future_status::ready &&
        future.get().ok()) {
      ++count;
    }
  }
  return count;
}

ReportCacheStats ReportCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

Result<std::vector<std::shared_ptr<const MeasureReport>>> EvaluateAll(
    const MeasureRegistry& registry, const EvolutionContext& ctx,
    ReportCache& cache, ThreadPool* pool) {
  const std::vector<std::unique_ptr<EvolutionMeasure>> measures =
      registry.CreateAll();
  std::vector<Result<std::shared_ptr<const MeasureReport>>> slots(
      measures.size(), Result<std::shared_ptr<const MeasureReport>>(
                           InternalError("measure not evaluated")));
  auto evaluate_one = [&](size_t i) {
    slots[i] = cache.GetOrCompute(*measures[i], ctx);
  };
  if (pool != nullptr) {
    pool->ParallelFor(measures.size(), evaluate_one);
  } else {
    for (size_t i = 0; i < measures.size(); ++i) evaluate_one(i);
  }

  std::vector<std::shared_ptr<const MeasureReport>> reports;
  reports.reserve(slots.size());
  for (Result<std::shared_ptr<const MeasureReport>>& slot : slots) {
    if (!slot.ok()) return slot.status();
    reports.push_back(std::move(slot).value());
  }
  return reports;
}

}  // namespace evorec::measures
