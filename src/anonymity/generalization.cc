#include "anonymity/generalization.h"

#include <algorithm>

namespace evorec::anonymity {

void ValueHierarchy::AddParent(const std::string& value,
                               const std::string& parent) {
  if (value == parent || value == kRoot) return;
  parent_[value] = parent;
}

ValueHierarchy ValueHierarchy::FromClassHierarchy(
    const schema::ClassHierarchy& hierarchy,
    const rdf::Dictionary& dictionary) {
  ValueHierarchy vh;
  for (rdf::TermId cls : hierarchy.AllClasses()) {
    const std::vector<rdf::TermId>& parents = hierarchy.Parents(cls);
    if (parents.empty()) continue;
    const rdf::TermId parent =
        *std::min_element(parents.begin(), parents.end());
    vh.AddParent(dictionary.term(cls).lexical,
                 dictionary.term(parent).lexical);
  }
  return vh;
}

std::string ValueHierarchy::Generalize(const std::string& value,
                                       size_t steps) const {
  std::string current = value;
  for (size_t i = 0; i < steps; ++i) {
    if (current == kRoot) break;
    auto it = parent_.find(current);
    current = it == parent_.end() ? std::string(kRoot) : it->second;
  }
  return current;
}

size_t ValueHierarchy::HeightOf(const std::string& value) const {
  size_t height = 0;
  std::string current = value;
  while (current != kRoot) {
    auto it = parent_.find(current);
    current = it == parent_.end() ? std::string(kRoot) : it->second;
    ++height;
    if (height > parent_.size() + 1) break;  // cycle guard
  }
  return height;
}

size_t ValueHierarchy::MaxHeight() const {
  size_t max_height = 1;
  for (const auto& [value, parent] : parent_) {
    (void)parent;
    max_height = std::max(max_height, HeightOf(value));
  }
  return max_height;
}

}  // namespace evorec::anonymity
