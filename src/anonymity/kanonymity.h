#ifndef EVOREC_ANONYMITY_KANONYMITY_H_
#define EVOREC_ANONYMITY_KANONYMITY_H_

#include <string>
#include <vector>

#include "anonymity/aggregate.h"

namespace evorec::anonymity {

/// One equivalence group: rows sharing a QI vector.
struct QiGroup {
  std::vector<std::string> qi;
  size_t count = 0;  ///< total individuals in the group
  size_t rows = 0;   ///< table rows in the group
};

/// All equivalence groups of `table` (rows grouped by QI vector).
std::vector<QiGroup> EquivalenceGroups(const AggregateTable& table);

/// True iff every equivalence group aggregates at least `k`
/// individuals (empty tables are k-anonymous).
bool IsKAnonymous(const AggregateTable& table, size_t k);

/// Groups violating k-anonymity (count < k).
std::vector<QiGroup> ViolatingGroups(const AggregateTable& table, size_t k);

/// Worst-case re-identification risk: 1 / (smallest group count);
/// 0 for empty tables. A k-anonymous table has risk <= 1/k (§III.e:
/// "even if data is aggregated, it is possible to re-identify").
double ReidentificationRisk(const AggregateTable& table);

}  // namespace evorec::anonymity

#endif  // EVOREC_ANONYMITY_KANONYMITY_H_
