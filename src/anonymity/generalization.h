#ifndef EVOREC_ANONYMITY_GENERALIZATION_H_
#define EVOREC_ANONYMITY_GENERALIZATION_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "rdf/dictionary.h"
#include "schema/hierarchy.h"

namespace evorec::anonymity {

/// A value-generalisation taxonomy for one quasi-identifier column:
/// each value has at most one parent; repeated generalisation reaches
/// the universal root "*". For class-valued columns the taxonomy is
/// the KB's own subsumption hierarchy — evolution reports generalise a
/// class to its superclass.
class ValueHierarchy {
 public:
  /// The universal top value every chain ends at.
  static constexpr const char* kRoot = "*";

  ValueHierarchy() = default;

  /// Declares `parent` as the generalisation of `value`.
  void AddParent(const std::string& value, const std::string& parent);

  /// Builds a taxonomy from a class hierarchy, naming values by their
  /// IRI. Classes with several parents use the first (sorted) one, so
  /// the taxonomy is a tree.
  static ValueHierarchy FromClassHierarchy(
      const schema::ClassHierarchy& hierarchy,
      const rdf::Dictionary& dictionary);

  /// Generalises `value` by `steps` levels (saturating at kRoot).
  std::string Generalize(const std::string& value, size_t steps) const;

  /// Number of generalisation steps from `value` to kRoot.
  size_t HeightOf(const std::string& value) const;

  /// Maximum height over all known values (the column's lattice
  /// ceiling); at least 1 (any value can generalise to kRoot).
  size_t MaxHeight() const;

 private:
  std::unordered_map<std::string, std::string> parent_;
};

}  // namespace evorec::anonymity

#endif  // EVOREC_ANONYMITY_GENERALIZATION_H_
