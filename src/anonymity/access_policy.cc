#include "anonymity/access_policy.h"

namespace evorec::anonymity {

void AccessPolicy::MarkSensitive(rdf::TermId term) {
  sensitive_.insert(term);
}

void AccessPolicy::Grant(const std::string& agent, rdf::TermId term) {
  grants_[agent].insert(term);
}

void AccessPolicy::GrantAll(const std::string& agent) {
  grant_all_.insert(agent);
}

bool AccessPolicy::IsSensitive(rdf::TermId term) const {
  return sensitive_.count(term) > 0;
}

Status AccessPolicy::CheckAccess(const std::string& agent,
                                 rdf::TermId term) const {
  if (!IsSensitive(term)) return OkStatus();
  if (grant_all_.count(agent)) return OkStatus();
  auto it = grants_.find(agent);
  if (it != grants_.end() && it->second.count(term)) return OkStatus();
  return PermissionDeniedError("agent '" + agent +
                               "' may not access sensitive term " +
                               std::to_string(term));
}

measures::MeasureReport AccessPolicy::FilterReport(
    const std::string& agent, const measures::MeasureReport& report,
    size_t* redacted_out) const {
  measures::MeasureReport filtered;
  size_t redacted = 0;
  for (const measures::ScoredTerm& s : report.scores()) {
    if (CheckAccess(agent, s.term).ok()) {
      filtered.Add(s.term, s.score);
    } else {
      ++redacted;
    }
  }
  if (redacted_out != nullptr) *redacted_out = redacted;
  return filtered;
}

}  // namespace evorec::anonymity
