#include "anonymity/aggregate.h"

#include <map>

namespace evorec::anonymity {

AggregateTable::AggregateTable(std::vector<std::string> qi_columns,
                               std::string value_column)
    : qi_columns_(std::move(qi_columns)),
      value_column_(std::move(value_column)) {}

Status AggregateTable::AddRow(std::vector<std::string> qi, double value,
                              size_t count) {
  if (qi.size() != qi_columns_.size()) {
    return InvalidArgumentError(
        "row has " + std::to_string(qi.size()) + " QI values, table has " +
        std::to_string(qi_columns_.size()) + " QI columns");
  }
  rows_.push_back({std::move(qi), value, count});
  return OkStatus();
}

size_t AggregateTable::TotalCount() const {
  size_t total = 0;
  for (const AggregateRow& row : rows_) total += row.count;
  return total;
}

AggregateTable AggregateTable::MergedGroups() const {
  AggregateTable merged(qi_columns_, value_column_);
  std::map<std::vector<std::string>, AggregateRow> groups;
  for (const AggregateRow& row : rows_) {
    auto [it, inserted] = groups.try_emplace(row.qi, row);
    if (!inserted) {
      it->second.value += row.value;
      it->second.count += row.count;
    }
  }
  for (auto& [qi, row] : groups) {
    (void)qi;
    merged.rows_.push_back(std::move(row));
  }
  return merged;
}

}  // namespace evorec::anonymity
