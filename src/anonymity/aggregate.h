#ifndef EVOREC_ANONYMITY_AGGREGATE_H_
#define EVOREC_ANONYMITY_AGGREGATE_H_

#include <string>
#include <vector>

#include "common/result.h"

namespace evorec::anonymity {

/// One row of an aggregate evolution report: quasi-identifier values
/// (e.g. class, region, period), an aggregated metric (e.g. change
/// count), and the number of underlying individuals the row
/// aggregates.
struct AggregateRow {
  std::vector<std::string> qi;  ///< one value per QI column
  double value = 0.0;           ///< aggregated metric
  size_t count = 0;             ///< individuals contributing to the row
};

/// A typed aggregate table over evolution statistics — the
/// "aggregations on patterns" through which sensitive data is observed
/// (paper §III.e). This is the object k-anonymity is checked on: each
/// distinct QI combination forms an equivalence group whose total
/// `count` must reach k.
class AggregateTable {
 public:
  AggregateTable() = default;

  /// Creates a table with named QI columns and a named value column.
  AggregateTable(std::vector<std::string> qi_columns,
                 std::string value_column);

  /// Appends a row; the QI vector must match the column count.
  Status AddRow(std::vector<std::string> qi, double value, size_t count = 1);

  const std::vector<std::string>& qi_columns() const { return qi_columns_; }
  const std::string& value_column() const { return value_column_; }
  const std::vector<AggregateRow>& rows() const { return rows_; }
  size_t row_count() const { return rows_.size(); }

  /// Sum of `count` over all rows (number of represented individuals).
  size_t TotalCount() const;

  /// Returns a table with rows of identical QI vectors merged (values
  /// and counts summed). Grouping is the last step of generalisation.
  AggregateTable MergedGroups() const;

 private:
  std::vector<std::string> qi_columns_;
  std::string value_column_;
  std::vector<AggregateRow> rows_;
};

}  // namespace evorec::anonymity

#endif  // EVOREC_ANONYMITY_AGGREGATE_H_
