#ifndef EVOREC_ANONYMITY_ANONYMIZER_H_
#define EVOREC_ANONYMITY_ANONYMIZER_H_

#include <vector>

#include "anonymity/aggregate.h"
#include "anonymity/generalization.h"
#include "anonymity/kanonymity.h"
#include "common/result.h"

namespace evorec::anonymity {

/// Result of enforcing k-anonymity on an aggregate table.
struct AnonymizationResult {
  /// The k-anonymous output table (generalised, merged, with violating
  /// residue suppressed).
  AggregateTable table;
  /// Generalisation level applied per QI column.
  std::vector<size_t> levels;
  /// Individuals removed by suppression.
  size_t suppressed_count = 0;
  /// Rows removed by suppression.
  size_t suppressed_rows = 0;
  /// Information loss in [0,1]: mean over columns of
  /// level/max_height, blended with the suppressed-individual
  /// fraction (each column and the suppression term weighted
  /// equally).
  double information_loss = 0.0;
};

/// Greedy Samarati-style anonymiser: repeatedly raises the
/// generalisation level of the column that removes the most violating
/// individuals per step, merging equal QI groups after each raise;
/// when the lattice ceiling is reached, suppresses remaining violating
/// groups. Guarantees the output satisfies IsKAnonymous(..., k).
///
/// `hierarchies` must provide one ValueHierarchy per QI column.
Result<AnonymizationResult> Anonymize(
    const AggregateTable& table, size_t k,
    const std::vector<ValueHierarchy>& hierarchies);

/// Applies fixed generalisation `levels` to `table` (no suppression).
Result<AggregateTable> GeneralizeTable(
    const AggregateTable& table, const std::vector<size_t>& levels,
    const std::vector<ValueHierarchy>& hierarchies);

}  // namespace evorec::anonymity

#endif  // EVOREC_ANONYMITY_ANONYMIZER_H_
