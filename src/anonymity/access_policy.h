#ifndef EVOREC_ANONYMITY_ACCESS_POLICY_H_
#define EVOREC_ANONYMITY_ACCESS_POLICY_H_

#include <string>
#include <unordered_map>
#include <unordered_set>

#include "common/status.h"
#include "measures/report.h"
#include "rdf/term.h"

namespace evorec::anonymity {

/// Strict access rules over sensitive KB regions (paper §III.e:
/// "strict rules prohibiting reach such data should apply"). Terms
/// marked sensitive are visible only to agents explicitly granted
/// access; everything else is public.
class AccessPolicy {
 public:
  AccessPolicy() = default;

  /// Marks `term` as sensitive (deny-by-default).
  void MarkSensitive(rdf::TermId term);

  /// Grants `agent` access to `term`.
  void Grant(const std::string& agent, rdf::TermId term);

  /// Grants `agent` access to every sensitive term (e.g. a data
  /// protection officer).
  void GrantAll(const std::string& agent);

  /// True iff `term` is marked sensitive.
  bool IsSensitive(rdf::TermId term) const;

  /// OK when `agent` may see `term`; PermissionDenied otherwise.
  Status CheckAccess(const std::string& agent, rdf::TermId term) const;

  /// Copy of `report` with the terms `agent` may not see removed.
  /// `redacted_out` (optional) receives the number of removed entries.
  measures::MeasureReport FilterReport(const std::string& agent,
                                       const measures::MeasureReport& report,
                                       size_t* redacted_out = nullptr) const;

  size_t sensitive_count() const { return sensitive_.size(); }

 private:
  std::unordered_set<rdf::TermId> sensitive_;
  std::unordered_map<std::string, std::unordered_set<rdf::TermId>> grants_;
  std::unordered_set<std::string> grant_all_;
};

}  // namespace evorec::anonymity

#endif  // EVOREC_ANONYMITY_ACCESS_POLICY_H_
