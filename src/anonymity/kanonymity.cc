#include "anonymity/kanonymity.h"

#include <map>

namespace evorec::anonymity {

std::vector<QiGroup> EquivalenceGroups(const AggregateTable& table) {
  std::map<std::vector<std::string>, QiGroup> groups;
  for (const AggregateRow& row : table.rows()) {
    QiGroup& g = groups[row.qi];
    if (g.rows == 0) g.qi = row.qi;
    g.count += row.count;
    ++g.rows;
  }
  std::vector<QiGroup> out;
  out.reserve(groups.size());
  for (auto& [qi, group] : groups) {
    (void)qi;
    out.push_back(std::move(group));
  }
  return out;
}

bool IsKAnonymous(const AggregateTable& table, size_t k) {
  for (const QiGroup& g : EquivalenceGroups(table)) {
    if (g.count < k) return false;
  }
  return true;
}

std::vector<QiGroup> ViolatingGroups(const AggregateTable& table, size_t k) {
  std::vector<QiGroup> violating;
  for (QiGroup& g : EquivalenceGroups(table)) {
    if (g.count < k) violating.push_back(std::move(g));
  }
  return violating;
}

double ReidentificationRisk(const AggregateTable& table) {
  const std::vector<QiGroup> groups = EquivalenceGroups(table);
  if (groups.empty()) return 0.0;
  size_t smallest = groups.front().count;
  for (const QiGroup& g : groups) {
    if (g.count < smallest) smallest = g.count;
  }
  if (smallest == 0) return 1.0;
  return 1.0 / static_cast<double>(smallest);
}

}  // namespace evorec::anonymity
