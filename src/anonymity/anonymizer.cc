#include "anonymity/anonymizer.h"

#include <algorithm>

namespace evorec::anonymity {

Result<AggregateTable> GeneralizeTable(
    const AggregateTable& table, const std::vector<size_t>& levels,
    const std::vector<ValueHierarchy>& hierarchies) {
  if (levels.size() != table.qi_columns().size() ||
      hierarchies.size() != table.qi_columns().size()) {
    return InvalidArgumentError(
        "levels/hierarchies must match the table's QI column count");
  }
  AggregateTable out(table.qi_columns(), table.value_column());
  for (const AggregateRow& row : table.rows()) {
    std::vector<std::string> qi = row.qi;
    for (size_t c = 0; c < qi.size(); ++c) {
      qi[c] = hierarchies[c].Generalize(qi[c], levels[c]);
    }
    EVOREC_RETURN_IF_ERROR(out.AddRow(std::move(qi), row.value, row.count));
  }
  return out.MergedGroups();
}

namespace {

// Total individuals in groups violating k.
size_t ViolatingCount(const AggregateTable& table, size_t k) {
  size_t total = 0;
  for (const QiGroup& g : ViolatingGroups(table, k)) {
    total += g.count;
  }
  return total;
}

}  // namespace

Result<AnonymizationResult> Anonymize(
    const AggregateTable& table, size_t k,
    const std::vector<ValueHierarchy>& hierarchies) {
  if (hierarchies.size() != table.qi_columns().size()) {
    return InvalidArgumentError(
        "hierarchies must match the table's QI column count");
  }
  const size_t columns = table.qi_columns().size();
  std::vector<size_t> levels(columns, 0);
  std::vector<size_t> ceilings(columns, 0);
  for (size_t c = 0; c < columns; ++c) {
    ceilings[c] = hierarchies[c].MaxHeight();
  }

  auto current = GeneralizeTable(table, levels, hierarchies);
  if (!current.ok()) return current.status();
  AggregateTable working = std::move(current).value();

  // Greedy level raising: pick the column whose raise removes the most
  // violating individuals.
  while (ViolatingCount(working, k) > 0) {
    size_t best_column = columns;
    size_t best_remaining = ViolatingCount(working, k);
    AggregateTable best_table;
    for (size_t c = 0; c < columns; ++c) {
      if (levels[c] >= ceilings[c]) continue;
      std::vector<size_t> probe = levels;
      ++probe[c];
      auto candidate = GeneralizeTable(table, probe, hierarchies);
      if (!candidate.ok()) return candidate.status();
      const size_t remaining = ViolatingCount(*candidate, k);
      if (remaining < best_remaining) {
        best_remaining = remaining;
        best_column = c;
        best_table = std::move(candidate).value();
      }
    }
    if (best_column == columns) break;  // no raise helps → suppress
    ++levels[best_column];
    working = std::move(best_table);
  }

  // Suppress residual violating groups.
  AnonymizationResult result;
  result.levels = levels;
  AggregateTable cleaned(working.qi_columns(), working.value_column());
  for (const AggregateRow& row : working.rows()) {
    bool violating = false;
    for (const QiGroup& g : ViolatingGroups(working, k)) {
      if (g.qi == row.qi) {
        violating = true;
        break;
      }
    }
    if (violating) {
      result.suppressed_count += row.count;
      ++result.suppressed_rows;
    } else {
      EVOREC_RETURN_IF_ERROR(cleaned.AddRow(row.qi, row.value, row.count));
    }
  }
  result.table = std::move(cleaned);

  // Information loss: generalisation height fractions + suppression
  // fraction, equally weighted.
  double loss = 0.0;
  for (size_t c = 0; c < columns; ++c) {
    loss += ceilings[c] == 0
                ? 0.0
                : static_cast<double>(levels[c]) /
                      static_cast<double>(ceilings[c]);
  }
  const size_t total = table.TotalCount();
  const double suppression_fraction =
      total == 0 ? 0.0
                 : static_cast<double>(result.suppressed_count) /
                       static_cast<double>(total);
  result.information_loss =
      (loss + suppression_fraction) / static_cast<double>(columns + 1);
  return result;
}

}  // namespace evorec::anonymity
