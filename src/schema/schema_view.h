#ifndef EVOREC_SCHEMA_SCHEMA_VIEW_H_
#define EVOREC_SCHEMA_SCHEMA_VIEW_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/hash.h"
#include "rdf/knowledge_base.h"
#include "schema/hierarchy.h"

namespace evorec::schema {

/// Key for class-pair statistics (ordered pair: subject class, object
/// class).
struct ClassPair {
  rdf::TermId from = rdf::kAnyTerm;
  rdf::TermId to = rdf::kAnyTerm;
  friend bool operator==(const ClassPair&, const ClassPair&) = default;
};

struct ClassPairHash {
  size_t operator()(const ClassPair& p) const {
    size_t seed = 0;
    HashCombine(seed, p.from);
    HashCombine(seed, p.to);
    return seed;
  }
};

/// Connection statistics of one property between one class pair —
/// the raw input to relative cardinality (paper §II.d).
struct PropertyConnection {
  rdf::TermId property = rdf::kAnyTerm;
  ClassPair classes;
  /// Number of instance-level edges (x p y) with x ∈ classes.from and
  /// y ∈ classes.to.
  size_t instance_count = 0;
};

/// A derived, read-only view over one KB snapshot exposing exactly the
/// schema-level structures the evolution measures need:
///   - the class set and subsumption hierarchy,
///   - the property set with declared domains/ranges,
///   - per-class instance counts,
///   - instance-level connection counts per (property, class-pair),
///   - per-class total instance-connection counts,
///   - class neighborhoods N(n) (subsumption- or property-adjacent,
///     paper §II.b).
///
/// Construction is a single pass over the snapshot (plus sorted-index
/// scans); the view holds no reference to the KB afterwards except the
/// shared dictionary ids.
class SchemaView {
 public:
  /// Extracts the view from `kb`.
  static SchemaView Build(const rdf::KnowledgeBase& kb);

  /// Sorted ids of all classes (declared or inferred from usage).
  const std::vector<rdf::TermId>& classes() const { return classes_; }

  /// Sorted ids of all properties (declared rdf:Property or used as a
  /// non-schema predicate).
  const std::vector<rdf::TermId>& properties() const { return properties_; }

  /// True iff `id` is in classes().
  bool IsClass(rdf::TermId id) const { return class_set_.count(id) > 0; }

  /// True iff `id` is in properties().
  bool IsProperty(rdf::TermId id) const {
    return property_set_.count(id) > 0;
  }

  /// The subsumption hierarchy.
  const ClassHierarchy& hierarchy() const { return hierarchy_; }

  /// Declared domains of `property` (may be empty).
  std::vector<rdf::TermId> DomainsOf(rdf::TermId property) const;

  /// Declared ranges of `property` (may be empty).
  std::vector<rdf::TermId> RangesOf(rdf::TermId property) const;

  /// Number of direct instances of `cls` (rdf:type assertions).
  size_t InstanceCount(rdf::TermId cls) const;

  /// Direct instances of `cls`.
  std::vector<rdf::TermId> InstancesOf(rdf::TermId cls) const;

  /// First declared type of instance `x`, or kAnyTerm.
  rdf::TermId TypeOf(rdf::TermId instance) const;

  /// All (property, class-pair) connection statistics.
  const std::vector<PropertyConnection>& connections() const {
    return connections_;
  }

  /// Number of instance edges (x p y) with x ∈ from, y ∈ to, for
  /// `property`; 0 when unseen.
  size_t ConnectionCount(rdf::TermId property, rdf::TermId from,
                         rdf::TermId to) const;

  /// Total instance-level connections incident to instances of `cls`
  /// (incoming + outgoing, all properties). The denominator of
  /// relative cardinality.
  size_t TotalConnectionsOf(rdf::TermId cls) const;

  /// The neighborhood N(n) of class `n` in this snapshot: classes
  /// related to `n` by a subsumption edge (either direction) or
  /// connected to `n` through a property whose domain/range pair links
  /// them (paper §II.b). Sorted, excludes `n`.
  std::vector<rdf::TermId> Neighborhood(rdf::TermId n) const;

  /// All class neighborhoods at once, memoized: lists()[i] equals
  /// Neighborhood(classes()[i]). The scan runs once per view
  /// (thread-safe) and the memo is shared by every copy, so the many
  /// version *pairs* that include one version — a timeline chain walk,
  /// or consecutive incremental refreshes sharing views through the
  /// engine's artefact cache — pay for the version's neighborhood
  /// extraction exactly once instead of once per pair.
  const std::vector<std::vector<rdf::TermId>>& NeighborhoodLists() const;

  /// Classes adjacent to `n` via property domain/range declarations
  /// only.
  std::vector<rdf::TermId> PropertyNeighbors(rdf::TermId n) const;

  /// Properties whose declared domain or range is `n`.
  std::vector<rdf::TermId> PropertiesTouching(rdf::TermId n) const;

 private:
  std::vector<rdf::TermId> classes_;
  std::unordered_set<rdf::TermId> class_set_;
  std::vector<rdf::TermId> properties_;
  std::unordered_set<rdf::TermId> property_set_;
  ClassHierarchy hierarchy_;
  std::unordered_map<rdf::TermId, std::vector<rdf::TermId>> domains_;
  std::unordered_map<rdf::TermId, std::vector<rdf::TermId>> ranges_;
  std::unordered_map<rdf::TermId, std::vector<rdf::TermId>> instances_;
  std::unordered_map<rdf::TermId, rdf::TermId> instance_type_;
  std::vector<PropertyConnection> connections_;
  std::unordered_map<rdf::TermId, size_t> total_connections_;
  // Property-adjacency between classes derived from domain/range pairs
  // and observed instance connections.
  std::unordered_map<rdf::TermId, std::unordered_set<rdf::TermId>>
      property_adjacent_;
  std::unordered_map<rdf::TermId, std::vector<rdf::TermId>>
      properties_touching_;
  // Lazily filled per-class neighborhood memo, shared between copies.
  struct NeighborhoodMemo {
    std::once_flag once;
    std::vector<std::vector<rdf::TermId>> lists;
  };
  std::shared_ptr<NeighborhoodMemo> neighborhood_memo_ =
      std::make_shared<NeighborhoodMemo>();
};

}  // namespace evorec::schema

#endif  // EVOREC_SCHEMA_SCHEMA_VIEW_H_
