#include "schema/schema_view.h"

#include <algorithm>

namespace evorec::schema {

namespace {

void SortedInsert(std::vector<rdf::TermId>& v, rdf::TermId id) {
  auto it = std::lower_bound(v.begin(), v.end(), id);
  if (it == v.end() || *it != id) v.insert(it, id);
}

}  // namespace

SchemaView SchemaView::Build(const rdf::KnowledgeBase& kb) {
  SchemaView view;
  const rdf::Vocabulary& voc = kb.vocabulary();
  const rdf::TripleStore& store = kb.store();

  auto note_class = [&](rdf::TermId id) {
    if (view.class_set_.insert(id).second) {
      view.hierarchy_.Touch(id);
    }
  };
  auto note_property = [&](rdf::TermId id) { view.property_set_.insert(id); };

  // All three passes stream the store in SPO order via full merged
  // scans instead of store.triples(): on a segmented snapshot that
  // avoids materialising a whole-store flat copy (the emission order
  // is identical, so the built view is too).

  // Pass 1: schema-level triples establish classes and properties.
  store.ScanT(rdf::TriplePattern{}, [&](const rdf::Triple& t) {
    if (t.predicate == voc.rdf_type) {
      if (t.object == voc.rdfs_class || t.object == voc.owl_class) {
        note_class(t.subject);
      } else if (t.object == voc.rdf_property) {
        note_property(t.subject);
      } else {
        // Instance typing: the object is being used as a class.
        note_class(t.object);
      }
    } else if (t.predicate == voc.rdfs_subclass_of) {
      note_class(t.subject);
      note_class(t.object);
      view.hierarchy_.AddEdge(t.subject, t.object);
    } else if (t.predicate == voc.rdfs_domain) {
      note_property(t.subject);
      note_class(t.object);
      view.domains_[t.subject].push_back(t.object);
    } else if (t.predicate == voc.rdfs_range) {
      note_property(t.subject);
      // Ranges may be datatypes (literals' types); only IRI-classes
      // participate in the class graph, but we record all.
      view.ranges_[t.subject].push_back(t.object);
      note_class(t.object);
    }
    return true;
  });

  // Pass 2: instance typing and property usage.
  store.ScanT(rdf::TriplePattern{}, [&](const rdf::Triple& t) {
    if (t.predicate == voc.rdf_type) {
      if (view.class_set_.count(t.object) &&
          !view.class_set_.count(t.subject)) {
        view.instances_[t.object].push_back(t.subject);
        view.instance_type_.emplace(t.subject, t.object);
      }
      return true;
    }
    if (voc.IsSchemaPredicate(t.predicate)) return true;
    // A non-schema predicate used between resources is a property.
    note_property(t.predicate);
    return true;
  });

  // Pass 3: instance-level connection statistics per
  // (property, subject-class, object-class).
  std::unordered_map<rdf::TermId,
                     std::unordered_map<uint64_t, PropertyConnection>>
      conn_acc;
  store.ScanT(rdf::TriplePattern{}, [&](const rdf::Triple& t) {
    if (voc.IsSchemaPredicate(t.predicate)) return true;
    if (!view.property_set_.count(t.predicate)) return true;
    auto ts = view.instance_type_.find(t.subject);
    auto to = view.instance_type_.find(t.object);
    if (ts == view.instance_type_.end() || to == view.instance_type_.end()) {
      return true;
    }
    const ClassPair pair{ts->second, to->second};
    const uint64_t pair_key =
        (static_cast<uint64_t>(pair.from) << 32) | pair.to;
    auto& slot = conn_acc[t.predicate][pair_key];
    if (slot.instance_count == 0) {
      slot.property = t.predicate;
      slot.classes = pair;
    }
    ++slot.instance_count;
    ++view.total_connections_[pair.from];
    if (pair.to != pair.from) {
      ++view.total_connections_[pair.to];
    }
    view.property_adjacent_[pair.from].insert(pair.to);
    view.property_adjacent_[pair.to].insert(pair.from);
    return true;
  });
  for (auto& [prop, by_pair] : conn_acc) {
    (void)prop;
    for (auto& [key, conn] : by_pair) {
      (void)key;
      view.connections_.push_back(conn);
    }
  }
  std::sort(view.connections_.begin(), view.connections_.end(),
            [](const PropertyConnection& a, const PropertyConnection& b) {
              if (a.property != b.property) return a.property < b.property;
              if (a.classes.from != b.classes.from) {
                return a.classes.from < b.classes.from;
              }
              return a.classes.to < b.classes.to;
            });

  // Domain/range declarations also induce class adjacency and
  // class→property incidence.
  for (const auto& [prop, domain_list] : view.domains_) {
    auto range_it = view.ranges_.find(prop);
    for (rdf::TermId d : domain_list) {
      view.properties_touching_[d].push_back(prop);
      if (range_it != view.ranges_.end()) {
        for (rdf::TermId r : range_it->second) {
          if (d == r) continue;
          view.property_adjacent_[d].insert(r);
          view.property_adjacent_[r].insert(d);
        }
      }
    }
  }
  for (const auto& [prop, range_list] : view.ranges_) {
    for (rdf::TermId r : range_list) {
      view.properties_touching_[r].push_back(prop);
    }
  }

  view.classes_.assign(view.class_set_.begin(), view.class_set_.end());
  std::sort(view.classes_.begin(), view.classes_.end());
  view.properties_.assign(view.property_set_.begin(),
                          view.property_set_.end());
  std::sort(view.properties_.begin(), view.properties_.end());
  for (auto& [cls, props] : view.properties_touching_) {
    (void)cls;
    std::sort(props.begin(), props.end());
    props.erase(std::unique(props.begin(), props.end()), props.end());
  }
  return view;
}

std::vector<rdf::TermId> SchemaView::DomainsOf(rdf::TermId property) const {
  auto it = domains_.find(property);
  if (it == domains_.end()) return {};
  return it->second;
}

std::vector<rdf::TermId> SchemaView::RangesOf(rdf::TermId property) const {
  auto it = ranges_.find(property);
  if (it == ranges_.end()) return {};
  return it->second;
}

size_t SchemaView::InstanceCount(rdf::TermId cls) const {
  auto it = instances_.find(cls);
  return it == instances_.end() ? 0 : it->second.size();
}

std::vector<rdf::TermId> SchemaView::InstancesOf(rdf::TermId cls) const {
  auto it = instances_.find(cls);
  if (it == instances_.end()) return {};
  return it->second;
}

rdf::TermId SchemaView::TypeOf(rdf::TermId instance) const {
  auto it = instance_type_.find(instance);
  return it == instance_type_.end() ? rdf::kAnyTerm : it->second;
}

size_t SchemaView::ConnectionCount(rdf::TermId property, rdf::TermId from,
                                   rdf::TermId to) const {
  for (const PropertyConnection& c : connections_) {
    if (c.property == property && c.classes.from == from &&
        c.classes.to == to) {
      return c.instance_count;
    }
  }
  return 0;
}

size_t SchemaView::TotalConnectionsOf(rdf::TermId cls) const {
  auto it = total_connections_.find(cls);
  return it == total_connections_.end() ? 0 : it->second;
}

std::vector<rdf::TermId> SchemaView::Neighborhood(rdf::TermId n) const {
  std::vector<rdf::TermId> out;
  for (rdf::TermId parent : hierarchy_.Parents(n)) SortedInsert(out, parent);
  for (rdf::TermId child : hierarchy_.Children(n)) SortedInsert(out, child);
  auto it = property_adjacent_.find(n);
  if (it != property_adjacent_.end()) {
    for (rdf::TermId other : it->second) SortedInsert(out, other);
  }
  out.erase(std::remove(out.begin(), out.end(), n), out.end());
  return out;
}

const std::vector<std::vector<rdf::TermId>>& SchemaView::NeighborhoodLists()
    const {
  NeighborhoodMemo& memo = *neighborhood_memo_;
  std::call_once(memo.once, [&] {
    memo.lists.resize(classes_.size());
    for (size_t i = 0; i < classes_.size(); ++i) {
      memo.lists[i] = Neighborhood(classes_[i]);
    }
  });
  return memo.lists;
}

std::vector<rdf::TermId> SchemaView::PropertyNeighbors(rdf::TermId n) const {
  auto it = property_adjacent_.find(n);
  if (it == property_adjacent_.end()) return {};
  std::vector<rdf::TermId> out(it->second.begin(), it->second.end());
  std::sort(out.begin(), out.end());
  out.erase(std::remove(out.begin(), out.end(), n), out.end());
  return out;
}

std::vector<rdf::TermId> SchemaView::PropertiesTouching(rdf::TermId n) const {
  auto it = properties_touching_.find(n);
  if (it == properties_touching_.end()) return {};
  return it->second;
}

}  // namespace evorec::schema
