#include "schema/hierarchy.h"

#include <algorithm>
#include <deque>
#include <limits>

namespace evorec::schema {

const std::vector<rdf::TermId> ClassHierarchy::kEmpty = {};

ClassHierarchy ClassHierarchy::FromEdges(
    const std::vector<std::pair<rdf::TermId, rdf::TermId>>& child_parent) {
  ClassHierarchy h;
  for (const auto& [child, parent] : child_parent) {
    h.AddEdge(child, parent);
  }
  return h;
}

void ClassHierarchy::AddEdge(rdf::TermId child, rdf::TermId parent) {
  if (child == parent) return;
  auto& ps = parents_[child];
  if (std::find(ps.begin(), ps.end(), parent) != ps.end()) return;
  ps.push_back(parent);
  children_[parent].push_back(child);
  known_.insert(child);
  known_.insert(parent);
  ++edge_count_;
}

void ClassHierarchy::Touch(rdf::TermId cls) { known_.insert(cls); }

const std::vector<rdf::TermId>& ClassHierarchy::Parents(
    rdf::TermId cls) const {
  auto it = parents_.find(cls);
  return it == parents_.end() ? kEmpty : it->second;
}

const std::vector<rdf::TermId>& ClassHierarchy::Children(
    rdf::TermId cls) const {
  auto it = children_.find(cls);
  return it == children_.end() ? kEmpty : it->second;
}

namespace {

std::vector<rdf::TermId> Reach(
    rdf::TermId start,
    const std::unordered_map<rdf::TermId, std::vector<rdf::TermId>>& adj) {
  std::vector<rdf::TermId> out;
  std::unordered_set<rdf::TermId> seen{start};
  std::deque<rdf::TermId> queue{start};
  while (!queue.empty()) {
    const rdf::TermId node = queue.front();
    queue.pop_front();
    auto it = adj.find(node);
    if (it == adj.end()) continue;
    for (rdf::TermId next : it->second) {
      if (seen.insert(next).second) {
        out.push_back(next);
        queue.push_back(next);
      }
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace

std::vector<rdf::TermId> ClassHierarchy::Ancestors(rdf::TermId cls) const {
  return Reach(cls, parents_);
}

std::vector<rdf::TermId> ClassHierarchy::Descendants(rdf::TermId cls) const {
  return Reach(cls, children_);
}

bool ClassHierarchy::IsSubclassOf(rdf::TermId cls, rdf::TermId ancestor) const {
  if (cls == ancestor) return true;
  std::unordered_set<rdf::TermId> seen{cls};
  std::deque<rdf::TermId> queue{cls};
  while (!queue.empty()) {
    const rdf::TermId node = queue.front();
    queue.pop_front();
    for (rdf::TermId parent : Parents(node)) {
      if (parent == ancestor) return true;
      if (seen.insert(parent).second) queue.push_back(parent);
    }
  }
  return false;
}

std::vector<rdf::TermId> ClassHierarchy::Roots() const {
  std::vector<rdf::TermId> roots;
  for (rdf::TermId cls : known_) {
    if (Parents(cls).empty()) roots.push_back(cls);
  }
  std::sort(roots.begin(), roots.end());
  return roots;
}

size_t ClassHierarchy::DepthOf(rdf::TermId cls) const {
  // Longest path to a root; memoised DFS would be faster, but
  // hierarchies here are shallow (depth < 20) so iterative BFS by
  // levels suffices.
  size_t depth = 0;
  std::unordered_set<rdf::TermId> frontier{cls};
  std::unordered_set<rdf::TermId> visited{cls};
  while (true) {
    std::unordered_set<rdf::TermId> next;
    for (rdf::TermId node : frontier) {
      for (rdf::TermId parent : Parents(node)) {
        if (visited.insert(parent).second) next.insert(parent);
      }
    }
    if (next.empty()) break;
    ++depth;
    frontier.swap(next);
  }
  return depth;
}

size_t ClassHierarchy::UndirectedDistance(rdf::TermId a, rdf::TermId b) const {
  if (a == b) return 0;
  std::unordered_map<rdf::TermId, size_t> dist{{a, 0}};
  std::deque<rdf::TermId> queue{a};
  while (!queue.empty()) {
    const rdf::TermId node = queue.front();
    queue.pop_front();
    const size_t d = dist[node];
    auto visit = [&](rdf::TermId next) -> bool {
      if (dist.count(next)) return false;
      if (next == b) return true;
      dist[next] = d + 1;
      queue.push_back(next);
      return false;
    };
    for (rdf::TermId parent : Parents(node)) {
      if (visit(parent)) return d + 1;
    }
    for (rdf::TermId child : Children(node)) {
      if (visit(child)) return d + 1;
    }
  }
  return std::numeric_limits<size_t>::max();
}

bool ClassHierarchy::IsAcyclic() const {
  // Kahn's algorithm over child→parent edges.
  std::unordered_map<rdf::TermId, size_t> indegree;
  for (rdf::TermId cls : known_) indegree[cls] = 0;
  for (const auto& [child, parents] : parents_) {
    (void)child;
    for (rdf::TermId parent : parents) {
      ++indegree[parent];
    }
  }
  std::deque<rdf::TermId> queue;
  for (const auto& [cls, deg] : indegree) {
    if (deg == 0) queue.push_back(cls);
  }
  size_t processed = 0;
  while (!queue.empty()) {
    const rdf::TermId node = queue.front();
    queue.pop_front();
    ++processed;
    auto it = parents_.find(node);
    if (it == parents_.end()) continue;
    for (rdf::TermId parent : it->second) {
      if (--indegree[parent] == 0) queue.push_back(parent);
    }
  }
  return processed == known_.size();
}

std::vector<rdf::TermId> ClassHierarchy::AllClasses() const {
  std::vector<rdf::TermId> out(known_.begin(), known_.end());
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace evorec::schema
