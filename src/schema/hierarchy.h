#ifndef EVOREC_SCHEMA_HIERARCHY_H_
#define EVOREC_SCHEMA_HIERARCHY_H_

#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "rdf/term.h"

namespace evorec::schema {

/// The subsumption DAG of a snapshot (rdfs:subClassOf edges), with
/// reachability and depth utilities. Consumed by:
///  - interest propagation in the relatedness scorer (interests flow to
///    sub/superclasses with decay),
///  - generalisation hierarchies for k-anonymity,
///  - semantic diversity distances (hierarchy distance between foci).
class ClassHierarchy {
 public:
  ClassHierarchy() = default;

  /// Builds from explicit child→parent edges.
  static ClassHierarchy FromEdges(
      const std::vector<std::pair<rdf::TermId, rdf::TermId>>& child_parent);

  /// Adds one subclass edge (child rdfs:subClassOf parent).
  void AddEdge(rdf::TermId child, rdf::TermId parent);

  /// Direct superclasses of `cls` (empty when unknown).
  const std::vector<rdf::TermId>& Parents(rdf::TermId cls) const;

  /// Direct subclasses of `cls` (empty when unknown).
  const std::vector<rdf::TermId>& Children(rdf::TermId cls) const;

  /// All transitive superclasses (not including `cls` itself).
  std::vector<rdf::TermId> Ancestors(rdf::TermId cls) const;

  /// All transitive subclasses (not including `cls` itself).
  std::vector<rdf::TermId> Descendants(rdf::TermId cls) const;

  /// True iff `cls` ⊑ `ancestor` (transitively, reflexively).
  bool IsSubclassOf(rdf::TermId cls, rdf::TermId ancestor) const;

  /// Classes with no parents (among classes that appear in any edge or
  /// were registered via Touch).
  std::vector<rdf::TermId> Roots() const;

  /// Length of the longest upward path from `cls` to a root; 0 for
  /// roots and unknown classes.
  size_t DepthOf(rdf::TermId cls) const;

  /// Shortest undirected distance between two classes through
  /// subsumption edges; returns SIZE_MAX when disconnected.
  size_t UndirectedDistance(rdf::TermId a, rdf::TermId b) const;

  /// Registers a class with no edges (so it appears in Roots()).
  void Touch(rdf::TermId cls);

  /// True iff the subsumption relation is cycle-free.
  bool IsAcyclic() const;

  /// All registered classes.
  std::vector<rdf::TermId> AllClasses() const;

  size_t edge_count() const { return edge_count_; }

 private:
  std::unordered_map<rdf::TermId, std::vector<rdf::TermId>> parents_;
  std::unordered_map<rdf::TermId, std::vector<rdf::TermId>> children_;
  std::unordered_set<rdf::TermId> known_;
  size_t edge_count_ = 0;
  static const std::vector<rdf::TermId> kEmpty;
};

}  // namespace evorec::schema

#endif  // EVOREC_SCHEMA_HIERARCHY_H_
