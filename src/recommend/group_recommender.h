#ifndef EVOREC_RECOMMEND_GROUP_RECOMMENDER_H_
#define EVOREC_RECOMMEND_GROUP_RECOMMENDER_H_

#include <vector>

#include "profile/group.h"
#include "recommend/candidate.h"
#include "recommend/diversity.h"
#include "recommend/fairness.h"
#include "recommend/relatedness.h"

namespace evorec::recommend {

/// Options for group package selection (paper §III.d).
struct GroupSelectOptions {
  size_t package_size = 5;
  /// Aggregation used when fairness_aware is false.
  GroupAggregation aggregation = GroupAggregation::kAverage;
  /// Use the maximin fair-package selector instead of per-candidate
  /// aggregation.
  bool fairness_aware = true;
  /// Post-selection diversity improvement (swap local search on the
  /// MMR objective with the aggregated utility as relevance).
  bool diversify = true;
  double mmr_lambda = 0.7;
  DiversityKind diversity = DiversityKind::kContent;
};

/// Result of selecting a package for a group.
struct GroupSelection {
  std::vector<size_t> selection;  ///< indices into the candidate pool
  UtilityMatrix utilities;        ///< member × candidate relatedness
  FairnessDiagnostics fairness;
  double set_diversity = 0.0;
};

/// Builds the member × candidate utility matrix from relatedness
/// scores.
UtilityMatrix BuildUtilityMatrix(const std::vector<MeasureCandidate>& pool,
                                 const profile::Group& group,
                                 const RelatednessScorer& scorer);

/// Selects a measure package for `group` from `pool`, balancing group
/// utility, fairness and set diversity per `options`.
GroupSelection SelectForGroup(const std::vector<MeasureCandidate>& pool,
                              const profile::Group& group,
                              const RelatednessScorer& scorer,
                              const GroupSelectOptions& options);

}  // namespace evorec::recommend

#endif  // EVOREC_RECOMMEND_GROUP_RECOMMENDER_H_
