#ifndef EVOREC_RECOMMEND_EXPLANATION_H_
#define EVOREC_RECOMMEND_EXPLANATION_H_

#include <string>
#include <vector>

#include "profile/profile.h"
#include "provenance/record.h"
#include "rdf/dictionary.h"
#include "recommend/candidate.h"
#include "recommend/relatedness.h"

namespace evorec::recommend {

/// A human-readable justification of one recommended measure —
/// transparency at the recommendation level (§III.b): what the measure
/// is, where it looks, which of the user's interests it matched, and
/// the provenance record of the pipeline run that produced it.
struct Explanation {
  std::string candidate_id;
  std::string measure_name;
  std::string measure_description;
  std::string category;
  std::string region_label;
  /// IRIs of the most affected terms the user will see first.
  std::vector<std::string> top_affected;
  /// IRIs of the user's interests that the candidate matched.
  std::vector<std::string> matched_interests;
  double relatedness = 0.0;
  double novelty = 0.0;
  /// Provenance record of the producing pipeline stage (valid when
  /// has_provenance).
  provenance::RecordId provenance_record = 0;
  bool has_provenance = false;

  /// Renders a short multi-line justification.
  std::string ToText() const;
};

/// Builds the explanation of `candidate` for `profile`. When
/// `expanded_interests` (ExpandInterests(profile)) is supplied the
/// expansion is reused instead of recomputed — same output either way.
Explanation BuildExplanation(
    const MeasureCandidate& candidate, const profile::HumanProfile& profile,
    const RelatednessScorer& scorer, const rdf::Dictionary& dictionary,
    const std::unordered_map<rdf::TermId, double>* expanded_interests =
        nullptr);

}  // namespace evorec::recommend

#endif  // EVOREC_RECOMMEND_EXPLANATION_H_
