#include "recommend/fairness.h"

#include <algorithm>
#include <limits>

#include "common/statistics.h"

namespace evorec::recommend {

double AggregateUtility(const std::vector<double>& member_utilities,
                        GroupAggregation aggregation) {
  if (member_utilities.empty()) return 0.0;
  switch (aggregation) {
    case GroupAggregation::kAverage:
      return Mean(member_utilities);
    case GroupAggregation::kLeastMisery:
      return *std::min_element(member_utilities.begin(),
                               member_utilities.end());
    case GroupAggregation::kMostPleasure:
      return *std::max_element(member_utilities.begin(),
                               member_utilities.end());
  }
  return 0.0;
}

double MemberSatisfaction(const UtilityMatrix& utilities, size_t member,
                          const std::vector<size_t>& selection) {
  double best = 0.0;
  for (size_t index : selection) {
    best = std::max(best, utilities[member][index]);
  }
  return best;
}

FairnessDiagnostics EvaluatePackage(const UtilityMatrix& utilities,
                                    const std::vector<size_t>& selection) {
  FairnessDiagnostics diag;
  const size_t members = utilities.size();
  diag.satisfaction.resize(members, 0.0);
  for (size_t m = 0; m < members; ++m) {
    diag.satisfaction[m] = MemberSatisfaction(utilities, m, selection);
  }
  diag.mean_satisfaction = Mean(diag.satisfaction);
  diag.min_satisfaction = Min(diag.satisfaction);
  diag.gini = Gini(diag.satisfaction);

  // Always-least-satisfied detection: member m such that for every
  // selected item, m's utility is strictly below every other member's.
  if (members >= 2 && !selection.empty()) {
    for (size_t m = 0; m < members; ++m) {
      bool always_least = true;
      for (size_t index : selection) {
        for (size_t other = 0; other < members && always_least; ++other) {
          if (other == m) continue;
          if (utilities[m][index] >= utilities[other][index]) {
            always_least = false;
          }
        }
        if (!always_least) break;
      }
      if (always_least) {
        diag.has_always_least_satisfied_member = true;
        diag.always_least_satisfied_member = m;
        break;
      }
    }
  }
  return diag;
}

std::vector<size_t> SelectByAggregation(const UtilityMatrix& utilities,
                                        size_t k,
                                        GroupAggregation aggregation) {
  if (utilities.empty()) return {};
  const size_t candidates = utilities[0].size();
  std::vector<std::pair<double, size_t>> scored;
  scored.reserve(candidates);
  std::vector<double> member_utilities(utilities.size());
  for (size_t c = 0; c < candidates; ++c) {
    for (size_t m = 0; m < utilities.size(); ++m) {
      member_utilities[m] = utilities[m][c];
    }
    scored.emplace_back(AggregateUtility(member_utilities, aggregation), c);
  }
  std::sort(scored.begin(), scored.end(), [](const auto& a, const auto& b) {
    if (a.first != b.first) return a.first > b.first;
    return a.second < b.second;
  });
  std::vector<size_t> selection;
  for (size_t i = 0; i < std::min(k, scored.size()); ++i) {
    selection.push_back(scored[i].second);
  }
  return selection;
}

std::vector<size_t> SelectFairPackage(const UtilityMatrix& utilities,
                                      size_t k) {
  if (utilities.empty()) return {};
  const size_t candidates = utilities[0].size();
  const size_t members = utilities.size();
  std::vector<size_t> selection;
  std::vector<bool> used(candidates, false);
  // Running per-member satisfaction (max utility over selection).
  std::vector<double> satisfaction(members, 0.0);

  while (selection.size() < std::min(k, candidates)) {
    size_t best = candidates;
    double best_min = -std::numeric_limits<double>::infinity();
    double best_mean = -std::numeric_limits<double>::infinity();
    for (size_t c = 0; c < candidates; ++c) {
      if (used[c]) continue;
      double min_sat = std::numeric_limits<double>::infinity();
      double mean_sat = 0.0;
      for (size_t m = 0; m < members; ++m) {
        const double s = std::max(satisfaction[m], utilities[m][c]);
        min_sat = std::min(min_sat, s);
        mean_sat += s;
      }
      mean_sat /= static_cast<double>(members);
      if (min_sat > best_min ||
          (min_sat == best_min && mean_sat > best_mean)) {
        best_min = min_sat;
        best_mean = mean_sat;
        best = c;
      }
    }
    if (best == candidates) break;
    used[best] = true;
    selection.push_back(best);
    for (size_t m = 0; m < members; ++m) {
      satisfaction[m] = std::max(satisfaction[m], utilities[m][best]);
    }
  }
  return selection;
}

}  // namespace evorec::recommend
