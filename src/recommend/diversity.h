#ifndef EVOREC_RECOMMEND_DIVERSITY_H_
#define EVOREC_RECOMMEND_DIVERSITY_H_

#include <cstddef>
#include <vector>

#include "profile/profile.h"
#include "recommend/candidate.h"

namespace evorec::recommend {

/// The paper's three diversity flavours (§III.c, after Drosou &
/// Pitoura [4]).
enum class DiversityKind {
  kContent,   ///< dissimilar items: low top-term overlap
  kNovelty,   ///< new w.r.t. what the human has already seen
  kSemantic,  ///< different measure categories / focus regions
};

/// Pairwise distance between two candidates in [0,1] under `kind`.
///  - content:  1 − Jaccard(topTerms(a), topTerms(b))
///  - semantic: 0.5·[different category] + 0.2·[different scope]
///              + 0.3·(1 − Jaccard of top terms)
///  - novelty:  falls back to content distance (novelty is a
///    profile-relative property; see NoveltyScore).
double CandidateDistance(const MeasureCandidate& a, const MeasureCandidate& b,
                         DiversityKind kind);

/// Novelty of `candidate` for `profile`: fraction of its top terms the
/// profile has never been shown (§III.c "novelty-based").
double NoveltyScore(const profile::HumanProfile& profile,
                    const MeasureCandidate& candidate);

/// Precomputed pairwise CandidateDistance values of one pool under one
/// DiversityKind. Distances are user-independent, so a shared pool
/// builds the matrix once and every per-user selection reuses it; the
/// selectors below accept it as an optional fast path and produce
/// identical results with or without it.
class DistanceMatrix {
 public:
  DistanceMatrix() = default;

  static DistanceMatrix Build(const std::vector<MeasureCandidate>& candidates,
                              DiversityKind kind);

  bool empty() const { return n_ == 0; }
  /// Number of candidates the matrix covers.
  size_t size() const { return n_; }
  double at(size_t i, size_t j) const { return values_[i * n_ + j]; }

 private:
  size_t n_ = 0;
  std::vector<double> values_;
};

/// Mean pairwise distance of the selected set; 1.0 for sets smaller
/// than two (a singleton cannot be redundant). `distances` (covering
/// `candidates`) skips the per-pair recomputation.
double SetDiversity(const std::vector<MeasureCandidate>& candidates,
                    const std::vector<size_t>& selection, DiversityKind kind,
                    const DistanceMatrix* distances = nullptr);

/// How many distinct measure categories the selection covers, in
/// [0,1] (covered / 3).
double CategoryCoverage(const std::vector<MeasureCandidate>& candidates,
                        const std::vector<size_t>& selection);

/// Greedy Maximal Marginal Relevance: picks k candidates maximising
///   λ·relevance(c) + (1−λ)·min_{s ∈ selected} distance(c, s)
/// (the first pick is pure relevance). λ=1 reduces to top-k relevance,
/// λ=0 to pure diversification — the E6 sweep.
std::vector<size_t> SelectMmr(const std::vector<MeasureCandidate>& candidates,
                              const std::vector<double>& relevance, size_t k,
                              double lambda, DiversityKind kind,
                              const DistanceMatrix* distances = nullptr);

/// Greedy Max-Min diversification: first pick by relevance, then each
/// pick maximises the minimum distance to the selected set (relevance
/// used only to break ties).
std::vector<size_t> SelectMaxMin(
    const std::vector<MeasureCandidate>& candidates,
    const std::vector<double>& relevance, size_t k, DiversityKind kind);

/// Local-search improvement: repeatedly swaps a selected candidate for
/// an unselected one when the swap improves the MMR objective; at most
/// `max_rounds` full passes. Returns the improved selection.
std::vector<size_t> ImproveBySwaps(
    const std::vector<MeasureCandidate>& candidates,
    const std::vector<double>& relevance, std::vector<size_t> selection,
    double lambda, DiversityKind kind, size_t max_rounds = 4,
    const DistanceMatrix* distances = nullptr);

/// The MMR set objective: λ·(mean relevance) + (1−λ)·(set diversity).
double MmrObjective(const std::vector<MeasureCandidate>& candidates,
                    const std::vector<double>& relevance,
                    const std::vector<size_t>& selection, double lambda,
                    DiversityKind kind,
                    const DistanceMatrix* distances = nullptr);

}  // namespace evorec::recommend

#endif  // EVOREC_RECOMMEND_DIVERSITY_H_
