#include "recommend/diversity.h"

#include <algorithm>
#include <limits>
#include <unordered_set>

#include "common/statistics.h"

namespace evorec::recommend {

double CandidateDistance(const MeasureCandidate& a, const MeasureCandidate& b,
                         DiversityKind kind) {
  std::vector<uint32_t> ta(a.top_terms.begin(), a.top_terms.end());
  std::vector<uint32_t> tb(b.top_terms.begin(), b.top_terms.end());
  const double content = 1.0 - JaccardSimilarity(std::move(ta), std::move(tb));
  switch (kind) {
    case DiversityKind::kContent:
    case DiversityKind::kNovelty:
      return content;
    case DiversityKind::kSemantic: {
      const double category_diff =
          a.measure.category != b.measure.category ? 1.0 : 0.0;
      const double scope_diff = a.measure.scope != b.measure.scope ? 1.0 : 0.0;
      return 0.5 * category_diff + 0.2 * scope_diff + 0.3 * content;
    }
  }
  return content;
}

double NoveltyScore(const profile::HumanProfile& profile,
                    const MeasureCandidate& candidate) {
  return profile.NoveltyOf(candidate.top_terms);
}

DistanceMatrix DistanceMatrix::Build(
    const std::vector<MeasureCandidate>& candidates, DiversityKind kind) {
  DistanceMatrix matrix;
  matrix.n_ = candidates.size();
  matrix.values_.assign(matrix.n_ * matrix.n_, 0.0);
  for (size_t i = 0; i < matrix.n_; ++i) {
    for (size_t j = i + 1; j < matrix.n_; ++j) {
      const double d = CandidateDistance(candidates[i], candidates[j], kind);
      matrix.values_[i * matrix.n_ + j] = d;
      matrix.values_[j * matrix.n_ + i] = d;
    }
  }
  return matrix;
}

namespace {

// Distance via the precomputed matrix when available.
inline double PairDistance(const std::vector<MeasureCandidate>& candidates,
                           size_t i, size_t j, DiversityKind kind,
                           const DistanceMatrix* distances) {
  if (distances != nullptr && distances->size() == candidates.size()) {
    return distances->at(i, j);
  }
  return CandidateDistance(candidates[i], candidates[j], kind);
}

}  // namespace

double SetDiversity(const std::vector<MeasureCandidate>& candidates,
                    const std::vector<size_t>& selection, DiversityKind kind,
                    const DistanceMatrix* distances) {
  if (selection.size() < 2) return 1.0;
  double total = 0.0;
  size_t pairs = 0;
  for (size_t i = 0; i < selection.size(); ++i) {
    for (size_t j = i + 1; j < selection.size(); ++j) {
      total += PairDistance(candidates, selection[i], selection[j], kind,
                            distances);
      ++pairs;
    }
  }
  return total / static_cast<double>(pairs);
}

double CategoryCoverage(const std::vector<MeasureCandidate>& candidates,
                        const std::vector<size_t>& selection) {
  std::unordered_set<int> covered;
  for (size_t index : selection) {
    covered.insert(static_cast<int>(candidates[index].measure.category));
  }
  return static_cast<double>(covered.size()) / 3.0;
}

std::vector<size_t> SelectMmr(const std::vector<MeasureCandidate>& candidates,
                              const std::vector<double>& relevance, size_t k,
                              double lambda, DiversityKind kind,
                              const DistanceMatrix* distances) {
  const size_t n = candidates.size();
  std::vector<size_t> selected;
  std::vector<bool> used(n, false);
  // Min distance from each candidate to the selected set, updated
  // incrementally (O(n·k) distance evaluations).
  std::vector<double> min_distance(n, 1.0);
  while (selected.size() < std::min(k, n)) {
    size_t best = n;
    double best_score = -std::numeric_limits<double>::infinity();
    for (size_t i = 0; i < n; ++i) {
      if (used[i]) continue;
      const double score = selected.empty()
                               ? relevance[i]
                               : lambda * relevance[i] +
                                     (1.0 - lambda) * min_distance[i];
      if (score > best_score) {
        best_score = score;
        best = i;
      }
    }
    if (best == n) break;
    used[best] = true;
    selected.push_back(best);
    for (size_t i = 0; i < n; ++i) {
      if (used[i]) continue;
      min_distance[i] =
          std::min(min_distance[i],
                   PairDistance(candidates, i, best, kind, distances));
    }
  }
  return selected;
}

std::vector<size_t> SelectMaxMin(
    const std::vector<MeasureCandidate>& candidates,
    const std::vector<double>& relevance, size_t k, DiversityKind kind) {
  const size_t n = candidates.size();
  std::vector<size_t> selected;
  std::vector<bool> used(n, false);
  std::vector<double> min_distance(n, 1.0);
  while (selected.size() < std::min(k, n)) {
    size_t best = n;
    double best_primary = -1.0;
    double best_tie = -1.0;
    for (size_t i = 0; i < n; ++i) {
      if (used[i]) continue;
      const double primary = selected.empty() ? relevance[i] : min_distance[i];
      const double tie = relevance[i];
      if (primary > best_primary ||
          (primary == best_primary && tie > best_tie)) {
        best_primary = primary;
        best_tie = tie;
        best = i;
      }
    }
    if (best == n) break;
    used[best] = true;
    selected.push_back(best);
    for (size_t i = 0; i < n; ++i) {
      if (used[i]) continue;
      min_distance[i] = std::min(
          min_distance[i],
          CandidateDistance(candidates[i], candidates[best], kind));
    }
  }
  return selected;
}

double MmrObjective(const std::vector<MeasureCandidate>& candidates,
                    const std::vector<double>& relevance,
                    const std::vector<size_t>& selection, double lambda,
                    DiversityKind kind, const DistanceMatrix* distances) {
  if (selection.empty()) return 0.0;
  double mean_relevance = 0.0;
  for (size_t index : selection) mean_relevance += relevance[index];
  mean_relevance /= static_cast<double>(selection.size());
  const double diversity =
      SetDiversity(candidates, selection, kind, distances);
  return lambda * mean_relevance + (1.0 - lambda) * diversity;
}

std::vector<size_t> ImproveBySwaps(
    const std::vector<MeasureCandidate>& candidates,
    const std::vector<double>& relevance, std::vector<size_t> selection,
    double lambda, DiversityKind kind, size_t max_rounds,
    const DistanceMatrix* distances) {
  const size_t n = candidates.size();
  std::vector<bool> used(n, false);
  for (size_t index : selection) used[index] = true;
  double current =
      MmrObjective(candidates, relevance, selection, lambda, kind, distances);
  for (size_t round = 0; round < max_rounds; ++round) {
    bool improved = false;
    for (size_t pos = 0; pos < selection.size(); ++pos) {
      for (size_t i = 0; i < n; ++i) {
        if (used[i]) continue;
        const size_t old_index = selection[pos];
        selection[pos] = i;
        const double candidate_objective = MmrObjective(
            candidates, relevance, selection, lambda, kind, distances);
        if (candidate_objective > current + 1e-12) {
          current = candidate_objective;
          used[old_index] = false;
          used[i] = true;
          improved = true;
        } else {
          selection[pos] = old_index;
        }
      }
    }
    if (!improved) break;
  }
  return selection;
}

}  // namespace evorec::recommend
