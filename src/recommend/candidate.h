#ifndef EVOREC_RECOMMEND_CANDIDATE_H_
#define EVOREC_RECOMMEND_CANDIDATE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "measures/measure_context.h"
#include "measures/registry.h"
#include "measures/report.h"

namespace evorec::recommend {

/// One recommendable item: an evolution measure applied to a focus
/// region of the KB. The recommender ranks and packages candidates;
/// the paper's "evolution measures or their mix" are exactly sets of
/// these.
struct MeasureCandidate {
  /// Unique id: "<measure>@<region>" (region "all" for whole-KB).
  std::string id;
  /// Metadata of the producing measure.
  measures::MeasureInfo measure;
  /// Focus class of the region; kAnyTerm for whole-KB candidates.
  rdf::TermId focus = rdf::kAnyTerm;
  /// Human-readable region label ("all" or the focus IRI).
  std::string region_label;
  /// The (raw) measure report restricted to the region.
  measures::MeasureReport report;
  /// Cached top terms of `report` (size candidate_top_k), used by
  /// relatedness, diversity and novelty scoring.
  std::vector<rdf::TermId> top_terms;
};

/// Options for candidate generation.
struct CandidateOptions {
  /// How many top terms represent each candidate downstream.
  size_t top_k = 10;
  /// Also emit region-focused candidates around the most-changed
  /// classes (in addition to whole-KB candidates).
  bool per_region = true;
  /// How many hot regions to focus (by extended change count).
  size_t max_regions = 6;
};

/// Generates the candidate pool for one evolution context: every
/// registered measure over the whole KB, plus — when per_region —
/// each class-scoped measure restricted to the neighborhoods of the
/// most-changed classes. Fails if any measure computation fails.
Result<std::vector<MeasureCandidate>> GenerateCandidates(
    const measures::MeasureRegistry& registry,
    const measures::EvolutionContext& ctx, const CandidateOptions& options);

/// Same pool, but built from already-computed whole-KB reports (one
/// per measure, aligned with `infos`) instead of invoking the measures
/// — the serving path, where an engine memoizes reports per context
/// and many users share them. GenerateCandidates(registry, ctx, o) is
/// exactly equivalent to feeding this the registry's infos and the
/// freshly-computed reports.
Result<std::vector<MeasureCandidate>> GenerateCandidatesFromReports(
    const std::vector<measures::MeasureInfo>& infos,
    const std::vector<std::shared_ptr<const measures::MeasureReport>>& reports,
    const measures::EvolutionContext& ctx, const CandidateOptions& options);

}  // namespace evorec::recommend

#endif  // EVOREC_RECOMMEND_CANDIDATE_H_
