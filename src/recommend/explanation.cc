#include "recommend/explanation.h"

#include "common/strings.h"
#include "measures/measure.h"
#include "recommend/diversity.h"

namespace evorec::recommend {

Explanation BuildExplanation(
    const MeasureCandidate& candidate, const profile::HumanProfile& profile,
    const RelatednessScorer& scorer, const rdf::Dictionary& dictionary,
    const std::unordered_map<rdf::TermId, double>* expanded_interests) {
  Explanation e;
  e.candidate_id = candidate.id;
  e.measure_name = candidate.measure.name;
  e.measure_description = candidate.measure.description;
  e.category = measures::MeasureCategoryName(candidate.measure.category);
  e.region_label = candidate.region_label;
  std::unordered_map<rdf::TermId, double> local_expansion;
  if (expanded_interests == nullptr) {
    local_expansion = scorer.ExpandInterests(profile);
    expanded_interests = &local_expansion;
  }
  const auto& interests = *expanded_interests;
  e.relatedness = scorer.ScoreExpanded(interests, profile, candidate);
  e.novelty = NoveltyScore(profile, candidate);
  for (rdf::TermId term : candidate.top_terms) {
    auto looked_up = dictionary.Lookup(term);
    const std::string label =
        looked_up.ok() ? looked_up->lexical : std::to_string(term);
    e.top_affected.push_back(label);
    auto it = interests.find(term);
    if (it != interests.end() && it->second > 0.0) {
      e.matched_interests.push_back(label);
    }
  }
  return e;
}

std::string Explanation::ToText() const {
  std::string out;
  out += "measure '" + measure_name + "' (" + category + ") on region '" +
         region_label + "'\n";
  out += "  why: " + measure_description + "\n";
  out += "  relatedness " + FormatDouble(relatedness, 2) + ", novelty " +
         FormatDouble(novelty, 2) + "\n";
  if (!matched_interests.empty()) {
    out += "  matches your interests: " + StrJoin(matched_interests, ", ") +
           "\n";
  }
  if (!top_affected.empty()) {
    out += "  most affected: " + StrJoin(top_affected, ", ") + "\n";
  }
  if (has_provenance) {
    out += "  provenance record #" + std::to_string(provenance_record) + "\n";
  }
  return out;
}

}  // namespace evorec::recommend
