#ifndef EVOREC_RECOMMEND_ANONYMITY_GATE_H_
#define EVOREC_RECOMMEND_ANONYMITY_GATE_H_

#include <string>
#include <vector>

#include "anonymity/access_policy.h"
#include "recommend/candidate.h"

namespace evorec::recommend {

/// Outcome of passing a candidate pool through the anonymity gate.
struct GateOutcome {
  std::vector<MeasureCandidate> candidates;  ///< surviving candidates
  size_t redacted_terms = 0;     ///< report entries removed by policy
  size_t dropped_candidates = 0; ///< candidates fully emptied and dropped
};

/// Applies strict access rules (paper §III.e) to a candidate pool
/// before any scoring happens: sensitive terms the agent may not see
/// are removed from every report and top-term list; candidates whose
/// visible content becomes empty are dropped entirely. A null policy
/// passes everything through.
GateOutcome ApplyAccessGate(const anonymity::AccessPolicy* policy,
                            const std::string& agent,
                            std::vector<MeasureCandidate> candidates,
                            size_t top_k);

}  // namespace evorec::recommend

#endif  // EVOREC_RECOMMEND_ANONYMITY_GATE_H_
