#ifndef EVOREC_RECOMMEND_FAIRNESS_H_
#define EVOREC_RECOMMEND_FAIRNESS_H_

#include <cstddef>
#include <vector>

namespace evorec::recommend {

/// Member × candidate utility matrix: utilities[m][c] is how useful
/// candidate c is to group member m (here: relatedness scores).
using UtilityMatrix = std::vector<std::vector<double>>;

/// Classic group utility aggregation strategies.
enum class GroupAggregation {
  kAverage,      ///< maximise mean member utility
  kLeastMisery,  ///< maximise the unhappiest member's utility
  kMostPleasure, ///< maximise the happiest member's utility
};

/// Aggregates per-member utilities of one candidate.
double AggregateUtility(const std::vector<double>& member_utilities,
                        GroupAggregation aggregation);

/// Satisfaction of member `m` with a selected package: the best
/// utility any selected candidate gives them (a member is served if
/// *some* item in the package speaks to them).
double MemberSatisfaction(const UtilityMatrix& utilities, size_t member,
                          const std::vector<size_t>& selection);

/// Package-level fairness diagnostics (paper §III.d).
struct FairnessDiagnostics {
  std::vector<double> satisfaction;  ///< per member
  double mean_satisfaction = 0.0;
  double min_satisfaction = 0.0;
  /// Gini of the satisfaction distribution (0 = perfectly equal).
  double gini = 0.0;
  /// True iff some member is the *strictly* least satisfied member for
  /// every single item of the package — the paper's explicit unfair
  /// pattern ("a human u that is the least satisfied … for all
  /// measures in the recommendations list").
  bool has_always_least_satisfied_member = false;
  /// Index of that member (first found), or SIZE_MAX.
  size_t always_least_satisfied_member = static_cast<size_t>(-1);
};

/// Evaluates the fairness of `selection` for the whole group.
FairnessDiagnostics EvaluatePackage(const UtilityMatrix& utilities,
                                    const std::vector<size_t>& selection);

/// Greedy selection maximising the aggregated utility (one aggregation
/// per candidate, pick top-k).
std::vector<size_t> SelectByAggregation(const UtilityMatrix& utilities,
                                        size_t k,
                                        GroupAggregation aggregation);

/// Fairness-aware package selection: greedily adds the candidate that
/// maximises the resulting minimum member satisfaction (maximin over
/// the package), breaking ties by mean satisfaction. This directly
/// targets the paper's requirement of packages "both strongly related
/// and fair to the majority of the group members".
std::vector<size_t> SelectFairPackage(const UtilityMatrix& utilities,
                                      size_t k);

}  // namespace evorec::recommend

#endif  // EVOREC_RECOMMEND_FAIRNESS_H_
