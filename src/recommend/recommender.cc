#include "recommend/recommender.h"

#include <algorithm>
#include <memory>
#include <optional>

#include "provenance/workflow.h"

namespace evorec::recommend {

Recommender::Recommender(const measures::MeasureRegistry& registry,
                         RecommenderOptions options)
    : registry_(registry), options_(std::move(options)) {}

void Recommender::AttachProvenance(provenance::ProvenanceStore* store) {
  provenance_ = store;
}

void Recommender::AttachAccessPolicy(const anonymity::AccessPolicy* policy) {
  policy_ = policy;
}

namespace {

// Thin wrapper so pipeline code reads identically with and without an
// attached provenance store.
class StageTracer {
 public:
  StageTracer(provenance::ProvenanceStore* store, const std::string& run_name,
              const std::string& agent)
      : workflow_(store == nullptr
                      ? nullptr
                      : std::make_unique<provenance::Workflow>(
                            run_name, agent, *store)) {}

  void Run(const std::string& stage, const std::string& entity,
           const std::string& note) {
    if (workflow_ == nullptr) return;
    std::vector<provenance::RecordId> inputs;
    if (!workflow_->stage_records().empty()) {
      inputs.push_back(workflow_->stage_records().back());
    }
    (void)workflow_->RunStage(stage, entity,
                              provenance::SourceKind::kInference, inputs,
                              [&] { return note; });
  }

  std::vector<provenance::RecordId> trail() const {
    return workflow_ == nullptr ? std::vector<provenance::RecordId>{}
                                : workflow_->stage_records();
  }

  std::optional<provenance::RecordId> last() const {
    if (workflow_ == nullptr || workflow_->stage_records().empty()) {
      return std::nullopt;
    }
    return workflow_->stage_records().back();
  }

 private:
  std::unique_ptr<provenance::Workflow> workflow_;
};

std::vector<rdf::TermId> DeliveredTerms(
    const std::vector<RecommendationItem>& items) {
  std::vector<rdf::TermId> terms;
  for (const RecommendationItem& item : items) {
    terms.insert(terms.end(), item.candidate.top_terms.begin(),
                 item.candidate.top_terms.end());
  }
  return terms;
}

std::vector<measures::MeasureReport> NormalizeReports(
    const std::vector<MeasureCandidate>& pool) {
  std::vector<measures::MeasureReport> normalized;
  normalized.reserve(pool.size());
  for (const MeasureCandidate& candidate : pool) {
    normalized.push_back(candidate.report.Normalized());
  }
  return normalized;
}

}  // namespace

Result<SharedRunState> Recommender::PreparePool(
    const measures::EvolutionContext& ctx) const {
  auto pool = GenerateCandidates(registry_, ctx, options_.candidates);
  if (!pool.ok()) return pool.status();
  SharedRunState shared;
  shared.ctx = &ctx;
  shared.pool = std::move(pool).value();
  return shared;
}

Result<SharedRunState> Recommender::PrepareShared(
    const measures::EvolutionContext& ctx) const {
  auto shared = PreparePool(ctx);
  if (!shared.ok()) return shared;
  shared->normalized = NormalizeReports(shared->pool);
  shared->distances = DistanceMatrix::Build(shared->pool, options_.diversity);
  return shared;
}

Result<SharedRunState> Recommender::PrepareShared(
    const measures::EvolutionContext& ctx,
    const std::vector<measures::MeasureInfo>& infos,
    const std::vector<std::shared_ptr<const measures::MeasureReport>>&
        reports) const {
  auto pool =
      GenerateCandidatesFromReports(infos, reports, ctx, options_.candidates);
  if (!pool.ok()) return pool.status();
  SharedRunState shared;
  shared.ctx = &ctx;
  shared.pool = std::move(pool).value();
  shared.normalized = NormalizeReports(shared.pool);
  shared.distances = DistanceMatrix::Build(shared.pool, options_.diversity);
  return shared;
}

Result<RecommendationList> Recommender::RecommendForUser(
    const measures::EvolutionContext& ctx,
    profile::HumanProfile& prof) const {
  // With a policy attached the per-user gating invalidates the shared
  // normalisation/distances, so don't build them for one run.
  auto shared = policy_ == nullptr ? PrepareShared(ctx) : PreparePool(ctx);
  if (!shared.ok()) return shared.status();
  return RecommendForUser(*shared, prof);
}

Result<RecommendationList> Recommender::RecommendForUser(
    const SharedRunState& shared, profile::HumanProfile& prof) const {
  return RecommendForUser(shared, prof, provenance_);
}

Result<RecommendationList> Recommender::RecommendForUser(
    const SharedRunState& shared, profile::HumanProfile& prof,
    provenance::ProvenanceStore* trace) const {
  const measures::EvolutionContext& ctx = *shared.ctx;
  StageTracer tracer(trace, "recommend_user/" + prof.id(), "evorec");
  tracer.Run("context", "evolution_context",
             "delta size " + std::to_string(ctx.low_level_delta().size()));
  tracer.Run("candidates", "candidate_pool",
             std::to_string(shared.pool.size()) + " candidates");

  // Null policy: the gate is an identity, so score straight off the
  // shared pool (and its pre-normalised reports) without copying it.
  // With a policy attached, gating redacts per user and the shared
  // normalisation no longer lines up.
  GateOutcome gated;
  const bool use_shared_pool = policy_ == nullptr;
  if (!use_shared_pool) {
    gated = ApplyAccessGate(policy_, prof.id(), shared.pool,
                            options_.candidates.top_k);
  }
  const std::vector<MeasureCandidate>& candidates =
      use_shared_pool ? shared.pool : gated.candidates;
  const bool have_normalized =
      use_shared_pool && shared.normalized.size() == shared.pool.size();
  tracer.Run("anonymity_gate", "gated_pool",
             std::to_string(candidates.size()) + " visible, " +
                 std::to_string(gated.dropped_candidates) + " dropped");

  const RelatednessScorer scorer(ctx, options_.relatedness);
  const std::unordered_map<rdf::TermId, double> expanded =
      scorer.ExpandInterests(prof);
  std::vector<double> relatedness(candidates.size(), 0.0);
  std::vector<double> novelty(candidates.size(), 0.0);
  std::vector<double> relevance(candidates.size(), 0.0);
  for (size_t i = 0; i < candidates.size(); ++i) {
    relatedness[i] = scorer.ScoreExpanded(
        expanded, prof, candidates[i],
        have_normalized ? &shared.normalized[i] : nullptr);
    novelty[i] = NoveltyScore(prof, candidates[i]);
    relevance[i] = (1.0 - options_.novelty_weight) * relatedness[i] +
                   options_.novelty_weight * novelty[i];
  }
  tracer.Run("scoring", "scored_pool",
             "relatedness+novelty over " +
                 std::to_string(candidates.size()) + " candidates");

  const DistanceMatrix* distances =
      use_shared_pool && shared.distances.size() == candidates.size()
          ? &shared.distances
          : nullptr;
  std::vector<size_t> selection =
      SelectMmr(candidates, relevance, options_.package_size,
                options_.mmr_lambda, options_.diversity, distances);
  selection = ImproveBySwaps(candidates, relevance, std::move(selection),
                             options_.mmr_lambda, options_.diversity,
                             /*max_rounds=*/4, distances);
  tracer.Run("selection", "package",
             std::to_string(selection.size()) + " measures selected");

  RecommendationList list;
  list.candidate_pool_size = candidates.size();
  list.redacted_terms = gated.redacted_terms;
  list.dropped_candidates = gated.dropped_candidates;
  for (size_t index : selection) {
    RecommendationItem item;
    item.candidate = candidates[index];
    item.relatedness = relatedness[index];
    item.novelty = novelty[index];
    item.explanation = BuildExplanation(item.candidate, prof, scorer,
                                        ctx.before().dictionary(), &expanded);
    if (auto last = tracer.last(); last.has_value()) {
      item.explanation.has_provenance = true;
      item.explanation.provenance_record = *last;
    }
    list.items.push_back(std::move(item));
  }
  list.set_diversity =
      SetDiversity(candidates, selection, options_.diversity, distances);
  list.category_coverage = CategoryCoverage(candidates, selection);
  list.provenance_trail = tracer.trail();

  if (options_.record_seen) {
    prof.RecordSeen(DeliveredTerms(list.items));
  }
  return list;
}

Result<RecommendationList> Recommender::RecommendForGroup(
    const measures::EvolutionContext& ctx, profile::Group& group) const {
  if (group.empty()) {
    return InvalidArgumentError("cannot recommend to an empty group");
  }
  // The group pipeline scores through its own utility matrix and never
  // reads the shared normalisation/distances — skip building them.
  auto shared = PreparePool(ctx);
  if (!shared.ok()) return shared.status();
  return RecommendForGroup(*shared, group);
}

Result<RecommendationList> Recommender::RecommendForGroup(
    const SharedRunState& shared, profile::Group& group) const {
  return RecommendForGroup(shared, group, provenance_);
}

Result<RecommendationList> Recommender::RecommendForGroup(
    const SharedRunState& shared, profile::Group& group,
    provenance::ProvenanceStore* trace) const {
  if (group.empty()) {
    return InvalidArgumentError("cannot recommend to an empty group");
  }
  const measures::EvolutionContext& ctx = *shared.ctx;
  StageTracer tracer(trace, "recommend_group/" + group.id(), "evorec");
  tracer.Run("context", "evolution_context",
             "delta size " + std::to_string(ctx.low_level_delta().size()));
  tracer.Run("candidates", "candidate_pool",
             std::to_string(shared.pool.size()) + " candidates");

  // The gate applies the *most restrictive* view: a term is visible to
  // the group only if every member may see it. Implemented by
  // filtering per member and keeping the intersection via sequential
  // application.
  std::vector<MeasureCandidate> candidates = shared.pool;
  size_t redacted_total = 0;
  size_t dropped_total = 0;
  for (const profile::HumanProfile& member : group.members()) {
    GateOutcome gated = ApplyAccessGate(policy_, member.id(),
                                        std::move(candidates),
                                        options_.candidates.top_k);
    candidates = std::move(gated.candidates);
    redacted_total += gated.redacted_terms;
    dropped_total += gated.dropped_candidates;
  }
  tracer.Run("anonymity_gate", "gated_pool",
             std::to_string(candidates.size()) + " visible");

  const RelatednessScorer scorer(ctx, options_.relatedness);
  GroupSelectOptions group_options = options_.group;
  group_options.package_size = options_.package_size;
  GroupSelection selected =
      SelectForGroup(candidates, group, scorer, group_options);
  tracer.Run("selection", "package",
             std::to_string(selected.selection.size()) +
                 " measures selected (fairness_aware=" +
                 (group_options.fairness_aware ? "yes" : "no") + ")");

  RecommendationList list;
  list.candidate_pool_size = candidates.size();
  list.redacted_terms = redacted_total;
  list.dropped_candidates = dropped_total;
  list.fairness = selected.fairness;
  list.set_diversity = selected.set_diversity;
  list.category_coverage = CategoryCoverage(candidates, selected.selection);
  for (size_t index : selected.selection) {
    RecommendationItem item;
    item.candidate = candidates[index];
    // Item-level relatedness for a group is the mean member utility.
    double mean_utility = 0.0;
    for (size_t m = 0; m < group.size(); ++m) {
      mean_utility += selected.utilities[m][index];
    }
    item.relatedness = mean_utility / static_cast<double>(group.size());
    item.novelty = 0.0;
    item.explanation = BuildExplanation(item.candidate, group.members()[0],
                                        scorer, ctx.before().dictionary());
    if (auto last = tracer.last(); last.has_value()) {
      item.explanation.has_provenance = true;
      item.explanation.provenance_record = *last;
    }
    list.items.push_back(std::move(item));
  }
  list.provenance_trail = tracer.trail();

  if (options_.record_seen) {
    group.RecordSeen(DeliveredTerms(list.items));
  }
  return list;
}

}  // namespace evorec::recommend
