#include "recommend/anonymity_gate.h"

namespace evorec::recommend {

GateOutcome ApplyAccessGate(const anonymity::AccessPolicy* policy,
                            const std::string& agent,
                            std::vector<MeasureCandidate> candidates,
                            size_t top_k) {
  GateOutcome outcome;
  if (policy == nullptr) {
    outcome.candidates = std::move(candidates);
    return outcome;
  }
  for (MeasureCandidate& candidate : candidates) {
    size_t redacted = 0;
    measures::MeasureReport filtered =
        policy->FilterReport(agent, candidate.report, &redacted);
    outcome.redacted_terms += redacted;
    // Candidates focused on a sensitive class the agent cannot see are
    // dropped regardless of report content.
    const bool focus_denied =
        candidate.focus != rdf::kAnyTerm &&
        !policy->CheckAccess(agent, candidate.focus).ok();
    if (focus_denied || filtered.empty() || filtered.TotalScore() <= 0.0) {
      ++outcome.dropped_candidates;
      continue;
    }
    candidate.report = std::move(filtered);
    candidate.top_terms = candidate.report.TopKTerms(top_k);
    outcome.candidates.push_back(std::move(candidate));
  }
  return outcome;
}

}  // namespace evorec::recommend
