#ifndef EVOREC_RECOMMEND_RELATEDNESS_H_
#define EVOREC_RECOMMEND_RELATEDNESS_H_

#include <unordered_map>

#include "measures/measure_context.h"
#include "profile/profile.h"
#include "recommend/candidate.h"

namespace evorec::recommend {

/// Options for relatedness scoring (paper §III.a).
struct RelatednessOptions {
  /// Interests propagate through the subsumption hierarchy: a user
  /// interested in Person is somewhat interested in its sub- and
  /// superclasses. Weight multiplies by `propagation_decay` per hop,
  /// up to `propagation_hops` hops; 0 hops disables propagation (the
  /// E5 ablation).
  double propagation_decay = 0.5;
  size_t propagation_hops = 2;
  /// Multiply scores by the profile's affinity for the measure's
  /// category.
  bool use_category_affinity = true;
};

/// Scores how related a candidate is to a human's interests: the
/// interest-weighted mass of the candidate's top affected terms. Built
/// once per (context, options) pair; Score() is then cheap per
/// (profile, candidate).
class RelatednessScorer {
 public:
  RelatednessScorer(const measures::EvolutionContext& ctx,
                    RelatednessOptions options);

  /// The profile's interests expanded through the class hierarchy
  /// (max-combined over paths, normalised so the strongest interest
  /// is 1).
  std::unordered_map<rdf::TermId, double> ExpandInterests(
      const profile::HumanProfile& profile) const;

  /// Relatedness of `candidate` to `profile` in [0,1]:
  ///   Σ_t w(t) · I*(t)  /  Σ_t w(t)
  /// over the candidate's top terms t, where w is the candidate's
  /// normalised score of t and I* the expanded interest; scaled by the
  /// profile's category affinity when enabled (clamped back to [0,1]).
  double Score(const profile::HumanProfile& profile,
               const MeasureCandidate& candidate) const;

  /// Score() with the per-run state hoisted out: `expanded_interests`
  /// is ExpandInterests(profile) computed once for a whole pool, and
  /// `normalized` (optional) is candidate.report.Normalized() computed
  /// once for all users. Numerically identical to Score() — the
  /// serving loops depend on that.
  double ScoreExpanded(
      const std::unordered_map<rdf::TermId, double>& expanded_interests,
      const profile::HumanProfile& profile, const MeasureCandidate& candidate,
      const measures::MeasureReport* normalized = nullptr) const;

  const RelatednessOptions& options() const { return options_; }

 private:
  const measures::EvolutionContext& ctx_;
  RelatednessOptions options_;
};

}  // namespace evorec::recommend

#endif  // EVOREC_RECOMMEND_RELATEDNESS_H_
