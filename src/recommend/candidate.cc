#include "recommend/candidate.h"

#include <algorithm>
#include <unordered_set>

namespace evorec::recommend {

namespace {

// Restricts `report` to `region` (focus + union neighborhood).
measures::MeasureReport RestrictReport(
    const measures::MeasureReport& report,
    const std::unordered_set<rdf::TermId>& region) {
  measures::MeasureReport out;
  for (const measures::ScoredTerm& s : report.scores()) {
    if (region.count(s.term)) out.Add(s.term, s.score);
  }
  return out;
}

MeasureCandidate MakeCandidate(const measures::MeasureInfo& info,
                               rdf::TermId focus, std::string region_label,
                               measures::MeasureReport report,
                               size_t top_k) {
  MeasureCandidate c;
  c.measure = info;
  c.focus = focus;
  c.region_label = std::move(region_label);
  c.id = info.name + "@" + c.region_label;
  c.top_terms = report.TopKTerms(top_k);
  c.report = std::move(report);
  return c;
}

}  // namespace

Result<std::vector<MeasureCandidate>> GenerateCandidatesFromReports(
    const std::vector<measures::MeasureInfo>& infos,
    const std::vector<std::shared_ptr<const measures::MeasureReport>>& reports,
    const measures::EvolutionContext& ctx, const CandidateOptions& options) {
  if (infos.size() != reports.size()) {
    return InvalidArgumentError(
        "GenerateCandidatesFromReports: one report per measure required");
  }
  std::vector<MeasureCandidate> candidates;

  // Whole-KB candidates: every measure once.
  for (size_t m = 0; m < infos.size(); ++m) {
    if (reports[m] == nullptr) {
      return InvalidArgumentError(
          "GenerateCandidatesFromReports: null report for '" +
          infos[m].name + "'");
    }
    candidates.push_back(MakeCandidate(infos[m], rdf::kAnyTerm, "all",
                                       *reports[m], options.top_k));
  }
  if (!options.per_region) return candidates;

  // Hot regions: most-changed classes by extended attribution.
  measures::MeasureReport heat;
  for (rdf::TermId cls : ctx.union_classes()) {
    heat.Add(cls, static_cast<double>(
                      ctx.delta_index().ExtendedChanges(cls)));
  }
  const std::vector<rdf::TermId> hot =
      heat.TopKTerms(options.max_regions);

  for (rdf::TermId focus : hot) {
    if (heat.ScoreOf(focus) <= 0.0) continue;  // untouched class
    std::unordered_set<rdf::TermId> region{focus};
    for (rdf::TermId n : ctx.delta_index().UnionNeighborhood(focus)) {
      region.insert(n);
    }
    const std::string label = ctx.before().dictionary().term(focus).lexical;
    for (size_t m = 0; m < infos.size(); ++m) {
      const measures::MeasureInfo& info = infos[m];
      if (info.scope != measures::MeasureScope::kClass) continue;
      measures::MeasureReport restricted =
          RestrictReport(*reports[m], region);
      if (restricted.empty() || restricted.TotalScore() <= 0.0) continue;
      candidates.push_back(MakeCandidate(info, focus, label,
                                         std::move(restricted),
                                         options.top_k));
    }
  }
  return candidates;
}

Result<std::vector<MeasureCandidate>> GenerateCandidates(
    const measures::MeasureRegistry& registry,
    const measures::EvolutionContext& ctx, const CandidateOptions& options) {
  const auto measures_list = registry.CreateAll();
  std::vector<measures::MeasureInfo> infos;
  std::vector<std::shared_ptr<const measures::MeasureReport>> reports;
  infos.reserve(measures_list.size());
  reports.reserve(measures_list.size());
  for (const auto& measure : measures_list) {
    auto report = measure->Compute(ctx);
    if (!report.ok()) return report.status();
    infos.push_back(measure->info());
    reports.push_back(std::make_shared<const measures::MeasureReport>(
        std::move(report).value()));
  }
  return GenerateCandidatesFromReports(infos, reports, ctx, options);
}

}  // namespace evorec::recommend
