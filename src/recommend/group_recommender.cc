#include "recommend/group_recommender.h"

namespace evorec::recommend {

UtilityMatrix BuildUtilityMatrix(const std::vector<MeasureCandidate>& pool,
                                 const profile::Group& group,
                                 const RelatednessScorer& scorer) {
  UtilityMatrix utilities(group.size(),
                          std::vector<double>(pool.size(), 0.0));
  for (size_t m = 0; m < group.size(); ++m) {
    // One interest expansion per member, not per (member, candidate).
    const auto expanded = scorer.ExpandInterests(group.members()[m]);
    for (size_t c = 0; c < pool.size(); ++c) {
      utilities[m][c] =
          scorer.ScoreExpanded(expanded, group.members()[m], pool[c]);
    }
  }
  return utilities;
}

GroupSelection SelectForGroup(const std::vector<MeasureCandidate>& pool,
                              const profile::Group& group,
                              const RelatednessScorer& scorer,
                              const GroupSelectOptions& options) {
  GroupSelection result;
  result.utilities = BuildUtilityMatrix(pool, group, scorer);
  if (pool.empty() || group.empty()) return result;

  if (options.fairness_aware) {
    result.selection =
        SelectFairPackage(result.utilities, options.package_size);
  } else {
    result.selection = SelectByAggregation(
        result.utilities, options.package_size, options.aggregation);
  }

  if (options.diversify && result.selection.size() > 1) {
    // Aggregated utility per candidate serves as the relevance vector
    // for the diversity swap search.
    std::vector<double> aggregated(pool.size(), 0.0);
    std::vector<double> member_utilities(group.size());
    for (size_t c = 0; c < pool.size(); ++c) {
      for (size_t m = 0; m < group.size(); ++m) {
        member_utilities[m] = result.utilities[m][c];
      }
      aggregated[c] = AggregateUtility(member_utilities, options.aggregation);
    }
    result.selection =
        ImproveBySwaps(pool, aggregated, result.selection,
                       options.mmr_lambda, options.diversity);
  }

  result.fairness = EvaluatePackage(result.utilities, result.selection);
  result.set_diversity =
      SetDiversity(pool, result.selection, options.diversity);
  return result;
}

}  // namespace evorec::recommend
