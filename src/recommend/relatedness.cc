#include "recommend/relatedness.h"

#include <algorithm>
#include <cmath>
#include <deque>

namespace evorec::recommend {

RelatednessScorer::RelatednessScorer(const measures::EvolutionContext& ctx,
                                     RelatednessOptions options)
    : ctx_(ctx), options_(options) {}

std::unordered_map<rdf::TermId, double> RelatednessScorer::ExpandInterests(
    const profile::HumanProfile& profile) const {
  std::unordered_map<rdf::TermId, double> expanded(
      profile.interests().begin(), profile.interests().end());

  if (options_.propagation_hops > 0 && options_.propagation_decay > 0.0) {
    const schema::ClassHierarchy& before = ctx_.view_before().hierarchy();
    const schema::ClassHierarchy& after = ctx_.view_after().hierarchy();
    // BFS from every seeded interest through both versions'
    // hierarchies; combine weights with max so repeated paths don't
    // inflate.
    for (const auto& [seed, weight] : profile.interests()) {
      std::unordered_map<rdf::TermId, size_t> hop{{seed, 0}};
      std::deque<rdf::TermId> queue{seed};
      while (!queue.empty()) {
        const rdf::TermId node = queue.front();
        queue.pop_front();
        const size_t h = hop[node];
        if (h >= options_.propagation_hops) continue;
        auto visit = [&](rdf::TermId next) {
          if (hop.count(next)) return;
          hop[next] = h + 1;
          const double propagated =
              weight *
              std::pow(options_.propagation_decay, static_cast<double>(h + 1));
          auto it = expanded.find(next);
          if (it == expanded.end() || it->second < propagated) {
            expanded[next] = propagated;
          }
          queue.push_back(next);
        };
        for (rdf::TermId p : before.Parents(node)) visit(p);
        for (rdf::TermId c : before.Children(node)) visit(c);
        for (rdf::TermId p : after.Parents(node)) visit(p);
        for (rdf::TermId c : after.Children(node)) visit(c);
      }
    }
  }

  // Normalise the strongest interest to 1 so relatedness lands in
  // [0,1] regardless of the profile's weight scale.
  double max_weight = 0.0;
  for (const auto& [term, weight] : expanded) {
    (void)term;
    max_weight = std::max(max_weight, weight);
  }
  if (max_weight > 0.0) {
    for (auto& [term, weight] : expanded) {
      (void)term;
      weight /= max_weight;
    }
  }
  return expanded;
}

double RelatednessScorer::Score(const profile::HumanProfile& profile,
                                const MeasureCandidate& candidate) const {
  if (candidate.top_terms.empty()) return 0.0;
  return ScoreExpanded(ExpandInterests(profile), profile, candidate);
}

double RelatednessScorer::ScoreExpanded(
    const std::unordered_map<rdf::TermId, double>& expanded_interests,
    const profile::HumanProfile& profile, const MeasureCandidate& candidate,
    const measures::MeasureReport* normalized) const {
  if (candidate.top_terms.empty()) return 0.0;
  measures::MeasureReport local;
  if (normalized == nullptr) {
    local = candidate.report.Normalized();
    normalized = &local;
  }
  double weighted = 0.0;
  double weight_total = 0.0;
  for (rdf::TermId term : candidate.top_terms) {
    // Rank-independent weight: the candidate's normalised score, with
    // a floor so that a candidate whose scores are all equal still
    // differentiates by interest overlap.
    const double w = std::max(normalized->ScoreOf(term), 0.1);
    weight_total += w;
    auto it = expanded_interests.find(term);
    if (it != expanded_interests.end()) {
      weighted += w * it->second;
    }
  }
  if (weight_total <= 0.0) return 0.0;
  double score = weighted / weight_total;
  if (options_.use_category_affinity) {
    score *= profile.CategoryAffinity(candidate.measure.category);
  }
  return std::clamp(score, 0.0, 1.0);
}

}  // namespace evorec::recommend
