#ifndef EVOREC_RECOMMEND_RECOMMENDER_H_
#define EVOREC_RECOMMEND_RECOMMENDER_H_

#include <memory>
#include <string>
#include <vector>

#include "anonymity/access_policy.h"
#include "common/result.h"
#include "measures/measure_context.h"
#include "measures/registry.h"
#include "profile/group.h"
#include "profile/profile.h"
#include "provenance/store.h"
#include "recommend/anonymity_gate.h"
#include "recommend/candidate.h"
#include "recommend/diversity.h"
#include "recommend/explanation.h"
#include "recommend/fairness.h"
#include "recommend/group_recommender.h"
#include "recommend/relatedness.h"

namespace evorec::recommend {

/// Configuration of the full recommendation pipeline.
struct RecommenderOptions {
  CandidateOptions candidates;
  RelatednessOptions relatedness;
  /// Number of measures per recommendation package.
  size_t package_size = 5;
  /// Relevance/diversity balance of the individual selector.
  double mmr_lambda = 0.7;
  DiversityKind diversity = DiversityKind::kContent;
  /// Blend novelty into individual relevance:
  /// relevance = (1−w)·relatedness + w·novelty.
  double novelty_weight = 0.0;
  /// Group strategy.
  GroupSelectOptions group;
  /// Record recommended terms into profiles' seen-history after
  /// delivering (enables novelty on the next run).
  bool record_seen = true;
};

/// The user-independent half of a recommendation run: the candidate
/// pool generated for one (context, options) pair, shared verbatim by
/// every user and group asking about that version pair. Per-run state
/// (gating, scoring, selection, explanation) stays inside the
/// Recommend* calls, so one SharedRunState may serve many concurrent
/// runs. `ctx` must outlive the state.
struct SharedRunState {
  const measures::EvolutionContext* ctx = nullptr;
  /// Pre-gate candidate pool (per-user gating works on a copy).
  std::vector<MeasureCandidate> pool;
  /// normalized[i] == pool[i].report.Normalized() — user-independent
  /// scoring input computed once for all users.
  std::vector<measures::MeasureReport> normalized;
  /// Pairwise candidate distances under the recommender's diversity
  /// kind — user-independent selection input computed once.
  DistanceMatrix distances;
};

/// One delivered recommendation.
struct RecommendationItem {
  MeasureCandidate candidate;
  double relatedness = 0.0;
  double novelty = 0.0;
  Explanation explanation;
};

/// A delivered package plus its quality diagnostics.
struct RecommendationList {
  std::vector<RecommendationItem> items;
  double set_diversity = 0.0;
  double category_coverage = 0.0;
  /// Group runs only; default-initialised otherwise.
  FairnessDiagnostics fairness;
  size_t candidate_pool_size = 0;
  size_t redacted_terms = 0;
  size_t dropped_candidates = 0;
  /// Provenance records of the pipeline stages (empty when no store is
  /// attached).
  std::vector<provenance::RecordId> provenance_trail;
  /// Set by the serving layer while it is in the DEGRADED health
  /// state: the list is consistent but may reflect the last
  /// successfully committed version rather than the requested one
  /// (engine::RecommendationService, docs/STORAGE.md).
  bool degraded = false;
  /// Set by the serving layer while it is browned out under sustained
  /// overload: the list was served in the declared cheaper mode
  /// (sampled betweenness) rather than the configured one
  /// (engine::RecommendationService overload control).
  bool brownout = false;
};

/// The paper's processing model: generate measure candidates for a
/// version pair, pass them through the anonymity gate, score
/// relatedness (and novelty), select a diverse (or fair) package, and
/// explain every pick — with the whole run captured as a provenance
/// workflow when a store is attached.
class Recommender {
 public:
  /// `registry` must outlive the recommender.
  Recommender(const measures::MeasureRegistry& registry,
              RecommenderOptions options = {});

  /// Attaches a provenance store; every subsequent run records its
  /// stages (transparency, §III.b). Pass nullptr to detach.
  void AttachProvenance(provenance::ProvenanceStore* store);

  /// Attaches strict access rules applied before scoring (§III.e).
  /// Pass nullptr to detach.
  void AttachAccessPolicy(const anonymity::AccessPolicy* policy);

  /// Builds the user-independent shared state for `ctx` by computing
  /// every measure through the registry. Includes the scoring/
  /// selection accelerators (normalised reports, distance matrix);
  /// PreparePool builds only the candidate pool for pipelines that
  /// don't read them (group runs, gated per-call runs).
  Result<SharedRunState> PrepareShared(
      const measures::EvolutionContext& ctx) const;
  Result<SharedRunState> PreparePool(
      const measures::EvolutionContext& ctx) const;

  /// Builds the shared state from already-computed whole-KB reports
  /// (the engine's memoized serving path); produces a pool identical
  /// to PrepareShared(ctx) when the reports match the registry.
  Result<SharedRunState> PrepareShared(
      const measures::EvolutionContext& ctx,
      const std::vector<measures::MeasureInfo>& infos,
      const std::vector<std::shared_ptr<const measures::MeasureReport>>&
          reports) const;

  /// Recommends a measure package to one human. Mutates `prof` only to
  /// record the delivered terms (when options().record_seen).
  Result<RecommendationList> RecommendForUser(
      const measures::EvolutionContext& ctx,
      profile::HumanProfile& prof) const;

  /// Serving path: same pipeline over a prepared shared state. Safe to
  /// call concurrently for distinct profiles against one state (the
  /// per-run stages work on a copy of the pool), and byte-identical to
  /// the context overload given equivalent shared state.
  Result<RecommendationList> RecommendForUser(
      const SharedRunState& shared, profile::HumanProfile& prof) const;

  /// Serving path with an explicit trace store overriding the attached
  /// one — the parallel-batch hook: each worker traces into a private
  /// scratch store (workflow timestamps are per-run logical clocks, so
  /// a scratch trace is byte-identical to an in-place one) and the
  /// batch layer splices the scratches back in deterministic order.
  /// nullptr runs untraced.
  Result<RecommendationList> RecommendForUser(
      const SharedRunState& shared, profile::HumanProfile& prof,
      provenance::ProvenanceStore* trace) const;

  /// Recommends one shared package to a group (§III.d).
  Result<RecommendationList> RecommendForGroup(
      const measures::EvolutionContext& ctx, profile::Group& group) const;

  /// Serving path of the group pipeline over a prepared shared state.
  Result<RecommendationList> RecommendForGroup(
      const SharedRunState& shared, profile::Group& group) const;

  /// Group flavour of the explicit-trace serving path.
  Result<RecommendationList> RecommendForGroup(
      const SharedRunState& shared, profile::Group& group,
      provenance::ProvenanceStore* trace) const;

  const RecommenderOptions& options() const { return options_; }
  const measures::MeasureRegistry& registry() const { return registry_; }

 private:
  const measures::MeasureRegistry& registry_;
  RecommenderOptions options_;
  provenance::ProvenanceStore* provenance_ = nullptr;
  const anonymity::AccessPolicy* policy_ = nullptr;
};

}  // namespace evorec::recommend

#endif  // EVOREC_RECOMMEND_RECOMMENDER_H_
