#ifndef EVOREC_STORAGE_SEGMENT_IO_H_
#define EVOREC_STORAGE_SEGMENT_IO_H_

#include <string>
#include <string_view>

#include "common/result.h"
#include "rdf/term.h"
#include "rdf/triple_store.h"

namespace evorec::storage {

/// Segment-preserving persistence of a segmented TripleStore: one
/// sorted run per frozen segment (live triples and tombstones
/// separately), each CRC-framed with the same section discipline as
/// the snapshot container. Unlike EncodeSnapshot — which flattens the
/// store into one merged SPO run — this round-trips the segment
/// *structure*, so a store reloaded from it shares nothing but has
/// the identical segment list, and versions persisted from one chain
/// re-load as cheaply layerable units.
///
/// The container carries no term table: it is a companion to a
/// snapshot (or a live dictionary) that supplies one. Callers pass
/// the dictionary size to DecodeSegments so every id is validated
/// against the table the runs will be read with.
std::string EncodeSegments(const rdf::TripleStore& store);

/// Rebuilds the store from an EncodeSegments image, validating header
/// and per-section CRCs, sorted-unique run order, live/tombstone
/// disjointness per segment, and that every id is < `term_count`.
Result<rdf::TripleStore> DecodeSegments(std::string_view bytes,
                                        rdf::TermId term_count);

/// True when `bytes` starts with the segment-container magic.
bool LooksLikeSegments(std::string_view bytes);

}  // namespace evorec::storage

#endif  // EVOREC_STORAGE_SEGMENT_IO_H_
