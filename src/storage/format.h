#ifndef EVOREC_STORAGE_FORMAT_H_
#define EVOREC_STORAGE_FORMAT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/binary_io.h"
#include "common/status.h"
#include "rdf/term.h"
#include "rdf/triple.h"

namespace evorec::storage {

/// Shared constants and sub-codecs of the on-disk formats. The
/// byte-level contract lives in docs/STORAGE.md; this header is the
/// single place the magic numbers and version floors are defined.

/// Snapshot file magic: ASCII "EVORECS1" (S = snapshot, 1 = era).
inline constexpr char kSnapshotMagic[8] = {'E', 'V', 'O', 'R',
                                           'E', 'C', 'S', '1'};
/// Commit-log file magic: ASCII "EVORECL1" (L = log).
inline constexpr char kLogMagic[8] = {'E', 'V', 'O', 'R',
                                      'E', 'C', 'L', '1'};
/// Segment-container magic: ASCII "EVORECG1" (G = segments) — the
/// segment-preserving store image of storage/segment_io.h.
inline constexpr char kSegmentsMagic[8] = {'E', 'V', 'O', 'R',
                                           'E', 'C', 'G', '1'};
/// Per-record sync marker inside a commit log ("RECL" little-endian).
inline constexpr uint32_t kRecordMagic = 0x4C434552;

/// Current format version of both containers. Readers accept exactly
/// this version; see docs/STORAGE.md § Versioning for the compat
/// rules (bump on any incompatible layout change).
inline constexpr uint32_t kFormatVersion = 1;

/// Section ids inside a snapshot.
inline constexpr uint32_t kSectionTerms = 1;
inline constexpr uint32_t kSectionTriples = 2;
/// Section id of one frozen segment inside a segment container.
inline constexpr uint32_t kSectionSegment = 3;

/// Appends one term: kind byte, length-prefixed lexical, and (for
/// literals) length-prefixed datatype + language.
void EncodeTerm(std::string& out, const rdf::Term& term);

/// Decodes one term; false on truncated/invalid input (bad kind byte).
bool DecodeTerm(ByteReader& reader, rdf::Term* term);

/// Appends `triples` delta-encoded against the running previous
/// triple (starting from (0,0,0)): varint Δs when the sequence is
/// sorted-ascending (`sorted` = true, snapshot SPO runs), zig-zag Δs
/// otherwise (commit-log records, which must preserve the caller's
/// order); Δp and Δo are always zig-zag. See docs/STORAGE.md.
void EncodeTripleRun(std::string& out, const std::vector<rdf::Triple>& triples,
                     bool sorted);

/// Decodes `count` triples. With `sorted`, enforces strictly
/// ascending SPO order (rejects corrupt runs); ids must fit TermId.
/// False on any violation.
bool DecodeTripleRun(ByteReader& reader, uint64_t count, bool sorted,
                     std::vector<rdf::Triple>* out);

}  // namespace evorec::storage

#endif  // EVOREC_STORAGE_FORMAT_H_
