#include "storage/snapshot.h"

#include <cstring>
#include <utility>
#include <vector>

#include "common/binary_io.h"
#include "storage/format.h"

namespace evorec::storage {

namespace {

// Fixed-size snapshot header layout; docs/STORAGE.md is the contract.
constexpr size_t kHeaderSize = 52;       // incl. trailing header CRC
constexpr size_t kHeaderCrcRange = 48;   // bytes covered by that CRC

void AppendSection(std::string& out, uint32_t section_id,
                   const std::string& payload) {
  PutFixed32(out, section_id);
  PutFixed64(out, payload.size());
  out.append(payload);
  PutFixed32(out, Crc32(payload));
}

Status ReadSection(ByteReader& reader, uint32_t expected_id,
                   std::string_view* payload) {
  uint32_t section_id = 0;
  uint64_t payload_len = 0;
  if (!reader.ReadFixed32(&section_id) || !reader.ReadFixed64(&payload_len)) {
    return InvalidArgumentError("snapshot: truncated section header");
  }
  if (section_id != expected_id) {
    return InvalidArgumentError("snapshot: expected section " +
                                std::to_string(expected_id) + ", found " +
                                std::to_string(section_id));
  }
  if (payload_len > reader.remaining()) {
    return InvalidArgumentError("snapshot: section " +
                                std::to_string(section_id) +
                                " truncated (payload)");
  }
  if (!reader.ReadBytes(static_cast<size_t>(payload_len), payload)) {
    return InvalidArgumentError("snapshot: section " +
                                std::to_string(section_id) +
                                " truncated (payload)");
  }
  uint32_t stored_crc = 0;
  if (!reader.ReadFixed32(&stored_crc)) {
    return InvalidArgumentError("snapshot: section " +
                                std::to_string(section_id) +
                                " truncated (checksum)");
  }
  if (Crc32(*payload) != stored_crc) {
    return InvalidArgumentError("snapshot: section " +
                                std::to_string(section_id) +
                                " checksum mismatch");
  }
  return OkStatus();
}

}  // namespace

std::string EncodeSnapshot(const rdf::TripleStore& store,
                           const rdf::Dictionary& dictionary,
                           uint32_t version_id, uint64_t fingerprint) {
  const std::vector<rdf::Triple>& spo = store.triples();  // compacts

  std::string terms;
  for (rdf::TermId id = 0; id < dictionary.size(); ++id) {
    EncodeTerm(terms, dictionary.term(id));
  }
  std::string triples;
  EncodeTripleRun(triples, spo, /*sorted=*/true);

  std::string out;
  out.reserve(kHeaderSize + terms.size() + triples.size() + 32);
  out.append(kSnapshotMagic, sizeof(kSnapshotMagic));
  PutFixed32(out, kFormatVersion);
  PutFixed32(out, 0);  // flags
  PutFixed32(out, version_id);
  PutFixed32(out, 0);  // reserved
  PutFixed64(out, fingerprint);
  PutFixed64(out, dictionary.size());
  PutFixed64(out, spo.size());
  PutFixed32(out, Crc32(std::string_view(out.data(), kHeaderCrcRange)));

  AppendSection(out, kSectionTerms, terms);
  AppendSection(out, kSectionTriples, triples);
  return out;
}

namespace {

Result<SnapshotInfo> ParseHeader(ByteReader& reader, std::string_view bytes) {
  std::string_view magic;
  if (!reader.ReadBytes(sizeof(kSnapshotMagic), &magic) ||
      std::memcmp(magic.data(), kSnapshotMagic, sizeof(kSnapshotMagic)) != 0) {
    return InvalidArgumentError("snapshot: bad magic (not a snapshot file)");
  }
  uint32_t format_version = 0;
  uint32_t flags = 0;
  uint32_t reserved = 0;
  SnapshotInfo info;
  if (!reader.ReadFixed32(&format_version) || !reader.ReadFixed32(&flags) ||
      !reader.ReadFixed32(&info.version_id) || !reader.ReadFixed32(&reserved) ||
      !reader.ReadFixed64(&info.fingerprint) ||
      !reader.ReadFixed64(&info.term_count) ||
      !reader.ReadFixed64(&info.triple_count)) {
    return InvalidArgumentError("snapshot: truncated header");
  }
  if (format_version != kFormatVersion) {
    return InvalidArgumentError("snapshot: unsupported format version " +
                                std::to_string(format_version) +
                                " (reader supports " +
                                std::to_string(kFormatVersion) + ")");
  }
  uint32_t stored_crc = 0;
  if (!reader.ReadFixed32(&stored_crc)) {
    return InvalidArgumentError("snapshot: truncated header");
  }
  if (Crc32(bytes.substr(0, kHeaderCrcRange)) != stored_crc) {
    return InvalidArgumentError("snapshot: header checksum mismatch");
  }
  return info;
}

}  // namespace

Result<SnapshotInfo> PeekSnapshotInfo(std::string_view bytes) {
  ByteReader reader(bytes);
  return ParseHeader(reader, bytes);
}

bool LooksLikeSnapshot(std::string_view bytes) {
  return bytes.size() >= sizeof(kSnapshotMagic) &&
         std::memcmp(bytes.data(), kSnapshotMagic, sizeof(kSnapshotMagic)) == 0;
}

Result<DecodedSnapshot> DecodeSnapshot(std::string_view bytes) {
  ByteReader reader(bytes);
  auto header = ParseHeader(reader, bytes);
  if (!header.ok()) return header.status();
  DecodedSnapshot decoded;
  decoded.info = *header;

  std::string_view terms_payload;
  EVOREC_RETURN_IF_ERROR(ReadSection(reader, kSectionTerms, &terms_payload));
  decoded.dictionary = std::make_shared<rdf::Dictionary>();
  {
    ByteReader terms(terms_payload);
    rdf::Term term;
    for (uint64_t id = 0; id < decoded.info.term_count; ++id) {
      if (!DecodeTerm(terms, &term)) {
        return InvalidArgumentError("snapshot: malformed term " +
                                    std::to_string(id));
      }
      // A duplicate term in a corrupt table would intern to the
      // earlier id; the mismatch surfaces it.
      if (decoded.dictionary->Intern(term) != static_cast<rdf::TermId>(id)) {
        return InvalidArgumentError("snapshot: duplicate term " +
                                    std::to_string(id) + " in term table");
      }
    }
    if (!terms.empty()) {
      return InvalidArgumentError("snapshot: trailing bytes in term table");
    }
  }

  std::string_view triples_payload;
  EVOREC_RETURN_IF_ERROR(
      ReadSection(reader, kSectionTriples, &triples_payload));
  std::vector<rdf::Triple> spo;
  {
    ByteReader triples(triples_payload);
    if (!DecodeTripleRun(triples, decoded.info.triple_count, /*sorted=*/true,
                         &spo)) {
      return InvalidArgumentError("snapshot: malformed SPO run");
    }
    if (!triples.empty()) {
      return InvalidArgumentError("snapshot: trailing bytes in SPO run");
    }
  }
  // Triples must reference the term table they shipped with.
  const rdf::TermId term_count =
      static_cast<rdf::TermId>(decoded.info.term_count);
  for (const rdf::Triple& t : spo) {
    if (t.subject >= term_count || t.predicate >= term_count ||
        t.object >= term_count) {
      return InvalidArgumentError("snapshot: triple references term id "
                                  "beyond the term table");
    }
  }
  decoded.store = rdf::TripleStore::FromSorted(std::move(spo));

  if (!reader.empty()) {
    return InvalidArgumentError("snapshot: trailing bytes after last section");
  }
  return decoded;
}

Status SaveSnapshot(const std::string& path, const rdf::TripleStore& store,
                    const rdf::Dictionary& dictionary, uint32_t version_id,
                    uint64_t fingerprint, const SnapshotOptions& options) {
  return WriteFileAtomic(path,
                         EncodeSnapshot(store, dictionary, version_id,
                                        fingerprint),
                         options.sync, options.env);
}

Result<DecodedSnapshot> LoadSnapshot(const std::string& path, Env* env) {
  auto bytes = ReadFileToString(path, env);
  if (!bytes.ok()) return bytes.status();
  return DecodeSnapshot(*bytes);
}

}  // namespace evorec::storage
