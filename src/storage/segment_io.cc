#include "storage/segment_io.h"

#include <algorithm>
#include <cstring>
#include <memory>
#include <utility>
#include <vector>

#include "common/binary_io.h"
#include "rdf/segment.h"
#include "storage/format.h"

namespace evorec::storage {

namespace {

// Header: magic(8) + format(4) + flags(4) + segment_count(4) +
// reserved(4) + effective_size(8) + crc(4).
constexpr size_t kHeaderSize = 36;
constexpr size_t kHeaderCrcRange = 32;

void AppendSection(std::string& out, uint32_t section_id,
                   const std::string& payload) {
  PutFixed32(out, section_id);
  PutFixed64(out, payload.size());
  out.append(payload);
  PutFixed32(out, Crc32(payload));
}

Status ReadSection(ByteReader& reader, uint32_t expected_id,
                   std::string_view* payload) {
  uint32_t section_id = 0;
  uint64_t payload_len = 0;
  if (!reader.ReadFixed32(&section_id) || !reader.ReadFixed64(&payload_len)) {
    return InvalidArgumentError("segments: truncated section header");
  }
  if (section_id != expected_id) {
    return InvalidArgumentError("segments: expected section " +
                                std::to_string(expected_id) + ", found " +
                                std::to_string(section_id));
  }
  if (payload_len > reader.remaining() ||
      !reader.ReadBytes(static_cast<size_t>(payload_len), payload)) {
    return InvalidArgumentError("segments: section truncated (payload)");
  }
  uint32_t stored_crc = 0;
  if (!reader.ReadFixed32(&stored_crc)) {
    return InvalidArgumentError("segments: section truncated (checksum)");
  }
  if (Crc32(*payload) != stored_crc) {
    return InvalidArgumentError("segments: section checksum mismatch");
  }
  return OkStatus();
}

Status DecodeRun(ByteReader& reader, const char* what, rdf::TermId term_count,
                 std::vector<rdf::Triple>* out) {
  uint64_t count = 0;
  if (!reader.ReadFixed64(&count)) {
    return InvalidArgumentError(std::string("segments: truncated ") + what +
                                " run length");
  }
  if (!DecodeTripleRun(reader, count, /*sorted=*/true, out)) {
    return InvalidArgumentError(std::string("segments: malformed ") + what +
                                " run");
  }
  for (const rdf::Triple& t : *out) {
    if (t.subject >= term_count || t.predicate >= term_count ||
        t.object >= term_count) {
      return InvalidArgumentError(
          std::string("segments: ") + what +
          " run references term id beyond the term table");
    }
  }
  return OkStatus();
}

}  // namespace

std::string EncodeSegments(const rdf::TripleStore& store) {
  const auto& segments = store.segments();  // compacts first

  std::string out;
  out.append(kSegmentsMagic, sizeof(kSegmentsMagic));
  PutFixed32(out, kFormatVersion);
  PutFixed32(out, 0);  // flags
  PutFixed32(out, static_cast<uint32_t>(segments.size()));
  PutFixed32(out, 0);  // reserved
  PutFixed64(out, store.size());
  PutFixed32(out, Crc32(std::string_view(out.data(), kHeaderCrcRange)));

  for (const auto& segment : segments) {
    std::string payload;
    PutFixed64(payload, segment->live().size());
    EncodeTripleRun(payload, segment->live(), /*sorted=*/true);
    PutFixed64(payload, segment->tombstones().size());
    EncodeTripleRun(payload, segment->tombstones(), /*sorted=*/true);
    AppendSection(out, kSectionSegment, payload);
  }
  return out;
}

bool LooksLikeSegments(std::string_view bytes) {
  return bytes.size() >= sizeof(kSegmentsMagic) &&
         std::memcmp(bytes.data(), kSegmentsMagic,
                     sizeof(kSegmentsMagic)) == 0;
}

Result<rdf::TripleStore> DecodeSegments(std::string_view bytes,
                                        rdf::TermId term_count) {
  ByteReader reader(bytes);
  std::string_view magic;
  if (!reader.ReadBytes(sizeof(kSegmentsMagic), &magic) ||
      std::memcmp(magic.data(), kSegmentsMagic, sizeof(kSegmentsMagic)) != 0) {
    return InvalidArgumentError(
        "segments: bad magic (not a segment container)");
  }
  uint32_t format_version = 0;
  uint32_t flags = 0;
  uint32_t segment_count = 0;
  uint32_t reserved = 0;
  uint64_t effective_size = 0;
  if (!reader.ReadFixed32(&format_version) || !reader.ReadFixed32(&flags) ||
      !reader.ReadFixed32(&segment_count) || !reader.ReadFixed32(&reserved) ||
      !reader.ReadFixed64(&effective_size)) {
    return InvalidArgumentError("segments: truncated header");
  }
  if (format_version != kFormatVersion) {
    return InvalidArgumentError("segments: unsupported format version " +
                                std::to_string(format_version));
  }
  uint32_t stored_crc = 0;
  if (!reader.ReadFixed32(&stored_crc)) {
    return InvalidArgumentError("segments: truncated header");
  }
  if (Crc32(bytes.substr(0, kHeaderCrcRange)) != stored_crc) {
    return InvalidArgumentError("segments: header checksum mismatch");
  }

  std::vector<std::shared_ptr<const rdf::Segment>> segments;
  segments.reserve(segment_count);
  for (uint32_t i = 0; i < segment_count; ++i) {
    std::string_view payload;
    EVOREC_RETURN_IF_ERROR(ReadSection(reader, kSectionSegment, &payload));
    ByteReader section(payload);
    std::vector<rdf::Triple> live;
    std::vector<rdf::Triple> tombstones;
    EVOREC_RETURN_IF_ERROR(DecodeRun(section, "live", term_count, &live));
    EVOREC_RETURN_IF_ERROR(
        DecodeRun(section, "tombstone", term_count, &tombstones));
    if (!section.empty()) {
      return InvalidArgumentError("segments: trailing bytes in segment " +
                                  std::to_string(i));
    }
    // The Segment invariant DecodeTripleRun can't check: a triple may
    // not be both live and tombstoned in one segment.
    for (const rdf::Triple& t : tombstones) {
      if (std::binary_search(live.begin(), live.end(), t)) {
        return InvalidArgumentError(
            "segments: segment " + std::to_string(i) +
            " lists a triple as both live and tombstoned");
      }
    }
    segments.push_back(std::make_shared<const rdf::Segment>(
        std::move(live), std::move(tombstones)));
  }
  if (!reader.empty()) {
    return InvalidArgumentError("segments: trailing bytes after last segment");
  }
  return rdf::TripleStore::FromSegments(std::move(segments),
                                        static_cast<size_t>(effective_size));
}

}  // namespace evorec::storage
