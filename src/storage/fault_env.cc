#include "storage/fault_env.h"

#include <algorithm>
#include <cstring>
#include <utility>

namespace evorec::storage {

/// Handles keep the epoch of the environment they were opened in; a
/// crash bumps the epoch, so every pre-crash handle is permanently
/// dead even after Restart() — exactly like file descriptors of a
/// process that lost power.
class FaultWritableFile : public WritableFile {
 public:
  FaultWritableFile(FaultInjectionEnv* env, std::string path, uint64_t epoch)
      : env_(env), path_(std::move(path)), epoch_(epoch) {}

  Status Append(std::string_view data) override {
    if (closed_) {
      return FailedPreconditionError("append to closed file '" + path_ + "'");
    }
    return env_->DoAppend(path_, epoch_, data);
  }

  Status Sync() override {
    if (closed_) {
      return FailedPreconditionError("sync of closed file '" + path_ + "'");
    }
    return env_->DoSync(path_, epoch_);
  }

  Status Close() override {
    closed_ = true;
    return OkStatus();
  }

 private:
  FaultInjectionEnv* env_;
  std::string path_;
  uint64_t epoch_;
  bool closed_ = false;
};

class FaultReadableFile : public ReadableFile {
 public:
  FaultReadableFile(FaultInjectionEnv* env, std::string path, uint64_t epoch)
      : env_(env), path_(std::move(path)), epoch_(epoch) {}

  Result<size_t> Read(size_t n, char* scratch) override {
    return env_->DoRead(path_, epoch_, &offset_, n, scratch);
  }

 private:
  FaultInjectionEnv* env_;
  std::string path_;
  uint64_t epoch_;
  uint64_t offset_ = 0;
};

FaultInjectionEnv::FaultInjectionEnv(uint64_t seed) : rng_(seed) {}

void FaultInjectionEnv::set_plan(const FaultPlan& plan) {
  std::lock_guard<std::mutex> lock(mu_);
  plan_ = plan;
}

FaultPlan FaultInjectionEnv::plan() const {
  std::lock_guard<std::mutex> lock(mu_);
  return plan_;
}

void FaultInjectionEnv::ClearFaults() {
  std::lock_guard<std::mutex> lock(mu_);
  plan_ = FaultPlan{};
}

void FaultInjectionEnv::CrashNow() {
  std::lock_guard<std::mutex> lock(mu_);
  CrashLocked();
}

void FaultInjectionEnv::Restart() {
  std::lock_guard<std::mutex> lock(mu_);
  down_ = false;
}

bool FaultInjectionEnv::down() const {
  std::lock_guard<std::mutex> lock(mu_);
  return down_;
}

FaultCounters FaultInjectionEnv::counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_;
}

std::vector<uint64_t> FaultInjectionEnv::recorded_sleeps() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sleeps_;
}

Status FaultInjectionEnv::CorruptFile(const std::string& path,
                                      uint64_t offset, uint8_t mask) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = files_.find(path);
  if (it == files_.end()) {
    return NotFoundError("no such file '" + path + "'");
  }
  FileState& state = it->second;
  if (offset >= state.data.size()) {
    return InvalidArgumentError("corrupt offset past end of '" + path + "'");
  }
  state.data[offset] = static_cast<char>(
      static_cast<uint8_t>(state.data[offset]) ^ mask);
  if (state.shadow.has_value() && offset < state.shadow->size()) {
    (*state.shadow)[offset] = static_cast<char>(
        static_cast<uint8_t>((*state.shadow)[offset]) ^ mask);
  }
  return OkStatus();
}

Status FaultInjectionEnv::CheckUpLocked(const char* what) const {
  if (down_) {
    return UnavailableError(std::string("environment is down after "
                                        "simulated crash (") +
                            what + ")");
  }
  return OkStatus();
}

Status FaultInjectionEnv::MutatingOpLocked(const char* what, int* countdown) {
  ++counters_.mutating_ops;
  if (plan_.crash_at_op > 0 &&
      counters_.mutating_ops >= static_cast<uint64_t>(plan_.crash_at_op)) {
    plan_.crash_at_op = 0;  // one-shot
    CrashLocked();
    // Power was cut before this operation took effect.
    return UnavailableError(std::string("simulated power loss during ") +
                            what);
  }
  if (countdown != nullptr && *countdown > 0) {
    --*countdown;
    ++counters_.injected_errors;
    return Status(plan_.error_code,
                  std::string("injected ") + what + " failure");
  }
  return OkStatus();
}

void FaultInjectionEnv::CrashLocked() {
  ++counters_.crashes;
  down_ = true;
  ++epoch_;  // every open handle is now permanently stale
  for (auto it = files_.begin(); it != files_.end();) {
    FileState& state = it->second;
    std::optional<std::string> durable;
    if (state.entry_durable) {
      size_t keep = state.synced;
      if (plan_.torn_tails && state.data.size() > state.synced) {
        // Some un-synced bytes may have reached the platter before the
        // power died: keep a seeded random-length prefix of them — the
        // torn tail the log replay must detect and drop.
        const size_t unsynced = state.data.size() - state.synced;
        keep += rng_() % (unsynced + 1);
      }
      durable = state.data.substr(0, keep);
    } else {
      durable = state.shadow;  // pre-rename target content, or nothing
    }
    if (!durable.has_value()) {
      it = files_.erase(it);
      continue;
    }
    state.data = std::move(*durable);
    state.synced = state.data.size();
    state.entry_durable = true;
    state.shadow.reset();
    ++it;
  }
}

std::optional<std::string> FaultInjectionEnv::DurableContentLocked(
    const FileState& state) const {
  if (state.entry_durable) return state.data.substr(0, state.synced);
  return state.shadow;
}

Result<std::unique_ptr<WritableFile>> FaultInjectionEnv::NewWritableFile(
    const std::string& path, bool append) {
  std::lock_guard<std::mutex> lock(mu_);
  ++counters_.opens;
  EVOREC_RETURN_IF_ERROR(CheckUpLocked("open"));
  FileState& state = files_[path];
  if (!append) {
    // O_TRUNC: the live file becomes empty, but until the new content
    // is fsync'd a crash restores whatever was durable before.
    state.shadow = DurableContentLocked(state);
    state.data.clear();
    state.synced = 0;
    state.entry_durable = false;
  }
  return std::unique_ptr<WritableFile>(
      std::make_unique<FaultWritableFile>(this, path, epoch_));
}

Result<std::unique_ptr<ReadableFile>> FaultInjectionEnv::NewReadableFile(
    const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  ++counters_.opens;
  EVOREC_RETURN_IF_ERROR(CheckUpLocked("open"));
  if (files_.find(path) == files_.end()) {
    return NotFoundError("cannot open '" + path + "': no such file");
  }
  return std::unique_ptr<ReadableFile>(
      std::make_unique<FaultReadableFile>(this, path, epoch_));
}

bool FaultInjectionEnv::FileExists(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  return files_.find(path) != files_.end();
}

Result<uint64_t> FaultInjectionEnv::FileSize(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  EVOREC_RETURN_IF_ERROR(CheckUpLocked("stat"));
  auto it = files_.find(path);
  if (it == files_.end()) {
    return NotFoundError("cannot stat '" + path + "': no such file");
  }
  return static_cast<uint64_t>(it->second.data.size());
}

Status FaultInjectionEnv::RenameFile(const std::string& from,
                                     const std::string& to) {
  std::lock_guard<std::mutex> lock(mu_);
  ++counters_.renames;
  EVOREC_RETURN_IF_ERROR(CheckUpLocked("rename"));
  EVOREC_RETURN_IF_ERROR(MutatingOpLocked("rename", &plan_.fail_renames));
  auto it = files_.find(from);
  if (it == files_.end()) {
    return NotFoundError("cannot rename '" + from + "': no such file");
  }
  FileState moved = std::move(it->second);
  files_.erase(it);
  FileState& dest = files_[to];
  // The new directory entry is volatile until the directory is synced;
  // a crash before that rolls `to` back to its previous durable
  // content (or removes it) — the window WriteFileAtomic closes with
  // its trailing SyncDir.
  moved.shadow = DurableContentLocked(dest);
  moved.entry_durable = false;
  dest = std::move(moved);
  return OkStatus();
}

Status FaultInjectionEnv::RemoveFile(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  ++counters_.removes;
  EVOREC_RETURN_IF_ERROR(CheckUpLocked("remove"));
  EVOREC_RETURN_IF_ERROR(MutatingOpLocked("remove", nullptr));
  auto it = files_.find(path);
  if (it == files_.end()) {
    return NotFoundError("cannot remove '" + path + "': no such file");
  }
  files_.erase(it);
  return OkStatus();
}

Status FaultInjectionEnv::TruncateFile(const std::string& path,
                                       uint64_t size) {
  std::lock_guard<std::mutex> lock(mu_);
  ++counters_.truncates;
  EVOREC_RETURN_IF_ERROR(CheckUpLocked("truncate"));
  EVOREC_RETURN_IF_ERROR(MutatingOpLocked("truncate", nullptr));
  auto it = files_.find(path);
  if (it == files_.end()) {
    return NotFoundError("cannot truncate '" + path + "': no such file");
  }
  FileState& state = it->second;
  state.data.resize(static_cast<size_t>(size), '\0');
  state.synced = std::min(state.synced, state.data.size());
  return OkStatus();
}

Status FaultInjectionEnv::CreateDir(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  EVOREC_RETURN_IF_ERROR(CheckUpLocked("mkdir"));
  dirs_.insert(path);
  return OkStatus();
}

Result<std::vector<std::string>> FaultInjectionEnv::ListDir(
    const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  EVOREC_RETURN_IF_ERROR(CheckUpLocked("list"));
  std::vector<std::string> names;
  for (const auto& [file_path, state] : files_) {
    (void)state;
    if (ParentDirOf(file_path) == path) {
      names.push_back(file_path.substr(file_path.find_last_of('/') + 1));
    }
  }
  if (names.empty() && dirs_.find(path) == dirs_.end()) {
    return NotFoundError("cannot open directory '" + path + "'");
  }
  return names;  // files_ is ordered, so names are already sorted
}

Status FaultInjectionEnv::SyncDir(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  ++counters_.dir_syncs;
  EVOREC_RETURN_IF_ERROR(CheckUpLocked("dir_sync"));
  EVOREC_RETURN_IF_ERROR(MutatingOpLocked("dir_sync", nullptr));
  for (auto& [file_path, state] : files_) {
    if (ParentDirOf(file_path) == path) {
      state.entry_durable = true;
      state.shadow.reset();
    }
  }
  return OkStatus();
}

void FaultInjectionEnv::SleepForMicroseconds(uint64_t micros) {
  std::lock_guard<std::mutex> lock(mu_);
  ++counters_.sleeps;
  sleeps_.push_back(micros);  // recorded, never slept — tests stay fast
  clock_us_ += micros;        // scripted time still passes
}

uint64_t FaultInjectionEnv::NowMicros() {
  std::lock_guard<std::mutex> lock(mu_);
  return clock_us_;
}

void FaultInjectionEnv::AdvanceClockMicros(uint64_t micros) {
  std::lock_guard<std::mutex> lock(mu_);
  clock_us_ += micros;
}

Status FaultInjectionEnv::DoAppend(const std::string& path, uint64_t epoch,
                                   std::string_view data) {
  std::lock_guard<std::mutex> lock(mu_);
  ++counters_.writes;
  EVOREC_RETURN_IF_ERROR(CheckUpLocked("write"));
  if (epoch != epoch_) {
    return FailedPreconditionError("write through stale handle to '" + path +
                                   "' (opened before a crash)");
  }
  auto it = files_.find(path);
  if (it == files_.end()) {
    return FailedPreconditionError("write to removed file '" + path + "'");
  }
  EVOREC_RETURN_IF_ERROR(MutatingOpLocked("write", &plan_.fail_writes));
  if (plan_.short_writes > 0) {
    --plan_.short_writes;
    ++counters_.injected_errors;
    // Half the bytes land before the error — the torn-record hazard.
    it->second.data.append(data.substr(0, data.size() / 2));
    return Status(plan_.error_code, "injected short write on '" + path + "'");
  }
  it->second.data.append(data);
  return OkStatus();
}

Status FaultInjectionEnv::DoSync(const std::string& path, uint64_t epoch) {
  std::lock_guard<std::mutex> lock(mu_);
  ++counters_.syncs;
  EVOREC_RETURN_IF_ERROR(CheckUpLocked("sync"));
  if (epoch != epoch_) {
    return FailedPreconditionError("sync through stale handle to '" + path +
                                   "' (opened before a crash)");
  }
  auto it = files_.find(path);
  if (it == files_.end()) {
    return FailedPreconditionError("sync of removed file '" + path + "'");
  }
  EVOREC_RETURN_IF_ERROR(MutatingOpLocked("sync", &plan_.fail_syncs));
  if (plan_.lying_syncs > 0) {
    --plan_.lying_syncs;
    ++counters_.lied_syncs;
    return OkStatus();  // acknowledged, but the watermark never moves
  }
  FileState& state = it->second;
  state.synced = state.data.size();
  state.entry_durable = true;
  state.shadow.reset();
  return OkStatus();
}

Result<size_t> FaultInjectionEnv::DoRead(const std::string& path,
                                         uint64_t epoch, uint64_t* offset,
                                         size_t n, char* scratch) {
  std::lock_guard<std::mutex> lock(mu_);
  ++counters_.reads;
  EVOREC_RETURN_IF_ERROR(CheckUpLocked("read"));
  if (epoch != epoch_) {
    return FailedPreconditionError("read through stale handle to '" + path +
                                   "' (opened before a crash)");
  }
  auto it = files_.find(path);
  if (it == files_.end()) {
    return FailedPreconditionError("read of removed file '" + path + "'");
  }
  const std::string& data = it->second.data;
  if (*offset >= data.size()) return size_t{0};
  const size_t got = std::min(n, data.size() - static_cast<size_t>(*offset));
  std::memcpy(scratch, data.data() + *offset, got);
  *offset += got;
  return got;
}

}  // namespace evorec::storage
