#include "storage/commit_log.h"

#include <algorithm>
#include <cstring>
#include <utility>

#include "common/binary_io.h"
#include "storage/format.h"

namespace evorec::storage {

namespace {

constexpr size_t kLogHeaderSize = 24;      // incl. trailing header CRC
constexpr size_t kLogHeaderCrcRange = 20;  // bytes covered by that CRC

std::string EncodeLogHeader() {
  std::string out;
  out.reserve(kLogHeaderSize);
  out.append(kLogMagic, sizeof(kLogMagic));
  PutFixed32(out, kFormatVersion);
  PutFixed32(out, 0);  // flags
  PutFixed32(out, 0);  // reserved
  PutFixed32(out, Crc32(std::string_view(out.data(), kLogHeaderCrcRange)));
  return out;
}

Status ValidateLogHeader(std::string_view bytes) {
  if (bytes.size() < kLogHeaderSize) {
    return InvalidArgumentError("commit log: truncated file header");
  }
  if (std::memcmp(bytes.data(), kLogMagic, sizeof(kLogMagic)) != 0) {
    return InvalidArgumentError(
        "commit log: bad magic (not a commit log file)");
  }
  ByteReader reader(bytes.substr(sizeof(kLogMagic)));
  uint32_t format_version = 0;
  uint32_t flags = 0;
  uint32_t reserved = 0;
  uint32_t stored_crc = 0;
  (void)reader.ReadFixed32(&format_version);
  (void)reader.ReadFixed32(&flags);
  (void)reader.ReadFixed32(&reserved);
  (void)reader.ReadFixed32(&stored_crc);
  if (format_version != kFormatVersion) {
    return InvalidArgumentError("commit log: unsupported format version " +
                                std::to_string(format_version) +
                                " (reader supports " +
                                std::to_string(kFormatVersion) + ")");
  }
  if (Crc32(bytes.substr(0, kLogHeaderCrcRange)) != stored_crc) {
    return InvalidArgumentError("commit log: header checksum mismatch");
  }
  return OkStatus();
}

// Parses one record payload (already CRC-verified). False on any
// structural problem.
bool DecodeRecordPayload(std::string_view payload, DeltaRecord* record) {
  ByteReader reader(payload);
  uint64_t version_id = 0;
  uint64_t first_term_id = 0;
  if (!reader.ReadVarint(&version_id) || version_id > UINT32_MAX) return false;
  record->version_id = static_cast<uint32_t>(version_id);
  if (!reader.ReadVarint(&record->timestamp)) return false;
  std::string_view author;
  std::string_view message;
  if (!reader.ReadLengthPrefixed(&author)) return false;
  if (!reader.ReadLengthPrefixed(&message)) return false;
  record->author.assign(author);
  record->message.assign(message);
  if (!reader.ReadFixed64(&record->fingerprint)) return false;
  if (!reader.ReadVarint(&first_term_id) || first_term_id >= rdf::kAnyTerm) {
    return false;
  }
  record->first_term_id = static_cast<rdf::TermId>(first_term_id);

  uint64_t term_count = 0;
  if (!reader.ReadVarint(&term_count)) return false;
  if (term_count > reader.remaining() / 2 + 1) return false;  // >= 2 B/term
  record->new_terms.clear();
  record->new_terms.reserve(static_cast<size_t>(term_count));
  for (uint64_t i = 0; i < term_count; ++i) {
    rdf::Term term;
    if (!DecodeTerm(reader, &term)) return false;
    record->new_terms.push_back(std::move(term));
  }

  uint64_t addition_count = 0;
  if (!reader.ReadVarint(&addition_count)) return false;
  if (!DecodeTripleRun(reader, addition_count, /*sorted=*/false,
                       &record->additions)) {
    return false;
  }
  uint64_t removal_count = 0;
  if (!reader.ReadVarint(&removal_count)) return false;
  if (!DecodeTripleRun(reader, removal_count, /*sorted=*/false,
                       &record->removals)) {
    return false;
  }
  return reader.empty();  // trailing bytes are corruption
}

// What a failed record parse means for WAL recovery. A crash during
// Append can only leave an *incomplete* final record: the framing
// runs past the end of the buffer, or the fully-framed bytes are the
// last thing in it (a partially-flushed frame whose CRC no longer
// holds). That is a torn tail. An invalid record *followed by more
// bytes* — or bytes at a record boundary that are not a record start
// at all — cannot come from a torn append; that is corruption even
// in tolerant mode.
enum class RecordParse { kValid, kTornTail, kCorrupt };

RecordParse ParseRecord(ByteReader& reader, DeltaRecord* record) {
  uint32_t marker = 0;
  if (reader.remaining() < 4) return RecordParse::kTornTail;
  (void)reader.ReadFixed32(&marker);
  if (marker != kRecordMagic) return RecordParse::kCorrupt;
  uint64_t payload_len = 0;
  if (!reader.ReadFixed64(&payload_len)) return RecordParse::kTornTail;
  if (payload_len > reader.remaining() ||
      reader.remaining() - payload_len < 4) {
    return RecordParse::kTornTail;  // frame extends past the buffer
  }
  std::string_view payload;
  uint32_t stored_crc = 0;
  (void)reader.ReadBytes(static_cast<size_t>(payload_len), &payload);
  (void)reader.ReadFixed32(&stored_crc);
  if (Crc32(payload) == stored_crc && DecodeRecordPayload(payload, record)) {
    return RecordParse::kValid;
  }
  return reader.empty() ? RecordParse::kTornTail : RecordParse::kCorrupt;
}

/// Byte length of the valid record prefix of a log image (header
/// included) and how the prefix ends: cleanly at EOF (kValid), in a
/// torn tail, or in outright corruption. Used by Open to decide
/// between repairing (truncate a tear) and refusing (corruption).
struct LogPrefix {
  size_t valid_bytes = kLogHeaderSize;
  RecordParse tail = RecordParse::kValid;
};

LogPrefix ScanLogPrefix(std::string_view bytes) {
  ByteReader reader(bytes);
  (void)reader.Skip(kLogHeaderSize);
  LogPrefix prefix;
  while (!reader.empty()) {
    DeltaRecord record;
    prefix.tail = ParseRecord(reader, &record);
    if (prefix.tail != RecordParse::kValid) break;
    prefix.valid_bytes = reader.offset();
  }
  return prefix;
}

}  // namespace

std::string EncodeDeltaRecord(const DeltaRecord& record) {
  std::string payload;
  PutVarint(payload, record.version_id);
  PutVarint(payload, record.timestamp);
  PutLengthPrefixed(payload, record.author);
  PutLengthPrefixed(payload, record.message);
  PutFixed64(payload, record.fingerprint);
  PutVarint(payload, record.first_term_id);
  PutVarint(payload, record.new_terms.size());
  for (const rdf::Term& term : record.new_terms) {
    EncodeTerm(payload, term);
  }
  PutVarint(payload, record.additions.size());
  EncodeTripleRun(payload, record.additions, /*sorted=*/false);
  PutVarint(payload, record.removals.size());
  EncodeTripleRun(payload, record.removals, /*sorted=*/false);

  std::string out;
  out.reserve(payload.size() + 16);
  PutFixed32(out, kRecordMagic);
  PutFixed64(out, payload.size());
  out.append(payload);
  PutFixed32(out, Crc32(payload));
  return out;
}

Result<CommitLog> CommitLog::Open(const std::string& path,
                                  LogOptions options) {
  Env* env = options.env != nullptr ? options.env : Env::Default();
  // Existing file: validate the header and repair a torn tail (a
  // crash mid-append) by truncating back to the last complete record
  // — appending after a tear would strand every later record behind
  // bytes no replay can cross.
  if (env->FileExists(path)) {
    auto bytes = env->ReadFileToString(path);
    if (!bytes.ok()) return bytes.status();
    EVOREC_RETURN_IF_ERROR(ValidateLogHeader(*bytes));
    const LogPrefix prefix = ScanLogPrefix(*bytes);
    if (prefix.tail == RecordParse::kCorrupt) {
      return FailedPreconditionError(
          "commit log: '" + path + "' is corrupt at byte " +
          std::to_string(prefix.valid_bytes) +
          "; refusing to append (recover what you can with ReadLog "
          "and rewrite the file)");
    }
    if (prefix.valid_bytes < bytes->size()) {
      EVOREC_RETURN_IF_ERROR(env->TruncateFile(path, prefix.valid_bytes));
    }
    auto file = env->NewWritableFile(path, /*append=*/true);
    if (!file.ok()) return file.status();
    return CommitLog(path, env, std::move(*file), options,
                     prefix.valid_bytes);
  }
  // Fresh log: create and write the file header.
  auto file = env->NewWritableFile(path, /*append=*/false);
  if (!file.ok()) return file.status();
  const std::string header = EncodeLogHeader();
  Status written = (*file)->Append(header);
  if (!written.ok()) {
    // Leave no headerless stub behind — the next Open would reject it.
    (void)(*file)->Close();
    (void)env->RemoveFile(path);
    return written;
  }
  return CommitLog(path, env, std::move(*file), options, header.size());
}

CommitLog::CommitLog(CommitLog&& other) noexcept
    : path_(std::move(other.path_)),
      env_(other.env_),
      file_(std::move(other.file_)),
      options_(other.options_),
      records_appended_(other.records_appended_),
      good_size_(other.good_size_),
      tail_dirty_(other.tail_dirty_),
      closed_(other.closed_) {
  other.closed_ = true;
}

CommitLog& CommitLog::operator=(CommitLog&& other) noexcept {
  if (this != &other) {
    (void)Close();
    path_ = std::move(other.path_);
    env_ = other.env_;
    file_ = std::move(other.file_);
    options_ = other.options_;
    records_appended_ = other.records_appended_;
    good_size_ = other.good_size_;
    tail_dirty_ = other.tail_dirty_;
    closed_ = other.closed_;
    other.closed_ = true;
  }
  return *this;
}

CommitLog::~CommitLog() { (void)Close(); }

Status CommitLog::RepairTail() {
  if (file_ != nullptr) {
    (void)file_->Close();
    file_.reset();
  }
  // A failed append may have left any prefix of the record's bytes in
  // the file (and a failed fsync leaves a complete record that was
  // never acknowledged — re-appending it later would duplicate the
  // version). Cut the file back to the last acknowledged byte.
  EVOREC_RETURN_IF_ERROR(env_->TruncateFile(path_, good_size_));
  auto file = env_->NewWritableFile(path_, /*append=*/true);
  if (!file.ok()) return file.status();
  file_ = std::move(*file);
  tail_dirty_ = false;
  return OkStatus();
}

Status CommitLog::AppendOnce(std::string_view bytes) {
  EVOREC_RETURN_IF_ERROR(file_->Append(bytes));
  if (options_.sync_on_append) {
    EVOREC_RETURN_IF_ERROR(file_->Sync());
  }
  return OkStatus();
}

Status CommitLog::Append(const DeltaRecord& record) {
  if (closed_) {
    return FailedPreconditionError("commit log: appending to a closed log");
  }
  const std::string bytes = EncodeDeltaRecord(record);
  const int attempts = std::max(1, options_.retry.max_attempts);
  uint64_t backoff = options_.retry.backoff_micros;
  Status last = OkStatus();
  for (int attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0) {
      env_->SleepForMicroseconds(backoff);
      backoff *= options_.retry.backoff_multiplier;
    }
    if (tail_dirty_) {
      last = RepairTail();
      if (!last.ok()) {
        if (IsTransient(last)) continue;
        return last;
      }
    }
    last = AppendOnce(bytes);
    if (last.ok()) {
      good_size_ += bytes.size();
      ++records_appended_;
      return OkStatus();
    }
    // The failed attempt may have landed any prefix of `bytes` (or,
    // when the fsync failed, all of them un-acknowledged); repair
    // before the next attempt — or before the next Append, if this
    // one is out of attempts.
    tail_dirty_ = true;
    if (!IsTransient(last)) return last;
  }
  return last;
}

Status CommitLog::Sync() {
  if (closed_ || file_ == nullptr) {
    return FailedPreconditionError("commit log: syncing a closed log");
  }
  if (tail_dirty_) {
    EVOREC_RETURN_IF_ERROR(RepairTail());
  }
  return file_->Sync();
}

Status CommitLog::Close() {
  if (closed_) return OkStatus();
  closed_ = true;
  if (file_ == nullptr) return OkStatus();
  Status status = file_->Close();
  file_.reset();
  return status;
}

Status ReplayLog(std::string_view bytes,
                 const std::function<Status(DeltaRecord&&)>& fn,
                 const ReplayOptions& options) {
  EVOREC_RETURN_IF_ERROR(ValidateLogHeader(bytes));
  ByteReader reader(bytes);
  (void)reader.Skip(kLogHeaderSize);
  while (!reader.empty()) {
    const size_t record_start = reader.offset();
    DeltaRecord record;
    switch (ParseRecord(reader, &record)) {
      case RecordParse::kValid:
        EVOREC_RETURN_IF_ERROR(fn(std::move(record)));
        break;
      case RecordParse::kTornTail:
        if (options.allow_torn_tail) return OkStatus();
        return InvalidArgumentError(
            "commit log: torn (incomplete) record at byte " +
            std::to_string(record_start));
      case RecordParse::kCorrupt:
        return InvalidArgumentError("commit log: corrupt record at byte " +
                                    std::to_string(record_start));
    }
  }
  return OkStatus();
}

Result<std::vector<DeltaRecord>> ReadLog(const std::string& path,
                                         const ReplayOptions& options) {
  auto bytes = ReadFileToString(path, options.env);
  if (!bytes.ok()) return bytes.status();
  std::vector<DeltaRecord> records;
  EVOREC_RETURN_IF_ERROR(ReplayLog(*bytes,
                                   [&records](DeltaRecord&& record) {
                                     records.push_back(std::move(record));
                                     return OkStatus();
                                   },
                                   options));
  return records;
}

}  // namespace evorec::storage
