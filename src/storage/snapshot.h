#ifndef EVOREC_STORAGE_SNAPSHOT_H_
#define EVOREC_STORAGE_SNAPSHOT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "common/result.h"
#include "common/status.h"
#include "rdf/dictionary.h"
#include "rdf/triple_store.h"

namespace evorec {
class Env;
}

namespace evorec::storage {

/// Compact binary snapshots of one KB version: the dictionary-encoded
/// term table plus the SPO index as a varint/zig-zag delta-compressed
/// run, with a versioned header and per-section CRC-32 checksums.
/// The format (docs/STORAGE.md) exploits the store's canonical
/// sorted-SPO shape twice — deltas between consecutive sorted triples
/// are tiny, and loading hands the decoded run straight to
/// TripleStore::FromSorted, bypassing Compact entirely. Typical size
/// is well under half of the equivalent N-Triples text (E12 in
/// EXPERIMENTS.md records the measured ratio).

struct SnapshotOptions {
  /// fsync the bytes before publishing the file (SaveSnapshot writes
  /// atomically via temp file + rename either way).
  bool sync = false;
  /// Environment to write through; nullptr means Env::Default().
  Env* env = nullptr;
};

/// Header metadata of a snapshot.
struct SnapshotInfo {
  /// Version of the owning VersionedKnowledgeBase this snapshot
  /// materialises (0 for a standalone store).
  uint32_t version_id = 0;
  /// The version-layer content fingerprint of that version; recovery
  /// seeds the restored KB's fingerprint chain with it so engine
  /// cache keys survive a restart.
  uint64_t fingerprint = 0;
  uint64_t term_count = 0;
  uint64_t triple_count = 0;
};

/// A decoded snapshot: a fresh dictionary whose TermIds are exactly
/// the saved ones, and the store loaded via the bulk sorted path.
struct DecodedSnapshot {
  SnapshotInfo info;
  std::shared_ptr<rdf::Dictionary> dictionary;
  rdf::TripleStore store;
};

/// Serialises `store` (compacted as a side effect) and the full term
/// table of `dictionary` into the snapshot wire format.
std::string EncodeSnapshot(const rdf::TripleStore& store,
                           const rdf::Dictionary& dictionary,
                           uint32_t version_id = 0, uint64_t fingerprint = 0);

/// Parses a snapshot. Any deviation — wrong magic, unsupported format
/// version, truncation at any offset, checksum mismatch, out-of-range
/// ids — returns a clean Status error describing the first problem.
Result<DecodedSnapshot> DecodeSnapshot(std::string_view bytes);

/// Validates the header only and returns its metadata (cheap sniff;
/// used by diff_tool to tell snapshots from N-Triples text).
Result<SnapshotInfo> PeekSnapshotInfo(std::string_view bytes);

/// True iff `bytes` starts with the snapshot magic.
bool LooksLikeSnapshot(std::string_view bytes);

/// EncodeSnapshot + atomic file write.
Status SaveSnapshot(const std::string& path, const rdf::TripleStore& store,
                    const rdf::Dictionary& dictionary, uint32_t version_id = 0,
                    uint64_t fingerprint = 0,
                    const SnapshotOptions& options = {});

/// Whole-file read + DecodeSnapshot. `env` nullptr means
/// Env::Default().
Result<DecodedSnapshot> LoadSnapshot(const std::string& path,
                                     Env* env = nullptr);

}  // namespace evorec::storage

#endif  // EVOREC_STORAGE_SNAPSHOT_H_
