#include "storage/format.h"

namespace evorec::storage {

void EncodeTerm(std::string& out, const rdf::Term& term) {
  out.push_back(static_cast<char>(term.kind));
  PutLengthPrefixed(out, term.lexical);
  if (term.kind == rdf::TermKind::kLiteral) {
    PutLengthPrefixed(out, term.datatype);
    PutLengthPrefixed(out, term.language);
  }
}

bool DecodeTerm(ByteReader& reader, rdf::Term* term) {
  std::string_view kind_byte;
  if (!reader.ReadBytes(1, &kind_byte)) return false;
  const uint8_t kind = static_cast<uint8_t>(kind_byte[0]);
  if (kind > static_cast<uint8_t>(rdf::TermKind::kBlank)) return false;
  term->kind = static_cast<rdf::TermKind>(kind);
  std::string_view lexical;
  if (!reader.ReadLengthPrefixed(&lexical)) return false;
  term->lexical.assign(lexical);
  term->datatype.clear();
  term->language.clear();
  if (term->kind == rdf::TermKind::kLiteral) {
    std::string_view datatype;
    std::string_view language;
    if (!reader.ReadLengthPrefixed(&datatype)) return false;
    if (!reader.ReadLengthPrefixed(&language)) return false;
    term->datatype.assign(datatype);
    term->language.assign(language);
  }
  return true;
}

void EncodeTripleRun(std::string& out, const std::vector<rdf::Triple>& triples,
                     bool sorted) {
  rdf::Triple prev(0, 0, 0);
  for (const rdf::Triple& t : triples) {
    if (sorted) {
      PutVarint(out, static_cast<uint64_t>(t.subject) - prev.subject);
    } else {
      PutZigZag(out, static_cast<int64_t>(t.subject) -
                         static_cast<int64_t>(prev.subject));
    }
    PutZigZag(out, static_cast<int64_t>(t.predicate) -
                       static_cast<int64_t>(prev.predicate));
    PutZigZag(out,
              static_cast<int64_t>(t.object) - static_cast<int64_t>(prev.object));
    prev = t;
  }
}

namespace {

// kAnyTerm is a pattern wildcard, never a stored id.
inline constexpr int64_t kMaxStoredId =
    static_cast<int64_t>(rdf::kAnyTerm) - 1;

bool ApplyDelta(int64_t base, int64_t delta, rdf::TermId* out) {
  const int64_t value = base + delta;
  if (value < 0 || value > kMaxStoredId) return false;
  *out = static_cast<rdf::TermId>(value);
  return true;
}

}  // namespace

bool DecodeTripleRun(ByteReader& reader, uint64_t count, bool sorted,
                     std::vector<rdf::Triple>* out) {
  // A triple encodes to >= 3 bytes, so `count` beyond remaining/3 is
  // corrupt; checking up front keeps a flipped length byte from
  // reserving gigabytes.
  if (count > reader.remaining() / 3 + 1) return false;
  out->clear();
  out->reserve(static_cast<size_t>(count));
  rdf::Triple prev(0, 0, 0);
  for (uint64_t i = 0; i < count; ++i) {
    rdf::Triple t;
    int64_t dp = 0;
    int64_t dobj = 0;
    if (sorted) {
      uint64_t ds = 0;
      if (!reader.ReadVarint(&ds)) return false;
      const uint64_t subject = prev.subject + ds;
      if (subject > static_cast<uint64_t>(kMaxStoredId)) return false;
      t.subject = static_cast<rdf::TermId>(subject);
    } else {
      int64_t ds = 0;
      if (!reader.ReadZigZag(&ds)) return false;
      if (!ApplyDelta(prev.subject, ds, &t.subject)) return false;
    }
    if (!reader.ReadZigZag(&dp)) return false;
    if (!reader.ReadZigZag(&dobj)) return false;
    if (!ApplyDelta(prev.predicate, dp, &t.predicate)) return false;
    if (!ApplyDelta(prev.object, dobj, &t.object)) return false;
    if (sorted && i > 0 && !(prev < t)) return false;  // must be strict SPO
    out->push_back(t);
    prev = t;
  }
  return true;
}

}  // namespace evorec::storage
