#ifndef EVOREC_STORAGE_COMMIT_LOG_H_
#define EVOREC_STORAGE_COMMIT_LOG_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/env.h"
#include "common/result.h"
#include "common/status.h"
#include "rdf/term.h"
#include "rdf/triple.h"

namespace evorec::storage {

/// Append-only commit log for a versioned KB: one delta record per
/// commit, carrying the change set (in its original order, so replay
/// reproduces the exact fingerprint chain), the commit metadata, and
/// the dictionary tail interned since the previous record. Together
/// with a snapshot this makes a KB durable: recovery loads the latest
/// snapshot and replays the log tail (version/recovery.h).
///
/// Framing: a fixed file header, then self-delimiting CRC-checked
/// records. A crash can only ever tear the final record; replay with
/// `allow_torn_tail` recovers everything before it (standard WAL
/// semantics). Byte layout: docs/STORAGE.md.
///
/// All I/O runs through the pluggable Env (common/env.h), so the
/// fault-injection environment can script every failure mode the
/// durability contract in docs/STORAGE.md promises to survive.

/// Bounded retry with exponential backoff for *transient* failures
/// (IsTransient — kUnavailable only). Corruption- and logic-class
/// errors are never retried: retrying a checksum mismatch cannot fix
/// it, and retrying onto a corrupt tail would bury it deeper.
struct RetryPolicy {
  /// Total attempts, first try included; values < 1 mean one attempt.
  int max_attempts = 4;
  /// Sleep before the first re-attempt (on the Env clock, so tests
  /// with a recording environment see the schedule without waiting).
  uint64_t backoff_micros = 1000;
  /// Each subsequent sleep is the previous one times this.
  uint64_t backoff_multiplier = 2;
};

struct LogOptions {
  /// fsync after every Append — each commit is durable the moment
  /// Commit returns, at the cost of one disk flush per commit.
  /// Without it, durability is best-effort until Sync()/Close().
  bool sync_on_append = false;
  /// Retry schedule for transient append/repair failures.
  RetryPolicy retry;
  /// Environment to run on; nullptr means Env::Default().
  Env* env = nullptr;
};

/// One serialised commit.
struct DeltaRecord {
  uint32_t version_id = 0;   ///< version this commit created
  uint64_t timestamp = 0;
  std::string author;
  std::string message;
  /// Post-commit content fingerprint; recovery verifies its replayed
  /// chain against this (a mismatch means snapshot/log divergence).
  uint64_t fingerprint = 0;
  /// Terms interned since the previous record occupy ids
  /// [first_term_id, first_term_id + new_terms.size()).
  rdf::TermId first_term_id = 0;
  std::vector<rdf::Term> new_terms;
  /// The change set, original order preserved.
  std::vector<rdf::Triple> additions;
  std::vector<rdf::Triple> removals;
};

/// Serialises one record including its framing (marker, length, CRC).
std::string EncodeDeltaRecord(const DeltaRecord& record);

/// Append handle. Open creates the file (writing the header) or
/// validates an existing one and appends after its last complete
/// record — a torn tail (crash mid-append) is truncated away first,
/// while mid-log corruption makes Open refuse rather than strand the
/// readable records behind it. Not thread-safe.
class CommitLog {
 public:
  static Result<CommitLog> Open(const std::string& path,
                                LogOptions options = {});

  CommitLog(CommitLog&& other) noexcept;
  CommitLog& operator=(CommitLog&& other) noexcept;
  CommitLog(const CommitLog&) = delete;
  CommitLog& operator=(const CommitLog&) = delete;
  ~CommitLog();

  /// Appends one record (to the OS; fsync'd iff sync_on_append).
  /// Transient failures are retried per LogOptions::retry with
  /// exponential backoff; before any (re-)attempt after a failure,
  /// partial bytes of the broken append are truncated away, so the
  /// file never accumulates a torn record mid-log and a retried
  /// append never duplicates a half-written one. On a non-OK return
  /// the record is not in the log (the next successful Append repairs
  /// any leftover tail first).
  Status Append(const DeltaRecord& record);

  /// Forces everything appended so far to stable storage.
  Status Sync();

  /// Closes the handle; further Appends fail. Idempotent.
  Status Close();

  const std::string& path() const { return path_; }
  uint64_t records_appended() const { return records_appended_; }
  const LogOptions& options() const { return options_; }

  /// Bytes of header + complete, acknowledged records — what survives
  /// tail repair. Exposed for the fault-injection regression tests.
  uint64_t good_size() const { return good_size_; }
  /// True while the file may end in partial bytes from a failed
  /// append (repaired before the next attempt).
  bool tail_dirty() const { return tail_dirty_; }

 private:
  CommitLog(std::string path, Env* env,
            std::unique_ptr<WritableFile> file, LogOptions options,
            uint64_t good_size)
      : path_(std::move(path)),
        env_(env),
        file_(std::move(file)),
        options_(options),
        good_size_(good_size) {}

  /// Closes the handle, truncates the file back to good_size_ and
  /// reopens for append — recovery from a partial write.
  Status RepairTail();
  Status AppendOnce(std::string_view bytes);

  std::string path_;
  Env* env_ = nullptr;
  std::unique_ptr<WritableFile> file_;
  LogOptions options_;
  uint64_t records_appended_ = 0;
  uint64_t good_size_ = 0;
  bool tail_dirty_ = false;
  bool closed_ = false;
};

struct ReplayOptions {
  /// Treat a torn *final* record — one whose framing runs past EOF,
  /// or whose fully-framed bytes end exactly at EOF with a bad
  /// checksum (a partially-flushed append) — as a clean end of log
  /// instead of failing. An invalid record *followed by more bytes*
  /// is corruption either way: a torn append cannot produce it, so
  /// even tolerant replay errors rather than silently dropping the
  /// records behind it. Recovery turns this on; strict readers (and
  /// the corruption tests) leave it off.
  bool allow_torn_tail = false;
  /// Environment ReadLog reads through; nullptr means Env::Default().
  Env* env = nullptr;
};

/// Streams every record of an in-memory log image through `fn`
/// (in append order); stops on the first non-OK status `fn` returns
/// and propagates it. Validates the file header and each record's
/// marker + CRC.
Status ReplayLog(std::string_view bytes,
                 const std::function<Status(DeltaRecord&&)>& fn,
                 const ReplayOptions& options = {});

/// Whole-file read + ReplayLog into a vector.
Result<std::vector<DeltaRecord>> ReadLog(const std::string& path,
                                         const ReplayOptions& options = {});

}  // namespace evorec::storage

#endif  // EVOREC_STORAGE_COMMIT_LOG_H_
