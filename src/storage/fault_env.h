#ifndef EVOREC_STORAGE_FAULT_ENV_H_
#define EVOREC_STORAGE_FAULT_ENV_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <random>
#include <set>
#include <string>
#include <vector>

#include "common/env.h"

namespace evorec::storage {

/// Scripted faults, armed through FaultInjectionEnv::set_plan. The
/// per-kind counters are countdowns: `fail_writes = 2` fails the next
/// two data writes, then disarms. `crash_at_op` is different — it is a
/// 1-based index into the environment's *mutating-operation* counter
/// (writes, syncs, renames, removes, truncates, directory syncs), so a
/// torture harness can replay one deterministic workload once per
/// possible crash point.
struct FaultPlan {
  /// Status code injected failures carry. kUnavailable models
  /// transient device errors (EIO/ENOSPC — the retryable class);
  /// anything else models permanent failures the retry policies must
  /// surface immediately.
  StatusCode error_code = StatusCode::kUnavailable;
  /// Fail the next N WritableFile::Append calls (no bytes written).
  int fail_writes = 0;
  /// Fail the next N Appends after writing only half their bytes —
  /// the partial-record hazard a crashing disk produces.
  int short_writes = 0;
  /// Fail the next N Syncs (data stays unsynced).
  int fail_syncs = 0;
  /// The next N Syncs *lie*: they report success without advancing
  /// the durability watermark, so a later crash drops bytes the
  /// caller believed were stable.
  int lying_syncs = 0;
  /// Fail the next N RenameFile calls.
  int fail_renames = 0;
  /// Simulate power loss at the Nth mutating operation (1-based,
  /// one-shot): all un-synced data is discarded atomically, the
  /// environment goes down (every call fails) until Restart().
  int64_t crash_at_op = 0;
  /// With it, a crash keeps a seeded random partial suffix of each
  /// file's un-synced bytes instead of dropping them all — producing
  /// the torn tails real power loss leaves behind.
  bool torn_tails = false;
};

/// Per-operation counters (cumulative since construction).
struct FaultCounters {
  uint64_t writes = 0;
  uint64_t syncs = 0;
  uint64_t dir_syncs = 0;
  uint64_t renames = 0;
  uint64_t removes = 0;
  uint64_t truncates = 0;
  uint64_t opens = 0;
  uint64_t reads = 0;
  uint64_t sleeps = 0;
  uint64_t injected_errors = 0;
  uint64_t lied_syncs = 0;
  uint64_t crashes = 0;
  /// Total mutating operations — the coordinate space of
  /// FaultPlan::crash_at_op.
  uint64_t mutating_ops = 0;
};

/// An Env over a fully in-memory filesystem with fault injection and
/// faithful power-loss semantics (the LevelDB/RocksDB
/// FaultInjectionTestEnv idiom, rebuilt for this Env interface):
///
///  - every file tracks its fsync watermark; CrashNow() rolls content
///    back to it (optionally keeping a seeded torn suffix),
///  - a created or renamed-in directory entry only survives a crash
///    after the file is fsync'd or its directory is (so the
///    temp+rename+dirsync protocol of WriteFileAtomic is exercised
///    for real),
///  - a rename before the directory sync rolls back to the *previous*
///    durable content of the target on crash,
///  - after a crash the environment is "down" — every operation fails
///    with kUnavailable until Restart(), modelling process death —
///    and all previously open handles stay dead forever,
///  - SleepForMicroseconds records instead of sleeping, making
///    retry/backoff tests deterministic and instant.
///
/// Thread-safe. Deterministic for a fixed seed and operation
/// sequence.
class FaultInjectionEnv : public Env {
 public:
  explicit FaultInjectionEnv(uint64_t seed = 0);

  // ---- Fault scripting ----

  void set_plan(const FaultPlan& plan);
  FaultPlan plan() const;
  void ClearFaults();

  /// Simulates power loss now (see class comment). The environment
  /// stays down until Restart().
  void CrashNow();

  /// Brings a crashed environment back up ("reboot"). State is
  /// whatever survived the crash.
  void Restart();

  bool down() const;

  FaultCounters counters() const;

  /// Microsecond durations passed to SleepForMicroseconds, in call
  /// order — the evidence backoff tests assert exponential spacing on.
  std::vector<uint64_t> recorded_sleeps() const;

  /// Advances the scripted NowMicros() clock. The clock starts at 0
  /// and moves only here and in SleepForMicroseconds (a recorded sleep
  /// still advances scripted time), so deadline-expiry, token-bucket
  /// refill and breaker cool-down tests control time exactly.
  void AdvanceClockMicros(uint64_t micros);

  // ---- Test helpers ----

  /// XORs `mask` into the byte at `offset` of `path` (live and
  /// durable view alike) — simulated bit rot for quarantine tests.
  Status CorruptFile(const std::string& path, uint64_t offset,
                     uint8_t mask = 0xFF);

  // ---- Env interface ----

  Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path, bool append) override;
  Result<std::unique_ptr<ReadableFile>> NewReadableFile(
      const std::string& path) override;
  bool FileExists(const std::string& path) override;
  Result<uint64_t> FileSize(const std::string& path) override;
  Status RenameFile(const std::string& from, const std::string& to) override;
  Status RemoveFile(const std::string& path) override;
  Status TruncateFile(const std::string& path, uint64_t size) override;
  Status CreateDir(const std::string& path) override;
  Result<std::vector<std::string>> ListDir(const std::string& path) override;
  Status SyncDir(const std::string& path) override;
  void SleepForMicroseconds(uint64_t micros) override;
  uint64_t NowMicros() override;

 private:
  friend class FaultWritableFile;
  friend class FaultReadableFile;

  struct FileState {
    std::string data;      ///< live content (what reads observe)
    size_t synced = 0;     ///< fsync watermark into `data`
    /// Whether the directory entry survives a crash. Set by a file
    /// fsync or a directory sync; cleared by creation and rename-in.
    bool entry_durable = false;
    /// Previous durable content of this path, restored on crash while
    /// the current entry is not yet durable (the pre-rename target).
    /// nullopt: the path did not durably exist.
    std::optional<std::string> shadow;
  };

  // Handle-facing operations (epoch-checked; called under no lock).
  Status DoAppend(const std::string& path, uint64_t epoch,
                  std::string_view data);
  Status DoSync(const std::string& path, uint64_t epoch);
  Result<size_t> DoRead(const std::string& path, uint64_t epoch,
                        uint64_t* offset, size_t n, char* scratch);

  // All Locked helpers require mu_ held.
  Status CheckUpLocked(const char* what) const;
  /// Advances the mutating-op counter, fires a pending crash point,
  /// and charges one injected failure from `countdown` when armed.
  /// Returns the injected error, or OK to proceed.
  Status MutatingOpLocked(const char* what, int* countdown);
  void CrashLocked();
  std::optional<std::string> DurableContentLocked(const FileState& state)
      const;

  mutable std::mutex mu_;
  std::map<std::string, FileState> files_;
  std::set<std::string> dirs_;
  FaultPlan plan_;
  FaultCounters counters_;
  std::vector<uint64_t> sleeps_;
  uint64_t clock_us_ = 0;  ///< scripted NowMicros clock
  std::mt19937_64 rng_;
  uint64_t epoch_ = 0;  ///< bumped per crash; stale handles are dead
  bool down_ = false;
};

}  // namespace evorec::storage

#endif  // EVOREC_STORAGE_FAULT_ENV_H_
