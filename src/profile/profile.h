#ifndef EVOREC_PROFILE_PROFILE_H_
#define EVOREC_PROFILE_PROFILE_H_

#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "measures/measure.h"
#include "rdf/term.h"

namespace evorec::profile {

/// A human in the loop (paper §III): curator, editor, or end user. A
/// profile carries
///  - term interests: weights over classes/properties of the KB the
///    human cares about (drives relatedness, §III.a),
///  - category affinities: preference over measure families
///    (count/structural/semantic),
///  - interaction history: term sets already shown to the human
///    (drives novelty-based diversity, §III.c).
class HumanProfile {
 public:
  HumanProfile() = default;
  explicit HumanProfile(std::string id) : id_(std::move(id)) {}

  const std::string& id() const { return id_; }
  void set_id(std::string id) { id_ = std::move(id); }

  /// Sets the interest weight of a term (clamped at >= 0; 0 erases).
  void SetInterest(rdf::TermId term, double weight);

  /// Interest weight of `term` (0 when absent).
  double InterestIn(rdf::TermId term) const;

  /// All (term, weight) interests.
  const std::unordered_map<rdf::TermId, double>& interests() const {
    return interests_;
  }

  /// Sum of interest weights.
  double TotalInterest() const;

  /// Sets the affinity for a measure category (default 1.0 for all).
  void SetCategoryAffinity(measures::MeasureCategory category, double weight);

  /// Affinity for `category` (1.0 when unset).
  double CategoryAffinity(measures::MeasureCategory category) const;

  /// Records that `terms` were presented to this human (novelty
  /// bookkeeping).
  void RecordSeen(const std::vector<rdf::TermId>& terms);

  /// True iff `term` was presented before.
  bool HasSeen(rdf::TermId term) const;

  /// Number of distinct seen terms.
  size_t seen_count() const { return seen_.size(); }

  /// Fraction of `terms` never presented before (1.0 for empty input).
  double NoveltyOf(const std::vector<rdf::TermId>& terms) const;

 private:
  std::string id_;
  std::unordered_map<rdf::TermId, double> interests_;
  std::unordered_map<int, double> category_affinity_;
  std::unordered_set<rdf::TermId> seen_;
};

/// Cosine similarity of two interest vectors (0 when either is empty).
double InterestSimilarity(const HumanProfile& a, const HumanProfile& b);

}  // namespace evorec::profile

#endif  // EVOREC_PROFILE_PROFILE_H_
