#include "profile/profile.h"

#include <cmath>

namespace evorec::profile {

void HumanProfile::SetInterest(rdf::TermId term, double weight) {
  if (weight <= 0.0) {
    interests_.erase(term);
    return;
  }
  interests_[term] = weight;
}

double HumanProfile::InterestIn(rdf::TermId term) const {
  auto it = interests_.find(term);
  return it == interests_.end() ? 0.0 : it->second;
}

double HumanProfile::TotalInterest() const {
  double total = 0.0;
  for (const auto& [term, weight] : interests_) {
    (void)term;
    total += weight;
  }
  return total;
}

void HumanProfile::SetCategoryAffinity(measures::MeasureCategory category,
                                       double weight) {
  category_affinity_[static_cast<int>(category)] = weight;
}

double HumanProfile::CategoryAffinity(
    measures::MeasureCategory category) const {
  auto it = category_affinity_.find(static_cast<int>(category));
  return it == category_affinity_.end() ? 1.0 : it->second;
}

void HumanProfile::RecordSeen(const std::vector<rdf::TermId>& terms) {
  seen_.insert(terms.begin(), terms.end());
}

bool HumanProfile::HasSeen(rdf::TermId term) const {
  return seen_.count(term) > 0;
}

double HumanProfile::NoveltyOf(const std::vector<rdf::TermId>& terms) const {
  if (terms.empty()) return 1.0;
  size_t unseen = 0;
  for (rdf::TermId term : terms) {
    if (!HasSeen(term)) ++unseen;
  }
  return static_cast<double>(unseen) / static_cast<double>(terms.size());
}

double InterestSimilarity(const HumanProfile& a, const HumanProfile& b) {
  if (a.interests().empty() || b.interests().empty()) return 0.0;
  double dot = 0.0;
  double norm_a = 0.0;
  double norm_b = 0.0;
  for (const auto& [term, weight] : a.interests()) {
    norm_a += weight * weight;
    const double wb = b.InterestIn(term);
    if (wb > 0.0) dot += weight * wb;
  }
  for (const auto& [term, weight] : b.interests()) {
    (void)term;
    norm_b += weight * weight;
  }
  if (norm_a <= 0.0 || norm_b <= 0.0) return 0.0;
  return dot / (std::sqrt(norm_a) * std::sqrt(norm_b));
}

}  // namespace evorec::profile
