#include "profile/group.h"

namespace evorec::profile {

void Group::AddMember(HumanProfile member) {
  members_.push_back(std::move(member));
}

void Group::RecordSeen(const std::vector<rdf::TermId>& terms) {
  for (HumanProfile& member : members_) {
    member.RecordSeen(terms);
  }
}

double Group::Cohesion() const {
  if (members_.size() < 2) return 1.0;
  double total = 0.0;
  size_t pairs = 0;
  for (size_t i = 0; i < members_.size(); ++i) {
    for (size_t j = i + 1; j < members_.size(); ++j) {
      total += InterestSimilarity(members_[i], members_[j]);
      ++pairs;
    }
  }
  return total / static_cast<double>(pairs);
}

}  // namespace evorec::profile
