#ifndef EVOREC_PROFILE_GROUP_H_
#define EVOREC_PROFILE_GROUP_H_

#include <string>
#include <vector>

#include "profile/profile.h"

namespace evorec::profile {

/// A group of humans receiving one shared recommendation package
/// (paper §III.d): a curators' team, a family, a research group.
class Group {
 public:
  Group() = default;
  explicit Group(std::string id) : id_(std::move(id)) {}

  const std::string& id() const { return id_; }

  /// Adds a member (profiles are copied in; groups own their view of
  /// the members).
  void AddMember(HumanProfile member);

  const std::vector<HumanProfile>& members() const { return members_; }
  std::vector<HumanProfile>& mutable_members() { return members_; }
  size_t size() const { return members_.size(); }
  bool empty() const { return members_.empty(); }

  /// Records `terms` as seen by every member (novelty bookkeeping
  /// after a group recommendation is delivered).
  void RecordSeen(const std::vector<rdf::TermId>& terms);

  /// Mean pairwise interest similarity — the group's cohesion. 1.0 for
  /// groups of fewer than two members.
  double Cohesion() const;

 private:
  std::string id_;
  std::vector<HumanProfile> members_;
};

}  // namespace evorec::profile

#endif  // EVOREC_PROFILE_GROUP_H_
