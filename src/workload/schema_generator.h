#ifndef EVOREC_WORKLOAD_SCHEMA_GENERATOR_H_
#define EVOREC_WORKLOAD_SCHEMA_GENERATOR_H_

#include <memory>
#include <string>
#include <vector>

#include "rdf/knowledge_base.h"

namespace evorec::workload {

/// Options for synthetic schema generation.
struct SchemaGenOptions {
  /// Number of classes in the subsumption forest.
  size_t class_count = 100;
  /// Number of object properties (domain/range over the classes).
  size_t property_count = 40;
  /// Number of root classes (the forest's trees).
  size_t root_count = 3;
  /// IRI prefix of generated terms.
  std::string namespace_prefix = "http://example.org/onto#";
  uint64_t seed = 1;
};

/// A generated schema: the KB holding its triples plus the id lists
/// the other generators consume.
struct GeneratedSchema {
  rdf::KnowledgeBase kb;
  std::vector<rdf::TermId> classes;
  std::vector<rdf::TermId> properties;
};

/// Generates a random subsumption forest (each non-root class gets one
/// parent among earlier classes) with labelled classes and properties
/// whose domains/ranges are drawn uniformly from the classes. The
/// result mimics the shape of real ontologies: shallow wide trees with
/// cross-links through properties. Deterministic per seed.
GeneratedSchema GenerateSchema(
    const SchemaGenOptions& options,
    std::shared_ptr<rdf::Dictionary> dictionary = nullptr);

}  // namespace evorec::workload

#endif  // EVOREC_WORKLOAD_SCHEMA_GENERATOR_H_
