#ifndef EVOREC_WORKLOAD_INSTANCE_GENERATOR_H_
#define EVOREC_WORKLOAD_INSTANCE_GENERATOR_H_

#include <unordered_map>
#include <vector>

#include "workload/schema_generator.h"

namespace evorec::workload {

/// Options for instance population.
struct InstanceGenOptions {
  /// Total rdf:type assertions to create.
  size_t instance_count = 2000;
  /// Skew of the instances-per-class distribution (zipf exponent; the
  /// head classes of the (shuffled) class list get most instances —
  /// mirroring DBpedia-style data skew).
  double zipf_exponent = 1.1;
  /// Instance-level property edges to create (each respecting some
  /// property's domain/range).
  size_t edge_count = 4000;
  uint64_t seed = 2;
};

/// Instances created per class (for later evolution targeting).
struct GeneratedInstances {
  std::unordered_map<rdf::TermId, std::vector<rdf::TermId>>
      instances_by_class;
  size_t instance_count = 0;
  size_t edge_count = 0;
};

/// Populates `generated.kb` with typed instances and property edges. The
/// per-class volumes are zipf-skewed; edges connect random instances
/// of each property's domain class to random instances of its range
/// class, so relative-cardinality statistics are non-trivial.
/// Deterministic per seed.
GeneratedInstances PopulateInstances(GeneratedSchema& generated,
                                     const InstanceGenOptions& options);

}  // namespace evorec::workload

#endif  // EVOREC_WORKLOAD_INSTANCE_GENERATOR_H_
