#ifndef EVOREC_WORKLOAD_STREAM_GENERATOR_H_
#define EVOREC_WORKLOAD_STREAM_GENERATOR_H_

#include <string>
#include <vector>

#include "profile/profile.h"
#include "version/version.h"
#include "workload/profile_generator.h"
#include "workload/scenarios.h"

namespace evorec::workload {

/// Production-shaped traffic patterns a WorkloadStream can emulate.
enum class StreamMode {
  /// On/off duty cycle: long read-only stretches punctuated by storms
  /// of back-to-back commits.
  kBurstyCommits,
  /// Steady interleave; readers drawn from a Zipf-skewed popularity
  /// distribution over the profile population (a few hot users own
  /// most of the traffic).
  kZipfReads,
  /// E4's heavy-noise pattern scaled up (large instance-churn commits)
  /// plus a fixed block of triples that is flapped — removed when
  /// present, re-added when absent — on every commit.
  kAdversarialChurn,
  /// Schema-refactor shockwaves: each commit mass-reparents a fraction
  /// of the class hierarchy (plus schema-heavy noise), forcing the
  /// engine through its full-frontier refresh path.
  kSchemaShockwave,
  /// Offered load ramps linearly from the base arrival rate
  /// (1/mean_gap_us) up to overload_factor times it by the end of the
  /// stream — the E17 pattern that deliberately drives a server past
  /// capacity so admission control has something to shed.
  kOverloadRamp,
};

const char* StreamModeName(StreamMode mode);

/// Parameters of one generated stream. Everything is deterministic per
/// (scenario, seed): regenerating the same scenario and calling
/// GenerateStream with equal options yields a byte-identical stream.
struct StreamOptions {
  StreamMode mode = StreamMode::kZipfReads;
  /// Read events to emit.
  size_t reads = 240;
  /// Commit events to emit.
  size_t commits = 8;
  /// Size of the profile population reads are drawn from.
  size_t population = 48;
  /// Zipf exponent for kZipfReads user picks (others draw uniformly).
  double zipf_exponent = 1.1;
  /// Fraction of reads served over an older adjacent version pair
  /// instead of (head-1, head).
  double historical_fraction = 0.2;
  /// kBurstyCommits: commits per storm / reads between storms.
  size_t burst_on = 4;
  size_t burst_off = 48;
  /// Generator operations per commit (adversarial churn triples this).
  size_t ops_per_commit = 12;
  /// kAdversarialChurn: size of the flapped triple block.
  size_t flap_block = 10;
  /// kSchemaShockwave: fraction of reparentable classes moved per
  /// commit.
  double shockwave_fraction = 0.3;
  /// Mean virtual inter-arrival gap (exponential), microseconds.
  double mean_gap_us = 250.0;
  /// kOverloadRamp: how many times the base arrival rate the stream
  /// reaches by its final event.
  double overload_factor = 8.0;
  ProfileGenOptions profile;
  uint64_t seed = 17;
};

/// One timestamped event: either a read (serve `user` over the version
/// pair `before` -> `after`) or a commit of `changes`.
struct StreamEvent {
  enum class Kind { kRead, kCommit };
  Kind kind = Kind::kRead;
  uint64_t timestamp_us = 0;
  /// Read: index into WorkloadStream::users.
  size_t user = 0;
  /// Read: version pair to serve, valid once all prior commit events
  /// in the stream have landed.
  version::VersionId before = 0;
  version::VersionId after = 0;
  /// Commit payload (empty for reads).
  version::ChangeSet changes;
};

/// A generated event stream plus the population it reads from. Version
/// ids in read events assume every prior commit event lands in stream
/// order on top of the scenario's `base_head`.
struct WorkloadStream {
  std::string name;
  StreamMode mode = StreamMode::kZipfReads;
  StreamOptions options;
  std::vector<StreamEvent> events;
  std::vector<profile::HumanProfile> users;
  /// Scenario head version when the stream was generated.
  version::VersionId base_head = 0;
  size_t read_count = 0;
  size_t commit_count = 0;
  /// Total |delta| (additions + removals) across all commit events.
  size_t change_triples = 0;
};

/// Generates a stream against the scenario's head snapshot. Commit
/// change sets are state-consistent when applied in stream order
/// (removals name present triples, additions absent ones). Fresh IRIs
/// are interned into the scenario's shared dictionary here, at
/// generation time, so replaying the events against a
/// ShardedKnowledgeBase needs no interning on the commit path.
/// Deterministic per (scenario, options.seed).
WorkloadStream GenerateStream(Scenario& scenario,
                              const StreamOptions& options);

}  // namespace evorec::workload

#endif  // EVOREC_WORKLOAD_STREAM_GENERATOR_H_
