#include "workload/evolution_generator.h"

#include <algorithm>
#include <unordered_set>

#include "common/random.h"
#include "rdf/triple.h"
#include "schema/schema_view.h"

namespace evorec::workload {

ChangeMix ChangeMix::SchemaHeavy() {
  ChangeMix mix;
  mix.add_class = 0.12;
  mix.delete_class = 0.08;
  mix.move_class = 0.30;
  mix.add_property = 0.10;
  mix.change_domain = 0.15;
  mix.add_instance = 0.08;
  mix.delete_instance = 0.05;
  mix.add_edge = 0.06;
  mix.delete_edge = 0.03;
  mix.retype_instance = 0.03;
  return mix;
}

ChangeMix ChangeMix::InstanceChurn() {
  ChangeMix mix;
  mix.add_class = 0.0;
  mix.delete_class = 0.0;
  mix.move_class = 0.0;
  mix.add_property = 0.0;
  mix.change_domain = 0.0;
  mix.add_instance = 0.38;
  mix.delete_instance = 0.22;
  mix.add_edge = 0.25;
  mix.delete_edge = 0.10;
  mix.retype_instance = 0.05;
  return mix;
}

namespace {

// Buffered, state-consistent triple edits: re-adding a triple removed
// this epoch cancels the removal, removing a triple added this epoch
// cancels the addition, and removals only ever name triples that exist
// in the base snapshot.
class ChangeBuffer {
 public:
  explicit ChangeBuffer(const rdf::TripleStore& base) : base_(base) {}

  void Add(const rdf::Triple& t) {
    if (removals_.erase(t) > 0) return;
    if (base_.Contains(t)) return;
    additions_.insert(t);
  }

  void Remove(const rdf::Triple& t) {
    if (additions_.erase(t) > 0) return;
    if (base_.Contains(t)) removals_.insert(t);
  }

  version::ChangeSet Finish() const {
    version::ChangeSet cs;
    cs.additions.assign(additions_.begin(), additions_.end());
    cs.removals.assign(removals_.begin(), removals_.end());
    std::sort(cs.additions.begin(), cs.additions.end());
    std::sort(cs.removals.begin(), cs.removals.end());
    return cs;
  }

 private:
  const rdf::TripleStore& base_;
  std::unordered_set<rdf::Triple, rdf::TripleHash> additions_;
  std::unordered_set<rdf::Triple, rdf::TripleHash> removals_;
};

struct InstanceEdge {
  rdf::Triple triple;
  rdf::TermId subject_class;
  rdf::TermId object_class;
};

}  // namespace

EvolutionOutcome GenerateEvolution(const rdf::KnowledgeBase& current,
                                   rdf::Dictionary& dictionary,
                                   const EvolutionOptions& options) {
  Rng rng(options.seed);
  EvolutionOutcome out;
  const rdf::Vocabulary& voc = current.vocabulary();
  const schema::SchemaView view = schema::SchemaView::Build(current);
  ChangeBuffer buffer(current.store());

  std::vector<rdf::TermId> classes = view.classes();
  if (classes.empty()) return out;

  // Working copies of instance lists and the instance-edge pool.
  std::unordered_map<rdf::TermId, std::vector<rdf::TermId>> instances;
  std::unordered_map<rdf::TermId, rdf::TermId> type_of;
  for (rdf::TermId cls : classes) {
    instances[cls] = view.InstancesOf(cls);
    for (rdf::TermId inst : instances[cls]) type_of[inst] = cls;
  }
  std::vector<InstanceEdge> edges;
  for (const rdf::Triple& t : current.store().triples()) {
    if (voc.IsSchemaPredicate(t.predicate)) continue;
    auto s = type_of.find(t.subject);
    auto o = type_of.find(t.object);
    if (s == type_of.end() || o == type_of.end()) continue;
    edges.push_back({t, s->second, o->second});
  }

  // Plant hot classes, preferring classes that actually have data.
  std::vector<rdf::TermId> with_instances;
  for (rdf::TermId cls : classes) {
    if (!instances[cls].empty()) with_instances.push_back(cls);
  }
  std::vector<rdf::TermId>& hot_pool =
      with_instances.size() >= options.hotspot_count ? with_instances
                                                     : classes;
  for (size_t index : rng.SampleWithoutReplacement(
           hot_pool.size(),
           std::min(options.hotspot_count, hot_pool.size()))) {
    out.hot_classes.push_back(hot_pool[index]);
  }

  auto pick_target = [&]() -> rdf::TermId {
    if (!out.hot_classes.empty() && rng.Bernoulli(options.hotspot_fraction)) {
      return out.hot_classes[static_cast<size_t>(rng.UniformInt(
          0, static_cast<int64_t>(out.hot_classes.size()) - 1))];
    }
    return classes[static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(classes.size()) - 1))];
  };
  auto random_class = [&]() -> rdf::TermId {
    return classes[static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(classes.size()) - 1))];
  };
  auto attribute = [&](rdf::TermId cls) { ++out.ops_per_class[cls]; };

  const std::vector<double> weights = {
      options.mix.add_class,    options.mix.delete_class,
      options.mix.move_class,   options.mix.add_property,
      options.mix.change_domain, options.mix.add_instance,
      options.mix.delete_instance, options.mix.add_edge,
      options.mix.delete_edge,  options.mix.retype_instance};

  size_t fresh_counter = 0;
  // Classes/instances created this epoch are excluded from deletion so
  // removals always reference the base snapshot.
  std::unordered_set<rdf::TermId> created_this_epoch;

  for (size_t op = 0; op < options.operations; ++op) {
    const size_t kind = rng.WeightedIndex(weights);
    const rdf::TermId target = pick_target();
    switch (kind) {
      case 0: {  // add_class under target
        const std::string iri = options.fresh_prefix + "GenClass_e" +
                                std::to_string(options.epoch) + "_" +
                                std::to_string(fresh_counter++);
        const rdf::TermId cls = dictionary.InternIri(iri);
        buffer.Add(rdf::Triple(cls, voc.rdf_type, voc.rdfs_class));
        buffer.Add(rdf::Triple(cls, voc.rdfs_subclass_of, target));
        created_this_epoch.insert(cls);
        attribute(target);
        break;
      }
      case 1: {  // delete_class: leaf classes of the base snapshot only
        if (created_this_epoch.count(target) > 0) break;
        if (!view.hierarchy().Children(target).empty()) break;
        if (!instances[target].empty()) break;  // keep data consistent
        buffer.Remove(rdf::Triple(target, voc.rdf_type, voc.rdfs_class));
        for (rdf::TermId parent : view.hierarchy().Parents(target)) {
          buffer.Remove(
              rdf::Triple(target, voc.rdfs_subclass_of, parent));
        }
        attribute(target);
        break;
      }
      case 2: {  // move_class: reparent target
        const auto& parents = view.hierarchy().Parents(target);
        if (parents.empty()) break;
        const rdf::TermId new_parent = random_class();
        if (new_parent == target || new_parent == parents[0]) break;
        buffer.Remove(
            rdf::Triple(target, voc.rdfs_subclass_of, parents[0]));
        buffer.Add(rdf::Triple(target, voc.rdfs_subclass_of, new_parent));
        attribute(target);
        attribute(new_parent);
        break;
      }
      case 3: {  // add_property with domain = target
        const std::string iri = options.fresh_prefix + "genProp_e" +
                                std::to_string(options.epoch) + "_" +
                                std::to_string(fresh_counter++);
        const rdf::TermId property = dictionary.InternIri(iri);
        buffer.Add(rdf::Triple(property, voc.rdf_type, voc.rdf_property));
        buffer.Add(rdf::Triple(property, voc.rdfs_domain, target));
        buffer.Add(rdf::Triple(property, voc.rdfs_range, random_class()));
        attribute(target);
        break;
      }
      case 4: {  // change_domain of a random property to target
        if (view.properties().empty()) break;
        const rdf::TermId property =
            view.properties()[static_cast<size_t>(rng.UniformInt(
                0, static_cast<int64_t>(view.properties().size()) - 1))];
        const auto domains = view.DomainsOf(property);
        if (domains.empty() || domains[0] == target) break;
        buffer.Remove(rdf::Triple(property, voc.rdfs_domain, domains[0]));
        buffer.Add(rdf::Triple(property, voc.rdfs_domain, target));
        attribute(target);
        attribute(domains[0]);
        break;
      }
      case 5: {  // add_instance of target
        const std::string iri = options.fresh_prefix + "genInst_e" +
                                std::to_string(options.epoch) + "_" +
                                std::to_string(fresh_counter++);
        const rdf::TermId instance = dictionary.InternIri(iri);
        buffer.Add(rdf::Triple(instance, voc.rdf_type, target));
        instances[target].push_back(instance);
        type_of[instance] = target;
        created_this_epoch.insert(instance);
        attribute(target);
        break;
      }
      case 6: {  // delete_instance of target (base-snapshot instances)
        auto& pool = instances[target];
        if (pool.empty()) break;
        const size_t pick = static_cast<size_t>(
            rng.UniformInt(0, static_cast<int64_t>(pool.size()) - 1));
        const rdf::TermId instance = pool[pick];
        if (created_this_epoch.count(instance) > 0) break;
        buffer.Remove(rdf::Triple(instance, voc.rdf_type, target));
        // Drop the instance's edges with it.
        for (auto it = edges.begin(); it != edges.end();) {
          if (it->triple.subject == instance ||
              it->triple.object == instance) {
            buffer.Remove(it->triple);
            it = edges.erase(it);
          } else {
            ++it;
          }
        }
        pool.erase(pool.begin() + static_cast<ptrdiff_t>(pick));
        type_of.erase(instance);
        attribute(target);
        break;
      }
      case 7: {  // add_edge touching target where possible
        if (view.properties().empty()) break;
        const rdf::TermId property =
            view.properties()[static_cast<size_t>(rng.UniformInt(
                0, static_cast<int64_t>(view.properties().size()) - 1))];
        const auto domains = view.DomainsOf(property);
        const auto ranges = view.RangesOf(property);
        // Prefer an edge out of the target class when the property
        // allows it; otherwise use the declared domain.
        const rdf::TermId source_class =
            (!instances[target].empty() &&
             (domains.empty() || rng.Bernoulli(0.5)))
                ? target
                : (domains.empty() ? target : domains[0]);
        const rdf::TermId target_class = ranges.empty() ? target : ranges[0];
        auto& sources = instances[source_class];
        auto& targets = instances[target_class];
        if (sources.empty() || targets.empty()) break;
        const rdf::TermId s = sources[static_cast<size_t>(
            rng.UniformInt(0, static_cast<int64_t>(sources.size()) - 1))];
        const rdf::TermId o = targets[static_cast<size_t>(
            rng.UniformInt(0, static_cast<int64_t>(targets.size()) - 1))];
        const rdf::Triple t(s, property, o);
        buffer.Add(t);
        edges.push_back({t, source_class, target_class});
        attribute(source_class);
        if (target_class != source_class) attribute(target_class);
        break;
      }
      case 8: {  // delete_edge touching target
        std::vector<size_t> touching;
        for (size_t i = 0; i < edges.size(); ++i) {
          if (edges[i].subject_class == target ||
              edges[i].object_class == target) {
            touching.push_back(i);
          }
        }
        if (touching.empty()) break;
        const size_t pick = touching[static_cast<size_t>(rng.UniformInt(
            0, static_cast<int64_t>(touching.size()) - 1))];
        buffer.Remove(edges[pick].triple);
        attribute(edges[pick].subject_class);
        if (edges[pick].object_class != edges[pick].subject_class) {
          attribute(edges[pick].object_class);
        }
        edges.erase(edges.begin() + static_cast<ptrdiff_t>(pick));
        break;
      }
      case 9: {  // retype_instance from target to a random class
        auto& pool = instances[target];
        if (pool.empty()) break;
        const size_t pick = static_cast<size_t>(
            rng.UniformInt(0, static_cast<int64_t>(pool.size()) - 1));
        const rdf::TermId instance = pool[pick];
        const rdf::TermId new_class = random_class();
        if (new_class == target) break;
        buffer.Remove(rdf::Triple(instance, voc.rdf_type, target));
        buffer.Add(rdf::Triple(instance, voc.rdf_type, new_class));
        pool.erase(pool.begin() + static_cast<ptrdiff_t>(pick));
        instances[new_class].push_back(instance);
        type_of[instance] = new_class;
        attribute(target);
        attribute(new_class);
        break;
      }
      default:
        break;
    }
  }
  out.changes = buffer.Finish();
  return out;
}

}  // namespace evorec::workload
