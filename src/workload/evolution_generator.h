#ifndef EVOREC_WORKLOAD_EVOLUTION_GENERATOR_H_
#define EVOREC_WORKLOAD_EVOLUTION_GENERATOR_H_

#include <unordered_map>
#include <vector>

#include "rdf/knowledge_base.h"
#include "version/version.h"

namespace evorec::workload {

/// Relative frequencies of the change operations the generator emits
/// (normalised internally). The defaults mimic real KB evolution:
/// mostly instance churn, occasional schema surgery.
struct ChangeMix {
  double add_class = 0.02;
  double delete_class = 0.01;
  double move_class = 0.03;
  double add_property = 0.01;
  double change_domain = 0.01;
  double add_instance = 0.33;
  double delete_instance = 0.16;
  double add_edge = 0.26;
  double delete_edge = 0.13;
  double retype_instance = 0.04;

  /// A schema-heavy mix (topology churn) for experiments contrasting
  /// structural vs counting measures.
  static ChangeMix SchemaHeavy();
  /// A pure instance-churn mix (no schema edits).
  static ChangeMix InstanceChurn();
};

/// Options for one evolution step (one version transition).
struct EvolutionOptions {
  /// Number of change operations to perform (each expands into one or
  /// more low-level triple changes).
  size_t operations = 400;
  ChangeMix mix;
  /// Fraction of operations targeted at the hot classes; the rest
  /// spread uniformly. Hot classes are the experiment's planted
  /// ground truth.
  double hotspot_fraction = 0.6;
  /// Number of hot classes to plant (sampled uniformly).
  size_t hotspot_count = 3;
  /// IRI prefix for freshly created terms.
  std::string fresh_prefix = "http://example.org/onto#";
  /// Distinguishes fresh IRIs across successive transitions.
  size_t epoch = 1;
  uint64_t seed = 3;
};

/// Outcome of one generated transition: the change set to commit plus
/// the planted ground truth.
struct EvolutionOutcome {
  version::ChangeSet changes;
  /// Classes planted as change hotspots.
  std::vector<rdf::TermId> hot_classes;
  /// Ground-truth operation counts attributed per class.
  std::unordered_map<rdf::TermId, size_t> ops_per_class;
};

/// Generates a change set against `current` (a materialised snapshot).
/// Operations respect the snapshot's state (no deletion of absent
/// triples); the returned set can be passed to
/// VersionedKnowledgeBase::Commit. `dictionary` must be the shared
/// dictionary of `current`; fresh IRIs are interned into it (the
/// snapshot's triples are never modified). Deterministic per seed.
EvolutionOutcome GenerateEvolution(const rdf::KnowledgeBase& current,
                                   rdf::Dictionary& dictionary,
                                   const EvolutionOptions& options);

}  // namespace evorec::workload

#endif  // EVOREC_WORKLOAD_EVOLUTION_GENERATOR_H_
