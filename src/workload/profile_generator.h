#ifndef EVOREC_WORKLOAD_PROFILE_GENERATOR_H_
#define EVOREC_WORKLOAD_PROFILE_GENERATOR_H_

#include <string>
#include <vector>

#include "common/random.h"
#include "profile/group.h"
#include "profile/profile.h"
#include "schema/schema_view.h"

namespace evorec::workload {

/// Options for synthetic profile generation.
struct ProfileGenOptions {
  /// Number of seeded interest terms per profile.
  size_t interest_count = 5;
  /// Probability an interest comes from the profile's focal subtree
  /// (the rest are uniform over all classes). High values give focused
  /// curators; low values give broad editors.
  double subtree_focus = 0.8;
  /// Interest weights drawn uniformly from [min_weight, 1].
  double min_weight = 0.3;
};

/// Generates a profile whose interests concentrate on the subtree
/// rooted at a randomly chosen focal class (ground truth: the focal
/// class is returned through `focus_out` when non-null).
profile::HumanProfile GenerateProfile(const std::string& id,
                                      const schema::SchemaView& view,
                                      const ProfileGenOptions& options,
                                      Rng& rng,
                                      rdf::TermId* focus_out = nullptr);

/// Generates a group of `member_count` profiles whose interests
/// overlap by `overlap` ∈ [0,1]: each member draws that fraction of
/// its interests from a shared pool and the rest independently.
/// overlap 0 gives disjoint members (the hard fairness case, §III.d),
/// overlap 1 gives clones.
profile::Group GenerateGroup(const std::string& id, size_t member_count,
                             double overlap, const schema::SchemaView& view,
                             const ProfileGenOptions& options, Rng& rng);

}  // namespace evorec::workload

#endif  // EVOREC_WORKLOAD_PROFILE_GENERATOR_H_
