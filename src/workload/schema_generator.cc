#include "workload/schema_generator.h"

#include "common/random.h"

namespace evorec::workload {

GeneratedSchema GenerateSchema(const SchemaGenOptions& options,
                               std::shared_ptr<rdf::Dictionary> dictionary) {
  Rng rng(options.seed);
  GeneratedSchema out{dictionary == nullptr
                          ? rdf::KnowledgeBase()
                          : rdf::KnowledgeBase(std::move(dictionary)),
                      {},
                      {}};
  rdf::KnowledgeBase& kb = out.kb;
  const rdf::Vocabulary& voc = kb.vocabulary();

  const size_t roots = std::max<size_t>(1, options.root_count);
  for (size_t i = 0; i < options.class_count; ++i) {
    const std::string iri =
        options.namespace_prefix + "Class" + std::to_string(i);
    const rdf::TermId cls = kb.DeclareClass(iri);
    kb.store().Add(rdf::Triple(
        cls, voc.rdfs_label,
        kb.dictionary().InternLiteral("Class " + std::to_string(i))));
    if (i >= roots) {
      // Parent among earlier classes: uniform, producing wide shallow
      // trees like real ontologies.
      const size_t parent = static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(i) - 1));
      kb.store().Add(rdf::Triple(cls, voc.rdfs_subclass_of,
                                 out.classes[parent]));
    }
    out.classes.push_back(cls);
  }

  for (size_t i = 0; i < options.property_count; ++i) {
    const std::string iri =
        options.namespace_prefix + "prop" + std::to_string(i);
    const size_t domain = static_cast<size_t>(rng.UniformInt(
        0, static_cast<int64_t>(options.class_count) - 1));
    const size_t range = static_cast<size_t>(rng.UniformInt(
        0, static_cast<int64_t>(options.class_count) - 1));
    const rdf::TermId property = kb.DeclareProperty(iri);
    kb.store().Add(
        rdf::Triple(property, voc.rdfs_domain, out.classes[domain]));
    kb.store().Add(
        rdf::Triple(property, voc.rdfs_range, out.classes[range]));
    out.properties.push_back(property);
  }
  kb.store().Compact();
  return out;
}

}  // namespace evorec::workload
