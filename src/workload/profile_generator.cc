#include "workload/profile_generator.h"

#include <algorithm>

namespace evorec::workload {

namespace {

rdf::TermId RandomClass(const std::vector<rdf::TermId>& classes, Rng& rng) {
  return classes[static_cast<size_t>(
      rng.UniformInt(0, static_cast<int64_t>(classes.size()) - 1))];
}

}  // namespace

profile::HumanProfile GenerateProfile(const std::string& id,
                                      const schema::SchemaView& view,
                                      const ProfileGenOptions& options,
                                      Rng& rng, rdf::TermId* focus_out) {
  profile::HumanProfile prof(id);
  const std::vector<rdf::TermId>& classes = view.classes();
  if (classes.empty()) return prof;

  const rdf::TermId focus = RandomClass(classes, rng);
  if (focus_out != nullptr) *focus_out = focus;
  std::vector<rdf::TermId> subtree = view.hierarchy().Descendants(focus);
  subtree.push_back(focus);

  for (size_t i = 0; i < options.interest_count; ++i) {
    const bool focal = rng.Bernoulli(options.subtree_focus);
    const rdf::TermId term =
        focal ? subtree[static_cast<size_t>(rng.UniformInt(
                    0, static_cast<int64_t>(subtree.size()) - 1))]
              : RandomClass(classes, rng);
    const double weight = rng.UniformDouble(options.min_weight, 1.0);
    // Keep the max weight if the same term is drawn twice.
    prof.SetInterest(term, std::max(weight, prof.InterestIn(term)));
  }
  return prof;
}

profile::Group GenerateGroup(const std::string& id, size_t member_count,
                             double overlap, const schema::SchemaView& view,
                             const ProfileGenOptions& options, Rng& rng) {
  profile::Group group(id);
  const std::vector<rdf::TermId>& classes = view.classes();
  if (classes.empty()) return group;

  // Shared interest pool all members sample their overlapping part
  // from.
  std::vector<std::pair<rdf::TermId, double>> shared_pool;
  for (size_t i = 0; i < options.interest_count; ++i) {
    shared_pool.emplace_back(RandomClass(classes, rng),
                             rng.UniformDouble(options.min_weight, 1.0));
  }

  for (size_t m = 0; m < member_count; ++m) {
    profile::HumanProfile member =
        GenerateProfile(id + "/member" + std::to_string(m), view, options,
                        rng);
    // Replace a fraction `overlap` of the member's interests with
    // shared ones.
    const size_t shared_take = static_cast<size_t>(
        overlap * static_cast<double>(options.interest_count) + 0.5);
    for (size_t i = 0; i < shared_take && i < shared_pool.size(); ++i) {
      member.SetInterest(shared_pool[i].first, shared_pool[i].second);
    }
    group.AddMember(std::move(member));
  }
  return group;
}

}  // namespace evorec::workload
