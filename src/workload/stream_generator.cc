#include "workload/stream_generator.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>
#include <vector>

#include "common/random.h"
#include "rdf/knowledge_base.h"
#include "schema/schema_view.h"
#include "workload/evolution_generator.h"

namespace evorec::workload {
namespace {

// All triples a change set touches, sorted for binary_search.
std::vector<rdf::Triple> SortedUnion(const version::ChangeSet& changes) {
  std::vector<rdf::Triple> out;
  out.reserve(changes.additions.size() + changes.removals.size());
  out.insert(out.end(), changes.additions.begin(), changes.additions.end());
  out.insert(out.end(), changes.removals.begin(), changes.removals.end());
  std::sort(out.begin(), out.end());
  return out;
}

void FilterOut(std::vector<rdf::Triple>& list,
               const std::vector<rdf::Triple>& sorted_drop) {
  std::erase_if(list, [&](const rdf::Triple& t) {
    return std::binary_search(sorted_drop.begin(), sorted_drop.end(), t);
  });
}

uint64_t ExponentialGap(Rng& rng, double mean_us) {
  const double gap = -mean_us * std::log1p(-rng.UniformDouble());
  return gap >= 1.0 ? static_cast<uint64_t>(gap) : 1;
}

// The block of instance-level triples kAdversarialChurn flaps. Drawn
// from the generator's private working copy (the triples() flat copy
// never touches a served snapshot).
std::vector<rdf::Triple> PickFlapPool(const rdf::KnowledgeBase& working,
                                      size_t block, Rng& rng) {
  std::vector<rdf::Triple> instance_level;
  for (const rdf::Triple& t : working.store().triples()) {
    if (!working.vocabulary().IsSchemaPredicate(t.predicate)) {
      instance_level.push_back(t);
    }
  }
  std::vector<rdf::Triple> pool;
  if (instance_level.empty() || block == 0) return pool;
  const auto picks = rng.SampleWithoutReplacement(
      instance_level.size(), std::min(block, instance_level.size()));
  pool.reserve(picks.size());
  for (size_t idx : picks) pool.push_back(instance_level[idx]);
  std::sort(pool.begin(), pool.end());
  return pool;
}

// Mass reparent: moves a fraction of the classes that have a parent to
// a random non-descendant parent, invalidating the subsumption
// neighborhood of every touched subtree at once.
version::ChangeSet ReparentWave(const rdf::KnowledgeBase& working,
                                const StreamOptions& options, Rng& rng) {
  version::ChangeSet out;
  const schema::SchemaView view = schema::SchemaView::Build(working);
  const auto& classes = view.classes();
  std::vector<rdf::TermId> movable;
  for (rdf::TermId c : classes) {
    if (!view.hierarchy().Parents(c).empty()) movable.push_back(c);
  }
  if (movable.empty() || classes.size() < 3) return out;
  size_t want = std::max<size_t>(
      1, static_cast<size_t>(static_cast<double>(movable.size()) *
                             options.shockwave_fraction));
  want = std::min(want, movable.size());
  auto picks = rng.SampleWithoutReplacement(movable.size(), want);
  std::sort(picks.begin(), picks.end());
  const rdf::TermId subclass_of = working.vocabulary().rdfs_subclass_of;
  for (size_t idx : picks) {
    const rdf::TermId cls = movable[idx];
    const rdf::TermId old_parent = view.hierarchy().Parents(cls)[0];
    const auto descendants = view.hierarchy().Descendants(cls);
    std::unordered_set<rdf::TermId> forbidden(descendants.begin(),
                                              descendants.end());
    forbidden.insert(cls);
    forbidden.insert(old_parent);
    rdf::TermId new_parent = rdf::kAnyTerm;
    for (int attempt = 0; attempt < 16; ++attempt) {
      const rdf::TermId candidate = classes[static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(classes.size()) - 1))];
      if (forbidden.count(candidate) == 0) {
        new_parent = candidate;
        break;
      }
    }
    if (new_parent == rdf::kAnyTerm) continue;
    out.removals.push_back(rdf::Triple(cls, subclass_of, old_parent));
    out.additions.push_back(rdf::Triple(cls, subclass_of, new_parent));
  }
  return out;
}

version::ChangeSet BuildCommit(StreamMode mode, size_t commit_index,
                               rdf::KnowledgeBase& working,
                               rdf::Dictionary& dictionary,
                               const StreamOptions& options,
                               const std::vector<rdf::Triple>& flap_pool,
                               Rng& rng) {
  EvolutionOptions evo;
  evo.operations = options.ops_per_commit;
  evo.hotspot_count = 2;
  // Epochs 1000+ keep stream-minted fresh IRIs disjoint from the
  // scenario's own transitions (epochs 1..versions).
  evo.epoch = 1000 + commit_index;
  evo.seed = options.seed * 7919 + commit_index * 131 + 17;

  version::ChangeSet crafted;
  switch (mode) {
    case StreamMode::kBurstyCommits:
    case StreamMode::kZipfReads:
      break;  // plain mixed-evolution payload
    case StreamMode::kAdversarialChurn:
      evo.mix = ChangeMix::InstanceChurn();
      evo.operations = options.ops_per_commit * 3;
      for (const rdf::Triple& t : flap_pool) {
        if (working.store().Contains(t)) {
          crafted.removals.push_back(t);
        } else {
          crafted.additions.push_back(t);
        }
      }
      break;
    case StreamMode::kSchemaShockwave:
      evo.mix = ChangeMix::SchemaHeavy();
      crafted = ReparentWave(working, options, rng);
      break;
    case StreamMode::kOverloadRamp:
      break;  // plain payload — the ramp lives in the arrival gaps
  }

  EvolutionOutcome noise = GenerateEvolution(working, dictionary, evo);
  if (!crafted.empty()) {
    // The crafted edits are authoritative; drop colliding noise triples
    // so no triple appears twice in the merged set.
    const auto touched = SortedUnion(crafted);
    FilterOut(noise.changes.additions, touched);
    FilterOut(noise.changes.removals, touched);
  }
  version::ChangeSet changes = std::move(crafted);
  changes.additions.insert(changes.additions.end(),
                           noise.changes.additions.begin(),
                           noise.changes.additions.end());
  changes.removals.insert(changes.removals.end(),
                          noise.changes.removals.begin(),
                          noise.changes.removals.end());
  return changes;
}

// Interleaving schedule: true = commit slot.
std::vector<bool> BuildSchedule(const StreamOptions& options) {
  std::vector<bool> slots;
  slots.reserve(options.reads + options.commits);
  if (options.mode == StreamMode::kBurstyCommits) {
    size_t reads_left = options.reads;
    size_t commits_left = options.commits;
    while (reads_left > 0 || commits_left > 0) {
      for (size_t i = 0; i < options.burst_off && reads_left > 0; ++i) {
        slots.push_back(false);
        --reads_left;
      }
      for (size_t i = 0; i < options.burst_on && commits_left > 0; ++i) {
        slots.push_back(true);
        --commits_left;
      }
      if (reads_left == 0) {
        while (commits_left > 0) {
          slots.push_back(true);
          --commits_left;
        }
      }
    }
  } else {
    // Evenly spread: a commit after every `stride` reads.
    const size_t stride =
        options.commits == 0
            ? options.reads + 1
            : std::max<size_t>(1, options.reads / options.commits);
    size_t reads_left = options.reads;
    size_t commits_left = options.commits;
    while (reads_left > 0 || commits_left > 0) {
      for (size_t i = 0; i < stride && reads_left > 0; ++i) {
        slots.push_back(false);
        --reads_left;
      }
      if (commits_left > 0) {
        slots.push_back(true);
        --commits_left;
      }
    }
  }
  return slots;
}

}  // namespace

const char* StreamModeName(StreamMode mode) {
  switch (mode) {
    case StreamMode::kBurstyCommits:
      return "bursty-commits";
    case StreamMode::kZipfReads:
      return "zipf-reads";
    case StreamMode::kAdversarialChurn:
      return "adversarial-churn";
    case StreamMode::kSchemaShockwave:
      return "schema-shockwave";
    case StreamMode::kOverloadRamp:
      return "overload-ramp";
  }
  return "unknown";
}

WorkloadStream GenerateStream(Scenario& scenario,
                              const StreamOptions& options) {
  WorkloadStream out;
  out.mode = options.mode;
  out.options = options;
  out.name = scenario.name + "/" + StreamModeName(options.mode);

  version::VersionedKnowledgeBase& vkb = *scenario.vkb;
  out.base_head = vkb.head();
  // Private working copy: triples copied, dictionary shared with the
  // scenario, so fresh IRIs interned during generation carry the same
  // TermIds any replay of this scenario sees.
  rdf::KnowledgeBase working = *vkb.Snapshot(vkb.head()).value();

  Rng rng(options.seed);
  Rng profile_rng(options.seed + 0x9E3779B9u);

  const schema::SchemaView head_view = schema::SchemaView::Build(working);
  out.users.reserve(options.population);
  for (size_t i = 0; i < options.population; ++i) {
    out.users.push_back(GenerateProfile(out.name + "/u" + std::to_string(i),
                                        head_view, options.profile,
                                        profile_rng));
  }

  std::vector<rdf::Triple> flap_pool;
  if (options.mode == StreamMode::kAdversarialChurn) {
    flap_pool = PickFlapPool(working, options.flap_block, rng);
  }

  const std::vector<bool> schedule = BuildSchedule(options);
  version::VersionId virtual_head = out.base_head;
  uint64_t now_us = 0;
  size_t commit_index = 0;
  bool in_storm = false;
  for (size_t slot = 0; slot < schedule.size(); ++slot) {
    const bool is_commit = schedule[slot];
    // Storm commits arrive back-to-back: compress their gaps.
    double gap_scale =
        (is_commit && options.mode == StreamMode::kBurstyCommits && in_storm)
            ? 0.125
            : 1.0;
    if (options.mode == StreamMode::kOverloadRamp && schedule.size() > 1) {
      // Arrival rate ramps linearly with stream progress from 1x to
      // overload_factor x the base rate, so the gap shrinks as its
      // reciprocal.
      const double progress = static_cast<double>(slot) /
                              static_cast<double>(schedule.size() - 1);
      const double rate_multiple =
          1.0 + progress * (std::max(options.overload_factor, 1.0) - 1.0);
      gap_scale = 1.0 / rate_multiple;
    }
    now_us += ExponentialGap(rng, options.mean_gap_us * gap_scale);
    in_storm = is_commit;

    StreamEvent event;
    event.timestamp_us = now_us;
    if (is_commit) {
      event.kind = StreamEvent::Kind::kCommit;
      event.changes =
          BuildCommit(options.mode, commit_index, working,
                      vkb.dictionary(), options, flap_pool, rng);
      out.change_triples +=
          event.changes.additions.size() + event.changes.removals.size();
      working.store().AddAll(event.changes.additions);
      working.store().RemoveAll(event.changes.removals);
      working.store().Compact();
      ++virtual_head;
      ++commit_index;
      ++out.commit_count;
    } else {
      event.kind = StreamEvent::Kind::kRead;
      event.user = options.mode == StreamMode::kZipfReads
                       ? rng.Zipf(options.population, options.zipf_exponent)
                       : static_cast<size_t>(rng.UniformInt(
                             0, static_cast<int64_t>(options.population) - 1));
      if (virtual_head >= 2 && rng.Bernoulli(options.historical_fraction)) {
        event.before = static_cast<version::VersionId>(
            rng.UniformInt(0, static_cast<int64_t>(virtual_head) - 2));
      } else {
        event.before = virtual_head - 1;
      }
      event.after = event.before + 1;
      ++out.read_count;
    }
    out.events.push_back(std::move(event));
  }
  return out;
}

}  // namespace evorec::workload
