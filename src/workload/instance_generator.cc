#include "workload/instance_generator.h"

#include "common/random.h"
#include "schema/schema_view.h"

namespace evorec::workload {

GeneratedInstances PopulateInstances(GeneratedSchema& generated,
                                     const InstanceGenOptions& options) {
  Rng rng(options.seed);
  GeneratedInstances out;
  rdf::KnowledgeBase& kb = generated.kb;
  const rdf::Vocabulary& voc = kb.vocabulary();
  if (generated.classes.empty()) return out;

  // Zipf rank → class assignment uses a shuffled copy so that heavy
  // classes are spread across the hierarchy, not clustered at roots.
  std::vector<rdf::TermId> ranked = generated.classes;
  rng.Shuffle(ranked);

  for (size_t i = 0; i < options.instance_count; ++i) {
    const size_t rank = rng.Zipf(ranked.size(), options.zipf_exponent);
    const rdf::TermId cls = ranked[rank];
    const std::string iri = kb.dictionary().term(cls).lexical + "/inst" +
                            std::to_string(i);
    const rdf::TermId instance = kb.dictionary().InternIri(iri);
    kb.store().Add(rdf::Triple(instance, voc.rdf_type, cls));
    out.instances_by_class[cls].push_back(instance);
    ++out.instance_count;
  }

  // Property edges: pick a property, connect a random instance of its
  // domain to a random instance of its range (skipping properties
  // whose classes have no instances yet).
  generated.kb.store().Compact();
  const schema::SchemaView view = schema::SchemaView::Build(kb);
  struct EdgeSpec {
    rdf::TermId property;
    const std::vector<rdf::TermId>* sources;
    const std::vector<rdf::TermId>* targets;
  };
  std::vector<EdgeSpec> specs;
  for (rdf::TermId property : generated.properties) {
    const auto domains = view.DomainsOf(property);
    const auto ranges = view.RangesOf(property);
    if (domains.empty() || ranges.empty()) continue;
    auto s = out.instances_by_class.find(domains[0]);
    auto t = out.instances_by_class.find(ranges[0]);
    if (s == out.instances_by_class.end() ||
        t == out.instances_by_class.end()) {
      continue;
    }
    specs.push_back({property, &s->second, &t->second});
  }
  if (specs.empty()) return out;
  for (size_t i = 0; i < options.edge_count; ++i) {
    const EdgeSpec& spec = specs[static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(specs.size()) - 1))];
    const rdf::TermId source = (*spec.sources)[static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(spec.sources->size()) - 1))];
    const rdf::TermId target = (*spec.targets)[static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(spec.targets->size()) - 1))];
    kb.store().Add(rdf::Triple(source, spec.property, target));
    ++out.edge_count;
  }
  kb.store().Compact();
  return out;
}

}  // namespace evorec::workload
