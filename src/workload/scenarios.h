#ifndef EVOREC_WORKLOAD_SCENARIOS_H_
#define EVOREC_WORKLOAD_SCENARIOS_H_

#include <memory>
#include <string>
#include <vector>

#include "anonymity/access_policy.h"
#include "profile/group.h"
#include "profile/profile.h"
#include "version/versioned_kb.h"
#include "workload/evolution_generator.h"

namespace evorec::workload {

/// A ready-to-run evaluation scenario: a versioned KB with committed
/// evolution history, profiles/groups, planted ground truth, and (for
/// sensitive scenarios) an access policy.
struct Scenario {
  std::string name;
  std::unique_ptr<version::VersionedKnowledgeBase> vkb;
  std::vector<rdf::TermId> classes;
  std::vector<rdf::TermId> properties;
  /// Hot classes planted in the *last* transition (head-1 → head).
  std::vector<rdf::TermId> hot_classes;
  /// Ground-truth op counts of the last transition.
  std::unordered_map<rdf::TermId, size_t> ops_per_class;
  /// A curators' team (group recommendations).
  profile::Group curators;
  /// A single end user.
  profile::HumanProfile end_user;
  /// Sensitive classes (ClinicalKb only; empty otherwise).
  std::vector<rdf::TermId> sensitive_classes;
  /// Access policy covering the sensitive classes ("analyst" has no
  /// grants, "dpo" sees everything).
  anonymity::AccessPolicy policy;
};

/// Parameters shared by the scenario presets.
struct ScenarioScale {
  size_t classes = 120;
  size_t properties = 40;
  size_t instances = 2500;
  size_t edges = 5000;
  size_t versions = 3;      ///< transitions committed after the base
  size_t operations = 450;  ///< ops per transition
};

/// A DBpedia-like encyclopedic KB: broad hierarchy, zipf-skewed
/// instances, mixed change profile.
Scenario MakeDbpediaLike(uint64_t seed = 7, ScenarioScale scale = {});

/// A clinical KB (paper §III.e motivation): includes a Patient-records
/// subtree marked sensitive, an access policy denying the default
/// analyst, and change bursts on sensitive classes.
Scenario MakeClinicalKb(uint64_t seed = 11, ScenarioScale scale = {});

/// A social-feed style KB: many small instance-churn transitions, an
/// end user with narrow interests (personal notification use case of
/// §I/§III).
Scenario MakeSocialFeed(uint64_t seed = 13, ScenarioScale scale = {});

}  // namespace evorec::workload

#endif  // EVOREC_WORKLOAD_SCENARIOS_H_
