#include "workload/scenarios.h"

#include "common/random.h"
#include "schema/schema_view.h"
#include "workload/instance_generator.h"
#include "workload/profile_generator.h"
#include "workload/schema_generator.h"

namespace evorec::workload {

namespace {

// Shared assembly: schema + instances + `scale.versions` committed
// transitions with the given mix. Ground truth captured from the last
// transition.
Scenario Assemble(const std::string& name, uint64_t seed,
                  const ScenarioScale& scale, const ChangeMix& mix,
                  double hotspot_fraction,
                  const std::string& namespace_prefix) {
  Scenario scenario;
  scenario.name = name;

  SchemaGenOptions schema_options;
  schema_options.class_count = scale.classes;
  schema_options.property_count = scale.properties;
  schema_options.namespace_prefix = namespace_prefix;
  schema_options.seed = seed;
  GeneratedSchema generated = GenerateSchema(schema_options);

  InstanceGenOptions instance_options;
  instance_options.instance_count = scale.instances;
  instance_options.edge_count = scale.edges;
  instance_options.seed = seed + 1;
  PopulateInstances(generated, instance_options);

  scenario.classes = generated.classes;
  scenario.properties = generated.properties;
  scenario.vkb = std::make_unique<version::VersionedKnowledgeBase>(
      version::ArchivePolicy::kFullMaterialization, std::move(generated.kb));

  for (size_t v = 0; v < scale.versions; ++v) {
    auto head = scenario.vkb->Snapshot(scenario.vkb->head());
    EvolutionOptions evolution_options;
    evolution_options.operations = scale.operations;
    evolution_options.mix = mix;
    evolution_options.hotspot_fraction = hotspot_fraction;
    evolution_options.epoch = v + 1;
    evolution_options.fresh_prefix = namespace_prefix;
    evolution_options.seed = seed + 100 + v;
    EvolutionOutcome outcome = GenerateEvolution(
        **head, scenario.vkb->dictionary(), evolution_options);
    (void)scenario.vkb->Commit(std::move(outcome.changes), "generator",
                               name + " transition " + std::to_string(v + 1),
                               /*timestamp=*/v + 1);
    if (v + 1 == scale.versions) {
      scenario.hot_classes = outcome.hot_classes;
      scenario.ops_per_class = outcome.ops_per_class;
    }
  }

  // Profiles are built against the head snapshot's schema.
  auto head = scenario.vkb->Snapshot(scenario.vkb->head());
  const schema::SchemaView view = schema::SchemaView::Build(**head);
  Rng rng(seed + 1000);
  ProfileGenOptions profile_options;
  scenario.curators =
      GenerateGroup(name + "/curators", 5, 0.3, view, profile_options, rng);
  scenario.end_user =
      GenerateProfile(name + "/user", view, profile_options, rng);
  return scenario;
}

}  // namespace

Scenario MakeDbpediaLike(uint64_t seed, ScenarioScale scale) {
  return Assemble("dbpedia_like", seed, scale, ChangeMix(),
                  /*hotspot_fraction=*/0.6,
                  "http://dbpedia-like.org/onto#");
}

Scenario MakeClinicalKb(uint64_t seed, ScenarioScale scale) {
  Scenario scenario =
      Assemble("clinical_kb", seed, scale, ChangeMix(),
               /*hotspot_fraction=*/0.7, "http://clinical.example/onto#");

  // Mark the subtrees rooted at the hot classes as sensitive — in the
  // paper's motivating scenario, the most active region is exactly the
  // patient-records area whose evolution analysts want to watch.
  auto head = scenario.vkb->Snapshot(scenario.vkb->head());
  const schema::SchemaView view = schema::SchemaView::Build(**head);
  for (rdf::TermId hot : scenario.hot_classes) {
    scenario.sensitive_classes.push_back(hot);
    scenario.policy.MarkSensitive(hot);
    for (rdf::TermId descendant : view.hierarchy().Descendants(hot)) {
      scenario.sensitive_classes.push_back(descendant);
      scenario.policy.MarkSensitive(descendant);
    }
  }
  // The data protection officer sees everything; the default analyst
  // profile ("clinical_kb/user") and curators have no grants.
  scenario.policy.GrantAll("dpo");
  return scenario;
}

Scenario MakeSocialFeed(uint64_t seed, ScenarioScale scale) {
  scale.versions = std::max<size_t>(scale.versions, 4);
  scale.operations = scale.operations / 2;
  return Assemble("social_feed", seed, scale, ChangeMix::InstanceChurn(),
                  /*hotspot_fraction=*/0.5, "http://social.example/feed#");
}

}  // namespace evorec::workload
