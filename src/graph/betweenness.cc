#include "graph/betweenness.h"

#include <algorithm>
#include <numeric>

namespace evorec::graph {

namespace {

// Per-pass scratch buffers, reused across the sources of one chunk.
// Predecessor lists live in one flat buffer laid out by the graph's
// CSR offsets (a node's predecessors are a subset of its neighbors, so
// its adjacency slot is always big enough) — no per-node vectors, so
// constructing a scratch is a handful of allocations and the inner
// loops never touch the heap.
struct BrandesScratch {
  std::vector<int32_t> distance;  // BFS level fits 32 bits (n < 2^31)
  std::vector<double> sigma;
  std::vector<double> dependency;
  std::vector<NodeId> pred_count;   // predecessors of w found so far
  std::vector<NodeId> pred_data;    // flat, slot of w starts at offset[w]
  std::vector<size_t> pred_offset;  // CSR offsets mirrored from the graph
  std::vector<NodeId> order;

  explicit BrandesScratch(const Graph& g) {
    const size_t n = g.node_count();
    distance.assign(n, -1);
    sigma.assign(n, 0.0);
    dependency.assign(n, 0.0);
    pred_count.assign(n, 0);
    pred_offset.resize(n + 1);
    pred_offset[0] = 0;
    for (NodeId v = 0; v < n; ++v) {
      pred_offset[v + 1] = pred_offset[v] + g.Degree(v);
    }
    pred_data.resize(pred_offset[n]);
    order.reserve(n);
  }
};

// One Brandes single-source accumulation pass from `source`.
// `scale` multiplies the dependency contribution (used by sampling).
void BrandesPass(const Graph& g, NodeId source, double scale,
                 std::vector<double>& centrality, BrandesScratch& s) {
  // An isolated source reaches nothing and contributes no term to any
  // centrality sum — skipping it is bit-exact, not an approximation.
  if (g.Degree(source) == 0) return;
  const size_t n = g.node_count();
  s.distance.assign(n, -1);
  s.sigma.assign(n, 0.0);
  s.dependency.assign(n, 0.0);
  s.order.clear();

  s.distance[source] = 0;
  s.sigma[source] = 1.0;
  s.pred_count[source] = 0;
  // `order` doubles as the BFS queue: `qi` is the read cursor and the
  // visited nodes accumulate behind it in BFS order. Predecessor
  // counts are reset lazily on first visit, so a pass only touches the
  // nodes it actually reaches.
  s.order.push_back(source);
  for (size_t qi = 0; qi < s.order.size(); ++qi) {
    const NodeId v = s.order[qi];
    // sigma[v] is final once v is dequeued (all of v's shortest-path
    // predecessors sit on earlier BFS levels), so hoist the loads.
    const int32_t dv1 = s.distance[v] + 1;
    const double sigma_v = s.sigma[v];
    for (NodeId w : g.Neighbors(v)) {
      if (s.distance[w] < 0) {
        s.distance[w] = dv1;
        s.pred_count[w] = 0;
        s.order.push_back(w);
      }
      if (s.distance[w] == dv1) {
        s.sigma[w] += sigma_v;
        s.pred_data[s.pred_offset[w] + s.pred_count[w]++] = v;
      }
    }
  }
  // Back-propagate dependencies in reverse BFS order. One division
  // per node instead of one per predecessor edge:
  //   δ(v) += σ(v) · (1 + δ(w)) / σ(w)  for each predecessor v of w.
  for (auto it = s.order.rbegin(); it != s.order.rend(); ++it) {
    const NodeId w = *it;
    const double coeff = (1.0 + s.dependency[w]) / s.sigma[w];
    const size_t begin = s.pred_offset[w];
    const size_t end = begin + s.pred_count[w];
    for (size_t p = begin; p < end; ++p) {
      const NodeId v = s.pred_data[p];
      s.dependency[v] += s.sigma[v] * coeff;
    }
    if (w != source) {
      centrality[w] += scale * s.dependency[w];
    }
  }
}

// Upper bound on the chunk grid. Bounds the transient memory of the
// parallel reduction (kMaxChunks partial vectors of n doubles) while
// leaving enough chunks to keep a pool saturated.
constexpr size_t kMaxChunks = 32;

// Runs the Brandes passes of one chunk into `partial` (which must be
// zeroed, sized n), reusing `scratch`.
void RunChunk(const Graph& g, std::span<const NodeId> sources, double scale,
              const BrandesChunkGrid& grid, size_t chunk,
              std::vector<double>& partial, BrandesScratch& scratch) {
  const size_t begin = chunk * grid.per_chunk;
  const size_t end = std::min(sources.size(), begin + grid.per_chunk);
  for (size_t i = begin; i < end; ++i) {
    BrandesPass(g, sources[i], scale, partial, scratch);
  }
}

// Runs Brandes passes from every source in `sources` (in order within
// each chunk) and materialises the per-chunk partial sums. The chunk
// grid depends only on sources.size(), so serial and parallel
// execution perform the identical per-chunk floating-point additions —
// the determinism contract of the public overloads.
std::vector<std::vector<double>> RunBrandesChunks(
    const Graph& g, std::span<const NodeId> sources, double scale,
    ThreadPool* pool) {
  const size_t n = g.node_count();
  const BrandesChunkGrid grid = BrandesGridFor(sources.size());
  std::vector<std::vector<double>> partials(grid.chunk_count);
  if (n == 0 || sources.empty()) return partials;

  if (pool != nullptr && pool->size() > 1 && grid.chunk_count > 1) {
    pool->ParallelFor(grid.chunk_count, [&](size_t c) {
      partials[c].assign(n, 0.0);
      BrandesScratch scratch(g);
      RunChunk(g, sources, scale, grid, c, partials[c], scratch);
    });
  } else {
    // Serial: one scratch reused chunk by chunk; each chunk's partial
    // still starts from zero, so the floating-point grouping is
    // identical to the parallel branch.
    BrandesScratch scratch(g);
    for (size_t c = 0; c < grid.chunk_count; ++c) {
      partials[c].assign(n, 0.0);
      RunChunk(g, sources, scale, grid, c, partials[c], scratch);
    }
  }
  return partials;
}

// Reduces per-chunk partials in chunk order and halves (each
// undirected pair is counted twice, once per endpoint as source).
// Every public entry point — full, sampled, or incremental advance —
// funnels through this one reduction, which is what makes their
// outputs bit-comparable.
std::vector<double> FoldChunks(
    size_t n, const std::vector<std::vector<double>>& partials) {
  std::vector<double> centrality(n, 0.0);
  for (const std::vector<double>& partial : partials) {
    for (size_t v = 0; v < n; ++v) centrality[v] += partial[v];
  }
  for (double& c : centrality) c /= 2.0;
  return centrality;
}

std::vector<double> RunBrandes(const Graph& g,
                               std::span<const NodeId> sources, double scale,
                               ThreadPool* pool) {
  return FoldChunks(g.node_count(),
                    RunBrandesChunks(g, sources, scale, pool));
}

// Marks every node that can reach a node of `frontier` in `g`
// (multi-source BFS; undirected, so reachability is symmetric).
void MarkReachable(const Graph& g, const std::vector<NodeId>& frontier,
                   std::vector<char>& reached) {
  std::vector<NodeId> queue;
  queue.reserve(frontier.size());
  for (NodeId v : frontier) {
    if (!reached[v]) {
      reached[v] = 1;
      queue.push_back(v);
    }
  }
  for (size_t qi = 0; qi < queue.size(); ++qi) {
    for (NodeId w : g.Neighbors(queue[qi])) {
      if (!reached[w]) {
        reached[w] = 1;
        queue.push_back(w);
      }
    }
  }
}

}  // namespace

BrandesChunkGrid BrandesGridFor(size_t source_count) {
  if (source_count == 0) return {};
  // Floor of 4 sources per chunk keeps scratch construction amortised
  // on small graphs; the grid stays a pure function of source_count.
  BrandesChunkGrid grid;
  grid.chunk_count = std::min(kMaxChunks, (source_count + 3) / 4);
  grid.per_chunk = (source_count + grid.chunk_count - 1) / grid.chunk_count;
  return grid;
}

std::vector<double> BetweennessExact(const Graph& g) {
  return BetweennessExact(g, nullptr);
}

std::vector<double> BetweennessExact(const Graph& g, ThreadPool* pool) {
  std::vector<NodeId> sources(g.node_count());
  std::iota(sources.begin(), sources.end(), NodeId{0});
  return RunBrandes(g, sources, 1.0, pool);
}

BetweennessPartials BetweennessExactWithPartials(const Graph& g,
                                                 ThreadPool* pool) {
  std::vector<NodeId> sources(g.node_count());
  std::iota(sources.begin(), sources.end(), NodeId{0});
  BetweennessPartials out;
  out.chunks = RunBrandesChunks(g, sources, 1.0, pool);
  out.scores = FoldChunks(g.node_count(), out.chunks);
  return out;
}

BetweennessPartials BetweennessAdvance(const Graph& old_g,
                                       const BetweennessPartials& previous,
                                       const Graph& new_g,
                                       double churn_threshold,
                                       BetweennessAdvanceStats* stats,
                                       ThreadPool* pool) {
  BetweennessAdvanceStats local;
  BetweennessAdvanceStats& s = stats != nullptr ? *stats : local;
  s = {};
  const size_t n = new_g.node_count();
  const BrandesChunkGrid grid = BrandesGridFor(n);
  s.total_chunks = grid.chunk_count;

  const auto full = [&]() -> BetweennessPartials {
    s.incremental = false;
    s.recomputed_sources = n;
    s.recomputed_chunks = grid.chunk_count;
    return BetweennessExactWithPartials(new_g, pool);
  };
  // A node-count change means the underlying universe churned: node
  // indices no longer denote the same entities, so the cached partials
  // are not comparable. (The chunk-count check is defensive — it
  // follows from equal node counts.)
  if (old_g.node_count() != n || previous.chunks.size() != grid.chunk_count) {
    return full();
  }

  // Touched nodes: adjacency differs between the graphs. Comparing the
  // CSR rows directly (instead of mapping the commit's triple delta to
  // nodes) is exact by construction — any modelling change that leaves
  // the topology alone costs nothing, and none can slip through.
  std::vector<NodeId> touched;
  for (NodeId v = 0; v < n; ++v) {
    const std::span<const NodeId> a = old_g.Neighbors(v);
    const std::span<const NodeId> b = new_g.Neighbors(v);
    if (a.size() != b.size() || !std::equal(a.begin(), a.end(), b.begin())) {
      touched.push_back(v);
    }
  }
  s.touched_nodes = touched.size();
  if (touched.empty()) {
    // Identical topology: the cached state is the answer.
    s.incremental = true;
    return previous;
  }

  // The affected-source frontier: a single-source pass can only differ
  // if its source reaches a touched node in the old graph (its old
  // DAG saw a changed adjacency) or in the new one (its new DAG does).
  // Undirected reachability is symmetric, so one multi-source BFS from
  // the touched set per graph finds every such source.
  std::vector<char> affected(n, 0);
  MarkReachable(old_g, touched, affected);
  MarkReachable(new_g, touched, affected);
  size_t affected_count = 0;
  for (char a : affected) affected_count += a != 0;
  s.affected_sources = affected_count;
  if (static_cast<double>(affected_count) >
      churn_threshold * static_cast<double>(n)) {
    return full();
  }

  // Chunk granularity: a chunk re-runs when any of its sources is
  // affected; all other chunks reuse their cached partial sums, which
  // are bit-identical because every pass they contain explores only
  // untouched adjacency.
  std::vector<size_t> rerun;
  for (size_t c = 0; c < grid.chunk_count; ++c) {
    const size_t begin = c * grid.per_chunk;
    const size_t end = std::min(n, begin + grid.per_chunk);
    bool hit = false;
    for (size_t i = begin; i < end && !hit; ++i) hit = affected[i] != 0;
    if (hit) {
      rerun.push_back(c);
      s.recomputed_sources += end - begin;
    }
  }
  s.recomputed_chunks = rerun.size();
  s.incremental = true;

  std::vector<NodeId> sources(n);
  std::iota(sources.begin(), sources.end(), NodeId{0});
  BetweennessPartials out;
  out.chunks = previous.chunks;
  if (pool != nullptr && pool->size() > 1 && rerun.size() > 1) {
    pool->ParallelFor(rerun.size(), [&](size_t i) {
      const size_t c = rerun[i];
      out.chunks[c].assign(n, 0.0);
      BrandesScratch scratch(new_g);
      RunChunk(new_g, sources, 1.0, grid, c, out.chunks[c], scratch);
    });
  } else {
    BrandesScratch scratch(new_g);
    for (size_t c : rerun) {
      out.chunks[c].assign(n, 0.0);
      RunChunk(new_g, sources, 1.0, grid, c, out.chunks[c], scratch);
    }
  }
  out.scores = FoldChunks(n, out.chunks);
  return out;
}

std::vector<double> BetweennessSampled(const Graph& g, size_t pivots,
                                       Rng& rng) {
  return BetweennessSampled(g, pivots, rng, nullptr);
}

std::vector<double> BetweennessSampled(const Graph& g, size_t pivots,
                                       Rng& rng, ThreadPool* pool) {
  const size_t n = g.node_count();
  if (n == 0 || pivots == 0) return std::vector<double>(n, 0.0);
  if (pivots >= n) return BetweennessExact(g, pool);

  const std::vector<size_t> drawn = rng.SampleWithoutReplacement(n, pivots);
  std::vector<NodeId> sources;
  sources.reserve(drawn.size());
  for (size_t s : drawn) sources.push_back(static_cast<NodeId>(s));
  const double scale = static_cast<double>(n) / static_cast<double>(pivots);
  return RunBrandes(g, sources, scale, pool);
}

void NormalizeBetweennessInPlace(std::span<double> scores) {
  const size_t n = scores.size();
  if (n < 3) {
    for (double& s : scores) s = 0.0;
    return;
  }
  const double max_pairs =
      static_cast<double>(n - 1) * static_cast<double>(n - 2) / 2.0;
  for (double& s : scores) s /= max_pairs;
}

std::vector<double> NormalizeBetweenness(std::vector<double> scores) {
  NormalizeBetweennessInPlace(scores);
  return scores;
}

}  // namespace evorec::graph
