#include "graph/betweenness.h"

#include <algorithm>
#include <numeric>

namespace evorec::graph {

namespace {

// Per-pass scratch buffers, reused across the sources of one chunk.
// Predecessor lists live in one flat buffer laid out by the graph's
// CSR offsets (a node's predecessors are a subset of its neighbors, so
// its adjacency slot is always big enough) — no per-node vectors, so
// constructing a scratch is a handful of allocations and the inner
// loops never touch the heap.
struct BrandesScratch {
  std::vector<int32_t> distance;  // BFS level fits 32 bits (n < 2^31)
  std::vector<double> sigma;
  std::vector<double> dependency;
  std::vector<NodeId> pred_count;   // predecessors of w found so far
  std::vector<NodeId> pred_data;    // flat, slot of w starts at offset[w]
  std::vector<size_t> pred_offset;  // CSR offsets mirrored from the graph
  std::vector<NodeId> order;

  explicit BrandesScratch(const Graph& g) {
    const size_t n = g.node_count();
    distance.assign(n, -1);
    sigma.assign(n, 0.0);
    dependency.assign(n, 0.0);
    pred_count.assign(n, 0);
    pred_offset.resize(n + 1);
    pred_offset[0] = 0;
    for (NodeId v = 0; v < n; ++v) {
      pred_offset[v + 1] = pred_offset[v] + g.Degree(v);
    }
    pred_data.resize(pred_offset[n]);
    order.reserve(n);
  }
};

// One Brandes single-source accumulation pass from `source`.
// `scale` multiplies the dependency contribution (used by sampling).
void BrandesPass(const Graph& g, NodeId source, double scale,
                 std::vector<double>& centrality, BrandesScratch& s) {
  // An isolated source reaches nothing and contributes no term to any
  // centrality sum — skipping it is bit-exact, not an approximation.
  if (g.Degree(source) == 0) return;
  const size_t n = g.node_count();
  s.distance.assign(n, -1);
  s.sigma.assign(n, 0.0);
  s.dependency.assign(n, 0.0);
  s.order.clear();

  s.distance[source] = 0;
  s.sigma[source] = 1.0;
  s.pred_count[source] = 0;
  // `order` doubles as the BFS queue: `qi` is the read cursor and the
  // visited nodes accumulate behind it in BFS order. Predecessor
  // counts are reset lazily on first visit, so a pass only touches the
  // nodes it actually reaches.
  s.order.push_back(source);
  for (size_t qi = 0; qi < s.order.size(); ++qi) {
    const NodeId v = s.order[qi];
    // sigma[v] is final once v is dequeued (all of v's shortest-path
    // predecessors sit on earlier BFS levels), so hoist the loads.
    const int32_t dv1 = s.distance[v] + 1;
    const double sigma_v = s.sigma[v];
    for (NodeId w : g.Neighbors(v)) {
      if (s.distance[w] < 0) {
        s.distance[w] = dv1;
        s.pred_count[w] = 0;
        s.order.push_back(w);
      }
      if (s.distance[w] == dv1) {
        s.sigma[w] += sigma_v;
        s.pred_data[s.pred_offset[w] + s.pred_count[w]++] = v;
      }
    }
  }
  // Back-propagate dependencies in reverse BFS order. One division
  // per node instead of one per predecessor edge:
  //   δ(v) += σ(v) · (1 + δ(w)) / σ(w)  for each predecessor v of w.
  for (auto it = s.order.rbegin(); it != s.order.rend(); ++it) {
    const NodeId w = *it;
    const double coeff = (1.0 + s.dependency[w]) / s.sigma[w];
    const size_t begin = s.pred_offset[w];
    const size_t end = begin + s.pred_count[w];
    for (size_t p = begin; p < end; ++p) {
      const NodeId v = s.pred_data[p];
      s.dependency[v] += s.sigma[v] * coeff;
    }
    if (w != source) {
      centrality[w] += scale * s.dependency[w];
    }
  }
}

// Upper bound on the chunk grid. Bounds the transient memory of the
// parallel reduction (kMaxChunks partial vectors of n doubles) while
// leaving enough chunks to keep a pool saturated.
constexpr size_t kMaxChunks = 32;

// Runs Brandes passes from every source in `sources` (in order within
// each chunk) and reduces the per-chunk partial sums in chunk order.
// The chunk grid depends only on sources.size(), so serial and
// parallel execution perform the identical sequence of floating-point
// additions — the determinism contract of the public overloads.
std::vector<double> RunBrandes(const Graph& g,
                               std::span<const NodeId> sources, double scale,
                               ThreadPool* pool) {
  const size_t n = g.node_count();
  std::vector<double> centrality(n, 0.0);
  if (n == 0 || sources.empty()) return centrality;

  // Floor of 4 sources per chunk keeps scratch construction amortised
  // on small graphs; the grid stays a pure function of sources.size().
  const size_t chunk_count =
      std::min(kMaxChunks, (sources.size() + 3) / 4);
  const size_t per_chunk =
      (sources.size() + chunk_count - 1) / chunk_count;

  if (pool != nullptr && pool->size() > 1 && chunk_count > 1) {
    std::vector<std::vector<double>> partials(chunk_count);
    pool->ParallelFor(chunk_count, [&](size_t c) {
      partials[c].assign(n, 0.0);
      BrandesScratch scratch(g);
      const size_t begin = c * per_chunk;
      const size_t end = std::min(sources.size(), begin + per_chunk);
      for (size_t i = begin; i < end; ++i) {
        BrandesPass(g, sources[i], scale, partials[c], scratch);
      }
    });
    // Ordered reduction: chunk 0 first, chunk by chunk — the grouping
    // is the same as the serial branch below.
    for (size_t c = 0; c < chunk_count; ++c) {
      for (size_t v = 0; v < n; ++v) centrality[v] += partials[c][v];
    }
  } else {
    // Serial: one scratch and one partial, reused chunk by chunk. The
    // per-chunk partial still starts from zero and is folded in before
    // the next chunk, so the floating-point grouping is identical to
    // the parallel branch.
    BrandesScratch scratch(g);
    std::vector<double> partial;
    for (size_t c = 0; c < chunk_count; ++c) {
      partial.assign(n, 0.0);
      const size_t begin = c * per_chunk;
      const size_t end = std::min(sources.size(), begin + per_chunk);
      for (size_t i = begin; i < end; ++i) {
        BrandesPass(g, sources[i], scale, partial, scratch);
      }
      for (size_t v = 0; v < n; ++v) centrality[v] += partial[v];
    }
  }
  // Each undirected pair is counted twice (once per endpoint as
  // source).
  for (double& c : centrality) c /= 2.0;
  return centrality;
}

}  // namespace

std::vector<double> BetweennessExact(const Graph& g) {
  return BetweennessExact(g, nullptr);
}

std::vector<double> BetweennessExact(const Graph& g, ThreadPool* pool) {
  std::vector<NodeId> sources(g.node_count());
  std::iota(sources.begin(), sources.end(), NodeId{0});
  return RunBrandes(g, sources, 1.0, pool);
}

std::vector<double> BetweennessSampled(const Graph& g, size_t pivots,
                                       Rng& rng) {
  return BetweennessSampled(g, pivots, rng, nullptr);
}

std::vector<double> BetweennessSampled(const Graph& g, size_t pivots,
                                       Rng& rng, ThreadPool* pool) {
  const size_t n = g.node_count();
  if (n == 0 || pivots == 0) return std::vector<double>(n, 0.0);
  if (pivots >= n) return BetweennessExact(g, pool);

  const std::vector<size_t> drawn = rng.SampleWithoutReplacement(n, pivots);
  std::vector<NodeId> sources;
  sources.reserve(drawn.size());
  for (size_t s : drawn) sources.push_back(static_cast<NodeId>(s));
  const double scale = static_cast<double>(n) / static_cast<double>(pivots);
  return RunBrandes(g, sources, scale, pool);
}

void NormalizeBetweennessInPlace(std::span<double> scores) {
  const size_t n = scores.size();
  if (n < 3) {
    for (double& s : scores) s = 0.0;
    return;
  }
  const double max_pairs =
      static_cast<double>(n - 1) * static_cast<double>(n - 2) / 2.0;
  for (double& s : scores) s /= max_pairs;
}

std::vector<double> NormalizeBetweenness(std::vector<double> scores) {
  NormalizeBetweennessInPlace(scores);
  return scores;
}

}  // namespace evorec::graph
