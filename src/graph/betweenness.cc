#include "graph/betweenness.h"

namespace evorec::graph {

namespace {

// One Brandes single-source accumulation pass from `source`.
// `scale` multiplies the dependency contribution (used by sampling).
void BrandesPass(const Graph& g, NodeId source, double scale,
                 std::vector<double>& centrality,
                 std::vector<int64_t>& distance, std::vector<double>& sigma,
                 std::vector<double>& dependency,
                 std::vector<std::vector<NodeId>>& predecessors,
                 std::vector<NodeId>& order) {
  const size_t n = g.node_count();
  distance.assign(n, -1);
  sigma.assign(n, 0.0);
  dependency.assign(n, 0.0);
  order.clear();

  distance[source] = 0;
  sigma[source] = 1.0;
  predecessors[source].clear();
  // `order` doubles as the BFS queue: `qi` is the read cursor and the
  // visited nodes accumulate behind it in BFS order. Predecessor
  // lists are reset lazily on first visit, so a pass only touches the
  // nodes it actually reaches.
  order.push_back(source);
  for (size_t qi = 0; qi < order.size(); ++qi) {
    const NodeId v = order[qi];
    for (NodeId w : g.Neighbors(v)) {
      if (distance[w] < 0) {
        distance[w] = distance[v] + 1;
        predecessors[w].clear();
        order.push_back(w);
      }
      if (distance[w] == distance[v] + 1) {
        sigma[w] += sigma[v];
        predecessors[w].push_back(v);
      }
    }
  }
  // Back-propagate dependencies in reverse BFS order.
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const NodeId w = *it;
    for (NodeId v : predecessors[w]) {
      dependency[v] += sigma[v] / sigma[w] * (1.0 + dependency[w]);
    }
    if (w != source) {
      centrality[w] += scale * dependency[w];
    }
  }
}

}  // namespace

std::vector<double> BetweennessExact(const Graph& g) {
  const size_t n = g.node_count();
  std::vector<double> centrality(n, 0.0);
  std::vector<int64_t> distance;
  std::vector<double> sigma;
  std::vector<double> dependency;
  std::vector<std::vector<NodeId>> predecessors(n);
  std::vector<NodeId> order;
  order.reserve(n);
  for (NodeId s = 0; s < n; ++s) {
    BrandesPass(g, s, 1.0, centrality, distance, sigma, dependency,
                predecessors, order);
  }
  // Each undirected pair is counted twice (once per endpoint as
  // source).
  for (double& c : centrality) c /= 2.0;
  return centrality;
}

std::vector<double> BetweennessSampled(const Graph& g, size_t pivots,
                                       Rng& rng) {
  const size_t n = g.node_count();
  std::vector<double> centrality(n, 0.0);
  if (n == 0 || pivots == 0) return centrality;
  if (pivots >= n) return BetweennessExact(g);

  std::vector<size_t> sources = rng.SampleWithoutReplacement(n, pivots);
  const double scale = static_cast<double>(n) / static_cast<double>(pivots);
  std::vector<int64_t> distance;
  std::vector<double> sigma;
  std::vector<double> dependency;
  std::vector<std::vector<NodeId>> predecessors(n);
  std::vector<NodeId> order;
  order.reserve(n);
  for (size_t s : sources) {
    BrandesPass(g, static_cast<NodeId>(s), scale, centrality, distance, sigma,
                dependency, predecessors, order);
  }
  for (double& c : centrality) c /= 2.0;
  return centrality;
}

std::vector<double> NormalizeBetweenness(std::vector<double> scores) {
  const size_t n = scores.size();
  if (n < 3) {
    for (double& s : scores) s = 0.0;
    return scores;
  }
  const double max_pairs =
      static_cast<double>(n - 1) * static_cast<double>(n - 2) / 2.0;
  for (double& s : scores) s /= max_pairs;
  return scores;
}

}  // namespace evorec::graph
