#ifndef EVOREC_GRAPH_BETWEENNESS_H_
#define EVOREC_GRAPH_BETWEENNESS_H_

#include <vector>

#include "common/random.h"
#include "graph/graph.h"

namespace evorec::graph {

/// Exact betweenness centrality via Brandes' algorithm, O(V·E) for
/// unweighted graphs. Scores are for the undirected interpretation and
/// are not normalised (divide by (n-1)(n-2)/2 if needed). Paper §II.c:
/// "the Betweenness of a class counts the number of the shortest paths
/// from all nodes to all others that pass through that node".
std::vector<double> BetweennessExact(const Graph& g);

/// Pivot-sampled approximation of betweenness: runs Brandes'
/// single-source pass from `pivots` sources drawn uniformly and scales
/// by n / pivots. Unbiased in expectation; used by the E3 ablation to
/// trade accuracy for speed on large schema graphs.
std::vector<double> BetweennessSampled(const Graph& g, size_t pivots,
                                       Rng& rng);

/// Normalises raw betweenness scores to [0,1] by the maximum possible
/// pair count (n-1)(n-2)/2; returns zeros for n < 3.
std::vector<double> NormalizeBetweenness(std::vector<double> scores);

}  // namespace evorec::graph

#endif  // EVOREC_GRAPH_BETWEENNESS_H_
