#ifndef EVOREC_GRAPH_BETWEENNESS_H_
#define EVOREC_GRAPH_BETWEENNESS_H_

#include <span>
#include <vector>

#include "common/random.h"
#include "common/thread_pool.h"
#include "graph/graph.h"

namespace evorec::graph {

/// Exact betweenness centrality via Brandes' algorithm, O(V·E) for
/// unweighted graphs. Scores are for the undirected interpretation and
/// are not normalised (divide by (n-1)(n-2)/2 if needed). Paper §II.c:
/// "the Betweenness of a class counts the number of the shortest paths
/// from all nodes to all others that pass through that node".
///
/// When `pool` is non-null the single-source passes fan out over its
/// workers. Source indices are partitioned on a fixed chunk grid that
/// depends only on the source count — never on the pool size — and
/// per-chunk accumulators are reduced in chunk order, so the result is
/// bit-identical to the serial path for every pool size (floating-point
/// additions happen in the same grouping either way).
std::vector<double> BetweennessExact(const Graph& g);
std::vector<double> BetweennessExact(const Graph& g, ThreadPool* pool);

/// Pivot-sampled approximation of betweenness: runs Brandes'
/// single-source pass from `pivots` sources drawn uniformly and scales
/// by n / pivots. Unbiased in expectation; used by the E3 ablation to
/// trade accuracy for speed on large schema graphs. The `pool`
/// overload parallelises the pivot passes with the same deterministic
/// reduction as BetweennessExact (the sample itself is drawn serially
/// from `rng`, so results match the serial path bit for bit).
std::vector<double> BetweennessSampled(const Graph& g, size_t pivots,
                                       Rng& rng);
std::vector<double> BetweennessSampled(const Graph& g, size_t pivots,
                                       Rng& rng, ThreadPool* pool);

/// Normalises raw betweenness scores in place by the maximum possible
/// pair count (n-1)(n-2)/2; zeroes everything for n < 3.
void NormalizeBetweennessInPlace(std::span<double> scores);

/// Convenience value form of NormalizeBetweennessInPlace — pass
/// rvalues (std::move an lvalue) to avoid copying the score vector.
std::vector<double> NormalizeBetweenness(std::vector<double> scores);

}  // namespace evorec::graph

#endif  // EVOREC_GRAPH_BETWEENNESS_H_
