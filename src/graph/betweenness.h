#ifndef EVOREC_GRAPH_BETWEENNESS_H_
#define EVOREC_GRAPH_BETWEENNESS_H_

#include <span>
#include <vector>

#include "common/random.h"
#include "common/thread_pool.h"
#include "graph/graph.h"

namespace evorec::graph {

/// Exact betweenness centrality via Brandes' algorithm, O(V·E) for
/// unweighted graphs. Scores are for the undirected interpretation and
/// are not normalised (divide by (n-1)(n-2)/2 if needed). Paper §II.c:
/// "the Betweenness of a class counts the number of the shortest paths
/// from all nodes to all others that pass through that node".
///
/// When `pool` is non-null the single-source passes fan out over its
/// workers. Source indices are partitioned on a fixed chunk grid that
/// depends only on the source count — never on the pool size — and
/// per-chunk accumulators are reduced in chunk order, so the result is
/// bit-identical to the serial path for every pool size (floating-point
/// additions happen in the same grouping either way).
std::vector<double> BetweennessExact(const Graph& g);
std::vector<double> BetweennessExact(const Graph& g, ThreadPool* pool);

/// Pivot-sampled approximation of betweenness: runs Brandes'
/// single-source pass from `pivots` sources drawn uniformly and scales
/// by n / pivots. Unbiased in expectation; used by the E3 ablation to
/// trade accuracy for speed on large schema graphs. The `pool`
/// overload parallelises the pivot passes with the same deterministic
/// reduction as BetweennessExact (the sample itself is drawn serially
/// from `rng`, so results match the serial path bit for bit).
std::vector<double> BetweennessSampled(const Graph& g, size_t pivots,
                                       Rng& rng);
std::vector<double> BetweennessSampled(const Graph& g, size_t pivots,
                                       Rng& rng, ThreadPool* pool);

/// The deterministic source-chunk grid of the chunked Brandes
/// reduction: a pure function of the source count, never of the pool
/// size. Chunk c covers source indices [c·per_chunk, (c+1)·per_chunk).
struct BrandesChunkGrid {
  size_t chunk_count = 0;
  size_t per_chunk = 0;

  /// Chunk containing source index `i`.
  size_t ChunkOf(size_t i) const { return per_chunk == 0 ? 0 : i / per_chunk; }
};

/// The grid used for `source_count` sources.
BrandesChunkGrid BrandesGridFor(size_t source_count);

/// Resumable exact-betweenness state: the final scores plus the raw
/// per-chunk partial sums (before the final halving) of the
/// deterministic chunked reduction. Retaining the partials is what
/// lets BetweennessAdvance splice freshly recomputed chunks in
/// between untouched cached ones without changing the floating-point
/// grouping — the incremental result stays bit-identical to a
/// from-scratch run.
struct BetweennessPartials {
  /// Final scores; always equal to BetweennessExact of the same graph.
  std::vector<double> scores;
  /// Raw per-chunk sums, indexed by BrandesGridFor(node_count) chunk.
  std::vector<std::vector<double>> chunks;
};

/// BetweennessExact with the per-chunk partials captured for later
/// incremental advancement. Same determinism contract as the plain
/// overloads: bit-identical for every pool size.
BetweennessPartials BetweennessExactWithPartials(const Graph& g,
                                                 ThreadPool* pool = nullptr);

/// Per-call outcome of BetweennessAdvance — the counters the
/// incremental-refresh harness asserts work ∝ |delta| with.
struct BetweennessAdvanceStats {
  /// False when the call fell back to a full recompute (node-count
  /// change or churn threshold exceeded).
  bool incremental = false;
  /// Nodes whose adjacency list differs between the two graphs.
  size_t touched_nodes = 0;
  /// Sources whose single-source pass the change can affect: every
  /// node that reaches a touched node in either graph (the
  /// affected-source frontier, found by multi-source BFS from the
  /// touched set over both graphs).
  size_t affected_sources = 0;
  /// Sources actually re-run (chunk granularity: a chunk reruns when
  /// any of its sources is affected).
  size_t recomputed_sources = 0;
  size_t recomputed_chunks = 0;
  size_t total_chunks = 0;
};

/// Dynamic update: the exact betweenness of `new_g`, advanced from
/// `previous` (the partials of `old_g`) instead of recomputed from
/// scratch. A single-source pass can only change if its source
/// reaches — in either graph — a node whose adjacency the change
/// touched, so chunks containing no such source reuse their cached
/// partial sums verbatim; only affected chunks re-run. The final
/// chunk-order reduction is re-executed either way, so the result is
/// **bit-identical** to BetweennessExactWithPartials(new_g, pool) for
/// every pool size.
///
/// Falls back to a full recompute (stats->incremental == false) when
/// the node count changed (the class universe churned — node indices
/// no longer align) or when the affected-source fraction exceeds
/// `churn_threshold` (in [0,1]; past it, advancing would do more work
/// than starting over).
BetweennessPartials BetweennessAdvance(const Graph& old_g,
                                       const BetweennessPartials& previous,
                                       const Graph& new_g,
                                       double churn_threshold,
                                       BetweennessAdvanceStats* stats = nullptr,
                                       ThreadPool* pool = nullptr);

/// Normalises raw betweenness scores in place by the maximum possible
/// pair count (n-1)(n-2)/2; zeroes everything for n < 3.
void NormalizeBetweennessInPlace(std::span<double> scores);

/// Convenience value form of NormalizeBetweennessInPlace — pass
/// rvalues (std::move an lvalue) to avoid copying the score vector.
std::vector<double> NormalizeBetweenness(std::vector<double> scores);

}  // namespace evorec::graph

#endif  // EVOREC_GRAPH_BETWEENNESS_H_
