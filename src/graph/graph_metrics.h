#ifndef EVOREC_GRAPH_GRAPH_METRICS_H_
#define EVOREC_GRAPH_GRAPH_METRICS_H_

#include <vector>

#include "graph/graph.h"

namespace evorec::graph {

/// Connected-component label per node (labels are 0-based and dense).
std::vector<NodeId> ConnectedComponents(const Graph& g);

/// Number of connected components.
size_t ComponentCount(const Graph& g);

/// Local clustering coefficient per node: triangles(v) /
/// (deg(v) choose 2); 0 for degree < 2.
std::vector<double> LocalClusteringCoefficient(const Graph& g);

/// Degree of every node as doubles (handy for report plumbing).
std::vector<double> Degrees(const Graph& g);

}  // namespace evorec::graph

#endif  // EVOREC_GRAPH_GRAPH_METRICS_H_
