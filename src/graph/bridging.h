#ifndef EVOREC_GRAPH_BRIDGING_H_
#define EVOREC_GRAPH_BRIDGING_H_

#include <vector>

#include "graph/graph.h"

namespace evorec::graph {

/// Bridging coefficient of each node (Hwang et al.):
///   BC(v) = (1/deg(v)) / Σ_{i ∈ N(v)} 1/deg(i).
/// High values mark nodes whose neighbors are themselves
/// well-connected — nodes sitting *between* densely connected regions.
/// Isolated nodes get 0.
std::vector<double> BridgingCoefficient(const Graph& g);

/// Bridging centrality (paper §II.c): the product of betweenness and
/// the bridging coefficient. `betweenness` must be indexed like `g`'s
/// nodes (exact or sampled, normalised or raw — the product preserves
/// ranking either way).
std::vector<double> BridgingCentrality(const Graph& g,
                                       const std::vector<double>& betweenness);

}  // namespace evorec::graph

#endif  // EVOREC_GRAPH_BRIDGING_H_
