#include "graph/bridging.h"

namespace evorec::graph {

std::vector<double> BridgingCoefficient(const Graph& g) {
  const size_t n = g.node_count();
  std::vector<double> coeff(n, 0.0);
  for (NodeId v = 0; v < n; ++v) {
    const size_t deg = g.Degree(v);
    if (deg == 0) continue;
    double inv_neighbor_sum = 0.0;
    for (NodeId w : g.Neighbors(v)) {
      const size_t dw = g.Degree(w);
      if (dw > 0) inv_neighbor_sum += 1.0 / static_cast<double>(dw);
    }
    if (inv_neighbor_sum <= 0.0) continue;
    coeff[v] = (1.0 / static_cast<double>(deg)) / inv_neighbor_sum;
  }
  return coeff;
}

std::vector<double> BridgingCentrality(
    const Graph& g, const std::vector<double>& betweenness) {
  std::vector<double> coeff = BridgingCoefficient(g);
  const size_t n = std::min(coeff.size(), betweenness.size());
  std::vector<double> out(coeff.size(), 0.0);
  for (size_t v = 0; v < n; ++v) {
    out[v] = coeff[v] * betweenness[v];
  }
  return out;
}

}  // namespace evorec::graph
