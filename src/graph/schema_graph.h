#ifndef EVOREC_GRAPH_SCHEMA_GRAPH_H_
#define EVOREC_GRAPH_SCHEMA_GRAPH_H_

#include <unordered_map>
#include <vector>

#include "graph/graph.h"
#include "rdf/term.h"
#include "schema/schema_view.h"

namespace evorec::graph {

/// A schema graph: classes as nodes, undirected edges wherever two
/// classes are related by subsumption or by a property (declared
/// domain/range pair or observed instance connection). This is the
/// topology on which the paper's structural measures (§II.c) operate.
///
/// The node table is the caller-supplied class universe so that graphs
/// of two versions are index-aligned (node i means the same class in
/// both) — a requirement for computing centrality *shifts*.
class SchemaGraph {
 public:
  /// Builds the graph for `view` over the class universe `classes`
  /// (sorted TermIds; typically the union of both versions' classes).
  static SchemaGraph Build(const schema::SchemaView& view,
                           const std::vector<rdf::TermId>& classes);

  const Graph& graph() const { return graph_; }

  /// Node index of `cls`, or UINT32_MAX when not in the universe.
  NodeId NodeOf(rdf::TermId cls) const;

  /// TermId of node `node`.
  rdf::TermId ClassOf(NodeId node) const { return classes_[node]; }

  /// The class universe, sorted; index i ↔ node i.
  const std::vector<rdf::TermId>& classes() const { return classes_; }

 private:
  Graph graph_;
  std::vector<rdf::TermId> classes_;
  std::unordered_map<rdf::TermId, NodeId> node_of_;
};

}  // namespace evorec::graph

#endif  // EVOREC_GRAPH_SCHEMA_GRAPH_H_
