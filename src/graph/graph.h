#ifndef EVOREC_GRAPH_GRAPH_H_
#define EVOREC_GRAPH_GRAPH_H_

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

namespace evorec::graph {

/// Dense node index within a Graph.
using NodeId = uint32_t;

/// An immutable undirected graph in CSR (compressed sparse row)
/// layout. Parallel edges are collapsed; self-loops are dropped.
/// Built once from an edge list, then read by the centrality
/// algorithms.
class Graph {
 public:
  Graph() = default;

  /// Builds a graph with `node_count` nodes from an undirected edge
  /// list (pairs may appear in any order/duplication).
  static Graph FromEdges(size_t node_count,
                         std::vector<std::pair<NodeId, NodeId>> edges);

  /// Number of nodes.
  size_t node_count() const {
    return offsets_.empty() ? 0 : offsets_.size() - 1;
  }

  /// Number of undirected edges.
  size_t edge_count() const { return adjacency_.size() / 2; }

  /// Neighbors of `node`, sorted ascending.
  std::span<const NodeId> Neighbors(NodeId node) const {
    return {adjacency_.data() + offsets_[node],
            adjacency_.data() + offsets_[node + 1]};
  }

  /// Degree of `node`.
  size_t Degree(NodeId node) const {
    return offsets_[node + 1] - offsets_[node];
  }

 private:
  std::vector<size_t> offsets_;    // node_count + 1
  std::vector<NodeId> adjacency_;  // concatenated sorted neighbor lists
};

}  // namespace evorec::graph

#endif  // EVOREC_GRAPH_GRAPH_H_
