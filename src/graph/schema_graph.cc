#include "graph/schema_graph.h"

namespace evorec::graph {

SchemaGraph SchemaGraph::Build(const schema::SchemaView& view,
                               const std::vector<rdf::TermId>& classes) {
  SchemaGraph sg;
  sg.classes_ = classes;
  sg.node_of_.reserve(classes.size());
  for (size_t i = 0; i < classes.size(); ++i) {
    sg.node_of_.emplace(classes[i], static_cast<NodeId>(i));
  }

  std::vector<std::pair<NodeId, NodeId>> edges;
  for (rdf::TermId cls : classes) {
    const NodeId a = sg.NodeOf(cls);
    for (rdf::TermId parent : view.hierarchy().Parents(cls)) {
      const NodeId b = sg.NodeOf(parent);
      if (b != UINT32_MAX) edges.emplace_back(a, b);
    }
    for (rdf::TermId neighbor : view.PropertyNeighbors(cls)) {
      const NodeId b = sg.NodeOf(neighbor);
      if (b != UINT32_MAX) edges.emplace_back(a, b);
    }
  }
  sg.graph_ = Graph::FromEdges(classes.size(), std::move(edges));
  return sg;
}

NodeId SchemaGraph::NodeOf(rdf::TermId cls) const {
  auto it = node_of_.find(cls);
  return it == node_of_.end() ? UINT32_MAX : it->second;
}

}  // namespace evorec::graph
