#include "graph/graph_metrics.h"

#include <algorithm>
#include <deque>

namespace evorec::graph {

std::vector<NodeId> ConnectedComponents(const Graph& g) {
  const size_t n = g.node_count();
  std::vector<NodeId> label(n, UINT32_MAX);
  NodeId next_label = 0;
  for (NodeId start = 0; start < n; ++start) {
    if (label[start] != UINT32_MAX) continue;
    label[start] = next_label;
    std::deque<NodeId> queue{start};
    while (!queue.empty()) {
      const NodeId v = queue.front();
      queue.pop_front();
      for (NodeId w : g.Neighbors(v)) {
        if (label[w] == UINT32_MAX) {
          label[w] = next_label;
          queue.push_back(w);
        }
      }
    }
    ++next_label;
  }
  return label;
}

size_t ComponentCount(const Graph& g) {
  std::vector<NodeId> labels = ConnectedComponents(g);
  if (labels.empty()) return 0;
  return static_cast<size_t>(*std::max_element(labels.begin(), labels.end())) +
         1;
}

std::vector<double> LocalClusteringCoefficient(const Graph& g) {
  const size_t n = g.node_count();
  std::vector<double> coeff(n, 0.0);
  for (NodeId v = 0; v < n; ++v) {
    const auto neighbors = g.Neighbors(v);
    const size_t deg = neighbors.size();
    if (deg < 2) continue;
    size_t triangles = 0;
    for (size_t i = 0; i < deg; ++i) {
      const auto wi = g.Neighbors(neighbors[i]);
      for (size_t j = i + 1; j < deg; ++j) {
        // Neighbor lists are sorted: binary search.
        if (std::binary_search(wi.begin(), wi.end(), neighbors[j])) {
          ++triangles;
        }
      }
    }
    coeff[v] = 2.0 * static_cast<double>(triangles) /
               (static_cast<double>(deg) * static_cast<double>(deg - 1));
  }
  return coeff;
}

std::vector<double> Degrees(const Graph& g) {
  std::vector<double> out(g.node_count(), 0.0);
  for (NodeId v = 0; v < g.node_count(); ++v) {
    out[v] = static_cast<double>(g.Degree(v));
  }
  return out;
}

}  // namespace evorec::graph
