#include "graph/graph.h"

#include <algorithm>

namespace evorec::graph {

Graph Graph::FromEdges(size_t node_count,
                       std::vector<std::pair<NodeId, NodeId>> edges) {
  // Normalise: drop self-loops and out-of-range, symmetrise, dedupe.
  std::vector<std::pair<NodeId, NodeId>> directed;
  directed.reserve(edges.size() * 2);
  for (const auto& [a, b] : edges) {
    if (a == b) continue;
    if (a >= node_count || b >= node_count) continue;
    directed.emplace_back(a, b);
    directed.emplace_back(b, a);
  }
  std::sort(directed.begin(), directed.end());
  directed.erase(std::unique(directed.begin(), directed.end()),
                 directed.end());

  Graph g;
  g.offsets_.assign(node_count + 1, 0);
  for (const auto& [a, b] : directed) {
    (void)b;
    ++g.offsets_[a + 1];
  }
  for (size_t i = 1; i <= node_count; ++i) {
    g.offsets_[i] += g.offsets_[i - 1];
  }
  g.adjacency_.resize(directed.size());
  std::vector<size_t> cursor(g.offsets_.begin(), g.offsets_.end() - 1);
  for (const auto& [a, b] : directed) {
    g.adjacency_[cursor[a]++] = b;
  }
  return g;
}

}  // namespace evorec::graph
