#include "engine/evaluation_engine.h"

#include <algorithm>
#include <string>

#include "common/hash.h"

namespace evorec::engine {

size_t ContextKeyHash::operator()(const ContextKey& key) const {
  size_t seed = 0;
  HashCombine(seed, key.before_fingerprint);
  HashCombine(seed, key.after_fingerprint);
  HashCombine(seed, measures::ContextOptionsFingerprint(key.options));
  return seed;
}

SharedEvaluation::SharedEvaluation(measures::EvolutionContext ctx,
                                   const measures::MeasureRegistry& registry,
                                   ThreadPool* pool)
    : ctx_(std::move(ctx)), registry_(registry), pool_(pool) {}

Result<std::shared_ptr<const measures::MeasureReport>>
SharedEvaluation::Report(std::string_view name) const {
  if (auto cached = reports_.Lookup(name); cached != nullptr) return cached;
  auto measure = registry_.Create(name);
  if (!measure.ok()) return measure.status();
  return reports_.GetOrCompute(**measure, ctx_);
}

Result<std::vector<std::shared_ptr<const measures::MeasureReport>>>
SharedEvaluation::AllReports() const {
  return measures::EvaluateAll(registry_, ctx_, reports_, pool_);
}

size_t SharedEvaluation::StateKeyHash::operator()(const StateKey& key) const {
  size_t seed = 0;
  HashCombine(seed, static_cast<const void*>(key.registry));
  HashCombine(seed, key.top_k);
  HashCombine(seed, key.per_region);
  HashCombine(seed, key.max_regions);
  HashCombine(seed, static_cast<int>(key.diversity));
  return seed;
}

Result<std::shared_ptr<const recommend::SharedRunState>>
SharedEvaluation::SharedStateFor(const recommend::Recommender& rec) const {
  // The state's content depends on the measure set (the recommender's
  // registry), the candidate options, and the diversity kind (which
  // selects the distance matrix).
  const recommend::CandidateOptions& copts = rec.options().candidates;
  const StateKey key{&rec.registry(), copts.top_k, copts.per_region,
                     copts.max_regions, rec.options().diversity};

  std::promise<Result<SharedState>> promise;
  std::shared_future<Result<SharedState>> future;
  {
    std::unique_lock<std::mutex> lock(states_mu_);
    auto it = states_.find(key);
    if (it != states_.end()) {
      std::shared_future<Result<SharedState>> existing = it->second;
      lock.unlock();
      return existing.get();
    }
    future = promise.get_future().share();
    states_.emplace(key, future);
  }

  // The memoized reports cover the engine's registry; a recommender
  // drawing from a different registry computes its own pool directly.
  Result<recommend::SharedRunState> prepared =
      InternalError("shared state not prepared");
  if (&rec.registry() == &registry_) {
    auto reports = AllReports();
    if (!reports.ok()) {
      promise.set_value(reports.status());
      std::lock_guard<std::mutex> lock(states_mu_);
      states_.erase(key);
      return reports.status();
    }
    prepared =
        rec.PrepareShared(ctx_, registry_.List(), std::move(reports).value());
  } else {
    prepared = rec.PrepareShared(ctx_);
  }
  if (!prepared.ok()) {
    promise.set_value(prepared.status());
    std::lock_guard<std::mutex> lock(states_mu_);
    states_.erase(key);
    return prepared.status();
  }
  SharedState state = std::make_shared<const recommend::SharedRunState>(
      std::move(prepared).value());
  promise.set_value(state);
  return state;
}

EvaluationEngine::EvaluationEngine(const measures::MeasureRegistry& registry,
                                   EngineOptions options)
    : registry_(registry),
      options_(options),
      pool_(options.threads),
      artefacts_(options.artefact_cache_capacity, &pool_) {
  if (options_.context_cache_capacity == 0) {
    options_.context_cache_capacity = 1;
  }
}

Result<std::shared_ptr<const SharedEvaluation>> EvaluationEngine::Evaluate(
    const version::VersionedKnowledgeBase& vkb, version::VersionId v1,
    version::VersionId v2, measures::ContextOptions context_options) {
  auto before = vkb.Handle(v1);
  if (!before.ok()) return before.status();
  auto after = vkb.Handle(v2);
  if (!after.ok()) return after.status();
  ContextKey key{before->fingerprint, after->fingerprint, context_options};

  std::promise<Result<SharedEval>> promise;
  std::shared_future<Result<SharedEval>> future;
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (auto hit = lookup_.find(key); hit != lookup_.end()) {
      lru_.splice(lru_.begin(), lru_, hit->second);  // touch
      ++stats_.context_hits;
      return hit->second->second;
    }
    if (auto flying = inflight_.find(key); flying != inflight_.end()) {
      std::shared_future<Result<SharedEval>> existing = flying->second;
      ++stats_.context_coalesced;
      lock.unlock();
      return existing.get();
    }
    ++stats_.context_misses;
    future = promise.get_future().share();
    inflight_.emplace(key, future);
  }

  // Per-version artefacts come from the artefact cache (keyed by
  // snapshot fingerprint): a version shared with any previously built
  // pair contributes its snapshot copy, schema view, schema graph and
  // betweenness for free, and only the pair-level delta work runs
  // here. Cache misses snapshot under the vkb lock (the versioned
  // KB's lazy snapshot cache is not thread-safe); everything else runs
  // outside the engine lock, so other keys stay servable meanwhile and
  // same-key callers wait on `future`.
  auto ctx = [&]() -> Result<measures::EvolutionContext> {
    const auto materialize = [&](version::VersionId v) {
      return [this, &vkb,
              v]() -> Result<std::shared_ptr<const rdf::KnowledgeBase>> {
        std::lock_guard<std::mutex> lock(vkb_mu_);
        auto kb = vkb.Snapshot(v);
        if (!kb.ok()) return kb.status();
        return std::make_shared<const rdf::KnowledgeBase>(**kb);
      };
    };
    auto before_art = artefacts_.Get(before->fingerprint, context_options,
                                     materialize(v1));
    if (!before_art.ok()) return before_art.status();
    auto after_art = artefacts_.Get(after->fingerprint, context_options,
                                    materialize(v2));
    if (!after_art.ok()) return after_art.status();
    if (before_art->snapshot->shared_dictionary() !=
        after_art->snapshot->shared_dictionary()) {
      // Fingerprint-equal versions of *distinct* VersionedKnowledgeBase
      // instances (identical histories, e.g. a restored replica) carry
      // identical TermId mappings but distinct Dictionary objects, so a
      // cached artefact from one instance cannot pair with a freshly
      // materialised one from the other. Rebuild both sides from the
      // caller's vkb — correct, just uncached — rather than failing
      // the request.
      auto rebuild =
          [&](version::VersionId v) -> Result<measures::VersionArtefacts> {
        auto snapshot = materialize(v)();
        if (!snapshot.ok()) return snapshot.status();
        return measures::MakeVersionArtefacts(std::move(*snapshot),
                                              context_options, &pool_);
      };
      before_art = rebuild(v1);
      if (!before_art.ok()) return before_art.status();
      after_art = rebuild(v2);
      if (!after_art.ok()) return after_art.status();
    }
    return measures::EvolutionContext::Build(std::move(*before_art),
                                             std::move(*after_art),
                                             context_options);
  }();
  if (!ctx.ok()) {
    promise.set_value(ctx.status());
    std::lock_guard<std::mutex> lock(mu_);
    inflight_.erase(key);
    return ctx.status();
  }
  SharedEval evaluation = std::make_shared<const SharedEvaluation>(
      std::move(ctx).value(), registry_, &pool_);
  promise.set_value(evaluation);
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.contexts_built;
    inflight_.erase(key);
    lru_.emplace_front(key, evaluation);
    lookup_[key] = lru_.begin();
    while (lru_.size() > options_.context_cache_capacity) {
      lookup_.erase(lru_.back().first);
      lru_.pop_back();
      ++stats_.context_evictions;
    }
  }
  return evaluation;
}

Result<measures::EvolutionTimeline> EvaluationEngine::Timeline(
    const version::VersionedKnowledgeBase& vkb, std::string_view measure,
    version::VersionId first, version::VersionId last,
    measures::ContextOptions context_options) {
  if (vkb.version_count() < 2) {
    return FailedPreconditionError("timeline needs at least two versions");
  }
  const version::VersionId end =
      std::min<version::VersionId>(last, vkb.head());
  if (first >= end) {
    return InvalidArgumentError("empty version range for timeline");
  }
  std::vector<measures::MeasureReport> reports;
  reports.reserve(end - first);
  for (version::VersionId v = first; v < end; ++v) {
    auto evaluation = Evaluate(vkb, v, v + 1, context_options);
    if (!evaluation.ok()) return evaluation.status();
    auto report = (*evaluation)->Report(measure);
    if (!report.ok()) return report.status();
    reports.push_back(**report);
  }
  return measures::EvolutionTimeline::FromReports(std::move(reports));
}

void EvaluationEngine::Clear() {
  artefacts_.Clear();
  std::lock_guard<std::mutex> lock(mu_);
  lru_.clear();
  lookup_.clear();
}

EngineStats EvaluationEngine::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

size_t EvaluationEngine::cached_contexts() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lru_.size();
}

}  // namespace evorec::engine
