#include "engine/evaluation_engine.h"

#include <algorithm>
#include <string>

#include "common/hash.h"

namespace evorec::engine {

size_t ContextKeyHash::operator()(const ContextKey& key) const {
  size_t seed = 0;
  HashCombine(seed, key.before_fingerprint);
  HashCombine(seed, key.after_fingerprint);
  HashCombine(seed, measures::ContextOptionsFingerprint(key.options));
  return seed;
}

SharedEvaluation::SharedEvaluation(measures::EvolutionContext ctx,
                                   const measures::MeasureRegistry& registry,
                                   ThreadPool* pool)
    : ctx_(std::move(ctx)), registry_(registry), pool_(pool) {}

Result<std::shared_ptr<const measures::MeasureReport>>
SharedEvaluation::Report(std::string_view name) const {
  if (auto cached = reports_.Lookup(name); cached != nullptr) return cached;
  auto measure = registry_.Create(name);
  if (!measure.ok()) return measure.status();
  return reports_.GetOrCompute(**measure, ctx_);
}

Result<std::vector<std::shared_ptr<const measures::MeasureReport>>>
SharedEvaluation::AllReports() const {
  return measures::EvaluateAll(registry_, ctx_, reports_, pool_);
}

size_t SharedEvaluation::StateKeyHash::operator()(const StateKey& key) const {
  size_t seed = 0;
  HashCombine(seed, static_cast<const void*>(key.registry));
  HashCombine(seed, key.top_k);
  HashCombine(seed, key.per_region);
  HashCombine(seed, key.max_regions);
  HashCombine(seed, static_cast<int>(key.diversity));
  return seed;
}

Result<std::shared_ptr<const recommend::SharedRunState>>
SharedEvaluation::SharedStateFor(const recommend::Recommender& rec) const {
  // The state's content depends on the measure set (the recommender's
  // registry), the candidate options, and the diversity kind (which
  // selects the distance matrix).
  const recommend::CandidateOptions& copts = rec.options().candidates;
  const StateKey key{&rec.registry(), copts.top_k, copts.per_region,
                     copts.max_regions, rec.options().diversity};

  std::promise<Result<SharedState>> promise;
  std::shared_future<Result<SharedState>> future;
  {
    std::unique_lock<std::mutex> lock(states_mu_);
    auto it = states_.find(key);
    if (it != states_.end()) {
      std::shared_future<Result<SharedState>> existing = it->second;
      lock.unlock();
      return existing.get();
    }
    future = promise.get_future().share();
    states_.emplace(key, future);
  }

  // The memoized reports cover the engine's registry; a recommender
  // drawing from a different registry computes its own pool directly.
  Result<recommend::SharedRunState> prepared =
      InternalError("shared state not prepared");
  if (&rec.registry() == &registry_) {
    auto reports = AllReports();
    if (!reports.ok()) {
      promise.set_value(reports.status());
      std::lock_guard<std::mutex> lock(states_mu_);
      states_.erase(key);
      return reports.status();
    }
    prepared =
        rec.PrepareShared(ctx_, registry_.List(), std::move(reports).value());
  } else {
    prepared = rec.PrepareShared(ctx_);
  }
  if (!prepared.ok()) {
    promise.set_value(prepared.status());
    std::lock_guard<std::mutex> lock(states_mu_);
    states_.erase(key);
    return prepared.status();
  }
  SharedState state = std::make_shared<const recommend::SharedRunState>(
      std::move(prepared).value());
  promise.set_value(state);
  return state;
}

EvaluationEngine::EvaluationEngine(const measures::MeasureRegistry& registry,
                                   EngineOptions options)
    : registry_(registry),
      options_(options),
      pool_(options.threads),
      artefacts_(options.artefact_cache_capacity, &pool_) {
  if (options_.context_cache_capacity == 0) {
    options_.context_cache_capacity = 1;
  }
}

std::unique_lock<std::mutex> EvaluationEngine::LockIfExternal(
    const version::KbView& view) {
  if (view.InternallySynchronized()) return std::unique_lock<std::mutex>();
  return std::unique_lock<std::mutex>(vkb_mu_);
}

Result<std::shared_ptr<const SharedEvaluation>> EvaluationEngine::Evaluate(
    const version::VersionedKnowledgeBase& vkb, version::VersionId v1,
    version::VersionId v2, measures::ContextOptions context_options) {
  version::SingleKbView view(vkb);
  return Evaluate(view, v1, v2, context_options);
}

Result<std::shared_ptr<const SharedEvaluation>> EvaluationEngine::Evaluate(
    const version::KbView& view, version::VersionId v1, version::VersionId v2,
    measures::ContextOptions context_options) {
  Result<version::SnapshotHandle> before = InternalError("unresolved");
  Result<version::SnapshotHandle> after = InternalError("unresolved");
  {
    // Handles read the view's version vectors, which a concurrent
    // CommitAndRefresh appends to — same lock as every other view
    // touch (a no-op for internally synchronised views).
    auto lock = LockIfExternal(view);
    before = view.Handle(v1);
    after = view.Handle(v2);
  }
  if (!before.ok()) return before.status();
  if (!after.ok()) return after.status();
  ContextKey key{before->fingerprint, after->fingerprint, context_options};

  // Per-version artefacts come from the artefact cache (keyed by
  // snapshot fingerprint): a version shared with any previously built
  // pair contributes its snapshot copy, schema view, schema graph and
  // betweenness for free, and only the pair-level delta work runs
  // here. Cache misses snapshot under the vkb lock (the versioned
  // KB's lazy snapshot cache is not thread-safe); everything else runs
  // outside the engine lock, so other keys stay servable meanwhile and
  // same-key callers wait on the in-flight future.
  const auto build = [&]() -> Result<measures::EvolutionContext> {
    const auto materialize = [&](version::VersionId v) {
      return [this, &view,
              v]() -> Result<std::shared_ptr<const rdf::KnowledgeBase>> {
        auto lock = LockIfExternal(view);
        return view.SharedSnapshot(v);
      };
    };
    auto before_art = artefacts_.Get(before->fingerprint, context_options,
                                     materialize(v1));
    if (!before_art.ok()) return before_art.status();
    auto after_art = artefacts_.Get(after->fingerprint, context_options,
                                    materialize(v2));
    if (!after_art.ok()) return after_art.status();
    if (before_art->snapshot->shared_dictionary() !=
        after_art->snapshot->shared_dictionary()) {
      // Fingerprint-equal versions of *distinct* VersionedKnowledgeBase
      // instances (identical histories, e.g. a restored replica) carry
      // identical TermId mappings but distinct Dictionary objects, so a
      // cached artefact from one instance cannot pair with a freshly
      // materialised one from the other. Rebuild both sides from the
      // caller's vkb — correct, just uncached — rather than failing
      // the request.
      auto rebuild = [&](version::VersionId v, uint64_t fingerprint)
          -> Result<measures::VersionArtefacts> {
        auto snapshot = materialize(v)();
        if (!snapshot.ok()) return snapshot.status();
        return measures::MakeVersionArtefacts(std::move(*snapshot),
                                              context_options, &pool_,
                                              /*sampling_salt=*/fingerprint);
      };
      before_art = rebuild(v1, before->fingerprint);
      if (!before_art.ok()) return before_art.status();
      after_art = rebuild(v2, after->fingerprint);
      if (!after_art.ok()) return after_art.status();
    }
    return measures::EvolutionContext::Build(std::move(*before_art),
                                             std::move(*after_art),
                                             context_options);
  };
  return GetOrBuild(key, build, /*refreshed=*/false);
}

Result<EvaluationEngine::SharedEval> EvaluationEngine::GetOrBuild(
    const ContextKey& key,
    const std::function<Result<measures::EvolutionContext>()>& build_context,
    bool refreshed) {
  std::promise<Result<SharedEval>> promise;
  std::shared_future<Result<SharedEval>> future;
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (auto hit = lookup_.find(key); hit != lookup_.end()) {
      lru_.splice(lru_.begin(), lru_, hit->second);  // touch
      ++stats_.context_hits;
      return hit->second->second;
    }
    if (auto flying = inflight_.find(key); flying != inflight_.end()) {
      std::shared_future<Result<SharedEval>> existing = flying->second;
      ++stats_.context_coalesced;
      lock.unlock();
      return existing.get();
    }
    ++stats_.context_misses;
    future = promise.get_future().share();
    inflight_.emplace(key, future);
  }

  Result<measures::EvolutionContext> ctx = build_context();
  if (!ctx.ok()) {
    promise.set_value(ctx.status());
    std::lock_guard<std::mutex> lock(mu_);
    inflight_.erase(key);
    return ctx.status();
  }
  SharedEval evaluation = std::make_shared<const SharedEvaluation>(
      std::move(ctx).value(), registry_, &pool_);
  promise.set_value(evaluation);
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.contexts_built;
    if (refreshed) ++stats_.contexts_refreshed;
    inflight_.erase(key);
    lru_.emplace_front(key, evaluation);
    lookup_[key] = lru_.begin();
    while (lru_.size() > options_.context_cache_capacity) {
      lookup_.erase(lru_.back().first);
      lru_.pop_back();
      ++stats_.context_evictions;
    }
  }
  return evaluation;
}

EvaluationEngine::SharedEval EvaluationEngine::Peek(
    const ContextKey& key) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto hit = lookup_.find(key);
  return hit != lookup_.end() ? hit->second->second : nullptr;
}

Result<EvaluationEngine::RefreshResult> EvaluationEngine::Refresh(
    const version::VersionedKnowledgeBase& vkb,
    measures::ContextOptions context_options) {
  version::SingleKbView view(vkb);
  return Refresh(view, context_options);
}

Result<EvaluationEngine::RefreshResult> EvaluationEngine::Refresh(
    const version::KbView& view, measures::ContextOptions context_options) {
  version::VersionId head = 0;
  Result<version::SnapshotHandle> prev = InternalError("unresolved");
  Result<version::SnapshotHandle> curr = InternalError("unresolved");
  uint64_t prev_prev_fingerprint = 0;
  bool have_prev_prev = false;
  version::ChangeSet changes;
  {
    auto lock = LockIfExternal(view);
    if (view.version_count() < 2) {
      return FailedPreconditionError(
          "refresh needs at least one committed version");
    }
    head = view.head();
    prev = view.Handle(head - 1);
    curr = view.Handle(head);
    if (head >= 2) {
      auto pp = view.Handle(head - 2);
      if (pp.ok()) {
        prev_prev_fingerprint = pp->fingerprint;
        have_prev_prev = true;
      }
    }
    auto cs = view.Changes(head);
    if (!cs.ok()) return cs.status();
    changes = std::move(cs).value();
  }
  if (!prev.ok()) return prev.status();
  if (!curr.ok()) return curr.status();
  const ContextKey key{prev->fingerprint, curr->fingerprint, context_options};

  const auto build = [&]() -> Result<measures::EvolutionContext> {
    const auto materialize = [&](version::VersionId v) {
      return [this, &view,
              v]() -> Result<std::shared_ptr<const rdf::KnowledgeBase>> {
        auto lock = LockIfExternal(view);
        return view.SharedSnapshot(v);
      };
    };
    auto prev_art = artefacts_.Get(prev->fingerprint, context_options,
                                   materialize(head - 1));
    if (!prev_art.ok()) return prev_art.status();
    auto head_art = artefacts_.Refresh(
        prev->fingerprint, curr->fingerprint, context_options,
        materialize(head), options_.refresh_churn_threshold);
    if (!head_art.ok()) return head_art.status();
    if (prev_art->snapshot->shared_dictionary() !=
        head_art->snapshot->shared_dictionary()) {
      // Same replica situation as in Evaluate: cached artefacts from a
      // fingerprint-twin vkb cannot pair with this one's. Rebuild both
      // sides cold — nothing cached from the twin can be advanced.
      auto rebuild = [&](version::VersionId v, uint64_t fingerprint)
          -> Result<measures::VersionArtefacts> {
        auto snapshot = materialize(v)();
        if (!snapshot.ok()) return snapshot.status();
        return measures::MakeVersionArtefacts(std::move(*snapshot),
                                              context_options, &pool_,
                                              /*sampling_salt=*/fingerprint);
      };
      prev_art = rebuild(head - 1, prev->fingerprint);
      if (!prev_art.ok()) return prev_art.status();
      head_art = rebuild(head, curr->fingerprint);
      if (!head_art.ok()) return head_art.status();
    }
    // O(|δ|): the pair delta comes from the commit's archived change
    // set via membership probes, not an O(T) store diff.
    delta::LowLevelDelta delta =
        delta::DeltaFromCandidates(*prev_art->snapshot, changes);
    // Advance the delta index from the preceding pair's when that
    // evaluation is still warm (keep it alive across the build).
    SharedEval preceding;
    if (have_prev_prev) {
      preceding = Peek(
          ContextKey{prev_prev_fingerprint, prev->fingerprint, context_options});
    }
    return measures::EvolutionContext::Build(
        std::move(*prev_art), std::move(*head_art), std::move(delta),
        preceding != nullptr ? &preceding->context().delta_index() : nullptr,
        context_options);
  };
  auto evaluation = GetOrBuild(key, build, /*refreshed=*/true);
  if (!evaluation.ok()) return evaluation.status();
  RefreshResult result{head, std::move(evaluation).value()};
  {
    // Pin the refresh as the last-good serving state: if a later
    // commit fails, the service keeps answering from this evaluation
    // (flagged degraded) until a commit succeeds again.
    std::lock_guard<std::mutex> lock(mu_);
    last_good_ = result;
  }
  return result;
}

std::optional<EvaluationEngine::RefreshResult>
EvaluationEngine::LastGoodRefresh() const {
  std::lock_guard<std::mutex> lock(mu_);
  return last_good_;
}

Result<EvaluationEngine::RefreshResult> EvaluationEngine::CommitAndRefresh(
    version::VersionedKnowledgeBase& vkb, version::ChangeSet changes,
    std::string author, std::string message, uint64_t timestamp,
    measures::ContextOptions context_options) {
  version::SingleKbView view(vkb);
  return CommitAndRefresh(view, std::move(changes), std::move(author),
                          std::move(message), timestamp, context_options);
}

Result<EvaluationEngine::RefreshResult> EvaluationEngine::CommitAndRefresh(
    version::KbView& view, version::ChangeSet changes, std::string author,
    std::string message, uint64_t timestamp,
    measures::ContextOptions context_options) {
  {
    auto lock = LockIfExternal(view);
    auto committed = view.Commit(std::move(changes), std::move(author),
                                 std::move(message), timestamp);
    if (!committed.ok()) return committed.status();
  }
  return Refresh(view, context_options);
}

Result<measures::EvolutionTimeline> EvaluationEngine::Timeline(
    const version::VersionedKnowledgeBase& vkb, std::string_view measure,
    version::VersionId first, version::VersionId last,
    measures::ContextOptions context_options) {
  version::SingleKbView view(vkb);
  return Timeline(view, measure, first, last, context_options);
}

Result<measures::EvolutionTimeline> EvaluationEngine::Timeline(
    const version::KbView& view, std::string_view measure,
    version::VersionId first, version::VersionId last,
    measures::ContextOptions context_options) {
  version::VersionId end = 0;
  {
    auto lock = LockIfExternal(view);
    if (view.version_count() < 2) {
      return FailedPreconditionError("timeline needs at least two versions");
    }
    end = std::min<version::VersionId>(last, view.head());
  }
  if (first >= end) {
    return InvalidArgumentError("empty version range for timeline");
  }
  std::vector<measures::MeasureReport> reports;
  reports.reserve(end - first);
  for (version::VersionId v = first; v < end; ++v) {
    auto evaluation = Evaluate(view, v, v + 1, context_options);
    if (!evaluation.ok()) return evaluation.status();
    auto report = (*evaluation)->Report(measure);
    if (!report.ok()) return report.status();
    reports.push_back(**report);
  }
  return measures::EvolutionTimeline::FromReports(std::move(reports));
}

void EvaluationEngine::Clear() {
  artefacts_.Clear();
  std::lock_guard<std::mutex> lock(mu_);
  lru_.clear();
  lookup_.clear();
}

EngineStats EvaluationEngine::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

size_t EvaluationEngine::cached_contexts() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lru_.size();
}

}  // namespace evorec::engine
