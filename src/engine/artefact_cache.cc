#include "engine/artefact_cache.h"

#include <chrono>
#include <utility>

namespace evorec::engine {

ArtefactCache::ArtefactCache(size_t capacity, ThreadPool* pool)
    : capacity_(capacity == 0 ? 1 : capacity),
      pool_(pool),
      betweenness_runs_(std::make_shared<std::atomic<uint64_t>>(0)) {}

Result<measures::VersionArtefacts> ArtefactCache::Get(
    uint64_t fingerprint, const measures::ContextOptions& options,
    const Materializer& materialize) {
  Result<SharedBase> base = GetBase(fingerprint, materialize);
  if (!base.ok()) return base.status();

  measures::VersionArtefacts artefacts;
  artefacts.snapshot = (*base)->snapshot;
  artefacts.view = (*base)->view;
  artefacts.graph = (*base)->graph;
  artefacts.betweenness = CellFor(fingerprint, *base, options);
  return artefacts;
}

Result<ArtefactCache::SharedBase> ArtefactCache::GetBase(
    uint64_t fingerprint, const Materializer& materialize) {
  std::promise<Result<SharedBase>> promise;
  std::shared_future<Result<SharedBase>> future;
  bool creator = false;
  uint64_t my_generation = 0;
  {
    std::unique_lock<std::mutex> lock(mu_);
    auto it = entries_.find(fingerprint);
    if (it != entries_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second.lru_pos);  // touch
      future = it->second.base;
      const bool ready =
          future.wait_for(std::chrono::seconds(0)) ==
          std::future_status::ready;
      ready ? ++stats_.hits : ++stats_.coalesced;
    } else {
      ++stats_.misses;
      creator = true;
      my_generation = ++generation_;
      future = promise.get_future().share();
      lru_.push_front(fingerprint);
      Entry entry;
      entry.base = future;
      entry.generation = my_generation;
      entry.lru_pos = lru_.begin();
      entries_.emplace(fingerprint, std::move(entry));
      while (lru_.size() > capacity_) {
        // Never evict the entry we just inserted (it is at the front;
        // capacity_ >= 1 guarantees the back is a different key).
        entries_.erase(lru_.back());
        lru_.pop_back();
        ++stats_.evictions;
      }
    }
  }

  if (creator) {
    // Build outside the lock: other fingerprints stay servable and
    // same-key callers wait on the future.
    auto built = [&]() -> Result<SharedBase> {
      auto snapshot = materialize();
      if (!snapshot.ok()) return snapshot.status();
      if (*snapshot == nullptr) {
        return InvalidArgumentError(
            "artefact materializer returned a null snapshot");
      }
      auto base = std::make_shared<BaseArtefacts>();
      base->snapshot = std::move(*snapshot);
      base->view = std::make_shared<const schema::SchemaView>(
          schema::SchemaView::Build(*base->snapshot));
      base->graph = std::make_shared<const graph::SchemaGraph>(
          graph::SchemaGraph::Build(*base->view, base->view->classes()));
      return SharedBase(std::move(base));
    }();
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.snapshot_loads;
      if (built.ok()) {
        ++stats_.view_builds;
        ++stats_.graph_builds;
      } else {
        // Failed builds are not cached: drop our entry (generation
        // check: it may have been evicted and re-created meanwhile) so
        // a later request retries.
        auto it = entries_.find(fingerprint);
        if (it != entries_.end() && it->second.generation == my_generation) {
          lru_.erase(it->second.lru_pos);
          entries_.erase(it);
        }
      }
    }
    promise.set_value(built);
    if (!built.ok()) return built.status();
  }

  return future.get();
}

Result<measures::VersionArtefacts> ArtefactCache::Refresh(
    uint64_t from_fingerprint, uint64_t to_fingerprint,
    const measures::ContextOptions& options, const Materializer& materialize_to,
    double churn_threshold, graph::BetweennessAdvanceStats* advance_stats) {
  // Capture the predecessor's state first (it may be evicted by the
  // successor's insertion below — capacity 1 still advances).
  SharedBase old_base;
  std::shared_ptr<const measures::LazyBetweenness> old_cell;
  const uint64_t options_fp = measures::ContextOptionsFingerprint(options);
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++incremental_.refreshes;
    auto it = entries_.find(from_fingerprint);
    if (it != entries_.end() &&
        it->second.base.wait_for(std::chrono::seconds(0)) ==
            std::future_status::ready) {
      Result<SharedBase> ready = it->second.base.get();
      if (ready.ok()) old_base = *ready;
      auto cell = it->second.betweenness.find(options_fp);
      if (cell != it->second.betweenness.end()) old_cell = cell->second;
    }
  }

  Result<SharedBase> base = GetBase(to_fingerprint, materialize_to);
  if (!base.ok()) return base.status();

  measures::VersionArtefacts artefacts;
  artefacts.snapshot = (*base)->snapshot;
  artefacts.view = (*base)->view;
  artefacts.graph = (*base)->graph;

  // Reuse a cell someone already installed for this (version, options)
  // — it is either the advance below from a racing refresh, or an
  // ordinary lazy cell; both are observationally identical.
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(to_fingerprint);
    if (it != entries_.end()) {
      auto cell = it->second.betweenness.find(options_fp);
      if (cell != it->second.betweenness.end()) {
        artefacts.betweenness = cell->second;
        return artefacts;
      }
    }
  }

  const graph::BetweennessPartials* previous =
      old_cell != nullptr ? old_cell->Partials() : nullptr;
  if (old_base == nullptr || previous == nullptr) {
    // Nothing to advance from (predecessor cold, evicted, or sampled
    // mode): the successor starts lazy, exactly like a Get.
    std::lock_guard<std::mutex> lock(mu_);
    ++incremental_.stayed_lazy;
  } else {
    graph::BetweennessAdvanceStats stats;
    graph::BetweennessPartials advanced = graph::BetweennessAdvance(
        old_base->graph->graph(), *previous, (*base)->graph->graph(),
        churn_threshold, &stats, pool_);
    if (advance_stats != nullptr) *advance_stats = stats;
    auto cell = std::make_shared<const measures::LazyBetweenness>(
        (*base)->graph, options, std::move(advanced));
    {
      std::lock_guard<std::mutex> lock(mu_);
      stats.incremental ? ++incremental_.advanced
                        : ++incremental_.full_recomputes;
      incremental_.touched_nodes += stats.touched_nodes;
      incremental_.affected_sources += stats.affected_sources;
      incremental_.recomputed_sources += stats.recomputed_sources;
      incremental_.total_sources += (*base)->graph->graph().node_count();
      auto it = entries_.find(to_fingerprint);
      if (it != entries_.end()) {
        auto existing = it->second.betweenness.find(options_fp);
        if (existing == it->second.betweenness.end()) {
          it->second.betweenness.emplace(options_fp, cell);
        } else {
          cell = existing->second;  // a racer won; results are identical
        }
      }
    }
    if (!stats.incremental) {
      // The fallback inside the advance IS a full Brandes run — keep
      // the headline counter honest.
      betweenness_runs_->fetch_add(1, std::memory_order_relaxed);
    }
    artefacts.betweenness = std::move(cell);
    return artefacts;
  }

  artefacts.betweenness = CellFor(to_fingerprint, *base, options);
  return artefacts;
}

std::shared_ptr<const measures::LazyBetweenness> ArtefactCache::CellFor(
    uint64_t fingerprint, const SharedBase& base,
    const measures::ContextOptions& options) {
  const uint64_t options_fp = measures::ContextOptionsFingerprint(options);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(fingerprint);
  if (it != entries_.end()) {
    auto cell = it->second.betweenness.find(options_fp);
    if (cell != it->second.betweenness.end()) return cell->second;
  }
  auto counter = betweenness_runs_;
  // The version fingerprint salts sampled-mode pivot selection: the
  // sample becomes a stable property of the version's content, so
  // sampled results agree across engine instances, restarts, and
  // incremental vs cold rebuilds.
  auto cell = std::make_shared<const measures::LazyBetweenness>(
      base->graph, options, pool_,
      [counter] { counter->fetch_add(1, std::memory_order_relaxed); },
      /*sampling_salt=*/fingerprint);
  if (it != entries_.end()) {
    it->second.betweenness.emplace(options_fp, cell);
  }
  // Entry evicted meanwhile: hand out a detached cell (still correct,
  // just not shared with future requests).
  return cell;
}

ArtefactCacheStats ArtefactCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  ArtefactCacheStats out = stats_;
  out.betweenness_runs = betweenness_runs_->load(std::memory_order_relaxed);
  return out;
}

IncrementalStats ArtefactCache::incremental_stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return incremental_;
}

size_t ArtefactCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

void ArtefactCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
  lru_.clear();
}

}  // namespace evorec::engine
