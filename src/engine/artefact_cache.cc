#include "engine/artefact_cache.h"

#include <chrono>
#include <utility>

namespace evorec::engine {

ArtefactCache::ArtefactCache(size_t capacity, ThreadPool* pool)
    : capacity_(capacity == 0 ? 1 : capacity),
      pool_(pool),
      betweenness_runs_(std::make_shared<std::atomic<uint64_t>>(0)) {}

Result<measures::VersionArtefacts> ArtefactCache::Get(
    uint64_t fingerprint, const measures::ContextOptions& options,
    const Materializer& materialize) {
  std::promise<Result<SharedBase>> promise;
  std::shared_future<Result<SharedBase>> future;
  bool creator = false;
  uint64_t my_generation = 0;
  {
    std::unique_lock<std::mutex> lock(mu_);
    auto it = entries_.find(fingerprint);
    if (it != entries_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second.lru_pos);  // touch
      future = it->second.base;
      const bool ready =
          future.wait_for(std::chrono::seconds(0)) ==
          std::future_status::ready;
      ready ? ++stats_.hits : ++stats_.coalesced;
    } else {
      ++stats_.misses;
      creator = true;
      my_generation = ++generation_;
      future = promise.get_future().share();
      lru_.push_front(fingerprint);
      Entry entry;
      entry.base = future;
      entry.generation = my_generation;
      entry.lru_pos = lru_.begin();
      entries_.emplace(fingerprint, std::move(entry));
      while (lru_.size() > capacity_) {
        // Never evict the entry we just inserted (it is at the front;
        // capacity_ >= 1 guarantees the back is a different key).
        entries_.erase(lru_.back());
        lru_.pop_back();
        ++stats_.evictions;
      }
    }
  }

  if (creator) {
    // Build outside the lock: other fingerprints stay servable and
    // same-key callers wait on the future.
    auto built = [&]() -> Result<SharedBase> {
      auto snapshot = materialize();
      if (!snapshot.ok()) return snapshot.status();
      if (*snapshot == nullptr) {
        return InvalidArgumentError(
            "artefact materializer returned a null snapshot");
      }
      auto base = std::make_shared<BaseArtefacts>();
      base->snapshot = std::move(*snapshot);
      base->view = std::make_shared<const schema::SchemaView>(
          schema::SchemaView::Build(*base->snapshot));
      base->graph = std::make_shared<const graph::SchemaGraph>(
          graph::SchemaGraph::Build(*base->view, base->view->classes()));
      return SharedBase(std::move(base));
    }();
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.snapshot_loads;
      if (built.ok()) {
        ++stats_.view_builds;
        ++stats_.graph_builds;
      } else {
        // Failed builds are not cached: drop our entry (generation
        // check: it may have been evicted and re-created meanwhile) so
        // a later request retries.
        auto it = entries_.find(fingerprint);
        if (it != entries_.end() && it->second.generation == my_generation) {
          lru_.erase(it->second.lru_pos);
          entries_.erase(it);
        }
      }
    }
    promise.set_value(built);
    if (!built.ok()) return built.status();
  }

  Result<SharedBase> base = future.get();
  if (!base.ok()) return base.status();

  measures::VersionArtefacts artefacts;
  artefacts.snapshot = (*base)->snapshot;
  artefacts.view = (*base)->view;
  artefacts.graph = (*base)->graph;
  artefacts.betweenness = CellFor(fingerprint, *base, options);
  return artefacts;
}

std::shared_ptr<const measures::LazyBetweenness> ArtefactCache::CellFor(
    uint64_t fingerprint, const SharedBase& base,
    const measures::ContextOptions& options) {
  const uint64_t options_fp = measures::ContextOptionsFingerprint(options);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(fingerprint);
  if (it != entries_.end()) {
    auto cell = it->second.betweenness.find(options_fp);
    if (cell != it->second.betweenness.end()) return cell->second;
  }
  auto counter = betweenness_runs_;
  auto cell = std::make_shared<const measures::LazyBetweenness>(
      base->graph, options, pool_,
      [counter] { counter->fetch_add(1, std::memory_order_relaxed); });
  if (it != entries_.end()) {
    it->second.betweenness.emplace(options_fp, cell);
  }
  // Entry evicted meanwhile: hand out a detached cell (still correct,
  // just not shared with future requests).
  return cell;
}

ArtefactCacheStats ArtefactCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  ArtefactCacheStats out = stats_;
  out.betweenness_runs = betweenness_runs_->load(std::memory_order_relaxed);
  return out;
}

size_t ArtefactCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

void ArtefactCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
  lru_.clear();
}

}  // namespace evorec::engine
