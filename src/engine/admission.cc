#include "engine/admission.h"

#include <algorithm>
#include <string>

namespace evorec::engine {

namespace {

double BucketCapacity(const AdmissionOptions& options) {
  return options.bulk_burst > 0.0 ? options.bulk_burst
                                  : options.bulk_rate_per_sec;
}

}  // namespace

AdmissionController::AdmissionController(Env* env, AdmissionOptions options)
    : env_(env),
      options_(options),
      tokens_(BucketCapacity(options)),
      last_refill_us_(env->NowMicros()) {}

void AdmissionController::Ticket::Release() {
  if (controller_ != nullptr) {
    controller_->ReleaseSlot(lane_);
    controller_ = nullptr;
  }
}

void AdmissionController::ReleaseSlot(AdmissionLane lane) {
  std::lock_guard<std::mutex> lock(mu_);
  if (in_flight_ > 0) --in_flight_;
  if (lane == AdmissionLane::kBulk && bulk_in_flight_ > 0) --bulk_in_flight_;
}

void AdmissionController::RefillLocked(uint64_t now_us) {
  if (options_.bulk_rate_per_sec <= 0.0) return;
  if (now_us <= last_refill_us_) return;
  // Divide rather than scale by 1e-6: an exact elapsed/rate pair (say
  // 100ms at 10/s) must earn exactly 1.0 tokens, not 0.999...
  const double earned = static_cast<double>(now_us - last_refill_us_) *
                        options_.bulk_rate_per_sec / 1e6;
  tokens_ = std::min(BucketCapacity(options_), tokens_ + earned);
  last_refill_us_ = now_us;
}

Result<AdmissionController::Ticket> AdmissionController::Admit(
    AdmissionLane lane, const RequestBudget& budget, uint64_t weight) {
  const uint64_t now = env_->NowMicros();
  std::lock_guard<std::mutex> lock(mu_);

  // 1. Queue-time cap: a request that already rotted past the cap is
  // shed regardless of lane — serving it late only delays the queue
  // behind it.
  if (options_.max_queue_us > 0 &&
      budget.enqueue_us != RequestBudget::kNoEnqueueTime &&
      now >= budget.enqueue_us &&
      now - budget.enqueue_us > options_.max_queue_us) {
    ++stats_.shed_queue;
    return ResourceExhaustedError(
        "admission: queued " + std::to_string(now - budget.enqueue_us) +
        "us exceeds cap of " + std::to_string(options_.max_queue_us) + "us");
  }

  // 2. Rate limit (bulk only): the token bucket bounds offered
  // request volume; priority traffic is exempt so commits and group
  // requests cannot be starved by a bulk-read flood.
  if (lane == AdmissionLane::kBulk && options_.bulk_rate_per_sec > 0.0) {
    RefillLocked(now);
    // Epsilon absorbs accumulated refill rounding; a bucket is never
    // short by 1e-9 of a request.
    const double need = static_cast<double>(weight) - 1e-9;
    if (tokens_ < need) {
      ++stats_.shed_rate;
      return ResourceExhaustedError(
          "admission: bulk rate limit (" +
          std::to_string(options_.bulk_rate_per_sec) + " req/s) exhausted");
    }
    tokens_ -= need;
  }

  // 3. In-flight limit: the bulk lane's own occupancy saturates
  // priority_reserve slots early; the total caps both lanes.
  if (options_.max_in_flight > 0) {
    const size_t reserve =
        std::min(options_.priority_reserve, options_.max_in_flight);
    const size_t bulk_limit = options_.max_in_flight - reserve;
    if (in_flight_ >= options_.max_in_flight ||
        (lane == AdmissionLane::kBulk && bulk_in_flight_ >= bulk_limit)) {
      ++stats_.shed_in_flight;
      const bool bulk_capped =
          lane == AdmissionLane::kBulk && bulk_in_flight_ >= bulk_limit &&
          in_flight_ < options_.max_in_flight;
      return ResourceExhaustedError(
          "admission: " +
          std::to_string(bulk_capped ? bulk_in_flight_ : in_flight_) +
          " requests in flight (limit " +
          std::to_string(bulk_capped ? bulk_limit : options_.max_in_flight) +
          (bulk_capped ? ", bulk lane" : "") + ")");
    }
    ++in_flight_;
    if (lane == AdmissionLane::kBulk) ++bulk_in_flight_;
    stats_.peak_in_flight =
        std::max<uint64_t>(stats_.peak_in_flight, in_flight_);
  }

  if (lane == AdmissionLane::kPriority) {
    ++stats_.admitted_priority;
  } else {
    ++stats_.admitted_bulk;
  }
  return Ticket(options_.max_in_flight > 0 ? this : nullptr, lane);
}

size_t AdmissionController::in_flight() const {
  std::lock_guard<std::mutex> lock(mu_);
  return in_flight_;
}

AdmissionStats AdmissionController::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

const char* BreakerStateName(BreakerState state) {
  switch (state) {
    case BreakerState::kClosed:
      return "CLOSED";
    case BreakerState::kOpen:
      return "OPEN";
    case BreakerState::kHalfOpen:
      return "HALF_OPEN";
  }
  return "UNKNOWN";
}

CircuitBreaker::CircuitBreaker(Env* env, BreakerOptions options)
    : env_(env), options_(options) {}

Status CircuitBreaker::Allow() {
  const uint64_t now = env_->NowMicros();
  std::lock_guard<std::mutex> lock(mu_);
  if (state_ == BreakerState::kOpen && now >= open_until_us_) {
    state_ = BreakerState::kHalfOpen;  // cool-down over: probe time
  }
  switch (state_) {
    case BreakerState::kClosed:
      return OkStatus();
    case BreakerState::kOpen: {
      ++stats_.fast_fails;
      return UnavailableError(
          "circuit breaker open after " +
          std::to_string(stats_.consecutive_failures) +
          " consecutive transient commit failures (last: " + last_error_ +
          "); retry in " + std::to_string(open_until_us_ - now) + "us");
    }
    case BreakerState::kHalfOpen:
      if (probe_in_flight_) {
        ++stats_.fast_fails;
        return UnavailableError(
            "circuit breaker half-open: a probe commit is already in "
            "flight");
      }
      probe_in_flight_ = true;
      ++stats_.probes;
      return OkStatus();
  }
  return OkStatus();
}

void CircuitBreaker::RecordSuccess() {
  std::lock_guard<std::mutex> lock(mu_);
  probe_in_flight_ = false;
  stats_.consecutive_failures = 0;
  if (state_ != BreakerState::kClosed) {
    state_ = BreakerState::kClosed;
    ++stats_.closes;
  }
}

void CircuitBreaker::RecordFailure(const Status& cause) {
  if (!IsTransient(cause)) {
    // Permanent failures (corruption, logic errors) are not device
    // sickness: fast-failing future commits would not protect
    // anything. Release a probe so the next commit tries again.
    std::lock_guard<std::mutex> lock(mu_);
    probe_in_flight_ = false;
    return;
  }
  const uint64_t now = env_->NowMicros();
  std::lock_guard<std::mutex> lock(mu_);
  probe_in_flight_ = false;
  last_error_ = cause.message();
  ++stats_.consecutive_failures;
  if (state_ == BreakerState::kHalfOpen) {
    // The probe found the device still sick: re-open for a fresh
    // cool-down.
    state_ = BreakerState::kOpen;
    open_until_us_ = now + options_.cooldown_us;
    ++stats_.reopens;
  } else if (state_ == BreakerState::kClosed &&
             stats_.consecutive_failures >= options_.failure_threshold) {
    state_ = BreakerState::kOpen;
    open_until_us_ = now + options_.cooldown_us;
    ++stats_.opens;
  }
}

BreakerState CircuitBreaker::state() const {
  const uint64_t now = env_->NowMicros();
  std::lock_guard<std::mutex> lock(mu_);
  if (state_ == BreakerState::kOpen && now >= open_until_us_) {
    return BreakerState::kHalfOpen;
  }
  return state_;
}

BreakerStats CircuitBreaker::stats() const {
  const uint64_t now = env_->NowMicros();
  std::lock_guard<std::mutex> lock(mu_);
  BreakerStats out = stats_;
  out.state = (state_ == BreakerState::kOpen && now >= open_until_us_)
                  ? BreakerState::kHalfOpen
                  : state_;
  return out;
}

BrownoutController::BrownoutController(Env* env, BrownoutOptions options)
    : env_(env), options_(options), window_start_us_(env->NowMicros()) {}

void BrownoutController::RollWindowsLocked(uint64_t now_us) {
  if (options_.window_us == 0) return;
  while (now_us >= window_start_us_ + options_.window_us) {
    // Close the window that just elapsed.
    if (active_) {
      if (sheds_this_window_ == 0) {
        if (++clean_windows_ >= options_.exit_clean_windows) {
          active_ = false;
          ++stats_.exits;
        }
      } else {
        clean_windows_ = 0;
      }
    }
    window_start_us_ += options_.window_us;
    sheds_this_window_ = 0;
    if (!active_ && now_us >= window_start_us_ + options_.window_us) {
      // Inactive with an empty backlog of windows: nothing more can
      // change. Jump to the current window in O(1).
      const uint64_t behind = now_us - window_start_us_;
      window_start_us_ += (behind / options_.window_us) * options_.window_us;
    }
  }
}

void BrownoutController::OnShed() {
  if (!options_.enabled) return;
  const uint64_t now = env_->NowMicros();
  std::lock_guard<std::mutex> lock(mu_);
  RollWindowsLocked(now);
  ++stats_.sheds_observed;
  ++sheds_this_window_;
  if (!active_ && sheds_this_window_ >= options_.enter_sheds_per_window) {
    active_ = true;
    clean_windows_ = 0;
    ++stats_.entries;
  }
}

bool BrownoutController::Active() {
  if (!options_.enabled) return false;
  const uint64_t now = env_->NowMicros();
  std::lock_guard<std::mutex> lock(mu_);
  RollWindowsLocked(now);
  return active_;
}

BrownoutStats BrownoutController::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  BrownoutStats out = stats_;
  out.active = active_;
  return out;
}

}  // namespace evorec::engine
