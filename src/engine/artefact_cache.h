#ifndef EVOREC_ENGINE_ARTEFACT_CACHE_H_
#define EVOREC_ENGINE_ARTEFACT_CACHE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <future>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "common/result.h"
#include "common/thread_pool.h"
#include "graph/betweenness.h"
#include "measures/measure_context.h"

namespace evorec::engine {

/// Counters exposing the artefact cache's behaviour. The reuse
/// contract of the cold path reads directly off them: walking a
/// K-version chain must show `betweenness_runs == K` and
/// `graph_builds == K` (the pre-cache pair-keyed path performed
/// 2·(K−1) of each, rebuilding every middle version's artefacts for
/// both pairs that touch it).
struct ArtefactCacheStats {
  uint64_t hits = 0;        ///< base artefacts served from the cache
  uint64_t misses = 0;      ///< triggered a base build
  uint64_t coalesced = 0;   ///< joined a concurrent in-flight build
  uint64_t evictions = 0;   ///< LRU evictions
  uint64_t snapshot_loads = 0;    ///< materializer invocations
  uint64_t view_builds = 0;       ///< SchemaView::Build runs
  uint64_t graph_builds = 0;      ///< SchemaGraph::Build runs
  uint64_t betweenness_runs = 0;  ///< full Brandes computations run
};

/// Counters of the incremental-refresh path. Together with
/// ArtefactCacheStats they are the proof obligations of the O(|δ|)
/// contract: below the churn threshold a commit must show `advanced`
/// ticking (never `full_recomputes`) and the cumulative
/// `recomputed_sources` staying proportional to the cumulative
/// `affected_sources` — not to `total_sources`.
struct IncrementalStats {
  uint64_t refreshes = 0;        ///< Refresh calls
  uint64_t advanced = 0;         ///< betweenness advanced incrementally
  uint64_t full_recomputes = 0;  ///< advance fell back to a full run
  /// Predecessor had no computed betweenness — the successor cell
  /// stays lazy (pay-for-what-you-use is preserved across refreshes).
  uint64_t stayed_lazy = 0;
  uint64_t touched_nodes = 0;      ///< cumulative adjacency-diff sizes
  uint64_t affected_sources = 0;   ///< cumulative frontier sizes
  uint64_t recomputed_sources = 0; ///< cumulative sources re-run
  uint64_t total_sources = 0;      ///< cumulative graph sizes (denominator)
};

/// An LRU cache of per-*version* cold-path artefacts (snapshot, schema
/// view, own-universe schema graph, lazy betweenness cell), keyed by
/// the version's content fingerprint — NOT by version pair. Contexts
/// for the pairs (V1,V2) and (V2,V3) therefore share every V2
/// artefact, and a timeline walk over K versions builds each version's
/// artefacts exactly once.
///
/// Thread-safe and single-flight: concurrent requests for one missing
/// fingerprint coalesce into a single build (the materializer runs
/// once), and the betweenness cells are single-flight per
/// (fingerprint, context-options) — sharing one cache across
/// concurrently building contexts never duplicates a Brandes run.
/// Handed-out bundles are immutable shared state and survive eviction
/// while referenced.
class ArtefactCache {
 public:
  /// Supplies the snapshot of the version being cached on a miss.
  /// Called outside the cache lock; must be safe to invoke
  /// concurrently with materializers of *other* fingerprints (callers
  /// that materialise from one non-thread-safe source must lock inside
  /// the materializer — see EvaluationEngine).
  using Materializer =
      std::function<Result<std::shared_ptr<const rdf::KnowledgeBase>>()>;

  /// `capacity` is clamped to >= 1. `pool` (optional, must outlive the
  /// cache) parallelises the Brandes passes of the betweenness cells.
  explicit ArtefactCache(size_t capacity, ThreadPool* pool = nullptr);

  /// The artefact bundle of the version identified by `fingerprint`,
  /// building it via `materialize` on a miss. The returned bundle's
  /// betweenness cell matches `options` (per-options cells share the
  /// base artefacts).
  Result<measures::VersionArtefacts> Get(
      uint64_t fingerprint, const measures::ContextOptions& options,
      const Materializer& materialize);

  /// The incremental path: the bundle of `to_fingerprint` (a commit's
  /// successor of `from_fingerprint`), advancing the predecessor's
  /// computed betweenness through the affected-source frontier instead
  /// of scheduling a cold Brandes run. Falls back gracefully at every
  /// step — predecessor evicted, betweenness never forced, sampled
  /// mode, or churn past `churn_threshold` — to the plain Get
  /// behaviour, so the returned bundle is always observationally
  /// identical to Get(to_fingerprint, options, materialize_to).
  /// `advance_stats` (optional) receives the per-call frontier
  /// counters when an advance was attempted.
  Result<measures::VersionArtefacts> Refresh(
      uint64_t from_fingerprint, uint64_t to_fingerprint,
      const measures::ContextOptions& options,
      const Materializer& materialize_to, double churn_threshold,
      graph::BetweennessAdvanceStats* advance_stats = nullptr);

  ArtefactCacheStats stats() const;

  IncrementalStats incremental_stats() const;

  /// Number of resident base entries.
  size_t size() const;

  /// Drops every cached entry (in-flight builds finish normally;
  /// handed-out bundles stay valid).
  void Clear();

 private:
  /// The options-independent artefacts of one version.
  struct BaseArtefacts {
    std::shared_ptr<const rdf::KnowledgeBase> snapshot;
    std::shared_ptr<const schema::SchemaView> view;
    std::shared_ptr<const graph::SchemaGraph> graph;
  };
  using SharedBase = std::shared_ptr<const BaseArtefacts>;

  struct Entry {
    std::shared_future<Result<SharedBase>> base;
    /// Lazy betweenness cells keyed by ContextOptionsFingerprint.
    std::unordered_map<uint64_t,
                       std::shared_ptr<const measures::LazyBetweenness>>
        betweenness;
    std::list<uint64_t>::iterator lru_pos;
    /// Distinguishes re-created entries from the one a failed builder
    /// must clean up.
    uint64_t generation = 0;
  };

  /// The ready base artefacts of `fingerprint`, building them via
  /// `materialize` on a miss (single-flight).
  Result<SharedBase> GetBase(uint64_t fingerprint,
                             const Materializer& materialize);

  /// The cell for (entry, options), creating it on first request.
  std::shared_ptr<const measures::LazyBetweenness> CellFor(
      uint64_t fingerprint, const SharedBase& base,
      const measures::ContextOptions& options);

  size_t capacity_;
  ThreadPool* pool_;
  mutable std::mutex mu_;
  std::list<uint64_t> lru_;  // most-recent first
  std::unordered_map<uint64_t, Entry> entries_;
  ArtefactCacheStats stats_;
  IncrementalStats incremental_;
  uint64_t generation_ = 0;
  // Brandes runs are counted from inside the lazy cells, which may
  // outlive the cache (shared_ptr keeps the counter valid).
  std::shared_ptr<std::atomic<uint64_t>> betweenness_runs_;
};

}  // namespace evorec::engine

#endif  // EVOREC_ENGINE_ARTEFACT_CACHE_H_
