#ifndef EVOREC_ENGINE_ADMISSION_H_
#define EVOREC_ENGINE_ADMISSION_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <utility>

#include "common/deadline.h"
#include "common/env.h"
#include "common/result.h"
#include "common/status.h"

namespace evorec::engine {

/// The overload-robustness primitives in front of the serving loop
/// (docs/ARCHITECTURE.md "Overload control" has the state diagrams):
///
///  - AdmissionController — bounded in-flight work + token-bucket rate
///    limit + queue-time cap; excess load is shed with
///    kResourceExhausted instead of rotting in queue until every p99
///    blows.
///  - CircuitBreaker — wraps the commit path; K consecutive transient
///    failures open it, commits fast-fail for a cool-down, a half-open
///    probe closes it again. Stops the retry/backoff loop from
///    amplifying a sick device into a convoy.
///  - BrownoutController — hysteretic "cheaper mode" switch: sustained
///    shed pressure drops the service to a declared degraded quality
///    (sampled betweenness, smaller pools) until the pressure clears.
///
/// All three run on an injectable Env clock, so tests script time.

/// Which lane a request enters admission on. Commits and group
/// requests ride kPriority: they bypass the rate bucket and may use
/// the reserved in-flight slots, so a flood of bulk reads can never
/// starve the write path or the (rarer, more expensive) group serves.
enum class AdmissionLane {
  kBulk,
  kPriority,
};

struct AdmissionOptions {
  /// Max concurrently admitted requests (bulk + priority). 0 disables
  /// the in-flight limit.
  size_t max_in_flight = 64;
  /// In-flight slots only the priority lane may occupy (must be
  /// <= max_in_flight; at most max_in_flight - priority_reserve bulk
  /// requests run concurrently, however many slots priority holds).
  size_t priority_reserve = 8;
  /// Token-bucket refill rate for the bulk lane, requests per second.
  /// 0 disables rate limiting. Priority traffic is exempt.
  double bulk_rate_per_sec = 0.0;
  /// Bucket capacity (burst tolerance), requests. 0 means one second's
  /// worth of refill (bulk_rate_per_sec).
  double bulk_burst = 0.0;
  /// Max time a request may have waited in the caller's queue before
  /// admission (RequestBudget::enqueue_us) — older requests are shed:
  /// serving them late only makes the requests behind them late too.
  /// 0 disables the cap.
  uint64_t max_queue_us = 0;
};

/// Per-cause shed counters. sheds() is the pressure signal the
/// brown-out controller watches.
struct AdmissionStats {
  uint64_t admitted_bulk = 0;
  uint64_t admitted_priority = 0;
  uint64_t shed_queue = 0;      ///< queue-time cap exceeded
  uint64_t shed_rate = 0;       ///< bulk token bucket empty
  uint64_t shed_in_flight = 0;  ///< in-flight limit reached
  uint64_t peak_in_flight = 0;

  uint64_t admitted() const { return admitted_bulk + admitted_priority; }
  uint64_t sheds() const { return shed_queue + shed_rate + shed_in_flight; }
};

/// Admission control for the serving loop: every request asks for a
/// Ticket before any expensive work; a shed request costs one mutex
/// acquisition and returns kResourceExhausted naming the cause.
/// Thread-safe; Tickets may be released from any thread.
class AdmissionController {
 public:
  /// `env` supplies the token-bucket clock and must outlive the
  /// controller.
  AdmissionController(Env* env, AdmissionOptions options);

  /// RAII in-flight slot: releases on destruction. Move-only. A
  /// default-constructed Ticket holds nothing (the admission-disabled
  /// path).
  class Ticket {
   public:
    Ticket() = default;
    Ticket(Ticket&& other) noexcept
        : controller_(std::exchange(other.controller_, nullptr)),
          lane_(other.lane_) {}
    Ticket& operator=(Ticket&& other) noexcept {
      if (this != &other) {
        Release();
        controller_ = std::exchange(other.controller_, nullptr);
        lane_ = other.lane_;
      }
      return *this;
    }
    Ticket(const Ticket&) = delete;
    Ticket& operator=(const Ticket&) = delete;
    ~Ticket() { Release(); }

    void Release();

   private:
    friend class AdmissionController;
    Ticket(AdmissionController* controller, AdmissionLane lane)
        : controller_(controller), lane_(lane) {}
    AdmissionController* controller_ = nullptr;
    AdmissionLane lane_ = AdmissionLane::kBulk;
  };

  /// Admits or sheds. Checks, in order: the queue-time cap (against
  /// budget.enqueue_us), the bulk rate bucket (kBulk only), the
  /// in-flight limit. `weight` is the number of logical requests the
  /// caller represents — a batch of n charges n tokens from the rate
  /// bucket but occupies one in-flight slot (the slot bounds
  /// concurrent work, the bucket bounds offered request volume).
  Result<Ticket> Admit(AdmissionLane lane, const RequestBudget& budget,
                       uint64_t weight = 1);

  size_t in_flight() const;
  AdmissionStats stats() const;
  const AdmissionOptions& options() const { return options_; }

 private:
  void ReleaseSlot(AdmissionLane lane);

  /// Refills the bucket from elapsed clock time. mu_ held.
  void RefillLocked(uint64_t now_us);

  Env* env_;
  AdmissionOptions options_;
  mutable std::mutex mu_;
  double tokens_;
  uint64_t last_refill_us_;
  size_t in_flight_ = 0;
  size_t bulk_in_flight_ = 0;
  AdmissionStats stats_;
};

struct BreakerOptions {
  /// Consecutive transient commit failures that open the breaker.
  size_t failure_threshold = 3;
  /// How long an open breaker fast-fails before letting one probe
  /// through (Env clock).
  uint64_t cooldown_us = 1'000'000;
};

enum class BreakerState {
  kClosed,    ///< commits flow normally
  kOpen,      ///< commits fast-fail until the cool-down elapses
  kHalfOpen,  ///< one probe commit in flight decides open vs closed
};

const char* BreakerStateName(BreakerState state);

struct BreakerStats {
  BreakerState state = BreakerState::kClosed;
  uint64_t consecutive_failures = 0;
  uint64_t opens = 0;       ///< closed -> open transitions
  uint64_t reopens = 0;     ///< half-open probe failed
  uint64_t closes = 0;      ///< open/half-open -> closed (probe succeeded)
  uint64_t fast_fails = 0;  ///< commits rejected without touching storage
  uint64_t probes = 0;      ///< half-open probes granted
};

/// Commit-path circuit breaker (closed -> open -> half-open -> closed).
/// Only *transient* failures (Status IsTransient) count toward opening:
/// they are the class where retrying against a sick device amplifies
/// the outage into a convoy of blocked committers. Permanent failures
/// surface to the caller but leave the breaker alone. Thread-safe.
class CircuitBreaker {
 public:
  /// `env` supplies the cool-down clock and must outlive the breaker.
  CircuitBreaker(Env* env, BreakerOptions options);

  /// OK when a commit may proceed (closed, or this caller won the
  /// half-open probe). kUnavailable fast-fail while open or while
  /// another probe is in flight. A caller that gets OK must report the
  /// outcome via RecordSuccess/RecordFailure.
  Status Allow();

  void RecordSuccess();
  void RecordFailure(const Status& cause);

  /// Current state; an open breaker whose cool-down has elapsed
  /// reports kHalfOpen (the next Allow() grants the probe).
  BreakerState state() const;
  BreakerStats stats() const;

 private:
  Env* env_;
  BreakerOptions options_;
  mutable std::mutex mu_;
  BreakerState state_ = BreakerState::kClosed;
  bool probe_in_flight_ = false;
  uint64_t open_until_us_ = 0;
  std::string last_error_;
  BreakerStats stats_;
};

struct BrownoutOptions {
  bool enabled = false;
  /// Shed-pressure evaluation window (Env clock).
  uint64_t window_us = 1'000'000;
  /// Sheds observed within one window that trip the brown-out.
  uint64_t enter_sheds_per_window = 16;
  /// Consecutive shed-free windows required to recover — the
  /// hysteresis that stops the service from flapping between modes at
  /// the pressure boundary.
  uint64_t exit_clean_windows = 2;
};

struct BrownoutStats {
  bool active = false;
  uint64_t entries = 0;
  uint64_t exits = 0;
  uint64_t sheds_observed = 0;
};

/// Hysteretic brown-out switch. The service reports every shed via
/// OnShed() and asks Active() per request; while active it serves the
/// declared cheaper mode (the service owns *what* gets cheaper — this
/// class only decides *when*). Thread-safe; windows roll lazily on the
/// Env clock, so scripted-clock tests step through transitions
/// deterministically.
class BrownoutController {
 public:
  /// `env` must outlive the controller.
  BrownoutController(Env* env, BrownoutOptions options);

  /// Records one shed request at the current clock instant.
  void OnShed();

  /// Whether the service should serve the cheaper mode right now.
  bool Active();

  BrownoutStats stats() const;

 private:
  /// Closes every window that has fully elapsed. mu_ held.
  void RollWindowsLocked(uint64_t now_us);

  Env* env_;
  BrownoutOptions options_;
  mutable std::mutex mu_;
  bool active_ = false;
  uint64_t window_start_us_ = 0;
  uint64_t sheds_this_window_ = 0;
  uint64_t clean_windows_ = 0;
  BrownoutStats stats_;
};

}  // namespace evorec::engine

#endif  // EVOREC_ENGINE_ADMISSION_H_
