#include "engine/recommendation_service.h"

#include <functional>
#include <utility>

#include "common/stopwatch.h"

namespace evorec::engine {

RecommendationService::RecommendationService(
    const measures::MeasureRegistry& registry, ServiceOptions options)
    : options_(std::move(options)),
      engine_(registry, options_.engine),
      recommender_(registry, options_.recommender) {}

void RecommendationService::AttachProvenance(
    provenance::ProvenanceStore* store) {
  provenance_ = store;
  recommender_.AttachProvenance(store);
}

void RecommendationService::AttachAccessPolicy(
    const anonymity::AccessPolicy* policy) {
  recommender_.AttachAccessPolicy(policy);
}

Result<std::shared_ptr<const SharedEvaluation>> RecommendationService::Warm(
    const version::KbView& view, version::VersionId v1, version::VersionId v2,
    std::shared_ptr<const recommend::SharedRunState>* state) {
  auto evaluation = engine_.Evaluate(view, v1, v2, options_.context);
  if (!evaluation.ok()) return evaluation.status();
  auto shared = (*evaluation)->SharedStateFor(recommender_);
  if (!shared.ok()) return shared.status();
  *state = std::move(shared).value();
  return evaluation;
}

Result<std::shared_ptr<const SharedEvaluation>>
RecommendationService::WarmOrFallback(
    const version::KbView& view, version::VersionId v1, version::VersionId v2,
    std::shared_ptr<const recommend::SharedRunState>* state,
    bool* degraded) {
  *degraded = health_state() == HealthState::kDegraded;
  auto evaluation = Warm(view, v1, v2, state);
  if (evaluation.ok() || !*degraded) return evaluation;
  // Degraded and unable to serve fresh: answer from the pinned
  // last-good evaluation rather than going dark. The caller sees a
  // consistent list for the last successfully committed transition,
  // flagged so nobody mistakes it for the requested pair.
  auto last_good = engine_.LastGoodRefresh();
  if (!last_good.has_value()) return evaluation;
  auto shared = last_good->evaluation->SharedStateFor(recommender_);
  if (!shared.ok()) return evaluation;  // original error is the story
  *state = std::move(shared).value();
  return Result<std::shared_ptr<const SharedEvaluation>>(
      last_good->evaluation);
}

void RecommendationService::MarkCommitFailed(const Status& status) {
  std::lock_guard<std::mutex> lock(health_mu_);
  health_.state = HealthState::kDegraded;
  ++health_.failed_commits;
  health_.last_error = status.message();
}

void RecommendationService::MarkCommitSucceeded() {
  std::lock_guard<std::mutex> lock(health_mu_);
  if (health_.state == HealthState::kDegraded) {
    ++health_.recoveries;
  }
  health_.state = HealthState::kHealthy;
}

void RecommendationService::CountDegradedServes(uint64_t n) {
  std::lock_guard<std::mutex> lock(health_mu_);
  health_.degraded_serves += n;
}

ServiceHealth RecommendationService::health() const {
  std::lock_guard<std::mutex> lock(health_mu_);
  return health_;
}

Status RecommendationService::WarmStart(
    const version::VersionedKnowledgeBase& vkb, version::VersionId v1,
    version::VersionId v2) {
  version::SingleKbView view(vkb);
  return WarmStart(view, v1, v2);
}

Status RecommendationService::WarmStart(const version::KbView& view,
                                        version::VersionId v1,
                                        version::VersionId v2) {
  std::shared_ptr<const recommend::SharedRunState> state;
  auto evaluation = Warm(view, v1, v2, &state);
  if (!evaluation.ok()) return evaluation.status();
  // Warm() covers the context and the candidate pool; the report memo
  // fills here so even measures outside the candidate pipeline are hot.
  auto reports = (*evaluation)->AllReports();
  return reports.ok() ? OkStatus() : reports.status();
}

Result<version::VersionId> RecommendationService::Commit(
    version::VersionedKnowledgeBase& vkb, version::ChangeSet changes,
    std::string author, std::string message, uint64_t timestamp) {
  version::SingleKbView view(vkb);
  return Commit(view, std::move(changes), std::move(author),
                std::move(message), timestamp);
}

Result<version::VersionId> RecommendationService::Commit(
    version::KbView& view, version::ChangeSet changes, std::string author,
    std::string message, uint64_t timestamp) {
  Stopwatch watch;
  auto refreshed =
      engine_.CommitAndRefresh(view, std::move(changes), std::move(author),
                               std::move(message), timestamp, options_.context);
  if (!refreshed.ok()) {
    // The commit is not in the history (the WAL is write-ahead: a
    // failed append mutates nothing). Flip to DEGRADED — reads keep
    // flowing from the engine's pinned last-good state, flagged.
    MarkCommitFailed(refreshed.status());
    return refreshed.status();
  }
  // The engine refresh covers the context; warm the derived layers too
  // so the next request over the head pair is a pure hit.
  auto shared = refreshed->evaluation->SharedStateFor(recommender_);
  if (!shared.ok()) {
    MarkCommitFailed(shared.status());
    return shared.status();
  }
  auto reports = refreshed->evaluation->AllReports();
  if (!reports.ok()) {
    MarkCommitFailed(reports.status());
    return reports.status();
  }
  MarkCommitSucceeded();
  commit_latency_.Record(watch.ElapsedMicros());
  return refreshed->version;
}

Result<recommend::RecommendationList> RecommendationService::Recommend(
    const version::VersionedKnowledgeBase& vkb, version::VersionId v1,
    version::VersionId v2, profile::HumanProfile& prof) {
  version::SingleKbView view(vkb);
  return Recommend(view, v1, v2, prof);
}

Result<recommend::RecommendationList> RecommendationService::Recommend(
    const version::KbView& view, version::VersionId v1, version::VersionId v2,
    profile::HumanProfile& prof) {
  Stopwatch watch;
  std::shared_ptr<const recommend::SharedRunState> state;
  bool degraded = false;
  auto evaluation = WarmOrFallback(view, v1, v2, &state, &degraded);
  if (!evaluation.ok()) return evaluation.status();
  auto list = recommender_.RecommendForUser(*state, prof);
  if (list.ok() && degraded) {
    list->degraded = true;
    CountDegradedServes(1);
  }
  if (list.ok()) read_latency_.Record(watch.ElapsedMicros());
  return list;
}

Result<recommend::RecommendationList> RecommendationService::RecommendGroup(
    const version::VersionedKnowledgeBase& vkb, version::VersionId v1,
    version::VersionId v2, profile::Group& group) {
  version::SingleKbView view(vkb);
  return RecommendGroup(view, v1, v2, group);
}

Result<recommend::RecommendationList> RecommendationService::RecommendGroup(
    const version::KbView& view, version::VersionId v1, version::VersionId v2,
    profile::Group& group) {
  Stopwatch watch;
  std::shared_ptr<const recommend::SharedRunState> state;
  bool degraded = false;
  auto evaluation = WarmOrFallback(view, v1, v2, &state, &degraded);
  if (!evaluation.ok()) return evaluation.status();
  auto list = recommender_.RecommendForGroup(*state, group);
  if (list.ok() && degraded) {
    list->degraded = true;
    CountDegradedServes(1);
  }
  if (list.ok()) read_latency_.Record(watch.ElapsedMicros());
  return list;
}

namespace {

// Runs `serve(i)` for every index, in parallel over `pool` when
// requested, and collects the results in input order. Every slot is
// filled (parallel runs don't short-circuit); the first error wins.
Result<std::vector<recommend::RecommendationList>> ServeAll(
    size_t n, bool parallel, ThreadPool& pool,
    const std::function<Result<recommend::RecommendationList>(size_t)>&
        serve) {
  std::vector<Result<recommend::RecommendationList>> slots(
      n, Result<recommend::RecommendationList>(
             InternalError("request not served")));
  if (parallel) {
    pool.ParallelFor(n, [&](size_t i) { slots[i] = serve(i); });
  } else {
    for (size_t i = 0; i < n; ++i) slots[i] = serve(i);
  }
  std::vector<recommend::RecommendationList> results;
  results.reserve(n);
  for (Result<recommend::RecommendationList>& slot : slots) {
    if (!slot.ok()) return slot.status();
    results.push_back(std::move(slot).value());
  }
  return results;
}

}  // namespace

std::vector<provenance::RecordId> RecommendationService::MergeScratchTraces(
    std::vector<provenance::ProvenanceStore>& scratch) {
  std::vector<provenance::RecordId> bases(scratch.size(), 0);
  for (size_t i = 0; i < scratch.size(); ++i) {
    const provenance::RecordId base =
        static_cast<provenance::RecordId>(provenance_->size());
    bases[i] = base;
    for (const provenance::ProvRecord& record : scratch[i].records()) {
      provenance::ProvRecord rebased = record;
      // Scratch ids are dense from 0, so every id a sequential run
      // would have assigned is scratch id + base — inputs rebase to
      // records already spliced, keeping Append's validation happy.
      for (provenance::RecordId& input : rebased.inputs) input += base;
      (void)provenance_->Append(std::move(rebased));
    }
  }
  return bases;
}

namespace {

// Rebases the record ids a worker wrote scratch-relative into the
// merged store's id space.
void RebaseTrail(recommend::RecommendationList& list,
                 provenance::RecordId base) {
  for (provenance::RecordId& id : list.provenance_trail) id += base;
  for (recommend::RecommendationItem& item : list.items) {
    if (item.explanation.has_provenance) {
      item.explanation.provenance_record += base;
    }
  }
}

}  // namespace

Result<std::vector<recommend::RecommendationList>>
RecommendationService::RecommendBatch(
    const version::VersionedKnowledgeBase& vkb, version::VersionId v1,
    version::VersionId v2,
    const std::vector<profile::HumanProfile*>& profiles) {
  version::SingleKbView view(vkb);
  return RecommendBatch(view, v1, v2, profiles);
}

Result<std::vector<recommend::RecommendationList>>
RecommendationService::RecommendBatch(
    const version::KbView& view, version::VersionId v1, version::VersionId v2,
    const std::vector<profile::HumanProfile*>& profiles) {
  for (profile::HumanProfile* prof : profiles) {
    if (prof == nullptr) {
      return InvalidArgumentError("RecommendBatch: null profile");
    }
  }
  Stopwatch watch;
  std::shared_ptr<const recommend::SharedRunState> state;
  bool degraded = false;
  auto evaluation = WarmOrFallback(view, v1, v2, &state, &degraded);
  if (!evaluation.ok()) return evaluation.status();
  const size_t n = profiles.size();
  Result<std::vector<recommend::RecommendationList>> results =
      InternalError("batch not served");
  if (options_.parallel_batches && provenance_ != nullptr) {
    // Parallel with an audit trail: every worker traces into a private
    // scratch store, then the scratches splice into the attached store
    // in request order — the same records, ids and order a sequential
    // batch would have produced.
    std::vector<provenance::ProvenanceStore> scratch(n);
    std::vector<Result<recommend::RecommendationList>> slots(
        n, Result<recommend::RecommendationList>(
               InternalError("request not served")));
    engine_.pool().ParallelFor(n, [&](size_t i) {
      slots[i] =
          recommender_.RecommendForUser(*state, *profiles[i], &scratch[i]);
    });
    // Merge before error handling: a sequential batch records every
    // request's trail even when one of them fails.
    const std::vector<provenance::RecordId> bases =
        MergeScratchTraces(scratch);
    std::vector<recommend::RecommendationList> lists;
    lists.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      if (!slots[i].ok()) return slots[i].status();
      RebaseTrail(*slots[i], bases[i]);
      lists.push_back(std::move(slots[i]).value());
    }
    results = std::move(lists);
  } else {
    results = ServeAll(n, options_.parallel_batches, engine_.pool(),
                       [&](size_t i) {
                         return recommender_.RecommendForUser(*state,
                                                              *profiles[i]);
                       });
  }
  if (results.ok() && degraded) {
    for (recommend::RecommendationList& list : *results) {
      list.degraded = true;
    }
    CountDegradedServes(results->size());
  }
  // Every request in the batch completed when the batch did: n samples
  // of the batch's wall time is each request's observed latency.
  if (results.ok()) read_latency_.RecordN(watch.ElapsedMicros(), n);
  return results;
}

Result<std::vector<recommend::RecommendationList>>
RecommendationService::RecommendGroupBatch(
    const version::VersionedKnowledgeBase& vkb, version::VersionId v1,
    version::VersionId v2, const std::vector<profile::Group*>& groups) {
  version::SingleKbView view(vkb);
  return RecommendGroupBatch(view, v1, v2, groups);
}

Result<std::vector<recommend::RecommendationList>>
RecommendationService::RecommendGroupBatch(
    const version::KbView& view, version::VersionId v1, version::VersionId v2,
    const std::vector<profile::Group*>& groups) {
  for (profile::Group* group : groups) {
    if (group == nullptr) {
      return InvalidArgumentError("RecommendGroupBatch: null group");
    }
  }
  Stopwatch watch;
  std::shared_ptr<const recommend::SharedRunState> state;
  bool degraded = false;
  auto evaluation = WarmOrFallback(view, v1, v2, &state, &degraded);
  if (!evaluation.ok()) return evaluation.status();
  const size_t n = groups.size();
  Result<std::vector<recommend::RecommendationList>> results =
      InternalError("batch not served");
  if (options_.parallel_batches && provenance_ != nullptr) {
    std::vector<provenance::ProvenanceStore> scratch(n);
    std::vector<Result<recommend::RecommendationList>> slots(
        n, Result<recommend::RecommendationList>(
               InternalError("request not served")));
    engine_.pool().ParallelFor(n, [&](size_t i) {
      slots[i] =
          recommender_.RecommendForGroup(*state, *groups[i], &scratch[i]);
    });
    const std::vector<provenance::RecordId> bases =
        MergeScratchTraces(scratch);
    std::vector<recommend::RecommendationList> lists;
    lists.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      if (!slots[i].ok()) return slots[i].status();
      RebaseTrail(*slots[i], bases[i]);
      lists.push_back(std::move(slots[i]).value());
    }
    results = std::move(lists);
  } else {
    results = ServeAll(n, options_.parallel_batches, engine_.pool(),
                       [&](size_t i) {
                         return recommender_.RecommendForGroup(*state,
                                                               *groups[i]);
                       });
  }
  if (results.ok() && degraded) {
    for (recommend::RecommendationList& list : *results) {
      list.degraded = true;
    }
    CountDegradedServes(results->size());
  }
  if (results.ok()) read_latency_.RecordN(watch.ElapsedMicros(), n);
  return results;
}

}  // namespace evorec::engine
