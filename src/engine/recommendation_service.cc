#include "engine/recommendation_service.h"

#include <functional>
#include <utility>

namespace evorec::engine {

namespace {

Env* ResolveEnv(const ServiceOptions& options) {
  return options.env != nullptr ? options.env : Env::Default();
}

}  // namespace

std::string ServiceHealth::ToString() const {
  std::string out = "service ";
  out += state == HealthState::kHealthy ? "HEALTHY" : "DEGRADED";
  out += "\n  commits: failed=" + std::to_string(failed_commits) +
         " recoveries=" + std::to_string(recoveries);
  if (!last_error.empty()) out += " last_error=\"" + last_error + "\"";
  out += "\n  rejected: shed=" + std::to_string(shed_requests) +
         " deadline_exceeded=" + std::to_string(deadline_exceeded) +
         " breaker_fast_fails=" + std::to_string(breaker_fast_fails);
  out += "\n  served stale/cheap: degraded=" +
         std::to_string(degraded_serves) +
         " brownout=" + std::to_string(brownout_serves) +
         " (brownout " + (brownout_active ? "ACTIVE" : "inactive") + ")";
  return out;
}

RecommendationService::RecommendationService(
    const measures::MeasureRegistry& registry, ServiceOptions options)
    : options_(std::move(options)),
      env_(ResolveEnv(options_)),
      engine_(registry, options_.engine),
      recommender_(registry, options_.recommender),
      admission_(env_, options_.overload.admission),
      breaker_(env_, options_.overload.breaker),
      brownout_(env_, options_.overload.brownout) {}

void RecommendationService::AttachProvenance(
    provenance::ProvenanceStore* store) {
  provenance_ = store;
  recommender_.AttachProvenance(store);
}

void RecommendationService::AttachAccessPolicy(
    const anonymity::AccessPolicy* policy) {
  recommender_.AttachAccessPolicy(policy);
}

Result<std::shared_ptr<const SharedEvaluation>> RecommendationService::Warm(
    const version::KbView& view, version::VersionId v1, version::VersionId v2,
    const measures::ContextOptions& context,
    std::shared_ptr<const recommend::SharedRunState>* state) {
  auto evaluation = engine_.Evaluate(view, v1, v2, context);
  if (!evaluation.ok()) return evaluation.status();
  auto shared = (*evaluation)->SharedStateFor(recommender_);
  if (!shared.ok()) return shared.status();
  *state = std::move(shared).value();
  return evaluation;
}

Result<std::shared_ptr<const SharedEvaluation>>
RecommendationService::WarmOrFallback(
    const version::KbView& view, version::VersionId v1, version::VersionId v2,
    const measures::ContextOptions& context,
    std::shared_ptr<const recommend::SharedRunState>* state,
    bool* degraded) {
  *degraded = health_state() == HealthState::kDegraded;
  auto evaluation = Warm(view, v1, v2, context, state);
  if (evaluation.ok() || !*degraded) return evaluation;
  // Degraded and unable to serve fresh: answer from the pinned
  // last-good evaluation rather than going dark. The caller sees a
  // consistent list for the last successfully committed transition,
  // flagged so nobody mistakes it for the requested pair.
  auto last_good = engine_.LastGoodRefresh();
  if (!last_good.has_value()) return evaluation;
  auto shared = last_good->evaluation->SharedStateFor(recommender_);
  if (!shared.ok()) return evaluation;  // original error is the story
  *state = std::move(shared).value();
  return Result<std::shared_ptr<const SharedEvaluation>>(
      last_good->evaluation);
}

Result<AdmissionController::Ticket> RecommendationService::AdmitOrShed(
    AdmissionLane lane, const RequestBudget& budget, uint64_t n) {
  if (!options_.overload.admission_enabled) {
    return AdmissionController::Ticket();
  }
  auto ticket = admission_.Admit(lane, budget, n);
  if (!ticket.ok()) {
    // Every shed feeds the brown-out pressure signal: sustained
    // shedding is the cue to drop to the cheaper serving mode.
    brownout_.OnShed();
    std::lock_guard<std::mutex> lock(health_mu_);
    health_.shed_requests += n;
  }
  return ticket;
}

Deadline RecommendationService::EffectiveDeadline(
    const RequestBudget& budget) const {
  if (!budget.deadline.is_infinite()) return budget.deadline;
  if (options_.overload.default_deadline_us == 0) return Deadline::Infinite();
  return Deadline::After(env_, options_.overload.default_deadline_us);
}

Status RecommendationService::CheckDeadline(const Deadline& deadline,
                                            std::string_view stage,
                                            uint64_t n) {
  Status status = deadline.Check(stage);
  if (!status.ok()) {
    std::lock_guard<std::mutex> lock(health_mu_);
    health_.deadline_exceeded += n;
  }
  return status;
}

const measures::ContextOptions& RecommendationService::PickContext(
    bool* brownout) {
  *brownout = brownout_.Active();
  return *brownout ? options_.overload.brownout_context : options_.context;
}

void RecommendationService::MarkCommitFailed(const Status& status) {
  std::lock_guard<std::mutex> lock(health_mu_);
  health_.state = HealthState::kDegraded;
  ++health_.failed_commits;
  health_.last_error = status.message();
}

void RecommendationService::MarkCommitSucceeded() {
  std::lock_guard<std::mutex> lock(health_mu_);
  if (health_.state == HealthState::kDegraded) {
    ++health_.recoveries;
  }
  health_.state = HealthState::kHealthy;
}

void RecommendationService::CountDegradedServes(uint64_t n) {
  std::lock_guard<std::mutex> lock(health_mu_);
  health_.degraded_serves += n;
}

void RecommendationService::CountBrownoutServes(uint64_t n) {
  std::lock_guard<std::mutex> lock(health_mu_);
  health_.brownout_serves += n;
}

ServiceHealth RecommendationService::health() const {
  ServiceHealth out;
  {
    std::lock_guard<std::mutex> lock(health_mu_);
    out = health_;
  }
  out.brownout_active = brownout_.stats().active;
  return out;
}

Status RecommendationService::WarmStart(
    const version::VersionedKnowledgeBase& vkb, version::VersionId v1,
    version::VersionId v2) {
  version::SingleKbView view(vkb);
  return WarmStart(view, v1, v2);
}

Status RecommendationService::WarmStart(const version::KbView& view,
                                        version::VersionId v1,
                                        version::VersionId v2) {
  std::shared_ptr<const recommend::SharedRunState> state;
  auto evaluation = Warm(view, v1, v2, options_.context, &state);
  if (!evaluation.ok()) return evaluation.status();
  // Warm() covers the context and the candidate pool; the report memo
  // fills here so even measures outside the candidate pipeline are hot.
  auto reports = (*evaluation)->AllReports();
  return reports.ok() ? OkStatus() : reports.status();
}

Result<version::VersionId> RecommendationService::Commit(
    version::VersionedKnowledgeBase& vkb, version::ChangeSet changes,
    std::string author, std::string message, uint64_t timestamp,
    const RequestBudget& budget) {
  version::SingleKbView view(vkb);
  return Commit(view, std::move(changes), std::move(author),
                std::move(message), timestamp, budget);
}

Result<version::VersionId> RecommendationService::Commit(
    version::KbView& view, version::ChangeSet changes, std::string author,
    std::string message, uint64_t timestamp, const RequestBudget& budget) {
  const uint64_t start = env_->NowMicros();
  const bool breaker_on = options_.overload.breaker_enabled;
  if (breaker_on) {
    Status allowed = breaker_.Allow();
    if (!allowed.ok()) {
      // Fast-fail: storage was never touched, nothing *new* failed —
      // the service keeps whatever health state the real failures
      // already put it in.
      std::lock_guard<std::mutex> lock(health_mu_);
      ++health_.breaker_fast_fails;
      return allowed;
    }
  }
  // A pre-commit bail (shed, expired deadline) is not device sickness:
  // RecordFailure classifies by IsTransient and merely releases a
  // half-open probe for these codes.
  auto ticket = AdmitOrShed(AdmissionLane::kPriority, budget, 1);
  if (!ticket.ok()) {
    if (breaker_on) breaker_.RecordFailure(ticket.status());
    return ticket.status();
  }
  const Deadline deadline = EffectiveDeadline(budget);
  Status alive = CheckDeadline(deadline, "commit", 1);
  if (!alive.ok()) {
    if (breaker_on) breaker_.RecordFailure(alive);
    return alive;
  }
  auto refreshed =
      engine_.CommitAndRefresh(view, std::move(changes), std::move(author),
                               std::move(message), timestamp, options_.context);
  if (!refreshed.ok()) {
    // The commit is not in the history (the WAL is write-ahead: a
    // failed append mutates nothing). Flip to DEGRADED — reads keep
    // flowing from the engine's pinned last-good state, flagged.
    if (breaker_on) breaker_.RecordFailure(refreshed.status());
    MarkCommitFailed(refreshed.status());
    return refreshed.status();
  }
  // The engine refresh covers the context; warm the derived layers too
  // so the next request over the head pair is a pure hit.
  auto shared = refreshed->evaluation->SharedStateFor(recommender_);
  if (!shared.ok()) {
    if (breaker_on) breaker_.RecordFailure(shared.status());
    MarkCommitFailed(shared.status());
    return shared.status();
  }
  auto reports = refreshed->evaluation->AllReports();
  if (!reports.ok()) {
    if (breaker_on) breaker_.RecordFailure(reports.status());
    MarkCommitFailed(reports.status());
    return reports.status();
  }
  if (breaker_on) breaker_.RecordSuccess();
  MarkCommitSucceeded();
  commit_latency_.Record(env_->NowMicros() - start);
  return refreshed->version;
}

Result<recommend::RecommendationList> RecommendationService::Recommend(
    const version::VersionedKnowledgeBase& vkb, version::VersionId v1,
    version::VersionId v2, profile::HumanProfile& prof,
    const RequestBudget& budget) {
  version::SingleKbView view(vkb);
  return Recommend(view, v1, v2, prof, budget);
}

Result<recommend::RecommendationList> RecommendationService::Recommend(
    const version::KbView& view, version::VersionId v1, version::VersionId v2,
    profile::HumanProfile& prof, const RequestBudget& budget) {
  const uint64_t start = env_->NowMicros();
  auto ticket = AdmitOrShed(AdmissionLane::kBulk, budget, 1);
  if (!ticket.ok()) return ticket.status();
  const Deadline deadline = EffectiveDeadline(budget);
  Status alive = CheckDeadline(deadline, "context build", 1);
  if (!alive.ok()) return alive;
  bool brownout = false;
  const measures::ContextOptions& context = PickContext(&brownout);
  std::shared_ptr<const recommend::SharedRunState> state;
  bool degraded = false;
  auto evaluation = WarmOrFallback(view, v1, v2, context, &state, &degraded);
  if (!evaluation.ok()) return evaluation.status();
  alive = CheckDeadline(deadline, "scoring", 1);
  if (!alive.ok()) return alive;
  auto list = recommender_.RecommendForUser(*state, prof);
  if (list.ok()) {
    if (degraded) {
      list->degraded = true;
      CountDegradedServes(1);
    }
    if (brownout) {
      list->brownout = true;
      CountBrownoutServes(1);
    }
    read_latency_.Record(env_->NowMicros() - start);
  }
  return list;
}

Result<recommend::RecommendationList> RecommendationService::RecommendGroup(
    const version::VersionedKnowledgeBase& vkb, version::VersionId v1,
    version::VersionId v2, profile::Group& group,
    const RequestBudget& budget) {
  version::SingleKbView view(vkb);
  return RecommendGroup(view, v1, v2, group, budget);
}

Result<recommend::RecommendationList> RecommendationService::RecommendGroup(
    const version::KbView& view, version::VersionId v1, version::VersionId v2,
    profile::Group& group, const RequestBudget& budget) {
  const uint64_t start = env_->NowMicros();
  // Group serves ride the priority lane: they are rarer and more
  // expensive per call, so a bulk-read flood must not starve them.
  auto ticket = AdmitOrShed(AdmissionLane::kPriority, budget, 1);
  if (!ticket.ok()) return ticket.status();
  const Deadline deadline = EffectiveDeadline(budget);
  Status alive = CheckDeadline(deadline, "context build", 1);
  if (!alive.ok()) return alive;
  bool brownout = false;
  const measures::ContextOptions& context = PickContext(&brownout);
  std::shared_ptr<const recommend::SharedRunState> state;
  bool degraded = false;
  auto evaluation = WarmOrFallback(view, v1, v2, context, &state, &degraded);
  if (!evaluation.ok()) return evaluation.status();
  alive = CheckDeadline(deadline, "scoring", 1);
  if (!alive.ok()) return alive;
  auto list = recommender_.RecommendForGroup(*state, group);
  if (list.ok()) {
    if (degraded) {
      list->degraded = true;
      CountDegradedServes(1);
    }
    if (brownout) {
      list->brownout = true;
      CountBrownoutServes(1);
    }
    read_latency_.Record(env_->NowMicros() - start);
  }
  return list;
}

namespace {

// Runs `serve(i)` for every index, in parallel over `pool` when
// requested, and collects the results in input order. Every slot is
// filled (parallel runs don't short-circuit); the first error wins.
Result<std::vector<recommend::RecommendationList>> ServeAll(
    size_t n, bool parallel, ThreadPool& pool,
    const std::function<Result<recommend::RecommendationList>(size_t)>&
        serve) {
  std::vector<Result<recommend::RecommendationList>> slots(
      n, Result<recommend::RecommendationList>(
             InternalError("request not served")));
  if (parallel) {
    pool.ParallelFor(n, [&](size_t i) { slots[i] = serve(i); });
  } else {
    for (size_t i = 0; i < n; ++i) slots[i] = serve(i);
  }
  std::vector<recommend::RecommendationList> results;
  results.reserve(n);
  for (Result<recommend::RecommendationList>& slot : slots) {
    if (!slot.ok()) return slot.status();
    results.push_back(std::move(slot).value());
  }
  return results;
}

}  // namespace

std::vector<provenance::RecordId> RecommendationService::MergeScratchTraces(
    std::vector<provenance::ProvenanceStore>& scratch) {
  std::vector<provenance::RecordId> bases(scratch.size(), 0);
  for (size_t i = 0; i < scratch.size(); ++i) {
    const provenance::RecordId base =
        static_cast<provenance::RecordId>(provenance_->size());
    bases[i] = base;
    for (const provenance::ProvRecord& record : scratch[i].records()) {
      provenance::ProvRecord rebased = record;
      // Scratch ids are dense from 0, so every id a sequential run
      // would have assigned is scratch id + base — inputs rebase to
      // records already spliced, keeping Append's validation happy.
      for (provenance::RecordId& input : rebased.inputs) input += base;
      (void)provenance_->Append(std::move(rebased));
    }
  }
  return bases;
}

namespace {

// Rebases the record ids a worker wrote scratch-relative into the
// merged store's id space.
void RebaseTrail(recommend::RecommendationList& list,
                 provenance::RecordId base) {
  for (provenance::RecordId& id : list.provenance_trail) id += base;
  for (recommend::RecommendationItem& item : list.items) {
    if (item.explanation.has_provenance) {
      item.explanation.provenance_record += base;
    }
  }
}

}  // namespace

Result<std::vector<recommend::RecommendationList>>
RecommendationService::RecommendBatch(
    const version::VersionedKnowledgeBase& vkb, version::VersionId v1,
    version::VersionId v2,
    const std::vector<profile::HumanProfile*>& profiles,
    const RequestBudget& budget) {
  version::SingleKbView view(vkb);
  return RecommendBatch(view, v1, v2, profiles, budget);
}

Result<std::vector<recommend::RecommendationList>>
RecommendationService::RecommendBatch(
    const version::KbView& view, version::VersionId v1, version::VersionId v2,
    const std::vector<profile::HumanProfile*>& profiles,
    const RequestBudget& budget) {
  for (profile::HumanProfile* prof : profiles) {
    if (prof == nullptr) {
      return InvalidArgumentError("RecommendBatch: null profile");
    }
  }
  const uint64_t start = env_->NowMicros();
  const size_t n = profiles.size();
  // A batch of n is n logical requests to the rate bucket but one
  // in-flight unit of work.
  auto ticket = AdmitOrShed(AdmissionLane::kBulk, budget, n);
  if (!ticket.ok()) return ticket.status();
  const Deadline deadline = EffectiveDeadline(budget);
  // Checked before the shared evaluation: an already-expired batch
  // does zero context builds (EngineStats stays untouched).
  Status alive = CheckDeadline(deadline, "context build", n);
  if (!alive.ok()) return alive;
  bool brownout = false;
  const measures::ContextOptions& context = PickContext(&brownout);
  std::shared_ptr<const recommend::SharedRunState> state;
  bool degraded = false;
  auto evaluation = WarmOrFallback(view, v1, v2, context, &state, &degraded);
  if (!evaluation.ok()) return evaluation.status();
  Result<std::vector<recommend::RecommendationList>> results =
      InternalError("batch not served");
  if (options_.parallel_batches && provenance_ != nullptr) {
    // Parallel with an audit trail: every worker traces into a private
    // scratch store, then the scratches splice into the attached store
    // in request order — the same records, ids and order a sequential
    // batch would have produced.
    std::vector<provenance::ProvenanceStore> scratch(n);
    std::vector<Result<recommend::RecommendationList>> slots(
        n, Result<recommend::RecommendationList>(
               InternalError("request not served")));
    engine_.pool().ParallelFor(n, [&](size_t i) {
      Status user_alive = CheckDeadline(deadline, "batch scoring", 1);
      if (!user_alive.ok()) {
        slots[i] = user_alive;
        return;
      }
      slots[i] =
          recommender_.RecommendForUser(*state, *profiles[i], &scratch[i]);
    });
    // Merge before error handling: a sequential batch records every
    // request's trail even when one of them fails.
    const std::vector<provenance::RecordId> bases =
        MergeScratchTraces(scratch);
    std::vector<recommend::RecommendationList> lists;
    lists.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      if (!slots[i].ok()) return slots[i].status();
      RebaseTrail(*slots[i], bases[i]);
      lists.push_back(std::move(slots[i]).value());
    }
    results = std::move(lists);
  } else {
    results = ServeAll(n, options_.parallel_batches, engine_.pool(),
                       [&](size_t i) -> Result<recommend::RecommendationList> {
                         Status user_alive =
                             CheckDeadline(deadline, "batch scoring", 1);
                         if (!user_alive.ok()) return user_alive;
                         return recommender_.RecommendForUser(*state,
                                                              *profiles[i]);
                       });
  }
  if (results.ok() && degraded) {
    for (recommend::RecommendationList& list : *results) {
      list.degraded = true;
    }
    CountDegradedServes(results->size());
  }
  if (results.ok() && brownout) {
    for (recommend::RecommendationList& list : *results) {
      list.brownout = true;
    }
    CountBrownoutServes(results->size());
  }
  // Every request in the batch completed when the batch did: n samples
  // of the batch's wall time is each request's observed latency.
  if (results.ok()) read_latency_.RecordN(env_->NowMicros() - start, n);
  return results;
}

Result<std::vector<recommend::RecommendationList>>
RecommendationService::RecommendGroupBatch(
    const version::VersionedKnowledgeBase& vkb, version::VersionId v1,
    version::VersionId v2, const std::vector<profile::Group*>& groups,
    const RequestBudget& budget) {
  version::SingleKbView view(vkb);
  return RecommendGroupBatch(view, v1, v2, groups, budget);
}

Result<std::vector<recommend::RecommendationList>>
RecommendationService::RecommendGroupBatch(
    const version::KbView& view, version::VersionId v1, version::VersionId v2,
    const std::vector<profile::Group*>& groups, const RequestBudget& budget) {
  for (profile::Group* group : groups) {
    if (group == nullptr) {
      return InvalidArgumentError("RecommendGroupBatch: null group");
    }
  }
  const uint64_t start = env_->NowMicros();
  const size_t n = groups.size();
  auto ticket = AdmitOrShed(AdmissionLane::kPriority, budget, n);
  if (!ticket.ok()) return ticket.status();
  const Deadline deadline = EffectiveDeadline(budget);
  Status alive = CheckDeadline(deadline, "context build", n);
  if (!alive.ok()) return alive;
  bool brownout = false;
  const measures::ContextOptions& context = PickContext(&brownout);
  std::shared_ptr<const recommend::SharedRunState> state;
  bool degraded = false;
  auto evaluation = WarmOrFallback(view, v1, v2, context, &state, &degraded);
  if (!evaluation.ok()) return evaluation.status();
  Result<std::vector<recommend::RecommendationList>> results =
      InternalError("batch not served");
  if (options_.parallel_batches && provenance_ != nullptr) {
    std::vector<provenance::ProvenanceStore> scratch(n);
    std::vector<Result<recommend::RecommendationList>> slots(
        n, Result<recommend::RecommendationList>(
               InternalError("request not served")));
    engine_.pool().ParallelFor(n, [&](size_t i) {
      Status group_alive = CheckDeadline(deadline, "batch scoring", 1);
      if (!group_alive.ok()) {
        slots[i] = group_alive;
        return;
      }
      slots[i] =
          recommender_.RecommendForGroup(*state, *groups[i], &scratch[i]);
    });
    const std::vector<provenance::RecordId> bases =
        MergeScratchTraces(scratch);
    std::vector<recommend::RecommendationList> lists;
    lists.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      if (!slots[i].ok()) return slots[i].status();
      RebaseTrail(*slots[i], bases[i]);
      lists.push_back(std::move(slots[i]).value());
    }
    results = std::move(lists);
  } else {
    results = ServeAll(n, options_.parallel_batches, engine_.pool(),
                       [&](size_t i) -> Result<recommend::RecommendationList> {
                         Status group_alive =
                             CheckDeadline(deadline, "batch scoring", 1);
                         if (!group_alive.ok()) return group_alive;
                         return recommender_.RecommendForGroup(*state,
                                                               *groups[i]);
                       });
  }
  if (results.ok() && degraded) {
    for (recommend::RecommendationList& list : *results) {
      list.degraded = true;
    }
    CountDegradedServes(results->size());
  }
  if (results.ok() && brownout) {
    for (recommend::RecommendationList& list : *results) {
      list.brownout = true;
    }
    CountBrownoutServes(results->size());
  }
  if (results.ok()) read_latency_.RecordN(env_->NowMicros() - start, n);
  return results;
}

}  // namespace evorec::engine
