#include "engine/recommendation_service.h"

#include <functional>
#include <utility>

namespace evorec::engine {

RecommendationService::RecommendationService(
    const measures::MeasureRegistry& registry, ServiceOptions options)
    : options_(std::move(options)),
      engine_(registry, options_.engine),
      recommender_(registry, options_.recommender) {}

void RecommendationService::AttachProvenance(
    provenance::ProvenanceStore* store) {
  provenance_ = store;
  recommender_.AttachProvenance(store);
}

void RecommendationService::AttachAccessPolicy(
    const anonymity::AccessPolicy* policy) {
  recommender_.AttachAccessPolicy(policy);
}

Result<std::shared_ptr<const SharedEvaluation>> RecommendationService::Warm(
    const version::VersionedKnowledgeBase& vkb, version::VersionId v1,
    version::VersionId v2,
    std::shared_ptr<const recommend::SharedRunState>* state) {
  auto evaluation = engine_.Evaluate(vkb, v1, v2, options_.context);
  if (!evaluation.ok()) return evaluation.status();
  auto shared = (*evaluation)->SharedStateFor(recommender_);
  if (!shared.ok()) return shared.status();
  *state = std::move(shared).value();
  return evaluation;
}

Result<std::shared_ptr<const SharedEvaluation>>
RecommendationService::WarmOrFallback(
    const version::VersionedKnowledgeBase& vkb, version::VersionId v1,
    version::VersionId v2,
    std::shared_ptr<const recommend::SharedRunState>* state,
    bool* degraded) {
  *degraded = health_state() == HealthState::kDegraded;
  auto evaluation = Warm(vkb, v1, v2, state);
  if (evaluation.ok() || !*degraded) return evaluation;
  // Degraded and unable to serve fresh: answer from the pinned
  // last-good evaluation rather than going dark. The caller sees a
  // consistent list for the last successfully committed transition,
  // flagged so nobody mistakes it for the requested pair.
  auto last_good = engine_.LastGoodRefresh();
  if (!last_good.has_value()) return evaluation;
  auto shared = last_good->evaluation->SharedStateFor(recommender_);
  if (!shared.ok()) return evaluation;  // original error is the story
  *state = std::move(shared).value();
  return Result<std::shared_ptr<const SharedEvaluation>>(
      last_good->evaluation);
}

void RecommendationService::MarkCommitFailed(const Status& status) {
  std::lock_guard<std::mutex> lock(health_mu_);
  health_.state = HealthState::kDegraded;
  ++health_.failed_commits;
  health_.last_error = status.message();
}

void RecommendationService::MarkCommitSucceeded() {
  std::lock_guard<std::mutex> lock(health_mu_);
  if (health_.state == HealthState::kDegraded) {
    ++health_.recoveries;
  }
  health_.state = HealthState::kHealthy;
}

void RecommendationService::CountDegradedServes(uint64_t n) {
  std::lock_guard<std::mutex> lock(health_mu_);
  health_.degraded_serves += n;
}

ServiceHealth RecommendationService::health() const {
  std::lock_guard<std::mutex> lock(health_mu_);
  return health_;
}

Status RecommendationService::WarmStart(
    const version::VersionedKnowledgeBase& vkb, version::VersionId v1,
    version::VersionId v2) {
  std::shared_ptr<const recommend::SharedRunState> state;
  auto evaluation = Warm(vkb, v1, v2, &state);
  if (!evaluation.ok()) return evaluation.status();
  // Warm() covers the context and the candidate pool; the report memo
  // fills here so even measures outside the candidate pipeline are hot.
  auto reports = (*evaluation)->AllReports();
  return reports.ok() ? OkStatus() : reports.status();
}

Result<version::VersionId> RecommendationService::Commit(
    version::VersionedKnowledgeBase& vkb, version::ChangeSet changes,
    std::string author, std::string message, uint64_t timestamp) {
  auto refreshed =
      engine_.CommitAndRefresh(vkb, std::move(changes), std::move(author),
                               std::move(message), timestamp, options_.context);
  if (!refreshed.ok()) {
    // The commit is not in the history (the WAL is write-ahead: a
    // failed append mutates nothing). Flip to DEGRADED — reads keep
    // flowing from the engine's pinned last-good state, flagged.
    MarkCommitFailed(refreshed.status());
    return refreshed.status();
  }
  // The engine refresh covers the context; warm the derived layers too
  // so the next request over the head pair is a pure hit.
  auto shared = refreshed->evaluation->SharedStateFor(recommender_);
  if (!shared.ok()) {
    MarkCommitFailed(shared.status());
    return shared.status();
  }
  auto reports = refreshed->evaluation->AllReports();
  if (!reports.ok()) {
    MarkCommitFailed(reports.status());
    return reports.status();
  }
  MarkCommitSucceeded();
  return refreshed->version;
}

Result<recommend::RecommendationList> RecommendationService::Recommend(
    const version::VersionedKnowledgeBase& vkb, version::VersionId v1,
    version::VersionId v2, profile::HumanProfile& prof) {
  std::shared_ptr<const recommend::SharedRunState> state;
  bool degraded = false;
  auto evaluation = WarmOrFallback(vkb, v1, v2, &state, &degraded);
  if (!evaluation.ok()) return evaluation.status();
  auto list = recommender_.RecommendForUser(*state, prof);
  if (list.ok() && degraded) {
    list->degraded = true;
    CountDegradedServes(1);
  }
  return list;
}

Result<recommend::RecommendationList> RecommendationService::RecommendGroup(
    const version::VersionedKnowledgeBase& vkb, version::VersionId v1,
    version::VersionId v2, profile::Group& group) {
  std::shared_ptr<const recommend::SharedRunState> state;
  bool degraded = false;
  auto evaluation = WarmOrFallback(vkb, v1, v2, &state, &degraded);
  if (!evaluation.ok()) return evaluation.status();
  auto list = recommender_.RecommendForGroup(*state, group);
  if (list.ok() && degraded) {
    list->degraded = true;
    CountDegradedServes(1);
  }
  return list;
}

namespace {

// Runs `serve(i)` for every index, in parallel over `pool` when
// requested, and collects the results in input order. Every slot is
// filled (parallel runs don't short-circuit); the first error wins.
Result<std::vector<recommend::RecommendationList>> ServeAll(
    size_t n, bool parallel, ThreadPool& pool,
    const std::function<Result<recommend::RecommendationList>(size_t)>&
        serve) {
  std::vector<Result<recommend::RecommendationList>> slots(
      n, Result<recommend::RecommendationList>(
             InternalError("request not served")));
  if (parallel) {
    pool.ParallelFor(n, [&](size_t i) { slots[i] = serve(i); });
  } else {
    for (size_t i = 0; i < n; ++i) slots[i] = serve(i);
  }
  std::vector<recommend::RecommendationList> results;
  results.reserve(n);
  for (Result<recommend::RecommendationList>& slot : slots) {
    if (!slot.ok()) return slot.status();
    results.push_back(std::move(slot).value());
  }
  return results;
}

}  // namespace

Result<std::vector<recommend::RecommendationList>>
RecommendationService::RecommendBatch(
    const version::VersionedKnowledgeBase& vkb, version::VersionId v1,
    version::VersionId v2,
    const std::vector<profile::HumanProfile*>& profiles) {
  for (profile::HumanProfile* prof : profiles) {
    if (prof == nullptr) {
      return InvalidArgumentError("RecommendBatch: null profile");
    }
  }
  std::shared_ptr<const recommend::SharedRunState> state;
  bool degraded = false;
  auto evaluation = WarmOrFallback(vkb, v1, v2, &state, &degraded);
  if (!evaluation.ok()) return evaluation.status();
  // Provenance records must land in the same order as sequential
  // per-user calls would produce them, so batches with an attached
  // store stay on one thread.
  const bool parallel =
      options_.parallel_batches && provenance_ == nullptr;
  auto results =
      ServeAll(profiles.size(), parallel, engine_.pool(), [&](size_t i) {
        return recommender_.RecommendForUser(*state, *profiles[i]);
      });
  if (results.ok() && degraded) {
    for (recommend::RecommendationList& list : *results) {
      list.degraded = true;
    }
    CountDegradedServes(results->size());
  }
  return results;
}

Result<std::vector<recommend::RecommendationList>>
RecommendationService::RecommendGroupBatch(
    const version::VersionedKnowledgeBase& vkb, version::VersionId v1,
    version::VersionId v2, const std::vector<profile::Group*>& groups) {
  for (profile::Group* group : groups) {
    if (group == nullptr) {
      return InvalidArgumentError("RecommendGroupBatch: null group");
    }
  }
  std::shared_ptr<const recommend::SharedRunState> state;
  bool degraded = false;
  auto evaluation = WarmOrFallback(vkb, v1, v2, &state, &degraded);
  if (!evaluation.ok()) return evaluation.status();
  const bool parallel =
      options_.parallel_batches && provenance_ == nullptr;
  auto results =
      ServeAll(groups.size(), parallel, engine_.pool(), [&](size_t i) {
        return recommender_.RecommendForGroup(*state, *groups[i]);
      });
  if (results.ok() && degraded) {
    for (recommend::RecommendationList& list : *results) {
      list.degraded = true;
    }
    CountDegradedServes(results->size());
  }
  return results;
}

}  // namespace evorec::engine
