#ifndef EVOREC_ENGINE_RECOMMENDATION_SERVICE_H_
#define EVOREC_ENGINE_RECOMMENDATION_SERVICE_H_

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "anonymity/access_policy.h"
#include "common/deadline.h"
#include "common/env.h"
#include "common/percentile.h"
#include "common/result.h"
#include "engine/admission.h"
#include "engine/evaluation_engine.h"
#include "measures/measure_context.h"
#include "measures/registry.h"
#include "profile/group.h"
#include "profile/profile.h"
#include "provenance/store.h"
#include "recommend/recommender.h"
#include "version/kb_view.h"
#include "version/versioned_kb.h"

namespace evorec::engine {

/// The service's overload-robustness layer (engine/admission.h has the
/// primitives, docs/ARCHITECTURE.md the state diagrams). Everything
/// defaults off: an unconfigured service behaves exactly as before.
struct OverloadOptions {
  /// Run every request through the AdmissionController; shed requests
  /// return kResourceExhausted before any expensive work. Commits and
  /// group requests enter on the priority lane.
  bool admission_enabled = false;
  AdmissionOptions admission;
  /// Wrap Commit in the CircuitBreaker: after
  /// breaker.failure_threshold consecutive transient commit failures,
  /// commits fast-fail (kUnavailable) for breaker.cooldown_us instead
  /// of hammering a sick device; a half-open probe closes it again.
  /// Serving stays in the existing DEGRADED machinery throughout.
  bool breaker_enabled = false;
  BreakerOptions breaker;
  /// Hysteretic brown-out: under sustained shed pressure, serve
  /// brownout_context instead of ServiceOptions::context, flagged
  /// RecommendationList::brownout (brownout.enabled arms it).
  BrownoutOptions brownout;
  /// The declared cheaper mode served while browned out. Defaults to
  /// pivot-sampled betweenness — the knob ContextOptions already
  /// exposes with the biggest cost lever.
  measures::ContextOptions brownout_context{
      .betweenness_mode = measures::BetweennessMode::kSampled,
      .betweenness_pivots = 16};
  /// Deadline applied to requests whose RequestBudget carries none;
  /// 0 = infinite (no implicit deadline).
  uint64_t default_deadline_us = 0;
};

/// Service configuration: the recommender pipeline, the engine's
/// cache/threading, and how contexts are built.
struct ServiceOptions {
  recommend::RecommenderOptions recommender;
  EngineOptions engine;
  measures::ContextOptions context;
  /// Run the per-user stages of a batch on the engine's thread pool.
  /// Works with a provenance store attached too: each worker traces
  /// into a private scratch store and the service splices the
  /// scratches into the attached store in request order, so the audit
  /// trail is byte-identical to a sequential run.
  bool parallel_batches = true;
  /// The clock/environment behind the latency recorders, deadlines,
  /// admission control and the commit circuit breaker. nullptr means
  /// Env::Default(); tests inject a FaultInjectionEnv so time is
  /// scripted and no test ever sleeps. Must outlive the service.
  Env* env = nullptr;
  OverloadOptions overload;
};

/// The service's explicit health state machine (docs/ARCHITECTURE.md
/// has the diagram):
///
///   kHealthy --(Commit fails)--> kDegraded --(Commit succeeds)--> kHealthy
///
/// While DEGRADED the service refuses to go dark: reads that cannot be
/// served fresh fall back to the engine's pinned last-good evaluation,
/// and every result carries RecommendationList::degraded = true so
/// callers know it may be stale (consistent, but possibly reflecting
/// the last committed version rather than the requested one).
enum class HealthState {
  kHealthy,
  /// A commit failed after reaching the durable layer's retry budget;
  /// serving continues from the last-good state until a commit
  /// succeeds.
  kDegraded,
};

/// Health counters and the evidence behind the current state. The
/// rejection counters keep the failure taxonomy honest: a *shed*
/// request was refused before any work (admission), a
/// *deadline-exceeded* one was abandoned at a stage boundary, a
/// *breaker fast-fail* is a commit refused while the circuit breaker
/// is open — none of them are degraded serves (those are successful
/// answers from stale state).
struct ServiceHealth {
  HealthState state = HealthState::kHealthy;
  uint64_t failed_commits = 0;
  /// Results served with the degraded flag set.
  uint64_t degraded_serves = 0;
  /// kDegraded -> kHealthy transitions (a commit succeeded again).
  uint64_t recoveries = 0;
  /// Requests refused by admission control (kResourceExhausted),
  /// summed over causes — AdmissionStats has the per-cause split.
  uint64_t shed_requests = 0;
  /// Requests abandoned past their deadline (kDeadlineExceeded), at
  /// whichever stage boundary caught it.
  uint64_t deadline_exceeded = 0;
  /// Commits fast-failed by the open circuit breaker — the device was
  /// never touched, nothing new failed.
  uint64_t breaker_fast_fails = 0;
  /// Results served in the brown-out cheaper mode (flagged
  /// RecommendationList::brownout).
  uint64_t brownout_serves = 0;
  /// Whether brown-out is active right now.
  bool brownout_active = false;
  /// Message of the failure that caused the current (or most recent)
  /// degradation.
  std::string last_error;

  /// Multi-line operator summary (health state, rejection taxonomy,
  /// brown-out state) — what the health_monitor example prints.
  std::string ToString() const;
};

/// The serving loop of the ROADMAP's many-users vision: N users (or
/// groups) asking about one version pair share one cached
/// EvolutionContext, one memoized set of measure reports, and one
/// candidate pool; only gating, scoring, selection and explanation run
/// per user. Batches are byte-identical to sequential per-user
/// Recommend calls with the same inputs.
///
/// Thread-compatible: one service may serve concurrent callers, but
/// each HumanProfile/Group may only appear in one in-flight request at
/// a time (delivery mutates the profile's seen-history).
class RecommendationService {
 public:
  /// `registry` must outlive the service.
  explicit RecommendationService(const measures::MeasureRegistry& registry,
                                 ServiceOptions options = {});

  /// Attaches a provenance store recording every run's stages. Batches
  /// stay parallel while attached: workers trace into scratch stores
  /// that merge back in deterministic request order (see
  /// ServiceOptions::parallel_batches). Pass nullptr to detach.
  void AttachProvenance(provenance::ProvenanceStore* store);

  /// Attaches strict access rules applied before scoring. Pass nullptr
  /// to detach.
  void AttachAccessPolicy(const anonymity::AccessPolicy* policy);

  /// Recommends to one human about versions (v1, v2) of `vkb`, reusing
  /// the cached shared evaluation when warm.
  Result<recommend::RecommendationList> Recommend(
      const version::VersionedKnowledgeBase& vkb, version::VersionId v1,
      version::VersionId v2, profile::HumanProfile& prof,
      const RequestBudget& budget = {});

  /// KbView flavour — every vkb entry point below has one; serving a
  /// version::ShardedKnowledgeBase through these runs snapshot pins
  /// lock-free, so reads proceed at full fan-out while a concurrent
  /// Commit lands.
  Result<recommend::RecommendationList> Recommend(
      const version::KbView& view, version::VersionId v1,
      version::VersionId v2, profile::HumanProfile& prof,
      const RequestBudget& budget = {});

  /// Recommends one shared package to a group.
  Result<recommend::RecommendationList> RecommendGroup(
      const version::VersionedKnowledgeBase& vkb, version::VersionId v1,
      version::VersionId v2, profile::Group& group,
      const RequestBudget& budget = {});

  /// KbView flavour of RecommendGroup.
  Result<recommend::RecommendationList> RecommendGroup(
      const version::KbView& view, version::VersionId v1,
      version::VersionId v2, profile::Group& group,
      const RequestBudget& budget = {});

  /// Serves many users against one version pair: the shared evaluation
  /// is built (or fetched) once, then the per-user stages run — in
  /// parallel on the engine's pool unless a provenance store is
  /// attached or parallel_batches is off. results[i] corresponds to
  /// profiles[i]; profiles must be distinct objects. Fails on the
  /// first per-user failure.
  Result<std::vector<recommend::RecommendationList>> RecommendBatch(
      const version::VersionedKnowledgeBase& vkb, version::VersionId v1,
      version::VersionId v2,
      const std::vector<profile::HumanProfile*>& profiles,
      const RequestBudget& budget = {});

  /// KbView flavour of RecommendBatch.
  Result<std::vector<recommend::RecommendationList>> RecommendBatch(
      const version::KbView& view, version::VersionId v1,
      version::VersionId v2,
      const std::vector<profile::HumanProfile*>& profiles,
      const RequestBudget& budget = {});

  /// Group flavour of RecommendBatch.
  Result<std::vector<recommend::RecommendationList>> RecommendGroupBatch(
      const version::VersionedKnowledgeBase& vkb, version::VersionId v1,
      version::VersionId v2, const std::vector<profile::Group*>& groups,
      const RequestBudget& budget = {});

  /// KbView flavour of RecommendGroupBatch.
  Result<std::vector<recommend::RecommendationList>> RecommendGroupBatch(
      const version::KbView& view, version::VersionId v1,
      version::VersionId v2, const std::vector<profile::Group*>& groups,
      const RequestBudget& budget = {});

  /// Warm-start: pre-builds the full shared evaluation of (v1, v2) —
  /// context, every registered measure report, the recommender's
  /// shared run state — without serving anyone, so the first real
  /// request is a pure cache hit. This is the restart story's second
  /// half: version::RecoverFromDisk restores a KB with its original
  /// content fingerprints, so the keys warmed here are the exact keys
  /// the pre-restart process was serving under.
  Status WarmStart(const version::VersionedKnowledgeBase& vkb,
                   version::VersionId v1, version::VersionId v2);

  /// KbView flavour of WarmStart.
  Status WarmStart(const version::KbView& view, version::VersionId v1,
                   version::VersionId v2);

  /// The serving loop's write path: commits `changes` to `vkb` and
  /// incrementally refreshes the engine so the head transition is warm
  /// — context, every measure report, and the recommender's shared run
  /// state — before this returns. Requests racing the refresh simply
  /// coalesce with it. Safe to call while other threads serve through
  /// this service (one committer at a time); returns the new head id.
  ///
  /// Health coupling: a failure here (the WAL append exhausted its
  /// retries, the refresh broke, …) flips the service to
  /// HealthState::kDegraded — the commit is not in the history, the
  /// engine's pinned last-good state keeps serving — and the next
  /// successful Commit flips it back to kHealthy.
  Result<version::VersionId> Commit(version::VersionedKnowledgeBase& vkb,
                                    version::ChangeSet changes,
                                    std::string author, std::string message,
                                    uint64_t timestamp = 0,
                                    const RequestBudget& budget = {});

  /// KbView flavour of Commit. With an internally synchronised view
  /// (a ShardedKnowledgeBase) the commit never takes the engine's vkb
  /// lock, so concurrent reads through this service keep flowing
  /// while it lands.
  Result<version::VersionId> Commit(version::KbView& view,
                                    version::ChangeSet changes,
                                    std::string author, std::string message,
                                    uint64_t timestamp = 0,
                                    const RequestBudget& budget = {});

  /// Snapshot of the current health state and counters. Thread-safe.
  ServiceHealth health() const;
  HealthState health_state() const { return health().state; }

  /// Per-request latency recorders on the serving path (E16). Every
  /// successful read entry point records one sample per served request
  /// — a batch of n profiles records n samples of the batch's wall
  /// time, because that is when each of its requests completed — and
  /// every successful Commit records one sample. Recording is a
  /// relaxed atomic increment, safe under full concurrent fan-out;
  /// failed requests are not recorded (they are counted by health()).
  const LatencyRecorder& read_latency() const { return read_latency_; }
  const LatencyRecorder& commit_latency() const { return commit_latency_; }
  void ResetLatency() {
    read_latency_.Reset();
    commit_latency_.Reset();
  }

  EvaluationEngine& engine() { return engine_; }
  const recommend::Recommender& recommender() const { return recommender_; }
  EngineStats engine_stats() const { return engine_.stats(); }
  const ServiceOptions& options() const { return options_; }

  /// Overload-control observability (zeros while the corresponding
  /// feature is disabled). Thread-safe.
  AdmissionStats admission_stats() const { return admission_.stats(); }
  BreakerStats breaker_stats() const { return breaker_.stats(); }
  BrownoutStats brownout_stats() const { return brownout_.stats(); }

  /// The clock everything here runs on (ServiceOptions::env, or
  /// Env::Default()).
  Env* env() const { return env_; }

 private:
  Result<std::shared_ptr<const SharedEvaluation>> Warm(
      const version::KbView& view, version::VersionId v1,
      version::VersionId v2, const measures::ContextOptions& context,
      std::shared_ptr<const recommend::SharedRunState>* state);

  /// Warm(), plus the degraded-mode fallback: when Warm fails *and*
  /// the service is already degraded, serve the engine's pinned
  /// last-good evaluation instead of going dark. Healthy-state errors
  /// (e.g. a genuinely invalid version id) propagate unchanged — the
  /// fallback only masks failures the degradation already explains.
  /// `degraded` reports whether results must carry the flag.
  Result<std::shared_ptr<const SharedEvaluation>> WarmOrFallback(
      const version::KbView& view, version::VersionId v1,
      version::VersionId v2, const measures::ContextOptions& context,
      std::shared_ptr<const recommend::SharedRunState>* state,
      bool* degraded);

  /// Admission front door shared by every entry point: no-op Ticket
  /// when admission is disabled; on shed, counts `n` shed requests,
  /// feeds the brown-out pressure signal, and returns the
  /// kResourceExhausted error.
  Result<AdmissionController::Ticket> AdmitOrShed(AdmissionLane lane,
                                                  const RequestBudget& budget,
                                                  uint64_t n);

  /// Resolves the effective deadline: the budget's own, or a fresh one
  /// from OverloadOptions::default_deadline_us when the budget carries
  /// none.
  Deadline EffectiveDeadline(const RequestBudget& budget) const;

  /// Deadline check at a stage boundary; counts `n` abandoned requests
  /// in health() when expired.
  Status CheckDeadline(const Deadline& deadline, std::string_view stage,
                       uint64_t n);

  /// Picks the context options for this serve: the brown-out cheaper
  /// mode while browned out, ServiceOptions::context otherwise.
  /// `brownout` reports which one, so results get flagged.
  const measures::ContextOptions& PickContext(bool* brownout);

  void CountBrownoutServes(uint64_t n);

  /// Splices per-request scratch provenance stores into the attached
  /// store in request order, rebasing record ids — byte-identical to
  /// tracing the requests sequentially in-place. Returns each
  /// request's id base (what to add to its scratch-relative ids).
  std::vector<provenance::RecordId> MergeScratchTraces(
      std::vector<provenance::ProvenanceStore>& scratch);

  void MarkCommitFailed(const Status& status);
  void MarkCommitSucceeded();
  void CountDegradedServes(uint64_t n);

  ServiceOptions options_;
  Env* env_;  ///< options_.env, or Env::Default(); never nullptr
  EvaluationEngine engine_;
  recommend::Recommender recommender_;
  provenance::ProvenanceStore* provenance_ = nullptr;
  AdmissionController admission_;
  CircuitBreaker breaker_;
  BrownoutController brownout_;
  mutable std::mutex health_mu_;
  ServiceHealth health_;
  LatencyRecorder read_latency_;
  LatencyRecorder commit_latency_;
};

}  // namespace evorec::engine

#endif  // EVOREC_ENGINE_RECOMMENDATION_SERVICE_H_
