#ifndef EVOREC_ENGINE_EVALUATION_ENGINE_H_
#define EVOREC_ENGINE_EVALUATION_ENGINE_H_

#include <cstdint>
#include <future>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/thread_pool.h"
#include "engine/artefact_cache.h"
#include "measures/evaluation.h"
#include "measures/measure_context.h"
#include "measures/registry.h"
#include "measures/timeline.h"
#include "recommend/recommender.h"
#include "version/kb_view.h"
#include "version/versioned_kb.h"

namespace evorec::engine {

/// Cache key of one shared evaluation: the content fingerprints of
/// both snapshots plus the context options. Handles with equal
/// fingerprints denote snapshots with identical content and TermId
/// mapping (see version::SnapshotHandle), so equal keys imply
/// interchangeable contexts — including across distinct
/// VersionedKnowledgeBase instances with identical histories.
struct ContextKey {
  uint64_t before_fingerprint = 0;
  uint64_t after_fingerprint = 0;
  measures::ContextOptions options;

  friend bool operator==(const ContextKey& a, const ContextKey& b) {
    return a.before_fingerprint == b.before_fingerprint &&
           a.after_fingerprint == b.after_fingerprint &&
           a.options == b.options;
  }
};

struct ContextKeyHash {
  size_t operator()(const ContextKey& key) const;
};

/// Engine configuration.
struct EngineOptions {
  /// Max contexts kept warm (least-recently-used eviction).
  size_t context_cache_capacity = 16;
  /// Max per-version artefact bundles kept warm (snapshot + schema
  /// view + schema graph + betweenness). Versions are smaller than
  /// contexts and shared across pairs, so this defaults higher.
  size_t artefact_cache_capacity = 64;
  /// Worker threads for parallel measure evaluation, batched serving,
  /// and the chunked parallel Brandes passes of cold context builds;
  /// 0 means ThreadPool::DefaultThreadCount().
  size_t threads = 0;
  /// Incremental-refresh fallback knob: when a commit's affected-source
  /// frontier exceeds this fraction of the schema graph, Refresh runs a
  /// full Brandes recompute instead of advancing (advancing would do
  /// comparable work with extra bookkeeping). Results are bit-identical
  /// either way — deliberately an EngineOptions field, not a
  /// ContextOptions one, so it never enters a cache key.
  double refresh_churn_threshold = 0.5;
};

/// Counters exposing the engine's cache behaviour. "Redundant context
/// builds" are exactly `contexts_built - distinct keys requested`:
/// serving any number of users over one warm pair must keep
/// contexts_built at 1.
struct EngineStats {
  uint64_t context_hits = 0;       ///< served from the LRU cache
  uint64_t context_misses = 0;     ///< triggered a build
  uint64_t contexts_built = 0;     ///< EvolutionContext::Build actually ran
  uint64_t context_coalesced = 0;  ///< joined a concurrent in-flight build
  uint64_t context_evictions = 0;  ///< LRU evictions
  uint64_t contexts_refreshed = 0; ///< built via the incremental path
};

/// One cached evaluation unit: the shared EvolutionContext of a
/// version pair plus the memo of everything derived from it — measure
/// reports (per name, single-flight) and the recommender's shared run
/// state (per pipeline configuration). Immutable from the caller's
/// perspective; all lazy state is thread-safe. Handed out as
/// shared_ptr<const>, so it survives cache eviction while in use —
/// but it borrows the owning engine's registry and thread pool, so it
/// must not outlive the EvaluationEngine that produced it.
class SharedEvaluation {
 public:
  explicit SharedEvaluation(measures::EvolutionContext ctx,
                            const measures::MeasureRegistry& registry,
                            ThreadPool* pool);

  const measures::EvolutionContext& context() const { return ctx_; }

  /// Memoized report of the registered measure `name` over this
  /// context.
  Result<std::shared_ptr<const measures::MeasureReport>> Report(
      std::string_view name) const;

  /// Memoized reports of every registered measure (registration
  /// order), evaluating uncached ones — in parallel when the engine
  /// has a pool.
  Result<std::vector<std::shared_ptr<const measures::MeasureReport>>>
  AllReports() const;

  /// Memoized user-independent run state of `rec` (candidate pool,
  /// pre-normalised reports, diversity distance matrix) over this
  /// context, built from the memoized reports. Keyed by everything the
  /// state depends on — the recommender's registry, its candidate
  /// options, and its diversity kind — single-flight.
  Result<std::shared_ptr<const recommend::SharedRunState>> SharedStateFor(
      const recommend::Recommender& rec) const;

  measures::ReportCacheStats report_stats() const {
    return reports_.stats();
  }

 private:
  using SharedState = std::shared_ptr<const recommend::SharedRunState>;

  /// Everything a SharedRunState's content depends on.
  struct StateKey {
    const measures::MeasureRegistry* registry = nullptr;
    size_t top_k = 0;
    bool per_region = false;
    size_t max_regions = 0;
    recommend::DiversityKind diversity = recommend::DiversityKind::kContent;

    friend bool operator==(const StateKey&, const StateKey&) = default;
  };
  struct StateKeyHash {
    size_t operator()(const StateKey& key) const;
  };

  measures::EvolutionContext ctx_;
  const measures::MeasureRegistry& registry_;
  ThreadPool* pool_;
  mutable measures::ReportCache reports_;
  mutable std::mutex states_mu_;
  mutable std::unordered_map<StateKey,
                             std::shared_future<Result<SharedState>>,
                             StateKeyHash>
      states_;
};

/// The shared evaluation engine: owns an LRU cache of
/// SharedEvaluations keyed by (before, after, options) and the thread
/// pool driving parallel work. Thread-safe; concurrent requests for
/// the same missing key coalesce into one build (single-flight), and
/// snapshot materialisation is serialised internally (the versioned
/// KB's lazy caches are not thread-safe). Route all concurrent access
/// to one VersionedKnowledgeBase through one engine; commits that
/// should interleave with in-flight requests must likewise go through
/// the engine (CommitAndRefresh), which serialises every vkb touch —
/// reads and writes — under one internal lock.
///
/// Every entry point also has a version::KbView overload, and the
/// engine's internal lock is taken only for views that are not
/// internally synchronised. Serving a
/// version::ShardedKnowledgeBase therefore runs its snapshot pins
/// lock-free through the engine: readers never block on a concurrent
/// CommitAndRefresh.
class EvaluationEngine {
 public:
  /// `registry` must outlive the engine.
  explicit EvaluationEngine(const measures::MeasureRegistry& registry,
                            EngineOptions options = {});

  /// The shared evaluation of versions (v1, v2) of `vkb`, built on
  /// first request and cached under its snapshot fingerprints. The
  /// returned evaluation stays valid across eviction but must be
  /// dropped before the engine is destroyed.
  Result<std::shared_ptr<const SharedEvaluation>> Evaluate(
      const version::VersionedKnowledgeBase& vkb, version::VersionId v1,
      version::VersionId v2, measures::ContextOptions context_options = {});

  /// KbView flavour of Evaluate — the shape every other overload
  /// funnels into. `view` only needs to live for the duration of the
  /// call (builds run synchronously on the calling thread).
  Result<std::shared_ptr<const SharedEvaluation>> Evaluate(
      const version::KbView& view, version::VersionId v1,
      version::VersionId v2, measures::ContextOptions context_options = {});

  /// Outcome of an incremental refresh: the version refreshed to and
  /// the (now cached) shared evaluation of its head transition.
  struct RefreshResult {
    version::VersionId version = 0;
    std::shared_ptr<const SharedEvaluation> evaluation;
  };

  /// Incrementally refreshes the caches to `vkb`'s current head: the
  /// head version's artefacts advance from its predecessor's (the
  /// betweenness update re-runs only chunks the commit's
  /// affected-source frontier reaches; see refresh_churn_threshold),
  /// the pair delta derives from the commit's archived ChangeSet in
  /// O(|δ|), and the delta index advances from the preceding pair's
  /// when it is warm. The resulting (head−1, head) evaluation is
  /// cached under the same key — and is bit-identical to the one
  /// Evaluate would have built cold.
  Result<RefreshResult> Refresh(const version::VersionedKnowledgeBase& vkb,
                                measures::ContextOptions context_options = {});

  /// KbView flavour of Refresh.
  Result<RefreshResult> Refresh(const version::KbView& view,
                                measures::ContextOptions context_options = {});

  /// The serving loop's write path: commits `changes` to `vkb` and
  /// refreshes in one step. All vkb access (the commit included) runs
  /// under the engine's internal lock, so this is safe to call while
  /// other threads serve requests through the same engine — one
  /// committer at a time.
  Result<RefreshResult> CommitAndRefresh(
      version::VersionedKnowledgeBase& vkb, version::ChangeSet changes,
      std::string author, std::string message, uint64_t timestamp = 0,
      measures::ContextOptions context_options = {});

  /// KbView flavour of CommitAndRefresh. For an internally
  /// synchronised view (a ShardedKnowledgeBase) the commit runs
  /// without the engine's vkb lock, so in-flight reads keep flowing
  /// while it lands — the view's own publish point is the only
  /// synchronisation between them.
  Result<RefreshResult> CommitAndRefresh(
      version::KbView& view, version::ChangeSet changes, std::string author,
      std::string message, uint64_t timestamp = 0,
      measures::ContextOptions context_options = {});

  /// The most recent successful Refresh/CommitAndRefresh outcome,
  /// pinned independently of cache eviction — the stale-but-consistent
  /// state the service serves (flagged) while a failed commit has it
  /// in the DEGRADED health state. Empty until the first refresh.
  std::optional<RefreshResult> LastGoodRefresh() const;

  /// The timeline of the registered measure `measure` over every
  /// consecutive version pair of `vkb` in [first, last] — the fast
  /// cold chain walk: every context is served through the engine's
  /// caches, so each version's snapshot, schema view, schema graph
  /// and betweenness are built exactly once (K builds for a K-version
  /// chain; the pair-keyed EvolutionTimeline::Compute performs
  /// 2·(K−1)), and reports of already-warm transitions are reused
  /// outright.
  Result<measures::EvolutionTimeline> Timeline(
      const version::VersionedKnowledgeBase& vkb, std::string_view measure,
      version::VersionId first = 0, version::VersionId last = UINT32_MAX,
      measures::ContextOptions context_options = {});

  /// KbView flavour of Timeline.
  Result<measures::EvolutionTimeline> Timeline(
      const version::KbView& view, std::string_view measure,
      version::VersionId first = 0, version::VersionId last = UINT32_MAX,
      measures::ContextOptions context_options = {});

  /// Drops every cached evaluation and artefact (in-flight builds
  /// finish normally).
  void Clear();

  EngineStats stats() const;
  ArtefactCacheStats artefact_stats() const { return artefacts_.stats(); }
  IncrementalStats incremental_stats() const {
    return artefacts_.incremental_stats();
  }
  size_t cached_contexts() const;
  ThreadPool& pool() { return pool_; }
  const measures::MeasureRegistry& registry() const { return registry_; }
  const EngineOptions& options() const { return options_; }

 private:
  using SharedEval = std::shared_ptr<const SharedEvaluation>;

  /// Shared single-flight LRU machinery of Evaluate and Refresh:
  /// serves `key` from the cache or in-flight build, otherwise runs
  /// `build_context` (outside the engine lock) and installs the
  /// result. `refreshed` marks builds that took the incremental path
  /// (for EngineStats::contexts_refreshed).
  Result<SharedEval> GetOrBuild(
      const ContextKey& key,
      const std::function<Result<measures::EvolutionContext>()>& build_context,
      bool refreshed);

  /// Cache-peek (no LRU touch) of the evaluation under `key`.
  SharedEval Peek(const ContextKey& key) const;

  /// The engine's vkb lock when `view` needs external serialisation,
  /// an empty (unlocked) guard when the view synchronises itself —
  /// the single switch that lets sharded readers bypass the lock.
  std::unique_lock<std::mutex> LockIfExternal(const version::KbView& view);

  const measures::MeasureRegistry& registry_;
  EngineOptions options_;
  ThreadPool pool_;
  // Per-version artefacts shared across pair contexts (keyed by
  // snapshot content fingerprint, not pair).
  ArtefactCache artefacts_;

  mutable std::mutex mu_;
  // Serialises snapshot materialisation: the versioned KB's lazy
  // snapshot cache is not thread-safe, and distinct-key builds may
  // target one vkb concurrently. Only the snapshot copy runs under
  // this lock — the expensive context build does not.
  std::mutex vkb_mu_;
  // LRU: most-recent at the front; lookup_ points into lru_.
  std::list<std::pair<ContextKey, SharedEval>> lru_;
  std::unordered_map<ContextKey,
                     std::list<std::pair<ContextKey, SharedEval>>::iterator,
                     ContextKeyHash>
      lookup_;
  std::unordered_map<ContextKey, std::shared_future<Result<SharedEval>>,
                     ContextKeyHash>
      inflight_;
  EngineStats stats_;
  /// Last successful refresh, pinned for degraded-mode serving.
  std::optional<RefreshResult> last_good_;
};

}  // namespace evorec::engine

#endif  // EVOREC_ENGINE_EVALUATION_ENGINE_H_
