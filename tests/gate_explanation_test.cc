// Focused coverage for the anonymity gate, explanations and group
// selection plumbing of the recommend module.

#include <gtest/gtest.h>

#include "recommend/anonymity_gate.h"
#include "recommend/explanation.h"
#include "recommend/group_recommender.h"
#include "rdf/knowledge_base.h"

namespace evorec::recommend {
namespace {

MeasureCandidate MakeCandidate(const std::string& name,
                               std::vector<rdf::TermId> terms,
                               rdf::TermId focus = rdf::kAnyTerm) {
  MeasureCandidate c;
  c.measure.name = name;
  c.measure.description = "test measure " + name;
  c.measure.category = measures::MeasureCategory::kCount;
  c.region_label = focus == rdf::kAnyTerm ? "all" : "region";
  c.id = name + "@" + c.region_label;
  c.focus = focus;
  for (size_t i = 0; i < terms.size(); ++i) {
    c.report.Add(terms[i], static_cast<double>(terms.size() - i));
  }
  c.top_terms = std::move(terms);
  return c;
}

TEST(AnonymityGateTest, NullPolicyPassesThrough) {
  std::vector<MeasureCandidate> pool = {MakeCandidate("m1", {1, 2, 3})};
  const GateOutcome outcome =
      ApplyAccessGate(nullptr, "anyone", std::move(pool), 10);
  EXPECT_EQ(outcome.candidates.size(), 1u);
  EXPECT_EQ(outcome.redacted_terms, 0u);
  EXPECT_EQ(outcome.dropped_candidates, 0u);
}

TEST(AnonymityGateTest, RedactsSensitiveTermsAndRecomputesTop) {
  anonymity::AccessPolicy policy;
  policy.MarkSensitive(1);  // the top term of the candidate
  std::vector<MeasureCandidate> pool = {MakeCandidate("m1", {1, 2, 3})};
  const GateOutcome outcome =
      ApplyAccessGate(&policy, "bob", std::move(pool), 10);
  ASSERT_EQ(outcome.candidates.size(), 1u);
  EXPECT_EQ(outcome.redacted_terms, 1u);
  // Term 1 is gone from both report and top_terms; 2 leads now.
  const MeasureCandidate& gated = outcome.candidates[0];
  EXPECT_DOUBLE_EQ(gated.report.ScoreOf(1), 0.0);
  ASSERT_FALSE(gated.top_terms.empty());
  EXPECT_EQ(gated.top_terms[0], 2u);
}

TEST(AnonymityGateTest, DropsFullyRedactedCandidates) {
  anonymity::AccessPolicy policy;
  policy.MarkSensitive(1);
  policy.MarkSensitive(2);
  std::vector<MeasureCandidate> pool = {MakeCandidate("m1", {1, 2}),
                                        MakeCandidate("m2", {3})};
  const GateOutcome outcome =
      ApplyAccessGate(&policy, "bob", std::move(pool), 10);
  EXPECT_EQ(outcome.candidates.size(), 1u);
  EXPECT_EQ(outcome.dropped_candidates, 1u);
  EXPECT_EQ(outcome.candidates[0].measure.name, "m2");
}

TEST(AnonymityGateTest, DropsCandidatesWithDeniedFocus) {
  anonymity::AccessPolicy policy;
  policy.MarkSensitive(7);
  // The candidate's report is public but its focus region is not.
  std::vector<MeasureCandidate> pool = {
      MakeCandidate("m1", {1, 2}, /*focus=*/7)};
  const GateOutcome outcome =
      ApplyAccessGate(&policy, "bob", std::move(pool), 10);
  EXPECT_TRUE(outcome.candidates.empty());
  EXPECT_EQ(outcome.dropped_candidates, 1u);
  // A granted agent keeps it.
  policy.Grant("ann", 7);
  std::vector<MeasureCandidate> pool2 = {
      MakeCandidate("m1", {1, 2}, /*focus=*/7)};
  const GateOutcome granted =
      ApplyAccessGate(&policy, "ann", std::move(pool2), 10);
  EXPECT_EQ(granted.candidates.size(), 1u);
}

// ------------------------------------------------------- Explanation

TEST(ExplanationTest, CarriesMeasureStoryAndMatches) {
  rdf::KnowledgeBase before;
  const rdf::TermId cls = before.DeclareClass("http://x/Thing");
  rdf::KnowledgeBase after = before;
  after.AddIriTriple("http://x/i",
                     "http://www.w3.org/1999/02/22-rdf-syntax-ns#type",
                     "http://x/Thing");
  auto ctx = measures::EvolutionContext::Build(before, after);
  ASSERT_TRUE(ctx.ok());
  RelatednessScorer scorer(*ctx, {});
  profile::HumanProfile user("u");
  user.SetInterest(cls, 1.0);

  const MeasureCandidate candidate = MakeCandidate("test_measure", {cls});
  const Explanation e =
      BuildExplanation(candidate, user, scorer, before.dictionary());
  EXPECT_EQ(e.measure_name, "test_measure");
  EXPECT_GT(e.relatedness, 0.0);
  ASSERT_EQ(e.top_affected.size(), 1u);
  EXPECT_EQ(e.top_affected[0], "http://x/Thing");
  ASSERT_EQ(e.matched_interests.size(), 1u);
  EXPECT_EQ(e.matched_interests[0], "http://x/Thing");

  const std::string text = e.ToText();
  EXPECT_NE(text.find("test_measure"), std::string::npos);
  EXPECT_NE(text.find("http://x/Thing"), std::string::npos);
  EXPECT_NE(text.find("matches your interests"), std::string::npos);
}

TEST(ExplanationTest, ProvenancePointerRendersWhenPresent) {
  Explanation e;
  e.measure_name = "m";
  e.measure_description = "d";
  e.category = "count";
  e.region_label = "all";
  EXPECT_EQ(e.ToText().find("provenance record"), std::string::npos);
  e.has_provenance = true;
  e.provenance_record = 42;
  EXPECT_NE(e.ToText().find("provenance record #42"), std::string::npos);
}

// -------------------------------------------------- group selection

TEST(GroupSelectionTest, UtilityMatrixDimensions) {
  rdf::KnowledgeBase before;
  const rdf::TermId cls = before.DeclareClass("http://x/A");
  rdf::KnowledgeBase after = before;
  after.AddIriTriple("http://x/i",
                     "http://www.w3.org/1999/02/22-rdf-syntax-ns#type",
                     "http://x/A");
  auto ctx = measures::EvolutionContext::Build(before, after);
  ASSERT_TRUE(ctx.ok());
  RelatednessScorer scorer(*ctx, {});

  profile::Group group("g");
  profile::HumanProfile fan("fan");
  fan.SetInterest(cls, 1.0);
  group.AddMember(fan);
  group.AddMember(profile::HumanProfile("stranger"));

  std::vector<MeasureCandidate> pool = {MakeCandidate("m1", {cls}),
                                        MakeCandidate("m2", {cls + 100})};
  const UtilityMatrix utilities = BuildUtilityMatrix(pool, group, scorer);
  ASSERT_EQ(utilities.size(), 2u);
  ASSERT_EQ(utilities[0].size(), 2u);
  // The fan values the cls-candidate; the stranger values nothing.
  EXPECT_GT(utilities[0][0], 0.0);
  EXPECT_DOUBLE_EQ(utilities[1][0], 0.0);
  EXPECT_DOUBLE_EQ(utilities[1][1], 0.0);
}

TEST(GroupSelectionTest, SelectForGroupReportsDiagnostics) {
  rdf::KnowledgeBase before;
  const rdf::TermId a = before.DeclareClass("http://x/A");
  const rdf::TermId b = before.DeclareClass("http://x/B");
  rdf::KnowledgeBase after = before;
  after.AddIriTriple("http://x/i",
                     "http://www.w3.org/1999/02/22-rdf-syntax-ns#type",
                     "http://x/A");
  auto ctx = measures::EvolutionContext::Build(before, after);
  ASSERT_TRUE(ctx.ok());
  RelatednessScorer scorer(*ctx, {});

  profile::Group group("g");
  profile::HumanProfile fan_a("fa");
  fan_a.SetInterest(a, 1.0);
  profile::HumanProfile fan_b("fb");
  fan_b.SetInterest(b, 1.0);
  group.AddMember(fan_a);
  group.AddMember(fan_b);

  std::vector<MeasureCandidate> pool = {MakeCandidate("ma", {a}),
                                        MakeCandidate("mb", {b}),
                                        MakeCandidate("mc", {a, b})};
  GroupSelectOptions options;
  options.package_size = 2;
  options.fairness_aware = true;
  options.diversify = false;
  const GroupSelection selection =
      SelectForGroup(pool, group, scorer, options);
  EXPECT_EQ(selection.selection.size(), 2u);
  EXPECT_EQ(selection.fairness.satisfaction.size(), 2u);
  // A fair package serves both fans.
  EXPECT_GT(selection.fairness.min_satisfaction, 0.0);
  EXPECT_GE(selection.set_diversity, 0.0);
  // Empty pool / empty group degenerate gracefully.
  const GroupSelection empty_pool =
      SelectForGroup({}, group, scorer, options);
  EXPECT_TRUE(empty_pool.selection.empty());
  profile::Group empty_group("e");
  const GroupSelection no_members =
      SelectForGroup(pool, empty_group, scorer, options);
  EXPECT_TRUE(no_members.selection.empty());
}

}  // namespace
}  // namespace evorec::recommend
