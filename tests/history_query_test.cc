#include "version/history_query.h"

#include <gtest/gtest.h>

namespace evorec::version {
namespace {

using rdf::Triple;

// History over a single triple T:
//   v0: absent, v1: present, v2: present, v3: absent (retracted),
//   v4: present again (re-asserted).
struct HistoryFixture {
  VersionedKnowledgeBase vkb;
  Triple t{1, 2, 3};

  explicit HistoryFixture(
      ArchivePolicy policy = ArchivePolicy::kFullMaterialization)
      : vkb(policy) {
    ChangeSet add;
    add.additions = {t};
    ChangeSet remove;
    remove.removals = {t};
    (void)vkb.Commit(add, "a", "v1: assert");
    (void)vkb.Commit(ChangeSet{}, "a", "v2: unrelated");
    (void)vkb.Commit(remove, "a", "v3: retract");
    (void)vkb.Commit(add, "a", "v4: re-assert");
  }
};

class HistoryQueryTest : public ::testing::TestWithParam<ArchivePolicy> {};

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, HistoryQueryTest,
    ::testing::Values(ArchivePolicy::kFullMaterialization,
                      ArchivePolicy::kDeltaChain,
                      ArchivePolicy::kHybridCheckpoint),
    [](const auto& param_info) {
      switch (param_info.param) {
        case ArchivePolicy::kFullMaterialization:
          return "Full";
        case ArchivePolicy::kDeltaChain:
          return "DeltaChain";
        case ArchivePolicy::kHybridCheckpoint:
          return "Hybrid";
      }
      return "Unknown";
    });

TEST_P(HistoryQueryTest, FirstAddedAndRemoved) {
  HistoryFixture f(GetParam());
  HistoryQuery query(f.vkb);
  auto added = query.FirstAdded(f.t);
  ASSERT_TRUE(added.ok());
  ASSERT_TRUE(added->has_value());
  EXPECT_EQ(**added, 1u);

  auto removed = query.FirstRemoved(f.t);
  ASSERT_TRUE(removed.ok());
  ASSERT_TRUE(removed->has_value());
  EXPECT_EQ(**removed, 3u);

  // A triple never present.
  auto never = query.FirstAdded({9, 9, 9});
  ASSERT_TRUE(never.ok());
  EXPECT_FALSE(never->has_value());
  auto never_removed = query.FirstRemoved({9, 9, 9});
  ASSERT_TRUE(never_removed.ok());
  EXPECT_FALSE(never_removed->has_value());
}

TEST_P(HistoryQueryTest, LiveRangesTrackRetractionAndReassertion) {
  HistoryFixture f(GetParam());
  HistoryQuery query(f.vkb);
  auto ranges = query.LiveRanges(f.t);
  ASSERT_TRUE(ranges.ok());
  ASSERT_EQ(ranges->size(), 2u);
  EXPECT_EQ((*ranges)[0], (HistoryQuery::LiveRange{1, 2}));
  EXPECT_EQ((*ranges)[1], (HistoryQuery::LiveRange{4, 4}));

  auto empty = query.LiveRanges({9, 9, 9});
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->empty());
}

TEST_P(HistoryQueryTest, AsOfQueriesSnapshots) {
  HistoryFixture f(GetParam());
  HistoryQuery query(f.vkb);
  auto at_v0 = query.AsOf(0, {rdf::kAnyTerm, rdf::kAnyTerm, rdf::kAnyTerm});
  ASSERT_TRUE(at_v0.ok());
  EXPECT_TRUE(at_v0->empty());
  auto at_v2 = query.AsOf(2, {1, rdf::kAnyTerm, rdf::kAnyTerm});
  ASSERT_TRUE(at_v2.ok());
  EXPECT_EQ(at_v2->size(), 1u);
  EXPECT_FALSE(query.AsOf(99, {}).ok());
}

TEST_P(HistoryQueryTest, VersionsMatching) {
  HistoryFixture f(GetParam());
  HistoryQuery query(f.vkb);
  auto versions =
      query.VersionsMatching({1, rdf::kAnyTerm, rdf::kAnyTerm});
  ASSERT_TRUE(versions.ok());
  EXPECT_EQ(*versions, (std::vector<VersionId>{1, 2, 4}));
}

TEST_P(HistoryQueryTest, SubjectFootprintHistory) {
  HistoryFixture f(GetParam());
  // Add a second triple for subject 1 at v4 only.
  // (Extend the fixture history: v5 adds {1,7,8}.)
  ChangeSet extra;
  extra.additions = {{1, 7, 8}};
  (void)f.vkb.Commit(extra, "a", "v5");
  HistoryQuery query(f.vkb);
  auto footprint = query.SubjectFootprintHistory(1);
  ASSERT_TRUE(footprint.ok());
  EXPECT_EQ(*footprint, (std::vector<size_t>{0, 1, 1, 0, 1, 2}));
}

}  // namespace
}  // namespace evorec::version
