// Determinism suite for the parallel Brandes path: the ThreadPool
// overloads of BetweennessExact/BetweennessSampled must be
// bit-identical to the serial path for every pool size and graph
// shape — the contract that lets the engine parallelise cold context
// builds without perturbing any cached or recorded score.

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "common/random.h"
#include "common/thread_pool.h"
#include "graph/betweenness.h"
#include "graph/graph.h"

namespace evorec::graph {
namespace {

Graph Path(size_t n) {
  std::vector<std::pair<NodeId, NodeId>> edges;
  for (NodeId i = 0; i + 1 < n; ++i) edges.emplace_back(i, i + 1);
  return Graph::FromEdges(n, std::move(edges));
}

Graph Star(size_t leaves) {
  std::vector<std::pair<NodeId, NodeId>> edges;
  for (NodeId i = 1; i <= leaves; ++i) edges.emplace_back(0, i);
  return Graph::FromEdges(leaves + 1, std::move(edges));
}

// Two cliques joined by a bridge plus isolated nodes — multiple
// shortest paths (non-dyadic sigma ratios), so any reduction-order
// difference would actually show up in the low bits.
Graph Tangled() {
  std::vector<std::pair<NodeId, NodeId>> edges;
  for (NodeId i = 0; i < 6; ++i) {
    for (NodeId j = i + 1; j < 6; ++j) edges.emplace_back(i, j);
  }
  for (NodeId i = 7; i < 13; ++i) {
    for (NodeId j = i + 1; j < 13; ++j) edges.emplace_back(i, j);
  }
  edges.emplace_back(5, 6);
  edges.emplace_back(6, 7);
  edges.emplace_back(0, 7);  // second route between the cliques
  return Graph::FromEdges(16, std::move(edges));  // 13..15 isolated
}

Graph Disconnected() {
  return Graph::FromEdges(9, {{0, 1}, {1, 2}, {2, 0}, {4, 5}, {5, 6}});
}

// Random sparse graph, deterministic from `seed`.
Graph RandomGraph(size_t n, size_t m, uint64_t seed) {
  Rng rng(seed);
  std::vector<std::pair<NodeId, NodeId>> edges;
  edges.reserve(m);
  for (size_t e = 0; e < m; ++e) {
    const auto a = static_cast<NodeId>(
        rng.UniformInt(0, static_cast<int64_t>(n) - 1));
    const auto b = static_cast<NodeId>(
        rng.UniformInt(0, static_cast<int64_t>(n) - 1));
    edges.emplace_back(a, b);
  }
  return Graph::FromEdges(n, std::move(edges));
}

std::vector<Graph> Shapes() {
  std::vector<Graph> shapes;
  shapes.push_back(Graph());        // empty
  shapes.push_back(Path(1));        // single node
  shapes.push_back(Path(16));
  shapes.push_back(Star(9));
  shapes.push_back(Disconnected());
  shapes.push_back(Tangled());
  shapes.push_back(RandomGraph(64, 160, 17));
  shapes.push_back(RandomGraph(100, 90, 23));  // fragmented
  return shapes;
}

void ExpectBitIdentical(const std::vector<double>& expected,
                        const std::vector<double>& actual,
                        const std::string& label) {
  ASSERT_EQ(expected.size(), actual.size()) << label;
  for (size_t i = 0; i < expected.size(); ++i) {
    // memcmp, not ==: the contract is the bit pattern, not tolerance.
    EXPECT_EQ(std::memcmp(&expected[i], &actual[i], sizeof(double)), 0)
        << label << " node " << i << ": " << expected[i]
        << " != " << actual[i];
  }
}

TEST(ParallelBrandesTest, ExactBitIdenticalAcrossPoolSizes) {
  const std::vector<Graph> shapes = Shapes();
  for (size_t s = 0; s < shapes.size(); ++s) {
    const std::vector<double> serial = BetweennessExact(shapes[s]);
    for (size_t threads : {1u, 2u, 8u}) {
      ThreadPool pool(threads);
      const std::vector<double> parallel =
          BetweennessExact(shapes[s], &pool);
      ExpectBitIdentical(serial, parallel,
                         "shape " + std::to_string(s) + " pool " +
                             std::to_string(threads));
    }
  }
}

TEST(ParallelBrandesTest, SampledBitIdenticalAcrossPoolSizes) {
  const std::vector<Graph> shapes = Shapes();
  for (size_t s = 0; s < shapes.size(); ++s) {
    for (size_t pivots : {4u, 32u}) {
      Rng serial_rng(99);
      const std::vector<double> serial =
          BetweennessSampled(shapes[s], pivots, serial_rng);
      for (size_t threads : {1u, 2u, 8u}) {
        ThreadPool pool(threads);
        Rng rng(99);
        const std::vector<double> parallel =
            BetweennessSampled(shapes[s], pivots, rng, &pool);
        ExpectBitIdentical(serial, parallel,
                           "shape " + std::to_string(s) + " pivots " +
                               std::to_string(pivots) + " pool " +
                               std::to_string(threads));
      }
    }
  }
}

TEST(ParallelBrandesTest, ParallelMatchesKnownValues) {
  ThreadPool pool(4);
  const auto path = BetweennessExact(Path(5), &pool);
  ASSERT_EQ(path.size(), 5u);
  EXPECT_DOUBLE_EQ(path[0], 0.0);
  EXPECT_DOUBLE_EQ(path[1], 3.0);
  EXPECT_DOUBLE_EQ(path[2], 4.0);
  EXPECT_DOUBLE_EQ(path[3], 3.0);
  EXPECT_DOUBLE_EQ(path[4], 0.0);
  const auto star = BetweennessExact(Star(4), &pool);
  EXPECT_DOUBLE_EQ(star[0], 6.0);
}

TEST(ParallelBrandesTest, RepeatedParallelRunsAreStable) {
  const Graph g = Tangled();
  ThreadPool pool(8);
  const std::vector<double> first = BetweennessExact(g, &pool);
  for (int run = 0; run < 5; ++run) {
    ExpectBitIdentical(first, BetweennessExact(g, &pool),
                       "run " + std::to_string(run));
  }
}

TEST(NormalizeBetweennessInPlaceTest, MatchesValueForm) {
  std::vector<double> scores = BetweennessExact(Star(6));
  const std::vector<double> by_value = NormalizeBetweenness(scores);
  NormalizeBetweennessInPlace(scores);
  ExpectBitIdentical(by_value, scores, "in-place vs value");
  EXPECT_DOUBLE_EQ(scores[0], 1.0);
  // Tiny spans zero out.
  std::vector<double> tiny{5.0, 5.0};
  NormalizeBetweennessInPlace(tiny);
  EXPECT_DOUBLE_EQ(tiny[0], 0.0);
  EXPECT_DOUBLE_EQ(tiny[1], 0.0);
}

}  // namespace
}  // namespace evorec::graph
