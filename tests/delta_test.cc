#include "delta/low_level_delta.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "delta/delta_index.h"
#include "rdf/knowledge_base.h"

namespace evorec::delta {
namespace {

using rdf::KnowledgeBase;
using rdf::TermId;
using rdf::Triple;

TEST(LowLevelDeltaTest, ComputesAddedAndRemoved) {
  KnowledgeBase before;
  before.AddIriTriple("http://x/A", "http://x/p", "http://x/B");
  before.AddIriTriple("http://x/A", "http://x/p", "http://x/C");
  KnowledgeBase after = before;  // shares dictionary
  after.store().Remove(after.store().triples()[0]);
  after.AddIriTriple("http://x/D", "http://x/p", "http://x/E");

  const LowLevelDelta delta = ComputeLowLevelDelta(before, after);
  EXPECT_EQ(delta.added.size(), 1u);
  EXPECT_EQ(delta.removed.size(), 1u);
  EXPECT_EQ(delta.size(), 2u);
  EXPECT_FALSE(delta.empty());
}

TEST(LowLevelDeltaTest, IdenticalSnapshotsYieldEmptyDelta) {
  KnowledgeBase kb;
  kb.AddIriTriple("http://x/A", "http://x/p", "http://x/B");
  const LowLevelDelta delta = ComputeLowLevelDelta(kb, kb);
  EXPECT_TRUE(delta.empty());
  EXPECT_EQ(delta.size(), 0u);
}

TEST(LowLevelDeltaTest, DeltaIsAntisymmetric) {
  KnowledgeBase v1;
  v1.AddIriTriple("http://x/A", "http://x/p", "http://x/B");
  KnowledgeBase v2 = v1;
  v2.AddIriTriple("http://x/C", "http://x/p", "http://x/D");

  const LowLevelDelta forward = ComputeLowLevelDelta(v1, v2);
  const LowLevelDelta backward = ComputeLowLevelDelta(v2, v1);
  EXPECT_EQ(forward.added, backward.removed);
  EXPECT_EQ(forward.removed, backward.added);
}

TEST(LowLevelDeltaTest, PerTermCountsEachTripleOnce) {
  LowLevelDelta delta;
  // Term 5 appears in two positions of one triple: counted once.
  delta.added.push_back({5, 5, 7});
  delta.removed.push_back({5, 6, 7});
  const auto counts = PerTermChangeCounts(delta);
  EXPECT_EQ(counts.at(5), 2u);  // both triples mention 5
  EXPECT_EQ(counts.at(7), 2u);
  EXPECT_EQ(counts.at(6), 1u);
  EXPECT_EQ(ChangesInvolving(delta, 5), 2u);
  EXPECT_EQ(ChangesInvolving(delta, 6), 1u);
  EXPECT_EQ(ChangesInvolving(delta, 42), 0u);
}

// DeltaIndex fixture: Person ⊒ Student; Person —worksIn→ City.
// Transition adds a Person instance and an instance edge.
struct IndexFixture {
  KnowledgeBase before;
  KnowledgeBase after;
  TermId person, student, city;

  IndexFixture() {
    person = before.DeclareClass("http://x/Person");
    student = before.DeclareClass("http://x/Student");
    city = before.DeclareClass("http://x/City");
    before.AddIriTriple("http://x/Student",
                        "http://www.w3.org/2000/01/rdf-schema#subClassOf",
                        "http://x/Person");
    before.DeclareProperty("http://x/worksIn", "http://x/Person",
                           "http://x/City");
    before.AddIriTriple("http://x/alice",
                        "http://www.w3.org/1999/02/22-rdf-syntax-ns#type",
                        "http://x/Person");
    before.AddIriTriple("http://x/rome",
                        "http://www.w3.org/1999/02/22-rdf-syntax-ns#type",
                        "http://x/City");
    after = before;
    after.AddIriTriple("http://x/bob",
                       "http://www.w3.org/1999/02/22-rdf-syntax-ns#type",
                       "http://x/Person");
    after.AddIriTriple("http://x/alice", "http://x/worksIn",
                       "http://x/rome");
  }

  DeltaIndex BuildIndex() const {
    const LowLevelDelta delta = ComputeLowLevelDelta(before, after);
    return DeltaIndex::Build(delta, schema::SchemaView::Build(before),
                             schema::SchemaView::Build(after),
                             before.vocabulary());
  }
};

TEST(DeltaIndexTest, DirectAttributionMatchesPaperDefinition) {
  IndexFixture f;
  const DeltaIndex index = f.BuildIndex();
  // Person appears directly in 1 change (bob type Person).
  EXPECT_EQ(index.DirectChanges(f.person), 1u);
  // City appears in no changed triple directly.
  EXPECT_EQ(index.DirectChanges(f.city), 0u);
  EXPECT_EQ(index.total_changes(), 2u);
}

TEST(DeltaIndexTest, ExtendedAttributionCreditsInstanceEdges) {
  IndexFixture f;
  const DeltaIndex index = f.BuildIndex();
  // The new alice→rome edge credits both Person and City.
  EXPECT_EQ(index.ExtendedChanges(f.person), 2u);  // 1 direct + 1 edge
  EXPECT_EQ(index.ExtendedChanges(f.city), 1u);    // edge only
}

TEST(DeltaIndexTest, NeighborhoodAggregatesNeighborChanges) {
  IndexFixture f;
  const DeltaIndex index = f.BuildIndex();
  // N(Student) = {Person} (subsumption); Person's extended count = 2.
  EXPECT_EQ(index.NeighborhoodChanges(f.student), 2u);
  // N(Person) ⊇ {Student, City}: Student 0 + City 1 = 1.
  EXPECT_EQ(index.NeighborhoodChanges(f.person), 1u);
  const auto neighborhood = index.UnionNeighborhood(f.person);
  EXPECT_EQ(neighborhood.size(), 2u);
}

TEST(DeltaIndexTest, UnionUniversesCoverBothVersions) {
  KnowledgeBase before;
  const TermId old_class = before.DeclareClass("http://x/Old");
  KnowledgeBase after(before.shared_dictionary());
  const TermId new_class = after.DeclareClass("http://x/New");

  const LowLevelDelta delta = ComputeLowLevelDelta(before, after);
  const DeltaIndex index =
      DeltaIndex::Build(delta, schema::SchemaView::Build(before),
                        schema::SchemaView::Build(after),
                        before.vocabulary());
  const auto& classes = index.union_classes();
  EXPECT_NE(std::find(classes.begin(), classes.end(), old_class),
            classes.end());
  EXPECT_NE(std::find(classes.begin(), classes.end(), new_class),
            classes.end());
}

TEST(DeltaIndexTest, NoChangesMeansZeroEverywhere) {
  KnowledgeBase kb;
  const TermId cls = kb.DeclareClass("http://x/C");
  const LowLevelDelta delta = ComputeLowLevelDelta(kb, kb);
  const DeltaIndex index = DeltaIndex::Build(
      delta, schema::SchemaView::Build(kb), schema::SchemaView::Build(kb),
      kb.vocabulary());
  EXPECT_EQ(index.total_changes(), 0u);
  EXPECT_EQ(index.DirectChanges(cls), 0u);
  EXPECT_EQ(index.ExtendedChanges(cls), 0u);
  EXPECT_EQ(index.NeighborhoodChanges(cls), 0u);
}

}  // namespace
}  // namespace evorec::delta
