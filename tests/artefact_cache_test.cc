// Version-level artefact cache: the counter-verified reuse contract of
// the cold path. Walking a K-version chain through the engine must
// build each version's snapshot, schema view, schema graph and
// betweenness exactly once (the pair-keyed path performed 2·(K−1)
// builds), while producing reports bit-identical to the classic
// per-pair path. Plus a concurrency stress over one shared cache
// (exercised by the TSan CI job).

#include "engine/artefact_cache.h"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "engine/evaluation_engine.h"
#include "measures/structural_shift.h"
#include "measures/timeline.h"
#include "workload/scenarios.h"

namespace evorec::engine {
namespace {

workload::Scenario ChainScenario(size_t versions, uint64_t seed = 11) {
  workload::ScenarioScale scale;
  scale.classes = 40;
  scale.properties = 14;
  scale.instances = 250;
  scale.edges = 500;
  scale.versions = versions;
  scale.operations = 90;
  return workload::MakeDbpediaLike(seed, scale);
}

void ExpectIdenticalReports(const measures::MeasureReport& a,
                            const measures::MeasureReport& b,
                            const std::string& label) {
  ASSERT_EQ(a.size(), b.size()) << label;
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.scores()[i].term, b.scores()[i].term) << label;
    // Exact equality: the engine path (shared artefacts + pooled
    // Brandes) must be bit-identical to the serial per-pair path.
    EXPECT_EQ(a.scores()[i].score, b.scores()[i].score)
        << label << " term " << a.scores()[i].term;
  }
}

TEST(ArtefactCacheChainWalkTest, ChainWalkBuildsEachVersionOnce) {
  constexpr size_t kTransitions = 5;
  const size_t kVersions = kTransitions + 1;
  workload::Scenario scenario = ChainScenario(kTransitions);
  ASSERT_EQ(scenario.vkb->version_count(), kVersions);

  measures::MeasureRegistry registry = measures::DefaultRegistry();
  EvaluationEngine engine(registry, {.context_cache_capacity = 16,
                                     .threads = 4});
  auto timeline = engine.Timeline(*scenario.vkb, "betweenness_shift");
  ASSERT_TRUE(timeline.ok()) << timeline.status().ToString();
  EXPECT_EQ(timeline->transition_count(), kTransitions);

  // The reuse contract: K artefact builds, not 2·(K−1).
  const ArtefactCacheStats stats = engine.artefact_stats();
  EXPECT_EQ(stats.betweenness_runs, kVersions);
  EXPECT_EQ(stats.graph_builds, kVersions);
  EXPECT_EQ(stats.view_builds, kVersions);
  EXPECT_EQ(stats.snapshot_loads, kVersions);
  EXPECT_EQ(stats.misses, kVersions);
  // Every middle version is requested a second time by the next pair.
  EXPECT_EQ(stats.hits, kTransitions - 1);

  // And the fast path changes nothing about the numbers: bit-identical
  // to the classic pair-keyed walk.
  measures::BetweennessShiftMeasure measure;
  auto classic = measures::EvolutionTimeline::Compute(*scenario.vkb, measure);
  ASSERT_TRUE(classic.ok());
  ASSERT_EQ(classic->transition_count(), timeline->transition_count());
  for (size_t t = 0; t < classic->transition_count(); ++t) {
    ExpectIdenticalReports(classic->report(t), timeline->report(t),
                           "transition " + std::to_string(t));
  }
}

TEST(ArtefactCacheChainWalkTest, AdjacentPairsShareTheMiddleVersion) {
  workload::Scenario scenario = ChainScenario(2);
  measures::MeasureRegistry registry = measures::DefaultRegistry();
  EvaluationEngine engine(registry, {.threads = 1});

  ASSERT_TRUE(engine.Evaluate(*scenario.vkb, 0, 1).ok());
  ASSERT_TRUE(engine.Evaluate(*scenario.vkb, 1, 2).ok());

  const ArtefactCacheStats stats = engine.artefact_stats();
  EXPECT_EQ(stats.snapshot_loads, 3u);  // V1 materialised once, not twice
  EXPECT_EQ(stats.misses, 3u);
  EXPECT_EQ(stats.hits, 1u);
}

TEST(ArtefactCacheChainWalkTest, SecondWalkIsFullyWarm) {
  workload::Scenario scenario = ChainScenario(3);
  measures::MeasureRegistry registry = measures::DefaultRegistry();
  EvaluationEngine engine(registry, {.context_cache_capacity = 8,
                                     .threads = 2});
  ASSERT_TRUE(engine.Timeline(*scenario.vkb, "betweenness_shift").ok());
  const ArtefactCacheStats cold = engine.artefact_stats();
  ASSERT_TRUE(engine.Timeline(*scenario.vkb, "betweenness_shift").ok());
  const ArtefactCacheStats warm = engine.artefact_stats();
  // The second walk is served entirely from the context cache: no new
  // artefact traffic at all.
  EXPECT_EQ(warm.snapshot_loads, cold.snapshot_loads);
  EXPECT_EQ(warm.betweenness_runs, cold.betweenness_runs);
  EXPECT_EQ(warm.misses, cold.misses);
  EXPECT_EQ(warm.hits, cold.hits);
}

TEST(ArtefactCacheChainWalkTest, IdentityPairBuildsOneVersion) {
  workload::Scenario scenario = ChainScenario(1);
  measures::MeasureRegistry registry = measures::DefaultRegistry();
  EvaluationEngine engine(registry, {.threads = 1});
  auto eval = engine.Evaluate(*scenario.vkb, 1, 1);
  ASSERT_TRUE(eval.ok());
  auto report = (*eval)->Report("betweenness_shift");
  ASSERT_TRUE(report.ok());
  const ArtefactCacheStats stats = engine.artefact_stats();
  EXPECT_EQ(stats.snapshot_loads, 1u);
  EXPECT_EQ(stats.betweenness_runs, 1u);  // both sides share the cell
  EXPECT_EQ(stats.hits, 1u);
}

TEST(ArtefactCacheChainWalkTest, CrossInstanceFingerprintHitFallsBackSafely) {
  // Distinct VersionedKnowledgeBase instances with identical histories
  // share fingerprints but carry distinct Dictionary objects. A pair
  // mixing a cached artefact of instance A with a fresh one of
  // instance B cannot share a dictionary; the engine must fall back to
  // an uncached-but-correct build instead of failing the request.
  workload::Scenario a = ChainScenario(2, 31);
  workload::Scenario b = ChainScenario(2, 31);
  measures::MeasureRegistry registry = measures::DefaultRegistry();
  EvaluationEngine engine(registry, {.threads = 1});

  ASSERT_TRUE(engine.Evaluate(*a.vkb, 0, 1).ok());  // caches fp0, fp1 from A
  // (1,2) on B: fp1 hits A's artefacts, fp2 materialises from B.
  auto eval = engine.Evaluate(*b.vkb, 1, 2);
  ASSERT_TRUE(eval.ok()) << eval.status().ToString();
  auto report = (*eval)->Report("betweenness_shift");
  ASSERT_TRUE(report.ok());

  auto ctx = measures::EvolutionContext::FromVersions(*a.vkb, 1, 2);
  ASSERT_TRUE(ctx.ok());
  measures::BetweennessShiftMeasure measure;
  auto reference = measure.Compute(*ctx);
  ASSERT_TRUE(reference.ok());
  ExpectIdenticalReports(*reference, **report, "cross-instance pair");
}

TEST(ArtefactCacheTest, EvictionKeepsHandedOutBundlesValid) {
  workload::Scenario scenario = ChainScenario(3);
  measures::MeasureRegistry registry = measures::DefaultRegistry();
  EvaluationEngine engine(registry, {.context_cache_capacity = 8,
                                     .artefact_cache_capacity = 1,
                                     .threads = 1});
  auto timeline = engine.Timeline(*scenario.vkb, "betweenness_shift");
  ASSERT_TRUE(timeline.ok()) << timeline.status().ToString();
  EXPECT_EQ(timeline->transition_count(), 3u);
  const ArtefactCacheStats stats = engine.artefact_stats();
  EXPECT_GT(stats.evictions, 0u);
  // With capacity 1 the shared middle versions are rebuilt — the
  // pair-keyed worst case, but never more than that.
  EXPECT_LE(stats.snapshot_loads, 2u * 3u);
}

TEST(ArtefactCacheTest, FailedMaterializeIsNotCached) {
  ArtefactCache cache(4);
  measures::ContextOptions options;
  auto failed = cache.Get(42, options, [] {
    return Result<std::shared_ptr<const rdf::KnowledgeBase>>(
        InternalError("boom"));
  });
  EXPECT_FALSE(failed.ok());
  EXPECT_EQ(cache.size(), 0u);

  workload::Scenario scenario = ChainScenario(1);
  auto snapshot = scenario.vkb->Snapshot(0);
  ASSERT_TRUE(snapshot.ok());
  auto ok = cache.Get(42, options, [&] {
    return Result<std::shared_ptr<const rdf::KnowledgeBase>>(
        std::make_shared<const rdf::KnowledgeBase>(**snapshot));
  });
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.stats().misses, 2u);
}

// Stress: many threads assemble contexts for random version pairs
// through ONE shared cache. Exercised under TSan in CI; the
// single-flight guarantee means each version's artefacts are built at
// most once even under contention.
TEST(ArtefactCacheConcurrencyTest, ConcurrentContextBuildsShareOneCache) {
  constexpr size_t kTransitions = 4;
  constexpr size_t kThreads = 8;
  constexpr size_t kIterations = 12;
  workload::Scenario scenario = ChainScenario(kTransitions, 29);
  const size_t versions = scenario.vkb->version_count();

  // Pre-fetch fingerprints; materializers serialise vkb access.
  std::vector<uint64_t> fingerprints;
  for (size_t v = 0; v < versions; ++v) {
    auto handle = scenario.vkb->Handle(static_cast<version::VersionId>(v));
    ASSERT_TRUE(handle.ok());
    fingerprints.push_back(handle->fingerprint);
  }

  ThreadPool brandes_pool(2);
  ArtefactCache cache(16, &brandes_pool);
  std::mutex vkb_mu;
  measures::ContextOptions options;

  // Serial reference reports, one per transition.
  measures::BetweennessShiftMeasure measure;
  std::vector<measures::MeasureReport> reference;
  for (size_t v = 0; v + 1 < versions; ++v) {
    auto ctx = measures::EvolutionContext::FromVersions(
        *scenario.vkb, static_cast<version::VersionId>(v),
        static_cast<version::VersionId>(v + 1), options);
    ASSERT_TRUE(ctx.ok());
    auto report = measure.Compute(*ctx);
    ASSERT_TRUE(report.ok());
    reference.push_back(std::move(report).value());
  }

  const auto materialize = [&](size_t v) {
    return [&scenario, &vkb_mu,
            v]() -> Result<std::shared_ptr<const rdf::KnowledgeBase>> {
      std::lock_guard<std::mutex> lock(vkb_mu);
      auto kb = scenario.vkb->Snapshot(static_cast<version::VersionId>(v));
      if (!kb.ok()) return kb.status();
      return std::make_shared<const rdf::KnowledgeBase>(**kb);
    };
  };

  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (size_t i = 0; i < kIterations; ++i) {
        const size_t v = (t + i) % (versions - 1);
        auto before = cache.Get(fingerprints[v], options, materialize(v));
        auto after =
            cache.Get(fingerprints[v + 1], options, materialize(v + 1));
        if (!before.ok() || !after.ok()) {
          ++failures;
          continue;
        }
        auto ctx = measures::EvolutionContext::Build(
            std::move(*before), std::move(*after), options);
        if (!ctx.ok()) {
          ++failures;
          continue;
        }
        auto report = measure.Compute(*ctx);
        if (!report.ok() ||
            report->scores().size() != reference[v].scores().size()) {
          ++failures;
          continue;
        }
        for (size_t s = 0; s < report->scores().size(); ++s) {
          if (report->scores()[s].score != reference[v].scores()[s].score) {
            ++failures;
            break;
          }
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);

  const ArtefactCacheStats stats = cache.stats();
  // Single-flight: every version built exactly once despite
  // kThreads × kIterations × 2 requests.
  EXPECT_EQ(stats.snapshot_loads, versions);
  EXPECT_EQ(stats.betweenness_runs, versions);
  EXPECT_EQ(stats.misses, versions);
  EXPECT_EQ(stats.hits + stats.coalesced,
            kThreads * kIterations * 2 - versions);
}

}  // namespace
}  // namespace evorec::engine
