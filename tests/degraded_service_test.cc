// Degraded-mode serving: when a commit fails under storage faults the
// service flips to an explicit DEGRADED health state and keeps
// answering reads from the engine's pinned last-good evaluation —
// stale but consistent, every result flagged — until a commit
// succeeds again. The threaded test races a faulting committer
// against readers and runs under TSan (see CMakePresets).

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "evorec.h"

namespace evorec {
namespace {

using engine::HealthState;
using engine::RecommendationService;
using engine::ServiceHealth;
using engine::ServiceOptions;
using storage::FaultInjectionEnv;
using storage::FaultPlan;

constexpr uint64_t kSeed = 424277;

rdf::KnowledgeBase MakeBase(uint64_t seed) {
  workload::SchemaGenOptions schema_options;
  schema_options.class_count = 14;
  schema_options.seed = seed;
  workload::GeneratedSchema generated = workload::GenerateSchema(schema_options);
  workload::InstanceGenOptions instance_options;
  instance_options.instance_count = 50;
  instance_options.edge_count = 80;
  instance_options.seed = seed + 1;
  workload::PopulateInstances(generated, instance_options);
  return std::move(generated.kb);
}

version::ChangeSet NextChanges(version::VersionedKnowledgeBase& vkb,
                               uint32_t epoch) {
  auto head = vkb.Snapshot(vkb.head());
  EXPECT_TRUE(head.ok());
  workload::EvolutionOptions options;
  options.operations = 15;
  options.epoch = epoch;
  options.seed = kSeed + 100 + epoch;
  workload::EvolutionOutcome outcome =
      workload::GenerateEvolution(**head, vkb.dictionary(), options);
  return std::move(outcome.changes);
}

profile::HumanProfile MakeUser(const rdf::KnowledgeBase& kb,
                               const std::string& name) {
  profile::HumanProfile user(name);
  const schema::SchemaView view = schema::SchemaView::Build(kb);
  if (!view.classes().empty()) user.SetInterest(view.classes()[0], 1.0);
  return user;
}

struct DegradedFixture {
  DegradedFixture() : vkb(version::ArchivePolicy::kDeltaChain, MakeBase(kSeed)) {
    storage::LogOptions log_options;
    log_options.sync_on_append = true;
    log_options.retry.max_attempts = 2;
    log_options.retry.backoff_micros = 10;
    log_options.env = &env;
    auto opened = storage::CommitLog::Open("wal.evlog", log_options);
    EXPECT_TRUE(opened.ok());
    log = std::make_unique<storage::CommitLog>(std::move(*opened));
    vkb.AttachCommitLog(log.get());
  }

  FaultInjectionEnv env;
  version::VersionedKnowledgeBase vkb;
  std::unique_ptr<storage::CommitLog> log;
  measures::MeasureRegistry registry = measures::DefaultRegistry();
};

TEST(DegradedServiceTest, CommitFailureFlipsToDegradedAndReadsKeepFlowing) {
  DegradedFixture fx;
  ServiceOptions service_options;
  service_options.engine.threads = 2;
  RecommendationService service(fx.registry, service_options);

  // Healthy baseline: one committed transition, clean reads.
  auto v1 = service.Commit(fx.vkb, NextChanges(fx.vkb, 1), "svc", "c1");
  ASSERT_TRUE(v1.ok()) << v1.status().ToString();
  EXPECT_EQ(service.health_state(), HealthState::kHealthy);

  auto base_kb = fx.vkb.Snapshot(0);
  ASSERT_TRUE(base_kb.ok());
  profile::HumanProfile user = MakeUser(**base_kb, "reader");
  auto list = service.Recommend(fx.vkb, 0, 1, user);
  ASSERT_TRUE(list.ok()) << list.status().ToString();
  EXPECT_FALSE(list->degraded);

  // While healthy, a nonsense request is the caller's error — no
  // fallback masks it.
  EXPECT_FALSE(service.Recommend(fx.vkb, 8, 9, user).ok());

  // The disk goes bad: the commit fails (write-ahead — history is
  // untouched) and the service degrades.
  FaultPlan plan;
  plan.fail_writes = 10;  // outlasts the retry budget
  fx.env.set_plan(plan);
  auto failed = service.Commit(fx.vkb, NextChanges(fx.vkb, 2), "svc", "c2");
  EXPECT_FALSE(failed.ok());
  EXPECT_EQ(fx.vkb.head(), 1u);
  ServiceHealth health = service.health();
  EXPECT_EQ(health.state, HealthState::kDegraded);
  EXPECT_EQ(health.failed_commits, 1u);
  EXPECT_FALSE(health.last_error.empty());

  // Reads keep flowing, flagged: the warm pair serves from cache...
  list = service.Recommend(fx.vkb, 0, 1, user);
  ASSERT_TRUE(list.ok()) << list.status().ToString();
  EXPECT_TRUE(list->degraded);
  EXPECT_FALSE(list->items.empty());

  // ...and even a request the engine cannot evaluate right now is
  // answered from the pinned last-good evaluation instead of going
  // dark (stale-but-consistent is the degraded contract).
  auto stale = service.Recommend(fx.vkb, 8, 9, user);
  ASSERT_TRUE(stale.ok()) << stale.status().ToString();
  EXPECT_TRUE(stale->degraded);
  EXPECT_GE(service.health().degraded_serves, 2u);

  // Batch results carry the flag too.
  profile::HumanProfile other = MakeUser(**base_kb, "other");
  std::vector<profile::HumanProfile*> profiles = {&user, &other};
  auto batch = service.RecommendBatch(fx.vkb, 0, 1, profiles);
  ASSERT_TRUE(batch.ok());
  for (const recommend::RecommendationList& entry : *batch) {
    EXPECT_TRUE(entry.degraded);
  }

  // The disk heals: the next successful commit is the recovery edge.
  fx.env.ClearFaults();
  auto v2 = service.Commit(fx.vkb, NextChanges(fx.vkb, 3), "svc", "c3");
  ASSERT_TRUE(v2.ok()) << v2.status().ToString();
  health = service.health();
  EXPECT_EQ(health.state, HealthState::kHealthy);
  EXPECT_EQ(health.recoveries, 1u);

  list = service.Recommend(fx.vkb, 1, 2, user);
  ASSERT_TRUE(list.ok()) << list.status().ToString();
  EXPECT_FALSE(list->degraded);
}

TEST(DegradedServiceTest, ReadersNeverGoDarkWhileCommitsFlap) {
  // A committer whose disk flaps between broken and healthy races
  // readers; every read must succeed — fresh or pinned — and the
  // service must end healthy once the last commit lands. Runs under
  // TSan via the Degraded filter in CMakePresets.
  DegradedFixture fx;
  ServiceOptions service_options;
  service_options.engine.threads = 2;
  RecommendationService service(fx.registry, service_options);
  auto v1 = service.Commit(fx.vkb, NextChanges(fx.vkb, 1), "svc", "c1");
  ASSERT_TRUE(v1.ok()) << v1.status().ToString();

  auto base_kb = fx.vkb.Snapshot(0);
  ASSERT_TRUE(base_kb.ok());
  const rdf::KnowledgeBase* base = *base_kb;

  // Commit vs Recommend is serialized inside the service, but
  // change-set *preparation* interns new terms into the shared
  // Dictionary, which is documented non-thread-safe for concurrent
  // interning — so generation takes the writer side of this lock and
  // reads the reader side, exactly as a real ingestion client must.
  // The flag parks readers while generation wants in: glibc rwlocks
  // prefer readers, and a tight re-acquiring read loop starves the
  // writer forever otherwise.
  std::shared_mutex intern_mu;
  std::atomic<bool> interning{false};

  std::atomic<bool> stop{false};
  std::atomic<int> read_failures{0};
  std::atomic<int> degraded_reads{0};
  constexpr int kReaders = 4;
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      profile::HumanProfile user =
          MakeUser(*base, "reader-" + std::to_string(r));
      while (!stop.load(std::memory_order_relaxed)) {
        while (interning.load(std::memory_order_acquire)) {
          std::this_thread::yield();
        }
        std::shared_lock<std::shared_mutex> lock(intern_mu);
        auto list = service.Recommend(fx.vkb, 0, 1, user);
        if (!list.ok()) {
          ++read_failures;
        } else if (list->degraded) {
          ++degraded_reads;
        }
        (void)service.health();
      }
    });
  }

  uint32_t epoch = 2;
  int failed_commits = 0;
  for (int round = 0; round < 6; ++round) {
    version::ChangeSet changes;
    {
      interning.store(true, std::memory_order_release);
      std::unique_lock<std::shared_mutex> lock(intern_mu);
      changes = NextChanges(fx.vkb, epoch);
      lock.unlock();
      interning.store(false, std::memory_order_release);
    }
    if (round % 2 == 0) {
      FaultPlan plan;
      plan.fail_writes = 10;
      fx.env.set_plan(plan);
      auto committed =
          service.Commit(fx.vkb, std::move(changes), "svc", "flap");
      EXPECT_FALSE(committed.ok());
      ++failed_commits;
    } else {
      fx.env.ClearFaults();
      auto committed =
          service.Commit(fx.vkb, std::move(changes), "svc", "flap");
      EXPECT_TRUE(committed.ok()) << committed.status().ToString();
      ++epoch;
    }
  }
  stop.store(true);
  for (std::thread& t : readers) t.join();

  EXPECT_EQ(read_failures.load(), 0);
  EXPECT_EQ(failed_commits, 3);
  const ServiceHealth health = service.health();
  EXPECT_EQ(health.state, HealthState::kHealthy);  // last commit landed
  EXPECT_GE(health.recoveries, 1u);
  EXPECT_EQ(health.failed_commits, 3u);
}

// Regression: RecommendationList::degraded must propagate through
// every RecommendBatch fan-out flavour, not just the single-request
// path — the parallel scratch-provenance batch, the plain parallel
// ServeAll batch, and the group-batch fan-out all flag their results
// while degraded, and all stop flagging after recovery.
TEST(DegradedServiceTest, BatchFanOutPathsPropagateDegradedFlag) {
  DegradedFixture fx;
  ServiceOptions service_options;
  service_options.engine.threads = 4;
  service_options.parallel_batches = true;
  RecommendationService service(fx.registry, service_options);
  provenance::ProvenanceStore store;
  service.AttachProvenance(&store);

  auto v1 = service.Commit(fx.vkb, NextChanges(fx.vkb, 1), "svc", "c1");
  ASSERT_TRUE(v1.ok()) << v1.status().ToString();

  auto base_kb = fx.vkb.Snapshot(0);
  ASSERT_TRUE(base_kb.ok());
  std::vector<profile::HumanProfile> profiles;
  for (int i = 0; i < 4; ++i) {
    profiles.push_back(MakeUser(**base_kb, "reader" + std::to_string(i)));
  }
  std::vector<profile::HumanProfile*> pointers;
  for (profile::HumanProfile& prof : profiles) pointers.push_back(&prof);
  profile::Group team("team");
  team.AddMember(profiles[0]);
  team.AddMember(profiles[1]);
  profile::Group pair("pair");
  pair.AddMember(profiles[2]);
  pair.AddMember(profiles[3]);
  std::vector<profile::Group*> groups = {&team, &pair};

  // Healthy baseline: no flavour flags anything.
  auto batch = service.RecommendBatch(fx.vkb, 0, 1, pointers);
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();
  for (const recommend::RecommendationList& list : *batch) {
    EXPECT_FALSE(list.degraded);
  }
  auto group_batch = service.RecommendGroupBatch(fx.vkb, 0, 1, groups);
  ASSERT_TRUE(group_batch.ok()) << group_batch.status().ToString();
  for (const recommend::RecommendationList& list : *group_batch) {
    EXPECT_FALSE(list.degraded);
  }

  // Degrade the service.
  FaultPlan plan;
  plan.fail_writes = 10;
  fx.env.set_plan(plan);
  EXPECT_FALSE(service.Commit(fx.vkb, NextChanges(fx.vkb, 2), "svc", "c2").ok());
  ASSERT_EQ(service.health_state(), HealthState::kDegraded);
  const uint64_t degraded_before = service.health().degraded_serves;

  // Parallel batch through the scratch-provenance splice path.
  batch = service.RecommendBatch(fx.vkb, 0, 1, pointers);
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();
  ASSERT_EQ(batch->size(), pointers.size());
  for (const recommend::RecommendationList& list : *batch) {
    EXPECT_TRUE(list.degraded);
  }
  EXPECT_GT(store.size(), 0u);

  // Group-batch fan-out (scratch-provenance flavour).
  group_batch = service.RecommendGroupBatch(fx.vkb, 0, 1, groups);
  ASSERT_TRUE(group_batch.ok()) << group_batch.status().ToString();
  ASSERT_EQ(group_batch->size(), groups.size());
  for (const recommend::RecommendationList& list : *group_batch) {
    EXPECT_TRUE(list.degraded);
  }

  // Plain parallel ServeAll fan-out (no provenance attached).
  service.AttachProvenance(nullptr);
  batch = service.RecommendBatch(fx.vkb, 0, 1, pointers);
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();
  for (const recommend::RecommendationList& list : *batch) {
    EXPECT_TRUE(list.degraded);
  }
  group_batch = service.RecommendGroupBatch(fx.vkb, 0, 1, groups);
  ASSERT_TRUE(group_batch.ok()) << group_batch.status().ToString();
  for (const recommend::RecommendationList& list : *group_batch) {
    EXPECT_TRUE(list.degraded);
  }
  // Every flagged result is counted: 4 + 2 + 4 + 2.
  EXPECT_EQ(service.health().degraded_serves, degraded_before + 12);

  // Recovery clears the flag on the same paths.
  fx.env.ClearFaults();
  auto v2 = service.Commit(fx.vkb, NextChanges(fx.vkb, 3), "svc", "c3");
  ASSERT_TRUE(v2.ok()) << v2.status().ToString();
  batch = service.RecommendBatch(fx.vkb, 0, 1, pointers);
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();
  for (const recommend::RecommendationList& list : *batch) {
    EXPECT_FALSE(list.degraded);
  }
  group_batch = service.RecommendGroupBatch(fx.vkb, 0, 1, groups);
  ASSERT_TRUE(group_batch.ok()) << group_batch.status().ToString();
  for (const recommend::RecommendationList& list : *group_batch) {
    EXPECT_FALSE(list.degraded);
  }
}

}  // namespace
}  // namespace evorec
