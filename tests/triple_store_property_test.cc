// Differential property tests for the v2 storage engine: random
// interleavings of Add / Remove / AddAll / RemoveAll / Compact /
// PrepareIndexes are checked against a naive std::set<Triple> model,
// proving that incremental compaction and lazy per-index catch-up
// preserve last-wins semantics and SPO result ordering.

#include "rdf/triple_store.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "common/random.h"

namespace evorec::rdf {
namespace {

Triple RandomTriple(Rng& rng) {
  // A small universe so adds, removes and re-adds collide often.
  return Triple(static_cast<TermId>(rng.UniformInt(0, 11)),
                static_cast<TermId>(rng.UniformInt(0, 5)),
                static_cast<TermId>(rng.UniformInt(0, 11)));
}

std::vector<Triple> ModelMatch(const std::set<Triple>& model,
                               const TriplePattern& pattern) {
  // std::set iteration order is operator< — i.e. SPO order.
  std::vector<Triple> out;
  for (const Triple& t : model) {
    if (pattern.Matches(t)) out.push_back(t);
  }
  return out;
}

void CheckAgainstModel(const TripleStore& store,
                       const std::set<Triple>& model, Rng& rng) {
  ASSERT_EQ(store.size(), model.size());
  ASSERT_EQ(store.triples(), std::vector<Triple>(model.begin(), model.end()));
  // All eight pattern shapes, with terms drawn from the same universe
  // so hits are likely; Match must agree with the model in content
  // AND order.
  const Triple probe = RandomTriple(rng);
  const TriplePattern shapes[8] = {
      {kAnyTerm, kAnyTerm, kAnyTerm},
      {probe.subject, kAnyTerm, kAnyTerm},
      {kAnyTerm, probe.predicate, kAnyTerm},
      {kAnyTerm, kAnyTerm, probe.object},
      {probe.subject, probe.predicate, kAnyTerm},
      {probe.subject, kAnyTerm, probe.object},
      {kAnyTerm, probe.predicate, probe.object},
      {probe.subject, probe.predicate, probe.object},
  };
  for (const TriplePattern& pattern : shapes) {
    const std::vector<Triple> matched = store.Match(pattern);
    // Explicit order guard: Match promises SPO order for every shape,
    // including the (*,p,*) POS range whose repair sort is skipped
    // when the range already comes out ordered.
    ASSERT_TRUE(std::is_sorted(matched.begin(), matched.end()))
        << "Match result not in SPO order for pattern (" << pattern.subject
        << "," << pattern.predicate << "," << pattern.object << ")";
    ASSERT_EQ(matched, ModelMatch(model, pattern))
        << "pattern (" << pattern.subject << "," << pattern.predicate << ","
        << pattern.object << ")";
  }
  ASSERT_EQ(store.Contains(probe), model.count(probe) == 1);
}

TEST(TripleStorePropertyTest, RandomInterleavingsMatchSetModel) {
  for (uint64_t seed : {7u, 99u, 20260726u}) {
    Rng rng(seed);
    TripleStore store;
    std::set<Triple> model;
    for (int step = 0; step < 4000; ++step) {
      switch (rng.UniformInt(0, 5)) {
        case 0: {
          const Triple t = RandomTriple(rng);
          store.Add(t);
          model.insert(t);
          break;
        }
        case 1: {
          const Triple t = RandomTriple(rng);
          store.Remove(t);
          model.erase(t);
          break;
        }
        case 2: {
          std::vector<Triple> batch;
          for (int i = rng.UniformInt(0, 16); i > 0; --i) {
            batch.push_back(RandomTriple(rng));
          }
          store.AddAll(batch);
          model.insert(batch.begin(), batch.end());
          break;
        }
        case 3: {
          std::vector<Triple> batch;
          for (int i = rng.UniformInt(0, 16); i > 0; --i) {
            batch.push_back(RandomTriple(rng));
          }
          store.RemoveAll(batch);
          for (const Triple& t : batch) model.erase(t);
          break;
        }
        case 4:
          store.Compact();
          break;
        case 5:
          store.PrepareIndexes();
          break;
      }
      if (step % 61 == 0) {
        ASSERT_NO_FATAL_FAILURE(CheckAgainstModel(store, model, rng))
            << "seed " << seed << " step " << step;
      }
    }
    ASSERT_NO_FATAL_FAILURE(CheckAgainstModel(store, model, rng))
        << "seed " << seed;
  }
}

TEST(TripleStorePropertyTest, CopiesStayIndependentAndEquivalent) {
  Rng rng(4242);
  TripleStore store;
  std::set<Triple> model;
  for (int step = 0; step < 500; ++step) {
    const Triple t = RandomTriple(rng);
    if (rng.Bernoulli(0.7)) {
      store.Add(t);
      model.insert(t);
    } else {
      store.Remove(t);
      model.erase(t);
    }
    if (step == 137) store.Match({kAnyTerm, 2, kAnyTerm});  // build POS
    if (step % 83 == 0) {
      // Copying mid-stream (dirty buffers, possibly stale secondary
      // indexes) must yield an equivalent, independent store.
      TripleStore copy = store;
      std::set<Triple> copy_model = model;
      ASSERT_NO_FATAL_FAILURE(CheckAgainstModel(copy, copy_model, rng));
      copy.Add({99, 99, 99});
      ASSERT_FALSE(store.Contains({99, 99, 99}));
    }
  }
  ASSERT_NO_FATAL_FAILURE(CheckAgainstModel(store, model, rng));
}

TEST(TripleStoreLazinessTest, SpoOnlyConsumersNeverBuildSecondaryIndexes) {
  TripleStore a;
  TripleStore b;
  for (uint32_t i = 0; i < 300; ++i) {
    a.Add({i, i % 7, i % 13});
    if (i % 2 == 0) b.Add({i, i % 7, i % 13});
  }
  a.Compact();
  EXPECT_TRUE(a.Contains({0, 0, 0}));
  EXPECT_EQ(a.triples().size(), 300u);
  EXPECT_EQ(TripleStore::Difference(a, b).size(), 150u);
  a.Remove({0, 0, 0});
  a.Compact();
  EXPECT_EQ(a.size(), 299u);
  // The whole SPO-only workload above — the E1 delta path — must not
  // have materialised POS or OSP.
  EXPECT_EQ(a.stats().secondary_builds(), 0u);
  EXPECT_EQ(b.stats().secondary_builds(), 0u);
  EXPECT_GE(a.stats().compactions, 2u);

  // A (*,p,*) scan builds POS but still not OSP.
  (void)a.Match({kAnyTerm, 3, kAnyTerm});
  EXPECT_EQ(a.stats().pos_full_builds + a.stats().pos_catchups, 1u);
  EXPECT_EQ(a.stats().osp_full_builds + a.stats().osp_catchups, 0u);
  // An (*,*,o) scan builds OSP.
  (void)a.Match({kAnyTerm, kAnyTerm, 5});
  EXPECT_EQ(a.stats().osp_full_builds + a.stats().osp_catchups, 1u);
}

TEST(TripleStoreLazinessTest, SmallDeltaCatchesUpIncrementally) {
  TripleStore store;
  for (uint32_t i = 0; i < 1000; ++i) {
    store.Add({i, i % 5, i % 11});
  }
  store.PrepareIndexes();
  const TripleStoreStats after_build = store.stats();

  // A small delta followed by POS/OSP scans must catch up by backlog
  // merge, not full re-sorts — and still return exact results.
  store.Add({5000, 1, 1});
  store.Remove({1, 1, 1});
  const std::vector<Triple> via_pos = store.Match({kAnyTerm, 1, kAnyTerm});
  std::vector<Triple> expected;
  for (const Triple& t : store.triples()) {
    if (t.predicate == 1) expected.push_back(t);
  }
  EXPECT_EQ(via_pos, expected);
  (void)store.Match({kAnyTerm, kAnyTerm, 1});
  EXPECT_EQ(store.stats().pos_full_builds, after_build.pos_full_builds);
  EXPECT_EQ(store.stats().osp_full_builds, after_build.osp_full_builds);
  EXPECT_EQ(store.stats().pos_catchups, after_build.pos_catchups + 1);
  EXPECT_EQ(store.stats().osp_catchups, after_build.osp_catchups + 1);
  EXPECT_TRUE(store.Contains({5000, 1, 1}));
  EXPECT_FALSE(store.Contains({1, 1, 1}));
}

}  // namespace
}  // namespace evorec::rdf
