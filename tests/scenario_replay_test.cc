// Deterministic replay of production-shaped event streams (E16's
// correctness side): every StreamGenerator mode drives a
// RecommendationService over a ShardedKnowledgeBase with reads racing
// the commits, and the stressed run must be byte-identical to a
// sequential single-store oracle replay of the same stream — zero
// whole-store flat copies, zero degraded serves without injected
// faults, refresh work proportional to the deltas, and a fingerprint
// chain that is reproducible replica-to-replica. The `tsan` preset
// races these suites under ThreadSanitizer.

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "evorec.h"

namespace evorec {
namespace {

using engine::HealthState;
using engine::IncrementalStats;
using engine::RecommendationService;
using engine::ServiceOptions;
using version::ShardedKnowledgeBase;
using version::VersionId;
using workload::StreamEvent;
using workload::StreamMode;
using workload::WorkloadStream;

workload::Scenario SmallScenario(uint64_t seed) {
  workload::ScenarioScale scale;
  scale.classes = 30;
  scale.properties = 12;
  scale.instances = 200;
  scale.edges = 400;
  scale.versions = 2;
  scale.operations = 80;
  return workload::MakeDbpediaLike(seed, scale);
}

workload::StreamOptions SmallStreamOptions(StreamMode mode) {
  workload::StreamOptions options;
  options.mode = mode;
  options.reads = 36;
  options.commits = 6;
  options.population = 12;
  options.ops_per_commit = 8;
  options.burst_on = 3;
  options.burst_off = 12;
  options.flap_block = 6;
  options.seed = 1700 + static_cast<uint64_t>(mode);
  return options;
}

// Rebuilds the scenario's committed history as a sharded KB (adopting
// the scenario dictionary — same content, same TermIds).
std::unique_ptr<ShardedKnowledgeBase> ShardScenario(
    const workload::Scenario& scenario, size_t shards) {
  auto base = scenario.vkb->Snapshot(0);
  EXPECT_TRUE(base.ok());
  auto sharded = std::make_unique<ShardedKnowledgeBase>(
      ShardedKnowledgeBase::Options{.shards = shards}, **base);
  for (VersionId v = 1; v <= scenario.vkb->head(); ++v) {
    auto cs = scenario.vkb->Changes(v);
    EXPECT_TRUE(cs.ok());
    auto committed = sharded->Commit(std::move(cs).value(), "replay",
                                     "v" + std::to_string(v), v);
    EXPECT_TRUE(committed.ok());
  }
  return sharded;
}

// Canonical byte representation of one served result: package ids,
// full-precision scores, explanation text, quality diagnostics and the
// degraded flag. Two replays are "byte-identical" iff these strings
// match read for read.
std::string Canon(const recommend::RecommendationList& list) {
  std::ostringstream os;
  os.precision(17);
  os << "deg=" << list.degraded << ";div=" << list.set_diversity
     << ";cov=" << list.category_coverage
     << ";pool=" << list.candidate_pool_size << ";";
  for (const recommend::RecommendationItem& item : list.items) {
    os << item.candidate.id << ":" << item.relatedness << ":" << item.novelty
       << ":" << item.explanation.ToText() << "|";
  }
  return os.str();
}

struct ReplayOutput {
  /// Indexed by stream event index; empty strings at commit slots.
  std::vector<std::string> reads;
  std::vector<uint64_t> chain;
  size_t degraded_reads = 0;
  size_t failures = 0;
  IncrementalStats inc;
  engine::ServiceHealth health;
};

ServiceOptions ReplayServiceOptions(bool parallel, size_t threads) {
  ServiceOptions options;
  options.parallel_batches = parallel;
  options.engine.threads = threads;
  // The same user appears in many in-flight reads; delivery
  // bookkeeping would make output depend on serve order.
  options.recommender.record_seen = false;
  return options;
}

// The oracle: every event applied in stream order on the single-store
// scenario KB, one request at a time.
ReplayOutput ReplaySequentialOracle(workload::Scenario& scenario,
                                    const WorkloadStream& stream) {
  measures::MeasureRegistry registry = measures::DefaultRegistry();
  RecommendationService service(registry, ReplayServiceOptions(false, 1));
  ReplayOutput out;
  out.reads.resize(stream.events.size());
  size_t commit_index = 0;
  for (size_t i = 0; i < stream.events.size(); ++i) {
    const StreamEvent& event = stream.events[i];
    if (event.kind == StreamEvent::Kind::kRead) {
      profile::HumanProfile prof = stream.users[event.user];
      auto list =
          service.Recommend(*scenario.vkb, event.before, event.after, prof);
      if (!list.ok()) {
        ++out.failures;
        continue;
      }
      out.reads[i] = Canon(*list);
      if (list->degraded) ++out.degraded_reads;
    } else {
      version::ChangeSet copy = event.changes;
      auto id = service.Commit(*scenario.vkb, std::move(copy), "stream",
                               "c" + std::to_string(commit_index++),
                               event.timestamp_us);
      if (!id.ok()) ++out.failures;
    }
  }
  for (VersionId v = 0; v <= scenario.vkb->head(); ++v) {
    out.chain.push_back(scenario.vkb->Handle(v).value().fingerprint);
  }
  out.inc = service.engine().incremental_stats();
  out.health = service.health();
  return out;
}

struct PendingRead {
  size_t event_index = 0;
  size_t user = 0;
  VersionId before = 0;
  VersionId after = 0;
};

// The stressed run: reads buffered since the last commit are served as
// sharded batch fan-out on a reader thread *while* the next commit
// lands on this thread — the contract is that racing changes nothing.
ReplayOutput ReplayStressedSharded(const WorkloadStream& stream,
                                   ShardedKnowledgeBase& sharded,
                                   size_t threads) {
  measures::MeasureRegistry registry = measures::DefaultRegistry();
  RecommendationService service(registry, ReplayServiceOptions(true, threads));
  ReplayOutput out;
  out.reads.resize(stream.events.size());
  std::atomic<size_t> failures{0};
  std::atomic<size_t> degraded{0};

  std::vector<PendingRead> pending;
  auto serve_pending = [&](const std::vector<PendingRead>& reads) {
    // Sub-batch by version pair (RecommendBatch serves one pair);
    // per-read output is order-independent because every read gets a
    // fresh profile copy and record_seen is off.
    std::map<std::pair<VersionId, VersionId>, std::vector<size_t>> groups;
    for (size_t k = 0; k < reads.size(); ++k) {
      groups[{reads[k].before, reads[k].after}].push_back(k);
    }
    for (const auto& [pair, indices] : groups) {
      std::vector<profile::HumanProfile> profiles;
      profiles.reserve(indices.size());
      for (size_t k : indices) profiles.push_back(stream.users[reads[k].user]);
      std::vector<profile::HumanProfile*> pointers;
      pointers.reserve(profiles.size());
      for (profile::HumanProfile& prof : profiles) pointers.push_back(&prof);
      auto batch =
          service.RecommendBatch(sharded, pair.first, pair.second, pointers);
      if (!batch.ok()) {
        failures.fetch_add(indices.size());
        continue;
      }
      for (size_t j = 0; j < indices.size(); ++j) {
        out.reads[reads[indices[j]].event_index] = Canon((*batch)[j]);
        if ((*batch)[j].degraded) degraded.fetch_add(1);
      }
    }
  };

  size_t commit_index = 0;
  for (size_t i = 0; i < stream.events.size(); ++i) {
    const StreamEvent& event = stream.events[i];
    if (event.kind == StreamEvent::Kind::kRead) {
      pending.push_back({i, event.user, event.before, event.after});
      continue;
    }
    std::vector<PendingRead> flushed;
    flushed.swap(pending);
    std::thread server([&] { serve_pending(flushed); });
    version::ChangeSet copy = event.changes;
    auto id = service.Commit(sharded, std::move(copy), "stream",
                             "c" + std::to_string(commit_index++),
                             event.timestamp_us);
    if (!id.ok()) failures.fetch_add(1);
    server.join();
  }
  serve_pending(pending);

  for (VersionId v = 0; v <= sharded.head(); ++v) {
    out.chain.push_back(sharded.Handle(v).value().fingerprint);
  }
  out.degraded_reads = degraded.load();
  out.failures = failures.load();
  out.inc = service.engine().incremental_stats();
  out.health = service.health();
  return out;
}

// The serving read diet over every pinned union snapshot; the
// whole-store flat-copy counter must still read zero afterwards.
uint64_t ProbeFlatCopies(const ShardedKnowledgeBase& sharded) {
  uint64_t flat = 0;
  for (VersionId v = 0; v <= sharded.head(); ++v) {
    auto snapshot = sharded.SharedSnapshot(v);
    if (!snapshot.ok()) return ~0ull;
    const rdf::TripleStore& store = (*snapshot)->store();
    (void)store.Contains({0, 0, 0});
    (void)store.Match({1, rdf::kAnyTerm, rdf::kAnyTerm});
    size_t n = 0;
    store.ScanT({rdf::kAnyTerm, rdf::kAnyTerm, rdf::kAnyTerm},
                [&](const rdf::Triple&) {
                  ++n;
                  return true;
                });
    flat += store.stats().materializations;
  }
  return flat;
}

class ScenarioReplayTest : public ::testing::TestWithParam<StreamMode> {};

TEST_P(ScenarioReplayTest, StressedShardedReplayMatchesSequentialOracle) {
  const StreamMode mode = GetParam();
  workload::Scenario scenario =
      SmallScenario(101 + static_cast<uint64_t>(mode));
  WorkloadStream stream =
      workload::GenerateStream(scenario, SmallStreamOptions(mode));
  ASSERT_EQ(stream.commit_count, 6u);
  ASSERT_EQ(stream.read_count, 36u);
  ASSERT_GT(stream.change_triples, 0u);

  // Shard replica A races reads against commits; replica B lands the
  // same commits with no readers at all. Both before the oracle replay
  // mutates the scenario's single-store KB.
  std::unique_ptr<ShardedKnowledgeBase> sharded = ShardScenario(scenario, 4);
  std::unique_ptr<ShardedKnowledgeBase> quiet = ShardScenario(scenario, 4);

  ReplayOutput stressed = ReplayStressedSharded(stream, *sharded, 4);
  EXPECT_EQ(stressed.failures, 0u);

  for (const StreamEvent& event : stream.events) {
    if (event.kind != StreamEvent::Kind::kCommit) continue;
    version::ChangeSet copy = event.changes;
    auto id = quiet->Commit(std::move(copy), "quiet", "c", event.timestamp_us);
    ASSERT_TRUE(id.ok());
  }

  ReplayOutput oracle = ReplaySequentialOracle(scenario, stream);
  EXPECT_EQ(oracle.failures, 0u);

  // Byte-identity with the oracle, read for read.
  ASSERT_EQ(stressed.reads.size(), oracle.reads.size());
  for (size_t i = 0; i < oracle.reads.size(); ++i) {
    EXPECT_EQ(stressed.reads[i], oracle.reads[i]) << "event " << i;
  }

  // DEGRADED only when faults are injected — and none were.
  EXPECT_EQ(stressed.degraded_reads, 0u);
  EXPECT_EQ(oracle.degraded_reads, 0u);
  EXPECT_EQ(stressed.health.state, HealthState::kHealthy);
  EXPECT_EQ(stressed.health.failed_commits, 0u);
  EXPECT_EQ(stressed.health.degraded_serves, 0u);

  // Every stream commit landed; reads never forced a flat copy of any
  // pinned union snapshot.
  EXPECT_EQ(sharded->head(), stream.base_head + stream.commit_count);
  EXPECT_EQ(ProbeFlatCopies(*sharded), 0u);

  // Fingerprint chain intact at stream end: the racing replica's chain
  // equals the read-free replica's chain link for link, and every link
  // differs from its predecessor (each commit changed content).
  ASSERT_EQ(stressed.chain.size(),
            static_cast<size_t>(stream.base_head + stream.commit_count + 1));
  std::vector<uint64_t> quiet_chain;
  for (VersionId v = 0; v <= quiet->head(); ++v) {
    quiet_chain.push_back(quiet->Handle(v).value().fingerprint);
  }
  EXPECT_EQ(stressed.chain, quiet_chain);
  for (size_t v = 1; v < stressed.chain.size(); ++v) {
    EXPECT_NE(stressed.chain[v], stressed.chain[v - 1]) << "version " << v;
  }

  // Refresh work proportional to the deltas: one engine refresh per
  // commit, never more recomputed sources than the cumulative graph.
  EXPECT_EQ(stressed.inc.refreshes, stream.commit_count);
  EXPECT_LE(stressed.inc.recomputed_sources, stressed.inc.total_sources);
  EXPECT_EQ(stressed.inc.refreshes,
            stressed.inc.advanced + stressed.inc.full_recomputes +
                stressed.inc.stayed_lazy);
  if (mode == StreamMode::kSchemaShockwave) {
    // Mass reparents churn the class universe: the full-frontier
    // fallback must fire at least once.
    EXPECT_GE(stressed.inc.full_recomputes, 1u);
  }
}

INSTANTIATE_TEST_SUITE_P(AllStreamModes, ScenarioReplayTest,
                         ::testing::Values(StreamMode::kBurstyCommits,
                                           StreamMode::kZipfReads,
                                           StreamMode::kAdversarialChurn,
                                           StreamMode::kSchemaShockwave),
                         [](const auto& info) {
                           std::string name =
                               workload::StreamModeName(info.param);
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

// DEGRADED appears exactly inside an injected fault window: the same
// stream replayed on a single-store KB whose WAL sits on a
// FaultInjectionEnv. One mid-stream commit fails (write-ahead: history
// untouched), every read until the retry lands is flagged, and the
// retry is the recovery edge.
TEST(ScenarioReplayFaultTest, DegradedExactlyDuringInjectedFaultWindow) {
  workload::Scenario scenario = SmallScenario(211);
  workload::StreamOptions options = SmallStreamOptions(StreamMode::kZipfReads);
  options.historical_fraction = 0.0;  // every read asks for the head pair
  WorkloadStream stream = workload::GenerateStream(scenario, options);

  storage::FaultInjectionEnv env;
  storage::LogOptions log_options;
  log_options.sync_on_append = true;
  log_options.retry.max_attempts = 2;
  log_options.retry.backoff_micros = 10;
  log_options.env = &env;
  auto opened =
      storage::CommitLog::Open("scenario_replay_wal.evlog", log_options);
  ASSERT_TRUE(opened.ok());
  storage::CommitLog log = std::move(*opened);
  scenario.vkb->AttachCommitLog(&log);

  measures::MeasureRegistry registry = measures::DefaultRegistry();
  RecommendationService service(registry, ReplayServiceOptions(false, 1));

  constexpr size_t kFailAt = 2;
  size_t commits_seen = 0;
  size_t degraded_observed = 0;
  std::optional<version::ChangeSet> backlog;
  auto land = [&](version::ChangeSet changes, uint64_t ts) {
    auto id =
        service.Commit(*scenario.vkb, std::move(changes), "stream", "c", ts);
    ASSERT_TRUE(id.ok()) << id.status().ToString();
  };
  for (const StreamEvent& event : stream.events) {
    if (event.kind == StreamEvent::Kind::kRead) {
      profile::HumanProfile prof = stream.users[event.user];
      auto list =
          service.Recommend(*scenario.vkb, event.before, event.after, prof);
      ASSERT_TRUE(list.ok()) << list.status().ToString();
      EXPECT_EQ(list->degraded, backlog.has_value());
      if (list->degraded) ++degraded_observed;
      continue;
    }
    if (commits_seen == kFailAt) {
      storage::FaultPlan plan;
      plan.fail_writes = 100;  // outlasts the retry budget
      env.set_plan(plan);
      version::ChangeSet copy = event.changes;
      auto failed = service.Commit(*scenario.vkb, std::move(copy), "stream",
                                   "c", event.timestamp_us);
      EXPECT_FALSE(failed.ok());
      EXPECT_EQ(service.health_state(), HealthState::kDegraded);
      backlog = event.changes;
    } else {
      if (backlog.has_value()) {
        // The disk heals: retry the failed commit first so version ids
        // realign with the stream, then land this one.
        env.ClearFaults();
        land(std::move(*backlog), event.timestamp_us);
        backlog.reset();
        EXPECT_EQ(service.health_state(), HealthState::kHealthy);
      }
      land(event.changes, event.timestamp_us);
    }
    ++commits_seen;
  }
  if (backlog.has_value()) {
    env.ClearFaults();
    land(std::move(*backlog), 0);
    backlog.reset();
  }

  EXPECT_GT(degraded_observed, 0u);
  EXPECT_EQ(scenario.vkb->head(), stream.base_head + stream.commit_count);
  engine::ServiceHealth health = service.health();
  EXPECT_EQ(health.state, HealthState::kHealthy);
  EXPECT_EQ(health.failed_commits, 1u);
  EXPECT_EQ(health.recoveries, 1u);
  EXPECT_EQ(health.degraded_serves, degraded_observed);
}

}  // namespace
}  // namespace evorec
