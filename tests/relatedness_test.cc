#include "recommend/relatedness.h"

#include <gtest/gtest.h>

#include "measures/registry.h"
#include "recommend/candidate.h"

namespace evorec::recommend {
namespace {

using rdf::KnowledgeBase;
using rdf::TermId;

// KB with hierarchy Root ⊒ {Mid ⊒ {Leaf}} and churn on Leaf.
struct Fixture {
  KnowledgeBase before;
  KnowledgeBase after;
  TermId root, mid, leaf, other;

  Fixture() {
    root = before.DeclareClass("http://x/Root");
    mid = before.DeclareClass("http://x/Mid");
    leaf = before.DeclareClass("http://x/Leaf");
    other = before.DeclareClass("http://x/Other");
    before.AddIriTriple("http://x/Mid",
                        "http://www.w3.org/2000/01/rdf-schema#subClassOf",
                        "http://x/Root");
    before.AddIriTriple("http://x/Leaf",
                        "http://www.w3.org/2000/01/rdf-schema#subClassOf",
                        "http://x/Mid");
    after = before;
    for (int i = 0; i < 5; ++i) {
      after.AddIriTriple("http://x/i" + std::to_string(i),
                         "http://www.w3.org/1999/02/22-rdf-syntax-ns#type",
                         "http://x/Leaf");
    }
  }

  measures::EvolutionContext Context() const {
    auto ctx = measures::EvolutionContext::Build(before, after);
    EXPECT_TRUE(ctx.ok());
    return std::move(ctx).value();
  }
};

MeasureCandidate CandidateWithTopTerms(std::vector<TermId> terms) {
  MeasureCandidate c;
  c.id = "test@all";
  c.measure.name = "test";
  c.measure.category = measures::MeasureCategory::kCount;
  for (size_t i = 0; i < terms.size(); ++i) {
    c.report.Add(terms[i], static_cast<double>(terms.size() - i));
  }
  c.top_terms = std::move(terms);
  return c;
}

TEST(RelatednessTest, DirectInterestMatchScoresHigh) {
  Fixture f;
  const measures::EvolutionContext ctx = f.Context();
  RelatednessScorer scorer(ctx, {});

  profile::HumanProfile interested("i");
  interested.SetInterest(f.leaf, 1.0);
  profile::HumanProfile uninterested("u");
  uninterested.SetInterest(f.other, 1.0);

  const MeasureCandidate candidate = CandidateWithTopTerms({f.leaf, f.mid});
  EXPECT_GT(scorer.Score(interested, candidate),
            scorer.Score(uninterested, candidate));
  EXPECT_GE(scorer.Score(interested, candidate), 0.0);
  EXPECT_LE(scorer.Score(interested, candidate), 1.0);
}

TEST(RelatednessTest, HierarchyPropagationReachesRelatives) {
  Fixture f;
  const measures::EvolutionContext ctx = f.Context();
  RelatednessOptions with_propagation;
  with_propagation.propagation_hops = 2;
  with_propagation.propagation_decay = 0.5;
  RelatednessOptions without_propagation;
  without_propagation.propagation_hops = 0;

  profile::HumanProfile prof("p");
  prof.SetInterest(f.root, 1.0);  // interested in the ancestor only

  const MeasureCandidate candidate = CandidateWithTopTerms({f.leaf});
  RelatednessScorer with(ctx, with_propagation);
  RelatednessScorer without(ctx, without_propagation);
  // Leaf is two hops below Root: reachable only with propagation.
  EXPECT_GT(with.Score(prof, candidate), 0.0);
  EXPECT_DOUBLE_EQ(without.Score(prof, candidate), 0.0);
}

TEST(RelatednessTest, PropagationDecaysWithDistance) {
  Fixture f;
  const measures::EvolutionContext ctx = f.Context();
  RelatednessScorer scorer(ctx, {});
  profile::HumanProfile prof("p");
  prof.SetInterest(f.root, 1.0);
  const auto expanded = scorer.ExpandInterests(prof);
  ASSERT_TRUE(expanded.count(f.root));
  ASSERT_TRUE(expanded.count(f.mid));
  ASSERT_TRUE(expanded.count(f.leaf));
  EXPECT_GT(expanded.at(f.root), expanded.at(f.mid));
  EXPECT_GT(expanded.at(f.mid), expanded.at(f.leaf));
  EXPECT_EQ(expanded.count(f.other), 0u);  // disconnected
}

TEST(RelatednessTest, ExpansionNormalisesPeakToOne) {
  Fixture f;
  const measures::EvolutionContext ctx = f.Context();
  RelatednessScorer scorer(ctx, {});
  profile::HumanProfile prof("p");
  prof.SetInterest(f.leaf, 7.5);  // arbitrary scale
  const auto expanded = scorer.ExpandInterests(prof);
  EXPECT_DOUBLE_EQ(expanded.at(f.leaf), 1.0);
}

TEST(RelatednessTest, CategoryAffinityScales) {
  Fixture f;
  const measures::EvolutionContext ctx = f.Context();
  RelatednessScorer scorer(ctx, {});
  profile::HumanProfile prof("p");
  prof.SetInterest(f.leaf, 1.0);
  prof.SetCategoryAffinity(measures::MeasureCategory::kCount, 0.5);

  const MeasureCandidate candidate = CandidateWithTopTerms({f.leaf});
  RelatednessOptions no_affinity;
  no_affinity.use_category_affinity = false;
  RelatednessScorer plain(ctx, no_affinity);
  EXPECT_NEAR(scorer.Score(prof, candidate),
              0.5 * plain.Score(prof, candidate), 1e-9);
}

TEST(RelatednessTest, EmptyProfileScoresZero) {
  Fixture f;
  const measures::EvolutionContext ctx = f.Context();
  RelatednessScorer scorer(ctx, {});
  profile::HumanProfile empty("e");
  const MeasureCandidate candidate = CandidateWithTopTerms({f.leaf});
  EXPECT_DOUBLE_EQ(scorer.Score(empty, candidate), 0.0);
}

TEST(CandidateGenerationTest, ProducesWholeKbAndRegionCandidates) {
  Fixture f;
  const measures::EvolutionContext ctx = f.Context();
  const measures::MeasureRegistry registry = measures::DefaultRegistry();
  CandidateOptions options;
  options.per_region = true;
  options.max_regions = 2;
  auto pool = GenerateCandidates(registry, ctx, options);
  ASSERT_TRUE(pool.ok());
  // At least one candidate per registered measure.
  EXPECT_GE(pool->size(), registry.size());
  size_t whole_kb = 0;
  size_t regional = 0;
  for (const MeasureCandidate& c : *pool) {
    EXPECT_FALSE(c.id.empty());
    if (c.focus == rdf::kAnyTerm) {
      ++whole_kb;
      EXPECT_EQ(c.region_label, "all");
    } else {
      ++regional;
    }
  }
  EXPECT_EQ(whole_kb, registry.size());
  EXPECT_GT(regional, 0u);
}

TEST(CandidateGenerationTest, WithoutRegionsOnlyWholeKb) {
  Fixture f;
  const measures::EvolutionContext ctx = f.Context();
  const measures::MeasureRegistry registry = measures::DefaultRegistry();
  CandidateOptions options;
  options.per_region = false;
  auto pool = GenerateCandidates(registry, ctx, options);
  ASSERT_TRUE(pool.ok());
  EXPECT_EQ(pool->size(), registry.size());
}

TEST(CandidateGenerationTest, TopTermsRespectTopK) {
  Fixture f;
  const measures::EvolutionContext ctx = f.Context();
  const measures::MeasureRegistry registry = measures::DefaultRegistry();
  CandidateOptions options;
  options.top_k = 2;
  auto pool = GenerateCandidates(registry, ctx, options);
  ASSERT_TRUE(pool.ok());
  for (const MeasureCandidate& c : *pool) {
    EXPECT_LE(c.top_terms.size(), 2u);
  }
}

}  // namespace
}  // namespace evorec::recommend
