// Engine layer: shared-evaluation caching, memoized reports, batched
// serving, and the determinism guarantee that RecommendBatch is
// byte-identical to sequential per-user Recommend calls.

#include "engine/evaluation_engine.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "engine/recommendation_service.h"
#include "workload/scenarios.h"

namespace evorec::engine {
namespace {

workload::Scenario SmallScenario(uint64_t seed = 7) {
  workload::ScenarioScale scale;
  scale.classes = 40;
  scale.properties = 14;
  scale.instances = 300;
  scale.edges = 600;
  scale.versions = 2;
  scale.operations = 120;
  return workload::MakeDbpediaLike(seed, scale);
}

// Full structural comparison of two delivered lists, including the
// rendered explanation text and the provenance trail ordering.
void ExpectIdenticalLists(const recommend::RecommendationList& a,
                          const recommend::RecommendationList& b) {
  ASSERT_EQ(a.items.size(), b.items.size());
  for (size_t i = 0; i < a.items.size(); ++i) {
    const recommend::RecommendationItem& x = a.items[i];
    const recommend::RecommendationItem& y = b.items[i];
    EXPECT_EQ(x.candidate.id, y.candidate.id);
    EXPECT_EQ(x.candidate.top_terms, y.candidate.top_terms);
    EXPECT_EQ(x.candidate.report.scores().size(),
              y.candidate.report.scores().size());
    EXPECT_EQ(x.relatedness, y.relatedness);
    EXPECT_EQ(x.novelty, y.novelty);
    EXPECT_EQ(x.explanation.ToText(), y.explanation.ToText());
  }
  EXPECT_EQ(a.set_diversity, b.set_diversity);
  EXPECT_EQ(a.category_coverage, b.category_coverage);
  EXPECT_EQ(a.candidate_pool_size, b.candidate_pool_size);
  EXPECT_EQ(a.redacted_terms, b.redacted_terms);
  EXPECT_EQ(a.dropped_candidates, b.dropped_candidates);
  EXPECT_EQ(a.provenance_trail, b.provenance_trail);
}

TEST(EvaluationEngineTest, SecondEvaluateHitsTheCache) {
  workload::Scenario scenario = SmallScenario();
  measures::MeasureRegistry registry = measures::DefaultRegistry();
  EvaluationEngine engine(registry, {.context_cache_capacity = 4,
                                     .threads = 2});

  auto first = engine.Evaluate(*scenario.vkb, 0, 1);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  auto second = engine.Evaluate(*scenario.vkb, 0, 1);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first->get(), second->get());  // same shared evaluation

  const EngineStats stats = engine.stats();
  EXPECT_EQ(stats.contexts_built, 1u);
  EXPECT_EQ(stats.context_misses, 1u);
  EXPECT_EQ(stats.context_hits, 1u);
}

TEST(EvaluationEngineTest, DistinctPairsAndOptionsGetDistinctEntries) {
  workload::Scenario scenario = SmallScenario();
  ASSERT_GE(scenario.vkb->version_count(), 3u);
  measures::MeasureRegistry registry = measures::DefaultRegistry();
  EvaluationEngine engine(registry, {.context_cache_capacity = 8,
                                     .threads = 1});

  ASSERT_TRUE(engine.Evaluate(*scenario.vkb, 0, 1).ok());
  ASSERT_TRUE(engine.Evaluate(*scenario.vkb, 1, 2).ok());
  measures::ContextOptions sampled;
  sampled.betweenness_mode = measures::BetweennessMode::kSampled;
  sampled.betweenness_pivots = 8;
  ASSERT_TRUE(engine.Evaluate(*scenario.vkb, 0, 1, sampled).ok());
  EXPECT_EQ(engine.stats().contexts_built, 3u);
  EXPECT_EQ(engine.cached_contexts(), 3u);
}

TEST(EvaluationEngineTest, LruEvictsLeastRecentlyUsed) {
  workload::Scenario scenario = SmallScenario();
  measures::MeasureRegistry registry = measures::DefaultRegistry();
  EvaluationEngine engine(registry, {.context_cache_capacity = 1,
                                     .threads = 1});

  ASSERT_TRUE(engine.Evaluate(*scenario.vkb, 0, 1).ok());
  ASSERT_TRUE(engine.Evaluate(*scenario.vkb, 1, 2).ok());  // evicts (0,1)
  EXPECT_EQ(engine.stats().context_evictions, 1u);
  EXPECT_EQ(engine.cached_contexts(), 1u);
  ASSERT_TRUE(engine.Evaluate(*scenario.vkb, 0, 1).ok());  // rebuild
  EXPECT_EQ(engine.stats().contexts_built, 3u);
}

TEST(EvaluationEngineTest, EqualHistoriesShareFingerprintsAcrossInstances) {
  workload::Scenario a = SmallScenario(21);
  workload::Scenario b = SmallScenario(21);
  auto ha = a.vkb->Handle(1);
  auto hb = b.vkb->Handle(1);
  ASSERT_TRUE(ha.ok());
  ASSERT_TRUE(hb.ok());
  EXPECT_EQ(ha->fingerprint, hb->fingerprint);

  workload::Scenario c = SmallScenario(22);
  auto hc = c.vkb->Handle(1);
  ASSERT_TRUE(hc.ok());
  EXPECT_NE(ha->fingerprint, hc->fingerprint);
}

TEST(EvaluationEngineTest, ReportsAreMemoizedPerContext) {
  workload::Scenario scenario = SmallScenario();
  measures::MeasureRegistry registry = measures::DefaultRegistry();
  EvaluationEngine engine(registry, {.context_cache_capacity = 4,
                                     .threads = 2});

  auto evaluation = engine.Evaluate(*scenario.vkb, 0, 1);
  ASSERT_TRUE(evaluation.ok());
  auto first = (*evaluation)->AllReports();
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  ASSERT_EQ(first->size(), registry.size());
  auto second = (*evaluation)->AllReports();
  ASSERT_TRUE(second.ok());
  for (size_t i = 0; i < first->size(); ++i) {
    EXPECT_EQ((*first)[i].get(), (*second)[i].get());  // same object
  }
  const measures::ReportCacheStats stats = (*evaluation)->report_stats();
  EXPECT_EQ(stats.computations, registry.size());
  EXPECT_GE(stats.hits, registry.size());

  auto by_name = (*evaluation)->Report("class_change_count");
  ASSERT_TRUE(by_name.ok());
  EXPECT_EQ((*evaluation)->report_stats().computations, registry.size());
}

TEST(RecommendationServiceTest, BatchMatchesSequentialRecommend) {
  measures::MeasureRegistry registry = measures::DefaultRegistry();

  // Sequential baseline: fresh recommender, fresh contexts, one
  // Recommend per user — the paper's per-call processing model.
  workload::Scenario baseline_scenario = SmallScenario(31);
  std::vector<profile::HumanProfile> baseline_profiles;
  for (const profile::HumanProfile& member :
       baseline_scenario.curators.members()) {
    baseline_profiles.push_back(member);
  }
  baseline_profiles.push_back(baseline_scenario.end_user);

  recommend::RecommenderOptions rec_options;
  rec_options.package_size = 4;
  rec_options.novelty_weight = 0.3;
  recommend::Recommender recommender(registry, rec_options);
  std::vector<recommend::RecommendationList> expected;
  for (profile::HumanProfile& prof : baseline_profiles) {
    auto ctx = measures::EvolutionContext::FromVersions(
        *baseline_scenario.vkb, 0, 1);
    ASSERT_TRUE(ctx.ok());
    auto list = recommender.RecommendForUser(*ctx, prof);
    ASSERT_TRUE(list.ok()) << list.status().ToString();
    expected.push_back(std::move(list).value());
  }

  // Batched serving over identical inputs (same seeds regenerate the
  // same scenario and profiles).
  workload::Scenario scenario = SmallScenario(31);
  std::vector<profile::HumanProfile> profiles;
  for (const profile::HumanProfile& member : scenario.curators.members()) {
    profiles.push_back(member);
  }
  profiles.push_back(scenario.end_user);
  std::vector<profile::HumanProfile*> pointers;
  for (profile::HumanProfile& prof : profiles) pointers.push_back(&prof);

  ServiceOptions service_options;
  service_options.recommender = rec_options;
  service_options.engine.threads = 4;
  RecommendationService service(registry, service_options);
  auto batch = service.RecommendBatch(*scenario.vkb, 0, 1, pointers);
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();
  ASSERT_EQ(batch->size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    ExpectIdenticalLists((*batch)[i], expected[i]);
  }
  // Delivery bookkeeping matches too.
  for (size_t i = 0; i < profiles.size(); ++i) {
    EXPECT_EQ(profiles[i].seen_count(), baseline_profiles[i].seen_count());
  }
  // The whole batch shared one context build.
  EXPECT_EQ(service.engine_stats().contexts_built, 1u);
}

TEST(RecommendationServiceTest, BatchWithProvenanceMatchesSequentialTrail) {
  measures::MeasureRegistry registry = measures::DefaultRegistry();
  recommend::RecommenderOptions rec_options;
  rec_options.package_size = 3;

  // Sequential baseline with a store: records land per user, in user
  // order.
  workload::Scenario baseline_scenario = SmallScenario(47);
  std::vector<profile::HumanProfile> baseline_profiles(
      baseline_scenario.curators.members());
  provenance::ProvenanceStore baseline_store;
  recommend::Recommender recommender(registry, rec_options);
  recommender.AttachProvenance(&baseline_store);
  std::vector<recommend::RecommendationList> expected;
  for (profile::HumanProfile& prof : baseline_profiles) {
    auto ctx = measures::EvolutionContext::FromVersions(
        *baseline_scenario.vkb, 0, 1);
    ASSERT_TRUE(ctx.ok());
    auto list = recommender.RecommendForUser(*ctx, prof);
    ASSERT_TRUE(list.ok());
    expected.push_back(std::move(list).value());
  }

  // Batched serving with a store: workers trace into private scratch
  // stores that are spliced in request order, so record ids and trail
  // ordering stay identical to the sequential path.
  workload::Scenario scenario = SmallScenario(47);
  std::vector<profile::HumanProfile> profiles(scenario.curators.members());
  std::vector<profile::HumanProfile*> pointers;
  for (profile::HumanProfile& prof : profiles) pointers.push_back(&prof);
  provenance::ProvenanceStore store;
  ServiceOptions service_options;
  service_options.recommender = rec_options;
  service_options.engine.threads = 4;
  RecommendationService service(registry, service_options);
  service.AttachProvenance(&store);
  auto batch = service.RecommendBatch(*scenario.vkb, 0, 1, pointers);
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();
  ASSERT_EQ(batch->size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    ExpectIdenticalLists((*batch)[i], expected[i]);
    EXPECT_FALSE((*batch)[i].provenance_trail.empty());
  }
  EXPECT_EQ(store.size(), baseline_store.size());
}

TEST(RecommendationServiceTest, GroupBatchMatchesSequentialGroupRecommend) {
  measures::MeasureRegistry registry = measures::DefaultRegistry();
  recommend::RecommenderOptions rec_options;
  rec_options.package_size = 3;
  rec_options.group.fairness_aware = true;

  workload::Scenario baseline_scenario = SmallScenario(53);
  recommend::Recommender recommender(registry, rec_options);
  auto ctx =
      measures::EvolutionContext::FromVersions(*baseline_scenario.vkb, 0, 1);
  ASSERT_TRUE(ctx.ok());
  auto expected =
      recommender.RecommendForGroup(*ctx, baseline_scenario.curators);
  ASSERT_TRUE(expected.ok()) << expected.status().ToString();

  workload::Scenario scenario = SmallScenario(53);
  ServiceOptions service_options;
  service_options.recommender = rec_options;
  RecommendationService service(registry, service_options);
  std::vector<profile::Group*> groups{&scenario.curators};
  auto batch = service.RecommendGroupBatch(*scenario.vkb, 0, 1, groups);
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();
  ASSERT_EQ(batch->size(), 1u);
  ExpectIdenticalLists((*batch)[0], *expected);
  EXPECT_EQ((*batch)[0].fairness.mean_satisfaction,
            expected->fairness.mean_satisfaction);
}

TEST(RecommendationServiceTest, WarmBatchDoesZeroRedundantContextBuilds) {
  workload::Scenario scenario = SmallScenario(61);
  measures::MeasureRegistry registry = measures::DefaultRegistry();
  RecommendationService service(registry, {});

  // 64 distinct users against one pair.
  std::vector<profile::HumanProfile> profiles;
  for (int i = 0; i < 64; ++i) {
    profile::HumanProfile prof = scenario.end_user;
    prof.set_id("user-" + std::to_string(i));
    profiles.push_back(std::move(prof));
  }
  std::vector<profile::HumanProfile*> pointers;
  for (profile::HumanProfile& prof : profiles) pointers.push_back(&prof);

  auto batch = service.RecommendBatch(*scenario.vkb, 0, 1, pointers);
  ASSERT_TRUE(batch.ok());
  ASSERT_EQ(batch->size(), 64u);
  const EngineStats stats = service.engine_stats();
  EXPECT_EQ(stats.contexts_built, 1u);
  EXPECT_EQ(stats.context_misses, 1u);
  // Every measure computed exactly once for the whole batch.
  auto evaluation = service.engine().Evaluate(*scenario.vkb, 0, 1);
  ASSERT_TRUE(evaluation.ok());
  EXPECT_EQ((*evaluation)->report_stats().computations, registry.size());

  // A second batch over the same pair is fully warm.
  auto again = service.RecommendBatch(*scenario.vkb, 0, 1, pointers);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(service.engine_stats().contexts_built, 1u);
}

TEST(RecommendationServiceTest, RejectsNullProfiles) {
  workload::Scenario scenario = SmallScenario();
  measures::MeasureRegistry registry = measures::DefaultRegistry();
  RecommendationService service(registry, {});
  auto batch = service.RecommendBatch(*scenario.vkb, 0, 1, {nullptr});
  EXPECT_FALSE(batch.ok());
}

TEST(RecommendationServiceTest, UnknownVersionFails) {
  workload::Scenario scenario = SmallScenario();
  measures::MeasureRegistry registry = measures::DefaultRegistry();
  RecommendationService service(registry, {});
  profile::HumanProfile prof = scenario.end_user;
  auto list = service.Recommend(*scenario.vkb, 0, 99, prof);
  EXPECT_FALSE(list.ok());
}

}  // namespace
}  // namespace evorec::engine
