// Overload robustness, all on FaultInjectionEnv's scripted clock (no
// test here ever sleeps): deadlines expire at stage boundaries,
// admission sheds by cause, the commit circuit breaker walks
// closed -> open -> half-open -> closed, and sustained shed pressure
// brown-outs the service into its declared cheaper mode and recovers
// hysteretically.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "evorec.h"

namespace evorec {
namespace {

using engine::AdmissionController;
using engine::AdmissionLane;
using engine::AdmissionOptions;
using engine::AdmissionStats;
using engine::BreakerOptions;
using engine::BreakerState;
using engine::BrownoutOptions;
using engine::BrownoutController;
using engine::CircuitBreaker;
using engine::HealthState;
using engine::RecommendationService;
using engine::ServiceHealth;
using engine::ServiceOptions;
using storage::FaultInjectionEnv;
using storage::FaultPlan;

constexpr uint64_t kSeed = 515093;

// ---------------------------------------------------------------- Deadline

TEST(DeadlineTest, DefaultIsInfinite) {
  Deadline deadline;
  EXPECT_TRUE(deadline.is_infinite());
  EXPECT_FALSE(deadline.expired());
  EXPECT_EQ(deadline.remaining_us(), ~uint64_t{0});
  EXPECT_TRUE(deadline.Check("anything").ok());

  RequestBudget budget;
  EXPECT_TRUE(budget.deadline.is_infinite());
  EXPECT_EQ(budget.enqueue_us, RequestBudget::kNoEnqueueTime);
}

TEST(DeadlineTest, ExpiresOnScriptedClock) {
  FaultInjectionEnv env;
  const Deadline deadline = Deadline::After(&env, 100);
  EXPECT_FALSE(deadline.is_infinite());
  EXPECT_FALSE(deadline.expired());
  EXPECT_EQ(deadline.remaining_us(), 100u);

  env.AdvanceClockMicros(99);
  EXPECT_EQ(deadline.remaining_us(), 1u);
  EXPECT_TRUE(deadline.Check("scoring").ok());

  env.AdvanceClockMicros(1);
  EXPECT_TRUE(deadline.expired());
  EXPECT_EQ(deadline.remaining_us(), 0u);
  const Status late = deadline.Check("scoring");
  EXPECT_EQ(late.code(), StatusCode::kDeadlineExceeded);
  EXPECT_NE(late.message().find("scoring"), std::string::npos);
}

TEST(DeadlineTest, AtMicrosPinsAbsoluteInstant) {
  FaultInjectionEnv env;
  env.AdvanceClockMicros(40);
  const Deadline deadline = Deadline::AtMicros(&env, 50);
  EXPECT_EQ(deadline.deadline_us(), 50u);
  EXPECT_EQ(deadline.remaining_us(), 10u);
  env.AdvanceClockMicros(10);
  EXPECT_TRUE(deadline.expired());
}

// --------------------------------------------------------------- Admission

TEST(AdmissionControllerTest, InFlightLimitWithPriorityReserve) {
  FaultInjectionEnv env;
  AdmissionOptions options;
  options.max_in_flight = 2;
  options.priority_reserve = 1;  // bulk saturates at 1
  AdmissionController admission(&env, options);

  auto bulk = admission.Admit(AdmissionLane::kBulk, {});
  ASSERT_TRUE(bulk.ok());
  EXPECT_EQ(admission.in_flight(), 1u);

  // Bulk lane is full; the reserved slot still admits priority work.
  auto bulk2 = admission.Admit(AdmissionLane::kBulk, {});
  EXPECT_EQ(bulk2.status().code(), StatusCode::kResourceExhausted);
  auto priority = admission.Admit(AdmissionLane::kPriority, {});
  ASSERT_TRUE(priority.ok());
  EXPECT_EQ(admission.in_flight(), 2u);

  // Hard cap: even priority sheds now.
  auto priority2 = admission.Admit(AdmissionLane::kPriority, {});
  EXPECT_EQ(priority2.status().code(), StatusCode::kResourceExhausted);

  // Releasing the ticket frees the slot for the next bulk request.
  bulk->Release();
  EXPECT_EQ(admission.in_flight(), 1u);
  auto bulk3 = admission.Admit(AdmissionLane::kBulk, {});
  EXPECT_TRUE(bulk3.ok());

  const AdmissionStats stats = admission.stats();
  EXPECT_EQ(stats.admitted_bulk, 2u);
  EXPECT_EQ(stats.admitted_priority, 1u);
  EXPECT_EQ(stats.shed_in_flight, 2u);
  EXPECT_EQ(stats.sheds(), 2u);
  EXPECT_EQ(stats.peak_in_flight, 2u);
}

TEST(AdmissionControllerTest, TicketReleasesOnDestruction) {
  FaultInjectionEnv env;
  AdmissionOptions options;
  options.max_in_flight = 1;
  options.priority_reserve = 0;
  AdmissionController admission(&env, options);
  {
    auto ticket = admission.Admit(AdmissionLane::kBulk, {});
    ASSERT_TRUE(ticket.ok());
    EXPECT_EQ(admission.in_flight(), 1u);

    // Move keeps exactly one live slot.
    AdmissionController::Ticket moved = std::move(*ticket);
    EXPECT_EQ(admission.in_flight(), 1u);
  }
  EXPECT_EQ(admission.in_flight(), 0u);
}

TEST(AdmissionControllerTest, TokenBucketRefillsOnScriptedClock) {
  FaultInjectionEnv env;
  AdmissionOptions options;
  options.max_in_flight = 0;       // isolate the bucket
  options.bulk_rate_per_sec = 10;  // one token per 100ms
  options.bulk_burst = 2;
  AdmissionController admission(&env, options);

  EXPECT_TRUE(admission.Admit(AdmissionLane::kBulk, {}).ok());
  EXPECT_TRUE(admission.Admit(AdmissionLane::kBulk, {}).ok());
  auto dry = admission.Admit(AdmissionLane::kBulk, {});
  EXPECT_EQ(dry.status().code(), StatusCode::kResourceExhausted);

  // Priority traffic never touches the bucket.
  EXPECT_TRUE(admission.Admit(AdmissionLane::kPriority, {}).ok());

  env.AdvanceClockMicros(100'000);  // one token back
  EXPECT_TRUE(admission.Admit(AdmissionLane::kBulk, {}).ok());
  EXPECT_FALSE(admission.Admit(AdmissionLane::kBulk, {}).ok());

  // A batch of 2 charges 2 tokens at once (but would hold 1 slot).
  env.AdvanceClockMicros(200'000);
  EXPECT_TRUE(admission.Admit(AdmissionLane::kBulk, {}, 2).ok());
  EXPECT_FALSE(admission.Admit(AdmissionLane::kBulk, {}).ok());

  EXPECT_EQ(admission.stats().shed_rate, 3u);
}

TEST(AdmissionControllerTest, QueueTimeCapShedsRottedRequests) {
  FaultInjectionEnv env;
  AdmissionOptions options;
  options.max_queue_us = 100;
  AdmissionController admission(&env, options);

  RequestBudget queued;
  queued.enqueue_us = 0;
  env.AdvanceClockMicros(50);
  EXPECT_TRUE(admission.Admit(AdmissionLane::kBulk, queued).ok());

  env.AdvanceClockMicros(100);  // now 150us in queue
  auto rotted = admission.Admit(AdmissionLane::kBulk, queued);
  EXPECT_EQ(rotted.status().code(), StatusCode::kResourceExhausted);
  // The cap applies to every lane — a rotted commit is late too.
  EXPECT_FALSE(admission.Admit(AdmissionLane::kPriority, queued).ok());

  // No enqueue time recorded: the cap cannot apply.
  EXPECT_TRUE(admission.Admit(AdmissionLane::kBulk, {}).ok());
  EXPECT_EQ(admission.stats().shed_queue, 2u);
}

// ----------------------------------------------------------------- Breaker

TEST(CircuitBreakerTest, OpensAfterConsecutiveTransientFailures) {
  FaultInjectionEnv env;
  BreakerOptions options;
  options.failure_threshold = 3;
  options.cooldown_us = 1000;
  CircuitBreaker breaker(&env, options);

  for (int i = 0; i < 2; ++i) {
    ASSERT_TRUE(breaker.Allow().ok());
    breaker.RecordFailure(UnavailableError("eio"));
    EXPECT_EQ(breaker.state(), BreakerState::kClosed);
  }
  ASSERT_TRUE(breaker.Allow().ok());
  breaker.RecordFailure(UnavailableError("eio"));
  EXPECT_EQ(breaker.state(), BreakerState::kOpen);
  EXPECT_EQ(breaker.stats().opens, 1u);

  // Open: fast-fail without touching anything, naming the evidence.
  const Status refused = breaker.Allow();
  EXPECT_EQ(refused.code(), StatusCode::kUnavailable);
  EXPECT_NE(refused.message().find("3 consecutive"), std::string::npos);
  EXPECT_GE(breaker.stats().fast_fails, 1u);
}

TEST(CircuitBreakerTest, HalfOpenProbeClosesOnSuccess) {
  FaultInjectionEnv env;
  BreakerOptions options;
  options.failure_threshold = 1;
  options.cooldown_us = 1000;
  CircuitBreaker breaker(&env, options);

  ASSERT_TRUE(breaker.Allow().ok());
  breaker.RecordFailure(UnavailableError("eio"));
  ASSERT_EQ(breaker.state(), BreakerState::kOpen);

  env.AdvanceClockMicros(999);
  EXPECT_EQ(breaker.state(), BreakerState::kOpen);
  EXPECT_FALSE(breaker.Allow().ok());

  env.AdvanceClockMicros(1);
  EXPECT_EQ(breaker.state(), BreakerState::kHalfOpen);
  // Exactly one probe wins; a second caller keeps fast-failing.
  EXPECT_TRUE(breaker.Allow().ok());
  EXPECT_FALSE(breaker.Allow().ok());
  EXPECT_EQ(breaker.stats().probes, 1u);

  breaker.RecordSuccess();
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
  EXPECT_EQ(breaker.stats().closes, 1u);
  EXPECT_EQ(breaker.stats().consecutive_failures, 0u);
}

TEST(CircuitBreakerTest, FailedProbeReopensForFreshCooldown) {
  FaultInjectionEnv env;
  BreakerOptions options;
  options.failure_threshold = 1;
  options.cooldown_us = 1000;
  CircuitBreaker breaker(&env, options);

  ASSERT_TRUE(breaker.Allow().ok());
  breaker.RecordFailure(UnavailableError("eio"));
  env.AdvanceClockMicros(1000);
  ASSERT_TRUE(breaker.Allow().ok());  // probe
  breaker.RecordFailure(UnavailableError("still sick"));
  EXPECT_EQ(breaker.state(), BreakerState::kOpen);
  EXPECT_EQ(breaker.stats().reopens, 1u);

  env.AdvanceClockMicros(1000);
  ASSERT_TRUE(breaker.Allow().ok());
  breaker.RecordSuccess();
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
}

TEST(CircuitBreakerTest, PermanentFailuresNeverTrip) {
  FaultInjectionEnv env;
  BreakerOptions options;
  options.failure_threshold = 1;
  CircuitBreaker breaker(&env, options);

  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(breaker.Allow().ok());
    breaker.RecordFailure(InvalidArgumentError("caller bug"));
  }
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
  EXPECT_EQ(breaker.stats().opens, 0u);
  EXPECT_EQ(breaker.stats().consecutive_failures, 0u);
}

TEST(CircuitBreakerTest, SuccessResetsTheStreak) {
  FaultInjectionEnv env;
  BreakerOptions options;
  options.failure_threshold = 3;
  CircuitBreaker breaker(&env, options);

  breaker.RecordFailure(UnavailableError("eio"));
  breaker.RecordFailure(UnavailableError("eio"));
  breaker.RecordSuccess();
  breaker.RecordFailure(UnavailableError("eio"));
  breaker.RecordFailure(UnavailableError("eio"));
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
  breaker.RecordFailure(UnavailableError("eio"));
  EXPECT_EQ(breaker.state(), BreakerState::kOpen);
}

// ---------------------------------------------------------------- Brownout

TEST(BrownoutControllerTest, EntersUnderPressureExitsHysteretically) {
  FaultInjectionEnv env;
  BrownoutOptions options;
  options.enabled = true;
  options.window_us = 1000;
  options.enter_sheds_per_window = 3;
  options.exit_clean_windows = 2;
  BrownoutController brownout(&env, options);

  EXPECT_FALSE(brownout.Active());
  brownout.OnShed();
  brownout.OnShed();
  EXPECT_FALSE(brownout.Active());
  brownout.OnShed();  // third shed in the window trips it
  EXPECT_TRUE(brownout.Active());
  EXPECT_EQ(brownout.stats().entries, 1u);

  // One clean window is not enough to recover...
  env.AdvanceClockMicros(2000);  // closes the shedding window + 1 clean
  EXPECT_TRUE(brownout.Active());
  // ...two are (hysteresis).
  env.AdvanceClockMicros(1000);
  EXPECT_FALSE(brownout.Active());
  EXPECT_EQ(brownout.stats().exits, 1u);
}

TEST(BrownoutControllerTest, ShedDuringRecoveryResetsCleanCount) {
  FaultInjectionEnv env;
  BrownoutOptions options;
  options.enabled = true;
  options.window_us = 1000;
  options.enter_sheds_per_window = 1;
  options.exit_clean_windows = 2;
  BrownoutController brownout(&env, options);

  brownout.OnShed();
  ASSERT_TRUE(brownout.Active());
  env.AdvanceClockMicros(2000);  // one clean window banked
  brownout.OnShed();             // pressure is back: restart the count
  env.AdvanceClockMicros(2000);  // only one clean window since
  EXPECT_TRUE(brownout.Active());
  env.AdvanceClockMicros(1000);
  EXPECT_FALSE(brownout.Active());
}

TEST(BrownoutControllerTest, DisabledIsInert) {
  FaultInjectionEnv env;
  BrownoutController brownout(&env, BrownoutOptions{});
  for (int i = 0; i < 100; ++i) brownout.OnShed();
  EXPECT_FALSE(brownout.Active());
  EXPECT_EQ(brownout.stats().sheds_observed, 0u);
}

// ----------------------------------------------------------- Service level

rdf::KnowledgeBase MakeBase(uint64_t seed) {
  workload::SchemaGenOptions schema_options;
  schema_options.class_count = 14;
  schema_options.seed = seed;
  workload::GeneratedSchema generated =
      workload::GenerateSchema(schema_options);
  workload::InstanceGenOptions instance_options;
  instance_options.instance_count = 50;
  instance_options.edge_count = 80;
  instance_options.seed = seed + 1;
  workload::PopulateInstances(generated, instance_options);
  return std::move(generated.kb);
}

version::ChangeSet NextChanges(version::VersionedKnowledgeBase& vkb,
                               uint32_t epoch) {
  auto head = vkb.Snapshot(vkb.head());
  EXPECT_TRUE(head.ok());
  workload::EvolutionOptions options;
  options.operations = 15;
  options.epoch = epoch;
  options.seed = kSeed + 100 + epoch;
  workload::EvolutionOutcome outcome =
      workload::GenerateEvolution(**head, vkb.dictionary(), options);
  return std::move(outcome.changes);
}

profile::HumanProfile MakeUser(const rdf::KnowledgeBase& kb,
                               const std::string& name) {
  profile::HumanProfile user(name);
  const schema::SchemaView view = schema::SchemaView::Build(kb);
  if (!view.classes().empty()) user.SetInterest(view.classes()[0], 1.0);
  return user;
}

struct OverloadFixture {
  OverloadFixture()
      : vkb(version::ArchivePolicy::kDeltaChain, MakeBase(kSeed)) {
    storage::LogOptions log_options;
    log_options.sync_on_append = true;
    log_options.retry.max_attempts = 2;
    log_options.retry.backoff_micros = 10;
    log_options.env = &env;
    auto opened = storage::CommitLog::Open("wal.evlog", log_options);
    EXPECT_TRUE(opened.ok());
    log = std::make_unique<storage::CommitLog>(std::move(*opened));
    vkb.AttachCommitLog(log.get());
  }

  FaultInjectionEnv env;
  version::VersionedKnowledgeBase vkb;
  std::unique_ptr<storage::CommitLog> log;
  measures::MeasureRegistry registry = measures::DefaultRegistry();
};

TEST(OverloadServiceTest, ExpiredBudgetDoesZeroContextBuilds) {
  OverloadFixture fx;
  ServiceOptions options;
  options.engine.threads = 2;
  options.env = &fx.env;
  RecommendationService service(fx.registry, options);

  auto v1 = service.Commit(fx.vkb, NextChanges(fx.vkb, 1), "svc", "c1");
  ASSERT_TRUE(v1.ok()) << v1.status().ToString();
  const engine::EngineStats after_commit = service.engine_stats();

  auto base_kb = fx.vkb.Snapshot(0);
  ASSERT_TRUE(base_kb.ok());
  std::vector<profile::HumanProfile> users;
  for (int i = 0; i < 3; ++i) {
    users.push_back(MakeUser(**base_kb, "u" + std::to_string(i)));
  }
  std::vector<profile::HumanProfile*> pointers;
  for (profile::HumanProfile& user : users) pointers.push_back(&user);

  // A budget that is already dead on arrival: the whole batch is
  // refused at the first stage boundary, before the engine is asked
  // for anything.
  RequestBudget budget;
  budget.deadline = Deadline::After(&fx.env, 10);
  fx.env.AdvanceClockMicros(20);
  auto batch = service.RecommendBatch(fx.vkb, 0, 1, pointers, budget);
  EXPECT_EQ(batch.status().code(), StatusCode::kDeadlineExceeded);

  const engine::EngineStats stats = service.engine_stats();
  EXPECT_EQ(stats.contexts_built, after_commit.contexts_built);
  EXPECT_EQ(stats.context_misses, after_commit.context_misses);
  EXPECT_EQ(service.health().deadline_exceeded, pointers.size());

  // Same request with time on the clock serves normally.
  auto served = service.RecommendBatch(fx.vkb, 0, 1, pointers);
  ASSERT_TRUE(served.ok()) << served.status().ToString();
  EXPECT_EQ(served->size(), pointers.size());
}

TEST(OverloadServiceTest, DefaultDeadlineAppliesToBudgetlessRequests) {
  OverloadFixture fx;
  ServiceOptions options;
  options.engine.threads = 2;
  options.env = &fx.env;
  options.overload.default_deadline_us = 50;
  RecommendationService service(fx.registry, options);

  auto v1 = service.Commit(fx.vkb, NextChanges(fx.vkb, 1), "svc", "c1");
  ASSERT_TRUE(v1.ok()) << v1.status().ToString();
  auto base_kb = fx.vkb.Snapshot(0);
  ASSERT_TRUE(base_kb.ok());
  profile::HumanProfile user = MakeUser(**base_kb, "reader");

  // The default deadline starts at entry, so a normal call is fine
  // (the scripted clock does not advance mid-request)...
  EXPECT_TRUE(service.Recommend(fx.vkb, 0, 1, user).ok());
  // ...but an explicit already-expired budget still loses.
  RequestBudget expired;
  expired.deadline = Deadline::After(&fx.env, 1);
  fx.env.AdvanceClockMicros(5);
  auto late = service.Recommend(fx.vkb, 0, 1, user, expired);
  EXPECT_EQ(late.status().code(), StatusCode::kDeadlineExceeded);
}

TEST(OverloadServiceTest, ShedsAreCountedAndTyped) {
  OverloadFixture fx;
  ServiceOptions options;
  options.engine.threads = 2;
  options.env = &fx.env;
  options.overload.admission_enabled = true;
  options.overload.admission.bulk_rate_per_sec = 1;
  options.overload.admission.bulk_burst = 1;
  RecommendationService service(fx.registry, options);

  auto v1 = service.Commit(fx.vkb, NextChanges(fx.vkb, 1), "svc", "c1");
  ASSERT_TRUE(v1.ok()) << v1.status().ToString();
  auto base_kb = fx.vkb.Snapshot(0);
  ASSERT_TRUE(base_kb.ok());
  profile::HumanProfile user = MakeUser(**base_kb, "reader");

  EXPECT_TRUE(service.Recommend(fx.vkb, 0, 1, user).ok());
  auto shed = service.Recommend(fx.vkb, 0, 1, user);
  EXPECT_EQ(shed.status().code(), StatusCode::kResourceExhausted);

  const ServiceHealth health = service.health();
  EXPECT_EQ(health.shed_requests, 1u);
  EXPECT_EQ(service.admission_stats().shed_rate, 1u);
  // Commits ride the priority lane: the empty bulk bucket is not
  // their problem.
  auto v2 = service.Commit(fx.vkb, NextChanges(fx.vkb, 2), "svc", "c2");
  EXPECT_TRUE(v2.ok()) << v2.status().ToString();

  // The operator summary names every part of the taxonomy.
  const std::string text = health.ToString();
  EXPECT_NE(text.find("HEALTHY"), std::string::npos);
  EXPECT_NE(text.find("shed=1"), std::string::npos);
  EXPECT_NE(text.find("deadline_exceeded=0"), std::string::npos);
  EXPECT_NE(text.find("breaker_fast_fails=0"), std::string::npos);
}

TEST(OverloadServiceTest, CommitBreakerFastFailsAndRecovers) {
  OverloadFixture fx;
  ServiceOptions options;
  options.engine.threads = 2;
  options.env = &fx.env;
  options.overload.breaker_enabled = true;
  options.overload.breaker.failure_threshold = 2;
  options.overload.breaker.cooldown_us = 1000;
  RecommendationService service(fx.registry, options);

  auto v1 = service.Commit(fx.vkb, NextChanges(fx.vkb, 1), "svc", "c1");
  ASSERT_TRUE(v1.ok()) << v1.status().ToString();
  ASSERT_EQ(fx.vkb.head(), 1u);

  auto base_kb = fx.vkb.Snapshot(0);
  ASSERT_TRUE(base_kb.ok());
  profile::HumanProfile user = MakeUser(**base_kb, "reader");

  // The disk goes bad: two real failures open the breaker (each commit
  // burns the WAL's whole retry budget first).
  FaultPlan plan;
  plan.fail_writes = 100;
  fx.env.set_plan(plan);
  for (int i = 0; i < 2; ++i) {
    auto failed = service.Commit(fx.vkb, NextChanges(fx.vkb, 2), "svc", "x");
    EXPECT_EQ(failed.status().code(), StatusCode::kUnavailable);
  }
  EXPECT_EQ(service.breaker_stats().state, BreakerState::kOpen);
  EXPECT_EQ(service.health().failed_commits, 2u);
  EXPECT_EQ(service.health_state(), HealthState::kDegraded);

  // Open: the next commit fast-fails without touching the device...
  const uint64_t writes_before = fx.env.counters().writes;
  auto refused = service.Commit(fx.vkb, NextChanges(fx.vkb, 2), "svc", "x");
  EXPECT_EQ(refused.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(fx.env.counters().writes, writes_before);
  ServiceHealth health = service.health();
  EXPECT_EQ(health.breaker_fast_fails, 1u);
  // ...and is not a *new* failure: the evidence count stands.
  EXPECT_EQ(health.failed_commits, 2u);

  // DEGRADED serving continues the whole time (PR7 machinery).
  auto list = service.Recommend(fx.vkb, 0, 1, user);
  ASSERT_TRUE(list.ok()) << list.status().ToString();
  EXPECT_TRUE(list->degraded);

  // The disk heals, but the cool-down still gates: fast-fail until the
  // scripted clock passes it, then the half-open probe commits for
  // real and closes the breaker.
  fx.env.ClearFaults();
  EXPECT_FALSE(service.Commit(fx.vkb, NextChanges(fx.vkb, 2), "svc", "x").ok());
  fx.env.AdvanceClockMicros(1000);
  auto probe = service.Commit(fx.vkb, NextChanges(fx.vkb, 2), "svc", "c2");
  ASSERT_TRUE(probe.ok()) << probe.status().ToString();
  EXPECT_EQ(service.breaker_stats().state, BreakerState::kClosed);
  EXPECT_EQ(service.breaker_stats().closes, 1u);
  EXPECT_EQ(service.health_state(), HealthState::kHealthy);
  EXPECT_EQ(service.health().recoveries, 1u);

  // No acked commit was lost, no refused one leaked in: exactly the
  // two successful commits are history.
  EXPECT_EQ(fx.vkb.head(), 2u);
  list = service.Recommend(fx.vkb, 1, 2, user);
  ASSERT_TRUE(list.ok()) << list.status().ToString();
  EXPECT_FALSE(list->degraded);
}

TEST(OverloadServiceTest, BrownoutServesCheaperModeAndRecovers) {
  OverloadFixture fx;
  ServiceOptions options;
  options.engine.threads = 2;
  options.env = &fx.env;
  options.overload.admission_enabled = true;
  options.overload.admission.max_queue_us = 10;
  options.overload.brownout.enabled = true;
  options.overload.brownout.window_us = 1000;
  options.overload.brownout.enter_sheds_per_window = 2;
  options.overload.brownout.exit_clean_windows = 2;
  RecommendationService service(fx.registry, options);

  auto v1 = service.Commit(fx.vkb, NextChanges(fx.vkb, 1), "svc", "c1");
  ASSERT_TRUE(v1.ok()) << v1.status().ToString();
  auto base_kb = fx.vkb.Snapshot(0);
  ASSERT_TRUE(base_kb.ok());
  profile::HumanProfile user = MakeUser(**base_kb, "reader");

  // Fresh requests serve the configured (exact) mode.
  auto list = service.Recommend(fx.vkb, 0, 1, user);
  ASSERT_TRUE(list.ok()) << list.status().ToString();
  EXPECT_FALSE(list->brownout);

  // Two rotted requests shed inside one window: brown-out trips.
  RequestBudget rotted;
  rotted.enqueue_us = 0;
  fx.env.AdvanceClockMicros(100);
  for (int i = 0; i < 2; ++i) {
    auto shed = service.Recommend(fx.vkb, 0, 1, user, rotted);
    EXPECT_EQ(shed.status().code(), StatusCode::kResourceExhausted);
  }
  EXPECT_TRUE(service.brownout_stats().active);
  EXPECT_TRUE(service.health().brownout_active);

  // Fresh requests still serve — in the declared cheaper mode,
  // flagged.
  list = service.Recommend(fx.vkb, 0, 1, user);
  ASSERT_TRUE(list.ok()) << list.status().ToString();
  EXPECT_TRUE(list->brownout);
  EXPECT_FALSE(list->items.empty());
  EXPECT_GE(service.health().brownout_serves, 1u);

  // Pressure clears: after the hysteresis window count, back to the
  // configured mode.
  fx.env.AdvanceClockMicros(3000);
  list = service.Recommend(fx.vkb, 0, 1, user);
  ASSERT_TRUE(list.ok()) << list.status().ToString();
  EXPECT_FALSE(list->brownout);
  EXPECT_EQ(service.brownout_stats().exits, 1u);
  EXPECT_FALSE(service.health().brownout_active);
}

TEST(OverloadStreamTest, OverloadRampCompressesArrivalGaps) {
  workload::ScenarioScale scale;
  scale.classes = 30;
  scale.properties = 12;
  scale.instances = 200;
  scale.edges = 400;
  scale.versions = 2;
  scale.operations = 60;
  workload::Scenario scenario = workload::MakeDbpediaLike(7, scale);
  workload::StreamOptions stream_options;
  stream_options.mode = workload::StreamMode::kOverloadRamp;
  stream_options.reads = 120;
  stream_options.commits = 4;
  stream_options.population = 8;
  stream_options.mean_gap_us = 1000;
  stream_options.overload_factor = 8.0;
  auto stream = workload::GenerateStream(scenario, stream_options);

  ASSERT_EQ(stream.read_count, stream_options.reads);
  ASSERT_EQ(stream.commit_count, stream_options.commits);
  EXPECT_EQ(std::string(workload::StreamModeName(stream.mode)),
            "overload-ramp");

  // Deterministic per seed.
  auto again = workload::GenerateStream(scenario, stream_options);
  ASSERT_EQ(again.events.size(), stream.events.size());
  for (size_t i = 0; i < stream.events.size(); ++i) {
    EXPECT_EQ(again.events[i].timestamp_us, stream.events[i].timestamp_us);
  }

  // The ramp is real: the last quarter's mean inter-arrival gap is a
  // small fraction of the first quarter's.
  const size_t n = stream.events.size();
  auto mean_gap = [&](size_t begin, size_t end) {
    double total = 0.0;
    for (size_t i = begin + 1; i < end; ++i) {
      total += static_cast<double>(stream.events[i].timestamp_us -
                                   stream.events[i - 1].timestamp_us);
    }
    return total / static_cast<double>(end - begin - 1);
  };
  const double head_gap = mean_gap(0, n / 4);
  const double tail_gap = mean_gap(3 * n / 4, n);
  EXPECT_LT(tail_gap, head_gap / 2.0);
}

}  // namespace
}  // namespace evorec
