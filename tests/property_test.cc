// Parameterized property suites: invariants that must hold across
// seeds, scales and parameter grids (TEST_P sweeps).

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>

#include "evorec.h"

namespace evorec {
namespace {

// ------------------------------------------------- delta properties

class DeltaPropertyTest : public ::testing::TestWithParam<uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, DeltaPropertyTest,
                         ::testing::Values(1, 7, 23, 99, 1234));

// δ applied to V1 reproduces V2; δ reversed restores V1 (the
// synchronisation property low-level deltas exist for, §II.a / [2]).
TEST_P(DeltaPropertyTest, DeltaIsInvertibleTransformation) {
  workload::SchemaGenOptions schema_options;
  schema_options.class_count = 40;
  schema_options.seed = GetParam();
  workload::GeneratedSchema generated =
      workload::GenerateSchema(schema_options);
  workload::InstanceGenOptions instance_options;
  instance_options.instance_count = 300;
  instance_options.edge_count = 400;
  instance_options.seed = GetParam() + 1;
  workload::PopulateInstances(generated, instance_options);

  workload::EvolutionOptions evolution_options;
  evolution_options.operations = 150;
  evolution_options.seed = GetParam() + 2;
  const workload::EvolutionOutcome outcome = workload::GenerateEvolution(
      generated.kb, generated.kb.dictionary(), evolution_options);

  rdf::KnowledgeBase after = generated.kb;
  after.store().AddAll(outcome.changes.additions);
  for (const rdf::Triple& t : outcome.changes.removals) {
    after.store().Remove(t);
  }

  const delta::LowLevelDelta delta =
      delta::ComputeLowLevelDelta(generated.kb, after);
  // Forward: V1 + δ = V2.
  rdf::KnowledgeBase forward = generated.kb;
  forward.store().AddAll(delta.added);
  for (const rdf::Triple& t : delta.removed) forward.store().Remove(t);
  EXPECT_EQ(forward.store().triples(), after.store().triples());
  // Backward: V2 − δ = V1.
  rdf::KnowledgeBase backward = after;
  backward.store().AddAll(delta.removed);
  for (const rdf::Triple& t : delta.added) backward.store().Remove(t);
  EXPECT_EQ(backward.store().triples(), generated.kb.store().triples());
}

// |δ(n)| summed over direct attribution never exceeds 3·|δ| (each
// triple has ≤ 3 distinct terms) and neighborhood counts are sums of
// member counts.
TEST_P(DeltaPropertyTest, AttributionMassIsBounded) {
  workload::Scenario scenario;
  workload::ScenarioScale scale;
  scale.classes = 30;
  scale.instances = 200;
  scale.edges = 300;
  scale.versions = 1;
  scale.operations = 100;
  scenario = workload::MakeDbpediaLike(GetParam(), scale);
  auto ctx = measures::EvolutionContext::FromVersions(*scenario.vkb, 0, 1);
  ASSERT_TRUE(ctx.ok());
  const auto& index = ctx->delta_index();
  size_t direct_mass = 0;
  for (rdf::TermId cls : ctx->union_classes()) {
    direct_mass += index.DirectChanges(cls);
    // Neighborhood aggregation identity.
    size_t expected = 0;
    for (rdf::TermId neighbor : index.UnionNeighborhood(cls)) {
      expected += index.ExtendedChanges(neighbor);
    }
    EXPECT_EQ(index.NeighborhoodChanges(cls), expected);
  }
  EXPECT_LE(direct_mass, 3 * index.total_changes());
}

// ---------------------------------------------- measure properties

class MeasurePropertyTest : public ::testing::TestWithParam<uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, MeasurePropertyTest,
                         ::testing::Values(3, 17, 71));

// Every registered measure: non-negative scores, full universe
// coverage for class-scoped measures, and zero report on an identity
// transition.
TEST_P(MeasurePropertyTest, MeasureInvariants) {
  workload::ScenarioScale scale;
  scale.classes = 35;
  scale.instances = 250;
  scale.edges = 400;
  scale.versions = 2;
  scale.operations = 120;
  workload::Scenario scenario =
      workload::MakeDbpediaLike(GetParam(), scale);
  auto ctx = measures::EvolutionContext::FromVersions(
      *scenario.vkb, scenario.vkb->head() - 1, scenario.vkb->head());
  ASSERT_TRUE(ctx.ok());
  auto identity = measures::EvolutionContext::FromVersions(
      *scenario.vkb, scenario.vkb->head(), scenario.vkb->head());
  ASSERT_TRUE(identity.ok());

  const measures::MeasureRegistry registry = measures::DefaultRegistry();
  for (const auto& measure : registry.CreateAll()) {
    auto report = measure->Compute(*ctx);
    ASSERT_TRUE(report.ok()) << measure->info().name;
    for (const auto& s : report->scores()) {
      EXPECT_GE(s.score, 0.0) << measure->info().name;
      EXPECT_TRUE(std::isfinite(s.score)) << measure->info().name;
    }
    if (measure->info().scope == measures::MeasureScope::kClass) {
      EXPECT_EQ(report->size(), ctx->union_classes().size())
          << measure->info().name;
    }
    auto zero_report = measure->Compute(*identity);
    ASSERT_TRUE(zero_report.ok());
    EXPECT_DOUBLE_EQ(zero_report->TotalScore(), 0.0)
        << measure->info().name << " must vanish on identity transition";
  }
}

// -------------------------------------------- anonymity properties

struct AnonymityParam {
  uint64_t seed;
  size_t k;
};

class AnonymityPropertyTest
    : public ::testing::TestWithParam<AnonymityParam> {};

INSTANTIATE_TEST_SUITE_P(
    Grid, AnonymityPropertyTest,
    ::testing::Values(AnonymityParam{1, 2}, AnonymityParam{1, 5},
                      AnonymityParam{2, 10}, AnonymityParam{3, 25},
                      AnonymityParam{4, 3}, AnonymityParam{5, 50}),
    [](const auto& param_info) {
      return "seed" + std::to_string(param_info.param.seed) + "_k" +
             std::to_string(param_info.param.k);
    });

// The anonymiser's guarantee holds on arbitrary generated tables:
// output is k-anonymous, suppressed+kept individuals equal the input,
// and information loss is in [0,1].
TEST_P(AnonymityPropertyTest, AnonymizerGuarantee) {
  const auto [seed, k] = GetParam();
  Rng rng(seed);
  anonymity::AggregateTable table({"class", "region"}, "changes");
  anonymity::ValueHierarchy classes;
  anonymity::ValueHierarchy regions;
  for (int c = 0; c < 8; ++c) {
    classes.AddParent("C" + std::to_string(c),
                      "Super" + std::to_string(c % 2));
  }
  classes.AddParent("Super0", "Any");
  classes.AddParent("Super1", "Any");
  for (int r = 0; r < 4; ++r) {
    regions.AddParent("R" + std::to_string(r), "Country");
  }
  const size_t rows = 20 + static_cast<size_t>(rng.UniformInt(0, 20));
  for (size_t i = 0; i < rows; ++i) {
    ASSERT_TRUE(
        table
            .AddRow({"C" + std::to_string(rng.UniformInt(0, 7)),
                     "R" + std::to_string(rng.UniformInt(0, 3))},
                    rng.UniformDouble(0, 50),
                    static_cast<size_t>(rng.UniformInt(1, 6)))
            .ok());
  }

  auto result = anonymity::Anonymize(table, k, {classes, regions});
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(anonymity::IsKAnonymous(result->table, k));
  EXPECT_EQ(result->table.TotalCount() + result->suppressed_count,
            table.TotalCount());
  EXPECT_GE(result->information_loss, 0.0);
  EXPECT_LE(result->information_loss, 1.0);
  if (!result->table.rows().empty()) {
    EXPECT_LE(anonymity::ReidentificationRisk(result->table),
              1.0 / static_cast<double>(k));
  }
}

// -------------------------------------------- diversity properties

class DiversityPropertyTest : public ::testing::TestWithParam<double> {};

INSTANTIATE_TEST_SUITE_P(Lambdas, DiversityPropertyTest,
                         ::testing::Values(0.0, 0.25, 0.5, 0.75, 1.0));

// MMR across the λ grid: selections are distinct indices of the pool,
// and the achieved objective is never worse than picking the top-k by
// relevance (MMR optimises a superset of that strategy greedily).
TEST_P(DiversityPropertyTest, MmrDominatesNaiveTopK) {
  const double lambda = GetParam();
  Rng rng(11);
  std::vector<recommend::MeasureCandidate> pool;
  for (int i = 0; i < 20; ++i) {
    recommend::MeasureCandidate c;
    c.id = "c" + std::to_string(i);
    c.measure.category =
        static_cast<measures::MeasureCategory>(i % 3);
    for (int t = 0; t < 5; ++t) {
      c.top_terms.push_back(
          static_cast<rdf::TermId>(rng.UniformInt(0, 14)));
    }
    pool.push_back(std::move(c));
  }
  std::vector<double> relevance;
  for (int i = 0; i < 20; ++i) relevance.push_back(rng.UniformDouble());

  const auto selected = recommend::SelectMmr(
      pool, relevance, 6, lambda, recommend::DiversityKind::kContent);
  ASSERT_EQ(selected.size(), 6u);
  std::set<size_t> uniq(selected.begin(), selected.end());
  EXPECT_EQ(uniq.size(), 6u);

  // Naive top-k by relevance.
  std::vector<size_t> naive(20);
  std::iota(naive.begin(), naive.end(), 0);
  std::sort(naive.begin(), naive.end(), [&](size_t a, size_t b) {
    return relevance[a] > relevance[b];
  });
  naive.resize(6);

  const double mmr_objective = recommend::MmrObjective(
      pool, relevance, selected, lambda, recommend::DiversityKind::kContent);
  const double naive_objective = recommend::MmrObjective(
      pool, relevance, naive, lambda, recommend::DiversityKind::kContent);
  // Greedy MMR with swap-improvement dominates the naive set under its
  // own objective; plain greedy can tie at λ=1.
  const auto improved = recommend::ImproveBySwaps(
      pool, relevance, selected, lambda, recommend::DiversityKind::kContent);
  const double improved_objective =
      recommend::MmrObjective(pool, relevance, improved, lambda,
                              recommend::DiversityKind::kContent);
  EXPECT_GE(improved_objective + 1e-9, naive_objective);
  EXPECT_GE(improved_objective + 1e-9, mmr_objective);
}

// ---------------------------------------------- fairness properties

class FairnessPropertyTest : public ::testing::TestWithParam<uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, FairnessPropertyTest,
                         ::testing::Values(2, 13, 29, 47));

// On random utility matrices the fair package never has a lower
// minimum satisfaction than any aggregation-greedy package.
TEST_P(FairnessPropertyTest, FairPackageMaximisesMinSatisfaction) {
  Rng rng(GetParam());
  const size_t members = 2 + static_cast<size_t>(rng.UniformInt(0, 4));
  const size_t candidates = 8 + static_cast<size_t>(rng.UniformInt(0, 8));
  recommend::UtilityMatrix utilities(members,
                                     std::vector<double>(candidates));
  for (auto& row : utilities) {
    for (double& u : row) u = rng.UniformDouble();
  }
  const size_t k = 3;
  const auto fair = recommend::SelectFairPackage(utilities, k);
  const double fair_min =
      recommend::EvaluatePackage(utilities, fair).min_satisfaction;
  for (auto aggregation : {recommend::GroupAggregation::kAverage,
                           recommend::GroupAggregation::kLeastMisery,
                           recommend::GroupAggregation::kMostPleasure}) {
    const auto greedy =
        recommend::SelectByAggregation(utilities, k, aggregation);
    const double greedy_min =
        recommend::EvaluatePackage(utilities, greedy).min_satisfaction;
    EXPECT_GE(fair_min + 1e-9, greedy_min);
  }
}

// ------------------------------------------ relatedness properties

class RelatednessPropertyTest : public ::testing::TestWithParam<uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, RelatednessPropertyTest,
                         ::testing::Values(5, 19, 53));

// Scores are bounded in [0,1]; adding interest in a candidate's terms
// never lowers its score (monotonicity).
TEST_P(RelatednessPropertyTest, BoundedAndMonotone) {
  workload::ScenarioScale scale;
  scale.classes = 30;
  scale.instances = 150;
  scale.edges = 250;
  scale.versions = 1;
  scale.operations = 80;
  workload::Scenario scenario =
      workload::MakeDbpediaLike(GetParam(), scale);
  auto ctx = measures::EvolutionContext::FromVersions(*scenario.vkb, 0, 1);
  ASSERT_TRUE(ctx.ok());
  const measures::MeasureRegistry registry = measures::DefaultRegistry();
  auto pool = recommend::GenerateCandidates(registry, *ctx, {});
  ASSERT_TRUE(pool.ok());
  ASSERT_FALSE(pool->empty());

  recommend::RelatednessScorer scorer(*ctx, {});
  profile::HumanProfile prof("p");
  // Random sparse interests. One interest is pinned at weight 1.0 so
  // the expansion's max-normalisation is stable under boosting — the
  // precondition for the monotonicity property below.
  Rng rng(GetParam() + 7);
  const auto& classes = ctx->union_classes();
  for (int i = 0; i < 3; ++i) {
    prof.SetInterest(
        classes[static_cast<size_t>(rng.UniformInt(
            0, static_cast<int64_t>(classes.size()) - 1))],
        rng.UniformDouble(0.2, 1.0));
  }
  prof.SetInterest(classes[0], 1.0);  // pin the max weight
  for (const auto& candidate : *pool) {
    const double base = scorer.Score(prof, candidate);
    EXPECT_GE(base, 0.0);
    EXPECT_LE(base, 1.0);
    if (candidate.top_terms.empty()) continue;
    profile::HumanProfile boosted = prof;
    boosted.SetInterest(candidate.top_terms[0], 1.0);
    EXPECT_GE(scorer.Score(boosted, candidate) + 1e-9, base)
        << candidate.id;
  }
}

}  // namespace
}  // namespace evorec
