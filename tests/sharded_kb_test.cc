// Differential tests for the subject-hash-sharded versioned KB: at
// every shard count, the same commit sequence must produce union
// snapshots whose scans are byte-identical to one unsharded
// VersionedKnowledgeBase, deterministic folded fingerprints, intact
// per-version change sets — and serving a RecommendBatch through the
// sharded view must match the sequential single-store path exactly.

#include "version/sharded_kb.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/thread_pool.h"
#include "engine/recommendation_service.h"
#include "workload/scenarios.h"

namespace evorec::version {
namespace {

using rdf::kAnyTerm;
using rdf::Triple;
using rdf::TriplePattern;

ChangeSet MakeChanges(std::vector<Triple> additions,
                      std::vector<Triple> removals) {
  ChangeSet cs;
  cs.additions = std::move(additions);
  cs.removals = std::move(removals);
  return cs;
}

// A deterministic multi-version history over a small term universe so
// commits collide with earlier versions (re-adds, double removes).
std::vector<ChangeSet> RandomHistory(uint64_t seed, size_t versions) {
  Rng rng(seed);
  std::vector<ChangeSet> history;
  for (size_t v = 0; v < versions; ++v) {
    ChangeSet cs;
    for (int i = rng.UniformInt(5, 40); i > 0; --i) {
      cs.additions.push_back({static_cast<rdf::TermId>(rng.UniformInt(0, 30)),
                              static_cast<rdf::TermId>(rng.UniformInt(0, 8)),
                              static_cast<rdf::TermId>(rng.UniformInt(0, 30))});
    }
    for (int i = rng.UniformInt(0, 15); i > 0; --i) {
      cs.removals.push_back({static_cast<rdf::TermId>(rng.UniformInt(0, 30)),
                             static_cast<rdf::TermId>(rng.UniformInt(0, 8)),
                             static_cast<rdf::TermId>(rng.UniformInt(0, 30))});
    }
    history.push_back(std::move(cs));
  }
  return history;
}

void ReplayHistory(KbView& view, const std::vector<ChangeSet>& history) {
  const VersionId base = view.head();
  for (size_t v = 0; v < history.size(); ++v) {
    auto id = view.Commit(history[v], "author-" + std::to_string(v),
                          "commit " + std::to_string(v), /*timestamp=*/v + 1);
    ASSERT_TRUE(id.ok()) << id.status().ToString();
    ASSERT_EQ(*id, base + v + 1);
  }
}

// Scans every pattern shape over both stores and demands identical
// results — content AND order (the union snapshot's k-way merge must
// restore global SPO order).
void ExpectIdenticalScans(const rdf::TripleStore& sharded,
                          const rdf::TripleStore& single) {
  ASSERT_EQ(sharded.size(), single.size());
  const TriplePattern shapes[] = {
      {kAnyTerm, kAnyTerm, kAnyTerm}, {7, kAnyTerm, kAnyTerm},
      {kAnyTerm, 3, kAnyTerm},        {kAnyTerm, kAnyTerm, 11},
      {7, 3, kAnyTerm},               {kAnyTerm, 3, 11},
      {7, 3, 11},
  };
  for (const TriplePattern& pattern : shapes) {
    EXPECT_EQ(sharded.Match(pattern), single.Match(pattern))
        << "pattern (" << pattern.subject << "," << pattern.predicate << ","
        << pattern.object << ")";
  }
  for (rdf::TermId s = 0; s < 31; ++s) {
    for (rdf::TermId o = 0; o < 31; ++o) {
      const Triple probe{s, s % 9, o};
      EXPECT_EQ(sharded.Contains(probe), single.Contains(probe));
    }
  }
}

class ShardedKbTest : public ::testing::TestWithParam<size_t> {};

INSTANTIATE_TEST_SUITE_P(ShardCounts, ShardedKbTest,
                         ::testing::Values(1, 2, 4, 8),
                         [](const auto& info) {
                           return "Shards" + std::to_string(info.param);
                         });

TEST_P(ShardedKbTest, UnionSnapshotsMatchUnshardedStore) {
  const std::vector<ChangeSet> history = RandomHistory(17, 8);

  VersionedKnowledgeBase single;
  SingleKbView single_view(single);
  ReplayHistory(single_view, history);

  ShardedKnowledgeBase sharded({.shards = GetParam()});
  ReplayHistory(sharded, history);

  ASSERT_EQ(sharded.version_count(), single.version_count());
  ASSERT_EQ(sharded.head(), single.head());
  for (VersionId v = 0; v <= sharded.head(); ++v) {
    auto sharded_snapshot = sharded.SharedSnapshot(v);
    auto single_snapshot = single_view.SharedSnapshot(v);
    ASSERT_TRUE(sharded_snapshot.ok()) << sharded_snapshot.status().ToString();
    ASSERT_TRUE(single_snapshot.ok());
    ASSERT_NO_FATAL_FAILURE(ExpectIdenticalScans((*sharded_snapshot)->store(),
                                                 (*single_snapshot)->store()))
        << "version " << v;
  }
}

TEST_P(ShardedKbTest, ChangesAndInfoRoundTrip) {
  const std::vector<ChangeSet> history = RandomHistory(23, 5);
  ShardedKnowledgeBase sharded({.shards = GetParam()});
  ReplayHistory(sharded, history);

  for (VersionId v = 1; v <= sharded.head(); ++v) {
    auto cs = sharded.Changes(v);
    ASSERT_TRUE(cs.ok()) << cs.status().ToString();
    // The archived set is the caller's unsplit set, verbatim.
    EXPECT_EQ(cs->additions, history[v - 1].additions) << "version " << v;
    EXPECT_EQ(cs->removals, history[v - 1].removals) << "version " << v;
    auto info = sharded.Info(v);
    ASSERT_TRUE(info.ok());
    EXPECT_EQ(info->author, "author-" + std::to_string(v - 1));
    EXPECT_EQ(info->timestamp, v);
    EXPECT_EQ(info->additions, history[v - 1].additions.size());
  }
  EXPECT_FALSE(sharded.Changes(0).ok());
  EXPECT_FALSE(sharded.Changes(99).ok());
  EXPECT_FALSE(sharded.Handle(99).ok());
  EXPECT_FALSE(sharded.SharedSnapshot(99).ok());
}

TEST_P(ShardedKbTest, FingerprintsAreDeterministicAndContentSensitive) {
  const std::vector<ChangeSet> history = RandomHistory(31, 6);

  ShardedKnowledgeBase a({.shards = GetParam()});
  ShardedKnowledgeBase b({.shards = GetParam()});
  ReplayHistory(a, history);
  ReplayHistory(b, history);
  for (VersionId v = 0; v <= a.head(); ++v) {
    auto ha = a.Handle(v);
    auto hb = b.Handle(v);
    ASSERT_TRUE(ha.ok());
    ASSERT_TRUE(hb.ok());
    EXPECT_EQ(ha->fingerprint, hb->fingerprint) << "version " << v;
    if (v > 0) {
      auto prev = a.Handle(v - 1);
      ASSERT_TRUE(prev.ok());
      EXPECT_NE(ha->fingerprint, prev->fingerprint);
    }
  }

  ShardedKnowledgeBase c({.shards = GetParam()});
  ReplayHistory(c, RandomHistory(32, 6));
  auto ha = a.Handle(a.head());
  auto hc = c.Handle(c.head());
  ASSERT_TRUE(ha.ok());
  ASSERT_TRUE(hc.ok());
  EXPECT_NE(ha->fingerprint, hc->fingerprint);
}

TEST_P(ShardedKbTest, PooledCommitsMatchSerialCommits) {
  const std::vector<ChangeSet> history = RandomHistory(41, 6);

  ShardedKnowledgeBase serial({.shards = GetParam()});
  ReplayHistory(serial, history);

  ThreadPool pool(4);
  ShardedKnowledgeBase pooled({.shards = GetParam(), .pool = &pool});
  ReplayHistory(pooled, history);

  for (VersionId v = 0; v <= serial.head(); ++v) {
    auto hs = serial.Handle(v);
    auto hp = pooled.Handle(v);
    ASSERT_TRUE(hs.ok());
    ASSERT_TRUE(hp.ok());
    EXPECT_EQ(hs->fingerprint, hp->fingerprint) << "version " << v;
  }
  auto serial_snapshot = serial.SharedSnapshot(serial.head());
  auto pooled_snapshot = pooled.SharedSnapshot(pooled.head());
  ASSERT_TRUE(serial_snapshot.ok());
  ASSERT_TRUE(pooled_snapshot.ok());
  ASSERT_NO_FATAL_FAILURE(ExpectIdenticalScans(
      (*pooled_snapshot)->store(), (*serial_snapshot)->store()));
}

TEST_P(ShardedKbTest, SubjectsLandOnTheirHashShardOnly) {
  const std::vector<ChangeSet> history = RandomHistory(51, 4);
  ShardedKnowledgeBase sharded({.shards = GetParam()});
  ReplayHistory(sharded, history);

  size_t total = 0;
  for (size_t i = 0; i < sharded.shard_count(); ++i) {
    const VersionedKnowledgeBase& shard = sharded.shard(i);
    ASSERT_EQ(shard.version_count(), sharded.version_count());
    auto snapshot = shard.Snapshot(shard.head());
    ASSERT_TRUE(snapshot.ok());
    (*snapshot)->store().ScanT(
        {kAnyTerm, kAnyTerm, kAnyTerm}, [&](const Triple& t) {
          EXPECT_EQ(sharded.ShardOf(t.subject), i);
          ++total;
          return true;
        });
  }
  auto union_snapshot = sharded.SharedSnapshot(sharded.head());
  ASSERT_TRUE(union_snapshot.ok());
  EXPECT_EQ(total, (*union_snapshot)->size());
}

TEST(ShardedKbSeedTest, InitialKbIsSplitAndServedBack) {
  rdf::KnowledgeBase initial;
  for (uint32_t i = 0; i < 100; ++i) {
    initial.AddIriTriple("s" + std::to_string(i), "p" + std::to_string(i % 5),
                         "o" + std::to_string(i % 17));
  }
  const std::vector<Triple> expected = initial.store().triples();

  ShardedKnowledgeBase sharded({.shards = 4}, initial);
  EXPECT_EQ(sharded.shared_dictionary(), initial.shared_dictionary());
  auto base = sharded.SharedSnapshot(0);
  ASSERT_TRUE(base.ok());
  std::vector<Triple> served;
  (*base)->store().ScanT({kAnyTerm, kAnyTerm, kAnyTerm}, [&](const Triple& t) {
    served.push_back(t);
    return true;
  });
  EXPECT_EQ(served, expected);
}

TEST(ShardedKbServingTest, SnapshotsPinWhileLaterCommitsLand) {
  const std::vector<ChangeSet> history = RandomHistory(61, 3);
  ShardedKnowledgeBase sharded({.shards = 4});
  ReplayHistory(sharded, history);

  auto pinned = sharded.SharedSnapshot(2);
  ASSERT_TRUE(pinned.ok());
  const size_t pinned_size = (*pinned)->size();
  const std::vector<Triple> pinned_triples = (*pinned)->store().triples();

  // Land more commits; the pinned reader must not notice.
  ReplayHistory(sharded, RandomHistory(62, 4));
  EXPECT_EQ(sharded.head(), 7u);
  EXPECT_EQ((*pinned)->size(), pinned_size);
  EXPECT_EQ((*pinned)->store().triples(), pinned_triples);
}

TEST(ShardedKbServingTest, ServingReadsNeverCopyTheStore) {
  const std::vector<ChangeSet> history = RandomHistory(71, 6);
  ShardedKnowledgeBase sharded({.shards = 4});
  ReplayHistory(sharded, history);

  auto snapshot = sharded.SharedSnapshot(sharded.head());
  ASSERT_TRUE(snapshot.ok());
  const rdf::TripleStore& store = (*snapshot)->store();
  (void)store.Contains({1, 1, 1});
  (void)store.Match({5, kAnyTerm, kAnyTerm});
  size_t n = 0;
  store.ScanT({kAnyTerm, kAnyTerm, kAnyTerm}, [&](const Triple&) {
    ++n;
    return true;
  });
  EXPECT_EQ(n, store.size());
  // The whole read diet above ran off the shared segment stack: zero
  // whole-store flat materialisations.
  EXPECT_EQ(store.stats().materializations, 0u);
}

// The tentpole's oracle: RecommendBatch served through the sharded
// view is byte-identical to the sequential single-store path over the
// same content.
TEST(ShardedKbServingTest, RecommendBatchMatchesSingleStorePath) {
  workload::ScenarioScale scale;
  scale.classes = 40;
  scale.properties = 14;
  scale.instances = 300;
  scale.edges = 600;
  scale.versions = 2;
  scale.operations = 120;

  measures::MeasureRegistry registry = measures::DefaultRegistry();

  // Sequential single-store baseline.
  workload::Scenario baseline = workload::MakeDbpediaLike(31, scale);
  std::vector<profile::HumanProfile> baseline_profiles(
      baseline.curators.members());
  baseline_profiles.push_back(baseline.end_user);
  std::vector<profile::HumanProfile*> baseline_pointers;
  for (profile::HumanProfile& prof : baseline_profiles) {
    baseline_pointers.push_back(&prof);
  }
  engine::ServiceOptions sequential_options;
  sequential_options.parallel_batches = false;
  engine::RecommendationService baseline_service(registry,
                                                 sequential_options);
  auto expected =
      baseline_service.RecommendBatch(*baseline.vkb, 0, 1, baseline_pointers);
  ASSERT_TRUE(expected.ok()) << expected.status().ToString();

  // Same content rebuilt as a sharded KB: adopt version 0, replay the
  // archived change sets.
  workload::Scenario scenario = workload::MakeDbpediaLike(31, scale);
  auto base = scenario.vkb->Snapshot(0);
  ASSERT_TRUE(base.ok());
  ShardedKnowledgeBase sharded({.shards = 4}, **base);
  for (VersionId v = 1; v <= scenario.vkb->head(); ++v) {
    auto cs = scenario.vkb->Changes(v);
    ASSERT_TRUE(cs.ok());
    auto info = scenario.vkb->Info(v);
    ASSERT_TRUE(info.ok());
    auto committed = sharded.Commit(std::move(cs).value(), info->author,
                                    info->message, info->timestamp);
    ASSERT_TRUE(committed.ok()) << committed.status().ToString();
  }

  std::vector<profile::HumanProfile> profiles(scenario.curators.members());
  profiles.push_back(scenario.end_user);
  std::vector<profile::HumanProfile*> pointers;
  for (profile::HumanProfile& prof : profiles) pointers.push_back(&prof);

  engine::ServiceOptions options;
  options.engine.threads = 4;
  engine::RecommendationService service(registry, options);
  auto batch = service.RecommendBatch(sharded, 0, 1, pointers);
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();
  ASSERT_EQ(batch->size(), expected->size());
  for (size_t i = 0; i < expected->size(); ++i) {
    const recommend::RecommendationList& a = (*batch)[i];
    const recommend::RecommendationList& b = (*expected)[i];
    ASSERT_EQ(a.items.size(), b.items.size()) << "user " << i;
    for (size_t j = 0; j < a.items.size(); ++j) {
      EXPECT_EQ(a.items[j].candidate.id, b.items[j].candidate.id);
      EXPECT_EQ(a.items[j].relatedness, b.items[j].relatedness);
      EXPECT_EQ(a.items[j].novelty, b.items[j].novelty);
      EXPECT_EQ(a.items[j].explanation.ToText(),
                b.items[j].explanation.ToText());
    }
    EXPECT_EQ(a.set_diversity, b.set_diversity);
    EXPECT_EQ(a.candidate_pool_size, b.candidate_pool_size);
  }
}

}  // namespace
}  // namespace evorec::version
