// Cross-module property suites on randomly generated workloads:
// archive-policy equivalence, serialisation round trips, and context
// configuration invariants.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "evorec.h"

namespace evorec {
namespace {

class HistoryPropertyTest : public ::testing::TestWithParam<uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, HistoryPropertyTest,
                         ::testing::Values(2, 11, 31, 101));

// Random multi-version histories: the two archive policies must agree
// on every snapshot, every change set, and every measure report.
TEST_P(HistoryPropertyTest, ArchivePoliciesAreObservationallyEqual) {
  const uint64_t seed = GetParam();
  workload::SchemaGenOptions schema_options;
  schema_options.class_count = 30;
  schema_options.seed = seed;
  workload::GeneratedSchema generated =
      workload::GenerateSchema(schema_options);
  workload::InstanceGenOptions instance_options;
  instance_options.instance_count = 200;
  instance_options.edge_count = 350;
  instance_options.seed = seed + 1;
  workload::PopulateInstances(generated, instance_options);

  version::VersionedKnowledgeBase full(
      version::ArchivePolicy::kFullMaterialization, generated.kb);
  version::VersionedKnowledgeBase chain(version::ArchivePolicy::kDeltaChain,
                                        generated.kb);
  for (uint32_t v = 0; v < 4; ++v) {
    auto head = full.Snapshot(full.head());
    ASSERT_TRUE(head.ok());
    workload::EvolutionOptions evolution_options;
    evolution_options.operations = 80;
    evolution_options.seed = seed + 10 + v;
    evolution_options.epoch = v + 1;
    const workload::EvolutionOutcome outcome = workload::GenerateEvolution(
        **head, full.dictionary(), evolution_options);
    // Both stores share one dictionary (full's); intern chain's ids by
    // re-parsing through the exchange format so the test also covers
    // cross-store shipping.
    const std::string shipped =
        delta::WriteChangeSet(outcome.changes, full.dictionary());
    auto received = delta::ParseChangeSet(shipped, chain.dictionary());
    ASSERT_TRUE(received.ok());
    (void)full.Commit(outcome.changes, "t", "step");
    (void)chain.Commit(*received, "t", "step");
  }

  ASSERT_EQ(full.version_count(), chain.version_count());
  for (uint32_t v = 0; v < full.version_count(); ++v) {
    auto sf = full.Snapshot(v);
    auto sc = chain.Snapshot(v);
    ASSERT_TRUE(sf.ok());
    ASSERT_TRUE(sc.ok());
    // Dictionaries differ → compare canonical serialisations.
    EXPECT_EQ(rdf::WriteNTriples((*sf)->store(), full.dictionary()),
              rdf::WriteNTriples((*sc)->store(), chain.dictionary()))
        << "version " << v << " seed " << seed;
  }
}

// N-Triples round trip over arbitrary generated KBs: write → parse →
// write is a fixed point (canonical form), for every seed.
TEST_P(HistoryPropertyTest, NTriplesRoundTripIsCanonical) {
  const uint64_t seed = GetParam();
  workload::SchemaGenOptions schema_options;
  schema_options.class_count = 25;
  schema_options.seed = seed;
  workload::GeneratedSchema generated =
      workload::GenerateSchema(schema_options);
  workload::InstanceGenOptions instance_options;
  instance_options.instance_count = 150;
  instance_options.edge_count = 250;
  instance_options.seed = seed + 1;
  workload::PopulateInstances(generated, instance_options);

  const std::string once = rdf::WriteNTriples(generated.kb.store(),
                                              generated.kb.dictionary());
  rdf::Dictionary dict2;
  rdf::TripleStore store2;
  ASSERT_TRUE(rdf::ParseNTriples(once, dict2, store2).ok());
  EXPECT_EQ(store2.size(), generated.kb.size());
  const std::string twice = rdf::WriteNTriples(store2, dict2);
  // Line sets must match (term ids differ between dictionaries, so the
  // order of interning does too — but each line is canonical).
  auto sorted_lines = [](const std::string& text) {
    std::vector<std::string> lines = StrSplit(text, '\n');
    std::sort(lines.begin(), lines.end());
    return lines;
  };
  EXPECT_EQ(sorted_lines(once), sorted_lines(twice));
}

// Change-set exchange round trip on generated evolutions.
TEST_P(HistoryPropertyTest, ChangeSetExchangeRoundTrips) {
  const uint64_t seed = GetParam();
  workload::SchemaGenOptions schema_options;
  schema_options.class_count = 25;
  schema_options.seed = seed;
  workload::GeneratedSchema generated =
      workload::GenerateSchema(schema_options);
  workload::InstanceGenOptions instance_options;
  instance_options.instance_count = 150;
  instance_options.seed = seed + 1;
  workload::PopulateInstances(generated, instance_options);
  workload::EvolutionOptions evolution_options;
  evolution_options.operations = 120;
  evolution_options.seed = seed + 2;
  const workload::EvolutionOutcome outcome = workload::GenerateEvolution(
      generated.kb, generated.kb.dictionary(), evolution_options);

  const std::string text =
      delta::WriteChangeSet(outcome.changes, generated.kb.dictionary());
  auto parsed = delta::ParseChangeSet(text, generated.kb.dictionary());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->additions, outcome.changes.additions);
  EXPECT_EQ(parsed->removals, outcome.changes.removals);
}

// Sampled-betweenness contexts: reports stay valid (right size,
// non-negative, finite) and exact mode is the fixed point of raising
// pivot counts.
TEST_P(HistoryPropertyTest, SampledContextProducesValidReports) {
  const uint64_t seed = GetParam();
  workload::ScenarioScale scale;
  scale.classes = 30;
  scale.instances = 150;
  scale.edges = 250;
  scale.versions = 1;
  scale.operations = 80;
  workload::Scenario scenario = workload::MakeDbpediaLike(seed, scale);

  measures::ContextOptions sampled_options;
  sampled_options.betweenness_mode = measures::BetweennessMode::kSampled;
  sampled_options.betweenness_pivots = 8;
  sampled_options.seed = seed;
  auto sampled = measures::EvolutionContext::FromVersions(
      *scenario.vkb, 0, 1, sampled_options);
  ASSERT_TRUE(sampled.ok());

  measures::BetweennessShiftMeasure measure;
  auto report = measure.Compute(*sampled);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->size(), sampled->union_classes().size());
  for (const auto& s : report->scores()) {
    EXPECT_GE(s.score, 0.0);
    EXPECT_TRUE(std::isfinite(s.score));
  }

  // pivots >= node count degenerates to the exact computation.
  measures::ContextOptions saturated = sampled_options;
  saturated.betweenness_pivots = 100000;
  auto exact_like = measures::EvolutionContext::FromVersions(
      *scenario.vkb, 0, 1, saturated);
  auto exact = measures::EvolutionContext::FromVersions(*scenario.vkb, 0, 1);
  ASSERT_TRUE(exact_like.ok());
  ASSERT_TRUE(exact.ok());
  const auto& a = exact_like->betweenness_after();
  const auto& b = exact->betweenness_after();
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_NEAR(a[i], b[i], 1e-9);
  }
}

}  // namespace
}  // namespace evorec
