// Concurrency stress for the engine's caches: many threads hammering
// one key must coalesce into a single build (single-flight), and
// mixed-key traffic must stay linearizable. Run under
// ThreadSanitizer in CI (the `tsan` preset).

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <set>
#include <thread>
#include <vector>

#include "engine/evaluation_engine.h"
#include "engine/recommendation_service.h"
#include "workload/scenarios.h"

namespace evorec::engine {
namespace {

workload::Scenario StressScenario(uint64_t seed = 77) {
  workload::ScenarioScale scale;
  scale.classes = 30;
  scale.properties = 12;
  scale.instances = 200;
  scale.edges = 400;
  scale.versions = 2;
  scale.operations = 80;
  return workload::MakeDbpediaLike(seed, scale);
}

TEST(EngineConcurrencyTest, ConcurrentSameKeyEvaluatesBuildOnce) {
  workload::Scenario scenario = StressScenario();
  measures::MeasureRegistry registry = measures::DefaultRegistry();
  EvaluationEngine engine(registry, {.context_cache_capacity = 4,
                                     .threads = 2});

  constexpr int kThreads = 16;
  constexpr int kRoundsPerThread = 8;
  std::vector<std::shared_ptr<const SharedEvaluation>> seen(kThreads);
  std::atomic<int> failures{0};
  {
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        for (int round = 0; round < kRoundsPerThread; ++round) {
          auto evaluation = engine.Evaluate(*scenario.vkb, 0, 1);
          if (!evaluation.ok()) {
            failures.fetch_add(1);
            return;
          }
          seen[t] = *evaluation;
        }
      });
    }
    for (std::thread& thread : threads) thread.join();
  }
  EXPECT_EQ(failures.load(), 0);
  // Exactly one build; everyone observed the same shared evaluation.
  EXPECT_EQ(engine.stats().contexts_built, 1u);
  for (int t = 1; t < kThreads; ++t) {
    EXPECT_EQ(seen[t].get(), seen[0].get());
  }
  const EngineStats stats = engine.stats();
  EXPECT_EQ(stats.context_hits + stats.context_misses +
                stats.context_coalesced,
            static_cast<uint64_t>(kThreads) * kRoundsPerThread);
}

TEST(EngineConcurrencyTest, ConcurrentReportRequestsComputeOnce) {
  workload::Scenario scenario = StressScenario();
  measures::MeasureRegistry registry = measures::DefaultRegistry();
  EvaluationEngine engine(registry, {.context_cache_capacity = 4,
                                     .threads = 4});
  auto evaluation = engine.Evaluate(*scenario.vkb, 0, 1);
  ASSERT_TRUE(evaluation.ok());

  constexpr int kThreads = 12;
  std::atomic<int> failures{0};
  {
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&] {
        // Half the threads sweep all reports, half poke single names;
        // betweenness-hungry measures exercise the context's lazy
        // call_once path concurrently.
        auto all = (*evaluation)->AllReports();
        if (!all.ok()) failures.fetch_add(1);
        auto one = (*evaluation)->Report("betweenness_shift");
        if (!one.ok()) failures.fetch_add(1);
      });
    }
    for (std::thread& thread : threads) thread.join();
  }
  EXPECT_EQ(failures.load(), 0);
  // Single-flight: every measure computed exactly once despite the
  // stampede.
  EXPECT_EQ((*evaluation)->report_stats().computations, registry.size());
}

TEST(EngineConcurrencyTest, MixedKeysUnderEvictionPressureStayConsistent) {
  workload::Scenario scenario = StressScenario();
  ASSERT_GE(scenario.vkb->version_count(), 3u);
  measures::MeasureRegistry registry = measures::DefaultRegistry();
  // Capacity 1 forces constant eviction while two keys compete.
  EvaluationEngine engine(registry, {.context_cache_capacity = 1,
                                     .threads = 2});

  // Reference delta sizes, computed single-threaded.
  size_t expected_delta[2];
  for (version::VersionId v1 = 0; v1 < 2; ++v1) {
    auto ctx = measures::EvolutionContext::FromVersions(*scenario.vkb, v1,
                                                        v1 + 1);
    ASSERT_TRUE(ctx.ok());
    expected_delta[v1] = ctx->low_level_delta().size();
  }

  constexpr int kThreads = 8;
  std::atomic<int> failures{0};
  {
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        for (int round = 0; round < 6; ++round) {
          const version::VersionId v1 = (t + round) % 2 == 0 ? 0u : 1u;
          auto evaluation = engine.Evaluate(*scenario.vkb, v1, v1 + 1);
          if (!evaluation.ok()) {
            failures.fetch_add(1);
            continue;
          }
          if ((*evaluation)->context().low_level_delta().size() !=
              expected_delta[v1]) {
            failures.fetch_add(1);
          }
        }
      });
    }
    for (std::thread& thread : threads) thread.join();
  }
  EXPECT_EQ(failures.load(), 0);
  EXPECT_LE(engine.cached_contexts(), 1u);
}

TEST(EngineConcurrencyTest, ConcurrentBatchesShareOneWarmEvaluation) {
  workload::Scenario scenario = StressScenario();
  measures::MeasureRegistry registry = measures::DefaultRegistry();
  ServiceOptions options;
  options.engine.threads = 4;
  RecommendationService service(registry, options);

  constexpr int kCallers = 6;
  constexpr int kUsersPerCaller = 8;
  std::atomic<int> failures{0};
  {
    std::vector<std::thread> callers;
    callers.reserve(kCallers);
    for (int c = 0; c < kCallers; ++c) {
      callers.emplace_back([&, c] {
        std::vector<profile::HumanProfile> profiles;
        for (int u = 0; u < kUsersPerCaller; ++u) {
          profile::HumanProfile prof = scenario.end_user;
          prof.set_id("caller-" + std::to_string(c) + "-user-" +
                      std::to_string(u));
          profiles.push_back(std::move(prof));
        }
        std::vector<profile::HumanProfile*> pointers;
        for (profile::HumanProfile& prof : profiles) {
          pointers.push_back(&prof);
        }
        auto batch = service.RecommendBatch(*scenario.vkb, 0, 1, pointers);
        if (!batch.ok() || batch->size() != pointers.size()) {
          failures.fetch_add(1);
        }
      });
    }
    for (std::thread& caller : callers) caller.join();
  }
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(service.engine_stats().contexts_built, 1u);
}

}  // namespace
}  // namespace evorec::engine
