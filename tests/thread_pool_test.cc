// ThreadPool: the common-layer worker pool driving parallel measure
// evaluation and batched serving.

#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace evorec {
namespace {

TEST(ThreadPoolTest, DefaultThreadCountIsPositive) {
  EXPECT_GE(ThreadPool::DefaultThreadCount(), 1u);
}

TEST(ThreadPoolTest, SubmitRunsEveryTask) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(4);
    for (int i = 0; i < 100; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
    // The destructor drains the queue before joining the workers.
  }
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, ParallelForCoversAllIndexesExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> touched(1000);
  pool.ParallelFor(touched.size(),
                   [&](size_t i) { touched[i].fetch_add(1); });
  for (const std::atomic<int>& t : touched) {
    EXPECT_EQ(t.load(), 1);
  }
}

TEST(ThreadPoolTest, ParallelForHandlesEdgeSizes) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.ParallelFor(0, [&](size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 0);
  pool.ParallelFor(1, [&](size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 1);
}

TEST(ThreadPoolTest, NestedParallelForDoesNotDeadlock) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.ParallelFor(4, [&](size_t) {
    pool.ParallelFor(4, [&](size_t) { count.fetch_add(1); });
  });
  EXPECT_EQ(count.load(), 16);
}

TEST(ThreadPoolTest, ParallelForAccumulatesCorrectSum) {
  ThreadPool pool;
  std::vector<long> values(5000);
  pool.ParallelFor(values.size(),
                   [&](size_t i) { values[i] = static_cast<long>(i); });
  const long sum = std::accumulate(values.begin(), values.end(), 0L);
  EXPECT_EQ(sum, 5000L * 4999L / 2);
}

}  // namespace
}  // namespace evorec
